/**
 * @file
 * The Section 6.3 optimization procedure on the mini network: sweep
 * the candidate per-layer adder configurations, keep halving the
 * bit-stream length while the accuracy threshold holds, and print the
 * surviving designs with their hardware costs.
 *
 * The mini network keeps this demo interactive (~1-2 minutes); the
 * table6 bench runs the full LeNet5 equivalent.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "core/optimizer.h"
#include "core/sc_network.h"
#include "nn/trainer.h"

using namespace scdcnn;

int
main()
{
    std::printf("SC-DCNN design-space exploration (mini network)\n\n");

    nn::Dataset train = nn::DigitDataset::generate(2000, 5);
    nn::Dataset test = nn::DigitDataset::generate(150, 6);
    nn::Network net = nn::buildMiniLeNet(nn::PoolingMode::Average, 1);
    nn::TrainConfig tc;
    tc.epochs = 3;
    nn::Trainer(net, tc).train(train);
    const double sw_err = nn::Trainer::errorRate(net, test);
    std::printf("software baseline error: %.2f%%\n\n", sw_err * 100.0);

    // Candidates: all layer-adder combinations with APC at the FC
    // layer (every Table 6 configuration keeps Layer2 = APC).
    std::vector<core::ScNetworkConfig> candidates;
    for (core::AdderKind a0 : {core::AdderKind::Mux,
                               core::AdderKind::Apc}) {
        for (core::AdderKind a1 : {core::AdderKind::Mux,
                                   core::AdderKind::Apc}) {
            core::ScNetworkConfig cfg;
            cfg.pooling = nn::PoolingMode::Average;
            cfg.layer_adders = {a0, a1, core::AdderKind::Apc};
            candidates.push_back(cfg);
        }
    }

    size_t total_evals = 0;
    core::InaccuracyFn evaluate =
        [&](const core::ScNetworkConfig &cfg) {
            core::ScNetwork sc_net(net, cfg);
            double err = sc_net.errorRate(test, test.size());
            ++total_evals;
            std::printf("  eval %-22s -> inaccuracy %+.2f%%\n",
                        cfg.describe().c_str(),
                        (err - sw_err) * 100.0);
            return err - sw_err;
        };

    core::OptimizerSettings settings;
    settings.threshold = 0.05; // 5% on the mini network
    settings.start_len = 1024;
    settings.min_len = 64;
    std::printf("running the Section 6.3 procedure (threshold %.1f%%, "
                "halving from L=%zu):\n", settings.threshold * 100.0,
                settings.start_len);
    auto survivors =
        core::optimizeDesigns(candidates, settings, evaluate);

    std::printf("\n%zu candidate(s) survived (%zu evaluations):\n",
                survivors.size(), total_evals);
    for (const auto &design : survivors) {
        std::printf("  %-22s inaccuracy %+.2f%%  (energy scales with "
                    "L: %zu cycles)\n", design.config.describe().c_str(),
                    design.inaccuracy * 100.0,
                    design.config.bitstream_len);
    }
    std::printf("\nAs in the paper, APC-heavy designs tolerate the "
                "shortest bit-streams (lowest energy), while MUX-heavy "
                "designs are cheaper in area but bow out earlier.\n");
    return 0;
}
