/**
 * @file
 * Quickstart: the SC-DCNN building blocks in ~80 lines.
 *
 * Encodes numbers as stochastic bit-streams, multiplies with an XNOR
 * gate, sums with a MUX and an APC, applies Stanh — shows each result
 * against the exact arithmetic — and finishes by running a custom
 * network topology through the full SC engine.
 */

#include <cmath>
#include <cstdio>

#include "blocks/inner_product.h"
#include "core/sc_network.h"
#include "nn/dataset.h"
#include "nn/topology.h"
#include "sc/btanh.h"
#include "sc/counter.h"
#include "sc/ops.h"
#include "sc/sng.h"
#include "sc/stanh.h"

using namespace scdcnn;
using namespace scdcnn::sc;

int
main()
{
    const size_t len = 4096; // bit-stream length L
    SngBank bank(42);        // deterministic stream source

    // --- 1. Stochastic numbers -------------------------------------
    Bitstream a = bank.bipolar(0.4, len);
    Bitstream b = bank.bipolar(-0.6, len);
    std::printf("encode:   0.4  -> stream decodes to %+.3f\n",
                a.bipolar());
    std::printf("encode:  -0.6  -> stream decodes to %+.3f\n\n",
                b.bipolar());

    // --- 2. Multiplication is one XNOR gate ------------------------
    Bitstream prod = xnorMultiply(a, b);
    std::printf("XNOR multiply: 0.4 * -0.6 = -0.24, SC gives %+.3f\n\n",
                prod.bipolar());

    // --- 3. Scaled addition is one MUX ------------------------------
    std::vector<Bitstream> terms = {bank.bipolar(0.5, len),
                                    bank.bipolar(-0.1, len),
                                    bank.bipolar(0.3, len),
                                    bank.bipolar(0.7, len)};
    Xoshiro256ss sel = bank.makeRng();
    Bitstream sum = muxAdd(terms, sel);
    std::printf("MUX add: (0.5 - 0.1 + 0.3 + 0.7)/4 = 0.35, "
                "SC gives %+.3f\n\n", sum.bipolar());

    // --- 4. High-accuracy addition: the APC -------------------------
    std::vector<double> xs = {0.9, -0.4, 0.2, 0.8, -0.3, 0.6, 0.1, -0.7};
    std::vector<double> ws = {0.5, 0.5, -0.5, 0.25, 0.8, -0.1, 0.9, 0.3};
    auto counts = blocks::ApcInnerProduct::counts(xs, ws, len, bank,
                                                  /*approximate=*/true);
    std::printf("APC inner product: exact %.3f, SC gives %.3f\n\n",
                blocks::innerProductReference(xs, ws),
                blocks::ApcInnerProduct::decode(counts, xs.size()));

    // --- 5. Activation: the Stanh FSM -------------------------------
    Bitstream x = bank.bipolar(0.25, len);
    Stanh fsm(8); // Stanh(K, x) ~ tanh(K/2 * x)
    std::printf("Stanh(8, 0.25): tanh(1.0) = 0.762, SC gives %.3f\n",
                fsm.transform(x).bipolar());

    // --- 6. Binary-domain activation: Btanh -------------------------
    Btanh btanh(Btanh::stateCountDirect(8), 8);
    std::printf("Btanh over the APC counts: tanh(%.3f) = %.3f, "
                "SC gives %.3f\n\n",
                blocks::innerProductReference(xs, ws),
                std::tanh(blocks::innerProductReference(xs, ws)),
                btanh.transform(counts).bipolar());

    // --- 7. A custom topology through the full engine ---------------
    // The engine accepts any sequential conv/pool/fc topology: declare
    // one, build the float network, hand it to ScNetwork (which
    // derives the feature-extraction-block plan from the layer list)
    // and predict. buildLeNet5() is just a bigger spec.
    nn::TopologySpec spec;
    spec.convs = {{6, 5}}; // 6 filters of 5x5 -> 2x2 pool -> tanh
    spec.fc_hidden = {32}; // fc 32 -> tanh
    spec.n_classes = 10;   // output fc, binary domain
    nn::Network net = nn::buildTopology(spec);

    core::ScNetworkConfig cfg; // APC adders, max pooling
    cfg.bitstream_len = 256;   // short streams keep the demo quick
    core::ScNetwork engine(net, cfg);

    const nn::Tensor img = nn::DigitDataset::render(3, 7);
    core::ForwardInfo info;
    const size_t pred = engine.predict(img, 42, nullptr, &info);
    std::printf("custom 1-conv topology (%zu hidden stages): "
                "class %zu, top score %+.3f over %zu bits\n\n",
                engine.stageCount(), pred, info.scores[pred],
                info.effective_bits);

    // --- 8. Micro-batches: the weight-stationary batch path ----------
    // forwardBatch runs several images through one fused pass that
    // loads each weight block once per segment word and folds it
    // against every image before advancing — same bits as per-image
    // predict() at the same seeds, cheaper per image. The ForwardInfo
    // vector carries each image's scores and consumed bits (under
    // Progressive precision, images can exit the batch mid-stream at
    // different bit counts).
    std::vector<nn::Tensor> digits;
    for (size_t d = 0; d < 4; ++d)
        digits.push_back(nn::DigitDataset::render(d, 0));
    std::vector<core::ForwardInfo> infos;
    const std::vector<size_t> preds = engine.forwardBatch(
        digits, /*seed=*/42, core::PredictOptions{}, /*pool=*/nullptr,
        &infos);
    std::printf("batch of %zu through the batch kernels:\n",
                digits.size());
    for (size_t i = 0; i < digits.size(); ++i)
        std::printf("  digit %zu -> class %zu  (top score %+.3f, "
                    "%zu bits)\n",
                    i, preds[i], infos[i].scores[preds[i]],
                    infos[i].effective_bits);

    // --- 9. The binary sibling backend -------------------------------
    // At stream length 1 a bipolar stream is a sign bit and nothing is
    // stochastic: EngineMode::Binary runs the same topology as a
    // deterministic XNOR-popcount BNN — weights and activations
    // collapsed to signs, one pass, no sampling. The seed is ignored
    // and scores are exact signed match counts (2m - n). This is the
    // backend the serving layer's Fast QoS class routes to.
    core::PredictOptions bin;
    bin.mode = core::EngineMode::Binary;
    const size_t bin_pred =
        engine.predictWith(img, /*seed=*/0, bin, nullptr, &info);
    std::printf("\nbinary backend: class %zu, top score %+.0f "
                "(%zu-bit \"streams\", deterministic)\n",
                bin_pred, info.scores[bin_pred], info.effective_bits);
    return 0;
}
