/**
 * @file
 * SC convolution demo: run a 3x3 edge-detection kernel over a rendered
 * digit entirely in the stochastic domain (XNOR + APC inner products)
 * and compare the feature map against float convolution.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "blocks/inner_product.h"
#include "nn/dataset.h"
#include "sc/sng.h"

using namespace scdcnn;

namespace {

char
shade(double v)
{
    static const char ramp[] = " .:-=+*#%@";
    double t = std::min(1.0, std::max(0.0, std::abs(v)));
    return ramp[static_cast<int>(t * 9.0)];
}

} // namespace

int
main()
{
    const size_t len = 2048;

    // A digit image and a Laplacian-style edge kernel.
    nn::Tensor img = nn::DigitDataset::render(5, 2024);
    const std::vector<double> kernel = {-0.125, -0.125, -0.125, //
                                        -0.125, 1.0,    -0.125, //
                                        -0.125, -0.125, -0.125};

    sc::SngBank bank(7);
    std::printf("SC edge detection on a rendered '5' "
                "(left: SC feature map, right: float reference)\n\n");

    double total_err = 0;
    int count = 0;
    for (size_t y = 1; y + 1 < 28; y += 1) {
        std::string sc_row, float_row;
        for (size_t x = 1; x + 1 < 28; ++x) {
            std::vector<double> window;
            for (int dy = -1; dy <= 1; ++dy)
                for (int dx = -1; dx <= 1; ++dx)
                    window.push_back(img.at(0, y + dy, x + dx));

            auto counts = blocks::ApcInnerProduct::counts(
                window, kernel, len, bank, /*approximate=*/true);
            const double sc_val =
                blocks::ApcInnerProduct::decode(counts, window.size());
            const double ref =
                blocks::innerProductReference(window, kernel);
            sc_row += shade(sc_val);
            float_row += shade(ref);
            total_err += std::abs(sc_val - ref);
            ++count;
        }
        std::printf("%s   %s\n", sc_row.c_str(), float_row.c_str());
    }
    std::printf("\nmean |SC - float| per pixel: %.4f over %d pixels "
                "(L = %zu)\n", total_err / count, count, len);
    return 0;
}
