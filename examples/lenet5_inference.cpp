/**
 * @file
 * End-to-end demo: train (or load) the LeNet5 baseline, build an
 * SC-DCNN from it with a chosen Table 6 configuration, classify digits
 * in the stochastic domain, and print the hardware cost summary.
 *
 * Usage: lenet5_inference [config_no (1..12, default 12)] [images]
 */

#include <cstdio>
#include <cstdlib>

#include "core/metrics.h"
#include "core/sc_network.h"
#include "nn/trainer.h"

using namespace scdcnn;

int
main(int argc, char **argv)
{
    const int config_no = argc > 1 ? std::atoi(argv[1]) : 12;
    const size_t n_images =
        argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 30;
    const auto entries = core::table6Entries();
    if (config_no < 1 || config_no > static_cast<int>(entries.size())) {
        std::fprintf(stderr, "config number must be 1..12\n");
        return 1;
    }
    const core::Table6Entry &entry = entries[config_no - 1];

    std::printf("SC-DCNN LeNet5 inference, configuration No.%d (%s)\n\n",
                config_no, entry.config.describe().c_str());

    nn::Network net =
        nn::trainedLeNet5(entry.config.pooling, "data", "data");
    nn::Dataset train, test;
    nn::loadDigits("data", 1, n_images, train, test);

    core::ScNetwork sc_net(net, entry.config);
    std::printf("layer activation sizing: K = %u / %u / %u, "
                "gain ratios %.2f / %.2f / %.2f\n\n",
                sc_net.layerStateCount(0), sc_net.layerStateCount(1),
                sc_net.layerStateCount(2), sc_net.layerGain(0),
                sc_net.layerGain(1), sc_net.layerGain(2));

    size_t sc_correct = 0, float_correct = 0;
    for (size_t i = 0; i < test.size(); ++i) {
        const nn::Sample &s = test.samples[i];
        const size_t sc_pred = sc_net.predict(s.image, 1000 + i);
        const size_t float_pred = net.predict(s.image);
        sc_correct += sc_pred == s.label;
        float_correct += float_pred == s.label;
        if (i < 10) {
            std::printf("image %2zu: label %zu, float %zu, SC %zu %s\n",
                        i, s.label, float_pred, sc_pred,
                        sc_pred == s.label ? "" : "  <-- miss");
        }
    }
    std::printf("...\naccuracy over %zu images: SC %.1f%%, "
                "float %.1f%%\n\n", test.size(),
                100.0 * sc_correct / test.size(),
                100.0 * float_correct / test.size());

    // Progressive precision: re-run the same images with the margin
    // test enabled at two thresholds, so the latency/accuracy trade is
    // visible next to the full-length number. Effective bits translate
    // ~proportionally into latency (and, in hardware, energy).
    std::printf("progressive precision vs full L=%zu "
                "(same images/seeds):\n", entry.config.bitstream_len);
    for (double margin : {2.0, 4.0}) {
        core::ScNetworkConfig prog_cfg = entry.config;
        prog_cfg.progressive_margin = margin;
        // The default exit floor equals short configs' whole stream;
        // scale it so every Table 6 length can demonstrate the trade.
        prog_cfg.progressive_min_bits = prog_cfg.bitstream_len / 4;
        core::ScNetwork prog_net(net, prog_cfg);
        prog_net.setEngineMode(core::EngineMode::Progressive);
        size_t prog_correct = 0;
        uint64_t bits = 0;
        core::ForwardInfo info;
        for (size_t i = 0; i < test.size(); ++i) {
            const nn::Sample &s = test.samples[i];
            prog_correct +=
                prog_net.predict(s.image, 1000 + i, nullptr, &info) ==
                s.label;
            bits += info.effective_bits;
        }
        const double avg_bits = static_cast<double>(bits) /
                                static_cast<double>(test.size());
        std::printf("  margin %.1f: accuracy %.1f%% (delta %+.1f%%), "
                    "avg %.0f bits (%.2fx fewer)\n", margin,
                    100.0 * prog_correct / test.size(),
                    100.0 * (static_cast<double>(prog_correct) -
                             static_cast<double>(sc_correct)) /
                        test.size(),
                    avg_bits,
                    static_cast<double>(entry.config.bitstream_len) /
                        avg_bits);
    }
    std::printf("\n");

    const auto hw_cfg = core::toHwConfig(entry.config);
    const auto cost = hw::networkCost(hw::lenet5Layers(hw_cfg), hw_cfg);
    std::printf("hardware summary (cost model): area %.1f mm2, power "
                "%.2f W, delay %.0f ns/image,\n  throughput %.0f "
                "images/s, %.0f images/s/mm2, %.0f images/J\n",
                cost.areaMm2(), cost.powerW(), cost.delayNs(),
                cost.throughputImagesPerSec(), cost.areaEfficiency(),
                cost.energyEfficiency());
    return 0;
}
