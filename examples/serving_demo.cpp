/**
 * @file
 * Serving-layer walkthrough: stand up an InferenceServer over a
 * LeNet-5 SC engine, submit a burst of digit images at mixed
 * quality-of-service — full-precision, balanced progressive, and
 * deadline-bounded requests — and read back what each request
 * actually got (prediction, effective bits, the class it was served
 * at, queue/total latency), then print the server's metrics snapshot.
 *
 * The point to take away: submit() never blocks on compute (it
 * returns a future), the scheduler coalesces compatible requests into
 * micro-batches, and a tight deadline buys fewer effective bits
 * instead of a miss — stochastic computing's progressive precision
 * surfaced as a serving policy.
 *
 * Section 6 floods an overload-hardened server (bounded per-class
 * admission, doomed-request shedding, explicit cancellation) past its
 * queue capacity: overflow is rejected at submit() with a typed
 * ServeError instead of queuing unboundedly, requests whose deadline
 * became unmeetable are shed before any bits are spent on them, and a
 * cancelled request resolves immediately — every future gets an
 * answer either way.
 *
 * Section 7 runs a model fleet: three topologies registered in one
 * ModelRegistry, one of them poisoned with injected execution faults
 * mid-run. Its circuit breaker trips (fast ModelUnavailable rejects,
 * no compute wasted), then recovers through half-open probes once the
 * faults stop — while the other two models keep answering. Per-model
 * tallies make the isolation visible.
 *
 * Section 8 arms the tracing subsystem around a final fleet burst and
 * writes a Chrome trace file (open it in chrome://tracing or
 * Perfetto): per-request async spans, queue waits, batch closes with
 * their reasons, and the engine's per-segment phase spans all appear
 * on a shared timeline, and the per-phase aggregate profile is
 * printed alongside. Tracing is armed at runtime — everything before
 * this section ran with the instrumentation disarmed, at one relaxed
 * atomic load of overhead per would-be event.
 */

#include <chrono>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "core/sc_network.h"
#include "nn/dataset.h"
#include "nn/network.h"
#include "nn/topology.h"
#include "obs/chrome_trace.h"
#include "obs/trace.h"
#include "serve/artifact.h"
#include "serve/fault_injection.h"
#include "serve/model_registry.h"
#include "serve/server.h"

using namespace scdcnn;
using namespace std::chrono_literals;

int
main()
{
    // --- 1. An engine, as in lenet5_inference ----------------------
    // (Untrained weights keep the demo self-contained; a trained
    // network drops in unchanged.)
    nn::Network net = nn::buildLeNet5(nn::PoolingMode::Max, 1);
    core::ScNetworkConfig cfg; // APC-APC-APC, max pooling
    cfg.bitstream_len = 256;
    cfg.stream_segment_words = 1; // 64-cycle Progressive checkpoints
    core::ScNetwork sc(net, cfg);

    // --- 2. A server in front of it --------------------------------
    serve::ServerConfig scfg;
    scfg.limits.max_batch = 4;         // micro-batch bound
    scfg.limits.max_queue_delay = 2ms; // latency bound at light load
    // Keep every request for the walkthrough, even one whose deadline
    // has become unmeetable — this section shows degradation trading
    // bits for latency; shedding (the default) is shown in section 6.
    scfg.limits.shed_doomed = false;
    serve::InferenceServer server(sc, scfg);

    // --- 3. Warm-up ------------------------------------------------
    // One request per class primes the scheduler's service-time
    // estimates; deadline urgency compares remaining budget against
    // them, so a cold server cannot know a deadline is tight yet.
    for (auto cls : {serve::AccuracyClass::High,
                     serve::AccuracyClass::Balanced,
                     serve::AccuracyClass::Fast}) {
        serve::RequestOptions w;
        w.accuracy = cls;
        server.submit(nn::DigitDataset::render(0, 1), w).get();
    }

    // --- 4. Mixed-QoS submissions ----------------------------------
    struct Shot
    {
        const char *label;
        serve::RequestOptions opts;
    };
    std::vector<Shot> shots;
    {
        serve::RequestOptions high;
        high.accuracy = serve::AccuracyClass::High;
        shots.push_back({"high (full precision)", high});

        serve::RequestOptions balanced; // the default class
        shots.push_back({"balanced (progressive)", balanced});

        serve::RequestOptions hurry;
        hurry.accuracy = serve::AccuracyClass::Balanced;
        hurry.deadline = 5ms; // tight: expect degradation, not a miss
        shots.push_back({"balanced + 5ms deadline", hurry});

        serve::RequestOptions fast;
        fast.accuracy = serve::AccuracyClass::Fast;
        shots.push_back({"fast (aggressive exit)", fast});
    }

    std::vector<std::future<serve::InferenceResult>> futures;
    futures.reserve(shots.size() * 2);
    for (size_t i = 0; i < shots.size() * 2; ++i) {
        const Shot &s = shots[i % shots.size()];
        futures.push_back(server.submit(
            nn::DigitDataset::render(i % 10, 40 + i), s.opts));
    }

    std::printf("%-26s %5s %6s/%zu %-9s %6s %8s %8s\n", "request",
                "pred", "bits", cfg.bitstream_len, "served", "batch",
                "queue", "total");
    for (size_t i = 0; i < futures.size(); ++i) {
        const serve::InferenceResult r = futures[i].get();
        std::printf("%-26s %5zu %6zu   %-9s %6zu %6.1fms %6.1fms%s\n",
                    shots[i % shots.size()].label, r.predicted,
                    r.effective_bits,
                    serve::accuracyClassName(r.served), r.batch_size,
                    r.queue_ms, r.total_ms,
                    r.degraded ? "  (degraded)" : "");
    }

    // --- 5. Drain and inspect the metrics --------------------------
    server.drain();
    std::printf("\nmetrics snapshot:\n%s\n",
                server.metricsSnapshot().toJson().c_str());

    // --- 6. Overload: reject, shed, cancel -------------------------
    // A hardened server: at most 3 queued requests per class (reject
    // the rest at submit), doomed requests shed before compute (on by
    // default), in-flight requests cancelled once their deadline
    // passes. Flooding it with more work than it can possibly serve
    // in the deadline shows each policy firing; no future ever hangs.
    serve::ServerConfig hcfg;
    hcfg.limits.max_batch = 2;
    hcfg.limits.max_queue_delay = 2ms;
    hcfg.limits.max_queue_per_class = 3;
    hcfg.cancel_on_deadline = true;
    serve::InferenceServer hardened(sc, hcfg);

    serve::RequestOptions rushed;
    rushed.deadline = 30ms; // a couple of service times, no more
    std::vector<std::future<serve::InferenceResult>> flood;

    // An explicitly cancellable request, cancelled while it waits out
    // the batching delay: the token resolves the future with
    // ServeError(Cancelled) before any bits are spent on it.
    serve::InferenceServer::Submission sub = hardened.submitCancellable(
        nn::DigitDataset::render(7, 99), rushed);
    sub.cancel->cancel();
    flood.push_back(std::move(sub.result));

    for (size_t i = 0; i < 10; ++i)
        flood.push_back(hardened.submit(
            nn::DigitDataset::render(i % 10, 80 + i), rushed));

    std::printf("overload burst (%zu requests, queue cap %zu/class, "
                "%ldms deadline):\n",
                flood.size(), hcfg.limits.max_queue_per_class,
                static_cast<long>(rushed.deadline.count() / 1000));
    size_t served = 0;
    size_t failed[serve::kServeErrorCodes] = {};
    for (auto &f : flood) {
        try {
            const serve::InferenceResult r = f.get();
            ++served;
        } catch (const serve::ServeError &e) {
            ++failed[static_cast<size_t>(e.code())];
        }
    }
    std::printf("  served %zu", served);
    for (size_t c = 0; c < serve::kServeErrorCodes; ++c)
        if (failed[c] > 0)
            std::printf("  %s %zu",
                        serve::serveErrorCodeName(
                            static_cast<serve::ServeErrorCode>(c)),
                        failed[c]);
    std::printf("\n");
    hardened.drain();
    std::printf("\nhardened-server metrics snapshot:\n%s\n",
                hardened.metricsSnapshot().toJson().c_str());

    // --- 7. A model fleet: poison one, the rest keep serving -------
    // Three topologies behind one registry, each its own engine and
    // queue on the shared compute pool. Injected execution faults
    // poison "mini" until its circuit breaker trips: further requests
    // fail fast with ModelUnavailable (no queue slot, no compute).
    // Once the faults stop, the breaker's half-open probes bring it
    // back — all while "lenet5" and "mlp" answer normally.
    serve::FaultInjector faults;
    serve::RegistryConfig rc;
    rc.server_template.limits.max_batch = 2;
    rc.server_template.limits.max_queue_delay = 2ms;
    rc.faults = &faults;
    rc.breaker.alpha = 0.6;       // trip after 3 straight failures...
    rc.breaker.min_events = 3;
    rc.breaker.backoff = 30ms;    // ...probe again after 30ms
    rc.breaker.probe_quota = 2;
    serve::ModelRegistry registry(rc);

    const auto installSpec = [&](const char *id,
                                 const nn::TopologySpec &spec) {
        core::ScNetworkConfig mcfg;
        mcfg.bitstream_len = 128;
        mcfg.stream_segment_words = 1;
        nn::Network mnet = nn::buildTopology(spec, nn::PoolingMode::Max);
        const serve::InstallResult r = registry.install(
            id, serve::makeArtifact(id, 1, spec, nn::PoolingMode::Max,
                                    mcfg, mnet));
        std::printf("install %-7s v%u: %s\n", id, r.version,
                    r.ok ? "serving" : r.diagnostic.c_str());
    };
    nn::TopologySpec lenet5_spec;
    lenet5_spec.convs = {{20, 5}, {50, 5}};
    lenet5_spec.fc_hidden = {500};
    installSpec("lenet5", lenet5_spec);
    nn::TopologySpec mini_spec;
    mini_spec.convs = {{8, 5}};
    mini_spec.fc_hidden = {32};
    installSpec("mini", mini_spec);
    nn::TopologySpec mlp_spec;
    mlp_spec.fc_hidden = {500};
    installSpec("mlp", mlp_spec);

    const char *fleet[] = {"lenet5", "mini", "mlp"};
    size_t fleet_ok[3] = {}, fleet_rejected[3] = {}, fleet_other[3] = {};
    const auto fleetRound = [&](size_t rounds, bool poison_mini) {
        for (size_t r = 0; r < rounds; ++r) {
            for (size_t m = 0; m < 3; ++m) {
                if (poison_mini && m == 1)
                    faults.arm(serve::FaultPoint::ModelExecute, 1);
                try {
                    registry
                        .submit(fleet[m],
                                nn::DigitDataset::render(r % 10, 60 + r))
                        .get();
                    ++fleet_ok[m];
                } catch (const serve::ServeError &e) {
                    ++(e.code() ==
                               serve::ServeErrorCode::ModelUnavailable
                           ? fleet_rejected[m]
                           : fleet_other[m]);
                }
                if (poison_mini && m == 1)
                    faults.disarm(serve::FaultPoint::ModelExecute);
            }
        }
    };
    fleetRound(2, false); // healthy warm-up
    fleetRound(6, true);  // mini poisoned: trips after 3 failures
    std::printf("\nmid-chaos: mini is %s (breaker %s)\n",
                serve::modelStateName(registry.state("mini")),
                serve::breakerStateName(registry.breakerState("mini")));
    // Faults cleared: wait out the backoff, then traffic doubles as
    // half-open probes and closes the breaker again.
    std::this_thread::sleep_for(40ms);
    fleetRound(3, false);

    std::printf("per-model outcome tallies:\n");
    for (size_t m = 0; m < 3; ++m) {
        const serve::ModelSnapshot s = registry.modelSnapshot(fleet[m]);
        std::printf("  %-7s ok %2zu  unavailable %2zu  other %2zu | "
                    "state %-9s trips %llu recoveries %llu\n",
                    fleet[m], fleet_ok[m], fleet_rejected[m],
                    fleet_other[m], serve::modelStateName(s.state),
                    static_cast<unsigned long long>(s.trips),
                    static_cast<unsigned long long>(s.recoveries));
    }
    // --- 8. Tracing: the same traffic, on a timeline ---------------
    // Arm the recorder, replay a short healthy burst across the
    // fleet, and export a Chrome trace. clear() is safe here because
    // tracing has been disarmed so far (disarmed threads never write
    // to the rings) — the rule is writer quiescence, not server
    // shutdown.
    obs::TraceRecorder &rec = obs::TraceRecorder::instance();
    rec.labelThisThread("demo-main");
    rec.clear();
    rec.resetProfile();
    rec.arm();
    for (size_t r = 0; r < 4; ++r)
        for (const char *m : fleet)
            registry.submit(m, nn::DigitDataset::render(r % 10, 90 + r))
                .get();
    rec.disarm();

    const char *trace_path = "serving_demo_trace.json";
    std::printf("\ntrace written to %s: %s  (load it in "
                "chrome://tracing or ui.perfetto.dev)\n",
                trace_path,
                obs::writeChromeTrace(trace_path) ? "ok" : "FAILED");
    std::printf("per-phase profile of the traced burst:\n");
    for (const obs::PhaseProfileEntry &p : rec.profile())
        std::printf("  %-13s count %4llu  total %8.3f ms  max %7.3f ms\n",
                    obs::spanName(p.name),
                    static_cast<unsigned long long>(p.count),
                    static_cast<double>(p.total_ns) * 1e-6,
                    static_cast<double>(p.max_ns) * 1e-6);

    registry.drain();
    return 0;
}
