/**
 * @file
 * Serving-layer walkthrough: stand up an InferenceServer over a
 * LeNet-5 SC engine, submit a burst of digit images at mixed
 * quality-of-service — full-precision, balanced progressive, and
 * deadline-bounded requests — and read back what each request
 * actually got (prediction, effective bits, the class it was served
 * at, queue/total latency), then print the server's metrics snapshot.
 *
 * The point to take away: submit() never blocks on compute (it
 * returns a future), the scheduler coalesces compatible requests into
 * micro-batches, and a tight deadline buys fewer effective bits
 * instead of a miss — stochastic computing's progressive precision
 * surfaced as a serving policy.
 *
 * The final section floods an overload-hardened server (bounded
 * per-class admission, doomed-request shedding, explicit cancellation)
 * past its queue capacity: overflow is rejected at submit() with a
 * typed ServeError instead of queuing unboundedly, requests whose
 * deadline became unmeetable are shed before any bits are spent on
 * them, and a cancelled request resolves immediately — every future
 * gets an answer either way.
 */

#include <chrono>
#include <cstdio>
#include <future>
#include <vector>

#include "core/sc_network.h"
#include "nn/dataset.h"
#include "nn/network.h"
#include "serve/server.h"

using namespace scdcnn;
using namespace std::chrono_literals;

int
main()
{
    // --- 1. An engine, as in lenet5_inference ----------------------
    // (Untrained weights keep the demo self-contained; a trained
    // network drops in unchanged.)
    nn::Network net = nn::buildLeNet5(nn::PoolingMode::Max, 1);
    core::ScNetworkConfig cfg; // APC-APC-APC, max pooling
    cfg.bitstream_len = 256;
    cfg.stream_segment_words = 1; // 64-cycle Progressive checkpoints
    core::ScNetwork sc(net, cfg);

    // --- 2. A server in front of it --------------------------------
    serve::ServerConfig scfg;
    scfg.limits.max_batch = 4;         // micro-batch bound
    scfg.limits.max_queue_delay = 2ms; // latency bound at light load
    // Keep every request for the walkthrough, even one whose deadline
    // has become unmeetable — this section shows degradation trading
    // bits for latency; shedding (the default) is shown in section 6.
    scfg.limits.shed_doomed = false;
    serve::InferenceServer server(sc, scfg);

    // --- 3. Warm-up ------------------------------------------------
    // One request per class primes the scheduler's service-time
    // estimates; deadline urgency compares remaining budget against
    // them, so a cold server cannot know a deadline is tight yet.
    for (auto cls : {serve::AccuracyClass::High,
                     serve::AccuracyClass::Balanced,
                     serve::AccuracyClass::Fast}) {
        serve::RequestOptions w;
        w.accuracy = cls;
        server.submit(nn::DigitDataset::render(0, 1), w).get();
    }

    // --- 4. Mixed-QoS submissions ----------------------------------
    struct Shot
    {
        const char *label;
        serve::RequestOptions opts;
    };
    std::vector<Shot> shots;
    {
        serve::RequestOptions high;
        high.accuracy = serve::AccuracyClass::High;
        shots.push_back({"high (full precision)", high});

        serve::RequestOptions balanced; // the default class
        shots.push_back({"balanced (progressive)", balanced});

        serve::RequestOptions hurry;
        hurry.accuracy = serve::AccuracyClass::Balanced;
        hurry.deadline = 5ms; // tight: expect degradation, not a miss
        shots.push_back({"balanced + 5ms deadline", hurry});

        serve::RequestOptions fast;
        fast.accuracy = serve::AccuracyClass::Fast;
        shots.push_back({"fast (aggressive exit)", fast});
    }

    std::vector<std::future<serve::InferenceResult>> futures;
    futures.reserve(shots.size() * 2);
    for (size_t i = 0; i < shots.size() * 2; ++i) {
        const Shot &s = shots[i % shots.size()];
        futures.push_back(server.submit(
            nn::DigitDataset::render(i % 10, 40 + i), s.opts));
    }

    std::printf("%-26s %5s %6s/%zu %-9s %6s %8s %8s\n", "request",
                "pred", "bits", cfg.bitstream_len, "served", "batch",
                "queue", "total");
    for (size_t i = 0; i < futures.size(); ++i) {
        const serve::InferenceResult r = futures[i].get();
        std::printf("%-26s %5zu %6zu   %-9s %6zu %6.1fms %6.1fms%s\n",
                    shots[i % shots.size()].label, r.predicted,
                    r.effective_bits,
                    serve::accuracyClassName(r.served), r.batch_size,
                    r.queue_ms, r.total_ms,
                    r.degraded ? "  (degraded)" : "");
    }

    // --- 5. Drain and inspect the metrics --------------------------
    server.drain();
    std::printf("\nmetrics snapshot:\n%s\n",
                server.metricsSnapshot().toJson().c_str());

    // --- 6. Overload: reject, shed, cancel -------------------------
    // A hardened server: at most 3 queued requests per class (reject
    // the rest at submit), doomed requests shed before compute (on by
    // default), in-flight requests cancelled once their deadline
    // passes. Flooding it with more work than it can possibly serve
    // in the deadline shows each policy firing; no future ever hangs.
    serve::ServerConfig hcfg;
    hcfg.limits.max_batch = 2;
    hcfg.limits.max_queue_delay = 2ms;
    hcfg.limits.max_queue_per_class = 3;
    hcfg.cancel_on_deadline = true;
    serve::InferenceServer hardened(sc, hcfg);

    serve::RequestOptions rushed;
    rushed.deadline = 30ms; // a couple of service times, no more
    std::vector<std::future<serve::InferenceResult>> flood;

    // An explicitly cancellable request, cancelled while it waits out
    // the batching delay: the token resolves the future with
    // ServeError(Cancelled) before any bits are spent on it.
    serve::InferenceServer::Submission sub = hardened.submitCancellable(
        nn::DigitDataset::render(7, 99), rushed);
    sub.cancel->cancel();
    flood.push_back(std::move(sub.result));

    for (size_t i = 0; i < 10; ++i)
        flood.push_back(hardened.submit(
            nn::DigitDataset::render(i % 10, 80 + i), rushed));

    std::printf("overload burst (%zu requests, queue cap %zu/class, "
                "%ldms deadline):\n",
                flood.size(), hcfg.limits.max_queue_per_class,
                static_cast<long>(rushed.deadline.count() / 1000));
    size_t served = 0;
    size_t failed[serve::kServeErrorCodes] = {};
    for (auto &f : flood) {
        try {
            const serve::InferenceResult r = f.get();
            ++served;
        } catch (const serve::ServeError &e) {
            ++failed[static_cast<size_t>(e.code())];
        }
    }
    std::printf("  served %zu", served);
    for (size_t c = 0; c < serve::kServeErrorCodes; ++c)
        if (failed[c] > 0)
            std::printf("  %s %zu",
                        serve::serveErrorCodeName(
                            static_cast<serve::ServeErrorCode>(c)),
                        failed[c]);
    std::printf("\n");
    hardened.drain();
    std::printf("\nhardened-server metrics snapshot:\n%s\n",
                hardened.metricsSnapshot().toJson().c_str());
    return 0;
}
