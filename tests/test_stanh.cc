/**
 * @file
 * Tests for the Stanh K-state FSM (Section 3.2/4.3, Figures 6 and 11).
 */

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "sc/rng.h"
#include "sc/sng.h"
#include "sc/stanh.h"

namespace scdcnn {
namespace sc {
namespace {

double
stanhValue(unsigned k, double x, size_t len, uint64_t seed,
           int threshold = -1)
{
    Xoshiro256ss rng(seed);
    Bitstream in = sngBipolar(x, len, rng);
    Stanh fsm(k, threshold);
    return fsm.transform(in).bipolar();
}

TEST(Stanh, ConstantOnesSaturateHigh)
{
    Stanh fsm(8);
    Bitstream in = constantStream(true, 256);
    Bitstream out = fsm.transform(in);
    // After the short walk to the top, every output bit is 1.
    EXPECT_GT(out.bipolar(), 0.95);
}

TEST(Stanh, ConstantZerosSaturateLow)
{
    Stanh fsm(8);
    Bitstream in = constantStream(false, 256);
    EXPECT_LT(fsm.transform(in).bipolar(), -0.95);
}

TEST(Stanh, ZeroInputGivesZeroOutput)
{
    EXPECT_NEAR(stanhValue(8, 0.0, 1 << 16, 42), 0.0, 0.05);
}

/** Stanh(K,x) ~= tanh(Kx/2) across K and x. */
class StanhApproximation
    : public ::testing::TestWithParam<std::tuple<unsigned, double>>
{
};

TEST_P(StanhApproximation, MatchesScaledTanh)
{
    auto [k, x] = GetParam();
    const double got = stanhValue(k, x, 1 << 17, 1234 + k);
    const double want = Stanh::reference(k, x);
    EXPECT_NEAR(got, want, 0.06) << "K=" << k << " x=" << x;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StanhApproximation,
    ::testing::Combine(::testing::Values(4u, 8u, 16u),
                       ::testing::Values(-0.9, -0.5, -0.2, 0.0, 0.2, 0.5,
                                         0.9)));

TEST(Stanh, K2DegeneratesToIdentity)
{
    // The 2-state FSM simply follows its input, so its output equals x
    // (not tanh(x)): the tanh approximation only kicks in for K >= 4.
    EXPECT_NEAR(stanhValue(2, 0.5, 1 << 17, 9), 0.5, 0.02);
    EXPECT_NEAR(stanhValue(2, -0.8, 1 << 17, 10), -0.8, 0.02);
}

TEST(Stanh, MonotonicInInput)
{
    double prev = -2;
    for (double x = -1.0; x <= 1.01; x += 0.25) {
        double v = stanhValue(10, x, 1 << 16, 77);
        EXPECT_GE(v, prev - 0.03) << "x=" << x;
        prev = v;
    }
}

TEST(Stanh, OddSymmetry)
{
    for (double x : {0.2, 0.5, 0.8}) {
        double pos = stanhValue(12, x, 1 << 16, 101);
        double neg = stanhValue(12, -x, 1 << 16, 102);
        EXPECT_NEAR(pos, -neg, 0.06) << "x=" << x;
    }
}

TEST(Stanh, ShiftedThresholdBiasesOutputPositive)
{
    // The Figure 11 variant (threshold at K/5) emits 1 over more
    // states, so its output exceeds the classic design's for the same
    // input.
    const unsigned k = 20;
    double classic = stanhValue(k, 0.0, 1 << 16, 55);
    double shifted = stanhValue(k, 0.0, 1 << 16, 55, /*threshold=*/4);
    EXPECT_GT(shifted, classic + 0.2);
}

TEST(Stanh, ThresholdAccessors)
{
    Stanh a(10);
    EXPECT_EQ(a.k(), 10u);
    EXPECT_EQ(a.threshold(), 5u);
    Stanh b(10, 2);
    EXPECT_EQ(b.threshold(), 2u);
}

TEST(Stanh, ResetRestoresMidpointBehaviour)
{
    Stanh fsm(8);
    // Drive to saturation, then reset; a zero stream must again produce
    // the midpoint transient, not instant saturation.
    fsm.transform(constantStream(true, 64));
    fsm.reset();
    Bitstream out = fsm.transform(constantStream(false, 4));
    // From state 4 (midpoint of 8), outputs: state 3,2,1,0 -> all 0.
    EXPECT_EQ(out.countOnes(), 0u);
}

TEST(Stanh, StateSaturatesAtEnds)
{
    Stanh fsm(4);
    // Many 1s then a single 0 must output 1 (state K-2 >= K/2).
    for (int i = 0; i < 100; ++i)
        fsm.step(true);
    EXPECT_TRUE(fsm.step(false));
}

/**
 * Table 5 shape: with input spanning [-1,1] (so Stanh argument K/2*x
 * spans beyond the linear region), the relative inaccuracy vs
 * tanh(Kx/2) stays in the few-to-ten percent range reported by the
 * paper and does not explode for K in 8..20.
 */
class StanhTable5 : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(StanhTable5, RelativeInaccuracyInPaperRange)
{
    const unsigned k = GetParam();
    const size_t len = 8192;
    SplitMix64 vals(k);
    double rel_err_sum = 0;
    int trials = 60;
    for (int t = 0; t < trials; ++t) {
        double x = vals.nextInRange(-1.0, 1.0);
        double got = stanhValue(k, x, len, 500 + t);
        double want = Stanh::reference(k, x);
        rel_err_sum += std::abs(got - want);
    }
    // Mean absolute error normalized by the mean |tanh| magnitude.
    double mean_err = rel_err_sum / trials;
    EXPECT_LT(mean_err, 0.2) << "K=" << k;
    EXPECT_GT(mean_err, 0.0);
}

INSTANTIATE_TEST_SUITE_P(States, StanhTable5,
                         ::testing::Values(8u, 10u, 12u, 14u, 16u, 18u, 20u));

} // namespace
} // namespace sc
} // namespace scdcnn
