/**
 * @file
 * Tests for the SGD trainer: loss decreases, learns the synthetic
 * digits, deterministic, and the error-rate evaluator is correct.
 */

#include <gtest/gtest.h>

#include "nn/dataset.h"
#include "nn/network.h"
#include "nn/trainer.h"

namespace scdcnn {
namespace nn {
namespace {

TEST(Trainer, LossDecreasesOverTraining)
{
    Dataset train = DigitDataset::generate(300, 5);
    Network net = buildMiniLeNet(PoolingMode::Max, 1);

    TrainConfig one_epoch;
    one_epoch.epochs = 1;
    double first = Trainer(net, one_epoch).train(train);

    Network net2 = buildMiniLeNet(PoolingMode::Max, 1);
    TrainConfig three_epochs;
    three_epochs.epochs = 3;
    double third = Trainer(net2, three_epochs).train(train);
    EXPECT_LT(third, first);
}

TEST(Trainer, LearnsTheSyntheticDigits)
{
    Dataset train = DigitDataset::generate(1500, 6);
    Dataset test = DigitDataset::generate(200, 7);
    Network net = buildMiniLeNet(PoolingMode::Max, 2);
    TrainConfig cfg;
    cfg.epochs = 5;
    Trainer(net, cfg).train(train);
    // Far better than the 90% random-guess rate after a short run.
    EXPECT_LT(Trainer::errorRate(net, test), 0.12);
}

TEST(Trainer, DeterministicAcrossRuns)
{
    Dataset train = DigitDataset::generate(100, 8);
    Network a = buildMiniLeNet(PoolingMode::Average, 3);
    Network b = buildMiniLeNet(PoolingMode::Average, 3);
    TrainConfig cfg;
    cfg.epochs = 1;
    Trainer(a, cfg).train(train);
    Trainer(b, cfg).train(train);
    EXPECT_EQ(*a.layer(0).weights(), *b.layer(0).weights());
}

TEST(Trainer, ErrorRateCountsMispredictions)
{
    // An untrained network on balanced data sits near 90% error.
    Dataset test = DigitDataset::generate(200, 9);
    Network net = buildMiniLeNet(PoolingMode::Max, 4);
    double err = Trainer::errorRate(net, test);
    EXPECT_GT(err, 0.5);
    EXPECT_LE(err, 1.0);
}

TEST(Trainer, AvgPoolingVariantAlsoLearns)
{
    // The average-pooling variant converges more slowly under the
    // scaled activation; give it a couple more epochs.
    Dataset train = DigitDataset::generate(600, 10);
    Dataset test = DigitDataset::generate(200, 11);
    Network net = buildMiniLeNet(PoolingMode::Average, 5);
    TrainConfig cfg;
    cfg.epochs = 6;
    Trainer(net, cfg).train(train);
    EXPECT_LT(Trainer::errorRate(net, test), 0.15);
}

} // namespace
} // namespace nn
} // namespace scdcnn
