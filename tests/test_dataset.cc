/**
 * @file
 * Tests for the procedural digit dataset and the MNIST IDX loader.
 */

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "nn/dataset.h"

namespace scdcnn {
namespace nn {
namespace {

TEST(DigitDataset, GeneratesRequestedCount)
{
    Dataset ds = DigitDataset::generate(25, 1);
    EXPECT_EQ(ds.size(), 25u);
}

TEST(DigitDataset, LabelsAreBalancedRoundRobin)
{
    Dataset ds = DigitDataset::generate(100, 2);
    std::vector<int> counts(10, 0);
    for (const auto &s : ds.samples)
        counts[s.label]++;
    for (int c : counts)
        EXPECT_EQ(c, 10);
}

TEST(DigitDataset, DeterministicPerSeed)
{
    Dataset a = DigitDataset::generate(10, 42);
    Dataset b = DigitDataset::generate(10, 42);
    for (size_t i = 0; i < 10; ++i) {
        ASSERT_EQ(a.samples[i].label, b.samples[i].label);
        ASSERT_EQ(a.samples[i].image.data(), b.samples[i].image.data());
    }
}

TEST(DigitDataset, DifferentSeedsDiffer)
{
    Tensor a = DigitDataset::render(5, 1);
    Tensor b = DigitDataset::render(5, 2);
    EXPECT_NE(a.data(), b.data());
}

TEST(DigitDataset, PixelsInUnitRange)
{
    for (size_t d = 0; d < 10; ++d) {
        Tensor img = DigitDataset::render(d, 7 + d);
        for (float v : img.data()) {
            EXPECT_GE(v, 0.0f);
            EXPECT_LE(v, 1.0f);
        }
    }
}

TEST(DigitDataset, EveryDigitHasInk)
{
    // Each rendered glyph must contain a meaningful amount of ink and
    // a meaningful amount of background.
    for (size_t d = 0; d < 10; ++d) {
        Tensor img = DigitDataset::render(d, 100 + d);
        double ink = 0;
        for (float v : img.data())
            ink += v;
        EXPECT_GT(ink, 15.0) << "digit " << d;
        EXPECT_LT(ink, 350.0) << "digit " << d;
    }
}

TEST(DigitDataset, ClassesAreVisuallyDistinct)
{
    // Mean images of different classes should differ substantially
    // more than instances within a class (a weak separability check).
    auto mean_image = [](size_t digit) {
        Tensor acc(1, 28, 28);
        for (int i = 0; i < 20; ++i) {
            Tensor img = DigitDataset::render(digit, 1000 + i);
            for (size_t p = 0; p < acc.size(); ++p)
                acc[p] += img[p] / 20.0f;
        }
        return acc;
    };
    Tensor m1 = mean_image(1);
    Tensor m8 = mean_image(8);
    double diff = 0;
    for (size_t p = 0; p < m1.size(); ++p)
        diff += std::abs(m1[p] - m8[p]);
    EXPECT_GT(diff, 30.0);
}

TEST(LoadMnist, MissingFilesReturnFalse)
{
    Dataset ds;
    EXPECT_FALSE(loadMnist("/no/such/images", "/no/such/labels", ds));
}

TEST(LoadMnist, ParsesWellFormedIdx)
{
    // Craft a 2-image IDX pair.
    const std::string img_path = ::testing::TempDir() + "/imgs";
    const std::string lbl_path = ::testing::TempDir() + "/lbls";
    {
        std::FILE *f = std::fopen(img_path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        auto be32 = [f](uint32_t v) {
            unsigned char b[4] = {static_cast<unsigned char>(v >> 24),
                                  static_cast<unsigned char>(v >> 16),
                                  static_cast<unsigned char>(v >> 8),
                                  static_cast<unsigned char>(v)};
            std::fwrite(b, 1, 4, f);
        };
        be32(2051);
        be32(2);
        be32(28);
        be32(28);
        std::vector<unsigned char> px(28 * 28 * 2, 128);
        px[0] = 255;
        std::fwrite(px.data(), 1, px.size(), f);
        std::fclose(f);
    }
    {
        std::FILE *f = std::fopen(lbl_path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        unsigned char hdr[8] = {0, 0, 8, 1, 0, 0, 0, 2};
        std::fwrite(hdr, 1, 8, f);
        unsigned char labels[2] = {3, 9};
        std::fwrite(labels, 1, 2, f);
        std::fclose(f);
    }

    Dataset ds;
    ASSERT_TRUE(loadMnist(img_path, lbl_path, ds));
    ASSERT_EQ(ds.size(), 2u);
    EXPECT_EQ(ds.samples[0].label, 3u);
    EXPECT_EQ(ds.samples[1].label, 9u);
    EXPECT_NEAR(ds.samples[0].image[0], 1.0f, 1e-6);
    EXPECT_NEAR(ds.samples[0].image[1], 128.0f / 255.0f, 1e-6);

    // Limit applies.
    Dataset limited;
    ASSERT_TRUE(loadMnist(img_path, lbl_path, limited, 1));
    EXPECT_EQ(limited.size(), 1u);

    std::remove(img_path.c_str());
    std::remove(lbl_path.c_str());
}

TEST(LoadDigits, FallsBackToProceduralData)
{
    Dataset train, test;
    loadDigits("/no/such/dir", 50, 20, train, test);
    EXPECT_EQ(train.size(), 50u);
    EXPECT_EQ(test.size(), 20u);
    // Train and test come from disjoint seeds.
    EXPECT_NE(train.samples[0].image.data(), test.samples[0].image.data());
}

} // namespace
} // namespace nn
} // namespace scdcnn
