/**
 * @file
 * Tests for the Btanh binary-input tanh unit (Section 4.3).
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "sc/btanh.h"
#include "sc/counter.h"
#include "sc/rng.h"
#include "sc/sng.h"

namespace scdcnn {
namespace sc {
namespace {

/**
 * Build n product streams whose non-scaled inner-product sum is s (each
 * line carries s/n bipolar), count columns exactly, run Btanh.
 */
double
btanhOfSum(unsigned n, double s, unsigned k, size_t len, uint64_t seed)
{
    SngBank bank(seed);
    std::vector<Bitstream> lines;
    lines.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        lines.push_back(bank.bipolar(s / n, len));
    auto counts = ParallelCounter::counts(lines);
    Btanh unit(k, n);
    return unit.transform(counts).bipolar();
}

TEST(Btanh, RejectsDegenerateStateCount)
{
    EXPECT_EQ(Btanh(2, 4).k(), 2u);
}

TEST(Btanh, SaturatesHighForLargePositiveSum)
{
    EXPECT_GT(btanhOfSum(16, 8.0, Btanh::stateCountDirect(16), 4096, 1),
              0.95);
}

TEST(Btanh, SaturatesLowForLargeNegativeSum)
{
    EXPECT_LT(btanhOfSum(16, -8.0, Btanh::stateCountDirect(16), 4096, 2),
              -0.95);
}

TEST(Btanh, ZeroSumGivesNearZero)
{
    EXPECT_NEAR(btanhOfSum(16, 0.0, Btanh::stateCountDirect(16),
                           1 << 15, 3),
                0.0, 0.1);
}

/**
 * With the original (direct) sizing K ~= 2N, Btanh approximates
 * tanh(s) for the non-scaled inner-product sum s.
 */
class BtanhDirect : public ::testing::TestWithParam<double>
{
};

TEST_P(BtanhDirect, ApproximatesTanhOfSum)
{
    const double s = GetParam();
    const unsigned n = 32;
    double got = btanhOfSum(n, s, Btanh::stateCountDirect(n), 1 << 15, 7);
    EXPECT_NEAR(got, std::tanh(s), 0.13) << "s=" << s;
}

INSTANTIATE_TEST_SUITE_P(Sums, BtanhDirect,
                         ::testing::Values(-2.0, -1.0, -0.5, 0.0, 0.5, 1.0,
                                           2.0));

TEST(Btanh, MonotonicInSum)
{
    const unsigned n = 16;
    double prev = -2;
    for (double s = -3.0; s <= 3.01; s += 0.75) {
        double v = btanhOfSum(n, s, Btanh::stateCountDirect(n),
                              1 << 14, 11);
        EXPECT_GE(v, prev - 0.05) << "s=" << s;
        prev = v;
    }
}

TEST(Btanh, OddSymmetry)
{
    const unsigned n = 16;
    for (double s : {0.5, 1.0, 2.0}) {
        double pos = btanhOfSum(n, s, Btanh::stateCountDirect(n),
                                1 << 14, 13);
        double neg = btanhOfSum(n, -s, Btanh::stateCountDirect(n),
                                1 << 14, 14);
        EXPECT_NEAR(pos, -neg, 0.1) << "s=" << s;
    }
}

TEST(Btanh, StateCountEquations)
{
    // Eq. (3): nearest even of N/2.
    EXPECT_EQ(Btanh::stateCountAvgPool(16), 8u);
    EXPECT_EQ(Btanh::stateCountAvgPool(25), 12u);
    EXPECT_EQ(Btanh::stateCountAvgPool(64), 32u);
    EXPECT_EQ(Btanh::stateCountAvgPool(2), 2u);
    // Direct sizing: nearest even of 2N.
    EXPECT_EQ(Btanh::stateCountDirect(16), 32u);
    EXPECT_EQ(Btanh::stateCountDirect(25), 50u);
}

TEST(NearestEvenState, RoundsToEvenWithFloorOfTwo)
{
    EXPECT_EQ(nearestEvenState(7.9), 8u);
    EXPECT_EQ(nearestEvenState(8.0), 8u);
    EXPECT_EQ(nearestEvenState(9.1), 10u);
    EXPECT_EQ(nearestEvenState(0.3), 2u);
    EXPECT_EQ(nearestEvenState(-4.0), 2u);
}

TEST(Btanh, TransformSignedMatchesStepSequence)
{
    Btanh a(8, 4);
    Btanh b(8, 4);
    std::vector<uint16_t> counts = {4, 4, 3, 1, 0, 2, 4, 4, 4};
    std::vector<int> steps;
    for (auto c : counts)
        steps.push_back(2 * c - 4);
    EXPECT_EQ(a.transform(counts), b.transformSigned(steps));
}

TEST(Btanh, ResetRestoresMidpoint)
{
    Btanh unit(16, 4);
    for (int i = 0; i < 50; ++i)
        unit.step(4); // drive to the top
    unit.reset();
    // One neutral step from the midpoint must output 1 (state == K/2).
    EXPECT_TRUE(unit.step(2));
    // A strong negative step pulls below the threshold immediately.
    EXPECT_FALSE(unit.step(0));
}

TEST(Btanh, ApproxCountsCloseToExactCounts)
{
    // End-to-end: Btanh over APC counts is close to Btanh over exact
    // counts (the APC's bounded LSB error barely moves the output).
    const unsigned n = 32;
    SngBank bank(77);
    std::vector<Bitstream> lines;
    for (unsigned i = 0; i < n; ++i)
        lines.push_back(bank.bipolar(0.02, 1 << 14));
    auto exact = ParallelCounter::counts(lines);
    auto approx = ApproxParallelCounter::counts(lines);
    Btanh u1(Btanh::stateCountDirect(n), n);
    Btanh u2(Btanh::stateCountDirect(n), n);
    double v1 = u1.transform(exact).bipolar();
    double v2 = u2.transform(approx).bipolar();
    EXPECT_NEAR(v1, v2, 0.08);
}

} // namespace
} // namespace sc
} // namespace scdcnn
