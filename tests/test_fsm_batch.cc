/**
 * @file
 * Randomized bit-exact equivalence tests for the table-driven batched
 * activation FSMs (sc/fsm_batch.h) against the scalar Stanh/Btanh
 * steppers — the oracle side of the twin contract: K across even
 * values, custom thresholds, lengths across word boundaries, and
 * Btanh deltas on both sides of the bucketed-table range.
 */

#include <algorithm>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "sc/btanh.h"
#include "sc/fsm_batch.h"
#include "sc/rng.h"
#include "sc/sng.h"
#include "sc/stanh.h"

namespace scdcnn {
namespace {

class StanhBatchVsScalar
    : public ::testing::TestWithParam<std::tuple<unsigned, size_t>>
{
};

TEST_P(StanhBatchVsScalar, DefaultThresholdBitExact)
{
    auto [k, len] = GetParam();
    sc::SngBank bank(10 + k * 131 + len);
    sc::SplitMix64 vals(k ^ len);
    sc::StanhBatchTable table(k);
    for (int rep = 0; rep < 4; ++rep) {
        sc::Bitstream in =
            bank.bipolar(vals.nextInRange(-1, 1), len);
        sc::Stanh scalar(k);
        sc::Bitstream batch;
        table.transform(in, batch);
        EXPECT_EQ(batch, scalar.transform(in))
            << "k=" << k << " len=" << len << " rep=" << rep;
    }
}

TEST_P(StanhBatchVsScalar, CustomThresholdBitExact)
{
    auto [k, len] = GetParam();
    // The Figure 11 re-designed threshold K/5 (>= 1), plus an extreme.
    const int thresholds[] = {std::max(1, static_cast<int>(k) / 5),
                              static_cast<int>(k) - 1};
    sc::SngBank bank(20 + k * 131 + len);
    sc::SplitMix64 vals(k * 3 ^ len);
    for (int thr : thresholds) {
        sc::StanhBatchTable table(k, thr);
        sc::Bitstream in =
            bank.bipolar(vals.nextInRange(-1, 1), len);
        sc::Stanh scalar(k, thr);
        sc::Bitstream batch;
        table.transform(in, batch);
        EXPECT_EQ(batch, scalar.transform(in))
            << "k=" << k << " thr=" << thr << " len=" << len;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StanhBatchVsScalar,
    ::testing::Combine(
        // Even state counts per the paper, including the minimum.
        ::testing::Values(2u, 4u, 6u, 16u, 32u, 178u),
        // Lengths around byte and word boundaries and realistic L.
        ::testing::Values(1, 7, 8, 9, 63, 64, 65, 300, 1024)));

class BtanhBatchVsScalar
    : public ::testing::TestWithParam<
          std::tuple<unsigned, unsigned, size_t>>
{
};

TEST_P(BtanhBatchVsScalar, CountsBitExact)
{
    auto [k, n, len] = GetParam();
    sc::SplitMix64 vals(30 + k * 131 + n * 17 + len);
    sc::BtanhBatchTable table(k, n);
    for (int rep = 0; rep < 4; ++rep) {
        // Counts across the full [0, n] range: with n > 63 many of the
        // deltas 2v - n land outside the bucketed table and exercise
        // the scalar fallback.
        std::vector<uint16_t> counts(len);
        for (auto &c : counts)
            c = static_cast<uint16_t>(vals.nextBelow(n + 1));
        sc::Btanh scalar(k, n);
        sc::Bitstream batch;
        table.transform(counts, batch);
        EXPECT_EQ(batch, scalar.transform(counts))
            << "k=" << k << " n=" << n << " len=" << len
            << " rep=" << rep;
    }
}

TEST_P(BtanhBatchVsScalar, SignedStepsBitExact)
{
    auto [k, n, len] = GetParam();
    sc::SplitMix64 vals(40 + k * 131 + n * 17 + len);
    sc::BtanhBatchTable table(k, n);
    const int span = 2 * static_cast<int>(n) + 1;
    std::vector<int> steps(len);
    for (auto &s : steps)
        s = static_cast<int>(vals.nextBelow(
                static_cast<uint64_t>(span))) -
            static_cast<int>(n);
    sc::Btanh scalar(k, n);
    sc::Bitstream batch;
    table.transformSigned(steps, batch);
    EXPECT_EQ(batch, scalar.transformSigned(steps))
        << "k=" << k << " n=" << n << " len=" << len;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BtanhBatchVsScalar,
    ::testing::Combine(
        // State counts across the layer sizings (2N clamped).
        ::testing::Values(2u, 8u, 34u, 180u),
        // Fan-ins below and above the +/-127 delta bucket range.
        ::testing::Values(5u, 26u, 151u, 257u),
        // Lengths across word boundaries.
        ::testing::Values(1, 63, 64, 65, 300, 1024)));

TEST(ResumableTransforms, WordAlignedChunksMatchWholeStream)
{
    // The segment-streaming engine transforms a stream in word-aligned
    // chunks with the FSM state carried in between; the concatenated
    // outputs must be bit-exact with one whole-stream transform for
    // every chunking, including a final partial word.
    sc::SplitMix64 vals(31);
    const size_t len = 300; // 4 full words + a 44-bit tail
    const size_t n_words = (len + 63) / 64;

    sc::Bitstream in(len);
    for (size_t i = 0; i < len; ++i)
        in.set(i, (vals.next() & 1) != 0);
    std::vector<uint16_t> counts(len);
    std::vector<int> steps(len);
    for (size_t i = 0; i < len; ++i) {
        counts[i] = static_cast<uint16_t>(vals.nextBelow(26));
        steps[i] = static_cast<int>(vals.nextBelow(51)) - 25;
    }

    const sc::StanhBatchTable stanh(8);
    const sc::BtanhBatchTable btanh(12, 25);
    sc::Bitstream whole_stanh;
    stanh.transform(in, whole_stanh);
    sc::Bitstream whole_btanh, whole_signed;
    btanh.transform(counts, whole_btanh);
    btanh.transformSigned(steps, whole_signed);

    for (size_t seg_words : {size_t{1}, size_t{2}, size_t{3}}) {
        std::vector<uint64_t> out_stanh(n_words, ~uint64_t{0});
        std::vector<uint64_t> out_btanh(n_words, ~uint64_t{0});
        std::vector<uint64_t> out_signed(n_words, ~uint64_t{0});
        uint16_t s_state = stanh.initialState();
        uint16_t b_state = btanh.initialState();
        uint16_t g_state = btanh.initialState();
        for (size_t w0 = 0; w0 < n_words; w0 += seg_words) {
            const size_t w1 = std::min(w0 + seg_words, n_words);
            const size_t n_cycles = std::min(w1 * 64, len) - w0 * 64;
            stanh.transformWords(in.words().data() + w0, n_cycles,
                                 out_stanh.data() + w0, &s_state);
            btanh.transformWords(counts.data() + w0 * 64, n_cycles,
                                 out_btanh.data() + w0, &b_state);
            btanh.transformSignedWords(steps.data() + w0 * 64, n_cycles,
                                       out_signed.data() + w0, &g_state);
        }
        EXPECT_EQ(out_stanh, whole_stanh.words())
            << "seg_words " << seg_words;
        EXPECT_EQ(out_btanh, whole_btanh.words())
            << "seg_words " << seg_words;
        EXPECT_EQ(out_signed, whole_signed.words())
            << "seg_words " << seg_words;
    }
}

TEST(FsmTableCache, SharesTablesByParameters)
{
    sc::FsmTableCache cache;
    const sc::StanhBatchTable &a = cache.stanh(8);
    const sc::StanhBatchTable &b = cache.stanh(8, 4); // 4 == 8/2 default
    const sc::StanhBatchTable &c = cache.stanh(8, 2);
    EXPECT_EQ(&a, &b);
    EXPECT_NE(&a, &c);

    const sc::BtanhBatchTable &d = cache.btanh(8, 26);
    const sc::BtanhBatchTable &e = cache.btanh(8, 26);
    const sc::BtanhBatchTable &f = cache.btanh(8, 27);
    EXPECT_EQ(&d, &e);
    EXPECT_NE(&d, &f);
}

TEST(StanhBatchTable, EmptyStreamIsFine)
{
    sc::StanhBatchTable table(4);
    sc::Bitstream out;
    table.transform(sc::Bitstream(), out);
    EXPECT_TRUE(out.empty());
}

} // namespace
} // namespace scdcnn
