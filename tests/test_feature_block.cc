/**
 * @file
 * Tests for the four feature extraction blocks (Section 4.4).
 */

#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "blocks/feature_block.h"
#include "sc/rng.h"

namespace scdcnn {
namespace blocks {
namespace {

using Field = std::vector<std::vector<double>>;

/** Random receptive fields / weights, values scaled by @p amp. */
std::pair<Field, Field>
randomFields(size_t pool, size_t n, uint64_t seed, double amp = 1.0)
{
    sc::SplitMix64 rng(seed);
    Field xs(pool), ws(pool);
    for (size_t j = 0; j < pool; ++j) {
        for (size_t i = 0; i < n; ++i) {
            xs[j].push_back(rng.nextInRange(-amp, amp));
            ws[j].push_back(rng.nextInRange(-amp, amp));
        }
    }
    return {xs, ws};
}

double
meanInaccuracy(FebKind kind, size_t n, size_t len, int trials,
               uint64_t seed, KPolicy policy = KPolicy::Paper,
               double amp = 1.0)
{
    FebConfig cfg;
    cfg.kind = kind;
    cfg.n_inputs = n;
    cfg.length = len;
    cfg.k_policy = policy;
    FeatureBlock feb(cfg);
    double err = 0;
    for (int t = 0; t < trials; ++t) {
        auto [xs, ws] = randomFields(4, n, seed + t, amp);
        double got = feb.evaluate(xs, ws, seed * 31 + t);
        double want = FeatureBlock::reference(xs, ws, kind);
        err += std::abs(got - want);
    }
    return err / trials;
}

TEST(FebKindNames, AllDistinctAndDescriptive)
{
    EXPECT_EQ(febKindName(FebKind::MuxAvgStanh), "MUX-Avg-Stanh");
    EXPECT_EQ(febKindName(FebKind::MuxMaxStanh), "MUX-Max-Stanh");
    EXPECT_EQ(febKindName(FebKind::ApcAvgBtanh), "APC-Avg-Btanh");
    EXPECT_EQ(febKindName(FebKind::ApcMaxBtanh), "APC-Max-Btanh");
}

TEST(FebKindTraits, ApcAndMaxFlags)
{
    EXPECT_FALSE(febUsesApc(FebKind::MuxAvgStanh));
    EXPECT_TRUE(febUsesApc(FebKind::ApcMaxBtanh));
    EXPECT_TRUE(febUsesMaxPool(FebKind::MuxMaxStanh));
    EXPECT_FALSE(febUsesMaxPool(FebKind::ApcAvgBtanh));
}

TEST(FeatureBlockReference, AvgKindsUseMeanPooling)
{
    Field xs = {{1.0}, {1.0}, {1.0}, {1.0}};
    Field ws = {{0.1}, {0.2}, {0.3}, {0.4}};
    // mean(0.1,0.2,0.3,0.4) = 0.25
    EXPECT_NEAR(FeatureBlock::reference(xs, ws, FebKind::ApcAvgBtanh),
                std::tanh(0.25), 1e-12);
}

TEST(FeatureBlockReference, MaxKindsUseMaxPooling)
{
    Field xs = {{1.0}, {1.0}, {1.0}, {1.0}};
    Field ws = {{0.1}, {0.2}, {0.3}, {-0.4}};
    EXPECT_NEAR(FeatureBlock::reference(xs, ws, FebKind::ApcMaxBtanh),
                std::tanh(0.3), 1e-12);
}

/**
 * Fig. 14 headline property: the APC-based blocks are substantially more
 * accurate than the MUX-based blocks at every size.
 */
class FebAccuracyOrdering : public ::testing::TestWithParam<int>
{
};

TEST_P(FebAccuracyOrdering, ApcBeatsMux)
{
    const int n = GetParam();
    double mux = meanInaccuracy(FebKind::MuxAvgStanh, n, 1024, 12, 900);
    double apc = meanInaccuracy(FebKind::ApcAvgBtanh, n, 1024, 12, 900);
    EXPECT_LT(apc, mux) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, FebAccuracyOrdering,
                         ::testing::Values(16, 64));

TEST(FebAccuracy, ApcAvgBtanhIsAccurate)
{
    // Eq. (3) sizing reproduces tanh(mean inner product) closely.
    double err = meanInaccuracy(FebKind::ApcAvgBtanh, 16, 1024, 20, 901);
    EXPECT_LT(err, 0.15);
}

TEST(FebAccuracy, ApcMaxBtanhIsAccurate)
{
    double err = meanInaccuracy(FebKind::ApcMaxBtanh, 16, 1024, 20, 902);
    EXPECT_LT(err, 0.2);
}

TEST(FebAccuracy, ApcMaxImprovesWithMoreInputs)
{
    // Section 6.1: APC-Max-Btanh is the one design whose accuracy does
    // not degrade with input size (max selection gets easier).
    double small = meanInaccuracy(FebKind::ApcMaxBtanh, 16, 1024, 15, 903);
    double large = meanInaccuracy(FebKind::ApcMaxBtanh, 128, 1024, 15, 903);
    EXPECT_LT(large, small + 0.05);
}

TEST(FebAccuracy, MuxBlocksDegradeWithInputSize)
{
    double small = meanInaccuracy(FebKind::MuxAvgStanh, 16, 1024, 15, 904);
    double large = meanInaccuracy(FebKind::MuxAvgStanh, 256, 1024, 15, 904);
    EXPECT_GT(large, small);
}

TEST(FebAccuracy, LongerStreamsHelpMuxMax)
{
    double short_l =
        meanInaccuracy(FebKind::MuxMaxStanh, 32, 256, 15, 905);
    double long_l =
        meanInaccuracy(FebKind::MuxMaxStanh, 32, 4096, 15, 905);
    EXPECT_LT(long_l, short_l + 0.02);
}

TEST(FebScaleBack, RecoversTanhForMuxAvg)
{
    // With K = 2N the MUX-Avg block reproduces tanh(s) — accuracy on
    // small fields should be solid at long lengths.
    double err = meanInaccuracy(FebKind::MuxAvgStanh, 16, 8192, 15, 906,
                                KPolicy::ScaleBack);
    EXPECT_LT(err, 0.2);
}

TEST(FebStateCounts, FollowPolicy)
{
    FebConfig cfg;
    cfg.kind = FebKind::MuxAvgStanh;
    cfg.n_inputs = 16;
    cfg.length = 1024;
    EXPECT_EQ(FeatureBlock(cfg).stateCount(), 10u);
    cfg.k_policy = KPolicy::ScaleBack;
    EXPECT_EQ(FeatureBlock(cfg).stateCount(), 32u);
    cfg.kind = FebKind::ApcAvgBtanh;
    cfg.k_policy = KPolicy::Paper;
    EXPECT_EQ(FeatureBlock(cfg).stateCount(), 8u);
    cfg.kind = FebKind::ApcMaxBtanh;
    EXPECT_EQ(FeatureBlock(cfg).stateCount(), 32u);
}

TEST(FeatureBlock, DeterministicForSameSeed)
{
    FebConfig cfg;
    cfg.kind = FebKind::ApcMaxBtanh;
    cfg.n_inputs = 16;
    cfg.length = 512;
    FeatureBlock feb(cfg);
    auto [xs, ws] = randomFields(4, 16, 42);
    EXPECT_DOUBLE_EQ(feb.evaluate(xs, ws, 7), feb.evaluate(xs, ws, 7));
}

TEST(FeatureBlock, OutputInBipolarRange)
{
    for (FebKind kind : {FebKind::MuxAvgStanh, FebKind::MuxMaxStanh,
                         FebKind::ApcAvgBtanh, FebKind::ApcMaxBtanh}) {
        FebConfig cfg;
        cfg.kind = kind;
        cfg.n_inputs = 16;
        cfg.length = 256;
        FeatureBlock feb(cfg);
        auto [xs, ws] = randomFields(4, 16, 55);
        double v = feb.evaluate(xs, ws, 3);
        EXPECT_GE(v, -1.0);
        EXPECT_LE(v, 1.0);
    }
}

TEST(FeatureBlock, SaturatedPositiveInputs)
{
    // All x=w=1: every inner product sum is N, tanh(N) ~ 1; every
    // design must saturate high.
    Field xs(4, std::vector<double>(16, 1.0));
    Field ws(4, std::vector<double>(16, 1.0));
    for (FebKind kind : {FebKind::MuxAvgStanh, FebKind::MuxMaxStanh,
                         FebKind::ApcAvgBtanh, FebKind::ApcMaxBtanh}) {
        FebConfig cfg;
        cfg.kind = kind;
        cfg.n_inputs = 16;
        cfg.length = 1024;
        FeatureBlock feb(cfg);
        EXPECT_GT(feb.evaluate(xs, ws, 9), 0.8) << febKindName(kind);
    }
}

} // namespace
} // namespace blocks
} // namespace scdcnn
