/**
 * @file
 * Bit-exactness of the runtime-dispatched AVX2 kernels against the
 * always-built scalar paths (the dispatch rule of DESIGN.md: the
 * scalar path is the oracle, AVX2 must agree exactly). Each test runs
 * the same fused kernel with SIMD enabled and disabled and compares;
 * on hosts without AVX2 both runs take the scalar path and the tests
 * degenerate to self-comparison.
 */

#include <algorithm>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "sc/bitstream.h"
#include "sc/fused.h"
#include "sc/rng.h"
#include "sc/simd.h"
#include "sc/sng.h"

namespace scdcnn {
namespace {

/** Restore the processwide SIMD selection after each test. */
class SimdTest : public ::testing::Test
{
  protected:
    void TearDown() override { sc::simd::setEnabled(true); }
};

struct OperandSet
{
    std::vector<sc::Bitstream> xs, ws;
    std::vector<sc::BitstreamView> xv, wv;

    OperandSet(size_t n, size_t len, uint64_t seed)
    {
        sc::SngBank bank(seed);
        sc::SplitMix64 vals(seed ^ 0xABCD);
        for (size_t i = 0; i < n; ++i) {
            xs.push_back(bank.bipolar(vals.nextInRange(-1, 1), len));
            ws.push_back(bank.bipolar(vals.nextInRange(-1, 1), len));
        }
        xv = sc::toViews(xs);
        wv = sc::toViews(ws);
    }
};

class SimdVsScalar
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>>
{
  protected:
    void TearDown() { sc::simd::setEnabled(true); }
};

TEST_P(SimdVsScalar, ProductCountsMatch)
{
    auto [n, len] = GetParam();
    OperandSet ops(n, len, 5000 + n * 131 + len);
    for (bool approximate : {false, true}) {
        std::vector<uint16_t> with_simd, without;
        sc::simd::setEnabled(true);
        sc::fusedProductCounts(ops.xv, ops.wv, approximate, with_simd);
        sc::simd::setEnabled(false);
        sc::fusedProductCounts(ops.xv, ops.wv, approximate, without);
        EXPECT_EQ(with_simd, without)
            << "n=" << n << " len=" << len << " approx=" << approximate;
    }
}

TEST_P(SimdVsScalar, LineCountsMatch)
{
    auto [n, len] = GetParam();
    OperandSet ops(n, len, 6000 + n * 131 + len);
    for (bool approximate : {false, true}) {
        std::vector<uint16_t> with_simd, without;
        sc::simd::setEnabled(true);
        sc::fusedLineCounts(ops.xv, approximate, with_simd);
        sc::simd::setEnabled(false);
        sc::fusedLineCounts(ops.xv, approximate, without);
        EXPECT_EQ(with_simd, without)
            << "n=" << n << " len=" << len << " approx=" << approximate;
    }
}

TEST_P(SimdVsScalar, ProductCountTotalMatches)
{
    auto [n, len] = GetParam();
    OperandSet ops(n, len, 7000 + n * 131 + len);
    for (bool approximate : {false, true}) {
        sc::simd::setEnabled(true);
        const uint64_t with_simd =
            sc::fusedProductCountTotal(ops.xv, ops.wv, approximate);
        sc::simd::setEnabled(false);
        const uint64_t without =
            sc::fusedProductCountTotal(ops.xv, ops.wv, approximate);
        EXPECT_EQ(with_simd, without)
            << "n=" << n << " len=" << len << " approx=" << approximate;
    }
}

TEST_P(SimdVsScalar, ProductCountsMultiMatch)
{
    // The AVX2 filter-lane compressor tree against the scalar
    // plane-insertion path of the same kernel, over ragged lane counts
    // and word sub-ranges (the scalar path also covers the stream's
    // partial tail word when SIMD is on).
    auto [n, len] = GetParam();
    OperandSet ops(n, len, 8000 + n * 131 + len);
    for (size_t filters : {size_t{1}, size_t{4}, size_t{6}}) {
        sc::InterleavedWeightArena arena;
        arena.reset(filters, n, len);
        sc::SngBank bank(42 + filters);
        sc::SplitMix64 vals(7 * filters);
        for (size_t f = 0; f < filters; ++f)
            for (size_t t = 0; t < n; ++t)
                arena.assign(f, t,
                             bank.bipolar(vals.nextInRange(-1, 1), len));
        const size_t n_words = (len + 63) / 64;
        for (size_t g = 0; g < arena.groups(); ++g) {
            const sc::WeightBlockView block = arena.block(g);
            for (size_t w0 : {size_t{0}, std::min(n_words, size_t{3})}) {
                for (bool approximate : {false, true}) {
                    std::vector<uint16_t> with_simd(block.lanes * len);
                    std::vector<uint16_t> without(block.lanes * len);
                    sc::simd::setEnabled(true);
                    sc::fusedProductCountsMulti(ops.xv, block,
                                                approximate, w0, n_words,
                                                with_simd.data(), len);
                    sc::simd::setEnabled(false);
                    sc::fusedProductCountsMulti(ops.xv, block,
                                                approximate, w0, n_words,
                                                without.data(), len);
                    EXPECT_EQ(with_simd, without)
                        << "n=" << n << " len=" << len
                        << " filters=" << filters << " w0=" << w0
                        << " approx=" << approximate;
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimdVsScalar,
    ::testing::Combine(
        // Fan-ins around the parity cutoff, the 16-line compressor
        // chunk, and across plane counts.
        ::testing::Values(1, 3, 4, 5, 16, 17, 26, 151, 257),
        // Lengths around the 256-bit SIMD block and 64-bit word
        // boundaries: pure-scalar, pure-SIMD, and mixed tails.
        ::testing::Values(1, 63, 64, 255, 256, 257, 300, 511, 512,
                          1024)));

TEST_F(SimdTest, SumU16MatchesScalar)
{
    sc::SplitMix64 vals(99);
    // Full uint16 range (top-bit values would break a signed madd
    // accumulation) and a length crossing the 64-bit flush boundary.
    for (size_t n : {0ul, 1ul, 15ul, 16ul, 31ul, 32ul, 100ul, 4096ul,
                     (1ul << 18) + 17ul}) {
        std::vector<uint16_t> values(n);
        for (auto &v : values)
            v = static_cast<uint16_t>(vals.nextBelow(65536));
        uint64_t expect = 0;
        for (uint16_t v : values)
            expect += v;
        sc::simd::setEnabled(true);
        EXPECT_EQ(sc::simd::avx2SumU16(values.data(), n), expect)
            << "n=" << n;
        sc::simd::setEnabled(false);
        EXPECT_EQ(sc::simd::avx2SumU16(values.data(), n), expect)
            << "n=" << n;
    }
}

TEST_F(SimdTest, DisableIsObserved)
{
    sc::simd::setEnabled(false);
    EXPECT_FALSE(sc::simd::enabled());
    sc::simd::setEnabled(true);
    // Re-enabling only sticks where the CPU actually has AVX2.
    EXPECT_EQ(sc::simd::enabled(), sc::simd::available());
}

} // namespace
} // namespace scdcnn
