/**
 * @file
 * Unit tests of the binary XNOR-popcount backend: every fused kernel
 * against its bit-serial reference twin on randomized operands, the
 * AVX2 dispatch against forced-scalar execution, the sign-quantizer
 * contract, the full-precision-edges option against a double twin,
 * and forwardBatch determinism in EngineMode::Binary. The randomized
 * end-to-end differentials (reference twin, float sign oracle) live
 * in test_topology_fuzz.cc; this file pins the building blocks.
 */

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/binary_net.h"
#include "core/sc_network.h"
#include "nn/dataset.h"
#include "nn/quantize.h"
#include "nn/topology.h"
#include "sc/bitstream.h"
#include "sc/fused.h"
#include "sc/rng.h"
#include "sc/simd.h"

namespace scdcnn {
namespace {

/** Random packed operand + weight block of @p filters x @p n bits. */
struct RandomBlock
{
    sc::Bitstream x;
    sc::InterleavedWeightArena weights;

    RandomBlock(size_t filters, size_t n, uint64_t seed) : x(n)
    {
        sc::Xoshiro256ss rng(seed);
        for (size_t i = 0; i < n; ++i)
            x.set(i, rng.nextBelow(2) == 1);
        weights.reset(filters, 1, n);
        sc::Bitstream w(n);
        for (size_t f = 0; f < filters; ++f) {
            w.reset(n);
            for (size_t i = 0; i < n; ++i)
                w.set(i, rng.nextBelow(2) == 1);
            weights.assign(f, 0, sc::BitstreamView(w));
        }
    }
};

// ------------------------------------------------------ kernel twins

TEST(BinaryKernels, XnorPopcountMatchesReferenceTwin)
{
    // Lengths cross word boundaries (63/64/65), cover the multi-word
    // tail and the sub-word case; filter counts cross the lane width.
    for (size_t n : {1u, 7u, 63u, 64u, 65u, 127u, 128u, 300u}) {
        for (size_t filters : {1u, 3u, 4u, 5u, 9u}) {
            RandomBlock rb(filters, n, 0xB00 + n * 31 + filters);
            for (size_t g = 0; g < rb.weights.groups(); ++g) {
                const sc::WeightBlockView block = rb.weights.block(g);
                uint32_t fused[sc::kFilterLanes];
                uint32_t ref[sc::kFilterLanes];
                sc::fusedXnorPopcountMulti(sc::BitstreamView(rb.x),
                                           block, fused);
                sc::referenceXnorPopcountMulti(sc::BitstreamView(rb.x),
                                               block, ref);
                for (size_t f = 0; f < block.lanes; ++f) {
                    EXPECT_EQ(fused[f], ref[f])
                        << "n=" << n << " filters=" << filters
                        << " group=" << g << " lane=" << f;
                    EXPECT_LE(fused[f], n);
                }
            }
        }
    }
}

TEST(BinaryKernels, XnorPopcountCountsExactMatches)
{
    // Hand-checkable: x all-ones, weight alternating 1010... over 70
    // bits -> matches = number of set weight bits.
    const size_t n = 70;
    sc::Bitstream x(n), w(n);
    for (size_t i = 0; i < n; ++i) {
        x.set(i, true);
        w.set(i, i % 2 == 0);
    }
    sc::InterleavedWeightArena arena;
    arena.reset(1, 1, n);
    arena.assign(0, 0, sc::BitstreamView(w));
    uint32_t matches[sc::kFilterLanes];
    sc::fusedXnorPopcountMulti(sc::BitstreamView(x), arena.block(0),
                               matches);
    EXPECT_EQ(matches[0], 35u);
}

TEST(BinaryKernels, SignPackMatchesReferenceTwinAndZeroesTails)
{
    for (size_t n : {1u, 5u, 63u, 64u, 65u, 130u}) {
        sc::Xoshiro256ss rng(0x51 + n);
        std::vector<int32_t> s(n);
        for (auto &v : s)
            v = static_cast<int32_t>(rng.nextBelow(201)) - 100;
        s[0] = 0; // the tie: s = 0 must pack as bit 1
        const size_t words = (n + 63) / 64;
        std::vector<uint64_t> fused(words, ~uint64_t{0});
        std::vector<uint64_t> ref(words, ~uint64_t{0});
        sc::fusedSignPack(s.data(), n, fused.data());
        sc::referenceSignPack(s.data(), n, ref.data());
        EXPECT_EQ(fused, ref) << "n=" << n;
        EXPECT_EQ(fused[0] & 1, 1u) << "n=" << n; // tie -> +1
        if (n % 64 != 0)
            EXPECT_EQ(fused.back() >> (n % 64), 0u)
                << "n=" << n << " (tail bits must be zero)";
    }
}

TEST(BinaryKernels, Pool4MatchesReferenceTwinBothFlavours)
{
    for (size_t n_pixels : {1u, 2u, 17u, 64u}) {
        sc::Xoshiro256ss rng(0x90 + n_pixels);
        std::vector<int32_t> windows(n_pixels * 4);
        for (auto &v : windows)
            v = static_cast<int32_t>(rng.nextBelow(401)) - 200;
        for (bool max_pool : {true, false}) {
            std::vector<int32_t> fused(n_pixels), ref(n_pixels);
            sc::fusedBinaryPool4(windows.data(), n_pixels, max_pool,
                                 fused.data());
            sc::referenceBinaryPool4(windows.data(), n_pixels, max_pool,
                                     ref.data());
            EXPECT_EQ(fused, ref)
                << "n_pixels=" << n_pixels << " max=" << max_pool;
        }
        // Spot-check semantics on the first pixel.
        const int32_t *w0 = windows.data();
        std::vector<int32_t> out(n_pixels);
        sc::fusedBinaryPool4(windows.data(), n_pixels, true, out.data());
        EXPECT_EQ(out[0], std::max(std::max(w0[0], w0[1]),
                                   std::max(w0[2], w0[3])));
        sc::fusedBinaryPool4(windows.data(), n_pixels, false,
                             out.data());
        EXPECT_EQ(out[0], w0[0] + w0[1] + w0[2] + w0[3]);
    }
}

// ------------------------------------------- scalar vs AVX2 dispatch

TEST(BinaryKernels, ForcedScalarIsBitExactWithSimdDispatch)
{
    // The same operands through the default dispatch (AVX2 where the
    // host has it) and with SIMD forced off: identical counts. On a
    // non-AVX2 host both runs take the scalar path and the test
    // degenerates to determinism, which is still worth pinning.
    const bool was_enabled = sc::simd::enabled();
    for (size_t n : {64u, 65u, 256u, 1000u}) {
        RandomBlock rb(sc::kFilterLanes, n, 0xD15 + n);
        const sc::WeightBlockView block = rb.weights.block(0);
        uint32_t with_simd[sc::kFilterLanes];
        uint32_t scalar[sc::kFilterLanes];
        sc::simd::setEnabled(true);
        sc::fusedXnorPopcountMulti(sc::BitstreamView(rb.x), block,
                                   with_simd);
        sc::simd::setEnabled(false);
        sc::fusedXnorPopcountMulti(sc::BitstreamView(rb.x), block,
                                   scalar);
        sc::simd::setEnabled(was_enabled);
        for (size_t f = 0; f < block.lanes; ++f)
            EXPECT_EQ(with_simd[f], scalar[f])
                << "n=" << n << " lane=" << f;
    }
}

TEST(BinaryNetworkTest, ForcedScalarPredictionsAreBitExact)
{
    nn::Network net = nn::buildMiniLeNet(nn::PoolingMode::Max, 3);
    const nn::NetworkPlan plan = nn::deriveNetworkPlan(net, 1, 28, 28);
    const core::BinaryNetwork bin(net, plan);

    const bool was_enabled = sc::simd::enabled();
    for (size_t d = 0; d < 10; ++d) {
        const nn::Tensor img = nn::DigitDataset::render(d, 7 + d);
        std::vector<double> simd_scores, scalar_scores;
        sc::simd::setEnabled(true);
        const size_t a = bin.predict(img, &simd_scores);
        sc::simd::setEnabled(false);
        const size_t b = bin.predict(img, &scalar_scores);
        sc::simd::setEnabled(was_enabled);
        EXPECT_EQ(a, b) << "digit=" << d;
        EXPECT_EQ(simd_scores, scalar_scores) << "digit=" << d;
    }
}

// ------------------------------------------------- quantizer contract

TEST(SignQuantize, TiesGoPositiveAndValuesCollapseToSigns)
{
    EXPECT_TRUE(nn::signQuantizeBit(0.0));
    EXPECT_TRUE(nn::signQuantizeBit(0.75));
    EXPECT_FALSE(nn::signQuantizeBit(-1e-9));
    EXPECT_EQ(nn::signQuantizeWeight(0.3), 1.0);
    EXPECT_EQ(nn::signQuantizeWeight(0.0), 1.0);
    EXPECT_EQ(nn::signQuantizeWeight(-2.5), -1.0);

    nn::Network net = nn::buildMiniLeNet(nn::PoolingMode::Max, 5);
    nn::signQuantizeNetwork(net);
    const auto stages = nn::outlineNetworkStages(net);
    for (const auto &st : stages) {
        nn::Layer &layer = net.layer(st.layer_index);
        ASSERT_NE(layer.weights(), nullptr);
        for (float w : *layer.weights())
            EXPECT_TRUE(w == 1.0f || w == -1.0f);
        for (float b : *layer.biases())
            EXPECT_TRUE(b == 1.0f || b == -1.0f);
    }
}

// ------------------------------------------------ fp-edges vs binary

TEST(BinaryNetworkTest, FullPrecisionEdgesKeepFloatEdgeArithmetic)
{
    // With fp edges the first conv stage and the output layer run the
    // trained float weights; the sign-quantized interior is shared.
    // Differential twin: both kernel families must still agree
    // exactly, and scores must be genuine float dot products (not the
    // integer 2m - n grid of the pure path).
    nn::Network net = nn::buildMiniLeNet(nn::PoolingMode::Average, 11);
    const nn::NetworkPlan plan = nn::deriveNetworkPlan(net, 1, 28, 28);
    core::BinaryNetwork::Options opts;
    opts.full_precision_edges = true;
    const core::BinaryNetwork fp(net, plan, opts);
    const core::BinaryNetwork pure(net, plan);
    EXPECT_TRUE(fp.fullPrecisionEdges());
    EXPECT_FALSE(pure.fullPrecisionEdges());

    for (size_t d = 0; d < 10; ++d) {
        const nn::Tensor img = nn::DigitDataset::render(d, 100 + d);
        std::vector<double> fused_scores, ref_scores;
        const size_t a =
            fp.predict(img, &fused_scores,
                       core::BinaryNetwork::Kernel::Fused);
        const size_t b =
            fp.predict(img, &ref_scores,
                       core::BinaryNetwork::Kernel::Reference);
        EXPECT_EQ(a, b) << "digit=" << d;
        EXPECT_EQ(fused_scores, ref_scores) << "digit=" << d;

        std::vector<double> pure_scores;
        pure.predict(img, &pure_scores);
        for (double s : pure_scores)
            EXPECT_EQ(s, static_cast<double>(static_cast<long long>(s)))
                << "pure-binary scores are integers";
    }
}

// -------------------------------------------------- engine dispatch

TEST(BinaryNetworkTest, EngineModeBinaryIsSeedInvariant)
{
    nn::Network net = nn::buildMiniLeNet(nn::PoolingMode::Max, 21);
    core::ScNetworkConfig cfg;
    cfg.bitstream_len = 128;
    core::ScNetwork sc(net, cfg);
    sc.setEngineMode(core::EngineMode::Binary);

    const nn::Tensor img = nn::DigitDataset::render(4, 9);
    core::ForwardInfo a, b;
    EXPECT_EQ(sc.predict(img, 1, nullptr, &a),
              sc.predict(img, 0xDEAD, nullptr, &b));
    EXPECT_EQ(a.scores, b.scores);
    EXPECT_EQ(a.effective_bits, 1u);
    EXPECT_FALSE(a.early_exit);
    EXPECT_FALSE(a.cancelled);
}

TEST(BinaryNetworkTest, ForwardBatchIsThreadCountInvariantInBinaryMode)
{
    nn::Network net = nn::buildMiniLeNet(nn::PoolingMode::Max, 23);
    core::ScNetworkConfig cfg;
    cfg.bitstream_len = 128;
    core::ScNetwork sc(net, cfg);

    std::vector<nn::Tensor> images;
    for (size_t i = 0; i < 6; ++i)
        images.push_back(nn::DigitDataset::render(i % 10, 40 + i));

    core::PredictOptions popts;
    popts.mode = core::EngineMode::Binary;
    ASSERT_FALSE(
        core::ScNetwork::batchKernelEligible(popts, images.size()));

    ThreadPool one(1), four(4);
    std::vector<core::ForwardInfo> ia, ib;
    const auto a = sc.forwardBatch(images, 7, popts, &one, &ia);
    const auto b = sc.forwardBatch(images, 7, popts, &four, &ib);
    EXPECT_EQ(a, b);
    for (size_t i = 0; i < images.size(); ++i) {
        EXPECT_EQ(ia[i].scores, ib[i].scores) << "image=" << i;
        EXPECT_EQ(a[i], sc.binaryNet().predict(images[i]))
            << "image=" << i;
    }
}

} // namespace
} // namespace scdcnn
