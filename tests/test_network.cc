/**
 * @file
 * Tests for the network container and the LeNet5 builder.
 */

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "nn/dataset.h"
#include "nn/network.h"

namespace scdcnn {
namespace nn {
namespace {

Tensor
randomImage(uint64_t seed)
{
    sc::SplitMix64 rng(seed);
    Tensor t(1, 28, 28);
    for (size_t i = 0; i < t.size(); ++i)
        t[i] = static_cast<float>(rng.nextDouble());
    return t;
}

TEST(BuildLeNet5, PaperConfiguration)
{
    Network net = buildLeNet5(PoolingMode::Max);
    // conv-pool-tanh-conv-pool-tanh-fc-tanh-fc
    ASSERT_EQ(net.layerCount(), 9u);
    Tensor out = net.forward(randomImage(1));
    EXPECT_EQ(out.size(), 10u);

    auto &conv1 = dynamic_cast<ConvLayer &>(net.layer(0));
    EXPECT_EQ(conv1.cOut(), 20u);
    EXPECT_EQ(conv1.kernel(), 5u);
    auto &conv2 = dynamic_cast<ConvLayer &>(net.layer(3));
    EXPECT_EQ(conv2.cIn(), 20u);
    EXPECT_EQ(conv2.cOut(), 50u);
    auto &fc1 = dynamic_cast<FullyConnected &>(net.layer(6));
    EXPECT_EQ(fc1.nIn(), 800u);
    EXPECT_EQ(fc1.nOut(), 500u);
    auto &fc2 = dynamic_cast<FullyConnected &>(net.layer(8));
    EXPECT_EQ(fc2.nOut(), 10u);
}

TEST(BuildLeNet5, IntermediateSizesMatch784_11520_2880_3200_800_500_10)
{
    // Verify the paper's layer-size string by stepping manually.
    Network net = buildLeNet5(PoolingMode::Average);
    Tensor x = randomImage(2);
    EXPECT_EQ(x.size(), 784u);
    x = net.layer(0).forward(x);
    EXPECT_EQ(x.size(), 11520u); // 20 x 24 x 24
    x = net.layer(1).forward(x);
    EXPECT_EQ(x.size(), 2880u); // 20 x 12 x 12
    x = net.layer(2).forward(x);
    x = net.layer(3).forward(x);
    EXPECT_EQ(x.size(), 3200u); // 50 x 8 x 8
    x = net.layer(4).forward(x);
    EXPECT_EQ(x.size(), 800u); // 50 x 4 x 4
    x = net.layer(5).forward(x);
    x = net.layer(6).forward(x);
    EXPECT_EQ(x.size(), 500u);
    x = net.layer(7).forward(x);
    x = net.layer(8).forward(x);
    EXPECT_EQ(x.size(), 10u);
}

TEST(Network, CopyIsDeep)
{
    Network a = buildMiniLeNet(PoolingMode::Max);
    Network b = a;
    (*b.layer(0).weights())[0] += 1.0f;
    EXPECT_NE((*a.layer(0).weights())[0], (*b.layer(0).weights())[0]);
}

TEST(Network, PredictIsArgmaxOfLogits)
{
    Network net = buildMiniLeNet(PoolingMode::Average, 3);
    Tensor img = randomImage(4);
    Tensor logits = net.forward(img);
    size_t best = 0;
    for (size_t i = 1; i < logits.size(); ++i)
        if (logits[i] > logits[best])
            best = i;
    EXPECT_EQ(net.predict(img), best);
}

TEST(Network, CopyParamsSynchronizesOutputs)
{
    Network a = buildMiniLeNet(PoolingMode::Max, 5);
    Network b = buildMiniLeNet(PoolingMode::Max, 6);
    Tensor img = randomImage(7);
    b.copyParamsFrom(a);
    Tensor oa = a.forward(img);
    Tensor ob = b.forward(img);
    for (size_t i = 0; i < oa.size(); ++i)
        EXPECT_FLOAT_EQ(oa[i], ob[i]);
}

TEST(Network, ZeroGradsClearsEverything)
{
    Network net = buildMiniLeNet(PoolingMode::Max, 8);
    Tensor img = randomImage(9);
    Tensor dlogits;
    softmaxCrossEntropy(net.forward(img), 3, dlogits);
    net.backward(dlogits);
    net.zeroGrads();
    for (size_t i = 0; i < net.layerCount(); ++i) {
        if (auto *wg = net.layer(i).weightGrads()) {
            for (float g : *wg)
                ASSERT_EQ(g, 0.0f);
        }
    }
}

TEST(Network, AddGradsAccumulates)
{
    Network a = buildMiniLeNet(PoolingMode::Max, 10);
    Network b = a;
    Tensor img = randomImage(11);
    Tensor dlogits;

    a.zeroGrads();
    softmaxCrossEntropy(a.forward(img), 1, dlogits);
    a.backward(dlogits);

    b.zeroGrads();
    softmaxCrossEntropy(b.forward(img), 1, dlogits);
    b.backward(dlogits);

    Network sum = a;
    sum.addGradsFrom(b);
    auto *ga = a.layer(0).weightGrads();
    auto *gs = sum.layer(0).weightGrads();
    for (size_t i = 0; i < ga->size(); ++i)
        ASSERT_NEAR((*gs)[i], 2.0f * (*ga)[i], 1e-6);
}

TEST(Network, SaveLoadRoundTrip)
{
    const std::string path = ::testing::TempDir() + "/weights.bin";
    Network a = buildMiniLeNet(PoolingMode::Max, 12);
    ASSERT_TRUE(a.saveWeights(path));
    Network b = buildMiniLeNet(PoolingMode::Max, 13); // different init
    ASSERT_TRUE(b.loadWeights(path));
    Tensor img = randomImage(14);
    Tensor oa = a.forward(img);
    Tensor ob = b.forward(img);
    for (size_t i = 0; i < oa.size(); ++i)
        EXPECT_FLOAT_EQ(oa[i], ob[i]);
    std::remove(path.c_str());
}

TEST(Network, LoadRejectsMissingFile)
{
    Network net = buildMiniLeNet(PoolingMode::Max, 15);
    EXPECT_FALSE(net.loadWeights("/nonexistent/weights.bin"));
}

TEST(Network, LoadRejectsStructureMismatch)
{
    const std::string path = ::testing::TempDir() + "/mini.bin";
    Network mini = buildMiniLeNet(PoolingMode::Max, 16);
    ASSERT_TRUE(mini.saveWeights(path));
    Network full = buildLeNet5(PoolingMode::Max, 17);
    EXPECT_FALSE(full.loadWeights(path));
    std::remove(path.c_str());
}

TEST(Network, MaxAndAvgPoolingVariantsDiffer)
{
    Network max_net = buildLeNet5(PoolingMode::Max, 18);
    Network avg_net = buildLeNet5(PoolingMode::Average, 18);
    auto &p_max = dynamic_cast<PoolLayer &>(max_net.layer(1));
    auto &p_avg = dynamic_cast<PoolLayer &>(avg_net.layer(1));
    EXPECT_EQ(p_max.mode(), PoolLayer::Mode::Max);
    EXPECT_EQ(p_avg.mode(), PoolLayer::Mode::Avg);
}

} // namespace
} // namespace nn
} // namespace scdcnn
