/**
 * @file
 * Tests for the exact and approximate parallel counters (Section 4.1).
 */

#include <cstdlib>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "sc/counter.h"
#include "sc/rng.h"
#include "sc/sng.h"

namespace scdcnn {
namespace sc {
namespace {

std::vector<Bitstream>
randomStreams(size_t n, size_t len, uint64_t seed)
{
    SngBank bank(seed);
    SplitMix64 vals(seed ^ 0xABCD);
    std::vector<Bitstream> streams;
    streams.reserve(n);
    for (size_t i = 0; i < n; ++i)
        streams.push_back(bank.unipolar(vals.nextDouble(), len));
    return streams;
}

TEST(ParallelCounter, MatchesNaivePerCycleCount)
{
    auto streams = randomStreams(9, 200, 1);
    auto counts = ParallelCounter::counts(streams);
    ASSERT_EQ(counts.size(), 200u);
    for (size_t i = 0; i < 200; ++i) {
        uint16_t naive = 0;
        for (const auto &s : streams)
            naive += s.get(i);
        EXPECT_EQ(counts[i], naive) << "cycle " << i;
    }
}

TEST(ParallelCounter, SingleStreamCountsItself)
{
    auto streams = randomStreams(1, 130, 2);
    auto counts = ParallelCounter::counts(streams);
    for (size_t i = 0; i < 130; ++i)
        EXPECT_EQ(counts[i], streams[0].get(i) ? 1 : 0);
}

TEST(ParallelCounter, AllOnesCountsN)
{
    std::vector<Bitstream> streams(17, constantStream(true, 70));
    auto counts = ParallelCounter::counts(streams);
    for (uint16_t c : counts)
        EXPECT_EQ(c, 17);
}

TEST(ParallelCounter, SumOfCountsEqualsTotalOnes)
{
    auto streams = randomStreams(33, 500, 3);
    auto counts = ParallelCounter::counts(streams);
    uint64_t sum = std::accumulate(counts.begin(), counts.end(),
                                   uint64_t{0});
    EXPECT_EQ(sum, ParallelCounter::totalOnes(streams));
}

TEST(ParallelCounter, HandlesManyStreams)
{
    auto streams = randomStreams(600, 128, 4);
    auto counts = ParallelCounter::counts(streams);
    for (size_t i = 0; i < 128; ++i) {
        uint16_t naive = 0;
        for (const auto &s : streams)
            naive += s.get(i);
        ASSERT_EQ(counts[i], naive);
    }
}

TEST(ApproxParallelCounter, ErrorBoundedByOne)
{
    auto streams = randomStreams(16, 1024, 5);
    auto exact = ParallelCounter::counts(streams);
    auto approx = ApproxParallelCounter::counts(streams);
    for (size_t i = 0; i < exact.size(); ++i) {
        int err = static_cast<int>(approx[i]) - static_cast<int>(exact[i]);
        EXPECT_LE(std::abs(err), 1) << "cycle " << i;
    }
}

TEST(ApproxParallelCounter, UpperBitsAlwaysExact)
{
    auto streams = randomStreams(64, 2048, 6);
    auto exact = ParallelCounter::counts(streams);
    auto approx = ApproxParallelCounter::counts(streams);
    for (size_t i = 0; i < exact.size(); ++i)
        EXPECT_EQ(approx[i] >> 1, exact[i] >> 1);
}

TEST(ApproxParallelCounter, LsbIsTruncatedParityOfFirstFourLines)
{
    auto streams = randomStreams(16, 512, 7);
    auto approx = ApproxParallelCounter::counts(streams);
    for (size_t i = 0; i < approx.size(); ++i) {
        int parity = 0;
        for (size_t s = 0; s < ApproxParallelCounter::kLsbParityLines; ++s)
            parity ^= streams[s].get(i) ? 1 : 0;
        EXPECT_EQ(approx[i] & 1, parity);
    }
}

TEST(ApproxParallelCounter, ExactForFourOrFewerLines)
{
    // With n <= kLsbParityLines the truncated parity is the full
    // parity, so the APC degenerates to the exact counter.
    auto streams = randomStreams(4, 512, 17);
    EXPECT_EQ(ApproxParallelCounter::counts(streams),
              ParallelCounter::counts(streams));
}

TEST(ApproxParallelCounter, MeanErrorNearZeroForBalancedInputs)
{
    // For p ~ 0.5 streams the dropped/injected LSB is unbiased.
    SngBank bank(8);
    std::vector<Bitstream> streams;
    for (int i = 0; i < 32; ++i)
        streams.push_back(bank.unipolar(0.5, 1 << 14));
    auto exact = ParallelCounter::counts(streams);
    auto approx = ApproxParallelCounter::counts(streams);
    double bias = 0;
    for (size_t i = 0; i < exact.size(); ++i)
        bias += static_cast<int>(approx[i]) - static_cast<int>(exact[i]);
    bias /= static_cast<double>(exact.size());
    EXPECT_NEAR(bias, 0.0, 0.02);
}

/**
 * Table 3 property: the relative error of the APC-based inner product
 * shrinks as the input size grows.
 */
class ApcRelativeError : public ::testing::TestWithParam<int>
{
  public:
    static double relativeError(int n, uint64_t seed)
    {
        auto streams = randomStreams(static_cast<size_t>(n), 512, seed);
        auto exact = ParallelCounter::counts(streams);
        auto approx = ApproxParallelCounter::counts(streams);
        uint64_t se = std::accumulate(exact.begin(), exact.end(),
                                      uint64_t{0});
        uint64_t sa = std::accumulate(approx.begin(), approx.end(),
                                      uint64_t{0});
        return std::abs(static_cast<double>(sa) - static_cast<double>(se)) /
               static_cast<double>(se);
    }
};

TEST_P(ApcRelativeError, UnderOnePercent)
{
    const int n = GetParam();
    double err = 0;
    const int trials = 20;
    for (int t = 0; t < trials; ++t)
        err += relativeError(n, 100 + t);
    err /= trials;
    EXPECT_LT(err, 0.011) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, ApcRelativeError,
                         ::testing::Values(16, 32, 64));

TEST(ApcRelativeError, ShrinksWithInputSize)
{
    auto avg = [](int n) {
        double e = 0;
        for (int t = 0; t < 30; ++t)
            e += ApcRelativeError::relativeError(n, 300 + t);
        return e / 30;
    };
    EXPECT_LT(avg(64), avg(16));
}

TEST(ApproxParallelCounter, OutputBitsMatchCeilLog2)
{
    EXPECT_EQ(ApproxParallelCounter::outputBits(1), 1u);
    EXPECT_EQ(ApproxParallelCounter::outputBits(2), 2u);
    EXPECT_EQ(ApproxParallelCounter::outputBits(3), 2u);
    EXPECT_EQ(ApproxParallelCounter::outputBits(16), 5u);
    EXPECT_EQ(ApproxParallelCounter::outputBits(255), 8u);
    EXPECT_EQ(ApproxParallelCounter::outputBits(256), 9u);
}

TEST(ParallelCounter, TailCyclesBeyondLengthIgnored)
{
    // Length deliberately not a multiple of 64.
    auto streams = randomStreams(5, 70, 9);
    auto counts = ParallelCounter::counts(streams);
    EXPECT_EQ(counts.size(), 70u);
}

} // namespace
} // namespace sc
} // namespace scdcnn
