/**
 * @file
 * Tests for the four inner-product block designs (Section 4.1).
 */

#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "blocks/inner_product.h"
#include "sc/counter.h"
#include "sc/rng.h"

namespace scdcnn {
namespace blocks {
namespace {

std::pair<std::vector<double>, std::vector<double>>
randomOperands(size_t n, uint64_t seed, double lo = -1.0, double hi = 1.0)
{
    sc::SplitMix64 rng(seed);
    std::vector<double> xs(n), ws(n);
    for (size_t i = 0; i < n; ++i) {
        xs[i] = rng.nextInRange(lo, hi);
        ws[i] = rng.nextInRange(lo, hi);
    }
    return {xs, ws};
}

TEST(InnerProductReference, MatchesManualDotProduct)
{
    EXPECT_DOUBLE_EQ(
        innerProductReference({1.0, -0.5, 0.25}, {0.5, 0.5, 4.0}),
        1.0 * 0.5 - 0.5 * 0.5 + 0.25 * 4.0);
}

TEST(ProductStreams, BipolarProductsAreXnor)
{
    sc::SngBank bank(1);
    auto xs = encodeBipolar({0.5, -0.5}, 1 << 14, bank);
    auto ws = encodeBipolar({0.5, 0.5}, 1 << 14, bank);
    auto ps = productStreams(xs, ws);
    ASSERT_EQ(ps.size(), 2u);
    EXPECT_NEAR(ps[0].bipolar(), 0.25, 0.03);
    EXPECT_NEAR(ps[1].bipolar(), -0.25, 0.03);
}

/** MUX block estimates sum x.w with error falling as L grows. */
class MuxInnerProductSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(MuxInnerProductSweep, EstimateTracksReference)
{
    auto [n, len] = GetParam();
    double err = 0;
    const int trials = 10;
    for (int t = 0; t < trials; ++t) {
        auto [xs, ws] = randomOperands(n, 1000 + t);
        sc::SngBank bank(50 + t);
        double got = MuxInnerProduct::estimate(xs, ws, len, bank);
        err += std::abs(got - innerProductReference(xs, ws));
    }
    err /= trials;
    // MUX noise scales like n/sqrt(L); keep a generous envelope.
    double envelope = 3.0 * n / std::sqrt(static_cast<double>(len));
    EXPECT_LT(err, envelope) << "n=" << n << " L=" << len;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MuxInnerProductSweep,
    ::testing::Combine(::testing::Values(16, 32, 64),
                       ::testing::Values(512, 1024, 4096)));

TEST(MuxInnerProduct, Table2ErrorGrowsWithInputSize)
{
    // Table 2 row trend: at fixed L, error grows with n.
    auto mean_err = [](int n) {
        double e = 0;
        for (int t = 0; t < 30; ++t) {
            auto [xs, ws] = randomOperands(n, 2000 + t);
            sc::SngBank bank(70 + t);
            e += std::abs(MuxInnerProduct::estimate(xs, ws, 1024, bank) -
                          innerProductReference(xs, ws));
        }
        return e / 30;
    };
    EXPECT_LT(mean_err(16), mean_err(64));
}

TEST(MuxInnerProduct, Table2ErrorShrinksWithLength)
{
    auto mean_err = [](int len) {
        double e = 0;
        for (int t = 0; t < 30; ++t) {
            auto [xs, ws] = randomOperands(32, 3000 + t);
            sc::SngBank bank(90 + t);
            e += std::abs(MuxInnerProduct::estimate(xs, ws, len, bank) -
                          innerProductReference(xs, ws));
        }
        return e / 30;
    };
    EXPECT_LT(mean_err(4096), mean_err(512));
}

TEST(MuxInnerProduct, OutputStreamIsScaledByN)
{
    // All-ones inputs and weights: every product is +1, so the MUX
    // output is the constant +1 stream and decodes to n * 1.
    const size_t n = 8;
    std::vector<double> xs(n, 1.0), ws(n, 1.0);
    sc::SngBank bank(5);
    sc::Bitstream out = MuxInnerProduct::compute(xs, ws, 2048, bank);
    EXPECT_DOUBLE_EQ(out.bipolar(), 1.0);
}

/** APC block: near-exact non-scaled sums. */
class ApcInnerProductSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(ApcInnerProductSweep, DecodeTracksReference)
{
    const int n = GetParam();
    double err = 0;
    const int trials = 10;
    for (int t = 0; t < trials; ++t) {
        auto [xs, ws] = randomOperands(n, 4000 + t);
        sc::SngBank bank(110 + t);
        auto counts = ApcInnerProduct::counts(xs, ws, 1024, bank, true);
        double got = ApcInnerProduct::decode(counts, n);
        err += std::abs(got - innerProductReference(xs, ws));
    }
    err /= trials;
    // Binary counting keeps full precision: error is SNG noise only,
    // ~sqrt(n)/sqrt(L) in sum units.
    EXPECT_LT(err, 3.0 * std::sqrt(n / 1024.0)) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, ApcInnerProductSweep,
                         ::testing::Values(16, 32, 64, 128));

TEST(ApcInnerProduct, ApproximateVsExactWithinTable3Band)
{
    // Table 3: APC vs conventional parallel counter differ by < ~1%.
    const int n = 16;
    double rel = 0;
    const int trials = 20;
    for (int t = 0; t < trials; ++t) {
        auto [xs, ws] = randomOperands(n, 5000 + t, 0.0, 1.0);
        sc::SngBank bank_a(130 + t);
        sc::SngBank bank_b(130 + t); // identical streams for both
        auto apc = ApcInnerProduct::counts(xs, ws, 512, bank_a, true);
        auto pc = ApcInnerProduct::counts(xs, ws, 512, bank_b, false);
        double sum_apc = 0, sum_pc = 0;
        for (size_t i = 0; i < apc.size(); ++i) {
            sum_apc += apc[i];
            sum_pc += pc[i];
        }
        rel += std::abs(sum_apc - sum_pc) / sum_pc;
    }
    EXPECT_LT(rel / trials, 0.011);
}

TEST(ApcInnerProduct, DecodeOfConstantCountsIsExact)
{
    // n=4, all counts 3 -> per-cycle value 2*3-4 = 2.
    std::vector<uint16_t> counts(100, 3);
    EXPECT_DOUBLE_EQ(ApcInnerProduct::decode(counts, 4), 2.0);
}

TEST(OrInnerProduct, UnipolarReasonableWithPreScaling)
{
    // Table 1 regime: unipolar operands, best pre-scale, n=16 -> error
    // around 0.5 in sum units (sums average n/4 = 4).
    const size_t n = 16;
    double best = 1e9;
    for (double scale : OrInnerProduct::scaleCandidates(n)) {
        double err = 0;
        const int trials = 20;
        for (int t = 0; t < trials; ++t) {
            auto [xs, ws] = randomOperands(n, 6000 + t, 0.0, 1.0);
            sc::SngBank bank(150 + t);
            double got = OrInnerProduct::estimateUnipolar(xs, ws, scale,
                                                          1024, bank);
            err += std::abs(got - innerProductReference(xs, ws));
        }
        best = std::min(best, err / trials);
    }
    EXPECT_LT(best, 1.0);
    EXPECT_GT(best, 0.05); // it is lossy — not magically exact
}

TEST(OrInnerProduct, BipolarMuchWorseThanUnipolar)
{
    // Table 1's conclusion: bipolar OR addition is unusable.
    const size_t n = 16;
    auto best_err = [n](bool bipolar) {
        double best = 1e9;
        for (double scale : OrInnerProduct::scaleCandidates(n)) {
            double err = 0;
            const int trials = 15;
            for (int t = 0; t < trials; ++t) {
                auto [xs, ws] =
                    bipolar ? randomOperands(n, 7000 + t)
                            : randomOperands(n, 7000 + t, 0.0, 1.0);
                sc::SngBank bank(170 + t);
                double got =
                    bipolar ? OrInnerProduct::estimateBipolar(xs, ws, scale,
                                                              1024, bank)
                            : OrInnerProduct::estimateUnipolar(
                                  xs, ws, scale, 1024, bank);
                err += std::abs(got - innerProductReference(xs, ws));
            }
            best = std::min(best, err / trials);
        }
        return best;
    };
    EXPECT_GT(best_err(true), 2.0 * best_err(false));
}

TEST(OrInnerProduct, ScaleCandidatesCoverWideRange)
{
    auto scales = OrInnerProduct::scaleCandidates(16);
    EXPECT_GE(scales.size(), 5u);
    EXPECT_DOUBLE_EQ(scales.front(), 1.0);
    EXPECT_GE(scales.back(), 32.0);
}

TEST(TwoLineInnerProduct, AccurateForSmallSums)
{
    // Two operands with |sum| < 1: the non-scaled adder is fine.
    sc::Xoshiro256ss rng(10);
    std::vector<double> xs = {0.5, -0.4};
    std::vector<double> ws = {0.6, 0.5};
    double got = TwoLineInnerProduct::estimate(xs, ws, 1 << 15, rng);
    EXPECT_NEAR(got, 0.1, 0.05);
}

TEST(TwoLineInnerProduct, OverflowsForLargeSums)
{
    // Section 4.1 limitation: many inputs overflow the carry counter.
    sc::Xoshiro256ss rng(11);
    std::vector<double> xs(16, 0.8);
    std::vector<double> ws(16, 0.8);
    uint64_t dropped = 0;
    auto out = TwoLineInnerProduct::compute(xs, ws, 4096, rng, &dropped);
    // True sum is 16*0.64 = 10.24; representable max is 1.
    EXPECT_LE(out.value(), 1.0);
    EXPECT_GT(dropped, 0u);
}

TEST(TwoLineInnerProduct, SignHandling)
{
    sc::Xoshiro256ss rng(12);
    std::vector<double> xs = {-0.7, 0.3};
    std::vector<double> ws = {0.8, -0.5};
    double got = TwoLineInnerProduct::estimate(xs, ws, 1 << 15, rng);
    EXPECT_NEAR(got, -0.71, 0.05);
}

} // namespace
} // namespace blocks
} // namespace scdcnn
