/**
 * @file
 * Tests for the shared infrastructure: thread pool and table printer.
 */

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/table.h"
#include "common/thread_pool.h"

namespace scdcnn {
namespace {

TEST(ThreadPool, RunsAllJobs)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 10; ++i)
            pool.submit([&counter] { counter.fetch_add(1); });
        pool.wait();
        EXPECT_EQ(counter.load(), (round + 1) * 10);
    }
}

TEST(ThreadPool, WaitWithNoJobsReturnsImmediately)
{
    ThreadPool pool(2);
    pool.wait();
    SUCCEED();
}

TEST(ThreadPool, DrainWaitsForAllSubmittedJobs)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    for (int i = 0; i < 50; ++i)
        pool.submit([&counter] { counter.fetch_add(1); });
    pool.drain();
    EXPECT_EQ(counter.load(), 50);
    // The pool survives a drain and keeps accepting work.
    pool.submit([&counter] { counter.fetch_add(1); });
    pool.drain();
    EXPECT_EQ(counter.load(), 51);
}

TEST(ThreadPool, DrainOnIdlePoolReturnsImmediately)
{
    ThreadPool pool(2);
    pool.drain();
    SUCCEED();
}

TEST(ThreadPool, DrainFromInsideAWorkerJobIsNestingSafe)
{
    // A job on a 1-thread pool submits sub-jobs and drains its own
    // pool: drain() must execute the queued sub-jobs inline (no other
    // worker exists) and must not wait on the enclosing job itself.
    ThreadPool pool(1);
    std::atomic<int> sub_done{0};
    std::atomic<bool> outer_done{false};
    pool.submit([&] {
        for (int i = 0; i < 3; ++i)
            pool.submit([&sub_done] { sub_done.fetch_add(1); });
        pool.drain();
        EXPECT_EQ(sub_done.load(), 3);
        outer_done.store(true);
    });
    pool.wait();
    EXPECT_TRUE(outer_done.load());
    EXPECT_EQ(sub_done.load(), 3);
}

TEST(ThreadPool, ConcurrentDrainsFromTwoWorkerJobsDoNotDeadlock)
{
    // Both workers enter drain() while each other's enclosing job is
    // still in flight; the idle condition must discount every
    // drainer-held job, not just the caller's own.
    ThreadPool pool(2);
    std::atomic<int> started{0};
    std::atomic<int> done{0};
    for (int j = 0; j < 2; ++j) {
        pool.submit([&] {
            started.fetch_add(1);
            while (started.load() < 2)
                std::this_thread::yield();
            pool.drain();
            done.fetch_add(1);
        });
    }
    pool.wait();
    EXPECT_EQ(done.load(), 2);
}

TEST(ParallelFor, CoversExactRange)
{
    std::vector<std::atomic<int>> hits(1000);
    parallelFor(0, hits.size(),
                [&hits](size_t i) { hits[i].fetch_add(1); });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop)
{
    bool touched = false;
    parallelFor(5, 5, [&touched](size_t) { touched = true; });
    EXPECT_FALSE(touched);
}

TEST(ParallelFor, SmallRangeRunsInline)
{
    std::vector<int> hits(3, 0);
    parallelFor(0, 3, [&hits](size_t i) { hits[i] += 1; });
    EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(TextTable, AlignsColumnsAndPrintsTitle)
{
    TextTable t("Table X");
    t.header({"a", "bbbb"});
    t.row({"xx", "y"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("Table X"), std::string::npos);
    EXPECT_NE(out.find("a  | bbbb"), std::string::npos);
    EXPECT_NE(out.find("xx | y"), std::string::npos);
}

TEST(TextTable, NumFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(3.14159, 4), "3.1416");
    EXPECT_EQ(TextTable::num(static_cast<long long>(42)), "42");
    EXPECT_EQ(TextTable::num(-1.5, 1), "-1.5");
}

TEST(TextTable, SeparatorRowsRender)
{
    TextTable t;
    t.header({"h"});
    t.row({"1"});
    t.separator();
    t.row({"2"});
    std::ostringstream os;
    t.print(os);
    // Header rule + separator + trailing rule + top rule = 4 dashes rows.
    std::string out = os.str();
    size_t dashes = 0;
    size_t pos = 0;
    while ((pos = out.find("---", pos)) != std::string::npos) {
        ++dashes;
        pos = out.find('\n', pos);
    }
    EXPECT_EQ(dashes, 4u);
}

} // namespace
} // namespace scdcnn
