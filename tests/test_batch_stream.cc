/**
 * @file
 * Batch-axis (weight-stationary) execution, bottom to top: the batch
 * kernel twins must be bit-exact with the per-image multi-kernels over
 * shifted views (ragged lanes/taps/word ranges, non-contiguous active
 * image sets, SIMD on and off); the interleaved FSM batch transforms
 * must match the single-stream resumable steppers across segment
 * boundaries; and ScNetwork::forwardBatch on the batched path must be
 * bit-exact — predictions, scores, effective bits, early-exit flags —
 * with the per-image loop path for every FEB kind, segment size,
 * ragged batch shape and mixed Progressive early-exit batch, at any
 * thread count.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "blocks/pooling.h"
#include "common/thread_pool.h"
#include "core/sc_network.h"
#include "nn/trainer.h"
#include "sc/bitstream.h"
#include "sc/fsm_batch.h"
#include "sc/fused.h"
#include "sc/rng.h"
#include "sc/simd.h"
#include "sc/sng.h"

namespace scdcnn {
namespace {

/** Restore the processwide SIMD selection after each test. */
class BatchKernel : public ::testing::Test
{
  protected:
    void TearDown() override { sc::simd::setEnabled(true); }
};

/** Batched operands: n_taps arena sites x B images plus a shared
 *  (stride-0) bias line, in the image-0-view + word-stride form the
 *  batch kernels consume. */
struct BatchOperands
{
    sc::BatchStreamArena arena;
    sc::Bitstream bias;
    std::vector<sc::BitstreamView> xs0;
    std::vector<size_t> strides;

    BatchOperands(size_t n_taps, size_t images, size_t len,
                  uint64_t seed)
    {
        arena.reset(n_taps, images, len);
        sc::SngBank bank(seed);
        sc::SplitMix64 vals(seed ^ 0xABCD);
        for (size_t i = 0; i < n_taps; ++i)
            for (size_t b = 0; b < images; ++b)
                arena.assign(i, b,
                             bank.bipolar(vals.nextInRange(-1, 1), len));
        bias = sc::constantStream(true, len);
        for (size_t i = 0; i < n_taps; ++i) {
            xs0.push_back(arena.view(i, 0));
            strides.push_back(arena.strideWords());
        }
        xs0.push_back(bias);
        strides.push_back(0);
    }
};

TEST_F(BatchKernel, ProductCountsMatchPerImageAndReference)
{
    constexpr size_t kImages = 4;
    // Tap counts straddling the 16-line compressor tile (plus the
    // bias line), filter counts producing full and ragged lane blocks,
    // and a stream length with a partial tail word.
    for (size_t n_taps : {size_t{4}, size_t{17}, size_t{36}}) {
        for (size_t filters : {size_t{4}, size_t{6}}) {
            const size_t len = 200;
            const size_t n_words = (len + 63) / 64;
            BatchOperands ops(n_taps, kImages, len,
                              900 + n_taps * 31 + filters);
            sc::InterleavedWeightArena weights;
            weights.reset(filters, n_taps + 1, len);
            sc::SngBank bank(77 + filters);
            sc::SplitMix64 vals(13 * n_taps);
            for (size_t f = 0; f < filters; ++f)
                for (size_t t = 0; t < n_taps + 1; ++t)
                    weights.assign(
                        f, t, bank.bipolar(vals.nextInRange(-1, 1), len));

            // A non-contiguous active set exercises the stride-offset
            // addressing (images 1 and 3 of 4).
            const std::vector<uint32_t> active = {1, 3};
            std::vector<sc::BitstreamView> shifted;
            for (size_t g = 0; g < weights.groups(); ++g) {
                const sc::WeightBlockView block = weights.block(g);
                for (size_t w0 : {size_t{0}, size_t{1}}) {
                    const size_t lane_stride = (n_words - w0) * 64;
                    const size_t image_stride =
                        sc::kFilterLanes * lane_stride;
                    for (bool approximate : {false, true}) {
                        for (bool simd_on : {true, false}) {
                            sc::simd::setEnabled(simd_on);
                            std::vector<uint16_t> batched(
                                active.size() * image_stride, 0);
                            sc::fusedProductCountsMultiBatch(
                                ops.xs0, ops.strides, active.data(),
                                active.size(), block, approximate, w0,
                                n_words, batched.data(), lane_stride,
                                image_stride);

                            std::vector<uint16_t> reference(
                                active.size() * image_stride, 0);
                            sc::referenceProductCountsMultiBatch(
                                ops.xs0, ops.strides, active.data(),
                                active.size(), block, approximate, w0,
                                n_words, reference.data(), lane_stride,
                                image_stride);

                            std::vector<uint16_t> per_image(
                                active.size() * image_stride, 0);
                            for (size_t j = 0; j < active.size(); ++j) {
                                sc::shiftViewsForImage(
                                    ops.xs0, ops.strides, active[j],
                                    shifted);
                                sc::fusedProductCountsMulti(
                                    shifted, block, approximate, w0,
                                    n_words,
                                    per_image.data() + j * image_stride,
                                    lane_stride);
                            }
                            EXPECT_EQ(batched, per_image)
                                << "taps=" << n_taps
                                << " filters=" << filters << " g=" << g
                                << " w0=" << w0
                                << " approx=" << approximate
                                << " simd=" << simd_on;
                            EXPECT_EQ(batched, reference)
                                << "taps=" << n_taps
                                << " filters=" << filters << " g=" << g
                                << " w0=" << w0
                                << " approx=" << approximate
                                << " simd=" << simd_on;
                        }
                    }
                }
            }
        }
    }
}

TEST_F(BatchKernel, PlanePoolMatchesCountPoolAcrossShapes)
{
    // binaryMaxPoolPlanesBatch over canonical count planes must be
    // bit-exact — outputs and carried selector state — with
    // binaryMaxPoolRange over the (parity-substituted) transposed
    // counts: the 16-cycle-grid fast path and the masked general path,
    // across plane depths, pool widths, batch sizes, segment lengths
    // on and off the group grid, both counter readings, SIMD on and
    // off, carried over a word-aligned range split with a partial
    // zero-masked tail word.
    constexpr size_t kLen = 200; // 4 words, 8-cycle tail
    const size_t n_words = (kLen + 63) / 64;
    sc::SplitMix64 vals(0xB007);
    for (size_t plane_cap : {size_t{3}, size_t{5}, size_t{9}}) {
        for (size_t n_inputs : {size_t{2}, size_t{4}}) {
            for (size_t n_images : {size_t{1}, size_t{3}}) {
                for (size_t segment_len :
                     {size_t{16}, size_t{48}, size_t{10}}) {
                    for (bool parity : {true, false}) {
                        for (bool accumulate : {true, false}) {
                            for (bool simd_on : {true, false}) {
                                sc::simd::setEnabled(simd_on);
                                const size_t pstride = plane_cap + 1;
                                const size_t n_bufs =
                                    n_images * n_inputs;
                                // Random canonical planes + parity
                                // word, and the per-cycle counts a
                                // consumer with the same parity flag
                                // would see.
                                std::vector<std::vector<uint64_t>> bufs(
                                    n_bufs);
                                std::vector<std::vector<uint16_t>> eff(
                                    n_bufs);
                                for (size_t b = 0; b < n_bufs; ++b) {
                                    // +4 tail words for the pooling
                                    // quad-load overread.
                                    bufs[b].assign(n_words * pstride + 4,
                                                   0);
                                    eff[b].assign(n_words * 64, 0);
                                    for (size_t i = 0; i < kLen; ++i) {
                                        const auto c =
                                            static_cast<uint16_t>(
                                                vals.next() &
                                                ((1u << plane_cap) -
                                                 1));
                                        const uint64_t lsb =
                                            vals.next() & 1;
                                        const size_t w = i / 64;
                                        const uint64_t bit =
                                            uint64_t{1} << (i % 64);
                                        for (size_t p = 0;
                                             p < plane_cap; ++p)
                                            if ((c >> p) & 1)
                                                bufs[b][w * pstride +
                                                        p] |= bit;
                                        if (lsb != 0)
                                            bufs[b][w * pstride +
                                                    plane_cap] |= bit;
                                        eff[b][i] =
                                            parity ? static_cast<
                                                         uint16_t>(
                                                         (c & ~1u) |
                                                         lsb)
                                                   : c;
                                    }
                                }
                                std::vector<blocks::MaxPoolCarryState>
                                    st_p(n_images), st_c(n_images);
                                std::vector<
                                    blocks::MaxPoolCarryState *>
                                    st_ptrs(n_images);
                                std::vector<std::vector<uint16_t>>
                                    out_p(n_images), out_c(n_images);
                                for (size_t j = 0; j < n_images; ++j) {
                                    st_p[j].reset(n_inputs);
                                    st_c[j].reset(n_inputs);
                                    st_ptrs[j] = &st_p[j];
                                    out_p[j].assign(n_words * 64, 0);
                                    out_c[j].assign(n_words * 64, 0);
                                }
                                // Two ranges: [0, 128) and [128, 200).
                                for (size_t r0 : {size_t{0},
                                                  size_t{128}}) {
                                    const size_t nc =
                                        std::min(kLen, r0 + 128) - r0;
                                    std::vector<const uint64_t *> pp(
                                        n_bufs);
                                    std::vector<uint16_t *> op(
                                        n_images);
                                    for (size_t b = 0; b < n_bufs; ++b)
                                        pp[b] = bufs[b].data() +
                                                (r0 / 64) * pstride;
                                    for (size_t j = 0; j < n_images;
                                         ++j)
                                        op[j] = out_p[j].data() + r0;
                                    blocks::binaryMaxPoolPlanesBatch(
                                        pp.data(), n_images, n_inputs,
                                        plane_cap, parity, r0, nc,
                                        segment_len, accumulate,
                                        st_ptrs.data(), op.data());
                                    for (size_t j = 0; j < n_images;
                                         ++j) {
                                        std::vector<const uint16_t *>
                                            cp(n_inputs);
                                        for (size_t k = 0;
                                             k < n_inputs; ++k)
                                            cp[k] = eff[j * n_inputs +
                                                        k]
                                                        .data() +
                                                    r0;
                                        blocks::binaryMaxPoolRange(
                                            cp.data(), n_inputs, r0,
                                            nc, segment_len,
                                            accumulate, st_c[j],
                                            out_c[j].data() + r0);
                                    }
                                }
                                for (size_t j = 0; j < n_images; ++j) {
                                    EXPECT_EQ(
                                        std::vector<uint16_t>(
                                            out_p[j].begin(),
                                            out_p[j].begin() + kLen),
                                        std::vector<uint16_t>(
                                            out_c[j].begin(),
                                            out_c[j].begin() + kLen))
                                        << "cap=" << plane_cap
                                        << " inputs=" << n_inputs
                                        << " seg=" << segment_len
                                        << " parity=" << parity
                                        << " acc=" << accumulate
                                        << " simd=" << simd_on
                                        << " image=" << j;
                                    EXPECT_EQ(st_p[j].selected,
                                              st_c[j].selected)
                                        << "image=" << j;
                                    EXPECT_EQ(st_p[j].counters,
                                              st_c[j].counters)
                                        << "image=" << j;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

TEST(FsmBatchStreams, InterleavedStanhMatchesPerStreamAcrossSegments)
{
    // More streams than one interleave tile, carried across an uneven
    // segment split (128 + 72 cycles of a 200-cycle stream).
    constexpr size_t kStreams = 21;
    constexpr size_t kLen = 200;
    const size_t n_words = (kLen + 63) / 64;
    const sc::StanhBatchTable table(8);

    std::vector<std::vector<uint64_t>> ins(kStreams);
    sc::SplitMix64 vals(0x57A7);
    for (auto &in : ins) {
        in.resize(n_words);
        for (auto &w : in)
            w = vals.next();
        in.back() &= (uint64_t{1} << (kLen % 64)) - 1;
    }

    std::vector<std::vector<uint64_t>> whole(kStreams),
        segmented(kStreams);
    std::vector<uint16_t> states(kStreams, table.initialState());
    std::vector<const uint64_t *> in_ptrs(kStreams);
    std::vector<uint64_t *> out_ptrs(kStreams);
    std::vector<uint16_t *> state_ptrs(kStreams);
    for (size_t s = 0; s < kStreams; ++s) {
        whole[s].resize(n_words);
        segmented[s].resize(n_words);
        table.transformWords(ins[s].data(), kLen, whole[s].data());
    }
    // Segment 1: cycles [0, 128) = 2 words; segment 2: [128, 200).
    for (size_t s = 0; s < kStreams; ++s) {
        in_ptrs[s] = ins[s].data();
        out_ptrs[s] = segmented[s].data();
        state_ptrs[s] = &states[s];
    }
    table.transformWordsBatch(in_ptrs.data(), 128, out_ptrs.data(),
                              state_ptrs.data(), kStreams);
    for (size_t s = 0; s < kStreams; ++s) {
        in_ptrs[s] = ins[s].data() + 2;
        out_ptrs[s] = segmented[s].data() + 2;
    }
    table.transformWordsBatch(in_ptrs.data(), kLen - 128,
                              out_ptrs.data(), state_ptrs.data(),
                              kStreams);
    for (size_t s = 0; s < kStreams; ++s)
        EXPECT_EQ(segmented[s], whole[s]) << "stream=" << s;
}

TEST(FsmBatchStreams, InterleavedBtanhMatchesPerStreamAcrossSegments)
{
    constexpr size_t kStreams = 19;
    constexpr size_t kLen = 200;
    const size_t n_words = (kLen + 63) / 64;
    constexpr unsigned kInputs = 26;
    const sc::BtanhBatchTable table(16, kInputs);

    std::vector<std::vector<uint16_t>> counts(kStreams);
    std::vector<std::vector<int>> steps(kStreams);
    sc::SplitMix64 vals(0xB7A9);
    for (size_t s = 0; s < kStreams; ++s) {
        counts[s].resize(kLen);
        steps[s].resize(kLen);
        for (size_t i = 0; i < kLen; ++i) {
            counts[s][i] =
                static_cast<uint16_t>(vals.next() % (kInputs + 1));
            steps[s][i] = static_cast<int>(vals.next() % 9) - 4;
        }
    }

    std::vector<std::vector<uint64_t>> whole(kStreams),
        segmented(kStreams);
    std::vector<uint16_t> states(kStreams, table.initialState());
    std::vector<const uint16_t *> cnt_ptrs(kStreams);
    std::vector<const int *> step_ptrs(kStreams);
    std::vector<uint64_t *> out_ptrs(kStreams);
    std::vector<uint16_t *> state_ptrs(kStreams);
    for (size_t s = 0; s < kStreams; ++s) {
        whole[s].resize(n_words);
        segmented[s].resize(n_words);
        table.transformWords(counts[s].data(), kLen, whole[s].data());
        cnt_ptrs[s] = counts[s].data();
        out_ptrs[s] = segmented[s].data();
        state_ptrs[s] = &states[s];
    }
    table.transformWordsBatch(cnt_ptrs.data(), 128, out_ptrs.data(),
                              state_ptrs.data(), kStreams);
    for (size_t s = 0; s < kStreams; ++s) {
        cnt_ptrs[s] = counts[s].data() + 128;
        out_ptrs[s] = segmented[s].data() + 2;
    }
    table.transformWordsBatch(cnt_ptrs.data(), kLen - 128,
                              out_ptrs.data(), state_ptrs.data(),
                              kStreams);
    for (size_t s = 0; s < kStreams; ++s)
        EXPECT_EQ(segmented[s], whole[s]) << "stream=" << s;

    // The signed-step variant against its single-stream twin.
    std::vector<std::vector<uint64_t>> signed_whole(kStreams),
        signed_batch(kStreams);
    states.assign(kStreams, table.initialState());
    for (size_t s = 0; s < kStreams; ++s) {
        signed_whole[s].resize(n_words);
        signed_batch[s].resize(n_words);
        table.transformSignedWords(steps[s].data(), kLen,
                                   signed_whole[s].data());
        step_ptrs[s] = steps[s].data();
        out_ptrs[s] = signed_batch[s].data();
        state_ptrs[s] = &states[s];
    }
    table.transformSignedWordsBatch(step_ptrs.data(), kLen,
                                    out_ptrs.data(), state_ptrs.data(),
                                    kStreams);
    for (size_t s = 0; s < kStreams; ++s)
        EXPECT_EQ(signed_batch[s], signed_whole[s]) << "stream=" << s;
}

/** Batched vs loop forwardBatch on one network/options pair: the
 *  predictions and every per-image ForwardInfo field must agree. */
void
expectBatchedMatchesLoop(const core::ScNetwork &sc,
                         const std::vector<nn::Tensor> &images,
                         uint64_t seed, core::PredictOptions opts,
                         const char *what)
{
    opts.batch_path = core::BatchPath::Batched;
    std::vector<core::ForwardInfo> bi;
    const auto bp = sc.forwardBatch(images, seed, opts, nullptr, &bi);

    opts.batch_path = core::BatchPath::Loop;
    std::vector<core::ForwardInfo> li;
    const auto lp = sc.forwardBatch(images, seed, opts, nullptr, &li);

    EXPECT_EQ(bp, lp) << what;
    ASSERT_EQ(bi.size(), li.size()) << what;
    for (size_t i = 0; i < bi.size(); ++i) {
        EXPECT_EQ(bi[i].scores, li[i].scores) << what << " image=" << i;
        EXPECT_EQ(bi[i].effective_bits, li[i].effective_bits)
            << what << " image=" << i;
        EXPECT_EQ(bi[i].early_exit, li[i].early_exit)
            << what << " image=" << i;
    }
}

TEST(BatchEngine, BatchedMatchesLoopForEveryFebKindAndSegmentSize)
{
    const struct
    {
        nn::PoolingMode pooling;
        core::AdderKind adder;
    } cases[] = {
        {nn::PoolingMode::Average, core::AdderKind::Mux},
        {nn::PoolingMode::Max, core::AdderKind::Mux},
        {nn::PoolingMode::Average, core::AdderKind::Apc},
        {nn::PoolingMode::Max, core::AdderKind::Apc},
    };
    std::vector<nn::Tensor> images;
    for (size_t i = 0; i < 5; ++i)
        images.push_back(nn::DigitDataset::render(i * 2 % 10, 40 + i));

    for (const auto &c : cases) {
        nn::Network net = nn::buildMiniLeNet(c.pooling, 23);
        core::ScNetworkConfig cfg;
        cfg.pooling = c.pooling;
        cfg.layer_adders = {c.adder, core::AdderKind::Apc,
                            core::AdderKind::Apc};
        cfg.bitstream_len = 200; // 4 words, 8-bit tail
        // 1-word, a size that does not divide the stream, and
        // whole-stream granularity.
        for (size_t seg_words : {size_t{1}, size_t{3}, size_t{0}}) {
            cfg.stream_segment_words = seg_words;
            // Run the batched path at the same grid as the loop oracle
            // (its default is whole-stream): the segment-carry logic
            // of the batch kernels is what this loop covers.
            cfg.batch_stream_segment_words = seg_words;
            core::ScNetwork sc(net, cfg);
            core::PredictOptions opts;
            expectBatchedMatchesLoop(sc, images, 17, opts, "fused");
        }
    }
}

TEST(BatchEngine, RaggedBatchSizesMatchPerImagePredict)
{
    nn::Network net = nn::buildMiniLeNet(nn::PoolingMode::Max, 23);
    core::ScNetworkConfig cfg;
    cfg.pooling = nn::PoolingMode::Max;
    cfg.bitstream_len = 200;
    cfg.stream_segment_words = 3;
    cfg.batch_stream_segment_words = 3;
    core::ScNetwork sc(net, cfg);

    for (size_t batch : {size_t{1}, size_t{3}, size_t{8}}) {
        std::vector<nn::Tensor> images;
        for (size_t i = 0; i < batch; ++i)
            images.push_back(nn::DigitDataset::render(i % 10, 60 + i));
        core::PredictOptions opts;
        expectBatchedMatchesLoop(sc, images, 31, opts, "ragged");
        // And against per-image predict at the batch seed schedule.
        const auto preds = sc.forwardBatch(images, 31, opts, nullptr,
                                           nullptr);
        for (size_t i = 0; i < batch; ++i)
            EXPECT_EQ(preds[i], sc.predict(images[i], 31 + i * 7919))
                << "batch=" << batch << " image=" << i;
    }
}

TEST(BatchEngine, ProgressiveMixedEarlyExitBatchStaysBitExact)
{
    // A trained network makes rendered digits decisive (they exit at
    // the margin check) while a uniform gray image stays ambiguous
    // (near-equal class scores, no exit) — a mixed batch in which some
    // images leave mid-stream. The batched path must compact the
    // active set without disturbing the survivors: every per-image
    // outcome equals the loop path's.
    nn::Dataset train = nn::DigitDataset::generate(1200, 5);
    nn::Network net = nn::buildMiniLeNet(nn::PoolingMode::Max, 1);
    nn::TrainConfig tc;
    tc.epochs = 3;
    nn::Trainer(net, tc).train(train);

    core::ScNetworkConfig cfg;
    cfg.pooling = nn::PoolingMode::Max;
    cfg.bitstream_len = 1024;
    cfg.stream_segment_words = 2;
    core::ScNetwork sc(net, cfg);

    std::vector<nn::Tensor> images;
    for (size_t i = 0; i < 3; ++i)
        images.push_back(nn::DigitDataset::render(3 * i % 10, 80 + i));
    nn::Tensor gray = images[0];
    for (size_t i = 0; i < gray.size(); ++i)
        gray[i] = 0.5F;
    images.insert(images.begin() + 1, gray);

    core::PredictOptions opts;
    opts.mode = core::EngineMode::Progressive;
    opts.progressive_margin = 2.0;
    opts.progressive_min_bits = 128;
    expectBatchedMatchesLoop(sc, images, 7, opts, "progressive");

    std::vector<core::ForwardInfo> infos;
    sc.forwardBatch(images, 7, opts, nullptr, &infos);
    size_t exits = 0;
    for (const auto &info : infos)
        exits += info.early_exit ? 1 : 0;
    EXPECT_GT(exits, 0u) << "no image exited early";
    EXPECT_LT(exits, images.size()) << "every image exited early";
}

TEST(BatchEngine, BatchedPathIsThreadCountInvariant)
{
    nn::Network net = nn::buildMiniLeNet(nn::PoolingMode::Max, 23);
    core::ScNetworkConfig cfg;
    cfg.pooling = nn::PoolingMode::Max;
    cfg.bitstream_len = 200;
    cfg.stream_segment_words = 3;
    core::ScNetwork sc(net, cfg);

    std::vector<nn::Tensor> images;
    for (size_t i = 0; i < 6; ++i)
        images.push_back(nn::DigitDataset::render(i % 10, 90 + i));

    core::PredictOptions opts;
    ThreadPool one(1), three(3);
    std::vector<core::ForwardInfo> a, b;
    const auto pa = sc.forwardBatch(images, 55, opts, &one, &a);
    const auto pb = sc.forwardBatch(images, 55, opts, &three, &b);
    EXPECT_EQ(pa, pb);
    for (size_t i = 0; i < images.size(); ++i)
        EXPECT_EQ(a[i].scores, b[i].scores) << "image=" << i;
}

} // namespace
} // namespace scdcnn
