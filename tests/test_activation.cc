/**
 * @file
 * Tests for the empirical state-count equations (Section 4.4).
 */

#include <gtest/gtest.h>

#include "blocks/activation.h"
#include "sc/btanh.h"

namespace scdcnn {
namespace blocks {
namespace {

TEST(StanhStateCountAvg, MatchesEquationOneByHand)
{
    // N=16, L=1024: 2*4 + (10*16)/(33.27*4) = 8 + 1.202 = 9.2 -> 10.
    EXPECT_EQ(stanhStateCountAvg(1024, 16), 10u);
    // N=64, L=1024: 12 + 640/199.6 = 15.2 -> 16.
    EXPECT_EQ(stanhStateCountAvg(1024, 64), 16u);
}

TEST(StanhStateCountAvg, AlwaysEvenAndAtLeastTwo)
{
    for (size_t n : {4u, 16u, 25u, 64u, 256u, 500u}) {
        for (size_t l : {256u, 512u, 1024u, 4096u}) {
            unsigned k = stanhStateCountAvg(l, n);
            EXPECT_EQ(k % 2, 0u) << n << "," << l;
            EXPECT_GE(k, 2u);
        }
    }
}

TEST(StanhStateCountAvg, GrowsWithInputSize)
{
    EXPECT_LT(stanhStateCountAvg(1024, 16), stanhStateCountAvg(1024, 256));
}

TEST(StanhStateCountAvg, GrowsWithLength)
{
    EXPECT_LE(stanhStateCountAvg(512, 64), stanhStateCountAvg(4096, 64));
}

TEST(StanhStateCountMax, MatchesEquationTwoByHand)
{
    // N=16, L=1024: 2*(4+10) - 37/4 - 16.5/log5(1024)
    // log5(1024) = 6.9315/1.6094 = 4.3067 -> 28 - 9.25 - 3.8312 = 14.9
    EXPECT_EQ(stanhStateCountMax(1024, 16), 14u);
}

TEST(StanhStateCountMax, AlwaysEvenAndAtLeastTwo)
{
    for (size_t n : {16u, 25u, 64u, 256u}) {
        for (size_t l : {256u, 1024u, 4096u}) {
            unsigned k = stanhStateCountMax(l, n);
            EXPECT_EQ(k % 2, 0u);
            EXPECT_GE(k, 2u);
        }
    }
}

TEST(StanhStateCountMax, GrowsWithInputSizeAndLength)
{
    EXPECT_LT(stanhStateCountMax(1024, 16), stanhStateCountMax(1024, 256));
    EXPECT_LT(stanhStateCountMax(256, 64), stanhStateCountMax(4096, 64));
}

TEST(StanhMaxThreshold, OneFifthOfStates)
{
    EXPECT_EQ(stanhMaxThreshold(20), 4u);
    EXPECT_EQ(stanhMaxThreshold(14), 3u);
    EXPECT_EQ(stanhMaxThreshold(10), 2u);
}

TEST(StanhMaxThreshold, ClampedToValidStates)
{
    EXPECT_GE(stanhMaxThreshold(2), 1u);
    EXPECT_LT(stanhMaxThreshold(2), 2u);
    EXPECT_GE(stanhMaxThreshold(4), 1u);
}

TEST(StanhStateCountScaleBack, TwiceTheInputSize)
{
    EXPECT_EQ(stanhStateCountScaleBack(25), 50u);
    EXPECT_EQ(stanhStateCountScaleBack(16), 32u);
    EXPECT_EQ(stanhStateCountScaleBack(500), 1000u);
}

TEST(BtanhSizing, EquationThreeIsHalfN)
{
    EXPECT_EQ(sc::Btanh::stateCountAvgPool(16), 8u);
    EXPECT_EQ(sc::Btanh::stateCountAvgPool(256), 128u);
}

TEST(AllStateEquations, PaperKsSmallerThanScaleBackForLargeN)
{
    // The paper's equations accept a flattened response in exchange for
    // fast FSM mixing: K grows ~log, far below the 2N scale-back.
    for (size_t n : {64u, 256u, 500u}) {
        EXPECT_LT(stanhStateCountAvg(1024, n),
                  stanhStateCountScaleBack(n));
        EXPECT_LT(stanhStateCountMax(1024, n),
                  stanhStateCountScaleBack(n));
    }
}

} // namespace
} // namespace blocks
} // namespace scdcnn
