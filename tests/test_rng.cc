/**
 * @file
 * Tests for the random number generators, including exhaustive
 * verification that the LFSR tap table gives maximal-length sequences.
 */

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "sc/rng.h"

namespace scdcnn {
namespace sc {
namespace {

/** Exhaustive LFSR period check for widths small enough to enumerate. */
class LfsrMaximalLength : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(LfsrMaximalLength, VisitsAllNonZeroStatesOnce)
{
    const unsigned width = GetParam();
    Lfsr lfsr(width, 1);
    const uint64_t period = lfsr.period();

    uint32_t first = lfsr.state();
    uint64_t steps = 0;
    do {
        lfsr.next();
        ++steps;
        ASSERT_NE(lfsr.state(), 0u) << "LFSR locked up at width " << width;
        ASSERT_LE(steps, period) << "width " << width
                                 << " repeated early or never";
    } while (lfsr.state() != first);
    EXPECT_EQ(steps, period) << "width " << width << " is not maximal";
}

INSTANTIATE_TEST_SUITE_P(Widths4To20, LfsrMaximalLength,
                         ::testing::Values(4u, 5u, 6u, 7u, 8u, 9u, 10u, 11u,
                                           12u, 13u, 14u, 15u, 16u, 17u, 18u,
                                           19u, 20u));

TEST(Lfsr, LargerWidthsCycleWithoutLockupSpotCheck)
{
    for (unsigned width : {22u, 24u, 28u, 32u}) {
        Lfsr lfsr(width, 0xDEADBEEF);
        uint32_t first = lfsr.state();
        bool returned_early = false;
        for (int i = 0; i < 1000000; ++i) {
            lfsr.next();
            ASSERT_NE(lfsr.state(), 0u);
            if (lfsr.state() == first) {
                returned_early = true;
                break;
            }
        }
        EXPECT_FALSE(returned_early)
            << "width " << width << " period is suspiciously small";
    }
}

TEST(Lfsr, ZeroSeedRemapped)
{
    Lfsr lfsr(8, 0);
    EXPECT_NE(lfsr.state(), 0u);
}

TEST(Lfsr, NextReturnsPreAdvanceState)
{
    Lfsr lfsr(8, 0x5A);
    uint32_t s = lfsr.state();
    EXPECT_EQ(lfsr.next(), s);
    EXPECT_NE(lfsr.state(), s);
}

TEST(Lfsr, StatesAreUniformOverOnePeriod)
{
    // Over a whole period each non-zero state appears exactly once, so
    // the mean state is (2^w)/2 exactly.
    Lfsr lfsr(12, 99);
    const uint64_t period = lfsr.period();
    uint64_t sum = 0;
    for (uint64_t i = 0; i < period; ++i)
        sum += lfsr.next();
    EXPECT_EQ(sum, (period * (period + 1)) / 2);
}

TEST(Lfsr, DeterministicForSameSeed)
{
    Lfsr a(16, 0x1234);
    Lfsr b(16, 0x1234);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, KnownFirstOutputsDiffer)
{
    SplitMix64 a(1);
    SplitMix64 b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(SplitMix64, DoublesInUnitInterval)
{
    SplitMix64 rng(42);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(SplitMix64, NextBelowInRange)
{
    SplitMix64 rng(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(7), 7u);
}

TEST(Xoshiro, DeterministicForSameSeed)
{
    Xoshiro256ss a(777);
    Xoshiro256ss b(777);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, MeanOfDoublesNearHalf)
{
    Xoshiro256ss rng(3);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro, NextBelowUniformish)
{
    Xoshiro256ss rng(5);
    std::vector<int> buckets(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        buckets[rng.nextBelow(10)]++;
    for (int b : buckets)
        EXPECT_NEAR(b, n / 10, n / 100);
}

TEST(Xoshiro, GaussianMomentsMatch)
{
    Xoshiro256ss rng(9);
    const int n = 200000;
    double sum = 0, sum2 = 0;
    for (int i = 0; i < n; ++i) {
        double g = rng.nextGaussian();
        sum += g;
        sum2 += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Xoshiro, RangeRespectsBounds)
{
    Xoshiro256ss rng(13);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.nextInRange(-1.0, 1.0);
        EXPECT_GE(v, -1.0);
        EXPECT_LT(v, 1.0);
    }
}

} // namespace
} // namespace sc
} // namespace scdcnn
