/**
 * @file
 * Tests for the gate-level stochastic arithmetic of Section 3.2.
 */

#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "sc/bitstream.h"
#include "sc/ops.h"
#include "sc/rng.h"
#include "sc/sng.h"

namespace scdcnn {
namespace sc {
namespace {

constexpr size_t kLen = 1 << 15;

TEST(Multiply, PaperUnipolarExample)
{
    // Figure 4(a): 4/8 AND 6/8 -> 3/8 for these exact streams.
    Bitstream a = Bitstream::fromString("11110000");
    Bitstream b = Bitstream::fromString("11011110");
    Bitstream z = andMultiply(a, b);
    EXPECT_DOUBLE_EQ(z.unipolar(), 3.0 / 8.0);
}

TEST(Multiply, PaperBipolarExample)
{
    // Figure 4(b): bipolar XNOR of the two example streams gives 0/8
    // ones -> represents -1... checking the gate behaviour bit-exact.
    Bitstream a = Bitstream::fromString("11010010");
    Bitstream b = Bitstream::fromString("10111110");
    Bitstream z = xnorMultiply(a, b);
    EXPECT_EQ(z.toString(), "10010011");
}

/** Property sweep: AND multiplies unipolar values. */
class UnipolarMultiply
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(UnipolarMultiply, MatchesProduct)
{
    auto [pa, pb] = GetParam();
    SngBank bank(1000 + static_cast<uint64_t>(pa * 100) * 101 +
                 static_cast<uint64_t>(pb * 100));
    Bitstream a = bank.unipolar(pa, kLen);
    Bitstream b = bank.unipolar(pb, kLen);
    EXPECT_NEAR(andMultiply(a, b).unipolar(), pa * pb, 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, UnipolarMultiply,
    ::testing::Combine(::testing::Values(0.0, 0.2, 0.5, 0.8, 1.0),
                       ::testing::Values(0.1, 0.5, 0.9)));

/** Property sweep: XNOR multiplies bipolar values. */
class BipolarMultiply
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(BipolarMultiply, MatchesProduct)
{
    auto [xa, xb] = GetParam();
    SngBank bank(2000 + static_cast<uint64_t>((xa + 1) * 100) * 211 +
                 static_cast<uint64_t>((xb + 1) * 100));
    Bitstream a = bank.bipolar(xa, kLen);
    Bitstream b = bank.bipolar(xb, kLen);
    EXPECT_NEAR(xnorMultiply(a, b).bipolar(), xa * xb, 0.03);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BipolarMultiply,
    ::testing::Combine(::testing::Values(-1.0, -0.6, 0.0, 0.4, 1.0),
                       ::testing::Values(-0.8, -0.2, 0.3, 0.9)));

TEST(BipolarMultiplyCorrelation, SharedRngBreaksTheProduct)
{
    // x * x with a shared generator gives XNOR(a,a) = all ones = +1,
    // not x^2: the canonical correlation failure.
    Lfsr l1(16, 33);
    Lfsr l2(16, 33);
    Bitstream a = sngBipolar(0.3, kLen, l1);
    Bitstream b = sngBipolar(0.3, kLen, l2);
    EXPECT_DOUBLE_EQ(xnorMultiply(a, b).bipolar(), 1.0);
}

TEST(OrAdd, ExactOnDisjointStreams)
{
    // The paper's example: 3/8 + 4/8 as "00100101 OR 11001010" = 7/8.
    Bitstream a = Bitstream::fromString("00100101");
    Bitstream b = Bitstream::fromString("11001010");
    EXPECT_DOUBLE_EQ(orAdd({a, b}).unipolar(), 7.0 / 8.0);
}

TEST(OrAdd, LossyOnOverlappingStreams)
{
    // Same values, different representation: "10011000 OR 11001010"
    // loses a one (5/8 instead of 7/8) — the multiple-representation
    // inaccuracy the paper describes.
    Bitstream a = Bitstream::fromString("10011000");
    Bitstream b = Bitstream::fromString("11001010");
    EXPECT_DOUBLE_EQ(orAdd({a, b}).unipolar(), 5.0 / 8.0);
}

TEST(OrAdd, ApproachesSumForSparseStreams)
{
    // With small probabilities, overlaps are rare and OR ~ sum.
    SngBank bank(7);
    Bitstream a = bank.unipolar(0.02, kLen);
    Bitstream b = bank.unipolar(0.03, kLen);
    EXPECT_NEAR(orAdd({a, b}).unipolar(), 0.05, 0.005);
}

TEST(MuxAdd, TwoInputsHalveTheSum)
{
    SngBank bank(11);
    Bitstream a = bank.bipolar(0.6, kLen);
    Bitstream b = bank.bipolar(-0.2, kLen);
    Xoshiro256ss sel = bank.makeRng();
    // Bipolar MUX: c = (a+b)/2.
    EXPECT_NEAR(muxAdd({a, b}, sel).bipolar(), (0.6 - 0.2) / 2.0, 0.02);
}

/** Property sweep: n-input MUX scales by 1/n. */
class MuxAddScaling : public ::testing::TestWithParam<int>
{
};

TEST_P(MuxAddScaling, OutputIsScaledSum)
{
    const int n = GetParam();
    SngBank bank(123 + n);
    SplitMix64 vals(n);
    std::vector<Bitstream> inputs;
    double sum = 0;
    for (int i = 0; i < n; ++i) {
        double x = vals.nextInRange(-1.0, 1.0);
        sum += x;
        inputs.push_back(bank.bipolar(x, kLen));
    }
    Xoshiro256ss sel = bank.makeRng();
    EXPECT_NEAR(muxAdd(inputs, sel).bipolar(), sum / n, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MuxAddScaling,
                         ::testing::Values(2, 4, 8, 16, 32));

TEST(MuxAdd, WithSelectsIsDeterministic)
{
    Bitstream a = Bitstream::fromString("1111");
    Bitstream b = Bitstream::fromString("0000");
    std::vector<uint32_t> sel = {0, 1, 0, 1};
    EXPECT_EQ(muxAddWithSelects({a, b}, sel).toString(), "1010");
}

TEST(Scc, IdenticalStreamsFullyCorrelated)
{
    SngBank bank(3);
    Bitstream a = bank.unipolar(0.4, kLen);
    EXPECT_DOUBLE_EQ(scc(a, a), 1.0);
}

TEST(Scc, ComplementStreamsAntiCorrelated)
{
    SngBank bank(3);
    Bitstream a = bank.unipolar(0.5, kLen);
    EXPECT_NEAR(scc(a, ~a), -1.0, 1e-9);
}

TEST(Scc, IndependentStreamsNearZero)
{
    SngBank bank(3);
    Bitstream a = bank.unipolar(0.5, kLen);
    Bitstream b = bank.unipolar(0.5, kLen);
    EXPECT_NEAR(scc(a, b), 0.0, 0.05);
}

} // namespace
} // namespace sc
} // namespace scdcnn
