/**
 * @file
 * Tests for stochastic number generators: expected values, saturation,
 * determinism, and stream independence.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "sc/bitstream.h"
#include "sc/ops.h"
#include "sc/rng.h"
#include "sc/sng.h"

namespace scdcnn {
namespace sc {
namespace {

TEST(ConstantStream, AllOnesIsPlusOne)
{
    Bitstream s = constantStream(true, 100);
    EXPECT_EQ(s.countOnes(), 100u);
    EXPECT_DOUBLE_EQ(s.bipolar(), 1.0);
}

TEST(ConstantStream, AllZerosIsMinusOne)
{
    Bitstream s = constantStream(false, 100);
    EXPECT_EQ(s.countOnes(), 0u);
    EXPECT_DOUBLE_EQ(s.bipolar(), -1.0);
}

/** Unipolar SNG value sweep, both sources. */
class SngUnipolarSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(SngUnipolarSweep, XoshiroHitsExpectedValue)
{
    const double p = GetParam();
    Xoshiro256ss rng(1234);
    Bitstream s = sngUnipolar(p, 1 << 16, rng);
    EXPECT_NEAR(s.unipolar(), p, 0.01);
}

TEST_P(SngUnipolarSweep, LfsrHitsExpectedValue)
{
    const double p = GetParam();
    Lfsr lfsr(16, 0xACE1);
    Bitstream s = sngUnipolar(p, 1 << 16, lfsr);
    // One full LFSR period is essentially exact (quasi-uniform source).
    EXPECT_NEAR(s.unipolar(), p, 0.002);
}

INSTANTIATE_TEST_SUITE_P(Values, SngUnipolarSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.4, 0.5, 0.6,
                                           0.75, 0.9, 1.0));

/** Bipolar SNG value sweep. */
class SngBipolarSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(SngBipolarSweep, XoshiroHitsExpectedValue)
{
    const double x = GetParam();
    Xoshiro256ss rng(99);
    Bitstream s = sngBipolar(x, 1 << 16, rng);
    EXPECT_NEAR(s.bipolar(), x, 0.02);
}

TEST_P(SngBipolarSweep, LfsrHitsExpectedValue)
{
    const double x = GetParam();
    Lfsr lfsr(16, 0xBEEF);
    Bitstream s = sngBipolar(x, 1 << 16, lfsr);
    EXPECT_NEAR(s.bipolar(), x, 0.004);
}

INSTANTIATE_TEST_SUITE_P(Values, SngBipolarSweep,
                         ::testing::Values(-1.0, -0.75, -0.5, -0.1, 0.0, 0.1,
                                           0.5, 0.75, 1.0));

TEST(Sng, OutOfRangeValuesSaturate)
{
    Xoshiro256ss rng(5);
    EXPECT_DOUBLE_EQ(sngUnipolar(1.7, 4096, rng).unipolar(), 1.0);
    EXPECT_DOUBLE_EQ(sngUnipolar(-0.3, 4096, rng).unipolar(), 0.0);
    EXPECT_DOUBLE_EQ(sngBipolar(2.5, 4096, rng).bipolar(), 1.0);
    EXPECT_DOUBLE_EQ(sngBipolar(-9.0, 4096, rng).bipolar(), -1.0);
}

TEST(Sng, ErrorShrinksWithLength)
{
    // Stochastic representation error scales like 1/sqrt(L); check the
    // averaged absolute error drops when L is 16x longer.
    auto mean_abs_err = [](size_t len, uint64_t seed) {
        Xoshiro256ss rng(seed);
        SplitMix64 values(seed ^ 0x1111);
        double err = 0;
        const int trials = 200;
        for (int t = 0; t < trials; ++t) {
            double x = values.nextInRange(-1.0, 1.0);
            err += std::abs(sngBipolar(x, len, rng).bipolar() - x);
        }
        return err / trials;
    };
    double err_short = mean_abs_err(256, 21);
    double err_long = mean_abs_err(4096, 21);
    EXPECT_LT(err_long, err_short * 0.5);
}

TEST(Sng, LfsrStreamsWithSameSeedAreIdentical)
{
    Lfsr a(16, 7);
    Lfsr b(16, 7);
    EXPECT_EQ(sngBipolar(0.3, 2048, a), sngBipolar(0.3, 2048, b));
}

TEST(SngBank, StreamsAreReproduciblePerSeed)
{
    SngBank bank1(42);
    SngBank bank2(42);
    EXPECT_EQ(bank1.bipolar(0.25, 1024), bank2.bipolar(0.25, 1024));
}

TEST(SngBank, ConsecutiveStreamsAreIndependent)
{
    SngBank bank(42);
    Bitstream a = bank.bipolar(0.5, 1 << 15);
    Bitstream b = bank.bipolar(0.5, 1 << 15);
    EXPECT_NE(a, b);
    // Independent streams have near-zero stochastic cross-correlation.
    EXPECT_NEAR(scc(a, b), 0.0, 0.05);
}

TEST(SngBank, DifferentSeedsDiffer)
{
    SngBank bank1(1);
    SngBank bank2(2);
    EXPECT_NE(bank1.bipolar(0.0, 1024), bank2.bipolar(0.0, 1024));
}

TEST(Sng, SharedLfsrProducesMaximallyCorrelatedStreams)
{
    // Two SNGs driven by the *same* RNG sequence produce overlapping
    // streams (SCC -> +1): the pathology that motivates independent
    // seeds for multiplier operands.
    Lfsr a(16, 7);
    Lfsr b(16, 7);
    Bitstream s1 = sngUnipolar(0.5, 1 << 14, a);
    Bitstream s2 = sngUnipolar(0.7, 1 << 14, b);
    EXPECT_GT(scc(s1, s2), 0.9);
}

} // namespace
} // namespace sc
} // namespace scdcnn
