/**
 * @file
 * Serving-layer tests: deterministic fake-clock coverage of every
 * batch-close condition in the scheduler, histogram/metrics sanity,
 * and end-to-end InferenceServer behaviour — answers matching direct
 * predict() calls, multi-producer stress (each request answered
 * exactly once), drain/shutdown semantics, and deadline-driven
 * precision degradation.
 */

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/sc_network.h"
#include "nn/dataset.h"
#include "nn/network.h"
#include "nn/topology.h"
#include "serve/clock.h"
#include "serve/metrics.h"
#include "serve/request_queue.h"
#include "serve/scheduler.h"
#include "serve/server.h"

namespace scdcnn {
namespace {

using namespace std::chrono_literals;
using serve::AccuracyClass;
using serve::BatchScheduler;
using serve::CloseReason;
using serve::ManualClock;
using serve::SchedulerLimits;

SchedulerLimits
limits(size_t max_batch, std::chrono::microseconds delay)
{
    SchedulerLimits l;
    l.max_batch = max_batch;
    l.max_queue_delay = delay;
    return l;
}

// ---------------------------------------------------------- scheduler

TEST(BatchScheduler, FullBatchClosesImmediately)
{
    ManualClock clock;
    BatchScheduler s(limits(3, 1000us));
    const auto t = clock.now();
    s.push(10, AccuracyClass::Balanced, t, std::nullopt);
    s.push(11, AccuracyClass::Balanced, t, std::nullopt);
    EXPECT_FALSE(s.poll(t, false).has_value());
    s.push(12, AccuracyClass::Balanced, t, std::nullopt);

    const auto plan = s.poll(t, false);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->reason, CloseReason::Full);
    EXPECT_EQ(plan->cls, AccuracyClass::Balanced);
    EXPECT_EQ(plan->ids, (std::vector<uint64_t>{10, 11, 12}));
    EXPECT_EQ(s.depth(), 0u);
}

TEST(BatchScheduler, QueueDelayExpiryClosesPartialBatch)
{
    ManualClock clock;
    BatchScheduler s(limits(8, 1000us));
    s.push(1, AccuracyClass::High, clock.now(), std::nullopt);
    clock.advance(400us);
    s.push(2, AccuracyClass::High, clock.now(), std::nullopt);

    EXPECT_FALSE(s.poll(clock.now(), false).has_value());
    clock.advance(599us); // oldest is now 999us old
    EXPECT_FALSE(s.poll(clock.now(), false).has_value());
    clock.advance(1us); // exactly max_queue_delay
    const auto plan = s.poll(clock.now(), false);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->reason, CloseReason::DelayExpired);
    EXPECT_EQ(plan->ids, (std::vector<uint64_t>{1, 2}));
}

TEST(BatchScheduler, DrainFlushesPartialBatchesOldestFirst)
{
    ManualClock clock;
    BatchScheduler s(limits(8, 1h));
    s.push(1, AccuracyClass::Fast, clock.now(), std::nullopt);
    clock.advance(1us);
    s.push(2, AccuracyClass::High, clock.now(), std::nullopt);

    auto first = s.poll(clock.now(), true);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->reason, CloseReason::Drain);
    EXPECT_EQ(first->cls, AccuracyClass::Fast);
    auto second = s.poll(clock.now(), true);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->cls, AccuracyClass::High);
    EXPECT_FALSE(s.poll(clock.now(), true).has_value());
}

TEST(BatchScheduler, FifoWithinAccuracyClass)
{
    ManualClock clock;
    BatchScheduler s(limits(2, 1000us));
    // Interleave two classes; each class's batches must preserve its
    // own submission order.
    s.push(1, AccuracyClass::High, clock.now(), std::nullopt);
    s.push(2, AccuracyClass::Fast, clock.now(), std::nullopt);
    clock.advance(1us);
    s.push(3, AccuracyClass::High, clock.now(), std::nullopt);
    s.push(4, AccuracyClass::Fast, clock.now(), std::nullopt);

    auto a = s.poll(clock.now(), false);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->cls, AccuracyClass::High); // oldest head among full
    EXPECT_EQ(a->ids, (std::vector<uint64_t>{1, 3}));
    auto b = s.poll(clock.now(), false);
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(b->ids, (std::vector<uint64_t>{2, 4}));
}

TEST(BatchScheduler, BatchesNeverMixAccuracyClasses)
{
    ManualClock clock;
    BatchScheduler s(limits(4, 500us));
    s.push(1, AccuracyClass::High, clock.now(), std::nullopt);
    s.push(2, AccuracyClass::Balanced, clock.now(), std::nullopt);
    clock.advance(500us);
    auto plan = s.poll(clock.now(), false);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->ids.size(), 1u);
}

TEST(BatchScheduler, TightDeadlineExpeditesAndDegrades)
{
    ManualClock clock;
    BatchScheduler s(limits(8, 10ms));
    s.setServiceEstimate(AccuracyClass::High, 100ms);
    s.setServiceEstimate(AccuracyClass::Balanced, 30ms);
    s.setServiceEstimate(AccuracyClass::Fast, 5ms);

    // Requested High, but the deadline only affords Balanced: urgent
    // right away (100 + 10 > 40), served at the degraded class.
    s.push(7, AccuracyClass::High, clock.now(), clock.now() + 40ms);
    const auto plan = s.poll(clock.now(), false);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->reason, CloseReason::Expedited);
    EXPECT_EQ(plan->cls, AccuracyClass::Balanced);
    EXPECT_EQ(plan->ids, (std::vector<uint64_t>{7}));
}

TEST(BatchScheduler, RelaxedDeadlineWaitsThenBecomesUrgent)
{
    ManualClock clock;
    BatchScheduler s(limits(8, 10ms));
    s.setServiceEstimate(AccuracyClass::Balanced, 30ms);
    s.push(3, AccuracyClass::Balanced, clock.now(),
           clock.now() + 200ms);
    // Not urgent yet (trigger at 200 - 30 - 10 = 160ms)...
    EXPECT_FALSE(s.poll(clock.now(), false).has_value());
    const auto next = s.nextEventTime();
    ASSERT_TRUE(next.has_value());
    // ...but the delay bound (10ms) fires first.
    EXPECT_EQ(*next - clock.now(), 10ms);
    clock.advance(10ms);
    auto plan = s.poll(clock.now(), false);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->reason, CloseReason::DelayExpired);
}

TEST(BatchScheduler, UrgentRequestsGroupIntoOneExpeditedBatch)
{
    ManualClock clock;
    BatchScheduler s(limits(8, 10ms));
    s.setServiceEstimate(AccuracyClass::Fast, 5ms);
    s.push(1, AccuracyClass::Fast, clock.now(), clock.now() + 12ms);
    s.push(2, AccuracyClass::Fast, clock.now(), clock.now() + 8ms);
    s.push(3, AccuracyClass::Fast, clock.now(), std::nullopt);
    const auto plan = s.poll(clock.now(), false);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->reason, CloseReason::Expedited);
    // Tightest deadline first; the undeadlined request stays queued.
    EXPECT_EQ(plan->ids, (std::vector<uint64_t>{2, 1}));
    EXPECT_EQ(s.depth(), 1u);
}

TEST(BatchScheduler, NextEventTimeTracksOldestHead)
{
    ManualClock clock;
    BatchScheduler s(limits(8, 250us));
    EXPECT_FALSE(s.nextEventTime().has_value());
    s.push(1, AccuracyClass::High, clock.now(), std::nullopt);
    const auto next = s.nextEventTime();
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(*next, clock.now() + 250us);
}

// ------------------------------------------------------------ metrics

TEST(LatencyHistogram, QuantilesLandInTheRightBucket)
{
    serve::LatencyHistogram h;
    for (int i = 0; i < 100; ++i)
        h.record(10.0); // 10ms
    h.record(1000.0);   // one 1s outlier
    const auto s = h.stats();
    EXPECT_EQ(s.count, 101u);
    // Bucket resolution is 1/8 relative; generous bounds.
    EXPECT_GT(s.p50_ms, 7.0);
    EXPECT_LT(s.p50_ms, 13.0);
    EXPECT_GT(s.p99_ms, 7.0);
    EXPECT_LT(s.p99_ms, 13.0);
    EXPECT_NEAR(s.max_ms, 1000.0, 1.0);
    EXPECT_GT(s.mean_ms, 10.0);
}

TEST(LatencyHistogram, EmptyIsAllZero)
{
    serve::LatencyHistogram h;
    const auto s = h.stats();
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.p99_ms, 0.0);
}

TEST(ServerMetrics, SnapshotJsonCarriesTheHeadlineFields)
{
    serve::ServerMetrics m;
    m.recordSubmit();
    m.recordBatch(1, 0, CloseReason::Drain);
    serve::InferenceResult r;
    r.effective_bits = 128;
    r.early_exit = true;
    r.total_ms = 5.0;
    r.queue_ms = 1.0;
    m.recordResult(r, /*had_deadline=*/false);

    m.recordBatchExecution(/*batch_kernel=*/true,
                           core::EngineMode::Progressive,
                           /*bits_spread=*/96);
    m.recordBatchExecution(/*batch_kernel=*/false,
                           core::EngineMode::Binary,
                           /*bits_spread=*/32);

    const auto snap = m.snapshot();
    EXPECT_EQ(snap.submitted, 1u);
    EXPECT_EQ(snap.completed, 1u);
    EXPECT_EQ(snap.batches, 1u);
    EXPECT_EQ(snap.batch_kernel_batches, 1u);
    EXPECT_EQ(snap.loop_batches, 1u);
    EXPECT_DOUBLE_EQ(snap.avg_effective_bits_spread, 64.0);
    EXPECT_EQ(snap.max_effective_bits_spread, 96u);
    EXPECT_DOUBLE_EQ(snap.early_exit_rate, 1.0);
    EXPECT_DOUBLE_EQ(snap.avg_effective_bits, 128.0);
    const std::string json = snap.toJson();
    EXPECT_NE(json.find("\"completed\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"latency\""), std::string::npos);
    EXPECT_NE(json.find("\"batch_sizes\""), std::string::npos);
    EXPECT_NE(json.find("\"close_reasons\""), std::string::npos);
    EXPECT_NE(json.find("\"batch_kernel_batches\": 1"),
              std::string::npos);
    EXPECT_NE(json.find("\"loop_batches\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"max_effective_bits_spread\": 96"),
              std::string::npos);
    EXPECT_EQ(snap.batches_by_mode[static_cast<size_t>(
                  core::EngineMode::Progressive)],
              1u);
    EXPECT_EQ(snap.batches_by_mode[static_cast<size_t>(
                  core::EngineMode::Binary)],
              1u);
    EXPECT_NE(json.find("\"batches_by_mode\""), std::string::npos);
    EXPECT_NE(json.find("\"binary\": 1"), std::string::npos);
}

// ------------------------------------------------------ request queue

TEST(RequestQueue, FullBatchPopsWithPayloads)
{
    serve::SteadyClock clock;
    serve::RequestQueue q(limits(2, 1h), &clock);
    for (uint64_t i = 0; i < 2; ++i) {
        serve::PendingRequest r;
        r.id = i;
        r.submitted = clock.now();
        ASSERT_EQ(q.push(std::move(r)), serve::AdmitResult::Accepted);
    }
    const auto batch = q.popBatch().batch;
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->items.size(), 2u);
    EXPECT_EQ(batch->items[0].id, 0u);
    EXPECT_EQ(batch->items[1].id, 1u);
}

TEST(RequestQueue, CloseDrainsBacklogThenSignalsExit)
{
    serve::SteadyClock clock;
    serve::RequestQueue q(limits(8, 1h), &clock);
    serve::PendingRequest r;
    r.id = 42;
    r.submitted = clock.now();
    ASSERT_EQ(q.push(std::move(r)), serve::AdmitResult::Accepted);
    q.close();

    auto batch = q.popBatch().batch; // flushes the partial batch
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->reason, CloseReason::Drain);
    EXPECT_TRUE(q.popBatch().closed); // closed and empty

    serve::PendingRequest late;
    late.id = 43;
    EXPECT_EQ(q.push(std::move(late)), serve::AdmitResult::Closed);
}

// ------------------------------------------------- server end-to-end

/** Small, fast engine shared by the server tests. */
struct ServingFixture
{
    nn::Network net = nn::buildLeNet5(nn::PoolingMode::Max, 1);
    core::ScNetworkConfig cfg;
    std::unique_ptr<core::ScNetwork> sc;

    explicit ServingFixture(size_t len = 128, size_t seg_words = 1)
    {
        cfg.bitstream_len = len;
        cfg.stream_segment_words = seg_words;
        sc = std::make_unique<core::ScNetwork>(net, cfg);
    }
};

TEST(InferenceServer, AnswersMatchDirectPredict)
{
    ServingFixture fx;
    serve::ServerConfig scfg;
    scfg.limits = limits(4, 200us);
    serve::InferenceServer server(*fx.sc, scfg);

    std::vector<nn::Tensor> images;
    std::vector<std::future<serve::InferenceResult>> futures;
    for (size_t i = 0; i < 6; ++i) {
        images.push_back(nn::DigitDataset::render(i % 10, 7 + i));
        serve::RequestOptions opts;
        opts.accuracy = AccuracyClass::High;
        opts.seed = 1000 + i;
        futures.push_back(server.submit(images.back(), opts));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
        serve::InferenceResult r = futures[i].get();
        EXPECT_EQ(r.predicted, fx.sc->predict(images[i], 1000 + i));
        EXPECT_EQ(r.effective_bits, fx.cfg.bitstream_len);
        EXPECT_FALSE(r.early_exit);
        EXPECT_EQ(r.served, AccuracyClass::High);
        EXPECT_FALSE(r.degraded);
        EXPECT_GE(r.batch_size, 1u);
        EXPECT_LE(r.batch_size, 4u);
    }
    const auto snap = server.metricsSnapshot();
    EXPECT_EQ(snap.completed, 6u);
    EXPECT_EQ(snap.submitted, 6u);
}

TEST(InferenceServer, MicroBatchesTakeTheBatchKernel)
{
    // With max_batch = 3 and an effectively-infinite queue delay the
    // scheduler only closes full batches, so every executed
    // micro-batch has 3 images and must route through the
    // weight-stationary batch kernels — the loop counter stays zero,
    // answers still match direct predict() at the per-item seeds, and
    // full-precision batches report zero effective-bits spread.
    ServingFixture fx;
    serve::ServerConfig scfg;
    scfg.limits = limits(3, 1h);
    serve::InferenceServer server(*fx.sc, scfg);

    std::vector<nn::Tensor> images;
    std::vector<std::future<serve::InferenceResult>> futures;
    for (size_t i = 0; i < 6; ++i) {
        images.push_back(nn::DigitDataset::render(i % 10, 30 + i));
        serve::RequestOptions opts;
        opts.accuracy = AccuracyClass::High;
        opts.seed = 5000 + i * 13;
        futures.push_back(server.submit(images.back(), opts));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
        serve::InferenceResult r = futures[i].get();
        EXPECT_EQ(r.batch_size, 3u) << "request=" << i;
        EXPECT_EQ(r.predicted, fx.sc->predict(images[i], 5000 + i * 13))
            << "request=" << i;
    }
    const auto snap = server.metricsSnapshot();
    EXPECT_EQ(snap.batch_kernel_batches, 2u);
    EXPECT_EQ(snap.loop_batches, 0u);
    EXPECT_DOUBLE_EQ(snap.avg_effective_bits_spread, 0.0);
    EXPECT_EQ(snap.max_effective_bits_spread, 0u);

    // Singleton batches are the counter's other side: max_batch = 1
    // makes every micro-batch a single image, which takes the
    // per-image loop.
    serve::ServerConfig single_cfg;
    single_cfg.limits = limits(1, 1h);
    serve::InferenceServer singles(*fx.sc, single_cfg);
    std::vector<std::future<serve::InferenceResult>> sf;
    for (size_t i = 0; i < 2; ++i) {
        serve::RequestOptions opts;
        opts.accuracy = AccuracyClass::High;
        opts.seed = 6000 + i;
        sf.push_back(singles.submit(images[i], opts));
    }
    for (auto &f : sf)
        f.get();
    const auto ssnap = singles.metricsSnapshot();
    EXPECT_EQ(ssnap.batch_kernel_batches, 0u);
    EXPECT_EQ(ssnap.loop_batches, 2u);
}

TEST(InferenceServer, ServesNonLeNetTopologies)
{
    // The serving layer is topology-general: a conv-free MLP
    // (784-500-10) and the deeper 3-conv LeNet-L both serve
    // end-to-end — submit() -> micro-batched predictWith -> futures —
    // with predictions bit-equal to direct predict() calls.
    struct Scenario
    {
        const char *name;
        nn::Network net;
    };
    Scenario scenarios[] = {
        {"mlp", nn::buildMlp(1)},
        {"lenet-l", nn::buildLeNetL(nn::PoolingMode::Max, 1)},
    };
    for (Scenario &sc : scenarios) {
        core::ScNetworkConfig cfg;
        cfg.bitstream_len = 128;
        cfg.stream_segment_words = 1;
        core::ScNetwork engine(sc.net, cfg);
        serve::ServerConfig scfg;
        scfg.limits = limits(4, 200us);
        serve::InferenceServer server(engine, scfg);

        std::vector<nn::Tensor> images;
        std::vector<std::future<serve::InferenceResult>> futures;
        for (size_t i = 0; i < 4; ++i) {
            images.push_back(nn::DigitDataset::render(i % 10, 40 + i));
            serve::RequestOptions opts;
            opts.accuracy = AccuracyClass::High;
            opts.seed = 3000 + i;
            futures.push_back(server.submit(images.back(), opts));
        }
        for (size_t i = 0; i < futures.size(); ++i) {
            serve::InferenceResult r = futures[i].get();
            EXPECT_EQ(r.predicted, engine.predict(images[i], 3000 + i))
                << sc.name << " image " << i;
            EXPECT_EQ(r.scores.size(), 10u) << sc.name;
            EXPECT_EQ(r.effective_bits, cfg.bitstream_len) << sc.name;
        }
        const auto snap = server.metricsSnapshot();
        EXPECT_EQ(snap.completed, 4u) << sc.name;
    }
}

TEST(InferenceServer, QosTableIsDerivedFromTheServedNetwork)
{
    // A network calibrated with its own Progressive knobs propagates
    // them into the server's resolved QoS table: Balanced inherits
    // margin/floor; the default Fast policy is the binary backend
    // (explicit zeros, nothing to derive); a Fast entry overridden to
    // sentinel Progressive halves the margin and quarters the floor;
    // explicit entries are untouched.
    nn::Network net = nn::buildMiniLeNet(nn::PoolingMode::Max, 1);
    core::ScNetworkConfig cfg;
    cfg.bitstream_len = 256;
    cfg.progressive_margin = 3.0;
    cfg.progressive_min_bits = 128;
    core::ScNetwork engine(net, cfg);

    serve::InferenceServer server(engine, {});
    const auto &qos = server.config().qos;
    const auto &balanced =
        qos[static_cast<size_t>(AccuracyClass::Balanced)];
    EXPECT_DOUBLE_EQ(balanced.progressive_margin, 3.0);
    EXPECT_EQ(balanced.progressive_min_bits, 128u);
    const auto &fast = qos[static_cast<size_t>(AccuracyClass::Fast)];
    EXPECT_EQ(fast.mode, core::EngineMode::Binary);
    EXPECT_DOUBLE_EQ(fast.progressive_margin, 0.0);
    EXPECT_EQ(fast.progressive_min_bits, 0u);

    serve::ServerConfig derive_cfg;
    derive_cfg.qos[static_cast<size_t>(AccuracyClass::Fast)] =
        serve::QosPolicy{core::EngineMode::Progressive};
    serve::InferenceServer server_derived(engine, derive_cfg);
    const auto &fast_derived =
        server_derived.config()
            .qos[static_cast<size_t>(AccuracyClass::Fast)];
    EXPECT_DOUBLE_EQ(fast_derived.progressive_margin, 1.5);
    EXPECT_EQ(fast_derived.progressive_min_bits, 32u);

    serve::ServerConfig explicit_cfg;
    explicit_cfg.qos[static_cast<size_t>(AccuracyClass::Fast)] = {
        core::EngineMode::Progressive, 9.0, 16};
    serve::InferenceServer server2(engine, explicit_cfg);
    const auto &fast2 = server2.config()
                            .qos[static_cast<size_t>(AccuracyClass::Fast)];
    EXPECT_DOUBLE_EQ(fast2.progressive_margin, 9.0);
    EXPECT_EQ(fast2.progressive_min_bits, 16u);
}

TEST(InferenceServer, MultiProducerStressEveryRequestAnsweredOnce)
{
    ServingFixture fx;
    serve::ServerConfig scfg;
    scfg.limits = limits(4, 300us);
    serve::InferenceServer server(*fx.sc, scfg);

    constexpr size_t kProducers = 4;
    constexpr size_t kPerProducer = 12;
    std::vector<std::vector<std::future<serve::InferenceResult>>> futs(
        kProducers);
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (size_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (size_t i = 0; i < kPerProducer; ++i) {
                const uint64_t seed = 5000 + p * 100 + i;
                serve::RequestOptions opts;
                // Mix classes so batches of different QoS interleave;
                // High keeps predictions comparable to predict().
                opts.accuracy = AccuracyClass::High;
                opts.seed = seed;
                futs[p].push_back(server.submit(
                    nn::DigitDataset::render((p + i) % 10, seed),
                    opts));
            }
        });
    }
    for (auto &t : producers)
        t.join();

    size_t answered = 0;
    for (size_t p = 0; p < kProducers; ++p) {
        for (size_t i = 0; i < kPerProducer; ++i) {
            const uint64_t seed = 5000 + p * 100 + i;
            serve::InferenceResult r = futs[p][i].get();
            ++answered;
            EXPECT_EQ(r.seed, seed);
            EXPECT_EQ(r.predicted,
                      fx.sc->predict(
                          nn::DigitDataset::render((p + i) % 10, seed),
                          seed));
        }
    }
    EXPECT_EQ(answered, kProducers * kPerProducer);
    const auto snap = server.metricsSnapshot();
    EXPECT_EQ(snap.completed, kProducers * kPerProducer);
    EXPECT_EQ(snap.submitted, kProducers * kPerProducer);
    EXPECT_EQ(snap.rejected, 0u);
}

TEST(InferenceServer, ProgressiveClassReportsEffectiveBits)
{
    // Decisive output weights so the Progressive margin actually
    // fires (untrained logits are near-tied; see bench_throughput).
    nn::Network net = nn::buildLeNet5(nn::PoolingMode::Max, 1);
    nn::programDecisiveLogits(net);
    core::ScNetworkConfig cfg;
    cfg.bitstream_len = 256;
    cfg.stream_segment_words = 1;
    core::ScNetwork sc(net, cfg);

    serve::ServerConfig scfg;
    scfg.limits = limits(2, 100us);
    // Opt Fast back into sentinel Progressive (the default Fast policy
    // is now the binary backend): the server derives the aggressive
    // half-margin / quarter-floor knobs this test exercises.
    scfg.qos[static_cast<size_t>(AccuracyClass::Fast)] =
        serve::QosPolicy{core::EngineMode::Progressive};
    serve::InferenceServer server(sc, scfg);

    const nn::Tensor img = nn::DigitDataset::render(3, 7);
    serve::RequestOptions opts;
    opts.accuracy = AccuracyClass::Fast;
    opts.seed = 99;
    serve::InferenceResult r = server.submit(img, opts).get();

    EXPECT_LE(r.effective_bits, cfg.bitstream_len);
    EXPECT_GT(r.effective_bits, 0u);
    // The served result must equal a direct predictWith at the same
    // policy and seed — bit-exact, batching must not change outcomes.
    // The server resolves the QoS derive sentinels at construction,
    // so the policy to mirror is the resolved one in config().
    const serve::QosPolicy &fast =
        server.config().qos[static_cast<size_t>(AccuracyClass::Fast)];
    core::ForwardInfo direct;
    const size_t pred =
        sc.predictWith(img, 99, fast.predictOptions(), nullptr, &direct);
    EXPECT_EQ(r.predicted, pred);
    EXPECT_EQ(r.effective_bits, direct.effective_bits);
    EXPECT_EQ(r.early_exit, direct.early_exit);
    EXPECT_TRUE(r.early_exit); // decisive logits at a loose margin
}

TEST(InferenceServer, FastClassRoutesToTheBinaryBackend)
{
    // The Fast accuracy class is served by EngineMode::Binary end to
    // end: predictions match direct BinaryNetwork calls (the backend
    // is deterministic, so the server's seed schedule is irrelevant),
    // results report the single-pass cost, and the metrics snapshot
    // records the batches under the binary mode.
    nn::Network net = nn::buildMiniLeNet(nn::PoolingMode::Max, 1);
    core::ScNetworkConfig cfg;
    cfg.bitstream_len = 256;
    core::ScNetwork sc(net, cfg);

    serve::ServerConfig scfg;
    scfg.limits = limits(4, 300us);
    serve::InferenceServer server(sc, scfg);

    std::vector<std::future<serve::InferenceResult>> futs;
    constexpr size_t kImages = 12;
    for (size_t i = 0; i < kImages; ++i) {
        serve::RequestOptions opts;
        opts.accuracy = AccuracyClass::Fast;
        opts.seed = 4200 + i;
        futs.push_back(
            server.submit(nn::DigitDataset::render(i % 10, i), opts));
    }
    for (size_t i = 0; i < kImages; ++i) {
        serve::InferenceResult r = futs[i].get();
        const nn::Tensor img = nn::DigitDataset::render(i % 10, i);
        std::vector<double> scores;
        EXPECT_EQ(r.predicted, sc.binaryNet().predict(img, &scores));
        EXPECT_EQ(r.effective_bits, 1u);
        EXPECT_FALSE(r.early_exit);
        EXPECT_EQ(r.served, AccuracyClass::Fast);
    }

    const auto snap = server.metricsSnapshot();
    EXPECT_EQ(snap.completed, kImages);
    const uint64_t binary_batches = snap.batches_by_mode[static_cast<
        size_t>(core::EngineMode::Binary)];
    EXPECT_GT(binary_batches, 0u);
    // Every executed batch of this run was a Fast batch.
    EXPECT_EQ(binary_batches,
              snap.batch_kernel_batches + snap.loop_batches);
    // Binary batches never take the SC weight-stationary batch driver.
    EXPECT_EQ(snap.batch_kernel_batches, 0u);
}

TEST(InferenceServer, TightDeadlineDegradesToFasterClass)
{
    ServingFixture fx;
    serve::ServerConfig scfg;
    scfg.limits = limits(8, 50ms);
    // Observe pure deadline degradation: with shedding on, a 1us
    // deadline would be dropped as doomed before it could degrade.
    scfg.limits.shed_doomed = false;
    serve::InferenceServer server(*fx.sc, scfg);

    // Warm the service estimate so urgency has something to bite on.
    serve::RequestOptions warm;
    warm.accuracy = AccuracyClass::Balanced;
    server.submit(nn::DigitDataset::render(1, 2), warm).get();

    serve::RequestOptions opts;
    opts.accuracy = AccuracyClass::Balanced;
    opts.deadline = 1us; // cannot possibly be met at Balanced
    serve::InferenceResult r =
        server.submit(nn::DigitDataset::render(2, 3), opts).get();
    EXPECT_EQ(r.served, AccuracyClass::Fast);
    EXPECT_TRUE(r.degraded);
    EXPECT_EQ(r.requested, AccuracyClass::Balanced);
}

TEST(InferenceServer, DrainAnswersPartialBatchesAndKeepsServing)
{
    ServingFixture fx;
    serve::ServerConfig scfg;
    scfg.limits = limits(8, 10min); // only drain can close these
    serve::InferenceServer server(*fx.sc, scfg);

    std::vector<std::future<serve::InferenceResult>> futs;
    for (size_t i = 0; i < 3; ++i)
        futs.push_back(
            server.submit(nn::DigitDataset::render(i, 4 + i)));
    server.drain();
    for (auto &f : futs)
        EXPECT_NO_THROW(f.get());
    EXPECT_EQ(server.outstanding(), 0u);

    // Intake stays open after a drain.
    auto again = server.submit(nn::DigitDataset::render(9, 9));
    server.drain();
    EXPECT_NO_THROW(again.get());
}

TEST(InferenceServer, ShutdownServesBacklogThenRejects)
{
    ServingFixture fx;
    serve::ServerConfig scfg;
    scfg.limits = limits(8, 10min);
    serve::InferenceServer server(*fx.sc, scfg);

    auto accepted = server.submit(nn::DigitDataset::render(5, 6));
    server.shutdown();
    EXPECT_NO_THROW(accepted.get()); // backlog still served

    // The post-shutdown submit fails immediately with the typed
    // error (still a std::runtime_error for legacy catch sites).
    auto rejected = server.submit(nn::DigitDataset::render(6, 7));
    try {
        rejected.get();
        FAIL() << "post-shutdown submit should fail";
    } catch (const serve::ServeError &e) {
        EXPECT_EQ(e.code(), serve::ServeErrorCode::ShutDown);
    }
    const auto snap = server.metricsSnapshot();
    EXPECT_EQ(snap.rejected, 1u);
    EXPECT_EQ(snap.rejected_shutdown, 1u);
}

TEST(InferenceServer, MultipleBatchWorkersSharingOneComputePool)
{
    // Two batch workers fanning concurrent batches over one shared
    // pool: the per-call completion latch in parallelForChunks must
    // keep each worker's wait independent (a pool-global in-flight
    // wait can be starved by the other worker's submissions).
    ServingFixture fx;
    ThreadPool pool(2);
    serve::ServerConfig scfg;
    scfg.limits = limits(2, 200us);
    scfg.batch_workers = 2;
    scfg.compute_pool = &pool;
    serve::InferenceServer server(*fx.sc, scfg);

    std::vector<std::future<serve::InferenceResult>> futs;
    for (size_t i = 0; i < 10; ++i) {
        serve::RequestOptions opts;
        opts.accuracy = AccuracyClass::High;
        opts.seed = 7000 + i;
        futs.push_back(server.submit(
            nn::DigitDataset::render(i % 10, 7000 + i), opts));
    }
    for (size_t i = 0; i < futs.size(); ++i) {
        serve::InferenceResult r = futs[i].get();
        EXPECT_EQ(r.predicted,
                  fx.sc->predict(
                      nn::DigitDataset::render(i % 10, 7000 + i),
                      7000 + i));
    }
}

TEST(InferenceServer, DedicatedComputePoolIsDrainedNotDestroyed)
{
    ServingFixture fx;
    ThreadPool pool(2);
    {
        serve::ServerConfig scfg;
        scfg.limits = limits(2, 100us);
        scfg.compute_pool = &pool;
        serve::InferenceServer server(*fx.sc, scfg);
        server.submit(nn::DigitDataset::render(1, 11)).get();
    } // ~InferenceServer -> shutdown -> pool.drain()

    // The pool survives and still works.
    std::atomic<int> hits{0};
    pool.submit([&hits] { hits.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(hits.load(), 1);
}

} // namespace
} // namespace scdcnn
