/**
 * @file
 * Tests for the SRAM model and the Section 5 weight storage schemes.
 */

#include <gtest/gtest.h>

#include "hw/sram.h"

namespace scdcnn {
namespace hw {
namespace {

TEST(SramMacro, AreaScalesWithCapacity)
{
    double small = sramMacro(1024, 8).area_um2;
    double large = sramMacro(4096, 8).area_um2;
    EXPECT_GT(large, 3.0 * small);
    EXPECT_LT(large, 4.0 * small); // sub-linear thanks to fixed overhead
}

TEST(SramMacro, AreaScalesWithWordWidth)
{
    // Section 5.2: cutting precision from 64 to 7 bits shrinks the
    // array by ~10x (the paper reports 10.3x from CACTI).
    double w64 = sramMacro(431000, 64).area_um2;
    double w7 = sramMacro(431000, 7).area_um2;
    EXPECT_GT(w64 / w7, 8.0);
    EXPECT_LT(w64 / w7, 11.0);
}

TEST(SramMacro, LeakageProportionalToBits)
{
    double l1 = sramMacro(1000, 8).leakage_w;
    double l2 = sramMacro(2000, 8).leakage_w;
    EXPECT_NEAR(l2 / l1, 2.0, 1e-9);
}

TEST(SramMacro, ReadEnergyPositiveAndScales)
{
    double e1 = sramMacro(1000, 8).read_energy_pj;
    double e2 = sramMacro(2000, 8).read_energy_pj;
    EXPECT_GT(e1, 0.0);
    EXPECT_NEAR(e2 / e1, 2.0, 0.01);
}

TEST(WeightStorage, LayerWisePrecisionSavesArea)
{
    // Section 5.3: 7-7-6 layer-wise precision vs a 64-bit baseline
    // gives ~12x array savings.
    double baseline = sramMacro(520, 64).area_um2 +
                      sramMacro(25050, 64).area_um2 +
                      sramMacro(400500, 64).area_um2;
    double layered = sramMacro(520, 7).area_um2 +
                     sramMacro(25050, 7).area_um2 +
                     sramMacro(400500, 6).area_um2;
    EXPECT_GT(baseline / layered, 9.0);
    EXPECT_LT(baseline / layered, 13.0);
}

TEST(FilterAwareSharing, SplitsIntoPerFilterMacros)
{
    SramCost shared = filterAwareSram(20, 26, 7);
    SramCost mono = monolithicSram(20 * 26, 7, 20);
    // Many small macros pay more array overhead...
    EXPECT_GT(shared.area_um2, mono.area_um2);
    // ...but save global routing (the Section 5.1 claim).
    EXPECT_LT(shared.wire_area_um2, mono.wire_area_um2);
}

TEST(FilterAwareSharing, WinsOnTotalForLargeLayers)
{
    // For the FC layer the central array's routing dominates.
    SramCost shared = filterAwareSram(500, 801, 7);
    SramCost mono = monolithicSram(500 * 801, 7, 500);
    EXPECT_LT(shared.totalAreaUm2(), mono.totalAreaUm2());
}

TEST(SramCost, AccumulatesAcrossLayers)
{
    SramCost total;
    total += sramMacro(100, 8);
    total += sramMacro(100, 8);
    SramCost one = sramMacro(200, 8);
    // Two macros carry more overhead than one double-size macro.
    EXPECT_GT(total.area_um2, one.area_um2);
    EXPECT_NEAR(total.leakage_w, one.leakage_w, 1e-12);
}

} // namespace
} // namespace hw
} // namespace scdcnn
