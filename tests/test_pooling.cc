/**
 * @file
 * Tests for the pooling function blocks (Section 4.2).
 */

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "blocks/pooling.h"
#include "sc/rng.h"
#include "sc/sng.h"

namespace scdcnn {
namespace blocks {
namespace {

std::vector<sc::Bitstream>
bipolarStreams(const std::vector<double> &values, size_t len, uint64_t seed)
{
    sc::SngBank bank(seed);
    std::vector<sc::Bitstream> out;
    for (double v : values)
        out.push_back(bank.bipolar(v, len));
    return out;
}

TEST(AveragePooling, FourInputMeanViaMux)
{
    auto ins = bipolarStreams({0.8, 0.4, -0.2, -0.6}, 1 << 15, 1);
    sc::Xoshiro256ss sel(2);
    EXPECT_NEAR(averagePooling(ins, sel).bipolar(), 0.1, 0.03);
}

TEST(AveragePooling, SingleInputPassesValueThrough)
{
    auto ins = bipolarStreams({0.5}, 1 << 14, 3);
    sc::Xoshiro256ss sel(4);
    EXPECT_NEAR(averagePooling(ins, sel).bipolar(), 0.5, 0.03);
}

TEST(HardwareMaxPooling, PicksDominantStream)
{
    // One clearly-largest input: output must track it closely.
    auto ins = bipolarStreams({0.9, -0.5, -0.7, -0.1}, 4096, 5);
    sc::Bitstream out = HardwareMaxPooling::compute(ins, 16);
    EXPECT_NEAR(out.bipolar(), 0.9, 0.1);
}

TEST(HardwareMaxPooling, UnderCountsSlightly)
{
    // Section 4.4: the block's output is in most cases slightly *less*
    // than the true maximum (segment mispredictions only hurt).
    double sc_sum = 0, true_sum = 0;
    for (int t = 0; t < 30; ++t) {
        sc::SplitMix64 vals(100 + t);
        std::vector<double> v = {vals.nextInRange(-1, 1),
                                 vals.nextInRange(-1, 1),
                                 vals.nextInRange(-1, 1),
                                 vals.nextInRange(-1, 1)};
        auto ins = bipolarStreams(v, 2048, 200 + t);
        sc_sum += HardwareMaxPooling::compute(ins, 16).bipolar();
        // Reference max over the *encoded* streams to isolate the
        // pooling error from SNG noise.
        double best = -1;
        for (const auto &s : ins)
            best = std::max(best, s.bipolar());
        true_sum += best;
    }
    EXPECT_LE(sc_sum, true_sum);
    EXPECT_NEAR(sc_sum / 30, true_sum / 30, 0.15);
}

/** Table 4 shape: deviation shrinks as streams lengthen. */
class MaxPoolingLength : public ::testing::TestWithParam<int>
{
  public:
    static double meanDeviation(size_t n_inputs, size_t len)
    {
        double dev = 0;
        const int trials = 25;
        for (int t = 0; t < trials; ++t) {
            sc::SplitMix64 vals(300 + t);
            std::vector<double> v;
            for (size_t i = 0; i < n_inputs; ++i)
                v.push_back(vals.nextInRange(-1, 1));
            auto ins = bipolarStreams(v, len, 400 + t);
            double got =
                HardwareMaxPooling::compute(ins, 16).bipolar();
            double best = -1;
            for (const auto &s : ins)
                best = std::max(best, s.bipolar());
            dev += std::abs(got - best);
        }
        return dev / trials;
    }
};

TEST_P(MaxPoolingLength, DeviationWithinTable4Band)
{
    const int len = GetParam();
    double dev = meanDeviation(4, len);
    // Table 4 reports 0.059..0.127 for 4 inputs over 128..512 bits.
    EXPECT_LT(dev, 0.25) << "L=" << len;
}

INSTANTIATE_TEST_SUITE_P(Lengths, MaxPoolingLength,
                         ::testing::Values(128, 256, 384, 512));

TEST(MaxPoolingLength, DeviationShrinksWithLength)
{
    EXPECT_LT(MaxPoolingLength::meanDeviation(4, 2048),
              MaxPoolingLength::meanDeviation(4, 128));
}

TEST(HardwareMaxPooling, WorksForNineAndSixteenInputs)
{
    // Table 4 also evaluates 3x3 and 4x4 windows.
    for (size_t n : {9u, 16u}) {
        double dev = MaxPoolingLength::meanDeviation(n, 512);
        EXPECT_LT(dev, 0.3) << "inputs=" << n;
    }
}

TEST(HardwareMaxPooling, FirstSegmentUsesRequestedChoice)
{
    // Input 1 is all-ones, input 0 all-zeros; choosing 0 first leaves
    // the first segment empty, and the selector must switch to input 1
    // for every later segment.
    std::vector<sc::Bitstream> ins = {sc::constantStream(false, 64),
                                      sc::constantStream(true, 64)};
    sc::Bitstream out = HardwareMaxPooling::compute(ins, 16, 0);
    EXPECT_EQ(out.countOnes(0, 16), 0u);
    EXPECT_EQ(out.countOnes(16, 64), 48u);
}

TEST(HardwareMaxPooling, SegmentNotDividingLengthHandled)
{
    auto ins = bipolarStreams({0.3, 0.7}, 100, 7); // 100 % 16 != 0
    sc::Bitstream out = HardwareMaxPooling::compute(ins, 16);
    EXPECT_EQ(out.length(), 100u);
}

TEST(HardwareMaxPooling, ArgmaxStreamFindsLargest)
{
    auto ins = bipolarStreams({-0.2, 0.9, 0.1}, 4096, 8);
    EXPECT_EQ(HardwareMaxPooling::argmaxStream(ins), 1u);
}

TEST(BinaryAveragePooling, TruncatesFraction)
{
    // Paper example: mean(2,3,4,5) = 3.5 stored as 3.
    std::vector<std::vector<uint16_t>> counts = {
        {2}, {3}, {4}, {5}};
    auto out = binaryAveragePooling(counts);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 3);
}

TEST(BinaryAveragePooling, ExactWhenDivisible)
{
    std::vector<std::vector<uint16_t>> counts = {
        {2, 8}, {2, 8}, {2, 0}, {2, 0}};
    auto out = binaryAveragePooling(counts);
    EXPECT_EQ(out[0], 2);
    EXPECT_EQ(out[1], 4);
}

TEST(BinaryMaxPooling, TracksLargestCountSequence)
{
    // Sequence 0 is uniformly larger; after the first segment the
    // selector must lock onto it.
    std::vector<std::vector<uint16_t>> counts(2);
    for (int i = 0; i < 64; ++i) {
        counts[0].push_back(10);
        counts[1].push_back(2);
    }
    auto out = BinaryMaxPooling::compute(counts, 16, /*first=*/1);
    // First segment forwarded the wrong row; the rest must be 10s.
    for (size_t i = 0; i < 16; ++i)
        EXPECT_EQ(out[i], 2);
    for (size_t i = 16; i < 64; ++i)
        EXPECT_EQ(out[i], 10);
}

TEST(BinaryMaxPooling, SelectsPerSegmentNotPerCycle)
{
    // Within a segment the selected row is forwarded even on cycles
    // where another row momentarily exceeds it.
    std::vector<std::vector<uint16_t>> counts(2);
    counts[0] = {5, 0, 5, 5, 5, 5, 5, 5};
    counts[1] = {1, 9, 1, 1, 1, 1, 1, 1};
    auto out = BinaryMaxPooling::compute(counts, 4, 0);
    // Row 0 wins segment 1 (sum 15 vs 12), so segment 2 is row 0
    // verbatim including any dips.
    EXPECT_EQ(out[4], 5);
    EXPECT_EQ(out[5], 5);
}

TEST(BinaryMaxPooling, ApproximatesTrueMaxOnStochasticCounts)
{
    // Counts derived from streams with distinct values: the pooled
    // sum should be close to the largest input's total.
    sc::SngBank bank(9);
    std::vector<std::vector<uint16_t>> counts;
    std::vector<double> sums;
    for (double v : {0.6, -0.2, 0.1, -0.5}) {
        sc::Bitstream s = bank.bipolar(v, 1024);
        std::vector<uint16_t> c(1024);
        for (size_t i = 0; i < 1024; ++i)
            c[i] = s.get(i);
        double total = 0;
        for (auto b : c)
            total += b;
        sums.push_back(total);
        counts.push_back(std::move(c));
    }
    auto pooled = BinaryMaxPooling::compute(counts, 16);
    double pooled_sum = 0;
    for (auto v : pooled)
        pooled_sum += v;
    double best = *std::max_element(sums.begin(), sums.end());
    EXPECT_NEAR(pooled_sum, best, best * 0.12);
    EXPECT_LE(pooled_sum, best + 1e-9);
}

/**
 * Twin-contract equivalence: the word-parallel max pooling kernels
 * must be bit-exact with their bit-serial/element-serial references
 * for both counter readings and segment lengths not dividing L.
 */
class MaxPoolFusedVsReference
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>>
{
};

TEST_P(MaxPoolFusedVsReference, StreamsBitExact)
{
    auto [len, seg] = GetParam();
    sc::SplitMix64 vals(800 + len * 7 + seg);
    for (int rep = 0; rep < 3; ++rep) {
        std::vector<double> v;
        for (int i = 0; i < 4; ++i)
            v.push_back(vals.nextInRange(-1, 1));
        auto ins =
            bipolarStreams(v, len, 900 + len + seg * 13 + rep);
        const auto views = sc::toViews(ins);
        for (bool accumulate : {false, true}) {
            sc::Bitstream fused;
            maxPoolStreamsFused(views, seg, rep % ins.size(),
                                accumulate, fused);
            EXPECT_EQ(fused,
                      maxPoolStreamsReference(views, seg,
                                              rep % ins.size(),
                                              accumulate))
                << "len=" << len << " seg=" << seg
                << " accumulate=" << accumulate;
        }
    }
}

TEST_P(MaxPoolFusedVsReference, BinaryCountsBitExact)
{
    auto [len, seg] = GetParam();
    sc::SplitMix64 vals(1000 + len * 7 + seg);
    std::vector<std::vector<uint16_t>> counts(4);
    for (auto &c : counts) {
        c.resize(len);
        for (auto &x : c)
            x = static_cast<uint16_t>(vals.nextBelow(152));
    }
    for (bool accumulate : {false, true}) {
        std::vector<uint16_t> fused;
        binaryMaxPoolFused(counts, seg, 1, accumulate, fused);
        EXPECT_EQ(fused,
                  binaryMaxPoolReference(counts, seg, 1, accumulate))
            << "len=" << len << " seg=" << seg
            << " accumulate=" << accumulate;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MaxPoolFusedVsReference,
    ::testing::Combine(
        // Lengths across word boundaries.
        ::testing::Values(1, 63, 64, 65, 100, 257, 1024),
        // Segment lengths dividing and not dividing L, including
        // one spanning multiple words and one longer than L.
        ::testing::Values(1, 3, 16, 17, 100, 2048)));

TEST(MaxPoolFused, HardwareMaxPoolingRunsTheFusedKernel)
{
    // The block API must agree with the oracle too (it delegates to
    // the fused kernel).
    auto ins = bipolarStreams({0.4, -0.1, 0.7}, 300, 42);
    sc::Bitstream block = HardwareMaxPooling::compute(ins, 16, 2, true);
    EXPECT_EQ(block, maxPoolStreamsReference(sc::toViews(ins), 16, 2,
                                             true));
}

/** Word-range partitions (in words) used by the range-kernel tests:
 *  one that divides a 5-word stream, one that does not, whole-stream. */
const size_t kRangePartitions[] = {1, 2, 3, 100};

TEST(MaxPoolRange, CarriedStateMatchesWholeStreamKernel)
{
    // Streaming the Figure 8 selector range by range with a carried
    // MaxPoolCarryState must be bit-exact with the whole-stream fused
    // kernel — including pooling segments straddling range boundaries
    // (segment_len 24 never aligns with 64-cycle words).
    const size_t len = 300;
    const size_t n_words = (len + 63) / 64;
    auto ins = bipolarStreams({0.3, 0.25, -0.2, 0.35}, len, 91);
    const auto views = sc::toViews(ins);
    for (size_t segment_len : {size_t{16}, size_t{24}, size_t{7}}) {
        for (bool accumulate : {false, true}) {
            sc::Bitstream whole;
            maxPoolStreamsFused(views, segment_len, 0, accumulate, whole);
            for (size_t seg_words : kRangePartitions) {
                std::vector<uint64_t> stitched(n_words, 0);
                MaxPoolCarryState state;
                state.reset(ins.size(), 0);
                for (size_t w0 = 0; w0 < n_words; w0 += seg_words) {
                    const size_t w1 = std::min(w0 + seg_words, n_words);
                    const size_t n_cycles =
                        std::min(w1 * 64, len) - w0 * 64;
                    const uint64_t *ptrs[4];
                    for (size_t k = 0; k < ins.size(); ++k)
                        ptrs[k] = ins[k].words().data() + w0;
                    maxPoolStreamsRange(ptrs, ins.size(), w0 * 64,
                                        n_cycles, segment_len, accumulate,
                                        state, stitched.data() + w0);
                }
                EXPECT_EQ(stitched, whole.words())
                    << "segment_len=" << segment_len
                    << " accumulate=" << accumulate
                    << " seg_words=" << seg_words;
            }
        }
    }
}

TEST(BinaryMaxPoolRange, CarriedStateMatchesWholeSequenceKernel)
{
    const size_t len = 300;
    const size_t n_words = (len + 63) / 64;
    sc::SplitMix64 vals(17);
    std::vector<std::vector<uint16_t>> counts(4,
                                              std::vector<uint16_t>(len));
    for (auto &seq : counts)
        for (auto &c : seq)
            c = static_cast<uint16_t>(vals.nextBelow(27));
    for (size_t segment_len : {size_t{16}, size_t{24}, size_t{7}}) {
        for (bool accumulate : {false, true}) {
            std::vector<uint16_t> whole;
            binaryMaxPoolFused(counts, segment_len, 0, accumulate, whole);
            for (size_t seg_words : kRangePartitions) {
                std::vector<uint16_t> stitched(len, 0xFFFF);
                MaxPoolCarryState state;
                state.reset(counts.size(), 0);
                for (size_t w0 = 0; w0 < n_words; w0 += seg_words) {
                    const size_t w1 = std::min(w0 + seg_words, n_words);
                    const size_t n_cycles =
                        std::min(w1 * 64, len) - w0 * 64;
                    const uint16_t *ptrs[4];
                    for (size_t k = 0; k < counts.size(); ++k)
                        ptrs[k] = counts[k].data() + w0 * 64;
                    binaryMaxPoolRange(ptrs, counts.size(), w0 * 64,
                                       n_cycles, segment_len, accumulate,
                                       state, stitched.data() + w0 * 64);
                }
                EXPECT_EQ(stitched, whole)
                    << "segment_len=" << segment_len
                    << " accumulate=" << accumulate
                    << " seg_words=" << seg_words;
            }
        }
    }
}

TEST(AveragePoolingRange, CarriedGeneratorMatchesMuxAdd)
{
    const size_t len = 300;
    const size_t n_words = (len + 63) / 64;
    auto ins = bipolarStreams({0.5, -0.5, 0.1, 0.0}, len, 33);
    sc::Xoshiro256ss whole_rng(1234);
    const sc::Bitstream whole = averagePooling(ins, whole_rng);
    for (size_t seg_words : kRangePartitions) {
        std::vector<uint64_t> stitched(n_words, ~uint64_t{0});
        sc::Xoshiro256ss rng(1234);
        for (size_t w0 = 0; w0 < n_words; w0 += seg_words) {
            const size_t w1 = std::min(w0 + seg_words, n_words);
            const size_t n_cycles = std::min(w1 * 64, len) - w0 * 64;
            const uint64_t *ptrs[4];
            for (size_t k = 0; k < ins.size(); ++k)
                ptrs[k] = ins[k].words().data() + w0;
            averagePoolingRange(ptrs, ins.size(), n_cycles, rng,
                                stitched.data() + w0);
        }
        EXPECT_EQ(stitched, whole.words()) << "seg_words " << seg_words;
        // The generator must land in the same state as muxAdd's.
        sc::Xoshiro256ss check(1234);
        EXPECT_EQ(averagePooling(ins, check), whole);
        EXPECT_EQ(rng.next(), check.next());
    }
}

TEST(SignedAveragePoolingRange, PointerVariantMatchesVectorVariant)
{
    const size_t len = 130;
    sc::SplitMix64 vals(5);
    std::vector<std::vector<uint16_t>> counts(4,
                                              std::vector<uint16_t>(len));
    for (auto &seq : counts)
        for (auto &c : seq)
            c = static_cast<uint16_t>(vals.nextBelow(17));
    const std::vector<int> whole = binaryAveragePoolingSigned(counts, 16);
    std::vector<int> ranged(len);
    const uint16_t *ptrs[4];
    for (size_t k = 0; k < counts.size(); ++k)
        ptrs[k] = counts[k].data() + 64;
    binaryAveragePoolingSignedRange(ptrs, 4, 16, len - 64,
                                    ranged.data() + 64);
    for (size_t k = 0; k < counts.size(); ++k)
        ptrs[k] = counts[k].data();
    binaryAveragePoolingSignedRange(ptrs, 4, 16, 64, ranged.data());
    EXPECT_EQ(ranged, whole);
}

} // namespace
} // namespace blocks
} // namespace scdcnn
