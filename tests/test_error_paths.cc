/**
 * @file
 * Error-path and contract tests: the library promises to panic (abort)
 * on internal-invariant violations and to reject malformed inputs
 * loudly rather than corrupt results silently.
 */

#include <gtest/gtest.h>

#include "blocks/feature_block.h"
#include "blocks/inner_product.h"
#include "blocks/pooling.h"
#include "sc/bitstream.h"
#include "sc/counter.h"
#include "sc/ops.h"
#include "sc/rng.h"
#include "sc/sng.h"

namespace scdcnn {
namespace {

using sc::Bitstream;

TEST(ErrorPaths, BitstreamIndexOutOfRangeAborts)
{
    Bitstream s(8);
    EXPECT_DEATH(s.get(8), "out of range");
    EXPECT_DEATH(s.set(100, true), "out of range");
}

TEST(ErrorPaths, BitstreamLengthMismatchAborts)
{
    Bitstream a(8);
    Bitstream b(16);
    EXPECT_DEATH(a & b, "length mismatch");
    EXPECT_DEATH(a.xnor(b), "length mismatch");
}

TEST(ErrorPaths, BadRangeAborts)
{
    Bitstream s(8);
    EXPECT_DEATH(s.countOnes(5, 3), "bad range");
    EXPECT_DEATH(s.countOnes(0, 9), "bad range");
}

TEST(ErrorPaths, SliceBeyondEndAborts)
{
    Bitstream s(8);
    EXPECT_DEATH(s.slice(4, 5), "out of range");
}

TEST(ErrorPaths, FromStringRejectsBadCharacters)
{
    EXPECT_DEATH(Bitstream::fromString("01x1"), "bad character");
}

TEST(ErrorPaths, EmptyOperandsAbort)
{
    EXPECT_DEATH(sc::orAdd({}), "no inputs");
    sc::Xoshiro256ss rng(1);
    EXPECT_DEATH(sc::muxAdd({}, rng), "no inputs");
    EXPECT_DEATH(sc::ParallelCounter::counts(
                     std::vector<const Bitstream *>{}),
                 "zero streams");
}

TEST(ErrorPaths, MuxSelectOutOfRangeAborts)
{
    Bitstream a = Bitstream::fromString("10");
    std::vector<uint32_t> sel = {0, 5};
    EXPECT_DEATH(sc::muxAddWithSelects({a}, sel), "out of range");
}

TEST(ErrorPaths, MismatchedInnerProductOperandsAbort)
{
    sc::SngBank bank(1);
    auto xs = blocks::encodeBipolar({0.1, 0.2}, 64, bank);
    auto ws = blocks::encodeBipolar({0.1}, 64, bank);
    EXPECT_DEATH(blocks::productStreams(xs, ws), "operand");
}

TEST(ErrorPaths, PoolingContractViolationsAbort)
{
    sc::Xoshiro256ss rng(2);
    EXPECT_DEATH(blocks::averagePooling({}, rng), "no inputs");
    std::vector<Bitstream> one = {Bitstream(32)};
    EXPECT_DEATH(blocks::HardwareMaxPooling::compute(one, 0),
                 "segment length");
    EXPECT_DEATH(blocks::HardwareMaxPooling::compute(one, 16, 5),
                 "out of range");
}

TEST(ErrorPaths, PreScaleBelowOneRejected)
{
    sc::SngBank bank(3);
    EXPECT_DEATH(blocks::OrInnerProduct::estimateUnipolar(
                     {0.5}, {0.5}, 0.5, 64, bank),
                 "pre-scale");
}

TEST(ErrorPaths, LfsrWidthOutOfRangeIsFatal)
{
    // fatal() exits with status 1 (user error, not a panic/abort).
    EXPECT_EXIT(sc::Lfsr(2), ::testing::ExitedWithCode(1),
                "unsupported");
    EXPECT_EXIT(sc::Lfsr(33), ::testing::ExitedWithCode(1),
                "unsupported");
}

TEST(ErrorPaths, FeatureBlockRejectsDegenerateConfigs)
{
    blocks::FebConfig cfg;
    cfg.n_inputs = 1;
    EXPECT_DEATH(blocks::FeatureBlock feb(cfg), "receptive field");
}

} // namespace
} // namespace scdcnn
