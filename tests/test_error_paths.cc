/**
 * @file
 * Error-path and contract tests: the library promises to panic (abort)
 * on internal-invariant violations and to reject malformed inputs
 * loudly rather than corrupt results silently.
 */

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "blocks/feature_block.h"
#include "blocks/inner_product.h"
#include "blocks/pooling.h"
#include "core/sc_network.h"
#include "nn/layers.h"
#include "nn/network.h"
#include "nn/topology.h"
#include "sc/bitstream.h"
#include "sc/counter.h"
#include "sc/ops.h"
#include "sc/rng.h"
#include "sc/sng.h"

namespace scdcnn {
namespace {

using sc::Bitstream;

TEST(ErrorPaths, BitstreamIndexOutOfRangeAborts)
{
    Bitstream s(8);
    EXPECT_DEATH(s.get(8), "out of range");
    EXPECT_DEATH(s.set(100, true), "out of range");
}

TEST(ErrorPaths, BitstreamLengthMismatchAborts)
{
    Bitstream a(8);
    Bitstream b(16);
    EXPECT_DEATH(a & b, "length mismatch");
    EXPECT_DEATH(a.xnor(b), "length mismatch");
}

TEST(ErrorPaths, BadRangeAborts)
{
    Bitstream s(8);
    EXPECT_DEATH(s.countOnes(5, 3), "bad range");
    EXPECT_DEATH(s.countOnes(0, 9), "bad range");
}

TEST(ErrorPaths, SliceBeyondEndAborts)
{
    Bitstream s(8);
    EXPECT_DEATH(s.slice(4, 5), "out of range");
}

TEST(ErrorPaths, FromStringRejectsBadCharacters)
{
    EXPECT_DEATH(Bitstream::fromString("01x1"), "bad character");
}

TEST(ErrorPaths, EmptyOperandsAbort)
{
    EXPECT_DEATH(sc::orAdd({}), "no inputs");
    sc::Xoshiro256ss rng(1);
    EXPECT_DEATH(sc::muxAdd({}, rng), "no inputs");
    EXPECT_DEATH(sc::ParallelCounter::counts(
                     std::vector<const Bitstream *>{}),
                 "zero streams");
}

TEST(ErrorPaths, MuxSelectOutOfRangeAborts)
{
    Bitstream a = Bitstream::fromString("10");
    std::vector<uint32_t> sel = {0, 5};
    EXPECT_DEATH(sc::muxAddWithSelects({a}, sel), "out of range");
}

TEST(ErrorPaths, MismatchedInnerProductOperandsAbort)
{
    sc::SngBank bank(1);
    auto xs = blocks::encodeBipolar({0.1, 0.2}, 64, bank);
    auto ws = blocks::encodeBipolar({0.1}, 64, bank);
    EXPECT_DEATH(blocks::productStreams(xs, ws), "operand");
}

TEST(ErrorPaths, PoolingContractViolationsAbort)
{
    sc::Xoshiro256ss rng(2);
    EXPECT_DEATH(blocks::averagePooling({}, rng), "no inputs");
    std::vector<Bitstream> one = {Bitstream(32)};
    EXPECT_DEATH(blocks::HardwareMaxPooling::compute(one, 0),
                 "segment length");
    EXPECT_DEATH(blocks::HardwareMaxPooling::compute(one, 16, 5),
                 "out of range");
}

TEST(ErrorPaths, PreScaleBelowOneRejected)
{
    sc::SngBank bank(3);
    EXPECT_DEATH(blocks::OrInnerProduct::estimateUnipolar(
                     {0.5}, {0.5}, 0.5, 64, bank),
                 "pre-scale");
}

TEST(ErrorPaths, LfsrWidthOutOfRangeIsFatal)
{
    // fatal() exits with status 1 (user error, not a panic/abort).
    EXPECT_EXIT(sc::Lfsr(2), ::testing::ExitedWithCode(1),
                "unsupported");
    EXPECT_EXIT(sc::Lfsr(33), ::testing::ExitedWithCode(1),
                "unsupported");
}

TEST(ErrorPaths, FeatureBlockRejectsDegenerateConfigs)
{
    blocks::FebConfig cfg;
    cfg.n_inputs = 1;
    EXPECT_DEATH(blocks::FeatureBlock feb(cfg), "receptive field");
}

// --------------------------------- weight serialization round trips

namespace {

/** A small custom (non-LeNet) topology: 1 conv block + 1 hidden fc. */
nn::Network
customNet(uint64_t seed = 5)
{
    nn::TopologySpec spec;
    spec.in_h = spec.in_w = 12;
    spec.convs = {{3, 3}};
    spec.fc_hidden = {11};
    spec.n_classes = 6;
    spec.seed = seed;
    return nn::buildTopology(spec);
}

std::string
tempWeightsPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "scdcnn_weights_" + tag +
           ".bin";
}

} // namespace

TEST(WeightSerialization, RoundTripsOnACustomTopology)
{
    const std::string path = tempWeightsPath("roundtrip");
    nn::Network a = customNet(5);
    ASSERT_TRUE(a.saveWeights(path));

    // A structurally-equal net with different weights must come back
    // holding exactly the saved parameters.
    nn::Network b = customNet(99);
    ASSERT_TRUE(b.loadWeights(path));
    for (size_t i = 0; i < a.layerCount(); ++i) {
        auto *wa = a.layer(i).weights();
        auto *wb = b.layer(i).weights();
        ASSERT_EQ(wa == nullptr, wb == nullptr);
        if (wa != nullptr) {
            EXPECT_EQ(*wa, *wb) << "layer " << i;
        }
        auto *ba = a.layer(i).biases();
        auto *bb = b.layer(i).biases();
        if (ba != nullptr) {
            EXPECT_EQ(*ba, *bb) << "layer " << i;
        }
    }
    std::remove(path.c_str());
}

TEST(WeightSerialization, MissingFileLoadsFalse)
{
    nn::Network net = customNet();
    const nn::LoadResult r = net.loadWeights(
        tempWeightsPath("does_not_exist_anywhere"));
    EXPECT_FALSE(r);
    EXPECT_EQ(r.code, nn::LoadResult::Code::OpenFailed);
}

TEST(WeightSerialization, CorruptMagicLoadsFalse)
{
    const std::string path = tempWeightsPath("badmagic");
    nn::Network net = customNet();
    ASSERT_TRUE(net.saveWeights(path));
    {
        std::FILE *f = std::fopen(path.c_str(), "rb+");
        ASSERT_NE(f, nullptr);
        const uint32_t junk = 0xDEADBEEF;
        ASSERT_EQ(std::fwrite(&junk, sizeof(junk), 1, f), 1u);
        std::fclose(f);
    }
    const nn::LoadResult r = net.loadWeights(path);
    EXPECT_FALSE(r);
    EXPECT_EQ(r.code, nn::LoadResult::Code::BadMagic);
    EXPECT_EQ(r.actual, 0xDEADBEEFu);
    EXPECT_NE(r.message().find("bad_magic"), std::string::npos);
    std::remove(path.c_str());
}

TEST(WeightSerialization, CorruptPayloadReportsCrcMismatch)
{
    // Flip one bit in the middle of the file (a tensor payload byte):
    // the per-tensor CRC must catch it and name the tensor.
    const std::string path = tempWeightsPath("bitflip");
    nn::Network net = customNet();
    ASSERT_TRUE(net.saveWeights(path));
    {
        std::FILE *f = std::fopen(path.c_str(), "rb+");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 0, SEEK_END);
        const long size = std::ftell(f);
        std::fseek(f, size / 2, SEEK_SET);
        int c = std::fgetc(f);
        ASSERT_NE(c, EOF);
        std::fseek(f, size / 2, SEEK_SET);
        std::fputc(c ^ 0x01, f);
        std::fclose(f);
    }
    nn::Network fresh = customNet(7);
    const nn::LoadResult r = fresh.loadWeights(path);
    EXPECT_FALSE(r);
    EXPECT_EQ(r.code, nn::LoadResult::Code::CrcMismatch);
    EXPECT_NE(r.tensor_index, nn::LoadResult::kNoTensor);
    EXPECT_NE(r.expected, r.actual);
    std::remove(path.c_str());
}

TEST(WeightSerialization, LegacyHeaderlessFilesStillLoad)
{
    // Pre-hardening files: magic 0x5CDC0001, then bare
    // count-prefixed float vectors with no checksums. Write one by
    // hand and load it back.
    const std::string path = tempWeightsPath("legacy");
    nn::Network a = customNet(5);
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        const uint32_t magic = 0x5CDC0001;
        ASSERT_EQ(std::fwrite(&magic, sizeof(magic), 1, f), 1u);
        for (size_t i = 0; i < a.layerCount(); ++i) {
            for (auto *v : {a.layer(i).weights(), a.layer(i).biases()}) {
                if (v == nullptr)
                    continue;
                const auto n = static_cast<uint64_t>(v->size());
                ASSERT_EQ(std::fwrite(&n, sizeof(n), 1, f), 1u);
                ASSERT_EQ(std::fwrite(v->data(), sizeof(float),
                                      v->size(), f),
                          v->size());
            }
        }
        std::fclose(f);
    }
    nn::Network b = customNet(99);
    ASSERT_TRUE(b.loadWeights(path));
    for (size_t i = 0; i < a.layerCount(); ++i) {
        auto *wa = a.layer(i).weights();
        auto *wb = b.layer(i).weights();
        if (wa != nullptr) {
            EXPECT_EQ(*wa, *wb) << "layer " << i;
        }
    }
    std::remove(path.c_str());
}

TEST(WeightSerialization, TruncatedFileLoadsFalse)
{
    const std::string path = tempWeightsPath("truncated");
    nn::Network net = customNet();
    ASSERT_TRUE(net.saveWeights(path));

    // Re-write only the first half of the file.
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    ASSERT_GT(size, 16);
    std::fseek(f, 0, SEEK_SET);
    std::vector<char> head(static_cast<size_t>(size) / 2);
    ASSERT_EQ(std::fread(head.data(), 1, head.size(), f), head.size());
    std::fclose(f);
    f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(head.data(), 1, head.size(), f), head.size());
    std::fclose(f);

    EXPECT_FALSE(net.loadWeights(path));
    std::remove(path.c_str());
}

TEST(WeightSerialization, ShapeMismatchLoadsFalse)
{
    // Weights saved from one topology must be refused by a different
    // one (the per-vector length headers disagree) — cleanly, with a
    // false return instead of silent corruption or a crash.
    const std::string path = tempWeightsPath("mismatch");
    nn::Network a = customNet();
    ASSERT_TRUE(a.saveWeights(path));

    nn::TopologySpec other;
    other.in_h = other.in_w = 12;
    other.convs = {{4, 3}}; // different channel count
    other.fc_hidden = {11};
    other.n_classes = 6;
    nn::Network b = nn::buildTopology(other);
    const nn::LoadResult r = b.loadWeights(path);
    EXPECT_FALSE(r);
    EXPECT_EQ(r.code, nn::LoadResult::Code::ShapeMismatch);
    EXPECT_NE(r.expected, r.actual);
    std::remove(path.c_str());
}

// ------------------------------------ topology plan rejection paths

TEST(TopologyValidation, EmptyNetworkRejected)
{
    nn::Network net;
    EXPECT_DEATH(nn::outlineNetworkStages(net), "empty network");
}

TEST(TopologyValidation, ConvWithoutPoolRejected)
{
    nn::Network net;
    net.add(std::make_unique<nn::ConvLayer>(1, 2, 3));
    net.add(std::make_unique<nn::TanhLayer>(0.35));
    net.add(std::make_unique<nn::FullyConnected>(50, 4));
    EXPECT_DEATH(nn::outlineNetworkStages(net),
                 "layer 0 .conv.*pool layer right after");
}

TEST(TopologyValidation, ConvBlockWithoutTanhRejected)
{
    nn::Network net;
    net.add(std::make_unique<nn::ConvLayer>(1, 2, 3));
    net.add(std::make_unique<nn::PoolLayer>(nn::PoolLayer::Mode::Max));
    net.add(std::make_unique<nn::FullyConnected>(50, 4));
    EXPECT_DEATH(nn::outlineNetworkStages(net),
                 "layer 0 .conv.*end with a tanh");
}

TEST(TopologyValidation, StrayPoolRejected)
{
    nn::Network net;
    net.add(std::make_unique<nn::PoolLayer>(nn::PoolLayer::Mode::Max));
    net.add(std::make_unique<nn::FullyConnected>(196, 4));
    EXPECT_DEATH(nn::outlineNetworkStages(net),
                 "layer 0 .pool.*inside a conv block");
}

TEST(TopologyValidation, StrayActivationRejected)
{
    nn::Network net;
    net.add(std::make_unique<nn::TanhLayer>(0.35));
    net.add(std::make_unique<nn::FullyConnected>(784, 4));
    EXPECT_DEATH(nn::outlineNetworkStages(net),
                 "layer 0 .tanh.*must close a conv block");
}

TEST(TopologyValidation, ConvAfterFcRejected)
{
    nn::Network net;
    net.add(std::make_unique<nn::FullyConnected>(784, 144));
    net.add(std::make_unique<nn::TanhLayer>(0.35));
    net.add(std::make_unique<nn::ConvLayer>(1, 2, 3));
    net.add(std::make_unique<nn::PoolLayer>(nn::PoolLayer::Mode::Max));
    net.add(std::make_unique<nn::TanhLayer>(0.35));
    net.add(std::make_unique<nn::FullyConnected>(50, 4));
    EXPECT_DEATH(nn::outlineNetworkStages(net),
                 "layer 2 .conv.*cannot follow a fully-connected");
}

TEST(TopologyValidation, HiddenFcWithoutTanhRejected)
{
    nn::Network net;
    net.add(std::make_unique<nn::FullyConnected>(784, 32));
    net.add(std::make_unique<nn::FullyConnected>(32, 4));
    EXPECT_DEATH(nn::outlineNetworkStages(net),
                 "layer 0 .fc.*followed by a tanh");
}

TEST(TopologyValidation, MissingOutputFcRejected)
{
    nn::Network net;
    net.add(std::make_unique<nn::ConvLayer>(1, 2, 3));
    net.add(std::make_unique<nn::PoolLayer>(nn::PoolLayer::Mode::Max));
    net.add(std::make_unique<nn::TanhLayer>(0.35));
    EXPECT_DEATH(nn::outlineNetworkStages(net),
                 "must end in a fully-connected output layer");
}

TEST(TopologyValidation, ChannelMismatchRejected)
{
    nn::Network net;
    net.add(std::make_unique<nn::ConvLayer>(3, 2, 3)); // input is 1ch
    net.add(std::make_unique<nn::PoolLayer>(nn::PoolLayer::Mode::Max));
    net.add(std::make_unique<nn::TanhLayer>(0.35));
    net.add(std::make_unique<nn::FullyConnected>(50, 4));
    EXPECT_DEATH(nn::deriveNetworkPlan(net, 1, 12, 12),
                 "layer 0 .conv.*expects 3 input channels");
}

TEST(TopologyValidation, KernelLargerThanInputRejected)
{
    nn::Network net;
    net.add(std::make_unique<nn::ConvLayer>(1, 2, 5));
    net.add(std::make_unique<nn::PoolLayer>(nn::PoolLayer::Mode::Max));
    net.add(std::make_unique<nn::TanhLayer>(0.35));
    net.add(std::make_unique<nn::FullyConnected>(8, 4));
    EXPECT_DEATH(nn::deriveNetworkPlan(net, 1, 4, 4),
                 "layer 0 .conv.*does not fit");
}

TEST(TopologyValidation, UnpoolableConvOutputRejected)
{
    nn::Network net;
    net.add(std::make_unique<nn::ConvLayer>(1, 2, 4)); // even kernel
    net.add(std::make_unique<nn::PoolLayer>(nn::PoolLayer::Mode::Max));
    net.add(std::make_unique<nn::TanhLayer>(0.35));
    net.add(std::make_unique<nn::FullyConnected>(32, 4));
    EXPECT_DEATH(nn::deriveNetworkPlan(net, 1, 12, 12),
                 "layer 0 .conv.*not 2x2 poolable");
}

TEST(TopologyValidation, FcFanInMismatchRejected)
{
    nn::Network net;
    net.add(std::make_unique<nn::FullyConnected>(100, 4)); // 144 flat
    EXPECT_DEATH(nn::deriveNetworkPlan(net, 1, 12, 12),
                 "layer 0 .fc.*expects 100 inputs.*flattens to 144");
}

TEST(TopologyValidation, EngineRejectsWrongImageGeometry)
{
    // Construction validates the network against the configured input
    // geometry; predict validates each image against the plan.
    nn::TopologySpec spec;
    spec.in_h = spec.in_w = 12;
    spec.fc_hidden = {8};
    spec.n_classes = 4;
    nn::Network net = nn::buildTopology(spec);
    core::ScNetworkConfig cfg;
    cfg.bitstream_len = 64;
    cfg.input_h = cfg.input_w = 12;
    core::ScNetwork sc(net, cfg);
    const nn::Tensor wrong(1, 28, 28);
    EXPECT_DEATH(sc.predict(wrong, 1), "expected a 1x12x12 image");
}

} // namespace
} // namespace scdcnn
