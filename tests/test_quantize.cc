/**
 * @file
 * Tests for the Section 5.2 weight storage method.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "nn/dataset.h"
#include "nn/network.h"
#include "nn/quantize.h"
#include "nn/trainer.h"
#include "sc/rng.h"

namespace scdcnn {
namespace nn {
namespace {

TEST(WeightCode, MatchesPaperFormulaByHand)
{
    // x = 0.3, w = 3: Int((1.3/2) * 8) = Int(5.2) = 5.
    EXPECT_EQ(weightCode(0.3, 3), 5u);
    // x = -1 -> code 0; x -> 1 saturates at 2^w - 1.
    EXPECT_EQ(weightCode(-1.0, 3), 0u);
    EXPECT_EQ(weightCode(1.0, 3), 7u);
    EXPECT_EQ(weightCode(0.0, 8), 128u);
}

TEST(QuantizeWeight, ReconstructionFromCode)
{
    // x = 0.3 at 3 bits: y = 5/8, reconstructed 2*5/8-1 = 0.25.
    EXPECT_NEAR(quantizeWeight(0.3, 3), 0.25, 1e-12);
}

TEST(QuantizeWeight, ErrorBoundedByStep)
{
    sc::SplitMix64 rng(1);
    for (unsigned bits : {2u, 4u, 7u, 10u}) {
        const double step = 2.0 / std::pow(2.0, bits);
        for (int t = 0; t < 200; ++t) {
            double x = rng.nextInRange(-1.0, 1.0);
            EXPECT_LE(std::abs(quantizeWeight(x, bits) - x), step + 1e-12)
                << "bits=" << bits;
        }
    }
}

TEST(QuantizeWeight, MonotoneNonDecreasing)
{
    double prev = -2;
    for (double x = -1.0; x <= 1.0; x += 0.01) {
        double q = quantizeWeight(x, 5);
        EXPECT_GE(q, prev - 1e-12);
        prev = q;
    }
}

TEST(QuantizeWeight, HighPrecisionIsNearLossless)
{
    sc::SplitMix64 rng(2);
    for (int t = 0; t < 100; ++t) {
        double x = rng.nextInRange(-1.0, 1.0);
        EXPECT_NEAR(quantizeWeight(x, 20), x, 1e-5);
    }
}

TEST(QuantizeWeight, ErrorShrinksWithPrecision)
{
    sc::SplitMix64 rng(3);
    auto mean_err = [&rng](unsigned bits) {
        sc::SplitMix64 local(99);
        double e = 0;
        for (int t = 0; t < 500; ++t) {
            double x = local.nextInRange(-1.0, 1.0);
            e += std::abs(quantizeWeight(x, bits) - x);
        }
        return e / 500;
    };
    EXPECT_LT(mean_err(8), mean_err(4));
    EXPECT_LT(mean_err(4), mean_err(2));
}

TEST(QuantizeLayer, TouchesWeightsAndBiases)
{
    FullyConnected fc(4, 2);
    (*fc.weights()) = {0.3f, -0.6f, 0.111f, 0.999f, -0.2f, 0.0f,
                       0.5f, -0.5f};
    (*fc.biases()) = {0.3f, -0.123f};
    quantizeLayer(fc, 2);
    // 2 bits -> codes over {-1, -0.5, 0, 0.5}: every value on grid.
    for (float w : *fc.weights()) {
        double frac = (w + 1.0) / 0.5;
        EXPECT_NEAR(frac, std::round(frac), 1e-6);
    }
}

TEST(QuantizeLeNet5, SevenBitsBarelyMovesAccuracy)
{
    // Figure 13: at w >= 7 the network error is flat. Use the mini net
    // at full LeNet5 shape cost would be slow; the property holds for
    // any trained tanh CNN.
    Dataset train = DigitDataset::generate(600, 20);
    Dataset test = DigitDataset::generate(300, 21);
    Network net = buildLeNet5(PoolingMode::Max, 7);
    TrainConfig cfg;
    cfg.epochs = 2;
    cfg.batch_size = 32;
    Trainer(net, cfg).train(train);
    double base_err = Trainer::errorRate(net, test);

    Network q7 = net;
    quantizeNetwork(q7, {7, 7, 7});
    double q7_err = Trainer::errorRate(q7, test);
    EXPECT_NEAR(q7_err, base_err, 0.05);

    // 2-bit weights wreck it.
    Network q2 = net;
    quantizeNetwork(q2, {2, 2, 2});
    double q2_err = Trainer::errorRate(q2, test);
    EXPECT_GT(q2_err, base_err + 0.05);
}

TEST(QuantizeLeNet5SingleLayer, OnlyTargetsOneGroup)
{
    Network net = buildLeNet5(PoolingMode::Max, 8);
    Network original = net;
    quantizeNetworkGroup(net, 1, 2);
    // conv1 untouched, conv2 changed.
    EXPECT_EQ(*net.layer(0).weights(), *original.layer(0).weights());
    EXPECT_NE(*net.layer(3).weights(), *original.layer(3).weights());
    EXPECT_EQ(*net.layer(6).weights(), *original.layer(6).weights());
}

} // namespace
} // namespace nn
} // namespace scdcnn
