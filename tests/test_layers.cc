/**
 * @file
 * Tests for the float reference layers, including numerical gradient
 * checks for every parameterized layer.
 */

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "sc/rng.h"

namespace scdcnn {
namespace nn {
namespace {

Tensor
randomTensor(size_t c, size_t h, size_t w, uint64_t seed)
{
    sc::SplitMix64 rng(seed);
    Tensor t(c, h, w);
    for (size_t i = 0; i < t.size(); ++i)
        t[i] = static_cast<float>(rng.nextInRange(-1.0, 1.0));
    return t;
}

/** Scalar loss used by gradient checks: sum of squares / 2. */
double
halfSquares(const Tensor &t)
{
    double s = 0;
    for (size_t i = 0; i < t.size(); ++i)
        s += 0.5 * t[i] * t[i];
    return s;
}

Tensor
halfSquaresGrad(const Tensor &t)
{
    return t; // d/dx of x^2/2
}

/**
 * Check analytic input gradients of @p layer against central
 * differences on a random input.
 */
void
checkInputGradient(Layer &layer, Tensor in, double tol = 2e-2)
{
    Tensor out = layer.forward(in);
    Tensor grad_in = layer.backward(halfSquaresGrad(out));

    sc::SplitMix64 pick(99);
    const double eps = 1e-3;
    for (int trial = 0; trial < 12; ++trial) {
        size_t i = pick.nextBelow(in.size());
        Tensor plus = in;
        plus[i] += static_cast<float>(eps);
        Tensor minus = in;
        minus[i] -= static_cast<float>(eps);
        double numeric = (halfSquares(layer.forward(plus)) -
                          halfSquares(layer.forward(minus))) /
                         (2 * eps);
        EXPECT_NEAR(grad_in[i], numeric, tol) << "input index " << i;
    }
}

/** Check analytic weight gradients against central differences. */
void
checkWeightGradient(Layer &layer, const Tensor &in, double tol = 2e-2)
{
    layer.forward(in);
    auto *wg = layer.weightGrads();
    ASSERT_NE(wg, nullptr);
    std::fill(wg->begin(), wg->end(), 0.0f);
    layer.backward(halfSquaresGrad(layer.forward(in)));

    auto *w = layer.weights();
    sc::SplitMix64 pick(7);
    const double eps = 1e-3;
    for (int trial = 0; trial < 12; ++trial) {
        size_t i = pick.nextBelow(w->size());
        float saved = (*w)[i];
        (*w)[i] = saved + static_cast<float>(eps);
        double up = halfSquares(layer.forward(in));
        (*w)[i] = saved - static_cast<float>(eps);
        double down = halfSquares(layer.forward(in));
        (*w)[i] = saved;
        EXPECT_NEAR((*wg)[i], (up - down) / (2 * eps), tol)
            << "weight index " << i;
    }
}

TEST(ConvLayer, OutputShapeIsValidConvolution)
{
    ConvLayer conv(2, 3, 5);
    conv.initWeights(1);
    Tensor out = conv.forward(randomTensor(2, 12, 12, 5));
    EXPECT_EQ(out.channels(), 3u);
    EXPECT_EQ(out.height(), 8u);
    EXPECT_EQ(out.width(), 8u);
}

TEST(ConvLayer, IdentityKernelCopiesInput)
{
    ConvLayer conv(1, 1, 1);
    (*conv.weights())[0] = 1.0f;
    Tensor in = randomTensor(1, 4, 4, 6);
    Tensor out = conv.forward(in);
    for (size_t i = 0; i < in.size(); ++i)
        EXPECT_FLOAT_EQ(out[i], in[i]);
}

TEST(ConvLayer, KnownDotProduct)
{
    ConvLayer conv(1, 1, 2);
    (*conv.weights()) = {1.0f, 2.0f, 3.0f, 4.0f};
    (*conv.biases()) = {0.5f};
    Tensor in(1, 2, 2);
    in.data() = {1, 1, 1, 1};
    Tensor out = conv.forward(in);
    EXPECT_FLOAT_EQ(out[0], 1 + 2 + 3 + 4 + 0.5f);
}

TEST(ConvLayer, InputGradientMatchesNumeric)
{
    ConvLayer conv(2, 3, 3);
    conv.initWeights(11);
    checkInputGradient(conv, randomTensor(2, 6, 6, 12));
}

TEST(ConvLayer, WeightGradientMatchesNumeric)
{
    ConvLayer conv(2, 3, 3);
    conv.initWeights(13);
    checkWeightGradient(conv, randomTensor(2, 6, 6, 14));
}

TEST(ConvLayer, WeightAccessorsMatchStorage)
{
    ConvLayer conv(2, 4, 3);
    conv.initWeights(15);
    EXPECT_FLOAT_EQ(conv.weightAt(1, 1, 2, 2),
                    (*conv.weights())[((1 * 2 + 1) * 3 + 2) * 3 + 2]);
    EXPECT_FLOAT_EQ(conv.biasAt(3), (*conv.biases())[3]);
}

TEST(PoolLayer, AveragePoolsWindows)
{
    PoolLayer pool(PoolLayer::Mode::Avg);
    Tensor in(1, 2, 2);
    in.data() = {1, 2, 3, 6};
    Tensor out = pool.forward(in);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_FLOAT_EQ(out[0], 3.0f);
}

TEST(PoolLayer, MaxPicksWindowMaximum)
{
    PoolLayer pool(PoolLayer::Mode::Max);
    Tensor in(1, 2, 2);
    in.data() = {1, 7, 3, 6};
    EXPECT_FLOAT_EQ(pool.forward(in)[0], 7.0f);
}

TEST(PoolLayer, AvgBackwardSpreadsGradient)
{
    PoolLayer pool(PoolLayer::Mode::Avg);
    Tensor in = randomTensor(1, 2, 2, 21);
    pool.forward(in);
    Tensor g(1, 1, 1);
    g[0] = 4.0f;
    Tensor gi = pool.backward(g);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(gi[i], 1.0f);
}

TEST(PoolLayer, MaxBackwardRoutesToArgmax)
{
    PoolLayer pool(PoolLayer::Mode::Max);
    Tensor in(1, 2, 2);
    in.data() = {1, 7, 3, 6};
    pool.forward(in);
    Tensor g(1, 1, 1);
    g[0] = 2.0f;
    Tensor gi = pool.backward(g);
    EXPECT_FLOAT_EQ(gi[0], 0.0f);
    EXPECT_FLOAT_EQ(gi[1], 2.0f);
    EXPECT_FLOAT_EQ(gi[2], 0.0f);
    EXPECT_FLOAT_EQ(gi[3], 0.0f);
}

TEST(PoolLayer, InputGradientMatchesNumericAvg)
{
    PoolLayer pool(PoolLayer::Mode::Avg);
    checkInputGradient(pool, randomTensor(2, 4, 4, 22));
}

TEST(FullyConnected, KnownOutput)
{
    FullyConnected fc(2, 1);
    (*fc.weights()) = {2.0f, -1.0f};
    (*fc.biases()) = {0.25f};
    Tensor in(2);
    in.data() = {3.0f, 4.0f};
    EXPECT_FLOAT_EQ(fc.forward(in)[0], 6 - 4 + 0.25f);
}

TEST(FullyConnected, FlattensConvInput)
{
    FullyConnected fc(8, 3);
    fc.initWeights(31);
    Tensor in = randomTensor(2, 2, 2, 32);
    EXPECT_EQ(fc.forward(in).size(), 3u);
}

TEST(FullyConnected, InputGradientMatchesNumeric)
{
    FullyConnected fc(6, 4);
    fc.initWeights(33);
    checkInputGradient(fc, randomTensor(6, 1, 1, 34));
}

TEST(FullyConnected, WeightGradientMatchesNumeric)
{
    FullyConnected fc(6, 4);
    fc.initWeights(35);
    checkWeightGradient(fc, randomTensor(6, 1, 1, 36));
}

TEST(FullyConnected, WeightAccessorsMatchStorage)
{
    FullyConnected fc(3, 2);
    fc.initWeights(37);
    EXPECT_FLOAT_EQ(fc.weightAt(1, 2), (*fc.weights())[1 * 3 + 2]);
}

TEST(TanhLayer, ForwardAppliesTanh)
{
    TanhLayer t;
    Tensor in(3);
    in.data() = {-2.0f, 0.0f, 1.0f};
    Tensor out = t.forward(in);
    EXPECT_NEAR(out[0], std::tanh(-2.0), 1e-6);
    EXPECT_FLOAT_EQ(out[1], 0.0f);
    EXPECT_NEAR(out[2], std::tanh(1.0), 1e-6);
}

TEST(TanhLayer, InputGradientMatchesNumeric)
{
    TanhLayer t;
    checkInputGradient(t, randomTensor(3, 2, 2, 41), 1e-2);
}

TEST(Softmax, SumsToOneAndOrdersLogits)
{
    Tensor logits(3);
    logits.data() = {1.0f, 3.0f, 2.0f};
    auto p = softmax(logits);
    EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-9);
    EXPECT_GT(p[1], p[2]);
    EXPECT_GT(p[2], p[0]);
}

TEST(SoftmaxCrossEntropy, LossAndGradientConsistent)
{
    Tensor logits(4);
    logits.data() = {0.5f, -1.0f, 2.0f, 0.0f};
    Tensor dlogits;
    double loss = softmaxCrossEntropy(logits, 2, dlogits);
    EXPECT_GT(loss, 0.0);

    // Numerical check of d loss / d logit.
    const double eps = 1e-4;
    for (size_t i = 0; i < 4; ++i) {
        Tensor up = logits, dn = logits, tmp;
        up[i] += static_cast<float>(eps);
        dn[i] -= static_cast<float>(eps);
        double numeric = (softmaxCrossEntropy(up, 2, tmp) -
                          softmaxCrossEntropy(dn, 2, tmp)) /
                         (2 * eps);
        EXPECT_NEAR(dlogits[i], numeric, 1e-3);
    }
}

TEST(SoftmaxCrossEntropy, PerfectPredictionHasTinyLoss)
{
    Tensor logits(3);
    logits.data() = {20.0f, -10.0f, -10.0f};
    Tensor dlogits;
    EXPECT_LT(softmaxCrossEntropy(logits, 0, dlogits), 1e-6);
}

} // namespace
} // namespace nn
} // namespace scdcnn
