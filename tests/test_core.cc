/**
 * @file
 * Tests for the SC-DCNN core: configurations, the bit-level network,
 * the Section 6.3 optimizer, and the metrics assembly.
 */

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/optimizer.h"
#include "core/sc_network.h"
#include "nn/trainer.h"

namespace scdcnn {
namespace core {
namespace {

/** A trained mini network shared by the expensive tests. */
nn::Network &
trainedMini(nn::PoolingMode pooling)
{
    static std::map<int, nn::Network> cache;
    int key = pooling == nn::PoolingMode::Max ? 0 : 1;
    auto it = cache.find(key);
    if (it == cache.end()) {
        nn::Dataset train = nn::DigitDataset::generate(1500, 5);
        nn::Network net = nn::buildMiniLeNet(pooling, 1);
        nn::TrainConfig cfg;
        cfg.epochs = pooling == nn::PoolingMode::Max ? 3 : 5;
        nn::Trainer(net, cfg).train(train);
        it = cache.emplace(key, std::move(net)).first;
    }
    return it->second;
}

TEST(ScConfig, FebKindCombinesAdderAndPooling)
{
    ScNetworkConfig cfg;
    cfg.pooling = nn::PoolingMode::Max;
    cfg.layer_adders = {AdderKind::Mux, AdderKind::Apc, AdderKind::Apc};
    EXPECT_EQ(cfg.febKind(0), blocks::FebKind::MuxMaxStanh);
    EXPECT_EQ(cfg.febKind(1), blocks::FebKind::ApcMaxBtanh);
    // Layer2 is fully connected: no pooling stage.
    EXPECT_EQ(cfg.febKind(2), blocks::FebKind::ApcAvgBtanh);

    cfg.pooling = nn::PoolingMode::Average;
    EXPECT_EQ(cfg.febKind(0), blocks::FebKind::MuxAvgStanh);
    EXPECT_EQ(cfg.febKind(1), blocks::FebKind::ApcAvgBtanh);
}

TEST(ScConfig, DescribeIsReadable)
{
    ScNetworkConfig cfg;
    cfg.pooling = nn::PoolingMode::Max;
    cfg.layer_adders = {AdderKind::Mux, AdderKind::Mux, AdderKind::Apc};
    cfg.bitstream_len = 512;
    EXPECT_EQ(cfg.describe(), "max L=512 MUX-MUX-APC");
}

TEST(ScConfig, Table6HasTwelveEntriesMatchingThePaper)
{
    auto entries = table6Entries();
    ASSERT_EQ(entries.size(), 12u);
    // Spot-check a few cells against the printed table.
    EXPECT_EQ(entries[0].number, 1);
    EXPECT_EQ(entries[0].config.bitstream_len, 1024u);
    EXPECT_EQ(entries[0].config.layer_adders[0], AdderKind::Mux);
    EXPECT_DOUBLE_EQ(entries[0].paper_area_mm2, 19.1);
    EXPECT_EQ(entries[10].number, 11);
    EXPECT_EQ(entries[10].config.pooling, nn::PoolingMode::Average);
    EXPECT_EQ(entries[10].config.bitstream_len, 256u);
    EXPECT_DOUBLE_EQ(entries[10].paper_power_w, 1.53);
    // Every configuration keeps APC at the fully-connected layer.
    for (const auto &e : entries)
        EXPECT_EQ(e.config.layer_adders[2], AdderKind::Apc);
}

TEST(ScConfig, HwConfigCarriesAllKnobs)
{
    ScNetworkConfig cfg;
    cfg.pooling = nn::PoolingMode::Max;
    cfg.layer_adders = {AdderKind::Apc, AdderKind::Mux, AdderKind::Apc};
    cfg.bitstream_len = 256;
    cfg.weight_bits = {7, 7, 6};
    auto hw_cfg = toHwConfig(cfg);
    EXPECT_EQ(hw_cfg.bitstream_len, 256u);
    EXPECT_EQ(hw_cfg.layer_kinds[0], blocks::FebKind::ApcMaxBtanh);
    EXPECT_EQ(hw_cfg.layer_kinds[1], blocks::FebKind::MuxMaxStanh);
    EXPECT_EQ(hw_cfg.weight_bits[2], 6u);
}

TEST(ScNetwork, PredictIsDeterministicPerSeed)
{
    nn::Network &net = trainedMini(nn::PoolingMode::Average);
    ScNetworkConfig cfg;
    cfg.pooling = nn::PoolingMode::Average;
    cfg.bitstream_len = 256;
    ScNetwork sc_net(net, cfg);
    nn::Tensor img = nn::DigitDataset::render(3, 77);
    EXPECT_EQ(sc_net.predict(img, 9), sc_net.predict(img, 9));
}

TEST(ScNetwork, ApcConfigTracksFloatNetwork)
{
    nn::Network &net = trainedMini(nn::PoolingMode::Average);
    nn::Dataset test = nn::DigitDataset::generate(40, 6);
    const double sw = nn::Trainer::errorRate(net, test);

    ScNetworkConfig cfg;
    cfg.pooling = nn::PoolingMode::Average;
    cfg.layer_adders = {AdderKind::Apc, AdderKind::Apc, AdderKind::Apc};
    cfg.bitstream_len = 1024;
    ScNetwork sc_net(net, cfg);
    const double err = sc_net.errorRate(test, test.size());
    EXPECT_LT(err, sw + 0.12);
}

TEST(ScNetwork, LayerGainsAreSaneAndMuxAtFcIsClamped)
{
    nn::Network &net = trainedMini(nn::PoolingMode::Average);
    ScNetworkConfig cfg;
    cfg.pooling = nn::PoolingMode::Average;
    cfg.layer_adders = {AdderKind::Mux, AdderKind::Apc, AdderKind::Apc};
    cfg.bitstream_len = 1024;
    ScNetwork sc_net(net, cfg);
    for (size_t l = 0; l < 3; ++l) {
        EXPECT_GT(sc_net.layerGain(l), 0.0);
        EXPECT_LE(sc_net.layerGain(l), 1.0);
        EXPECT_GE(sc_net.layerStateCount(l), 2u);
    }
}

TEST(ScNetwork, ShorterStreamsDegradeAccuracy)
{
    nn::Network &net = trainedMini(nn::PoolingMode::Average);
    nn::Dataset test = nn::DigitDataset::generate(40, 7);
    ScNetworkConfig long_cfg;
    long_cfg.pooling = nn::PoolingMode::Average;
    long_cfg.bitstream_len = 1024;
    ScNetworkConfig short_cfg = long_cfg;
    short_cfg.bitstream_len = 64;
    double err_long =
        ScNetwork(net, long_cfg).errorRate(test, test.size());
    double err_short =
        ScNetwork(net, short_cfg).errorRate(test, test.size());
    EXPECT_LE(err_long, err_short + 0.05);
}

TEST(Optimizer, HalvesWhileThresholdHolds)
{
    // Fake evaluator: inaccuracy = 0.001 * (1024 / L); threshold 0.005
    // admits L down to 256.
    ScNetworkConfig cfg;
    OptimizerSettings settings;
    settings.threshold = 0.005;
    settings.start_len = 1024;
    settings.min_len = 32;
    auto result = optimizeDesigns(
        {cfg}, settings, [](const ScNetworkConfig &c) {
            return 0.001 * 1024.0 /
                   static_cast<double>(c.bitstream_len);
        });
    ASSERT_EQ(result.size(), 1u);
    EXPECT_EQ(result[0].config.bitstream_len, 256u);
    EXPECT_NEAR(result[0].inaccuracy, 0.004, 1e-12);
    EXPECT_EQ(result[0].evaluations, 4u); // 1024, 512, 256, 128(fail)
}

TEST(Optimizer, DropsCandidatesFailingAtStart)
{
    ScNetworkConfig cfg;
    OptimizerSettings settings;
    settings.threshold = 0.01;
    auto result = optimizeDesigns(
        {cfg}, settings,
        [](const ScNetworkConfig &) { return 0.5; });
    EXPECT_TRUE(result.empty());
}

TEST(Optimizer, RespectsMinimumLength)
{
    ScNetworkConfig cfg;
    OptimizerSettings settings;
    settings.threshold = 1.0; // everything passes
    settings.start_len = 256;
    settings.min_len = 64;
    auto result = optimizeDesigns(
        {cfg}, settings,
        [](const ScNetworkConfig &) { return 0.0; });
    ASSERT_EQ(result.size(), 1u);
    EXPECT_EQ(result[0].config.bitstream_len, 64u);
}

TEST(Metrics, Table6RowJoinsAccuracyAndCost)
{
    auto entries = table6Entries();
    Table6Row row = makeTable6Row(11, entries[10].config, 0.0336);
    EXPECT_EQ(row.number, 11);
    EXPECT_EQ(row.pooling, "Average");
    EXPECT_EQ(row.layer0, "MUX");
    EXPECT_EQ(row.layer1, "APC");
    EXPECT_NEAR(row.inaccuracy_pct, 3.36, 1e-9);
    EXPECT_DOUBLE_EQ(row.delay_ns, 1280.0);
    EXPECT_GT(row.area_mm2, 5.0);
    EXPECT_LT(row.area_mm2, 40.0);
}

TEST(Metrics, Table7ReferenceRowsMatchPaperConstants)
{
    auto rows = table7ReferenceRows();
    ASSERT_EQ(rows.size(), 7u);
    EXPECT_EQ(rows[0].platform, "2x Intel Xeon W5580");
    EXPECT_DOUBLE_EQ(rows[0].throughput, 656);
    EXPECT_EQ(rows[4].platform, "TrueNorth");
    EXPECT_DOUBLE_EQ(rows[4].power_w, 0.18);
}

TEST(Metrics, ScdcnnRowUsesCostModel)
{
    auto entries = table6Entries();
    PlatformRow row =
        scdcnnPlatformRow("SC-DCNN (No.11)", entries[10].config, 96.6);
    EXPECT_NEAR(row.throughput, 781250.0, 1.0);
    EXPECT_GT(row.energy_eff, 1e4);
    EXPECT_EQ(row.platform_type, "ASIC");
}

TEST(Metrics, LayerNoiseInjectionDegradesMonotonically)
{
    nn::Network &net = trainedMini(nn::PoolingMode::Max);
    nn::Dataset test = nn::DigitDataset::generate(120, 8);
    const double clean = nn::Trainer::errorRate(net, test);
    const double small =
        errorRateWithLayerNoise(net, test, 0, 0.05, 3);
    const double large = errorRateWithLayerNoise(net, test, 0, 1.5, 3);
    EXPECT_LE(clean, small + 0.03);
    EXPECT_GT(large, small);
}

} // namespace
} // namespace core
} // namespace scdcnn
