/**
 * @file
 * Tracing subsystem tests: per-thread ring wraparound (newest events
 * win), cross-thread snapshot merge in timestamp order (safe while
 * writers are live — the TSan lane runs this), the disarmed hot path
 * allocating nothing and recording nothing, Chrome trace_event export
 * that parses back as JSON, agreement between the tracing aggregate
 * and the engine's own PhaseBreakdown counters (they share one
 * measured lap per phase), serve-layer lifecycle spans, and the
 * flight recorder dumping a model's recent events when an injected
 * execution fault trips its circuit breaker.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/sc_network.h"
#include "nn/network.h"
#include "nn/topology.h"
#include "obs/chrome_trace.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "serve/artifact.h"
#include "serve/model_registry.h"
#include "serve/server.h"

// ------------------------------------------- allocation instrumentation
// Counting operator new, toggled around the disarmed-path test. Each
// test file is its own executable, so the override is scoped to this
// binary.
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<uint64_t> g_allocs{0};

void *
countedAlloc(std::size_t n)
{
    if (g_count_allocs.load(std::memory_order_relaxed))
        g_allocs.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(n ? n : 1);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}
} // namespace

void *
operator new(std::size_t n)
{
    return countedAlloc(n);
}
void *
operator new[](std::size_t n)
{
    return countedAlloc(n);
}
void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace scdcnn {
namespace {

using namespace std::chrono_literals;
using obs::Event;
using obs::EventKind;
using obs::SpanName;
using obs::TraceRecorder;
using serve::FaultInjector;
using serve::FaultPoint;
using serve::ModelRegistry;
using serve::RegistryConfig;
using serve::ServeError;

/** Quiesce and wipe the process recorder between tests (it is a
 *  singleton shared by every test in this binary). */
TraceRecorder &
freshRecorder()
{
    TraceRecorder &rec = TraceRecorder::instance();
    rec.disarm();
    rec.clear();
    rec.resetProfile();
    return rec;
}

// ------------------------------------------------- minimal JSON parser
// Just enough of a recursive-descent parser to verify the exported
// trace is syntactically complete JSON (objects, arrays, strings with
// escapes, numbers, literals) — structure checks use the raw text.

bool parseValue(const std::string &s, size_t &pos);

void
skipWs(const std::string &s, size_t &pos)
{
    while (pos < s.size() &&
           (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
            s[pos] == '\r'))
        ++pos;
}

bool
parseString(const std::string &s, size_t &pos)
{
    if (pos >= s.size() || s[pos] != '"')
        return false;
    ++pos;
    while (pos < s.size() && s[pos] != '"') {
        if (s[pos] == '\\') {
            ++pos;
            if (pos >= s.size())
                return false;
        }
        ++pos;
    }
    if (pos >= s.size())
        return false;
    ++pos; // closing quote
    return true;
}

bool
parseNumber(const std::string &s, size_t &pos)
{
    const size_t start = pos;
    if (pos < s.size() && (s[pos] == '-' || s[pos] == '+'))
        ++pos;
    bool digits = false;
    while (pos < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[pos])) ||
            s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
            s[pos] == '-' || s[pos] == '+')) {
        digits = digits ||
                 std::isdigit(static_cast<unsigned char>(s[pos]));
        ++pos;
    }
    return digits && pos > start;
}

bool
parseObject(const std::string &s, size_t &pos)
{
    ++pos; // '{'
    skipWs(s, pos);
    if (pos < s.size() && s[pos] == '}') {
        ++pos;
        return true;
    }
    for (;;) {
        skipWs(s, pos);
        if (!parseString(s, pos))
            return false;
        skipWs(s, pos);
        if (pos >= s.size() || s[pos] != ':')
            return false;
        ++pos;
        if (!parseValue(s, pos))
            return false;
        skipWs(s, pos);
        if (pos < s.size() && s[pos] == ',') {
            ++pos;
            continue;
        }
        break;
    }
    if (pos >= s.size() || s[pos] != '}')
        return false;
    ++pos;
    return true;
}

bool
parseArray(const std::string &s, size_t &pos)
{
    ++pos; // '['
    skipWs(s, pos);
    if (pos < s.size() && s[pos] == ']') {
        ++pos;
        return true;
    }
    for (;;) {
        if (!parseValue(s, pos))
            return false;
        skipWs(s, pos);
        if (pos < s.size() && s[pos] == ',') {
            ++pos;
            continue;
        }
        break;
    }
    if (pos >= s.size() || s[pos] != ']')
        return false;
    ++pos;
    return true;
}

bool
parseValue(const std::string &s, size_t &pos)
{
    skipWs(s, pos);
    if (pos >= s.size())
        return false;
    const char c = s[pos];
    if (c == '{')
        return parseObject(s, pos);
    if (c == '[')
        return parseArray(s, pos);
    if (c == '"')
        return parseString(s, pos);
    if (s.compare(pos, 4, "true") == 0) {
        pos += 4;
        return true;
    }
    if (s.compare(pos, 5, "false") == 0) {
        pos += 5;
        return true;
    }
    if (s.compare(pos, 4, "null") == 0) {
        pos += 4;
        return true;
    }
    return parseNumber(s, pos);
}

bool
isCompleteJson(const std::string &s)
{
    size_t pos = 0;
    if (!parseValue(s, pos))
        return false;
    skipWs(s, pos);
    return pos == s.size();
}

// --------------------------------------------------------- mini fleet
// Tiny 12x12 topology so engine construction is milliseconds (the
// same shape tests/test_registry.cc uses).

nn::TopologySpec
miniSpec(uint64_t seed)
{
    nn::TopologySpec spec;
    spec.in_h = spec.in_w = 12;
    spec.convs = {{3, 3}};
    spec.fc_hidden = {11};
    spec.n_classes = 6;
    spec.seed = seed;
    return spec;
}

core::ScNetworkConfig
miniConfig()
{
    core::ScNetworkConfig cfg;
    cfg.bitstream_len = 64;
    cfg.stream_segment_words = 1;
    cfg.input_c = 1;
    cfg.input_h = cfg.input_w = 12;
    return cfg;
}

nn::Tensor
image(uint64_t seed)
{
    nn::Tensor t(1, 12, 12);
    uint64_t x = seed * 6364136223846793005ull + 1442695040888963407ull;
    for (size_t i = 0; i < t.size(); ++i) {
        x ^= x >> 33;
        x *= 0xFF51AFD7ED558CCDull;
        t[i] = static_cast<float>((x >> 40) & 0xFF) / 255.0f;
    }
    return t;
}

std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return {};
    std::string content;
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
        content.append(buf, got);
    std::fclose(f);
    return content;
}

// ------------------------------------------------------ ring behavior

TEST(TraceRing, WrapsKeepingNewestEvents)
{
    TraceRecorder &rec = freshRecorder();
    rec.arm();
    const size_t n = TraceRecorder::kRingEvents + 500;
    for (size_t i = 0; i < n; ++i)
        rec.instant(SpanName::EarlyExit, 0, 0, /*a0=*/i);
    rec.disarm();

    const std::vector<Event> events = rec.snapshot();
    ASSERT_EQ(events.size(), TraceRecorder::kRingEvents);
    uint64_t min_a0 = ~0ull, max_a0 = 0;
    for (const Event &e : events) {
        EXPECT_EQ(e.kind(), EventKind::Instant);
        min_a0 = std::min(min_a0, e.a0);
        max_a0 = std::max(max_a0, e.a0);
    }
    // Newest overwrite oldest: the last kRingEvents emissions survive.
    EXPECT_EQ(max_a0, n - 1);
    EXPECT_EQ(min_a0, n - TraceRecorder::kRingEvents);
}

TEST(TraceRing, CrossThreadSnapshotMergesInTimestampOrder)
{
    TraceRecorder &rec = freshRecorder();
    rec.arm();
    constexpr size_t kThreads = 4, kPer = 200;
    std::atomic<bool> done{false};
    std::vector<std::thread> writers;
    for (size_t t = 0; t < kThreads; ++t) {
        writers.emplace_back([&rec, t] {
            rec.labelThisThread("writer-" + std::to_string(t));
            for (size_t i = 0; i < kPer; ++i)
                rec.instant(SpanName::EarlyExit, 0,
                            static_cast<uint16_t>(t), i);
        });
    }
    // Concurrent reads while writers are live must see only whole
    // events (the seqlock skips torn slots).
    std::thread reader([&rec, &done] {
        while (!done.load()) {
            for (const Event &e : rec.snapshot())
                ASSERT_NE(e.kind(), EventKind::None);
        }
    });
    for (std::thread &w : writers)
        w.join();
    done.store(true);
    reader.join();
    rec.disarm();

    const std::vector<Event> events = rec.snapshot();
    ASSERT_EQ(events.size(), kThreads * kPer);
    std::set<uint16_t> tids;
    for (size_t i = 0; i < events.size(); ++i) {
        tids.insert(events[i].tid());
        if (i > 0) {
            EXPECT_LE(events[i - 1].ts_ns, events[i].ts_ns);
        }
    }
    EXPECT_EQ(tids.size(), kThreads);
    for (uint16_t tid : tids)
        EXPECT_EQ(rec.threadLabel(tid).rfind("writer-", 0), 0u);
}

// --------------------------------------------------- disarmed hot path

TEST(TraceDisarmed, EmittersAllocateNothingAndRecordNothing)
{
    TraceRecorder &rec = freshRecorder();
    // Touch this thread's ring once while armed so lazy ring creation
    // cannot be charged to the disarmed path under test.
    rec.arm();
    rec.instant(SpanName::EarlyExit);
    rec.disarm();
    rec.clear();

    g_allocs.store(0);
    g_count_allocs.store(true);
    for (uint64_t i = 0; i < 1000; ++i) {
        rec.spanComplete(SpanName::QueueWait, i, 10);
        rec.asyncBegin(SpanName::Request, i);
        rec.asyncEnd(SpanName::Request, i);
        rec.instant(SpanName::Shed);
        rec.counter(SpanName::QueueDepth, i);
        obs::ScopedSpan span(SpanName::Scenario);
        span.finish();
    }
    g_count_allocs.store(false);

    EXPECT_EQ(g_allocs.load(), 0u);
    EXPECT_TRUE(rec.snapshot().empty());
    EXPECT_EQ(rec.profileTotalNs(SpanName::QueueWait), 0u);
}

// ------------------------------------------------- scoped span timing

TEST(ScopedSpan, MeasuresWhileDisarmedEmitsWhileArmed)
{
    TraceRecorder &rec = freshRecorder();
    {
        obs::ScopedSpan span(SpanName::Scenario);
        std::this_thread::sleep_for(2ms);
        EXPECT_GE(span.finish(), 1'000'000u); // usable as a wall timer
    }
    EXPECT_TRUE(rec.snapshot().empty()); // but emitted nothing

    rec.arm();
    {
        obs::ScopedSpan span(SpanName::Scenario, 0, 0, 7);
        std::this_thread::sleep_for(1ms);
    }
    rec.disarm();
    const std::vector<Event> events = rec.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind(), EventKind::SpanComplete);
    EXPECT_EQ(events[0].name(), SpanName::Scenario);
    EXPECT_EQ(events[0].a0, 7u);
    EXPECT_GE(events[0].dur_or_id, 500'000u);
    EXPECT_EQ(rec.profileTotalNs(SpanName::Scenario),
              events[0].dur_or_id);
}

// ---------------------------------------------------- chrome exporter

TEST(ChromeTrace, ExportParsesBackAsJson)
{
    TraceRecorder &rec = freshRecorder();
    rec.labelThisThread("test-main");
    const uint16_t tag = rec.internTag("model-a");
    rec.arm();
    const uint64_t t0 = rec.nowNs();
    rec.asyncBegin(SpanName::Request, 0x2a, tag, 1, 0x2a);
    rec.spanComplete(SpanName::QueueWait, t0, 1000, tag, 1, 0x2a);
    rec.instant(SpanName::BatchClose, tag, /*reason=*/1, 4, 2);
    rec.spanComplete(SpanName::BatchCompute, t0 + 1000, 2000, tag, 0,
                     4, 64);
    rec.spanComplete(SpanName::InnerProduct, t0, 500, 0, 0, /*seg=*/2);
    rec.counter(SpanName::QueueDepth, 3);
    rec.asyncEnd(SpanName::Request, 0x2a, tag, 1, 0x2a, 64);
    rec.disarm();

    const std::string json = obs::chromeTraceJson(rec.snapshot());
    EXPECT_TRUE(isCompleteJson(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    // Every phase letter the exporter knows shows up.
    for (const char *needle :
         {"\"ph\":\"X\"", "\"ph\":\"b\"", "\"ph\":\"e\"",
          "\"ph\":\"i\"", "\"ph\":\"C\"", "\"ph\":\"M\""})
        EXPECT_NE(json.find(needle), std::string::npos) << needle;
    // Names, decoded args, the interned model tag, the close reason
    // rendered as a string, and the thread label all round-trip.
    for (const char *needle :
         {"\"name\":\"queue_wait\"", "\"name\":\"batch_close\"",
          "\"name\":\"batch_compute\"", "\"name\":\"inner_product\"",
          "\"name\":\"request\"", "\"reason\":\"delay_expired\"",
          "\"model\":\"model-a\"", "\"seg\":2", "\"req\":42",
          "\"id\":\"0x2a\"", "\"test-main\""})
        EXPECT_NE(json.find(needle), std::string::npos) << needle;
}

// ------------------------------------------- engine phase aggregation

TEST(PhaseProfile, AgreesWithEngineBreakdown)
{
    TraceRecorder &rec = freshRecorder();
    nn::Network net =
        nn::buildTopology(miniSpec(3), nn::PoolingMode::Max);
    core::ScNetwork scn(net, miniConfig());
    scn.predict(image(1), 1); // warm-up while disarmed

    core::PhaseBreakdown pb;
    rec.arm();
    scn.predict(image(1), 2, &pb);
    rec.disarm();

    // Span aggregate and PhaseBreakdown accumulate the same measured
    // lap per phase, so they must agree exactly — if they ever
    // diverge, one of the two timing sources is lying.
    EXPECT_EQ(rec.profileTotalNs(SpanName::Encode),
              pb.encode_ns.load());
    EXPECT_EQ(rec.profileTotalNs(SpanName::InnerProduct),
              pb.inner_product_ns.load());
    EXPECT_EQ(rec.profileTotalNs(SpanName::Pooling),
              pb.pooling_ns.load());
    EXPECT_EQ(rec.profileTotalNs(SpanName::Activation),
              pb.activation_ns.load());
    EXPECT_EQ(rec.profileTotalNs(SpanName::Output),
              pb.output_ns.load());
    EXPECT_GT(rec.profileTotalNs(SpanName::InnerProduct), 0u);

    // The aggregate also lands in the metrics snapshot wire format.
    bool saw_inner_product = false;
    for (const obs::PhaseProfileEntry &p : rec.profile())
        if (p.name == SpanName::InnerProduct) {
            saw_inner_product = true;
            EXPECT_GT(p.count, 0u);
            EXPECT_GE(p.max_ns, p.p99_ns == 0 ? 0 : 1u);
            EXPECT_GE(p.total_ns, p.max_ns);
        }
    EXPECT_TRUE(saw_inner_product);
}

// --------------------------------------------- serve lifecycle spans

TEST(ServeSpans, LifecycleEventsRecorded)
{
    TraceRecorder &rec = freshRecorder();
    nn::Network net =
        nn::buildTopology(miniSpec(5), nn::PoolingMode::Max);
    core::ScNetwork scn(net, miniConfig());

    serve::ServerConfig scfg;
    scfg.limits.max_batch = 2;
    scfg.limits.max_queue_delay = 200us;
    rec.arm();
    {
        serve::InferenceServer server(scn, scfg);
        std::vector<std::future<serve::InferenceResult>> futs;
        for (uint64_t i = 0; i < 6; ++i)
            futs.push_back(server.submit(image(i)));
        for (auto &f : futs)
            EXPECT_NO_THROW(f.get());
        server.drain();
    }
    rec.disarm();

    bool begin = false, end = false, wait = false, close = false,
         compute = false;
    for (const Event &e : rec.snapshot()) {
        begin = begin || (e.kind() == EventKind::AsyncBegin &&
                          e.name() == SpanName::Request);
        end = end || (e.kind() == EventKind::AsyncEnd &&
                      e.name() == SpanName::Request);
        wait = wait || e.name() == SpanName::QueueWait;
        close = close || e.name() == SpanName::BatchClose;
        compute = compute || e.name() == SpanName::BatchCompute;
    }
    EXPECT_TRUE(begin);
    EXPECT_TRUE(end);
    EXPECT_TRUE(wait);
    EXPECT_TRUE(close);
    EXPECT_TRUE(compute);
}

// ------------------------------------------------------ flight recorder

TEST(FlightRecorderTest, DumpsModelEventsOnInjectedFaultTrip)
{
    TraceRecorder &rec = freshRecorder();
    obs::FlightRecorderConfig fcfg;
    fcfg.dir = ::testing::TempDir();
    obs::FlightRecorder flight(fcfg);

    FaultInjector faults;
    RegistryConfig rc;
    rc.server_template.limits.max_batch = 1;
    rc.server_template.limits.max_queue_delay = 100us;
    rc.faults = &faults;
    rc.breaker.alpha = 0.5;
    rc.breaker.min_events = 4;
    rc.breaker.trip_threshold = 0.5;
    rc.flight_recorder = &flight;
    ModelRegistry reg(rc);
    const nn::TopologySpec spec = miniSpec(5);
    nn::Network net = nn::buildTopology(spec, nn::PoolingMode::Max);
    ASSERT_TRUE(reg.install("model-x",
                            serve::makeArtifact("model-x", 1, spec,
                                                nn::PoolingMode::Max,
                                                miniConfig(), net))
                    .ok);

    rec.arm();
    faults.arm(FaultPoint::ModelExecute, 100);
    for (uint64_t i = 0; i < 4; ++i)
        EXPECT_THROW(reg.submit("model-x", image(i)).get(), ServeError);
    faults.disarm(FaultPoint::ModelExecute);
    rec.disarm();

    ASSERT_GE(flight.dumpCount(), 1u);
    const obs::FlightDump dump = flight.dumps().front();
    EXPECT_EQ(dump.reason, "breaker_trip");
    EXPECT_EQ(dump.model_id, "model-x");
    EXPECT_TRUE(dump.written);
    EXPECT_GT(dump.n_events, 0u);
    EXPECT_EQ(flight.lastPath(), flight.dumps().back().path);

    // The dump file is a complete Chrome trace holding the failing
    // model's fault events.
    const std::string content = readFile(dump.path);
    ASSERT_FALSE(content.empty()) << dump.path;
    EXPECT_TRUE(isCompleteJson(content));
    EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(content.find("\"name\":\"fault\""), std::string::npos);
    EXPECT_NE(content.find("\"model\":\"model-x\""), std::string::npos);
    std::remove(dump.path.c_str());
}

} // namespace
} // namespace scdcnn
