/**
 * @file
 * Randomized-topology differential test: the engine must handle *any*
 * sequential conv/pool/fc topology the plan grammar admits, not just
 * the golden LeNet5 shape. For ~20 seeded random topologies (varying
 * conv depth, channel counts, kernel sizes, pooling modes, adder
 * kinds, fc widths, class counts and stream lengths) the fused
 * word-parallel engine must be bit-exact against the bit-serial
 * Reference oracle at every tested segment granularity, and the SC
 * output scores must track the float network's logits within a
 * tolerance set by the stream length.
 */

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/sc_network.h"
#include "nn/topology.h"
#include "sc/rng.h"

namespace scdcnn {
namespace {

struct FuzzTopology
{
    nn::TopologySpec spec;
    nn::PoolingMode pooling = nn::PoolingMode::Max;
    core::ScNetworkConfig cfg;
};

/** A random topology the plan grammar admits, derived entirely from
 *  the case seed so failures reproduce from the printed index. */
FuzzTopology
randomTopology(uint64_t case_idx)
{
    sc::Xoshiro256ss rng(0xF022 + case_idx * 7919);
    const auto pick = [&](size_t n) {
        return static_cast<size_t>(rng.nextBelow(n));
    };

    FuzzTopology t;
    t.spec.seed = 100 + case_idx;
    // Even input edges keep odd-kernel conv outputs 2x2-poolable.
    t.spec.in_h = t.spec.in_w = 12 + 2 * pick(5); // 12..20
    size_t h = t.spec.in_h;
    const size_t n_convs = pick(3); // 0..2
    for (size_t i = 0; i < n_convs; ++i) {
        // Odd kernels on even inputs keep the conv output poolable;
        // stop stacking once the pooled edge goes odd or too small.
        if (h % 2 != 0 || h < 4)
            break;
        const size_t k = (h >= 6 && pick(2) == 0) ? 5 : 3;
        t.spec.convs.push_back({2 + pick(7), k}); // 2..8 channels
        h = (h - k + 1) / 2;
    }
    const size_t n_fc = pick(3); // 0..2 hidden fc stages
    for (size_t i = 0; i < n_fc; ++i)
        t.spec.fc_hidden.push_back(6 + pick(20)); // 6..25 wide
    t.spec.n_classes = 4 + pick(7); // 4..10

    t.pooling = pick(2) == 0 ? nn::PoolingMode::Max
                             : nn::PoolingMode::Average;
    t.cfg.pooling = t.pooling;
    for (size_t g = 0; g < 3; ++g)
        t.cfg.layer_adders[g] = pick(2) == 0 ? core::AdderKind::Apc
                                             : core::AdderKind::Mux;
    const size_t lens[] = {128, 192, 200};
    t.cfg.bitstream_len = lens[pick(3)];
    t.cfg.input_c = 1;
    t.cfg.input_h = t.spec.in_h;
    t.cfg.input_w = t.spec.in_w;
    return t;
}

nn::Tensor
randomImage(size_t h, size_t w, uint64_t seed)
{
    sc::Xoshiro256ss rng(seed);
    nn::Tensor img(1, h, w);
    for (size_t i = 0; i < img.size(); ++i)
        img[i] = static_cast<float>(rng.nextDouble());
    return img;
}

constexpr size_t kCases = 20;

TEST(TopologyFuzz, FusedMatchesReferenceAtEverySegmentSize)
{
    for (uint64_t c = 0; c < kCases; ++c) {
        FuzzTopology t = randomTopology(c);
        nn::Network net = nn::buildTopology(t.spec, t.pooling);
        const nn::Tensor img =
            randomImage(t.spec.in_h, t.spec.in_w, 500 + c);
        const uint64_t seed = 9000 + c;

        core::ScNetworkConfig cfg = t.cfg;
        core::ScNetwork ref_net(net, cfg);
        ref_net.setEngineMode(core::EngineMode::Reference);
        core::ForwardInfo ref;
        const size_t ref_pred = ref_net.predict(img, seed, nullptr, &ref);
        ASSERT_LT(ref_pred, t.spec.n_classes) << "case=" << c;

        // 1-word, 3-word (does not divide 128/192-bit streams evenly
        // against the 4-word default) and whole-stream granularity.
        for (size_t seg_words : {size_t{1}, size_t{3}, size_t{0}}) {
            cfg.stream_segment_words = seg_words;
            core::ScNetwork fused(net, cfg);
            core::ForwardInfo info;
            EXPECT_EQ(fused.predict(img, seed, nullptr, &info), ref_pred)
                << "case=" << c << " seg_words=" << seg_words;
            EXPECT_EQ(info.scores, ref.scores)
                << "case=" << c << " seg_words=" << seg_words;
            EXPECT_EQ(info.effective_bits, cfg.bitstream_len)
                << "case=" << c << " seg_words=" << seg_words;
        }
    }
}

TEST(TopologyFuzz, ScScoresTrackTheFloatLogits)
{
    // The SC output-layer score is the bipolar sum the binary stage
    // accumulates: an estimate of the float network's logits (up to
    // quantization, FSM-activation approximation, MUX down-scaling
    // residue and stream sampling noise). The output stage sums
    // fan_in independent 1-bit product estimators over L cycles, so
    // its noise floor grows like sqrt(fan_in / L); the tolerance is a
    // few of those (and never below an O(1) floor for the hidden-stage
    // approximation error). Deterministic seeds make this a regression
    // bound, and it would still catch a wrong fan-in, dropped bias or
    // broken gain chain immediately: those shift scores by O(fan_in).
    double worst = 0.0;
    for (uint64_t c = 0; c < kCases; ++c) {
        FuzzTopology t = randomTopology(c);
        nn::Network net = nn::buildTopology(t.spec, t.pooling);
        const nn::Tensor img =
            randomImage(t.spec.in_h, t.spec.in_w, 500 + c);

        nn::Network float_net = net;
        const nn::Tensor logits = float_net.forward(img);

        core::ScNetwork sc(net, t.cfg);
        core::ForwardInfo info;
        sc.predict(img, 9000 + c, nullptr, &info);
        ASSERT_EQ(info.scores.size(), logits.size()) << "case=" << c;

        const double noise_scale = std::sqrt(
            static_cast<double>(sc.plan().output.fan_in) /
            static_cast<double>(t.cfg.bitstream_len));
        const double tol = 6.0 * std::max(1.0, noise_scale);
        double max_dev = 0.0;
        for (size_t o = 0; o < logits.size(); ++o)
            max_dev = std::max(
                max_dev, std::abs(info.scores[o] -
                                  static_cast<double>(logits[o])));
        EXPECT_LT(max_dev, tol) << "case=" << c;
        worst = std::max(worst, max_dev);
    }
    // Sanity on the harness itself: the scores are not all-zero
    // artifacts — at least one case must show a real, non-trivial
    // deviation pattern under the SC noise floor.
    EXPECT_GT(worst, 0.0);
}

TEST(TopologyFuzz, BatchedPathMatchesLoopOnEveryRandomTopology)
{
    // The weight-stationary batch kernels must be bit-exact with the
    // per-image loop oracle on *every* topology the grammar admits,
    // not just LeNet shapes — conv-free MLPs, MUX layers, average
    // pooling and odd stream lengths all route through the same batch
    // driver. Rotate the batch segment granularity across cases so
    // whole-stream, single-word and grid-misaligned carries all run.
    ThreadPool one(1);
    for (uint64_t c = 0; c < kCases; ++c) {
        FuzzTopology t = randomTopology(c);
        nn::Network net = nn::buildTopology(t.spec, t.pooling);
        core::ScNetworkConfig cfg = t.cfg;
        const size_t seg_rotation[] = {0, 1, 3};
        cfg.batch_stream_segment_words = seg_rotation[c % 3];
        core::ScNetwork sc(net, cfg);

        std::vector<nn::Tensor> images;
        for (size_t i = 0; i < 3; ++i)
            images.push_back(
                randomImage(t.spec.in_h, t.spec.in_w, 800 + c * 10 + i));

        core::PredictOptions batched;
        batched.batch_path = core::BatchPath::Batched;
        core::PredictOptions loop;
        loop.batch_path = core::BatchPath::Loop;

        std::vector<core::ForwardInfo> bi, li;
        const auto b = sc.forwardBatch(images, 9000 + c, batched, &one, &bi);
        const auto l = sc.forwardBatch(images, 9000 + c, loop, &one, &li);
        ASSERT_EQ(b, l) << "case=" << c;
        ASSERT_EQ(bi.size(), li.size()) << "case=" << c;
        for (size_t i = 0; i < bi.size(); ++i) {
            EXPECT_EQ(bi[i].scores, li[i].scores)
                << "case=" << c << " image=" << i;
            EXPECT_EQ(bi[i].effective_bits, li[i].effective_bits)
                << "case=" << c << " image=" << i;
        }
    }
}

TEST(TopologyFuzz, BatchedForwardIsThreadCountInvariantOffLeNet)
{
    // forwardBatch on a non-LeNet topology: predictions must be
    // identical for any pool size and must match per-image predict()
    // at the batch seed schedule (seed + i * 7919).
    FuzzTopology t = randomTopology(3);
    nn::Network net = nn::buildTopology(t.spec, t.pooling);
    core::ScNetwork sc(net, t.cfg);

    std::vector<nn::Tensor> images;
    for (size_t i = 0; i < 5; ++i)
        images.push_back(
            randomImage(t.spec.in_h, t.spec.in_w, 700 + i));

    ThreadPool one(1), three(3);
    const auto a = sc.forwardBatch(images, 42, &one);
    const auto b = sc.forwardBatch(images, 42, &three);
    EXPECT_EQ(a, b);
    for (size_t i = 0; i < images.size(); ++i)
        EXPECT_EQ(a[i], sc.predict(images[i], 42 + i * 7919))
            << "image=" << i;
}

} // namespace
} // namespace scdcnn
