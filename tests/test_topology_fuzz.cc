/**
 * @file
 * Randomized-topology differential test: the engine must handle *any*
 * sequential conv/pool/fc topology the plan grammar admits, not just
 * the golden LeNet5 shape. For ~20 seeded random topologies (varying
 * conv depth, channel counts, kernel sizes, pooling modes, adder
 * kinds, fc widths, class counts and stream lengths) the fused
 * word-parallel engine must be bit-exact against the bit-serial
 * Reference oracle at every tested segment granularity, and the SC
 * output scores must track the float network's logits within a
 * tolerance set by the stream length. The binary XNOR-popcount
 * backend rides the same corpus with *exact* differentials: its fused
 * kernels against their bit-serial reference twins, and its scores
 * against an independent float sign-network oracle.
 *
 * SCDCNN_FUZZ_SEED (a small integer, default 0) offsets every seed in
 * the corpus — the CI fuzz lane runs a fixed matrix of offsets so the
 * same binaries sweep several disjoint corpora.
 */

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/binary_net.h"
#include "core/sc_network.h"
#include "nn/layers.h"
#include "nn/topology.h"
#include "sc/rng.h"

namespace scdcnn {
namespace {

/** Corpus offset from SCDCNN_FUZZ_SEED (0 when unset): shifts every
 *  topology and image seed so CI can sweep disjoint corpora with one
 *  binary. Failures reproduce from the printed case index plus the
 *  offset the lane exported. */
uint64_t
fuzzSeedOffset()
{
    static const uint64_t off = [] {
        const char *env = std::getenv("SCDCNN_FUZZ_SEED");
        return env != nullptr ? std::strtoull(env, nullptr, 10)
                              : uint64_t{0};
    }();
    return off;
}

struct FuzzTopology
{
    nn::TopologySpec spec;
    nn::PoolingMode pooling = nn::PoolingMode::Max;
    core::ScNetworkConfig cfg;
};

/** A random topology the plan grammar admits, derived entirely from
 *  the case seed so failures reproduce from the printed index. */
FuzzTopology
randomTopology(uint64_t case_idx)
{
    sc::Xoshiro256ss rng(0xF022 + fuzzSeedOffset() * 0x51ED +
                         case_idx * 7919);
    const auto pick = [&](size_t n) {
        return static_cast<size_t>(rng.nextBelow(n));
    };

    FuzzTopology t;
    t.spec.seed = 100 + case_idx + fuzzSeedOffset() * 1000;
    // Even input edges keep odd-kernel conv outputs 2x2-poolable.
    t.spec.in_h = t.spec.in_w = 12 + 2 * pick(5); // 12..20
    size_t h = t.spec.in_h;
    const size_t n_convs = pick(3); // 0..2
    for (size_t i = 0; i < n_convs; ++i) {
        // Odd kernels on even inputs keep the conv output poolable;
        // stop stacking once the pooled edge goes odd or too small.
        if (h % 2 != 0 || h < 4)
            break;
        const size_t k = (h >= 6 && pick(2) == 0) ? 5 : 3;
        t.spec.convs.push_back({2 + pick(7), k}); // 2..8 channels
        h = (h - k + 1) / 2;
    }
    const size_t n_fc = pick(3); // 0..2 hidden fc stages
    for (size_t i = 0; i < n_fc; ++i)
        t.spec.fc_hidden.push_back(6 + pick(20)); // 6..25 wide
    t.spec.n_classes = 4 + pick(7); // 4..10

    t.pooling = pick(2) == 0 ? nn::PoolingMode::Max
                             : nn::PoolingMode::Average;
    t.cfg.pooling = t.pooling;
    for (size_t g = 0; g < 3; ++g)
        t.cfg.layer_adders[g] = pick(2) == 0 ? core::AdderKind::Apc
                                             : core::AdderKind::Mux;
    const size_t lens[] = {128, 192, 200};
    t.cfg.bitstream_len = lens[pick(3)];
    t.cfg.input_c = 1;
    t.cfg.input_h = t.spec.in_h;
    t.cfg.input_w = t.spec.in_w;
    return t;
}

nn::Tensor
randomImage(size_t h, size_t w, uint64_t seed)
{
    sc::Xoshiro256ss rng(seed + fuzzSeedOffset() * 77777);
    nn::Tensor img(1, h, w);
    for (size_t i = 0; i < img.size(); ++i)
        img[i] = static_cast<float>(rng.nextDouble());
    return img;
}

constexpr size_t kCases = 20;

TEST(TopologyFuzz, FusedMatchesReferenceAtEverySegmentSize)
{
    for (uint64_t c = 0; c < kCases; ++c) {
        FuzzTopology t = randomTopology(c);
        nn::Network net = nn::buildTopology(t.spec, t.pooling);
        const nn::Tensor img =
            randomImage(t.spec.in_h, t.spec.in_w, 500 + c);
        const uint64_t seed = 9000 + c;

        core::ScNetworkConfig cfg = t.cfg;
        core::ScNetwork ref_net(net, cfg);
        ref_net.setEngineMode(core::EngineMode::Reference);
        core::ForwardInfo ref;
        const size_t ref_pred = ref_net.predict(img, seed, nullptr, &ref);
        ASSERT_LT(ref_pred, t.spec.n_classes) << "case=" << c;

        // 1-word, 3-word (does not divide 128/192-bit streams evenly
        // against the 4-word default) and whole-stream granularity.
        for (size_t seg_words : {size_t{1}, size_t{3}, size_t{0}}) {
            cfg.stream_segment_words = seg_words;
            core::ScNetwork fused(net, cfg);
            core::ForwardInfo info;
            EXPECT_EQ(fused.predict(img, seed, nullptr, &info), ref_pred)
                << "case=" << c << " seg_words=" << seg_words;
            EXPECT_EQ(info.scores, ref.scores)
                << "case=" << c << " seg_words=" << seg_words;
            EXPECT_EQ(info.effective_bits, cfg.bitstream_len)
                << "case=" << c << " seg_words=" << seg_words;
        }
    }
}

TEST(TopologyFuzz, ScScoresTrackTheFloatLogits)
{
    // The SC output-layer score is the bipolar sum the binary stage
    // accumulates: an estimate of the float network's logits (up to
    // quantization, FSM-activation approximation, MUX down-scaling
    // residue and stream sampling noise). The output stage sums
    // fan_in independent 1-bit product estimators over L cycles, so
    // its noise floor grows like sqrt(fan_in / L); the tolerance is a
    // few of those (and never below an O(1) floor for the hidden-stage
    // approximation error). Deterministic seeds make this a regression
    // bound, and it would still catch a wrong fan-in, dropped bias or
    // broken gain chain immediately: those shift scores by O(fan_in).
    double worst = 0.0;
    for (uint64_t c = 0; c < kCases; ++c) {
        FuzzTopology t = randomTopology(c);
        nn::Network net = nn::buildTopology(t.spec, t.pooling);
        const nn::Tensor img =
            randomImage(t.spec.in_h, t.spec.in_w, 500 + c);

        nn::Network float_net = net;
        const nn::Tensor logits = float_net.forward(img);

        core::ScNetwork sc(net, t.cfg);
        core::ForwardInfo info;
        sc.predict(img, 9000 + c, nullptr, &info);
        ASSERT_EQ(info.scores.size(), logits.size()) << "case=" << c;

        const double noise_scale = std::sqrt(
            static_cast<double>(sc.plan().output.fan_in) /
            static_cast<double>(t.cfg.bitstream_len));
        const double tol = 6.0 * std::max(1.0, noise_scale);
        double max_dev = 0.0;
        for (size_t o = 0; o < logits.size(); ++o)
            max_dev = std::max(
                max_dev, std::abs(info.scores[o] -
                                  static_cast<double>(logits[o])));
        EXPECT_LT(max_dev, tol) << "case=" << c;
        worst = std::max(worst, max_dev);
    }
    // Sanity on the harness itself: the scores are not all-zero
    // artifacts — at least one case must show a real, non-trivial
    // deviation pattern under the SC noise floor.
    EXPECT_GT(worst, 0.0);
}

TEST(TopologyFuzz, BatchedPathMatchesLoopOnEveryRandomTopology)
{
    // The weight-stationary batch kernels must be bit-exact with the
    // per-image loop oracle on *every* topology the grammar admits,
    // not just LeNet shapes — conv-free MLPs, MUX layers, average
    // pooling and odd stream lengths all route through the same batch
    // driver. Rotate the batch segment granularity across cases so
    // whole-stream, single-word and grid-misaligned carries all run.
    ThreadPool one(1);
    for (uint64_t c = 0; c < kCases; ++c) {
        FuzzTopology t = randomTopology(c);
        nn::Network net = nn::buildTopology(t.spec, t.pooling);
        core::ScNetworkConfig cfg = t.cfg;
        const size_t seg_rotation[] = {0, 1, 3};
        cfg.batch_stream_segment_words = seg_rotation[c % 3];
        core::ScNetwork sc(net, cfg);

        std::vector<nn::Tensor> images;
        for (size_t i = 0; i < 3; ++i)
            images.push_back(
                randomImage(t.spec.in_h, t.spec.in_w, 800 + c * 10 + i));

        core::PredictOptions batched;
        batched.batch_path = core::BatchPath::Batched;
        core::PredictOptions loop;
        loop.batch_path = core::BatchPath::Loop;

        std::vector<core::ForwardInfo> bi, li;
        const auto b = sc.forwardBatch(images, 9000 + c, batched, &one, &bi);
        const auto l = sc.forwardBatch(images, 9000 + c, loop, &one, &li);
        ASSERT_EQ(b, l) << "case=" << c;
        ASSERT_EQ(bi.size(), li.size()) << "case=" << c;
        for (size_t i = 0; i < bi.size(); ++i) {
            EXPECT_EQ(bi[i].scores, li[i].scores)
                << "case=" << c << " image=" << i;
            EXPECT_EQ(bi[i].effective_bits, li[i].effective_bits)
                << "case=" << c << " image=" << i;
        }
    }
}

// --------------------------------------------- binary backend corpus

double
signOf(double v)
{
    return v >= 0.0 ? 1.0 : -1.0;
}

/**
 * Independent float oracle of the binary backend's contract: +-1
 * activations as doubles, sign-of-weight multiplies, bias as a last
 * +-1 term, pooling on the four window pre-activations (max keeps the
 * max, average keeps the sum), sign activation with ties to +1. Every
 * intermediate value is a small integer, so double arithmetic is
 * exact and the comparison against the backend is equality, not
 * tolerance.
 */
std::vector<double>
floatSignOracle(const nn::Network &net, const nn::NetworkPlan &plan,
                nn::PoolingMode pooling, const nn::Tensor &img)
{
    // Input binarization: pixel bit = (x >= 0.5), bipolar value +-1.
    size_t h = plan.in_h, w = plan.in_w;
    std::vector<double> act(img.size());
    for (size_t i = 0; i < img.size(); ++i)
        act[i] = img[i] >= 0.5f ? 1.0 : -1.0;

    size_t l = 0;
    for (; l < plan.convCount(); ++l) {
        const nn::PlanStage &st = plan.stages[l];
        const auto &conv = dynamic_cast<const nn::ConvLayer &>(
            net.layer(st.layer_index));
        const size_t k = conv.kernel();
        std::vector<double> next(st.flatOut());
        for (size_t co = 0; co < st.out_c; ++co)
            for (size_t oy = 0; oy < st.out_h; ++oy)
                for (size_t ox = 0; ox < st.out_w; ++ox) {
                    double pooled = 0.0;
                    for (size_t widx = 0; widx < 4; ++widx) {
                        const size_t cy = 2 * oy + widx / 2;
                        const size_t cx = 2 * ox + widx % 2;
                        double s = 0.0;
                        for (size_t ci = 0; ci < st.in_c; ++ci)
                            for (size_t ky = 0; ky < k; ++ky)
                                for (size_t kx = 0; kx < k; ++kx)
                                    s += signOf(conv.weightAt(co, ci, ky,
                                                              kx)) *
                                         act[(ci * h + cy + ky) * w +
                                             cx + kx];
                        s += signOf(conv.biasAt(co));
                        if (widx == 0)
                            pooled = s;
                        else if (pooling == nn::PoolingMode::Max)
                            pooled = std::max(pooled, s);
                        else
                            pooled += s;
                    }
                    next[(co * st.out_h + oy) * st.out_w + ox] =
                        pooled >= 0.0 ? 1.0 : -1.0;
                }
        act = std::move(next);
        h = st.out_h;
        w = st.out_w;
    }

    for (; l < plan.stages.size(); ++l) {
        const nn::PlanStage &st = plan.stages[l];
        const auto &fc = dynamic_cast<const nn::FullyConnected &>(
            net.layer(st.layer_index));
        std::vector<double> next(fc.nOut());
        for (size_t o = 0; o < fc.nOut(); ++o) {
            double s = 0.0;
            for (size_t i = 0; i < fc.nIn(); ++i)
                s += signOf(fc.weightAt(o, i)) * act[i];
            s += signOf(fc.biasAt(o));
            next[o] = s >= 0.0 ? 1.0 : -1.0;
        }
        act = std::move(next);
    }

    const auto &out = dynamic_cast<const nn::FullyConnected &>(
        net.layer(plan.output.layer_index));
    std::vector<double> scores(out.nOut());
    for (size_t o = 0; o < out.nOut(); ++o) {
        double s = 0.0;
        for (size_t i = 0; i < out.nIn(); ++i)
            s += signOf(out.weightAt(o, i)) * act[i];
        scores[o] = s + signOf(out.biasAt(o));
    }
    return scores;
}

TEST(TopologyFuzz, BinaryMatchesItsBitSerialReferenceTwin)
{
    // The binary backend's fused word-parallel kernels (XNOR-popcount
    // inner product, sign pack, window pooling) against their
    // bit-serial reference twins, end to end, on every corpus
    // topology. Deterministic, so the differential is exact equality.
    for (uint64_t c = 0; c < kCases; ++c) {
        FuzzTopology t = randomTopology(c);
        nn::Network net = nn::buildTopology(t.spec, t.pooling);
        const nn::NetworkPlan plan = nn::deriveNetworkPlan(
            net, 1, t.spec.in_h, t.spec.in_w);
        const core::BinaryNetwork bin(net, plan);

        for (size_t i = 0; i < 3; ++i) {
            const nn::Tensor img = randomImage(
                t.spec.in_h, t.spec.in_w, 600 + c * 10 + i);
            std::vector<double> fused_scores, ref_scores;
            const size_t fused_pred =
                bin.predict(img, &fused_scores,
                            core::BinaryNetwork::Kernel::Fused);
            const size_t ref_pred =
                bin.predict(img, &ref_scores,
                            core::BinaryNetwork::Kernel::Reference);
            EXPECT_EQ(fused_pred, ref_pred)
                << "case=" << c << " image=" << i;
            EXPECT_EQ(fused_scores, ref_scores)
                << "case=" << c << " image=" << i;
        }
    }
}

TEST(TopologyFuzz, BinaryScoresMatchTheFloatSignNetOracle)
{
    // The whole packed-word pipeline (bit packing, interleaved weight
    // blocks, popcount kernels, masked pooling) against a plain float
    // implementation of the same sign-quantization contract — exact
    // equality on every topology, both standalone and dispatched
    // through EngineMode::Binary on the SC engine.
    for (uint64_t c = 0; c < kCases; ++c) {
        FuzzTopology t = randomTopology(c);
        nn::Network net = nn::buildTopology(t.spec, t.pooling);
        core::ScNetwork sc(net, t.cfg);

        const nn::Tensor img =
            randomImage(t.spec.in_h, t.spec.in_w, 500 + c);
        const std::vector<double> oracle =
            floatSignOracle(net, sc.plan(), t.pooling, img);

        std::vector<double> scores;
        const size_t pred = sc.binaryNet().predict(img, &scores);
        ASSERT_EQ(scores.size(), oracle.size()) << "case=" << c;
        EXPECT_EQ(scores, oracle) << "case=" << c;
        EXPECT_EQ(pred,
                  static_cast<size_t>(std::distance(
                      oracle.begin(),
                      std::max_element(oracle.begin(), oracle.end()))))
            << "case=" << c;

        // Engine dispatch: EngineMode::Binary must hand back exactly
        // the backend's result (seeds are ignored — vary one to pin
        // the determinism down).
        core::PredictOptions popts;
        popts.mode = core::EngineMode::Binary;
        core::ForwardInfo info;
        EXPECT_EQ(sc.predictWith(img, 123 + c, popts, nullptr, &info),
                  pred)
            << "case=" << c;
        EXPECT_EQ(info.scores, oracle) << "case=" << c;
        EXPECT_EQ(info.effective_bits, 1u) << "case=" << c;
        EXPECT_FALSE(info.early_exit) << "case=" << c;
    }
}

TEST(TopologyFuzz, BinaryForwardBatchIsThreadCountInvariant)
{
    // Binary batches take the deterministic per-image loop (never the
    // SC batch driver), so predictions and scores are invariant to the
    // thread-pool size and to batching at all.
    FuzzTopology t = randomTopology(5);
    nn::Network net = nn::buildTopology(t.spec, t.pooling);
    core::ScNetwork sc(net, t.cfg);

    std::vector<nn::Tensor> images;
    for (size_t i = 0; i < 5; ++i)
        images.push_back(
            randomImage(t.spec.in_h, t.spec.in_w, 300 + i));

    core::PredictOptions popts;
    popts.mode = core::EngineMode::Binary;
    EXPECT_FALSE(
        core::ScNetwork::batchKernelEligible(popts, images.size()));

    ThreadPool one(1), three(3);
    std::vector<core::ForwardInfo> ia, ib;
    const auto a = sc.forwardBatch(images, 42, popts, &one, &ia);
    const auto b = sc.forwardBatch(images, 42, popts, &three, &ib);
    EXPECT_EQ(a, b);
    for (size_t i = 0; i < images.size(); ++i) {
        EXPECT_EQ(ia[i].scores, ib[i].scores) << "image=" << i;
        std::vector<double> direct;
        EXPECT_EQ(a[i], sc.binaryNet().predict(images[i], &direct))
            << "image=" << i;
        EXPECT_EQ(ia[i].scores, direct) << "image=" << i;
    }
}

TEST(TopologyFuzz, BatchedForwardIsThreadCountInvariantOffLeNet)
{
    // forwardBatch on a non-LeNet topology: predictions must be
    // identical for any pool size and must match per-image predict()
    // at the batch seed schedule (seed + i * 7919).
    FuzzTopology t = randomTopology(3);
    nn::Network net = nn::buildTopology(t.spec, t.pooling);
    core::ScNetwork sc(net, t.cfg);

    std::vector<nn::Tensor> images;
    for (size_t i = 0; i < 5; ++i)
        images.push_back(
            randomImage(t.spec.in_h, t.spec.in_w, 700 + i));

    ThreadPool one(1), three(3);
    const auto a = sc.forwardBatch(images, 42, &one);
    const auto b = sc.forwardBatch(images, 42, &three);
    EXPECT_EQ(a, b);
    for (size_t i = 0; i < images.size(); ++i)
        EXPECT_EQ(a[i], sc.predict(images[i], 42 + i * 7919))
            << "image=" << i;
}

} // namespace
} // namespace scdcnn
