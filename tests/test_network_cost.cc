/**
 * @file
 * Tests for the whole-network cost rollup (Table 6 / Table 7 metrics).
 */

#include <gtest/gtest.h>

#include "hw/network_cost.h"

namespace scdcnn {
namespace hw {
namespace {

using blocks::FebKind;

Lenet5HwConfig
makeConfig(FebKind k0, FebKind k1, FebKind k2, size_t len)
{
    Lenet5HwConfig cfg;
    cfg.layer_kinds = {k0, k1, k2};
    cfg.bitstream_len = len;
    return cfg;
}

TEST(Lenet5Layers, PaperTopology)
{
    auto layers = lenet5Layers(makeConfig(FebKind::ApcAvgBtanh,
                                          FebKind::ApcAvgBtanh,
                                          FebKind::ApcAvgBtanh, 1024));
    ASSERT_EQ(layers.size(), 4u);
    // 784-11520-2880-3200-800-500-10: 2880 = 20*12*12 pooled outputs.
    EXPECT_EQ(layers[0].n_blocks, 2880u);
    EXPECT_EQ(layers[0].n_inputs, 26u);
    EXPECT_EQ(layers[0].pool_size, 4u);
    // 800 = 50*4*4 pooled outputs of conv2.
    EXPECT_EQ(layers[1].n_blocks, 800u);
    EXPECT_EQ(layers[1].n_inputs, 501u);
    // FC 800 -> 500 and 500 -> 10.
    EXPECT_EQ(layers[2].n_blocks, 500u);
    EXPECT_EQ(layers[2].n_inputs, 801u);
    EXPECT_EQ(layers[3].n_blocks, 10u);
    EXPECT_TRUE(layers[3].binary_output);
}

TEST(Lenet5Layers, WeightCountsMatchTopology)
{
    auto layers = lenet5Layers(makeConfig(FebKind::ApcAvgBtanh,
                                          FebKind::ApcAvgBtanh,
                                          FebKind::ApcAvgBtanh, 1024));
    EXPECT_EQ(layers[0].n_weights, 520u);
    EXPECT_EQ(layers[1].n_weights, 25050u);
    EXPECT_EQ(layers[2].n_weights, 400500u);
    EXPECT_EQ(layers[3].n_weights, 5010u);
}

TEST(NetworkCost, DelayIsFiveNsPerCycle)
{
    // Table 6: delay = 5 ns * L exactly, for every configuration.
    for (size_t len : {256u, 512u, 1024u}) {
        auto cfg = makeConfig(FebKind::MuxAvgStanh, FebKind::ApcAvgBtanh,
                              FebKind::ApcAvgBtanh, len);
        auto cost = networkCost(lenet5Layers(cfg), cfg);
        EXPECT_DOUBLE_EQ(cost.delayNs(), 5.0 * static_cast<double>(len));
    }
}

TEST(NetworkCost, ThroughputMatchesPaperAtL256)
{
    // 1 / 1280 ns = 781250 images/s (the paper's headline).
    auto cfg = makeConfig(FebKind::MuxAvgStanh, FebKind::ApcAvgBtanh,
                          FebKind::ApcAvgBtanh, 256);
    auto cost = networkCost(lenet5Layers(cfg), cfg);
    EXPECT_NEAR(cost.throughputImagesPerSec(), 781250.0, 1.0);
}

TEST(NetworkCost, EnergyIsPowerTimesDelay)
{
    auto cfg = makeConfig(FebKind::ApcMaxBtanh, FebKind::ApcMaxBtanh,
                          FebKind::ApcMaxBtanh, 512);
    auto cost = networkCost(lenet5Layers(cfg), cfg);
    EXPECT_NEAR(cost.energyUj(),
                cost.powerW() * cost.delayNs() * 1e-3, 1e-9);
}

TEST(NetworkCost, MoreApcLayersCostMoreAreaAndPower)
{
    // Table 6 ordering: configurations with more APC-based feature
    // extraction blocks are larger and hungrier.
    auto mux_heavy = makeConfig(FebKind::MuxMaxStanh, FebKind::MuxMaxStanh,
                                FebKind::ApcMaxBtanh, 1024);
    auto apc_heavy = makeConfig(FebKind::ApcMaxBtanh, FebKind::ApcMaxBtanh,
                                FebKind::ApcMaxBtanh, 1024);
    auto c_mux = networkCost(lenet5Layers(mux_heavy), mux_heavy);
    auto c_apc = networkCost(lenet5Layers(apc_heavy), apc_heavy);
    EXPECT_LT(c_mux.areaMm2(), c_apc.areaMm2());
    EXPECT_LT(c_mux.powerW(), c_apc.powerW());
}

TEST(NetworkCost, AreaInPaperBand)
{
    // Table 6 spans 17.0 .. 36.4 mm^2; our structural model must land
    // in the same regime (documented tolerance: within ~2x).
    auto cfg = makeConfig(FebKind::MuxAvgStanh, FebKind::ApcAvgBtanh,
                          FebKind::ApcAvgBtanh, 1024);
    auto cost = networkCost(lenet5Layers(cfg), cfg);
    EXPECT_GT(cost.areaMm2(), 8.0);
    EXPECT_LT(cost.areaMm2(), 40.0);
}

TEST(NetworkCost, PowerInPaperBand)
{
    // Table 6 spans 1.53 .. 3.53 W.
    auto cfg = makeConfig(FebKind::MuxAvgStanh, FebKind::ApcAvgBtanh,
                          FebKind::ApcAvgBtanh, 256);
    auto cost = networkCost(lenet5Layers(cfg), cfg);
    EXPECT_GT(cost.powerW(), 0.7);
    EXPECT_LT(cost.powerW(), 7.0);
}

TEST(NetworkCost, ShorterStreamsCutEnergyProportionally)
{
    auto c1024 = makeConfig(FebKind::ApcAvgBtanh, FebKind::ApcAvgBtanh,
                            FebKind::ApcAvgBtanh, 1024);
    auto c256 = makeConfig(FebKind::ApcAvgBtanh, FebKind::ApcAvgBtanh,
                           FebKind::ApcAvgBtanh, 256);
    double e1024 = networkCost(lenet5Layers(c1024), c1024).energyUj();
    double e256 = networkCost(lenet5Layers(c256), c256).energyUj();
    EXPECT_NEAR(e1024 / e256, 4.0, 0.25);
}

TEST(NetworkCost, EfficiencyMetricsConsistent)
{
    auto cfg = makeConfig(FebKind::MuxAvgStanh, FebKind::ApcAvgBtanh,
                          FebKind::ApcAvgBtanh, 256);
    auto cost = networkCost(lenet5Layers(cfg), cfg);
    EXPECT_NEAR(cost.areaEfficiency(),
                cost.throughputImagesPerSec() / cost.areaMm2(), 1e-6);
    EXPECT_NEAR(cost.energyEfficiency(),
                cost.throughputImagesPerSec() / cost.powerW(), 1e-6);
}

TEST(NetworkCost, WeightPrecisionShrinksSram)
{
    auto high = makeConfig(FebKind::ApcAvgBtanh, FebKind::ApcAvgBtanh,
                           FebKind::ApcAvgBtanh, 1024);
    high.weight_bits = {64, 64, 64};
    auto low = high;
    low.weight_bits = {7, 7, 6};
    double a_high =
        networkCost(lenet5Layers(high), high).sram.totalAreaUm2();
    double a_low = networkCost(lenet5Layers(low), low).sram.totalAreaUm2();
    EXPECT_GT(a_high / a_low, 6.0);
}

} // namespace
} // namespace hw
} // namespace scdcnn
