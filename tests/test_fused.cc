/**
 * @file
 * Tests for the fused word-parallel kernels (sc/fused.h) against their
 * bit-serial reference oracles, and for the determinism contract of
 * the batched network engine: same seed => same predictions, for any
 * engine mode and any thread count.
 */

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "blocks/inner_product.h"
#include "common/thread_pool.h"
#include "core/sc_network.h"
#include "nn/dataset.h"
#include "nn/network.h"
#include "sc/counter.h"
#include "sc/fused.h"
#include "sc/ops.h"
#include "sc/sng.h"

namespace scdcnn {
namespace {

/** Random operand pair set: n streams of length len each. */
struct OperandSet
{
    std::vector<sc::Bitstream> xs, ws;
    std::vector<const sc::Bitstream *> xp, wp;

    OperandSet(size_t n, size_t len, uint64_t seed)
    {
        sc::SngBank bank(seed);
        sc::SplitMix64 vals(seed ^ 0xABCD);
        for (size_t i = 0; i < n; ++i) {
            xs.push_back(bank.bipolar(vals.nextInRange(-1, 1), len));
            ws.push_back(bank.bipolar(vals.nextInRange(-1, 1), len));
        }
        for (size_t i = 0; i < n; ++i) {
            xp.push_back(&xs[i]);
            wp.push_back(&ws[i]);
        }
    }
};

/** Sweep odd/even word counts, partial tails, and fan-ins around the
 *  APC parity-line cutoff. */
class FusedVsReference
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>>
{
};

TEST_P(FusedVsReference, ProductCountsBitExact)
{
    auto [n, len] = GetParam();
    OperandSet ops(n, len, 1000 + n * 131 + len);
    for (bool approximate : {false, true}) {
        std::vector<uint16_t> fused;
        sc::fusedProductCounts(ops.xp, ops.wp, approximate, fused);
        EXPECT_EQ(fused,
                  sc::referenceProductCounts(ops.xp, ops.wp, approximate))
            << "n=" << n << " len=" << len << " approx=" << approximate;
    }
}

TEST_P(FusedVsReference, MuxProductBitExact)
{
    auto [n, len] = GetParam();
    OperandSet ops(n, len, 2000 + n * 131 + len);
    sc::Xoshiro256ss rng(99 + n);
    std::vector<uint16_t> selects;
    sc::fillMuxSelects(n, len, rng, selects);
    sc::Bitstream fused;
    sc::fusedMuxProduct(ops.xp, ops.wp, selects, fused);
    EXPECT_EQ(fused, sc::referenceMuxProduct(ops.xp, ops.wp, selects))
        << "n=" << n << " len=" << len;
}

TEST_P(FusedVsReference, ProductCountTotalMatches)
{
    auto [n, len] = GetParam();
    OperandSet ops(n, len, 3000 + n * 131 + len);
    for (bool approximate : {false, true}) {
        EXPECT_EQ(
            sc::fusedProductCountTotal(ops.xp, ops.wp, approximate),
            sc::referenceProductCountTotal(ops.xp, ops.wp, approximate))
            << "n=" << n << " len=" << len << " approx=" << approximate;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FusedVsReference,
    ::testing::Combine(
        // Fan-ins below/at/above the 4-line parity cutoff and past one
        // carry-save plane's worth of lines.
        ::testing::Values(1, 3, 4, 5, 26, 151),
        // Lengths around the 64-bit word boundary and realistic L.
        ::testing::Values(1, 63, 64, 65, 300, 1024)));

/** A filter block plus the matching plain per-filter views. */
struct BlockSet
{
    OperandSet ops;         //!< xs shared window; ws reused as filters
    sc::InterleavedWeightArena arena;
    std::vector<std::vector<sc::Bitstream>> filter_ws;

    BlockSet(size_t taps, size_t len, size_t filters, uint64_t seed)
        : ops(taps, len, seed)
    {
        sc::SngBank bank(seed ^ 0xF117E5);
        sc::SplitMix64 vals(seed ^ 0xB10C);
        arena.reset(filters, taps, len);
        filter_ws.resize(filters);
        for (size_t f = 0; f < filters; ++f) {
            for (size_t t = 0; t < taps; ++t) {
                filter_ws[f].push_back(
                    bank.bipolar(vals.nextInRange(-1, 1), len));
                arena.assign(f, t, filter_ws[f].back());
            }
        }
    }
};

/** (taps, len, filters): fan-ins across the compressor-tree chunk
 *  size, lengths across word/segment boundaries, ragged lane counts. */
class MultiVsReference
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>>
{
};

TEST_P(MultiVsReference, ProductCountsMultiBitExact)
{
    auto [taps, len, filters] = GetParam();
    BlockSet set(taps, len, filters, 4000 + taps * 131 + len + filters);
    const size_t n_words = (len + 63) / 64;
    const auto xs = sc::toViews(set.ops.xs);
    for (size_t g = 0; g < set.arena.groups(); ++g) {
        const sc::WeightBlockView block = set.arena.block(g);
        std::vector<uint16_t> fused(block.lanes * len, 0xAAAA);
        std::vector<uint16_t> ref(block.lanes * len, 0x5555);
        sc::fusedProductCountsMulti(xs, block, /*approximate=*/true, 0,
                                    n_words, fused.data(), len);
        sc::referenceProductCountsMulti(xs, block, /*approximate=*/true,
                                        0, n_words, ref.data(), len);
        EXPECT_EQ(fused, ref) << "group " << g;
        // Layout round-trip: each lane equals the per-filter kernel on
        // the plain (non-interleaved) streams.
        for (size_t f = 0; f < block.lanes; ++f) {
            std::vector<uint16_t> plain;
            sc::fusedProductCounts(sc::toViews(set.ops.xs),
                                   sc::toViews(
                                       set.filter_ws[g * sc::kFilterLanes +
                                                     f]),
                                   /*approximate=*/true, plain);
            const std::vector<uint16_t> lane(
                fused.begin() + static_cast<ptrdiff_t>(f * len),
                fused.begin() + static_cast<ptrdiff_t>((f + 1) * len));
            EXPECT_EQ(lane, plain) << "group " << g << " lane " << f;
        }
    }
}

TEST_P(MultiVsReference, RangedSegmentsConcatenateToWholeStream)
{
    auto [taps, len, filters] = GetParam();
    BlockSet set(taps, len, filters, 5000 + taps * 131 + len + filters);
    const size_t n_words = (len + 63) / 64;
    const auto xs = sc::toViews(set.ops.xs);
    const sc::WeightBlockView block = set.arena.block(0);

    std::vector<uint16_t> whole(block.lanes * len);
    sc::fusedProductCountsMulti(xs, block, /*approximate=*/true, 0,
                                n_words, whole.data(), len);
    // Word-range partitions, including one that does not divide the
    // word count, must reproduce the whole-stream counts exactly.
    for (size_t seg_words : {size_t{1}, size_t{2}, size_t{3}}) {
        std::vector<uint16_t> stitched(block.lanes * len);
        for (size_t w0 = 0; w0 < n_words; w0 += seg_words) {
            const size_t w1 = std::min(w0 + seg_words, n_words);
            const size_t n_cycles = std::min(w1 * 64, len) - w0 * 64;
            std::vector<uint16_t> part(block.lanes * n_cycles);
            sc::fusedProductCountsMulti(xs, block, /*approximate=*/true,
                                        w0, w1, part.data(), n_cycles);
            for (size_t f = 0; f < block.lanes; ++f)
                std::copy(part.begin() +
                              static_cast<ptrdiff_t>(f * n_cycles),
                          part.begin() +
                              static_cast<ptrdiff_t>((f + 1) * n_cycles),
                          stitched.begin() +
                              static_cast<ptrdiff_t>(f * len + w0 * 64));
        }
        EXPECT_EQ(stitched, whole) << "seg_words " << seg_words;
    }
}

TEST_P(MultiVsReference, MuxProductMultiBitExact)
{
    auto [taps, len, filters] = GetParam();
    BlockSet set(taps, len, filters, 6000 + taps * 131 + len + filters);
    const size_t n_words = (len + 63) / 64;
    const auto xs = sc::toViews(set.ops.xs);
    const sc::WeightBlockView block = set.arena.block(0);
    sc::Xoshiro256ss rng(41 + taps);
    std::vector<uint16_t> selects;
    sc::fillMuxSelects(taps, len, rng, selects);

    std::vector<uint64_t> fused(block.lanes * n_words, 0xDEAD);
    std::vector<uint64_t> ref(block.lanes * n_words, 0xBEEF);
    sc::fusedMuxProductMulti(xs, block, selects, 0, n_words, fused.data(),
                             n_words);
    sc::referenceMuxProductMulti(xs, block, selects, 0, n_words,
                                 ref.data(), n_words);
    EXPECT_EQ(fused, ref);
    // Shared selects across lanes: lane f equals the single-filter MUX
    // product against filter f's plain streams.
    for (size_t f = 0; f < block.lanes; ++f) {
        sc::Bitstream single;
        sc::fusedMuxProduct(sc::toViews(set.ops.xs),
                            sc::toViews(set.filter_ws[f]), selects,
                            single);
        for (size_t w = 0; w < n_words; ++w)
            EXPECT_EQ(fused[f * n_words + w], single.words()[w])
                << "lane " << f << " word " << w;
    }
}

TEST_P(MultiVsReference, ProductCountTotalRangePartitionsExactly)
{
    auto [taps, len, filters] = GetParam();
    OperandSet ops(taps, len, 7000 + taps * 131 + len + filters);
    const size_t n_words = (len + 63) / 64;
    sc::ProductCountAccum whole;
    sc::fusedProductCountTotalRange(sc::toViews(ops.xs),
                                    sc::toViews(ops.ws), 0, n_words,
                                    whole);
    sc::ProductCountAccum ref;
    sc::referenceProductCountTotalRange(sc::toViews(ops.xs),
                                        sc::toViews(ops.ws), 0, n_words,
                                        ref);
    EXPECT_EQ(whole.total, ref.total);
    EXPECT_EQ(whole.exact_lsb_ones, ref.exact_lsb_ones);
    EXPECT_EQ(whole.approx_lsb_ones, ref.approx_lsb_ones);
    for (bool approximate : {false, true})
        EXPECT_EQ(whole.value(approximate),
                  sc::fusedProductCountTotal(ops.xp, ops.wp, approximate));
    // A 3-word partition (not dividing most word counts) sums to the
    // whole-stream partials.
    sc::ProductCountAccum parts;
    for (size_t w0 = 0; w0 < n_words; w0 += 3)
        sc::fusedProductCountTotalRange(sc::toViews(ops.xs),
                                        sc::toViews(ops.ws), w0,
                                        std::min(w0 + 3, n_words), parts);
    EXPECT_EQ(parts.total, whole.total);
    EXPECT_EQ(parts.exact_lsb_ones, whole.exact_lsb_ones);
    EXPECT_EQ(parts.approx_lsb_ones, whole.approx_lsb_ones);
}

TEST(MultiKernels, EmptyRangeAtTheRaggedTailIsANoOp)
{
    // begin == end == wordCount on a non-word-aligned length: the
    // clamped cycle count must be zero, not an underflow that sweeps
    // the output buffer.
    BlockSet set(3, 300, 2, 99);
    const size_t n_words = 5;
    const auto xs = sc::toViews(set.ops.xs);
    const sc::WeightBlockView block = set.arena.block(0);
    std::vector<uint16_t> out(8, 0x1234);
    sc::fusedProductCountsMulti(xs, block, true, n_words, n_words,
                                out.data(), 4);
    sc::referenceProductCountsMulti(xs, block, true, n_words, n_words,
                                    out.data(), 4);
    std::vector<uint64_t> words(4, 0x77);
    sc::fusedMuxProductMulti(xs, block, {}, n_words, n_words,
                             words.data(), 2);
    for (uint16_t v : out)
        EXPECT_EQ(v, 0x1234);
    for (uint64_t w : words)
        EXPECT_EQ(w, 0x77u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MultiVsReference,
    ::testing::Combine(
        // Fan-ins below/at/above the 16-line compressor chunk and the
        // parity cutoff, plus large blocked-layer shapes.
        ::testing::Values(1, 3, 15, 16, 17, 40, 151),
        // Lengths around word and 4-word-segment boundaries.
        ::testing::Values(63, 64, 200, 256, 300),
        // Full blocks, ragged last block, single lane.
        ::testing::Values(1, 4, 6)));

TEST(FusedMuxBlock, MatchesMaterializedProductsBitExact)
{
    // The fused block-level MUX path must consume the RNG exactly like
    // the materialize-then-muxAdd path and produce the same stream.
    OperandSet ops(25, 512, 77);
    auto products = blocks::productStreams(ops.xs, ops.ws);
    sc::Xoshiro256ss sel_a(1234), sel_b(1234);
    sc::Bitstream classic =
        blocks::MuxInnerProduct::sumProducts(products, sel_a);
    sc::Bitstream fused =
        blocks::MuxInnerProduct::sumProductsFused(ops.xp, ops.wp, sel_b);
    EXPECT_EQ(classic, fused);
    // Generator states must coincide afterwards too.
    EXPECT_EQ(sel_a.next(), sel_b.next());
}

TEST(FusedCounterBlock, MatchesMaterializedProductsBitExact)
{
    OperandSet ops(26, 300, 78);
    auto products = blocks::productStreams(ops.xs, ops.ws);
    EXPECT_EQ(blocks::ApcInnerProduct::countsFused(ops.xp, ops.wp, true),
              sc::ApproxParallelCounter::counts(products));
    EXPECT_EQ(blocks::ApcInnerProduct::countsFused(ops.xp, ops.wp, false),
              sc::ParallelCounter::counts(products));
}

/** An untrained mini network is enough for engine equivalence: the
 *  kernels see arbitrary weight streams either way. */
core::ScNetwork
makeMiniScNet(nn::PoolingMode pooling, core::AdderKind first_adder)
{
    nn::Network net = nn::buildMiniLeNet(pooling, 21);
    core::ScNetworkConfig cfg;
    cfg.pooling = pooling;
    cfg.layer_adders = {first_adder, core::AdderKind::Apc,
                        core::AdderKind::Apc};
    cfg.bitstream_len = 256;
    return core::ScNetwork(net, cfg);
}

TEST(EngineModes, FusedMatchesReferencePredictions)
{
    // Covers all four FEB kinds: MUX/APC crossed with avg/max pooling.
    const struct
    {
        nn::PoolingMode pooling;
        core::AdderKind adder;
    } cases[] = {
        {nn::PoolingMode::Average, core::AdderKind::Mux},
        {nn::PoolingMode::Max, core::AdderKind::Mux},
        {nn::PoolingMode::Average, core::AdderKind::Apc},
        {nn::PoolingMode::Max, core::AdderKind::Apc},
    };
    for (const auto &c : cases) {
        core::ScNetwork sc_net = makeMiniScNet(c.pooling, c.adder);
        for (uint64_t seed = 1; seed <= 3; ++seed) {
            nn::Tensor img = nn::DigitDataset::render(seed % 10, seed);
            sc_net.setEngineMode(core::EngineMode::Fused);
            const size_t fused = sc_net.predict(img, seed);
            sc_net.setEngineMode(core::EngineMode::Reference);
            const size_t reference = sc_net.predict(img, seed);
            EXPECT_EQ(fused, reference) << "seed=" << seed;
        }
    }
}

TEST(ForwardBatch, DeterministicAcrossThreadCounts)
{
    core::ScNetwork sc_net =
        makeMiniScNet(nn::PoolingMode::Average, core::AdderKind::Apc);
    std::vector<nn::Tensor> images;
    for (size_t i = 0; i < 8; ++i)
        images.push_back(nn::DigitDataset::render(i % 10, 50 + i));

    ThreadPool serial(1), quad(4);
    const auto preds1 = sc_net.forwardBatch(images, 42, &serial);
    const auto preds4 = sc_net.forwardBatch(images, 42, &quad);
    const auto preds_global = sc_net.forwardBatch(images, 42);
    EXPECT_EQ(preds1, preds4);
    EXPECT_EQ(preds1, preds_global);

    // The batch must equal per-image predict() at the batch seeds.
    for (size_t i = 0; i < images.size(); ++i)
        EXPECT_EQ(preds1[i], sc_net.predict(images[i], 42 + i * 7919));
}

TEST(ForwardBatch, EmptyBatchIsFine)
{
    core::ScNetwork sc_net =
        makeMiniScNet(nn::PoolingMode::Average, core::AdderKind::Apc);
    EXPECT_TRUE(sc_net.forwardBatch({}, 1).empty());
}

} // namespace
} // namespace scdcnn
