/**
 * @file
 * Tests for the fused word-parallel kernels (sc/fused.h) against their
 * bit-serial reference oracles, and for the determinism contract of
 * the batched network engine: same seed => same predictions, for any
 * engine mode and any thread count.
 */

#include <vector>

#include <gtest/gtest.h>

#include "blocks/inner_product.h"
#include "common/thread_pool.h"
#include "core/sc_network.h"
#include "nn/dataset.h"
#include "nn/network.h"
#include "sc/counter.h"
#include "sc/fused.h"
#include "sc/ops.h"
#include "sc/sng.h"

namespace scdcnn {
namespace {

/** Random operand pair set: n streams of length len each. */
struct OperandSet
{
    std::vector<sc::Bitstream> xs, ws;
    std::vector<const sc::Bitstream *> xp, wp;

    OperandSet(size_t n, size_t len, uint64_t seed)
    {
        sc::SngBank bank(seed);
        sc::SplitMix64 vals(seed ^ 0xABCD);
        for (size_t i = 0; i < n; ++i) {
            xs.push_back(bank.bipolar(vals.nextInRange(-1, 1), len));
            ws.push_back(bank.bipolar(vals.nextInRange(-1, 1), len));
        }
        for (size_t i = 0; i < n; ++i) {
            xp.push_back(&xs[i]);
            wp.push_back(&ws[i]);
        }
    }
};

/** Sweep odd/even word counts, partial tails, and fan-ins around the
 *  APC parity-line cutoff. */
class FusedVsReference
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>>
{
};

TEST_P(FusedVsReference, ProductCountsBitExact)
{
    auto [n, len] = GetParam();
    OperandSet ops(n, len, 1000 + n * 131 + len);
    for (bool approximate : {false, true}) {
        std::vector<uint16_t> fused;
        sc::fusedProductCounts(ops.xp, ops.wp, approximate, fused);
        EXPECT_EQ(fused,
                  sc::referenceProductCounts(ops.xp, ops.wp, approximate))
            << "n=" << n << " len=" << len << " approx=" << approximate;
    }
}

TEST_P(FusedVsReference, MuxProductBitExact)
{
    auto [n, len] = GetParam();
    OperandSet ops(n, len, 2000 + n * 131 + len);
    sc::Xoshiro256ss rng(99 + n);
    std::vector<uint16_t> selects;
    sc::fillMuxSelects(n, len, rng, selects);
    sc::Bitstream fused;
    sc::fusedMuxProduct(ops.xp, ops.wp, selects, fused);
    EXPECT_EQ(fused, sc::referenceMuxProduct(ops.xp, ops.wp, selects))
        << "n=" << n << " len=" << len;
}

TEST_P(FusedVsReference, ProductCountTotalMatches)
{
    auto [n, len] = GetParam();
    OperandSet ops(n, len, 3000 + n * 131 + len);
    for (bool approximate : {false, true}) {
        EXPECT_EQ(
            sc::fusedProductCountTotal(ops.xp, ops.wp, approximate),
            sc::referenceProductCountTotal(ops.xp, ops.wp, approximate))
            << "n=" << n << " len=" << len << " approx=" << approximate;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FusedVsReference,
    ::testing::Combine(
        // Fan-ins below/at/above the 4-line parity cutoff and past one
        // carry-save plane's worth of lines.
        ::testing::Values(1, 3, 4, 5, 26, 151),
        // Lengths around the 64-bit word boundary and realistic L.
        ::testing::Values(1, 63, 64, 65, 300, 1024)));

TEST(FusedMuxBlock, MatchesMaterializedProductsBitExact)
{
    // The fused block-level MUX path must consume the RNG exactly like
    // the materialize-then-muxAdd path and produce the same stream.
    OperandSet ops(25, 512, 77);
    auto products = blocks::productStreams(ops.xs, ops.ws);
    sc::Xoshiro256ss sel_a(1234), sel_b(1234);
    sc::Bitstream classic =
        blocks::MuxInnerProduct::sumProducts(products, sel_a);
    sc::Bitstream fused =
        blocks::MuxInnerProduct::sumProductsFused(ops.xp, ops.wp, sel_b);
    EXPECT_EQ(classic, fused);
    // Generator states must coincide afterwards too.
    EXPECT_EQ(sel_a.next(), sel_b.next());
}

TEST(FusedCounterBlock, MatchesMaterializedProductsBitExact)
{
    OperandSet ops(26, 300, 78);
    auto products = blocks::productStreams(ops.xs, ops.ws);
    EXPECT_EQ(blocks::ApcInnerProduct::countsFused(ops.xp, ops.wp, true),
              sc::ApproxParallelCounter::counts(products));
    EXPECT_EQ(blocks::ApcInnerProduct::countsFused(ops.xp, ops.wp, false),
              sc::ParallelCounter::counts(products));
}

/** An untrained mini network is enough for engine equivalence: the
 *  kernels see arbitrary weight streams either way. */
core::ScNetwork
makeMiniScNet(nn::PoolingMode pooling, core::AdderKind first_adder)
{
    nn::Network net = nn::buildMiniLeNet(pooling, 21);
    core::ScNetworkConfig cfg;
    cfg.pooling = pooling;
    cfg.layer_adders = {first_adder, core::AdderKind::Apc,
                        core::AdderKind::Apc};
    cfg.bitstream_len = 256;
    return core::ScNetwork(net, cfg);
}

TEST(EngineModes, FusedMatchesReferencePredictions)
{
    // Covers all four FEB kinds: MUX/APC crossed with avg/max pooling.
    const struct
    {
        nn::PoolingMode pooling;
        core::AdderKind adder;
    } cases[] = {
        {nn::PoolingMode::Average, core::AdderKind::Mux},
        {nn::PoolingMode::Max, core::AdderKind::Mux},
        {nn::PoolingMode::Average, core::AdderKind::Apc},
        {nn::PoolingMode::Max, core::AdderKind::Apc},
    };
    for (const auto &c : cases) {
        core::ScNetwork sc_net = makeMiniScNet(c.pooling, c.adder);
        for (uint64_t seed = 1; seed <= 3; ++seed) {
            nn::Tensor img = nn::DigitDataset::render(seed % 10, seed);
            sc_net.setEngineMode(core::EngineMode::Fused);
            const size_t fused = sc_net.predict(img, seed);
            sc_net.setEngineMode(core::EngineMode::Reference);
            const size_t reference = sc_net.predict(img, seed);
            EXPECT_EQ(fused, reference) << "seed=" << seed;
        }
    }
}

TEST(ForwardBatch, DeterministicAcrossThreadCounts)
{
    core::ScNetwork sc_net =
        makeMiniScNet(nn::PoolingMode::Average, core::AdderKind::Apc);
    std::vector<nn::Tensor> images;
    for (size_t i = 0; i < 8; ++i)
        images.push_back(nn::DigitDataset::render(i % 10, 50 + i));

    ThreadPool serial(1), quad(4);
    const auto preds1 = sc_net.forwardBatch(images, 42, &serial);
    const auto preds4 = sc_net.forwardBatch(images, 42, &quad);
    const auto preds_global = sc_net.forwardBatch(images, 42);
    EXPECT_EQ(preds1, preds4);
    EXPECT_EQ(preds1, preds_global);

    // The batch must equal per-image predict() at the batch seeds.
    for (size_t i = 0; i < images.size(); ++i)
        EXPECT_EQ(preds1[i], sc_net.predict(images[i], 42 + i * 7919));
}

TEST(ForwardBatch, EmptyBatchIsFine)
{
    core::ScNetwork sc_net =
        makeMiniScNet(nn::PoolingMode::Average, core::AdderKind::Apc);
    EXPECT_TRUE(sc_net.forwardBatch({}, 1).empty());
}

} // namespace
} // namespace scdcnn
