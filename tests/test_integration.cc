/**
 * @file
 * Cross-module integration and property tests: consistency between the
 * stream-level blocks and the network engine, the pooling counter
 * modes, signed average pooling, and the fused product-count paths.
 */

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "blocks/feature_block.h"
#include "blocks/inner_product.h"
#include "blocks/pooling.h"
#include "core/sc_network.h"
#include "nn/trainer.h"
#include "sc/counter.h"
#include "sc/ops.h"
#include "sc/sng.h"

namespace scdcnn {
namespace {

TEST(FusedProductCounts, MatchExplicitXnorThenCount)
{
    sc::SngBank bank(11);
    sc::SplitMix64 vals(3);
    std::vector<sc::Bitstream> xs, ws;
    for (int i = 0; i < 20; ++i) {
        xs.push_back(bank.bipolar(vals.nextInRange(-1, 1), 300));
        ws.push_back(bank.bipolar(vals.nextInRange(-1, 1), 300));
    }
    std::vector<const sc::Bitstream *> xp, wp;
    std::vector<sc::Bitstream> products;
    for (int i = 0; i < 20; ++i) {
        xp.push_back(&xs[i]);
        wp.push_back(&ws[i]);
        products.push_back(sc::xnorMultiply(xs[i], ws[i]));
    }
    EXPECT_EQ(sc::ParallelCounter::productCounts(xp, wp),
              sc::ParallelCounter::counts(products));
    EXPECT_EQ(sc::ApproxParallelCounter::productCounts(xp, wp),
              sc::ApproxParallelCounter::counts(products));
}

TEST(FusedProductCounts, TailBitsDoNotLeak)
{
    // Length not a multiple of 64: XNOR(0,0)=1 must not count past L.
    sc::Bitstream a(70), b(70);
    std::vector<const sc::Bitstream *> xp = {&a}, wp = {&b};
    auto counts = sc::ParallelCounter::productCounts(xp, wp);
    ASSERT_EQ(counts.size(), 70u);
    uint64_t total = std::accumulate(counts.begin(), counts.end(),
                                     uint64_t{0});
    EXPECT_EQ(total, 70u); // every in-range cycle counts exactly 1
}

TEST(BinaryAveragePoolingSigned, TruncatesTowardZero)
{
    // counts (2,3,4,5) with n=8: signed values (-4,-2,0,2), sum -4,
    // /4 = -1 exactly. counts (5,5,5,2) -> (2,2,2,-4): sum 2 -> 0.
    std::vector<std::vector<uint16_t>> counts = {
        {2, 5}, {3, 5}, {4, 5}, {5, 2}};
    auto steps = blocks::binaryAveragePoolingSigned(counts, 8);
    ASSERT_EQ(steps.size(), 2u);
    EXPECT_EQ(steps[0], -1);
    EXPECT_EQ(steps[1], 0);
}

TEST(BinaryAveragePoolingSigned, UnbiasedAroundZero)
{
    // Symmetric counts give symmetric steps (no constant drift).
    sc::SngBank bank(21);
    std::vector<std::vector<uint16_t>> counts;
    for (int j = 0; j < 4; ++j) {
        std::vector<sc::Bitstream> lines;
        for (int i = 0; i < 16; ++i)
            lines.push_back(bank.bipolar(0.0, 4096));
        counts.push_back(sc::ParallelCounter::counts(lines));
    }
    auto steps = blocks::binaryAveragePoolingSigned(counts, 16);
    double mean = 0;
    for (int s : steps)
        mean += s;
    mean /= static_cast<double>(steps.size());
    EXPECT_NEAR(mean, 0.0, 0.15);
}

TEST(AccumulativeMaxPooling, ResolvesSmallSeparations)
{
    // Candidates separated by 0.04 in stream value: per-segment counts
    // cannot tell them apart, accumulated counters can.
    double err_reset = 0, err_accum = 0;
    const int trials = 15;
    for (int t = 0; t < trials; ++t) {
        sc::SngBank bank(400 + t);
        std::vector<sc::Bitstream> ins = {bank.bipolar(0.08, 2048),
                                          bank.bipolar(0.04, 2048),
                                          bank.bipolar(0.00, 2048),
                                          bank.bipolar(-0.04, 2048)};
        err_reset += std::abs(
            blocks::HardwareMaxPooling::compute(ins, 16, 0, false)
                .bipolar() - 0.08);
        err_accum += std::abs(
            blocks::HardwareMaxPooling::compute(ins, 16, 0, true)
                .bipolar() - 0.08);
    }
    EXPECT_LT(err_accum, err_reset);
}

TEST(AccumulativeMaxPooling, MatchesResetModeOnWellSeparatedInputs)
{
    // With large separations both modes find the max.
    sc::SngBank bank(31);
    std::vector<sc::Bitstream> ins = {bank.bipolar(0.9, 2048),
                                      bank.bipolar(-0.5, 2048),
                                      bank.bipolar(-0.2, 2048),
                                      bank.bipolar(0.1, 2048)};
    double reset =
        blocks::HardwareMaxPooling::compute(ins, 16, 0, false).bipolar();
    double accum =
        blocks::HardwareMaxPooling::compute(ins, 16, 0, true).bipolar();
    EXPECT_NEAR(reset, 0.9, 0.1);
    EXPECT_NEAR(accum, 0.9, 0.1);
}

TEST(BinaryMaxPoolingAccumulative, LocksOntoLargestSequence)
{
    // Two count sequences whose means differ by 0.5 per cycle.
    sc::SngBank bank(41);
    std::vector<std::vector<uint16_t>> counts;
    for (double v : {0.1, -0.1}) {
        std::vector<sc::Bitstream> lines;
        for (int i = 0; i < 8; ++i)
            lines.push_back(bank.bipolar(v, 2048));
        counts.push_back(sc::ParallelCounter::counts(lines));
    }
    auto pooled =
        blocks::BinaryMaxPooling::compute(counts, 16, 1, true);
    // Decode the pooled sequence: should be close to the larger
    // input's sum (8 * 0.1 = 0.8 in bipolar sum units).
    double total = 0;
    for (auto c : pooled)
        total += 2.0 * c - 8.0;
    EXPECT_NEAR(total / 2048.0, 0.8, 0.25);
}

TEST(ScNetworkIntegration, WeightCompensationKeepsLogitsAligned)
{
    // An SC network whose MUX layer attenuates by g must still rank
    // classes like the float network on easy inputs.
    nn::Dataset train = nn::DigitDataset::generate(1200, 50);
    nn::Network net = nn::buildMiniLeNet(nn::PoolingMode::Average, 9);
    nn::TrainConfig tc;
    tc.epochs = 4;
    nn::Trainer(net, tc).train(train);

    core::ScNetworkConfig cfg;
    cfg.pooling = nn::PoolingMode::Average;
    cfg.layer_adders = {core::AdderKind::Mux, core::AdderKind::Apc,
                        core::AdderKind::Apc};
    cfg.bitstream_len = 1024;
    core::ScNetwork sc_net(net, cfg);

    nn::Dataset test = nn::DigitDataset::generate(30, 51);
    size_t agree = 0;
    for (size_t i = 0; i < test.size(); ++i) {
        if (sc_net.predict(test.samples[i].image, 100 + i) ==
            net.predict(test.samples[i].image))
            ++agree;
    }
    // The SC network should agree with the float network on a clear
    // majority of inputs.
    EXPECT_GE(agree, test.size() * 2 / 3);
}

TEST(ScNetworkIntegration, QuantizationIsAppliedInsideTheEngine)
{
    // A 2-bit weight configuration must behave very differently from a
    // 10-bit one — evidence the Section 5.2 storage path is live.
    nn::Dataset train = nn::DigitDataset::generate(800, 60);
    nn::Network net = nn::buildMiniLeNet(nn::PoolingMode::Average, 10);
    nn::TrainConfig tc;
    tc.epochs = 3;
    nn::Trainer(net, tc).train(train);
    nn::Dataset test = nn::DigitDataset::generate(30, 61);

    core::ScNetworkConfig coarse;
    coarse.pooling = nn::PoolingMode::Average;
    coarse.bitstream_len = 512;
    coarse.weight_bits = {2, 2, 2};
    core::ScNetworkConfig fine = coarse;
    fine.weight_bits = {10, 10, 10};

    double err_coarse =
        core::ScNetwork(net, coarse).errorRate(test, test.size());
    double err_fine =
        core::ScNetwork(net, fine).errorRate(test, test.size());
    EXPECT_GE(err_coarse + 1e-9, err_fine);
}

TEST(FeatureBlockIntegration, MatchesScNetworkActivationOrdering)
{
    // The FEB-level APC-avg block and Btanh agree on saturation signs
    // for strongly positive/negative fields.
    blocks::FebConfig cfg;
    cfg.kind = blocks::FebKind::ApcAvgBtanh;
    cfg.n_inputs = 16;
    cfg.length = 1024;
    blocks::FeatureBlock feb(cfg);
    std::vector<std::vector<double>> xs(4, std::vector<double>(16, 0.8));
    std::vector<std::vector<double>> ws_pos(4,
                                            std::vector<double>(16, 0.8));
    std::vector<std::vector<double>> ws_neg(
        4, std::vector<double>(16, -0.8));
    EXPECT_GT(feb.evaluate(xs, ws_pos, 1), 0.8);
    EXPECT_LT(feb.evaluate(xs, ws_neg, 2), -0.8);
}

} // namespace
} // namespace scdcnn
