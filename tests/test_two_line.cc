/**
 * @file
 * Tests for the two-line (sign/magnitude) representation and its
 * non-scaled adder (Section 3.2, Figure 5(d)).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "sc/rng.h"
#include "sc/two_line.h"

namespace scdcnn {
namespace sc {
namespace {

TEST(TwoLine, PaperExampleValue)
{
    // The paper's example: M(-0.5)=10110001, S(-0.5)=11111111
    // represents (1/8) * sum (1-2S)M = -4/8 = -0.5.
    TwoLineStream s;
    s.mag = Bitstream::fromString("10110001");
    s.sign = Bitstream::fromString("11111111");
    EXPECT_DOUBLE_EQ(s.value(), -0.5);
}

TEST(TwoLine, DigitExtraction)
{
    TwoLineStream s;
    s.mag = Bitstream::fromString("101");
    s.sign = Bitstream::fromString("100");
    EXPECT_EQ(s.digit(0), -1);
    EXPECT_EQ(s.digit(1), 0);
    EXPECT_EQ(s.digit(2), 1);
}

/** Encoding sweep. */
class TwoLineEncode : public ::testing::TestWithParam<double>
{
};

TEST_P(TwoLineEncode, RoundTripsValue)
{
    const double x = GetParam();
    Xoshiro256ss rng(55);
    TwoLineStream s = encodeTwoLine(x, 1 << 15, rng);
    EXPECT_NEAR(s.value(), x, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Values, TwoLineEncode,
                         ::testing::Values(-1.0, -0.7, -0.5, -0.1, 0.0, 0.2,
                                           0.5, 0.9, 1.0));

TEST(TwoLineEncode, SaturatesOutOfRange)
{
    Xoshiro256ss rng(56);
    EXPECT_DOUBLE_EQ(encodeTwoLine(3.0, 4096, rng).value(), 1.0);
    EXPECT_DOUBLE_EQ(encodeTwoLine(-2.0, 4096, rng).value(), -1.0);
}

TEST(TwoLineMultiply, SignAndMagnitudeRules)
{
    Xoshiro256ss rng(57);
    TwoLineStream a = encodeTwoLine(-0.6, 1 << 15, rng);
    TwoLineStream b = encodeTwoLine(0.5, 1 << 15, rng);
    TwoLineStream p = twoLineMultiply(a, b);
    EXPECT_NEAR(p.value(), -0.3, 0.02);
}

TEST(TwoLineMultiply, PositiveTimesPositive)
{
    Xoshiro256ss rng(58);
    TwoLineStream a = encodeTwoLine(0.4, 1 << 15, rng);
    TwoLineStream b = encodeTwoLine(0.4, 1 << 15, rng);
    EXPECT_NEAR(twoLineMultiply(a, b).value(), 0.16, 0.02);
}

TEST(TwoLineAdder, ExactWhenSumWithinRange)
{
    // The non-scaled adder computes a+b (not (a+b)/2) when |a+b| <= 1.
    Xoshiro256ss rng(59);
    TwoLineStream a = encodeTwoLine(0.3, 1 << 15, rng);
    TwoLineStream b = encodeTwoLine(-0.5, 1 << 15, rng);
    TwoLineAdder adder;
    TwoLineStream sum = adder.add(a, b);
    EXPECT_NEAR(sum.value(), -0.2, 0.02);
}

TEST(TwoLineAdder, CarryRecoversCoincidentDigits)
{
    // Digits (+1,+1) then (0,0): the carry defers one unit to the next
    // cycle so no weight is lost.
    TwoLineStream a;
    a.mag = Bitstream::fromString("10");
    a.sign = Bitstream::fromString("00");
    TwoLineStream b;
    b.mag = Bitstream::fromString("10");
    b.sign = Bitstream::fromString("00");
    TwoLineAdder adder;
    TwoLineStream sum = adder.add(a, b);
    EXPECT_DOUBLE_EQ(sum.value(), 1.0); // 2 units over 2 cycles
    EXPECT_EQ(adder.droppedWeight(), 0u);
}

TEST(TwoLineAdder, OverflowSaturatesAndIsRecorded)
{
    // 1.0 + 1.0 cannot be represented: every cycle wants +2 and the
    // three-state carry saturates, dropping weight.
    Xoshiro256ss rng(60);
    TwoLineStream a = encodeTwoLine(1.0, 1024, rng);
    TwoLineStream b = encodeTwoLine(1.0, 1024, rng);
    TwoLineAdder adder;
    TwoLineStream sum = adder.add(a, b);
    EXPECT_NEAR(sum.value(), 1.0, 1e-9);
    EXPECT_GT(adder.droppedWeight(), 0u);
}

TEST(TwoLineAdder, NegativeOverflowSymmetric)
{
    Xoshiro256ss rng(61);
    TwoLineStream a = encodeTwoLine(-1.0, 1024, rng);
    TwoLineStream b = encodeTwoLine(-0.9, 1024, rng);
    TwoLineAdder adder;
    TwoLineStream sum = adder.add(a, b);
    EXPECT_NEAR(sum.value(), -1.0, 0.02);
    EXPECT_GT(adder.droppedWeight(), 0u);
}

TEST(TwoLineAddTree, SmallSumsStayAccurate)
{
    // Sum of 4 values within [-1,1]: 0.2+0.1-0.15-0.05 = 0.1.
    Xoshiro256ss rng(62);
    std::vector<TwoLineStream> inputs = {
        encodeTwoLine(0.2, 1 << 15, rng),
        encodeTwoLine(0.1, 1 << 15, rng),
        encodeTwoLine(-0.15, 1 << 15, rng),
        encodeTwoLine(-0.05, 1 << 15, rng),
    };
    uint64_t dropped = 0;
    TwoLineStream sum = twoLineAddTree(inputs, &dropped);
    EXPECT_NEAR(sum.value(), 0.1, 0.03);
}

TEST(TwoLineAddTree, ManyInputsOverflow)
{
    // Section 4.1 limitation (i): with many inputs the non-scaling
    // adder overflows and loses significant accuracy.
    Xoshiro256ss rng(63);
    std::vector<TwoLineStream> inputs;
    double true_sum = 0;
    for (int i = 0; i < 16; ++i) {
        double x = 0.4; // true sum 6.4, far beyond representable range
        true_sum += x;
        inputs.push_back(encodeTwoLine(x, 1 << 14, rng));
    }
    uint64_t dropped = 0;
    TwoLineStream sum = twoLineAddTree(inputs, &dropped);
    EXPECT_GT(dropped, 0u);
    EXPECT_LT(sum.value(), true_sum - 4.0); // massive saturation loss
}

TEST(TwoLineAddTree, SingleInputPassThrough)
{
    Xoshiro256ss rng(64);
    TwoLineStream a = encodeTwoLine(0.33, 4096, rng);
    TwoLineStream out = twoLineAddTree({a});
    EXPECT_DOUBLE_EQ(out.value(), a.value());
}

} // namespace
} // namespace sc
} // namespace scdcnn
