/**
 * @file
 * Tests for the packed bit-stream container.
 */

#include <vector>

#include <gtest/gtest.h>

#include "sc/bitstream.h"
#include "sc/rng.h"
#include "sc/sng.h"

namespace scdcnn {
namespace sc {
namespace {

TEST(Bitstream, DefaultIsEmpty)
{
    Bitstream s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.length(), 0u);
    EXPECT_EQ(s.countOnes(), 0u);
}

TEST(Bitstream, ConstructedZeroed)
{
    Bitstream s(130);
    EXPECT_EQ(s.length(), 130u);
    EXPECT_EQ(s.wordCount(), 3u);
    EXPECT_EQ(s.countOnes(), 0u);
    for (size_t i = 0; i < 130; ++i)
        EXPECT_FALSE(s.get(i));
}

TEST(Bitstream, SetAndGetRoundTrip)
{
    Bitstream s(100);
    s.set(0, true);
    s.set(63, true);
    s.set(64, true);
    s.set(99, true);
    EXPECT_TRUE(s.get(0));
    EXPECT_TRUE(s.get(63));
    EXPECT_TRUE(s.get(64));
    EXPECT_TRUE(s.get(99));
    EXPECT_FALSE(s.get(1));
    EXPECT_EQ(s.countOnes(), 4u);
    s.set(63, false);
    EXPECT_FALSE(s.get(63));
    EXPECT_EQ(s.countOnes(), 3u);
}

TEST(Bitstream, FromBitsAndString)
{
    Bitstream a = Bitstream::fromBits({0, 1, 0, 0, 1, 1});
    Bitstream b = Bitstream::fromString("010011");
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.toString(), "010011");
    EXPECT_EQ(a.countOnes(), 3u);
}

TEST(Bitstream, PaperUnipolarExample)
{
    // Section 3.2: 0100110100 has four ones in ten bits -> 0.4.
    Bitstream s = Bitstream::fromString("0100110100");
    EXPECT_DOUBLE_EQ(s.unipolar(), 0.4);
}

TEST(Bitstream, PaperBipolarExample)
{
    // Section 3.2: 1011011101 has P(X=1) = 7/10, so x = 0.4 bipolar.
    Bitstream s = Bitstream::fromString("1011011101");
    EXPECT_NEAR(s.bipolar(), 0.4, 1e-12);
}

TEST(Bitstream, CountRangeMatchesNaive)
{
    SplitMix64 rng(7);
    Bitstream s(300);
    for (size_t i = 0; i < 300; ++i)
        s.set(i, rng.next() & 1);

    for (auto [lo, hi] : {std::pair<size_t, size_t>{0, 300},
                          {0, 0},
                          {5, 5},
                          {0, 64},
                          {64, 128},
                          {3, 61},
                          {60, 70},
                          {1, 299},
                          {128, 300},
                          {299, 300}}) {
        size_t naive = 0;
        for (size_t i = lo; i < hi; ++i)
            naive += s.get(i);
        EXPECT_EQ(s.countOnes(lo, hi), naive) << lo << ".." << hi;
    }
}

TEST(Bitstream, SliceMatchesBitByBit)
{
    SplitMix64 rng(11);
    Bitstream s(257);
    for (size_t i = 0; i < 257; ++i)
        s.set(i, rng.next() & 1);

    for (auto [lo, len] : {std::pair<size_t, size_t>{0, 257},
                           {0, 64},
                           {1, 64},
                           {63, 130},
                           {64, 64},
                           {100, 0},
                           {250, 7}}) {
        Bitstream sub = s.slice(lo, len);
        ASSERT_EQ(sub.length(), len);
        for (size_t i = 0; i < len; ++i)
            EXPECT_EQ(sub.get(i), s.get(lo + i)) << lo << "+" << i;
        EXPECT_EQ(sub.countOnes(), s.countOnes(lo, lo + len));
    }
}

TEST(Bitstream, LogicOpsMatchTruthTables)
{
    Bitstream a = Bitstream::fromString("0011");
    Bitstream b = Bitstream::fromString("0101");
    EXPECT_EQ((a & b).toString(), "0001");
    EXPECT_EQ((a | b).toString(), "0111");
    EXPECT_EQ((a ^ b).toString(), "0110");
    EXPECT_EQ(a.xnor(b).toString(), "1001");
    EXPECT_EQ((~a).toString(), "1100");
}

TEST(Bitstream, NotMaskedAtTail)
{
    // NOT of 70 zero bits must produce exactly 70 ones, not 128.
    Bitstream s(70);
    Bitstream inv = ~s;
    EXPECT_EQ(inv.countOnes(), 70u);
    EXPECT_EQ(inv.length(), 70u);
}

TEST(Bitstream, XnorMaskedAtTail)
{
    Bitstream a(70);
    Bitstream b(70);
    // XNOR(0,0) = 1 everywhere; tail must stay clear.
    Bitstream z = a.xnor(b);
    EXPECT_EQ(z.countOnes(), 70u);
}

TEST(Bitstream, BipolarNegationViaNot)
{
    // In bipolar encoding, NOT negates the value: P -> 1-P, x -> -x.
    Bitstream s = Bitstream::fromString("1101");
    EXPECT_NEAR((~s).bipolar(), -s.bipolar(), 1e-12);
}

TEST(Bitstream, EqualityIncludesLength)
{
    Bitstream a(10);
    Bitstream b(11);
    EXPECT_NE(a, b);
    Bitstream c(10);
    EXPECT_EQ(a, c);
    c.set(3, true);
    EXPECT_NE(a, c);
}

TEST(Bitstream, ConstantStreamsAtBipolarExtremes)
{
    Bitstream ones(64);
    for (auto &w : ones.mutableWords())
        w = ~uint64_t{0};
    ones.maskTail();
    EXPECT_DOUBLE_EQ(ones.bipolar(), 1.0);
    Bitstream zeros(64);
    EXPECT_DOUBLE_EQ(zeros.bipolar(), -1.0);
}

TEST(BitstreamView, RangeCountsOnNonWordAlignedLength)
{
    // A view over a 70-bit stream (partial second word): every range
    // that touches the word boundary or the ragged tail must count
    // exactly, and the tail-zero invariant keeps whole-word popcounts
    // honest.
    Xoshiro256ss rng(11);
    Bitstream s(70);
    for (size_t i = 0; i < 70; ++i)
        s.set(i, (rng.next() & 1) != 0);
    BitstreamView v(s);
    ASSERT_EQ(v.wordCount(), 2u);
    for (size_t begin : {size_t{0}, size_t{1}, size_t{63}, size_t{64},
                         size_t{65}, size_t{70}}) {
        for (size_t end : {begin, size_t{63}, size_t{64}, size_t{69},
                           size_t{70}}) {
            if (end < begin)
                continue;
            size_t naive = 0;
            for (size_t i = begin; i < end; ++i)
                naive += v.get(i) ? 1 : 0;
            EXPECT_EQ(countOnes(v, begin, end), naive)
                << "range [" << begin << ", " << end << ")";
        }
    }
}

TEST(StreamArena, ReuseAcrossLayersRezeroesAndReshapes)
{
    // The engine resets one arena per layer per forward pass; a reset
    // to a different (count, length) must reshape the addressing and
    // present all-zero streams even when the old contents were dense.
    StreamArena arena;
    arena.reset(6, 130);
    for (size_t i = 0; i < arena.count(); ++i)
        for (size_t w = 0; w < arena.strideWords(); ++w)
            arena.wordsAt(i)[w] = ~uint64_t{0};
    arena.reset(4, 70); // smaller: storage is reused
    EXPECT_EQ(arena.count(), 4u);
    EXPECT_EQ(arena.length(), 70u);
    EXPECT_EQ(arena.strideWords(), 2u);
    for (size_t i = 0; i < arena.count(); ++i) {
        BitstreamView v = arena.view(i);
        EXPECT_EQ(v.length, 70u);
        EXPECT_EQ(countOnes(v, 0, 70), 0u);
    }
    // Write through a slot and confirm the neighbours stay untouched
    // (stride addressing after reuse).
    arena.wordsAt(2)[0] = 0x5;
    EXPECT_EQ(countOnes(arena.view(2), 0, 70), 2u);
    EXPECT_EQ(countOnes(arena.view(1), 0, 70), 0u);
    EXPECT_EQ(countOnes(arena.view(3), 0, 70), 0u);
    arena.reset(8, 256); // larger: fresh zeroed storage
    for (size_t i = 0; i < arena.count(); ++i)
        EXPECT_EQ(countOnes(arena.view(i), 0, 256), 0u);
}

TEST(InterleavedWeightArena, RoundTripsThePlainLayout)
{
    // Interleaving is a pure relayout: every (filter, tap, cycle) bit
    // of the blocked copy must equal the packed source stream,
    // including a ragged filter count (padding lanes) and a
    // non-word-aligned length.
    const size_t filters = 6, taps = 5, len = 130;
    SngBank bank(7);
    std::vector<Bitstream> src;
    InterleavedWeightArena arena;
    arena.reset(filters, taps, len);
    for (size_t f = 0; f < filters; ++f)
        for (size_t t = 0; t < taps; ++t) {
            src.push_back(bank.bipolar(0.1 * static_cast<double>(f) -
                                           0.2 * static_cast<double>(t),
                                       len));
            arena.assign(f, t, src.back());
        }
    EXPECT_EQ(arena.groups(), 2u);
    EXPECT_EQ(arena.lanesInGroup(0), kFilterLanes);
    EXPECT_EQ(arena.lanesInGroup(1), filters - kFilterLanes);
    for (size_t f = 0; f < filters; ++f) {
        const WeightBlockView block = arena.block(f / kFilterLanes);
        const size_t lane = f % kFilterLanes;
        for (size_t t = 0; t < taps; ++t)
            for (size_t i = 0; i < len; ++i)
                ASSERT_EQ(block.get(lane, t, i),
                          src[f * taps + t].get(i))
                    << "filter " << f << " tap " << t << " cycle " << i;
    }
    // Padding lanes of the ragged last block stay all-zero.
    const WeightBlockView last = arena.block(1);
    for (size_t lane = last.lanes; lane < kFilterLanes; ++lane)
        for (size_t t = 0; t < taps; ++t)
            for (size_t w = 0; w < last.wordCount(); ++w)
                ASSERT_EQ(last.at(w, t)[lane], 0u);
}

TEST(InterleavedWeightArena, BlockWordsAreLaneContiguous)
{
    // The layout contract the AVX2 kernel loads through: the
    // kFilterLanes words of (word w, tap t) are adjacent, word-major.
    InterleavedWeightArena arena;
    arena.reset(4, 3, 128);
    Bitstream marker(128);
    marker.set(64, true); // word 1, bit 0
    arena.assign(2, 1, marker);
    const WeightBlockView block = arena.block(0);
    EXPECT_EQ(block.at(1, 1)[2], uint64_t{1});
    EXPECT_EQ(block.at(1, 1) - block.at(1, 0),
              static_cast<ptrdiff_t>(kFilterLanes));
    EXPECT_EQ(block.at(1, 0) - block.at(0, block.taps - 1),
              static_cast<ptrdiff_t>(kFilterLanes));
}

} // namespace
} // namespace sc
} // namespace scdcnn
