/**
 * @file
 * Tests for the packed bit-stream container.
 */

#include <gtest/gtest.h>

#include "sc/bitstream.h"
#include "sc/rng.h"

namespace scdcnn {
namespace sc {
namespace {

TEST(Bitstream, DefaultIsEmpty)
{
    Bitstream s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.length(), 0u);
    EXPECT_EQ(s.countOnes(), 0u);
}

TEST(Bitstream, ConstructedZeroed)
{
    Bitstream s(130);
    EXPECT_EQ(s.length(), 130u);
    EXPECT_EQ(s.wordCount(), 3u);
    EXPECT_EQ(s.countOnes(), 0u);
    for (size_t i = 0; i < 130; ++i)
        EXPECT_FALSE(s.get(i));
}

TEST(Bitstream, SetAndGetRoundTrip)
{
    Bitstream s(100);
    s.set(0, true);
    s.set(63, true);
    s.set(64, true);
    s.set(99, true);
    EXPECT_TRUE(s.get(0));
    EXPECT_TRUE(s.get(63));
    EXPECT_TRUE(s.get(64));
    EXPECT_TRUE(s.get(99));
    EXPECT_FALSE(s.get(1));
    EXPECT_EQ(s.countOnes(), 4u);
    s.set(63, false);
    EXPECT_FALSE(s.get(63));
    EXPECT_EQ(s.countOnes(), 3u);
}

TEST(Bitstream, FromBitsAndString)
{
    Bitstream a = Bitstream::fromBits({0, 1, 0, 0, 1, 1});
    Bitstream b = Bitstream::fromString("010011");
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.toString(), "010011");
    EXPECT_EQ(a.countOnes(), 3u);
}

TEST(Bitstream, PaperUnipolarExample)
{
    // Section 3.2: 0100110100 has four ones in ten bits -> 0.4.
    Bitstream s = Bitstream::fromString("0100110100");
    EXPECT_DOUBLE_EQ(s.unipolar(), 0.4);
}

TEST(Bitstream, PaperBipolarExample)
{
    // Section 3.2: 1011011101 has P(X=1) = 7/10, so x = 0.4 bipolar.
    Bitstream s = Bitstream::fromString("1011011101");
    EXPECT_NEAR(s.bipolar(), 0.4, 1e-12);
}

TEST(Bitstream, CountRangeMatchesNaive)
{
    SplitMix64 rng(7);
    Bitstream s(300);
    for (size_t i = 0; i < 300; ++i)
        s.set(i, rng.next() & 1);

    for (auto [lo, hi] : {std::pair<size_t, size_t>{0, 300},
                          {0, 0},
                          {5, 5},
                          {0, 64},
                          {64, 128},
                          {3, 61},
                          {60, 70},
                          {1, 299},
                          {128, 300},
                          {299, 300}}) {
        size_t naive = 0;
        for (size_t i = lo; i < hi; ++i)
            naive += s.get(i);
        EXPECT_EQ(s.countOnes(lo, hi), naive) << lo << ".." << hi;
    }
}

TEST(Bitstream, SliceMatchesBitByBit)
{
    SplitMix64 rng(11);
    Bitstream s(257);
    for (size_t i = 0; i < 257; ++i)
        s.set(i, rng.next() & 1);

    for (auto [lo, len] : {std::pair<size_t, size_t>{0, 257},
                           {0, 64},
                           {1, 64},
                           {63, 130},
                           {64, 64},
                           {100, 0},
                           {250, 7}}) {
        Bitstream sub = s.slice(lo, len);
        ASSERT_EQ(sub.length(), len);
        for (size_t i = 0; i < len; ++i)
            EXPECT_EQ(sub.get(i), s.get(lo + i)) << lo << "+" << i;
        EXPECT_EQ(sub.countOnes(), s.countOnes(lo, lo + len));
    }
}

TEST(Bitstream, LogicOpsMatchTruthTables)
{
    Bitstream a = Bitstream::fromString("0011");
    Bitstream b = Bitstream::fromString("0101");
    EXPECT_EQ((a & b).toString(), "0001");
    EXPECT_EQ((a | b).toString(), "0111");
    EXPECT_EQ((a ^ b).toString(), "0110");
    EXPECT_EQ(a.xnor(b).toString(), "1001");
    EXPECT_EQ((~a).toString(), "1100");
}

TEST(Bitstream, NotMaskedAtTail)
{
    // NOT of 70 zero bits must produce exactly 70 ones, not 128.
    Bitstream s(70);
    Bitstream inv = ~s;
    EXPECT_EQ(inv.countOnes(), 70u);
    EXPECT_EQ(inv.length(), 70u);
}

TEST(Bitstream, XnorMaskedAtTail)
{
    Bitstream a(70);
    Bitstream b(70);
    // XNOR(0,0) = 1 everywhere; tail must stay clear.
    Bitstream z = a.xnor(b);
    EXPECT_EQ(z.countOnes(), 70u);
}

TEST(Bitstream, BipolarNegationViaNot)
{
    // In bipolar encoding, NOT negates the value: P -> 1-P, x -> -x.
    Bitstream s = Bitstream::fromString("1101");
    EXPECT_NEAR((~s).bipolar(), -s.bipolar(), 1e-12);
}

TEST(Bitstream, EqualityIncludesLength)
{
    Bitstream a(10);
    Bitstream b(11);
    EXPECT_NE(a, b);
    Bitstream c(10);
    EXPECT_EQ(a, c);
    c.set(3, true);
    EXPECT_NE(a, c);
}

TEST(Bitstream, ConstantStreamsAtBipolarExtremes)
{
    Bitstream ones(64);
    for (auto &w : ones.mutableWords())
        w = ~uint64_t{0};
    ones.maskTail();
    EXPECT_DOUBLE_EQ(ones.bipolar(), 1.0);
    Bitstream zeros(64);
    EXPECT_DOUBLE_EQ(zeros.bipolar(), -1.0);
}

} // namespace
} // namespace sc
} // namespace scdcnn
