/**
 * @file
 * Segment-streaming equivalence of the network engine: the fused
 * engine advanced in word segments (any size, including ones that do
 * not divide the stream) must be bit-identical — predictions AND
 * output-layer scores — to whole-stream execution and to the
 * bit-serial Reference oracle, for every feature-extraction-block
 * kind. Plus Progressive-mode semantics: no-exit degenerates to
 * Fused, early exit reports the bits consumed, and on a trained
 * network the accuracy cost of a moderate margin stays small.
 */

#include <vector>

#include <gtest/gtest.h>

#include "core/sc_network.h"
#include "nn/trainer.h"

namespace scdcnn {
namespace {

TEST(SegmentStreaming, AnySegmentSizeIsBitExactAcrossModes)
{
    const struct
    {
        nn::PoolingMode pooling;
        core::AdderKind adder;
    } cases[] = {
        {nn::PoolingMode::Average, core::AdderKind::Mux},
        {nn::PoolingMode::Max, core::AdderKind::Mux},
        {nn::PoolingMode::Average, core::AdderKind::Apc},
        {nn::PoolingMode::Max, core::AdderKind::Apc},
    };
    for (const auto &c : cases) {
        nn::Network net = nn::buildMiniLeNet(c.pooling, 23);
        nn::Tensor img = nn::DigitDataset::render(4, 9);

        core::ScNetworkConfig cfg;
        cfg.pooling = c.pooling;
        cfg.layer_adders = {c.adder, core::AdderKind::Apc,
                            core::AdderKind::Apc};
        cfg.bitstream_len = 200; // 4 words, 8-bit tail

        // Whole-stream fused run (segment streaming off).
        cfg.stream_segment_words = 0;
        core::ForwardInfo whole;
        size_t whole_pred;
        {
            core::ScNetwork sc(net, cfg);
            whole_pred = sc.predict(img, 5, nullptr, &whole);
            EXPECT_EQ(whole.effective_bits, 200u);
            EXPECT_FALSE(whole.early_exit);

            // The bit-serial oracle agrees (mode switch, same instance).
            sc.setEngineMode(core::EngineMode::Reference);
            core::ForwardInfo ref;
            EXPECT_EQ(sc.predict(img, 5, nullptr, &ref), whole_pred);
            EXPECT_EQ(ref.scores, whole.scores);
        }

        // Segment sizes dividing and not dividing the 4-word stream.
        for (size_t seg_words : {size_t{1}, size_t{2}, size_t{3},
                                 size_t{4}, size_t{7}}) {
            cfg.stream_segment_words = seg_words;
            core::ScNetwork sc(net, cfg);
            core::ForwardInfo info;
            EXPECT_EQ(sc.predict(img, 5, nullptr, &info), whole_pred)
                << "seg_words=" << seg_words;
            EXPECT_EQ(info.scores, whole.scores)
                << "seg_words=" << seg_words;
            EXPECT_EQ(info.effective_bits, 200u);
        }
    }
}

TEST(SegmentStreaming, RandomizedSeedsStayBitExact)
{
    // A denser randomized sweep on the APC-max configuration (the
    // production path): several seeds and images, chunked vs whole.
    // Fused at a segment size that does not divide the 4-word stream,
    // against the bit-serial Reference oracle (always whole-stream),
    // across several seeds and images.
    nn::Network net = nn::buildMiniLeNet(nn::PoolingMode::Max, 23);
    core::ScNetworkConfig cfg;
    cfg.pooling = nn::PoolingMode::Max;
    cfg.bitstream_len = 200;
    cfg.stream_segment_words = 3;
    core::ScNetwork fused_net(net, cfg);
    core::ScNetwork ref_net(net, cfg);
    ref_net.setEngineMode(core::EngineMode::Reference);
    for (uint64_t seed = 1; seed <= 6; ++seed) {
        nn::Tensor img = nn::DigitDataset::render(seed % 10, 30 + seed);
        core::ForwardInfo a, b;
        const size_t pa = fused_net.predict(img, seed, nullptr, &a);
        const size_t pb = ref_net.predict(img, seed, nullptr, &b);
        EXPECT_EQ(pa, pb) << "seed=" << seed;
        EXPECT_EQ(a.scores, b.scores) << "seed=" << seed;
    }
}

TEST(Progressive, NoExitDegeneratesToFusedAndIsOffByDefault)
{
    nn::Network net = nn::buildMiniLeNet(nn::PoolingMode::Max, 23);
    core::ScNetworkConfig cfg;
    cfg.pooling = nn::PoolingMode::Max;
    cfg.bitstream_len = 256;
    cfg.stream_segment_words = 1;
    cfg.progressive_margin = 1e9; // never confident enough
    core::ScNetwork sc(net, cfg);
    EXPECT_EQ(sc.engineMode(), core::EngineMode::Fused); // off by default

    nn::Tensor img = nn::DigitDataset::render(2, 3);
    core::ForwardInfo fused;
    const size_t fused_pred = sc.predict(img, 7, nullptr, &fused);

    sc.setEngineMode(core::EngineMode::Progressive);
    core::ForwardInfo prog;
    EXPECT_EQ(sc.predict(img, 7, nullptr, &prog), fused_pred);
    EXPECT_EQ(prog.scores, fused.scores);
    EXPECT_EQ(prog.effective_bits, 256u);
    EXPECT_FALSE(prog.early_exit);
}

TEST(Progressive, ZeroMarginExitsAtTheFloor)
{
    nn::Network net = nn::buildMiniLeNet(nn::PoolingMode::Max, 23);
    core::ScNetworkConfig cfg;
    cfg.pooling = nn::PoolingMode::Max;
    cfg.bitstream_len = 256;
    cfg.stream_segment_words = 1;
    cfg.progressive_margin = 0.0;
    cfg.progressive_min_bits = 128;
    core::ScNetwork sc(net, cfg);
    sc.setEngineMode(core::EngineMode::Progressive);
    core::ForwardInfo info;
    const size_t pred = sc.predict(nn::DigitDataset::render(5, 8), 11,
                                   nullptr, &info);
    EXPECT_LT(pred, 10u);
    EXPECT_TRUE(info.early_exit);
    EXPECT_EQ(info.effective_bits, 128u); // first check at the floor
}

TEST(Progressive, WholeStreamConfigFallsBackToSegmentedCheckpoints)
{
    // stream_segment_words == 0 means whole-stream execution, which
    // would leave Progressive no mid-stream checkpoint; the engine
    // falls back to its default granularity there so the mode never
    // silently degrades to plain Fused.
    nn::Network net = nn::buildMiniLeNet(nn::PoolingMode::Max, 23);
    core::ScNetworkConfig cfg;
    cfg.pooling = nn::PoolingMode::Max;
    cfg.bitstream_len = 1024;
    cfg.stream_segment_words = 0;
    cfg.progressive_margin = 0.0;
    cfg.progressive_min_bits = 256;
    core::ScNetwork sc(net, cfg);
    sc.setEngineMode(core::EngineMode::Progressive);
    core::ForwardInfo info;
    sc.predict(nn::DigitDataset::render(1, 2), 13, nullptr, &info);
    EXPECT_TRUE(info.early_exit);
    EXPECT_EQ(info.effective_bits, 256u);
}

TEST(Progressive, TrainedNetworkTradesFewBitsForLittleAccuracy)
{
    // Accuracy sanity on a trained mini network: a moderate margin must
    // cut the average consumed bits well below L while the error-rate
    // delta against full-length evaluation stays small. (The LeNet-5
    // example prints the same trade-off at two margins.)
    nn::Dataset train = nn::DigitDataset::generate(1500, 5);
    nn::Network net = nn::buildMiniLeNet(nn::PoolingMode::Max, 1);
    nn::TrainConfig tc;
    tc.epochs = 3;
    nn::Trainer(net, tc).train(train);
    nn::Dataset test = nn::DigitDataset::generate(120, 6);

    core::ScNetworkConfig cfg;
    cfg.pooling = nn::PoolingMode::Max;
    cfg.bitstream_len = 1024;
    cfg.progressive_margin = 2.0;
    core::ScNetwork sc(net, cfg);

    size_t wrong_full = 0, wrong_prog = 0;
    uint64_t bits = 0;
    core::ForwardInfo info;
    for (size_t i = 0; i < test.size(); ++i) {
        const nn::Tensor &img = test.samples[i].image;
        wrong_full += sc.predict(img, 777 + i * 7919) !=
                      test.samples[i].label;
    }
    sc.setEngineMode(core::EngineMode::Progressive);
    for (size_t i = 0; i < test.size(); ++i) {
        const nn::Tensor &img = test.samples[i].image;
        wrong_prog += sc.predict(img, 777 + i * 7919, nullptr, &info) !=
                      test.samples[i].label;
        bits += info.effective_bits;
    }
    const double err_full =
        static_cast<double>(wrong_full) / static_cast<double>(test.size());
    const double err_prog =
        static_cast<double>(wrong_prog) / static_cast<double>(test.size());
    const double avg_bits =
        static_cast<double>(bits) / static_cast<double>(test.size());
    // Well under half the stream on average, at a small error delta
    // (the 120-image set resolves 0.83% steps; allow a few flips).
    EXPECT_LT(avg_bits, 640.0);
    EXPECT_LE(err_prog, err_full + 0.025);
}

} // namespace
} // namespace scdcnn
