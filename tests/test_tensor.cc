/**
 * @file
 * Tests for the dense tensor container.
 */

#include <gtest/gtest.h>

#include "nn/tensor.h"

namespace scdcnn {
namespace nn {
namespace {

TEST(Tensor, DefaultIsEmpty)
{
    Tensor t;
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.channels(), 0u);
}

TEST(Tensor, ShapeAndZeroInit)
{
    Tensor t(3, 4, 5);
    EXPECT_EQ(t.channels(), 3u);
    EXPECT_EQ(t.height(), 4u);
    EXPECT_EQ(t.width(), 5u);
    EXPECT_EQ(t.size(), 60u);
    for (size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FlatConstructor)
{
    Tensor t(7);
    EXPECT_EQ(t.channels(), 7u);
    EXPECT_EQ(t.height(), 1u);
    EXPECT_EQ(t.width(), 1u);
}

TEST(Tensor, IndexingIsRowMajor)
{
    Tensor t(2, 3, 4);
    t.at(1, 2, 3) = 42.0f;
    EXPECT_EQ(t[(1 * 3 + 2) * 4 + 3], 42.0f);
    t[0] = 7.0f;
    EXPECT_EQ(t.at(0, 0, 0), 7.0f);
}

TEST(Tensor, ZeroResets)
{
    Tensor t(2, 2, 2);
    for (size_t i = 0; i < t.size(); ++i)
        t[i] = static_cast<float>(i);
    t.zero();
    for (size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, SameShapeComparesAllDims)
{
    EXPECT_TRUE(Tensor(1, 2, 3).sameShape(Tensor(1, 2, 3)));
    EXPECT_FALSE(Tensor(1, 2, 3).sameShape(Tensor(3, 2, 1)));
    EXPECT_FALSE(Tensor(6).sameShape(Tensor(1, 2, 3)));
}

} // namespace
} // namespace nn
} // namespace scdcnn
