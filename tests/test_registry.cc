/**
 * @file
 * Model-fleet registry tests: artifact round-trip and bit-flip fuzz
 * (every corruption rejected with a typed diagnostic, never a crash
 * or a silent serve), circuit-breaker trip / half-open / recovery on
 * a ManualClock, atomic hot-swap (in-flight requests bit-exact across
 * a swap of a different model), per-model fast-fail error codes, and
 * concurrent load/route/swap/retire designed to run under TSan.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/sc_network.h"
#include "nn/network.h"
#include "nn/topology.h"
#include "serve/artifact.h"
#include "serve/model_registry.h"

namespace scdcnn {
namespace {

using namespace std::chrono_literals;
using serve::BreakerState;
using serve::CircuitBreaker;
using serve::FaultInjector;
using serve::FaultPoint;
using serve::ManualClock;
using serve::ModelArtifact;
using serve::ModelRegistry;
using serve::ModelState;
using serve::RegistryConfig;
using serve::ServeError;
using serve::ServeErrorCode;

/** Tiny 12x12 topology so engine construction is milliseconds. */
nn::TopologySpec
miniSpec(uint64_t seed)
{
    nn::TopologySpec spec;
    spec.in_h = spec.in_w = 12;
    spec.convs = {{3, 3}};
    spec.fc_hidden = {11};
    spec.n_classes = 6;
    spec.seed = seed;
    return spec;
}

core::ScNetworkConfig
miniConfig()
{
    core::ScNetworkConfig cfg;
    cfg.bitstream_len = 64;
    cfg.stream_segment_words = 1;
    cfg.input_c = 1;
    cfg.input_h = cfg.input_w = 12;
    return cfg;
}

ModelArtifact
miniArtifact(const std::string &name, uint32_t version, uint64_t seed)
{
    const nn::TopologySpec spec = miniSpec(seed);
    const core::ScNetworkConfig cfg = miniConfig();
    nn::Network net = nn::buildTopology(spec, nn::PoolingMode::Max);
    return serve::makeArtifact(name, version, spec,
                               nn::PoolingMode::Max, cfg, net);
}

nn::Tensor
image(uint64_t seed)
{
    nn::Tensor t(1, 12, 12);
    uint64_t x = seed * 6364136223846793005ull + 1442695040888963407ull;
    for (size_t i = 0; i < t.size(); ++i) {
        x ^= x >> 33;
        x *= 0xFF51AFD7ED558CCDull;
        t[i] = static_cast<float>((x >> 40) & 0xFF) / 255.0f;
    }
    return t;
}

std::string
tempPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "scdcnn_artifact_" +
           tag + ".bin";
}

serve::ServerConfig
fastTemplate()
{
    serve::ServerConfig scfg;
    scfg.limits.max_batch = 1; // close Full immediately: no clock dep
    scfg.limits.max_queue_delay = 100us;
    return scfg;
}

ServeErrorCode
codeOf(std::future<serve::InferenceResult> fut)
{
    try {
        fut.get();
    } catch (const ServeError &e) {
        return e.code();
    }
    ADD_FAILURE() << "future resolved without a ServeError";
    return ServeErrorCode::ShutDown;
}

// ------------------------------------------------ artifact round trip

TEST(Artifact, RoundTripsEveryField)
{
    const std::string path = tempPath("roundtrip");
    const ModelArtifact a = miniArtifact("mini-a", 7, 5);
    ASSERT_TRUE(serve::saveArtifact(a, path));

    ModelArtifact b;
    const nn::LoadResult r = serve::loadArtifact(path, &b);
    ASSERT_TRUE(r) << r.message();
    EXPECT_EQ(b.name, "mini-a");
    EXPECT_EQ(b.version, 7u);
    EXPECT_EQ(b.spec.in_h, a.spec.in_h);
    EXPECT_EQ(b.spec.convs.size(), a.spec.convs.size());
    EXPECT_EQ(b.spec.fc_hidden, a.spec.fc_hidden);
    EXPECT_EQ(b.spec.n_classes, a.spec.n_classes);
    EXPECT_EQ(b.spec.seed, a.spec.seed);
    EXPECT_EQ(b.pooling, a.pooling);
    EXPECT_TRUE(b.config == a.config); // field-wise operator==
    ASSERT_EQ(b.tensors.size(), a.tensors.size());
    for (size_t i = 0; i < a.tensors.size(); ++i)
        EXPECT_EQ(b.tensors[i], a.tensors[i]) << "tensor " << i;

    // The instantiated network must compute exactly what the source
    // network computes.
    nn::Network src =
        nn::buildTopology(a.spec, a.pooling); // same seed => same net
    nn::Network dst;
    ASSERT_TRUE(serve::instantiate(b, &dst));
    const nn::Tensor img = image(3);
    nn::Tensor out_src = src.forward(img);
    nn::Tensor out_dst = dst.forward(img);
    ASSERT_EQ(out_src.size(), out_dst.size());
    for (size_t i = 0; i < out_src.size(); ++i)
        EXPECT_EQ(out_src[i], out_dst[i]);
    std::remove(path.c_str());
}

TEST(Artifact, EveryBitFlipIsRejectedWithADiagnostic)
{
    const std::string path = tempPath("fuzz");
    ASSERT_TRUE(serve::saveArtifact(miniArtifact("fuzz", 1, 9), path));

    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<unsigned char> bytes(static_cast<size_t>(size));
    ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f),
              bytes.size());
    std::fclose(f);

    const auto writeBytes = [&](const std::vector<unsigned char> &b) {
        std::FILE *w = std::fopen(path.c_str(), "wb");
        ASSERT_NE(w, nullptr);
        ASSERT_EQ(std::fwrite(b.data(), 1, b.size(), w), b.size());
        std::fclose(w);
    };

    // Flip one bit in every byte of the file: the loader must reject
    // each corruption with a typed, non-empty diagnostic — and never
    // crash, never allocate unboundedly, never hand back a model.
    size_t rejected = 0;
    for (size_t i = 0; i < bytes.size(); ++i) {
        std::vector<unsigned char> corrupt = bytes;
        corrupt[i] ^= 1u << (i % 8);
        writeBytes(corrupt);
        ModelArtifact out;
        const nn::LoadResult r = serve::loadArtifact(path, &out);
        ASSERT_FALSE(r.ok()) << "byte " << i << " flip was accepted";
        ASSERT_FALSE(r.message().empty());
        ++rejected;
    }
    EXPECT_EQ(rejected, bytes.size());

    // Truncations at every interesting boundary are rejected too.
    for (size_t cut :
         {size_t(0), size_t(1), size_t(3), size_t(7), size_t(19),
          bytes.size() / 2, bytes.size() - 1}) {
        std::vector<unsigned char> short_file(bytes.begin(),
                                              bytes.begin() + cut);
        writeBytes(short_file);
        ModelArtifact out;
        const nn::LoadResult r = serve::loadArtifact(path, &out);
        ASSERT_FALSE(r.ok()) << "truncation at " << cut << " accepted";
    }
    std::remove(path.c_str());
}

// ------------------------------------------------ breaker unit tests

TEST(CircuitBreaker, TripsHalfOpensAndRecoversOnManualClock)
{
    ManualClock clock;
    serve::BreakerConfig bc;
    bc.alpha = 0.5;
    bc.min_events = 4;
    bc.trip_threshold = 0.5;
    bc.backoff = 1000us;
    bc.probe_quota = 2;
    CircuitBreaker cb(bc, &clock);

    // Failures accumulate; the EWMA may only trip once trusted.
    cb.onOutcome(false);
    cb.onOutcome(false);
    cb.onOutcome(false);
    EXPECT_EQ(cb.state(), BreakerState::Closed);
    cb.onOutcome(false); // 4th event: ewma 0.9375 >= 0.5 -> trip
    EXPECT_EQ(cb.state(), BreakerState::Open);
    EXPECT_EQ(cb.trips(), 1u);

    // Open rejects until the backoff elapses.
    EXPECT_EQ(cb.admit(), CircuitBreaker::Gate::Reject);
    clock.advance(999us);
    EXPECT_EQ(cb.admit(), CircuitBreaker::Gate::Reject);
    clock.advance(1us);
    EXPECT_EQ(cb.admit(), CircuitBreaker::Gate::Probe);
    EXPECT_EQ(cb.state(), BreakerState::HalfOpen);
    // One probe at a time.
    EXPECT_EQ(cb.admit(), CircuitBreaker::Gate::Reject);

    // A failed probe reopens with a fresh backoff.
    cb.onProbeResult(false);
    EXPECT_EQ(cb.state(), BreakerState::Open);
    EXPECT_EQ(cb.probeFailures(), 1u);
    clock.advance(1000us);

    // probe_quota consecutive successes close the breaker.
    EXPECT_EQ(cb.admit(), CircuitBreaker::Gate::Probe);
    cb.onProbeResult(true);
    EXPECT_EQ(cb.state(), BreakerState::HalfOpen);
    EXPECT_EQ(cb.admit(), CircuitBreaker::Gate::Probe);
    cb.onProbeResult(true);
    EXPECT_EQ(cb.state(), BreakerState::Closed);
    EXPECT_EQ(cb.recoveries(), 1u);
    EXPECT_EQ(cb.admit(), CircuitBreaker::Gate::Admit);
    EXPECT_DOUBLE_EQ(cb.failureEwma(), 0.0); // history wiped
}

TEST(CircuitBreaker, AbandonedProbeAllowsTheNextOne)
{
    ManualClock clock;
    serve::BreakerConfig bc;
    bc.alpha = 1.0;
    bc.min_events = 1;
    bc.backoff = 100us;
    CircuitBreaker cb(bc, &clock);
    cb.onOutcome(false);
    ASSERT_EQ(cb.state(), BreakerState::Open);
    clock.advance(100us);
    ASSERT_EQ(cb.admit(), CircuitBreaker::Gate::Probe);
    ASSERT_EQ(cb.admit(), CircuitBreaker::Gate::Reject);
    cb.onProbeAbandoned(); // probe died of an unrelated cause
    EXPECT_EQ(cb.state(), BreakerState::HalfOpen);
    EXPECT_EQ(cb.admit(), CircuitBreaker::Gate::Probe);
}

// ------------------------------------------------ registry routing

TEST(ModelRegistry, RoutesToTheRightModelBitExactly)
{
    RegistryConfig rc;
    rc.server_template = fastTemplate();
    ModelRegistry reg(rc);
    ASSERT_TRUE(reg.install("a", miniArtifact("a", 1, 5)).ok);
    ASSERT_TRUE(reg.install("b", miniArtifact("b", 1, 6)).ok);
    EXPECT_EQ(reg.modelCount(), 2u);
    EXPECT_EQ(reg.state("a"), ModelState::Serving);

    // Reference engines built directly from the same artifacts.
    nn::Network net_a =
        nn::buildTopology(miniSpec(5), nn::PoolingMode::Max);
    nn::Network net_b =
        nn::buildTopology(miniSpec(6), nn::PoolingMode::Max);
    core::ScNetwork ref_a(net_a, miniConfig());
    core::ScNetwork ref_b(net_b, miniConfig());
    const core::PredictOptions popts =
        serve::QosPolicy{core::EngineMode::Fused, 0.0, 0}
            .predictOptions();

    for (uint64_t i = 0; i < 4; ++i) {
        const nn::Tensor img = image(100 + i);
        serve::RequestOptions opts;
        opts.accuracy = serve::AccuracyClass::High;
        opts.seed = 4000 + i;
        const serve::InferenceResult ra =
            reg.submit("a", img, opts).get();
        const serve::InferenceResult rb =
            reg.submit("b", img, opts).get();
        core::ForwardInfo ia, ib;
        const size_t pa =
            ref_a.predictWith(img, 4000 + i, popts, nullptr, &ia);
        const size_t pb =
            ref_b.predictWith(img, 4000 + i, popts, nullptr, &ib);
        EXPECT_EQ(ra.predicted, pa);
        EXPECT_EQ(rb.predicted, pb);
        EXPECT_EQ(ra.scores, ia.scores); // bit-exact
        EXPECT_EQ(rb.scores, ib.scores);
    }
}

TEST(ModelRegistry, UnknownAndRetiredModelsFailFastWithTypedCodes)
{
    RegistryConfig rc;
    rc.server_template = fastTemplate();
    ModelRegistry reg(rc);
    ASSERT_TRUE(reg.install("a", miniArtifact("a", 1, 5)).ok);

    EXPECT_EQ(codeOf(reg.submit("nope", image(1))),
              ServeErrorCode::UnknownModel);
    EXPECT_EQ(std::string(serve::serveErrorCodeName(
                  ServeErrorCode::UnknownModel)),
              "unknown_model");

    EXPECT_TRUE(reg.retire("a"));
    EXPECT_EQ(reg.state("a"), ModelState::Retired);
    EXPECT_EQ(codeOf(reg.submit("a", image(1))),
              ServeErrorCode::ModelUnavailable);
    EXPECT_EQ(std::string(serve::serveErrorCodeName(
                  ServeErrorCode::ModelUnavailable)),
              "model_unavailable");
    EXPECT_FALSE(reg.retire("missing"));

    const serve::RegistrySnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.unknown_model_rejected, 1u);
    ASSERT_EQ(snap.models.size(), 1u);
    EXPECT_EQ(snap.models[0].state, ModelState::Retired);
    EXPECT_GE(snap.models[0].unavailable_rejected, 1u);
    // Retired entries keep their final serving metrics visible.
    EXPECT_EQ(snap.models[0].server.completed, 0u);
    EXPECT_FALSE(snap.toJson().empty());
}

TEST(ModelRegistry, CorruptArtifactInstallIsRejectedWithDiagnostic)
{
    const std::string path = tempPath("corrupt_install");
    ASSERT_TRUE(
        serve::saveArtifact(miniArtifact("bad", 1, 5), path));

    FaultInjector faults;
    RegistryConfig rc;
    rc.server_template = fastTemplate();
    rc.faults = &faults;
    ModelRegistry reg(rc);

    faults.arm(FaultPoint::ArtifactRead, 1); // corrupt-on-read
    const serve::InstallResult res = reg.install("bad", path);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.diagnostic.find("crc_mismatch"), std::string::npos)
        << res.diagnostic;
    EXPECT_EQ(faults.firedCount(FaultPoint::ArtifactRead), 1u);
    // The failed install never serves; the diagnostic is surfaced.
    EXPECT_EQ(codeOf(reg.submit("bad", image(1))),
              ServeErrorCode::ModelUnavailable);
    EXPECT_EQ(reg.modelSnapshot("bad").last_error, res.diagnostic);

    // Same file, no fault: installs fine (the corruption was injected
    // on the read path, not in the file).
    ASSERT_TRUE(reg.install("bad", path).ok);
    EXPECT_EQ(reg.state("bad"), ModelState::Serving);
    std::remove(path.c_str());
}

TEST(ModelRegistry, SwapInstallCrashLeavesOldVersionServing)
{
    FaultInjector faults;
    RegistryConfig rc;
    rc.server_template = fastTemplate();
    rc.faults = &faults;
    ModelRegistry reg(rc);
    ASSERT_TRUE(reg.install("m", miniArtifact("m", 1, 5)).ok);

    faults.arm(FaultPoint::SwapInstall, 1);
    const serve::InstallResult res =
        reg.install("m", miniArtifact("m", 2, 6));
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.diagnostic.find("injected crash"),
              std::string::npos);

    // v1 keeps serving untouched.
    serve::ModelSnapshot snap = reg.modelSnapshot("m");
    EXPECT_EQ(snap.version, 1u);
    EXPECT_EQ(snap.state, ModelState::Serving);
    EXPECT_EQ(snap.swaps, 0u);
    serve::RequestOptions opts;
    opts.seed = 42;
    EXPECT_NO_THROW(reg.submit("m", image(2), opts).get());

    // Next attempt (no fault) swaps to v2.
    ASSERT_TRUE(reg.install("m", miniArtifact("m", 2, 6)).ok);
    snap = reg.modelSnapshot("m");
    EXPECT_EQ(snap.version, 2u);
    EXPECT_EQ(snap.swaps, 1u);
    EXPECT_TRUE(snap.last_error.empty());
}

TEST(ModelRegistry, BreakerTripsQuarantinesAndRecoversViaProbes)
{
    ManualClock clock;
    FaultInjector faults;
    RegistryConfig rc;
    rc.server_template = fastTemplate();
    rc.clock = &clock;
    rc.faults = &faults;
    rc.breaker.alpha = 0.5;
    rc.breaker.min_events = 4;
    rc.breaker.trip_threshold = 0.5;
    rc.breaker.backoff = 1000us;
    rc.breaker.probe_quota = 2;
    ModelRegistry reg(rc);
    ASSERT_TRUE(reg.install("m", miniArtifact("m", 1, 5)).ok);

    // Poison the model: every routed request fails at the execution
    // fault point until the breaker trips.
    faults.arm(FaultPoint::ModelExecute, 100);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(codeOf(reg.submit("m", image(i))),
                  ServeErrorCode::ModelUnavailable);
    EXPECT_EQ(reg.state("m"), ModelState::Quarantined);
    EXPECT_EQ(reg.breakerState("m"), BreakerState::Open);
    EXPECT_EQ(reg.modelSnapshot("m").trips, 1u);
    EXPECT_EQ(reg.modelSnapshot("m").faulted, 4u);

    // Quarantined: fast rejects, no fault shots consumed.
    const uint64_t faulted_before =
        faults.firedCount(FaultPoint::ModelExecute);
    EXPECT_EQ(codeOf(reg.submit("m", image(9))),
              ServeErrorCode::ModelUnavailable);
    EXPECT_EQ(faults.firedCount(FaultPoint::ModelExecute),
              faulted_before);
    EXPECT_GE(reg.modelSnapshot("m").unavailable_rejected, 1u);

    // Backoff elapses -> half-open; a sabotaged probe re-opens.
    faults.disarm(FaultPoint::ModelExecute);
    clock.advance(1001us);
    faults.arm(FaultPoint::BreakerProbe, 1);
    EXPECT_EQ(codeOf(reg.submit("m", image(10))),
              ServeErrorCode::ModelUnavailable);
    EXPECT_EQ(reg.breakerState("m"), BreakerState::Open);
    EXPECT_EQ(reg.modelSnapshot("m").probe_failures, 1u);

    // Fault cleared: two probe successes close the breaker.
    clock.advance(1001us);
    EXPECT_NO_THROW(reg.submit("m", image(11)).get());
    EXPECT_EQ(reg.breakerState("m"), BreakerState::HalfOpen);
    EXPECT_NO_THROW(reg.submit("m", image(12)).get());
    EXPECT_EQ(reg.breakerState("m"), BreakerState::Closed);
    EXPECT_EQ(reg.state("m"), ModelState::Serving);
    const serve::ModelSnapshot snap = reg.modelSnapshot("m");
    EXPECT_EQ(snap.recoveries, 1u);
    EXPECT_GE(snap.probes, 3u);
    EXPECT_FALSE(snap.toJson().empty());
}

TEST(ModelRegistry, InFlightRequestsBitExactAcrossSwapOfOtherModel)
{
    RegistryConfig rc;
    rc.server_template = fastTemplate();
    rc.server_template.limits.max_batch = 4;
    rc.server_template.limits.max_queue_delay = 500us;
    ModelRegistry reg(rc);
    ASSERT_TRUE(reg.install("a", miniArtifact("a", 1, 5)).ok);
    ASSERT_TRUE(reg.install("b", miniArtifact("b", 1, 6)).ok);

    nn::Network net_a =
        nn::buildTopology(miniSpec(5), nn::PoolingMode::Max);
    core::ScNetwork ref_a(net_a, miniConfig());
    const core::PredictOptions popts =
        serve::QosPolicy{core::EngineMode::Fused, 0.0, 0}
            .predictOptions();

    // Keep a stream of requests in flight on model a while model b is
    // hot-swapped several times; a's results must be bit-exact with
    // the direct reference the whole way through.
    std::atomic<bool> stop{false};
    std::thread swapper([&] {
        for (uint32_t v = 2; !stop.load(); ++v) {
            ASSERT_TRUE(
                reg.install("b", miniArtifact("b", v, 6 + v)).ok);
        }
    });
    for (uint64_t i = 0; i < 48; ++i) {
        const nn::Tensor img = image(500 + i);
        serve::RequestOptions opts;
        opts.accuracy = serve::AccuracyClass::High;
        opts.seed = 9000 + i;
        const serve::InferenceResult r =
            reg.submit("a", img, opts).get();
        core::ForwardInfo info;
        const size_t pred =
            ref_a.predictWith(img, 9000 + i, popts, nullptr, &info);
        ASSERT_EQ(r.predicted, pred) << "request " << i;
        ASSERT_EQ(r.scores, info.scores) << "request " << i;
    }
    stop.store(true);
    swapper.join();
    EXPECT_GE(reg.modelSnapshot("b").swaps, 1u);
}

TEST(ModelRegistry, ConcurrentRouteSwapRetireIsRaceFree)
{
    // Exercised under TSan in CI: submitters, an installer hot-swapping
    // one model, a snapshot poller and a late retire all racing.
    RegistryConfig rc;
    rc.server_template = fastTemplate();
    rc.server_template.limits.max_batch = 2;
    ModelRegistry reg(rc);
    ASSERT_TRUE(reg.install("a", miniArtifact("a", 1, 5)).ok);
    ASSERT_TRUE(reg.install("b", miniArtifact("b", 1, 6)).ok);

    constexpr int kPerThread = 24;
    std::atomic<int> completed{0};
    std::atomic<bool> stop{false};
    auto submitter = [&](const std::string &id, uint64_t base) {
        for (int i = 0; i < kPerThread; ++i) {
            serve::RequestOptions opts;
            opts.seed = base + i;
            try {
                reg.submit(id, image(base + i), opts).get();
                completed.fetch_add(1);
            } catch (const ServeError &) {
                // Unavailable during a swap/retire window is fine;
                // what matters is no data race and no lost future.
            }
        }
    };
    std::thread t1(submitter, "a", 1000);
    std::thread t2(submitter, "b", 2000);
    std::thread installer([&] {
        for (uint32_t v = 2; v < 6; ++v)
            reg.install("b", miniArtifact("b", v, 10 + v));
    });
    std::thread poller([&] {
        while (!stop.load()) {
            (void)reg.snapshot();
            (void)reg.state("a");
            std::this_thread::yield();
        }
    });
    t1.join();
    t2.join();
    installer.join();
    stop.store(true);
    poller.join();

    EXPECT_TRUE(reg.retire("b"));
    EXPECT_EQ(codeOf(reg.submit("b", image(1))),
              ServeErrorCode::ModelUnavailable);
    // Every submit on "a" resolved (model a was never swapped).
    EXPECT_GE(completed.load(), kPerThread);
    reg.drain();
    reg.shutdown();
}

} // namespace
} // namespace scdcnn
