/**
 * @file
 * Tests for the fully-connected use of the feature extraction block
 * (pool_size = 1, as in the paper's Layer2) and related sizing rules.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "blocks/feature_block.h"
#include "sc/btanh.h"
#include "sc/rng.h"

namespace scdcnn {
namespace blocks {
namespace {

using Field = std::vector<std::vector<double>>;

std::pair<Field, Field>
singleField(size_t n, uint64_t seed)
{
    sc::SplitMix64 rng(seed);
    Field xs(1), ws(1);
    for (size_t i = 0; i < n; ++i) {
        xs[0].push_back(rng.nextInRange(-1.0, 1.0));
        ws[0].push_back(rng.nextInRange(-1.0, 1.0));
    }
    return {xs, ws};
}

TEST(FcFeatureBlock, PoolSizeOneUsesDirectBtanhSizing)
{
    FebConfig cfg;
    cfg.kind = FebKind::ApcAvgBtanh;
    cfg.n_inputs = 64;
    cfg.pool_size = 1;
    // No averaging stage -> per-cycle variance is n, so the direct
    // (2N) sizing applies instead of Eq. (3)'s N/2.
    EXPECT_EQ(FeatureBlock(cfg).stateCount(),
              sc::Btanh::stateCountDirect(64));
    cfg.pool_size = 4;
    EXPECT_EQ(FeatureBlock(cfg).stateCount(),
              sc::Btanh::stateCountAvgPool(64));
}

TEST(FcFeatureBlock, ApcTracksTanhOfInnerProduct)
{
    FebConfig cfg;
    cfg.kind = FebKind::ApcAvgBtanh;
    cfg.n_inputs = 32;
    cfg.pool_size = 1;
    cfg.length = 1 << 14;
    FeatureBlock feb(cfg);
    double err = 0;
    const int trials = 12;
    for (int t = 0; t < trials; ++t) {
        auto [xs, ws] = singleField(32, 700 + t);
        err += std::abs(feb.evaluate(xs, ws, 70 + t) -
                        FeatureBlock::reference(xs, ws, cfg.kind));
    }
    EXPECT_LT(err / trials, 0.15);
}

TEST(FcFeatureBlock, ReferenceWithOneFieldIsPlainTanh)
{
    Field xs = {{0.5, 0.5}};
    Field ws = {{0.6, -0.2}};
    // pool of one field: tanh(0.3 - 0.1)
    EXPECT_NEAR(FeatureBlock::reference(xs, ws, FebKind::ApcAvgBtanh),
                std::tanh(0.2), 1e-12);
    EXPECT_NEAR(FeatureBlock::reference(xs, ws, FebKind::ApcMaxBtanh),
                std::tanh(0.2), 1e-12);
}

TEST(FcFeatureBlock, MuxVariantStillBounded)
{
    FebConfig cfg;
    cfg.kind = FebKind::MuxAvgStanh;
    cfg.n_inputs = 32;
    cfg.pool_size = 1;
    cfg.length = 2048;
    FeatureBlock feb(cfg);
    auto [xs, ws] = singleField(32, 900);
    double v = feb.evaluate(xs, ws, 5);
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
}

TEST(FcFeatureBlock, SaturationSignsForStrongFields)
{
    FebConfig cfg;
    cfg.kind = FebKind::ApcAvgBtanh;
    cfg.n_inputs = 16;
    cfg.pool_size = 1;
    cfg.length = 2048;
    FeatureBlock feb(cfg);
    Field xs(1, std::vector<double>(16, 0.9));
    Field ws_pos(1, std::vector<double>(16, 0.9));
    Field ws_neg(1, std::vector<double>(16, -0.9));
    EXPECT_GT(feb.evaluate(xs, ws_pos, 1), 0.9);
    EXPECT_LT(feb.evaluate(xs, ws_neg, 2), -0.9);
}

} // namespace
} // namespace blocks
} // namespace scdcnn
