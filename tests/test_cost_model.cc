/**
 * @file
 * Tests for the gate library and structural cost builders.
 */

#include <gtest/gtest.h>

#include "blocks/feature_block.h"
#include "hw/cost_model.h"
#include "hw/gates.h"

namespace scdcnn {
namespace hw {
namespace {

using blocks::FebConfig;
using blocks::FebKind;

TEST(GateLibrary, AreasFollowNangateOrdering)
{
    // INV < NAND2 < AND2 < XOR2 < MUX2 < FA < DFF in placed area.
    EXPECT_LT(cellParams(Cell::Inv).area_um2,
              cellParams(Cell::Nand2).area_um2);
    EXPECT_LT(cellParams(Cell::Nand2).area_um2,
              cellParams(Cell::And2).area_um2);
    EXPECT_LT(cellParams(Cell::And2).area_um2,
              cellParams(Cell::Xor2).area_um2);
    EXPECT_LT(cellParams(Cell::Xor2).area_um2,
              cellParams(Cell::Mux2).area_um2);
    EXPECT_LT(cellParams(Cell::Mux2).area_um2,
              cellParams(Cell::FullAdder).area_um2);
    EXPECT_LT(cellParams(Cell::FullAdder).area_um2,
              cellParams(Cell::Dff).area_um2);
}

TEST(GateLibrary, NamesAreUnique)
{
    EXPECT_EQ(cellName(Cell::Xnor2), "XNOR2");
    EXPECT_EQ(cellName(Cell::FullAdder), "FA");
    EXPECT_NE(cellName(Cell::And2), cellName(Cell::Or2));
}

TEST(HwCost, AdditionTakesMaxDelay)
{
    HwCost a;
    a.area_um2 = 10;
    a.delay_ns = 1.0;
    HwCost b;
    b.area_um2 = 5;
    b.delay_ns = 2.0;
    HwCost c = a + b;
    EXPECT_DOUBLE_EQ(c.area_um2, 15);
    EXPECT_DOUBLE_EQ(c.delay_ns, 2.0);
}

TEST(HwCost, ChainAddsDelay)
{
    HwCost a;
    a.delay_ns = 1.0;
    HwCost b;
    b.delay_ns = 2.0;
    EXPECT_DOUBLE_EQ(a.chainedWith(b).delay_ns, 3.0);
}

TEST(HwCost, TimesScalesEverythingButDelay)
{
    HwCost a;
    a.area_um2 = 2;
    a.dynamic_w = 3;
    a.leakage_w = 4;
    a.delay_ns = 5;
    HwCost b = a.times(10);
    EXPECT_DOUBLE_EQ(b.area_um2, 20);
    EXPECT_DOUBLE_EQ(b.dynamic_w, 30);
    EXPECT_DOUBLE_EQ(b.leakage_w, 40);
    EXPECT_DOUBLE_EQ(b.delay_ns, 5);
}

TEST(HwCost, EnergyIsPowerTimesStreamTime)
{
    HwCost a;
    a.dynamic_w = 1.0;
    // 1 W for 1024 cycles at 5 ns = 5.12 uJ.
    EXPECT_NEAR(a.energyForLength(1024), 5.12e-6, 1e-12);
}

TEST(Builders, XnorArrayCountsLanes)
{
    EXPECT_NEAR(xnorArray(25).area_um2,
                25 * cellParams(Cell::Xnor2).area_um2, 1e-9);
}

TEST(Builders, MuxTreeUsesNMinusOneMuxes)
{
    double mux_area = cellParams(Cell::Mux2).area_um2;
    // 16-leaf tree: 15 MUX2 plus select buffers.
    EXPECT_GE(muxTree(16).area_um2, 15 * mux_area);
    EXPECT_LT(muxTree(16).area_um2, 15 * mux_area + 10);
}

TEST(Builders, MuxTreeDepthIsLogN)
{
    EXPECT_NEAR(muxTree(16).delay_ns,
                4 * cellParams(Cell::Mux2).delay_ns, 1e-9);
    EXPECT_NEAR(muxTree(2).delay_ns, cellParams(Cell::Mux2).delay_ns,
                1e-9);
}

TEST(Builders, SingleInputDegenerateBlocksAreFree)
{
    EXPECT_DOUBLE_EQ(muxTree(1).area_um2, 0.0);
    EXPECT_DOUBLE_EQ(orTree(1).area_um2, 0.0);
    EXPECT_DOUBLE_EQ(avgPoolMux(1).area_um2, 0.0);
    EXPECT_DOUBLE_EQ(hardwareMaxPool(1, 16).area_um2, 0.0);
}

TEST(Builders, ApproxCounterSavesFortyPercent)
{
    // Table 3 / Kim et al.: APC ~ 60% of the conventional PC gates.
    for (size_t n : {16u, 64u, 256u}) {
        double exact = parallelCounterExact(n).area_um2;
        double approx = parallelCounterApprox(n).area_um2;
        EXPECT_NEAR(approx / exact, 0.6, 1e-9) << n;
    }
}

TEST(Builders, CounterAreaGrowsLinearly)
{
    double a16 = parallelCounterExact(16).area_um2;
    double a64 = parallelCounterExact(64).area_um2;
    EXPECT_GT(a64, 3.0 * a16);
    EXPECT_LT(a64, 6.0 * a16);
}

TEST(Builders, ApcDeeperThanMuxTree)
{
    // Figure 15(b): APC-based paths are the long ones.
    EXPECT_GT(parallelCounterExact(64).delay_ns, muxTree(64).delay_ns);
}

TEST(Builders, TwoLineAdderAreaOverheadIsLarge)
{
    // Section 4.1 limitation (ii): two-line inner products cost far
    // more than MUX ones.
    EXPECT_GT(twoLineAdderTree(16).area_um2, 4.0 * muxTree(16).area_um2);
}

TEST(Builders, StanhSizeGrowsWithStates)
{
    EXPECT_LT(stanhFsm(8).area_um2, stanhFsm(64).area_um2);
}

TEST(Builders, BtanhBiggerThanStanh)
{
    // Btanh carries a multi-bit adder, Stanh only inc/dec.
    EXPECT_GT(btanhCounter(32, 64).area_um2, stanhFsm(32).area_um2);
}

TEST(Builders, SngDominatedByComparatorNotLfsr)
{
    double shared = sng(7, 1.0 / 64.0).area_um2;
    double unshared = sng(7, 1.0).area_um2;
    EXPECT_LT(shared, unshared);
    EXPECT_GT(lfsr(16).area_um2, 16 * 4.0);
}

/** Figure 15 shape checks across FEB kinds and input sizes. */
class FebCostSweep : public ::testing::TestWithParam<int>
{
  public:
    static HwCost costOf(FebKind kind, int n)
    {
        FebConfig cfg;
        cfg.kind = kind;
        cfg.n_inputs = static_cast<size_t>(n);
        cfg.length = 1024;
        return febCost(cfg);
    }
};

TEST_P(FebCostSweep, ApcBlocksCostMoreAreaThanMux)
{
    const int n = GetParam();
    EXPECT_GT(costOf(FebKind::ApcAvgBtanh, n).area_um2,
              costOf(FebKind::MuxAvgStanh, n).area_um2);
    EXPECT_GT(costOf(FebKind::ApcMaxBtanh, n).area_um2,
              costOf(FebKind::MuxMaxStanh, n).area_um2);
}

TEST_P(FebCostSweep, ApcBlocksAreSlower)
{
    const int n = GetParam();
    EXPECT_GT(costOf(FebKind::ApcAvgBtanh, n).delay_ns,
              costOf(FebKind::MuxAvgStanh, n).delay_ns);
}

TEST_P(FebCostSweep, MaxPoolCostsMoreThanAvgPool)
{
    const int n = GetParam();
    EXPECT_GT(costOf(FebKind::MuxMaxStanh, n).area_um2,
              costOf(FebKind::MuxAvgStanh, n).area_um2);
    EXPECT_GT(costOf(FebKind::ApcMaxBtanh, n).area_um2,
              costOf(FebKind::ApcAvgBtanh, n).area_um2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FebCostSweep,
                         ::testing::Values(16, 32, 64, 128, 256));

TEST(FebCost, AreaGrowsWithInputSize)
{
    for (FebKind kind : {FebKind::MuxAvgStanh, FebKind::ApcMaxBtanh}) {
        EXPECT_LT(FebCostSweep::costOf(kind, 16).area_um2,
                  FebCostSweep::costOf(kind, 256).area_um2);
    }
}

TEST(FebCost, MuxAvgIsTheCheapestDesign)
{
    // Section 6.1: MUX-Avg-Stanh is the most area- and energy-efficient.
    const int n = 64;
    double mux_avg = FebCostSweep::costOf(FebKind::MuxAvgStanh, n).area_um2;
    for (FebKind kind : {FebKind::MuxMaxStanh, FebKind::ApcAvgBtanh,
                         FebKind::ApcMaxBtanh}) {
        EXPECT_LT(mux_avg, FebCostSweep::costOf(kind, n).area_um2);
    }
}

TEST(FebCost, EnergyAtFixedLengthTracksPower)
{
    HwCost apc = FebCostSweep::costOf(FebKind::ApcMaxBtanh, 64);
    HwCost mux = FebCostSweep::costOf(FebKind::MuxAvgStanh, 64);
    EXPECT_GT(apc.energyForLength(1024), mux.energyForLength(1024));
}

} // namespace
} // namespace hw
} // namespace scdcnn
