/**
 * @file
 * Overload-robustness chaos suite: bounded admission (queue-full
 * rejection, typed errors), deadline-aware load shedding, cooperative
 * mid-stream cancellation (bit-exactness of batch-mates), and the
 * fault-injection harness — worker stalls, suppressed scheduler
 * polls, slow batches, queue-full bursts, clock skew — all driven
 * deterministically (ManualClock / shot-counted faults), proving the
 * server degrades gracefully instead of wedging or leaking futures.
 */

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/sc_network.h"
#include "nn/dataset.h"
#include "nn/network.h"
#include "nn/topology.h"
#include "serve/clock.h"
#include "serve/fault_injection.h"
#include "serve/metrics.h"
#include "serve/request_queue.h"
#include "serve/scheduler.h"
#include "serve/server.h"

namespace scdcnn {
namespace {

using namespace std::chrono_literals;
using serve::AccuracyClass;
using serve::AdmitResult;
using serve::BatchScheduler;
using serve::FaultInjector;
using serve::FaultPoint;
using serve::ManualClock;
using serve::SchedulerLimits;
using serve::ServeError;
using serve::ServeErrorCode;

SchedulerLimits
limits(size_t max_batch, std::chrono::microseconds delay)
{
    SchedulerLimits l;
    l.max_batch = max_batch;
    l.max_queue_delay = delay;
    return l;
}

/** Small, fast engine shared by the server-level chaos tests. */
struct OverloadFixture
{
    nn::Network net = nn::buildLeNet5(nn::PoolingMode::Max, 1);
    core::ScNetworkConfig cfg;
    std::unique_ptr<core::ScNetwork> sc;

    explicit OverloadFixture(size_t len = 128, size_t seg_words = 1)
    {
        cfg.bitstream_len = len;
        cfg.stream_segment_words = seg_words;
        sc = std::make_unique<core::ScNetwork>(net, cfg);
    }
};

/** Cancel signal that trips after a fixed number of polls — lets a
 *  test cancel mid-stream, not just before the first boundary. */
struct CancelAfterPolls final : core::CancelSignal
{
    explicit CancelAfterPolls(int after) : after_(after) {}

    bool cancelled() const override
    {
        return polls_.fetch_add(1) >= after_;
    }

    int after_;
    mutable std::atomic<int> polls_{0};
};

// ----------------------------------------------- fault injector unit

TEST(FaultInjector, ShotCountingAndPluggableStall)
{
    FaultInjector fi;
    std::atomic<int> stalls{0};
    std::atomic<long> stalled_us{0};
    fi.setStallFn([&](std::chrono::microseconds d) {
        stalls.fetch_add(1);
        stalled_us.fetch_add(d.count());
    });

    fi.arm(FaultPoint::WorkerPop, 2, 5ms);
    EXPECT_EQ(fi.armedCount(FaultPoint::WorkerPop), 2u);
    EXPECT_TRUE(fi.fire(FaultPoint::WorkerPop));
    EXPECT_TRUE(fi.fire(FaultPoint::WorkerPop));
    EXPECT_FALSE(fi.fire(FaultPoint::WorkerPop)); // shots consumed
    EXPECT_EQ(fi.firedCount(FaultPoint::WorkerPop), 2u);
    EXPECT_EQ(stalls.load(), 2);
    EXPECT_EQ(stalled_us.load(), 10000);

    // Other points are independent and disarm drops pending shots.
    EXPECT_FALSE(fi.fire(FaultPoint::QueueAdmit));
    fi.arm(FaultPoint::QueueAdmit, 5);
    fi.disarm(FaultPoint::QueueAdmit);
    EXPECT_FALSE(fi.fire(FaultPoint::QueueAdmit));
    EXPECT_EQ(fi.firedCount(FaultPoint::QueueAdmit), 0u);

    // Zero-duration shots never invoke the stall function.
    fi.arm(FaultPoint::SchedulerPoll, 1);
    EXPECT_TRUE(fi.fire(FaultPoint::SchedulerPoll));
    EXPECT_EQ(stalls.load(), 2);
}

TEST(SkewedClock, OffsetsBaseReadingsAndForcesPolling)
{
    ManualClock base;
    serve::SkewedClock skewed(&base);
    EXPECT_FALSE(skewed.isSteady());
    EXPECT_EQ(skewed.now(), base.now());
    skewed.setSkew(250ms);
    EXPECT_EQ(skewed.now(), base.now() + 250ms);
    base.advance(1s);
    EXPECT_EQ(skewed.now(), base.now() + 250ms);
    skewed.setSkew(-1s);
    EXPECT_EQ(skewed.now(), base.now() - 1s);
}

// -------------------------------------------- scheduler-level chaos

TEST(BatchScheduler, SweepDoomedDropsUnmeetableDeadlines)
{
    ManualClock clock;
    BatchScheduler s(limits(8, 1ms));
    s.setServiceEstimate(AccuracyClass::Fast, 4ms);
    const auto t = clock.now();

    s.push(1, AccuracyClass::Fast, t, t + 2ms);      // doomed: 2 < 4
    s.push(2, AccuracyClass::High, t, t + 2ms);      // doomed too
    s.push(3, AccuracyClass::Balanced, t, t + 10ms); // still feasible
    s.push(4, AccuracyClass::Balanced, t, std::nullopt); // no deadline

    const std::vector<uint64_t> shed = s.sweepDoomed(t);
    ASSERT_EQ(shed.size(), 2u);
    // Cheapest class sweeps first: the Fast request leads, High last.
    EXPECT_EQ(shed[0], 1u);
    EXPECT_EQ(shed[1], 2u);
    EXPECT_EQ(s.depth(), 2u);

    // Advancing past the feasible deadline dooms it as well.
    EXPECT_EQ(s.sweepDoomed(t + 7ms).size(), 1u);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(BatchScheduler, SweepDoomedIsSwitchable)
{
    ManualClock clock;
    SchedulerLimits l = limits(8, 1ms);
    l.shed_doomed = false;
    BatchScheduler s(l);
    const auto t = clock.now();
    s.push(1, AccuracyClass::Fast, t, t - 1ms); // already past due
    EXPECT_TRUE(s.sweepDoomed(t).empty());
    EXPECT_EQ(s.depth(), 1u);
}

TEST(BatchScheduler, PollFaultSuppressesOneCloseDecision)
{
    ManualClock clock;
    FaultInjector fi;
    BatchScheduler s(limits(2, 1ms));
    s.setFaultInjector(&fi);
    const auto t = clock.now();
    s.push(1, AccuracyClass::Balanced, t, std::nullopt);
    s.push(2, AccuracyClass::Balanced, t, std::nullopt); // full

    fi.arm(FaultPoint::SchedulerPoll, 1);
    EXPECT_FALSE(s.poll(t, false).has_value()); // close suppressed
    const auto plan = s.poll(t, false);         // next poll recovers
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->ids.size(), 2u);
    EXPECT_EQ(fi.firedCount(FaultPoint::SchedulerPoll), 1u);
}

// ------------------------------------------------ queue-level chaos

TEST(RequestQueue, AdmissionBoundIsPerClass)
{
    ManualClock clock;
    SchedulerLimits l = limits(8, 1h);
    l.max_queue_per_class = 2;
    serve::RequestQueue q(l, &clock);

    auto mk = [&](uint64_t id, AccuracyClass cls) {
        serve::PendingRequest r;
        r.id = id;
        r.opts.accuracy = cls;
        r.submitted = clock.now();
        return r;
    };
    EXPECT_EQ(q.push(mk(1, AccuracyClass::Balanced)),
              AdmitResult::Accepted);
    EXPECT_EQ(q.push(mk(2, AccuracyClass::Balanced)),
              AdmitResult::Accepted);
    // Balanced is at capacity; High still has room — the bound is a
    // per-class budget, not a global one.
    EXPECT_EQ(q.push(mk(3, AccuracyClass::Balanced)),
              AdmitResult::QueueFull);
    EXPECT_EQ(q.push(mk(4, AccuracyClass::High)),
              AdmitResult::Accepted);
    EXPECT_EQ(q.depth(), 3u);
}

TEST(RequestQueue, PopReturnsShedPayloadsBeforeBatches)
{
    ManualClock clock;
    serve::RequestQueue q(limits(8, 2ms), &clock);
    serve::PendingRequest r;
    r.id = 7;
    r.submitted = clock.now();
    r.deadline = clock.now() + 5ms;
    ASSERT_EQ(q.push(std::move(r)), AdmitResult::Accepted);

    clock.advance(10ms); // past the deadline: doomed
    serve::PopOutcome out = q.popBatch();
    EXPECT_FALSE(out.batch.has_value());
    EXPECT_FALSE(out.closed);
    ASSERT_EQ(out.shed.size(), 1u);
    EXPECT_EQ(out.shed[0].id, 7u);
    EXPECT_EQ(q.depth(), 0u);
}

// ------------------------------------- core cancellation bit-exact

TEST(Cancellation, SingleImageStopsAtSegmentBoundary)
{
    OverloadFixture fx(256, 1); // 4 words, boundaries after 1..3
    core::PredictOptions opts;
    opts.mode = core::EngineMode::Progressive;
    opts.progressive_margin = 1e9; // never early-exit
    opts.progressive_min_bits = 0;

    const nn::Tensor img = nn::DigitDataset::render(3, 11);
    core::ForwardInfo ref;
    fx.sc->predictWith(img, 99, opts, nullptr, &ref);
    EXPECT_FALSE(ref.cancelled);
    EXPECT_EQ(ref.effective_bits, 256u);

    CancelAfterPolls sig(1); // trip at the second boundary
    opts.cancel = &sig;
    core::ForwardInfo info;
    fx.sc->predictWith(img, 99, opts, nullptr, &info);
    EXPECT_TRUE(info.cancelled);
    EXPECT_FALSE(info.early_exit);
    EXPECT_EQ(info.effective_bits, 128u); // stopped after 2 segments
}

TEST(Cancellation, BatchMatesAreBitExactWhenOneImageCancels)
{
    OverloadFixture fx(256, 1);
    core::PredictOptions opts;
    opts.mode = core::EngineMode::Progressive;
    opts.progressive_margin = 1e9;
    opts.progressive_min_bits = 0;

    std::vector<nn::Tensor> images;
    std::vector<uint64_t> seeds;
    for (size_t i = 0; i < 4; ++i) {
        images.push_back(nn::DigitDataset::render(i, 5 + i));
        seeds.push_back(1000 + i);
    }
    ASSERT_TRUE(core::ScNetwork::batchKernelEligible(opts, 4));

    std::vector<core::ForwardInfo> ref;
    const std::vector<size_t> ref_preds =
        fx.sc->forwardBatch(images, seeds, opts, nullptr, &ref);

    CancelAfterPolls sig(1);
    std::vector<const core::CancelSignal *> cancels = {
        nullptr, nullptr, &sig, nullptr};
    std::vector<core::ForwardInfo> infos;
    const std::vector<size_t> preds = fx.sc->forwardBatch(
        images, seeds, opts, nullptr, &infos, &cancels);

    EXPECT_TRUE(infos[2].cancelled);
    EXPECT_EQ(infos[2].effective_bits, 128u);
    for (size_t i : {size_t{0}, size_t{1}, size_t{3}}) {
        // A cancelled batch-mate must leave the survivors' streams
        // untouched: identical scores, bits and predictions.
        EXPECT_FALSE(infos[i].cancelled);
        EXPECT_EQ(preds[i], ref_preds[i]);
        EXPECT_EQ(infos[i].effective_bits, ref[i].effective_bits);
        EXPECT_EQ(infos[i].scores, ref[i].scores);
    }
}

TEST(Cancellation, TokenTripsExplicitlyAndOnArmedDeadline)
{
    serve::CancelToken tok;
    EXPECT_FALSE(tok.cancelled());
    tok.cancel();
    EXPECT_TRUE(tok.cancelled());

    ManualClock clock;
    serve::CancelToken armed;
    armed.armDeadline(&clock, clock.now() + 10ms);
    EXPECT_FALSE(armed.cancelled());
    clock.advance(20ms);
    EXPECT_TRUE(armed.cancelled());
}

// ----------------------------------------------- server-level chaos

TEST(OverloadServer, QueueFullBurstRejectsWithTypedError)
{
    OverloadFixture fx;
    FaultInjector fi;
    serve::ServerConfig scfg;
    scfg.limits = limits(4, 500us);
    scfg.faults = &fi;
    serve::InferenceServer server(*fx.sc, scfg);

    fi.arm(FaultPoint::QueueAdmit, 2);
    for (int i = 0; i < 2; ++i) {
        auto fut = server.submit(nn::DigitDataset::render(1, 2));
        try {
            fut.get();
            FAIL() << "queue-full burst should reject";
        } catch (const ServeError &e) {
            EXPECT_EQ(e.code(), ServeErrorCode::QueueFull);
        }
    }
    // The burst over, admission recovers.
    auto ok = server.submit(nn::DigitDataset::render(2, 3));
    server.drain();
    EXPECT_NO_THROW(ok.get());

    const auto snap = server.metricsSnapshot();
    EXPECT_EQ(snap.rejected, 2u);
    EXPECT_EQ(snap.rejected_queue_full, 2u);
    EXPECT_EQ(snap.completed, 1u);
    EXPECT_EQ(server.outstanding(), 0u);
}

TEST(OverloadServer, DoomedRequestsAreShedBeforeCompute)
{
    OverloadFixture fx;
    ManualClock clock;
    serve::ServerConfig scfg;
    scfg.limits = limits(8, 2ms);
    serve::InferenceServer server(*fx.sc, scfg, &clock);

    serve::RequestOptions opts;
    opts.deadline = 10ms;
    std::vector<std::future<serve::InferenceResult>> futs;
    for (size_t i = 0; i < 3; ++i)
        futs.push_back(
            server.submit(nn::DigitDataset::render(i, 3 + i), opts));

    // Time jumps straight past every deadline (manual clock): the
    // sweep must fail the requests without spending any compute.
    clock.advance(20ms);
    for (auto &f : futs) {
        try {
            f.get();
            FAIL() << "doomed request should be shed";
        } catch (const ServeError &e) {
            EXPECT_EQ(e.code(), ServeErrorCode::Shed);
        }
    }
    const auto snap = server.metricsSnapshot();
    EXPECT_EQ(snap.shed, 3u);
    EXPECT_EQ(snap.completed, 0u);
    EXPECT_EQ(snap.batches, 0u);
    EXPECT_EQ(server.outstanding(), 0u);
}

TEST(OverloadServer, CancelledRequestNeverCorruptsBatchMates)
{
    OverloadFixture fx;
    serve::ServerConfig scfg;
    scfg.limits = limits(3, 1h); // closes only when full
    serve::InferenceServer server(*fx.sc, scfg);

    serve::RequestOptions opts;
    opts.accuracy = AccuracyClass::High;
    const nn::Tensor a = nn::DigitDataset::render(1, 4);
    const nn::Tensor b = nn::DigitDataset::render(2, 5);
    const nn::Tensor c = nn::DigitDataset::render(3, 6);

    opts.seed = 501;
    auto fa = server.submit(a, opts);
    opts.seed = 502;
    auto sb = server.submitCancellable(b, opts);
    sb.cancel->cancel(); // while queued: the batch is not full yet
    opts.seed = 503;
    auto fc = server.submit(c, opts); // closes the batch
    server.drain();

    EXPECT_THROW(sb.result.get(), ServeError);
    // The survivors ran as a smaller batch and still match direct
    // predict() bit-for-bit at their seeds.
    EXPECT_EQ(fa.get().predicted, fx.sc->predict(a, 501));
    EXPECT_EQ(fc.get().predicted, fx.sc->predict(c, 503));

    const auto snap = server.metricsSnapshot();
    EXPECT_EQ(snap.cancelled, 1u);
    EXPECT_EQ(snap.completed, 2u);
    EXPECT_EQ(server.outstanding(), 0u);
}

TEST(OverloadServer, WorkerStallsStillAnswerEverything)
{
    OverloadFixture fx;
    FaultInjector fi;
    std::atomic<int> stalls{0};
    fi.setStallFn(
        [&](std::chrono::microseconds) { stalls.fetch_add(1); });
    serve::ServerConfig scfg;
    scfg.limits = limits(2, 200us);
    scfg.faults = &fi;
    serve::InferenceServer server(*fx.sc, scfg);

    fi.arm(FaultPoint::WorkerPop, 3, 5ms);
    std::vector<std::future<serve::InferenceResult>> futs;
    for (size_t i = 0; i < 6; ++i)
        futs.push_back(server.submit(nn::DigitDataset::render(i, 7)));
    server.drain();
    for (auto &f : futs)
        EXPECT_NO_THROW(f.get());

    // max_batch 2 over 6 requests means at least 3 pops: every armed
    // stall fired, and none of them cost a request.
    EXPECT_EQ(fi.firedCount(FaultPoint::WorkerPop), 3u);
    EXPECT_EQ(stalls.load(), 3);
    EXPECT_EQ(server.metricsSnapshot().completed, 6u);
}

TEST(OverloadServer, SlowBatchInflatesEstimateAndDegrades)
{
    OverloadFixture fx;
    FaultInjector fi;
    serve::ServerConfig scfg;
    scfg.limits = limits(8, 50ms);
    scfg.limits.shed_doomed = false; // observe degradation, not sheds
    scfg.faults = &fi;
    serve::InferenceServer server(*fx.sc, scfg);

    serve::RequestOptions warm;
    warm.accuracy = AccuracyClass::Balanced;
    server.submit(nn::DigitDataset::render(1, 2), warm).get();

    // A stalled batch inflates the measured Balanced service time
    // through the EWMA...
    fi.arm(FaultPoint::BatchExecute, 1, 8ms);
    server.submit(nn::DigitDataset::render(2, 3), warm).get();
    EXPECT_EQ(fi.firedCount(FaultPoint::BatchExecute), 1u);

    // ...so a deadline the inflated estimate cannot cover degrades
    // the request to Fast instead of missing silently.
    serve::RequestOptions tight;
    tight.accuracy = AccuracyClass::Balanced;
    tight.deadline = 300us;
    serve::InferenceResult r =
        server.submit(nn::DigitDataset::render(3, 4), tight).get();
    EXPECT_EQ(r.served, AccuracyClass::Fast);
    EXPECT_TRUE(r.degraded);
}

TEST(OverloadServer, DeadlineStormResolvesEveryFuture)
{
    OverloadFixture fx;
    ManualClock clock;
    serve::ServerConfig scfg;
    scfg.limits = limits(8, 2ms);
    serve::InferenceServer server(*fx.sc, scfg, &clock);

    // Group A: deadlines the scheduler can expedite once time reaches
    // their urgency trigger. Group B: deadlines we jump straight
    // past. Keeping total submissions under max_batch and the first
    // advance under max_queue_delay pins every close to a deliberate
    // clock step — nothing closes Full or DelayExpired on its own.
    serve::RequestOptions a_opts, b_opts;
    a_opts.deadline = 3ms;  // urgent at +1ms (3ms - 2ms delay)
    b_opts.deadline = 50ms; // urgent long after the test's horizon
    std::vector<std::future<serve::InferenceResult>> group_a, group_b;
    for (size_t i = 0; i < 3; ++i) {
        group_a.push_back(
            server.submit(nn::DigitDataset::render(i, 2), a_opts));
        group_b.push_back(
            server.submit(nn::DigitDataset::render(i, 3), b_opts));
    }

    clock.advance(1500us); // A urgent, delay bound intact, none doomed
    size_t a_completed = 0;
    for (auto &f : group_a) {
        const serve::InferenceResult r = f.get();
        EXPECT_TRUE(r.deadline_met);
        ++a_completed;
    }
    EXPECT_EQ(a_completed, 3u);

    clock.advance(60ms); // now past every B deadline: shed, not run
    for (auto &f : group_b)
        EXPECT_THROW(f.get(), ServeError);
    server.drain(); // settle the outstanding bookkeeping

    const auto snap = server.metricsSnapshot();
    EXPECT_EQ(snap.completed, 3u);
    EXPECT_EQ(snap.shed, 3u);
    EXPECT_EQ(snap.good_completed, 3u);
    EXPECT_GT(snap.close_reasons[static_cast<size_t>(
                  serve::CloseReason::Expedited)],
              0u);
    EXPECT_EQ(server.outstanding(), 0u);
}

TEST(OverloadServer, SurvivesClockSkewJump)
{
    OverloadFixture fx;
    serve::SteadyClock base;
    serve::SkewedClock skewed(&base);
    serve::ServerConfig scfg;
    scfg.limits = limits(8, 1h); // only a time jump can close these
    serve::InferenceServer server(*fx.sc, scfg, &skewed);

    std::vector<std::future<serve::InferenceResult>> futs;
    for (size_t i = 0; i < 4; ++i)
        futs.push_back(server.submit(nn::DigitDataset::render(i, 9)));

    // A forward clock step expires the queue-delay bound at once; the
    // server must serve the batch rather than wedge on stale times.
    skewed.setSkew(2h);
    for (auto &f : futs)
        EXPECT_NO_THROW(f.get());
    EXPECT_EQ(server.metricsSnapshot().completed, 4u);
    EXPECT_EQ(server.outstanding(), 0u);
}

} // namespace
} // namespace scdcnn
