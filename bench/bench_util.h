/**
 * @file
 * Shared plumbing for the experiment-reproduction binaries: every bench
 * regenerates one of the paper's tables or figures and prints it as a
 * text table next to the paper's reference values.
 */

#ifndef SCDCNN_BENCH_BENCH_UTIL_H
#define SCDCNN_BENCH_BENCH_UTIL_H

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace scdcnn {
namespace bench {

/**
 * Unsigned environment knob with fallback. Parses strictly: the value
 * must be all digits with no trailing garbage, and only malformed or
 * out-of-range input falls back — an explicit "0" is a valid setting
 * (e.g. SCDCNN_EVAL_IMAGES=0 to skip an evaluation entirely).
 */
inline size_t
envSize(const char *name, size_t fallback)
{
    const char *v = std::getenv(name);
    if (v == nullptr || *v == '\0')
        return fallback;
    if (!std::isdigit(static_cast<unsigned char>(*v)))
        return fallback; // rejects "-1" (strtoull would wrap it)
    char *end = nullptr;
    errno = 0;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0' || errno == ERANGE)
        return fallback;
    return static_cast<size_t>(parsed);
}

/** Dataset / weight-cache directory (repo-local by default). */
inline std::string
dataDir()
{
    const char *v = std::getenv("SCDCNN_DATA_DIR");
    return v != nullptr && *v != '\0' ? std::string(v) : "data";
}

/** Number of test images for SC bit-level evaluations. */
inline size_t
evalImages()
{
    return envSize("SCDCNN_EVAL_IMAGES", 60);
}

/** Banner for one experiment binary. */
inline void
banner(const char *experiment_id, const char *what)
{
    std::printf("=== SC-DCNN reproduction: %s ===\n%s\n\n",
                experiment_id, what);
}

} // namespace bench
} // namespace scdcnn

#endif // SCDCNN_BENCH_BENCH_UTIL_H
