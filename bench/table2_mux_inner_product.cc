/**
 * @file
 * Table 2: absolute errors of the MUX-based inner product block across
 * input sizes and bit-stream lengths.
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "blocks/inner_product.h"
#include "common/table.h"
#include "sc/rng.h"

using namespace scdcnn;

namespace {

double
meanAbsError(size_t n, size_t len, int trials)
{
    double err = 0;
    for (int t = 0; t < trials; ++t) {
        sc::SplitMix64 vals(1000 + t * 37 + n + len);
        std::vector<double> xs(n), ws(n);
        for (size_t i = 0; i < n; ++i) {
            xs[i] = vals.nextInRange(-1.0, 1.0);
            ws[i] = vals.nextInRange(-1.0, 1.0);
        }
        sc::SngBank bank(700 + t);
        err += std::abs(
            blocks::MuxInnerProduct::estimate(xs, ws, len, bank) -
            blocks::innerProductReference(xs, ws));
    }
    return err / trials;
}

} // namespace

int
main()
{
    bench::banner("Table 2",
                  "Absolute errors of the MUX-based inner product "
                  "block vs input size and bit-stream length.");
    const int trials = static_cast<int>(bench::envSize(
        "SCDCNN_TABLE2_TRIALS", 30));
    const size_t sizes[] = {16, 32, 64};
    const size_t lengths[] = {512, 1024, 2048, 4096};
    const double paper[3][4] = {{0.54, 0.39, 0.28, 0.21},
                                {1.18, 0.77, 0.56, 0.38},
                                {2.35, 1.58, 1.19, 0.79}};

    TextTable t("Absolute error of MUX inner product "
                "(paper values in parentheses)");
    t.header({"Input size", "L=512", "L=1024", "L=2048", "L=4096"});
    for (int i = 0; i < 3; ++i) {
        std::vector<std::string> row = {
            TextTable::num(static_cast<long long>(sizes[i]))};
        for (int j = 0; j < 4; ++j) {
            row.push_back(
                TextTable::num(meanAbsError(sizes[i], lengths[j],
                                            trials)) +
                " (" + TextTable::num(paper[i][j]) + ")");
        }
        t.row(row);
    }
    t.print(std::cout);

    std::printf("\nShape check: error grows with input size (more "
                "dropped bits) and shrinks roughly as 1/sqrt(L), as in "
                "the paper.\n");
    return 0;
}
