/**
 * @file
 * Table 3: relative errors of the APC-based inner product block
 * compared with the conventional (exact) parallel counter.
 */

#include <cmath>
#include <iostream>
#include <numeric>
#include <vector>

#include "bench_util.h"
#include "blocks/inner_product.h"
#include "common/table.h"
#include "sc/rng.h"

using namespace scdcnn;

namespace {

double
meanRelativeError(size_t n, size_t len, int trials)
{
    double rel = 0;
    for (int t = 0; t < trials; ++t) {
        sc::SplitMix64 vals(2200 + t * 53 + n + len);
        std::vector<double> xs(n), ws(n);
        for (size_t i = 0; i < n; ++i) {
            xs[i] = vals.nextDouble();
            ws[i] = vals.nextDouble();
        }
        // Identical streams to both counters isolates the APC error.
        sc::SngBank bank_a(800 + t);
        sc::SngBank bank_b(800 + t);
        auto apc =
            blocks::ApcInnerProduct::counts(xs, ws, len, bank_a, true);
        auto pc =
            blocks::ApcInnerProduct::counts(xs, ws, len, bank_b, false);
        double sum_apc = std::accumulate(apc.begin(), apc.end(), 0.0);
        double sum_pc = std::accumulate(pc.begin(), pc.end(), 0.0);
        rel += std::abs(sum_apc - sum_pc) / sum_pc;
    }
    return rel / trials;
}

} // namespace

int
main()
{
    bench::banner("Table 3",
                  "Relative error of the APC-based inner product vs "
                  "the conventional parallel counter.");
    const int trials = static_cast<int>(bench::envSize(
        "SCDCNN_TABLE3_TRIALS", 30));
    const size_t sizes[] = {16, 32, 64};
    const size_t lengths[] = {128, 256, 384, 512};
    const double paper[3][4] = {{1.01, 0.87, 0.88, 0.84},
                                {0.70, 0.61, 0.58, 0.57},
                                {0.49, 0.44, 0.44, 0.42}};

    TextTable t("Relative error %, APC vs conventional PC "
                "(paper values in parentheses)");
    t.header({"Input size", "L=128", "L=256", "L=384", "L=512"});
    for (int i = 0; i < 3; ++i) {
        std::vector<std::string> row = {
            TextTable::num(static_cast<long long>(sizes[i]))};
        for (int j = 0; j < 4; ++j) {
            row.push_back(
                TextTable::num(
                    100.0 *
                    meanRelativeError(sizes[i], lengths[j], trials)) +
                " (" + TextTable::num(paper[i][j]) + ")");
        }
        t.row(row);
    }
    t.print(std::cout);

    std::printf("\nShape check: relative error stays around or below "
                "1%% and shrinks with input size, at ~40%% fewer gates "
                "(see the cost model), matching Kim et al. and the "
                "paper.\n");
    return 0;
}
