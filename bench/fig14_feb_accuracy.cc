/**
 * @file
 * Figure 14: input size vs absolute inaccuracy for the four feature
 * extraction block designs at several bit-stream lengths, with operands
 * uniform over [-1, 1] and the paper's state-count equations.
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "blocks/feature_block.h"
#include "common/table.h"
#include "sc/rng.h"

using namespace scdcnn;

namespace {

double
meanInaccuracy(blocks::FebKind kind, size_t n, size_t len, int trials)
{
    blocks::FebConfig cfg;
    cfg.kind = kind;
    cfg.n_inputs = n;
    cfg.length = len;
    blocks::FeatureBlock feb(cfg);
    double err = 0;
    for (int t = 0; t < trials; ++t) {
        sc::SplitMix64 vals(6000 + t * 29 + n + len);
        std::vector<std::vector<double>> xs(4), ws(4);
        for (int j = 0; j < 4; ++j) {
            for (size_t i = 0; i < n; ++i) {
                xs[j].push_back(vals.nextInRange(-1.0, 1.0));
                ws[j].push_back(vals.nextInRange(-1.0, 1.0));
            }
        }
        err += std::abs(feb.evaluate(xs, ws, 1300 + t) -
                        blocks::FeatureBlock::reference(xs, ws, kind));
    }
    return err / trials;
}

} // namespace

int
main()
{
    bench::banner("Figure 14",
                  "Input size vs absolute inaccuracy of the four "
                  "feature extraction blocks (operands ~ U[-1,1], "
                  "state counts from Eqs. (1)-(3)).");
    const int trials = static_cast<int>(bench::envSize(
        "SCDCNN_FIG14_TRIALS", 20));
    const size_t sizes[] = {16, 32, 64, 128, 256};
    const size_t lengths[] = {256, 512, 1024};

    for (blocks::FebKind kind :
         {blocks::FebKind::MuxAvgStanh, blocks::FebKind::MuxMaxStanh,
          blocks::FebKind::ApcAvgBtanh, blocks::FebKind::ApcMaxBtanh}) {
        std::string title = blocks::febKindName(kind);
        title += " absolute inaccuracy";
        TextTable t(title);
        t.header({"Input size", "L=256", "L=512", "L=1024"});
        for (size_t n : sizes) {
            std::vector<std::string> row = {
                TextTable::num(static_cast<long long>(n))};
            for (size_t len : lengths)
                row.push_back(
                    TextTable::num(meanInaccuracy(kind, n, len, trials),
                                   3));
            t.row(row);
        }
        t.print(std::cout);
        std::printf("\n");
    }

    std::printf("Shape check (paper Fig. 14): APC blocks beat MUX "
                "blocks everywhere; MUX blocks degrade with input "
                "size; APC-Max-Btanh is the most accurate and improves "
                "with more inputs; longer streams help the MUX "
                "designs.\n");
    return 0;
}
