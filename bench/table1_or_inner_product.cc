/**
 * @file
 * Table 1: absolute errors of the OR-gate-based inner product block
 * (unipolar vs bipolar operands, best pre-scaling, L = 1024).
 */

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "blocks/inner_product.h"
#include "common/table.h"
#include "sc/rng.h"

using namespace scdcnn;

namespace {

double
meanAbsError(size_t n, bool bipolar, size_t len, int trials)
{
    double best = 1e300;
    for (double scale : blocks::OrInnerProduct::scaleCandidates(n)) {
        double err = 0;
        for (int t = 0; t < trials; ++t) {
            sc::SplitMix64 vals(9000 + t * 131 + n);
            std::vector<double> xs(n), ws(n);
            for (size_t i = 0; i < n; ++i) {
                if (bipolar) {
                    xs[i] = vals.nextInRange(-1.0, 1.0);
                    ws[i] = vals.nextInRange(-1.0, 1.0);
                } else {
                    xs[i] = vals.nextDouble();
                    ws[i] = vals.nextDouble();
                }
            }
            sc::SngBank bank(500 + t);
            double got =
                bipolar ? blocks::OrInnerProduct::estimateBipolar(
                              xs, ws, scale, len, bank)
                        : blocks::OrInnerProduct::estimateUnipolar(
                              xs, ws, scale, len, bank);
            err += std::abs(got -
                            blocks::innerProductReference(xs, ws));
        }
        best = std::min(best, err / trials);
    }
    return best;
}

} // namespace

int
main()
{
    bench::banner("Table 1",
                  "Absolute errors of the OR gate-based inner product "
                  "block (L = 1024, best pre-scaling per cell).");
    const size_t len = 1024;
    const int trials = static_cast<int>(bench::envSize(
        "SCDCNN_TABLE1_TRIALS", 30));

    TextTable t("Absolute error of OR-gate inner product "
                "(paper values in parentheses)");
    t.header({"Input size", "16", "32", "64"});
    const double paper_uni[] = {0.47, 0.66, 1.29};
    const double paper_bip[] = {1.54, 1.70, 2.3};
    const size_t sizes[] = {16, 32, 64};

    std::vector<std::string> uni_row = {"Unipolar inputs"};
    std::vector<std::string> bip_row = {"Bipolar inputs"};
    for (int i = 0; i < 3; ++i) {
        uni_row.push_back(
            TextTable::num(meanAbsError(sizes[i], false, len, trials)) +
            " (" + TextTable::num(paper_uni[i]) + ")");
        bip_row.push_back(
            TextTable::num(meanAbsError(sizes[i], true, len, trials)) +
            " (" + TextTable::num(paper_bip[i]) + ")");
    }
    t.row(uni_row);
    t.row(bip_row);
    t.print(std::cout);

    std::printf("\nShape check: bipolar errors exceed unipolar at every "
                "size and grow with input size, reproducing the paper's "
                "conclusion that OR-gate addition is unusable for "
                "bipolar SC-DCNN operands.\n");
    return 0;
}
