/**
 * @file
 * Serving-layer load benchmark: open-loop (Poisson arrivals) and
 * closed-loop load against the InferenceServer, comparing per-request
 * serving (max_batch=1, full-precision High class, no deadlines — the
 * baseline a caller-assembled forwardBatch world gives you) with the
 * dynamic micro-batching scheduler plus deadline-aware progressive
 * precision. Both sides see the same offered load; throughput,
 * p50/p95/p99 latency, batch-size distribution, early-exit rate and
 * effective bits go to BENCH_serving.json (override with
 * SCDCNN_SERVE_JSON) for tools/bench_check.py to gate.
 *
 * A third section measures overload robustness: the hardened config
 * (bounded per-class admission, doomed-request shedding, deadline-
 * armed cancellation) at 1.0x and 2.5x the calibrated per-request
 * capacity. Goodput — answers that met their deadline per second —
 * plus the rejected/shed/expedited counters land in an
 * "overload_gate" block that bench_check.py enforces.
 *
 * The network is the decisive-logit LeNet-5 variant (output layer
 * programmed to +1/-1/0 rows — the confident regime a trained network
 * produces) so Progressive early exit behaves as it does on trained
 * weights; see bench_throughput.cc for the rationale.
 *
 * Knobs: SCDCNN_SERVE_LEN (bit-stream length, default 256),
 * SCDCNN_SERVE_IMAGES (requests per scenario, default 48),
 * SCDCNN_SERVE_MAX_BATCH (default 8),
 * SCDCNN_SERVE_CLIENTS (closed-loop clients, default 4).
 */

#include <chrono>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "core/sc_network.h"
#include "nn/dataset.h"
#include "nn/network.h"
#include "serve/server.h"

using namespace scdcnn;
using SteadyClock = std::chrono::steady_clock;

namespace {

double
msSince(SteadyClock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               SteadyClock::now() - t0)
        .count();
}

/** LeNet-5 with the output layer programmed to decisive +1/-1/0
 *  weight rows (see file comment). */
nn::Network
decisiveLenet5()
{
    nn::Network net = nn::buildLeNet5(nn::PoolingMode::Max, 1);
    nn::programDecisiveLogits(net);
    return net;
}

struct ScenarioResult
{
    std::string name;
    size_t max_batch = 1;
    size_t n_images = 0;
    double offered_ips = 0;  //!< 0 for closed-loop
    double achieved_ips = 0;
    double goodput_ips = 0;  //!< completed-within-deadline per second
    double wall_ms = 0;
    uint64_t client_ok = 0;     //!< futures that held a result
    uint64_t client_failed = 0; //!< futures that held a ServeError
    serve::MetricsSnapshot metrics;
};

/** Resolve a batch of futures, counting results, deadline-met
 *  results, and typed failures (rejected/shed/cancelled). */
void
settle(std::vector<std::future<serve::InferenceResult>> &futs,
       uint64_t &ok, uint64_t &ok_met, uint64_t &failed)
{
    for (auto &f : futs) {
        try {
            const serve::InferenceResult r = f.get();
            ++ok;
            if (r.deadline_met)
                ++ok_met;
        } catch (const serve::ServeError &) {
            ++failed;
        }
    }
    futs.clear();
}

/** Poisson-arrival open-loop run: submit n images at @p offered_ips,
 *  then wait for every answer. */
ScenarioResult
runOpenLoop(const core::ScNetwork &net, const char *name,
            serve::ServerConfig scfg, serve::RequestOptions ropts,
            size_t n, double offered_ips)
{
    serve::InferenceServer server(net, scfg);
    std::mt19937_64 rng(0xA221'7E57);
    std::exponential_distribution<double> gap(offered_ips);

    std::vector<std::future<serve::InferenceResult>> futs;
    futs.reserve(n);
    const SteadyClock::time_point t0 = SteadyClock::now();
    double arrival_s = 0.0;
    for (size_t i = 0; i < n; ++i) {
        arrival_s += gap(rng);
        std::this_thread::sleep_until(
            t0 + std::chrono::duration_cast<SteadyClock::duration>(
                     std::chrono::duration<double>(arrival_s)));
        futs.push_back(
            server.submit(nn::DigitDataset::render(i % 10, 100 + i),
                          ropts));
    }
    uint64_t ok = 0, ok_met = 0, failed = 0;
    settle(futs, ok, ok_met, failed);
    const double wall = msSince(t0);
    server.drain();

    ScenarioResult r;
    r.name = name;
    r.max_batch = scfg.limits.max_batch;
    r.n_images = n;
    r.offered_ips = offered_ips;
    r.achieved_ips = static_cast<double>(n) / (wall / 1000.0);
    r.goodput_ips = static_cast<double>(ok_met) / (wall / 1000.0);
    r.wall_ms = wall;
    r.client_ok = ok;
    r.client_failed = failed;
    r.metrics = server.metricsSnapshot();
    return r;
}

/**
 * Overload scenario on one overload-hardened server, three phases:
 *
 *   expedite — a few requests whose deadline equals max_queue_delay
 *              are urgent on arrival, forcing Expedited closes on a
 *              cold estimate (exercises the close path every time);
 *   poisson  — open loop at @p offered_ips; goodput (results that
 *              met their deadline per second of this phase's wall) is
 *              the scenario's headline number;
 *   burst    — @p burst back-to-back tight-deadline submits with no
 *              pacing: the class queue cap rejects the overflow
 *              deterministically and the admitted remainder becomes
 *              doomed behind the backlog and is shed (or cancelled
 *              in flight once its armed deadline trips).
 *
 * The returned metrics snapshot covers all phases; goodput covers
 * the poisson phase only.
 */
ScenarioResult
runOverload(const core::ScNetwork &net, const char *name,
            serve::ServerConfig scfg, serve::RequestOptions ropts,
            size_t n, double offered_ips, size_t burst)
{
    serve::InferenceServer server(net, scfg);
    uint64_t ok = 0, ok_met = 0, failed = 0;
    std::vector<std::future<serve::InferenceResult>> futs;

    // Phase 1: expedited warm-up (see function comment).
    serve::RequestOptions urgent = ropts;
    urgent.deadline = scfg.limits.max_queue_delay;
    for (size_t i = 0; i < 3; ++i)
        futs.push_back(
            server.submit(nn::DigitDataset::render(i, 40 + i), urgent));
    settle(futs, ok, ok_met, failed);

    // Phase 2: Poisson arrivals at the offered rate.
    std::mt19937_64 rng(0xA221'7E57);
    std::exponential_distribution<double> gap(offered_ips);
    const SteadyClock::time_point t0 = SteadyClock::now();
    double arrival_s = 0.0;
    for (size_t i = 0; i < n; ++i) {
        arrival_s += gap(rng);
        std::this_thread::sleep_until(
            t0 + std::chrono::duration_cast<SteadyClock::duration>(
                     std::chrono::duration<double>(arrival_s)));
        futs.push_back(
            server.submit(nn::DigitDataset::render(i % 10, 100 + i),
                          ropts));
    }
    uint64_t p_ok = 0, p_ok_met = 0, p_failed = 0;
    settle(futs, p_ok, p_ok_met, p_failed);
    const double wall = msSince(t0);

    // Phase 3: queue-full burst.
    serve::RequestOptions tight = ropts;
    tight.deadline = std::chrono::milliseconds(2);
    for (size_t i = 0; i < burst; ++i)
        futs.push_back(
            server.submit(nn::DigitDataset::render(i % 10, 200 + i),
                          tight));
    settle(futs, ok, ok_met, failed);
    server.drain();

    ScenarioResult r;
    r.name = name;
    r.max_batch = scfg.limits.max_batch;
    r.n_images = n;
    r.offered_ips = offered_ips;
    r.achieved_ips = static_cast<double>(p_ok) / (wall / 1000.0);
    r.goodput_ips = static_cast<double>(p_ok_met) / (wall / 1000.0);
    r.wall_ms = wall;
    r.client_ok = ok + p_ok;
    r.client_failed = failed + p_failed;
    r.metrics = server.metricsSnapshot();
    return r;
}

/** Closed-loop run: @p clients submit-wait-repeat until n answers. */
ScenarioResult
runClosedLoop(const core::ScNetwork &net, const char *name,
              serve::ServerConfig scfg, serve::RequestOptions ropts,
              size_t n, size_t clients)
{
    serve::InferenceServer server(net, scfg);
    std::atomic<size_t> next{0};
    const SteadyClock::time_point t0 = SteadyClock::now();
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&] {
            for (;;) {
                const size_t i = next.fetch_add(1);
                if (i >= n)
                    return;
                server
                    .submit(nn::DigitDataset::render(i % 10, 100 + i),
                            ropts)
                    .get();
            }
        });
    }
    for (auto &t : threads)
        t.join();
    const double wall = msSince(t0);

    ScenarioResult r;
    r.name = name;
    r.max_batch = scfg.limits.max_batch;
    r.n_images = n;
    r.achieved_ips = static_cast<double>(n) / (wall / 1000.0);
    r.wall_ms = wall;
    r.metrics = server.metricsSnapshot();
    return r;
}

void
printScenario(const ScenarioResult &r)
{
    const auto &m = r.metrics;
    std::printf("  %-22s %7.1f ips", r.name.c_str(), r.achieved_ips);
    if (r.offered_ips > 0)
        std::printf(" (offered %6.1f)", r.offered_ips);
    else
        std::printf("                 ");
    std::printf("  p50 %7.1f  p95 %7.1f  p99 %7.1f ms",
                m.total_latency.p50_ms, m.total_latency.p95_ms,
                m.total_latency.p99_ms);
    std::printf("  batch %4.1f  bits %6.1f  exits %4.0f%%\n",
                m.avg_batch_size, m.avg_effective_bits,
                100.0 * m.early_exit_rate);
    if (r.goodput_ips > 0 || r.client_failed > 0)
        std::printf("  %-22s %7.1f goodput ips  rejected %llu  shed "
                    "%llu  cancelled %llu  expedited %llu  depth %llu\n",
                    "", r.goodput_ips,
                    static_cast<unsigned long long>(m.rejected),
                    static_cast<unsigned long long>(m.shed),
                    static_cast<unsigned long long>(m.cancelled),
                    static_cast<unsigned long long>(
                        m.close_reasons[static_cast<size_t>(
                            serve::CloseReason::Expedited)]),
                    static_cast<unsigned long long>(m.max_queue_depth));
}

void
writeScenarioJson(std::FILE *f, const ScenarioResult &r, bool last)
{
    const auto &m = r.metrics;
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", r.name.c_str());
    std::fprintf(f, "      \"max_batch\": %zu,\n", r.max_batch);
    std::fprintf(f, "      \"images\": %zu,\n", r.n_images);
    if (r.offered_ips > 0)
        std::fprintf(f, "      \"offered_ips\": %.2f,\n", r.offered_ips);
    std::fprintf(f, "      \"achieved_ips\": %.2f,\n", r.achieved_ips);
    if (r.goodput_ips > 0 || r.client_failed > 0) {
        std::fprintf(f, "      \"goodput_ips\": %.2f,\n", r.goodput_ips);
        std::fprintf(f, "      \"client_ok\": %llu,\n",
                     static_cast<unsigned long long>(r.client_ok));
        std::fprintf(f, "      \"client_failed\": %llu,\n",
                     static_cast<unsigned long long>(r.client_failed));
    }
    std::fprintf(f, "      \"wall_ms\": %.1f,\n", r.wall_ms);
    std::fprintf(f, "      \"p50_ms\": %.2f,\n", m.total_latency.p50_ms);
    std::fprintf(f, "      \"p95_ms\": %.2f,\n", m.total_latency.p95_ms);
    std::fprintf(f, "      \"p99_ms\": %.2f,\n", m.total_latency.p99_ms);
    std::fprintf(f, "      \"metrics\": %s\n", m.toJson().c_str());
    std::fprintf(f, "    }%s\n", last ? "" : ",");
}

} // namespace

int
main()
{
    bench::banner("serving",
                  "Async inference serving: dynamic micro-batching + "
                  "deadline-aware progressive precision vs per-request "
                  "serving");

    const size_t len = bench::envSize("SCDCNN_SERVE_LEN", 256);
    const size_t n = std::max<size_t>(
        4, bench::envSize("SCDCNN_SERVE_IMAGES", 48));
    const size_t max_batch =
        std::max<size_t>(2, bench::envSize("SCDCNN_SERVE_MAX_BATCH", 8));
    const size_t clients =
        std::max<size_t>(1, bench::envSize("SCDCNN_SERVE_CLIENTS", 4));

    nn::Network net = decisiveLenet5();
    core::ScNetworkConfig cfg;
    cfg.bitstream_len = len;
    // One-word segments give Progressive a checkpoint every 64
    // cycles; at short serving lengths the default 4-word granularity
    // would cover the whole stream and never early-exit.
    cfg.stream_segment_words = 1;
    core::ScNetwork sc(net, cfg);
    const nn::Tensor calib_img = nn::DigitDataset::render(3, 7);

    // Calibrate: full-precision single-image latency sets the offered
    // loads, so "1.5x the per-request capacity" means the same thing
    // on every box.
    sc.predict(calib_img, 1); // warm-up
    auto t0 = SteadyClock::now();
    for (int r = 0; r < 3; ++r)
        sc.predict(calib_img, 2 + r);
    const double fused_ms = msSince(t0) / 3.0;
    const double capacity_ips = 1000.0 / fused_ms;
    std::printf("calibration: fused predict %.1f ms  (~%.1f ips "
                "per-request capacity)\n\n",
                fused_ms, capacity_ips);

    // Per-request baseline: every request its own batch, full
    // precision, no deadline — serving without the new subsystem's
    // policies.
    serve::ServerConfig per_request;
    per_request.limits.max_batch = 1;
    per_request.limits.max_queue_delay = std::chrono::microseconds(100);
    // The legacy throughput scenarios keep every admitted request:
    // shedding is benchmarked separately below, and turning it off
    // here keeps these series comparable with earlier runs.
    per_request.limits.shed_doomed = false;
    serve::RequestOptions high;
    high.accuracy = serve::AccuracyClass::High;

    // Micro-batching + QoS: dynamic batches under (max_batch,
    // max_queue_delay), Balanced progressive precision, a deadline
    // generous at light load but binding under overload — queue
    // pressure degrades precision instead of blowing up latency.
    serve::ServerConfig micro;
    micro.limits.max_batch = max_batch;
    micro.limits.max_queue_delay =
        std::chrono::microseconds(static_cast<long>(fused_ms * 250.0));
    micro.limits.shed_doomed = false; // see per_request comment
    const size_t min_bits = std::max<size_t>(64, len / 4);
    micro.qos[static_cast<size_t>(serve::AccuracyClass::Balanced)] = {
        core::EngineMode::Progressive, 4.0, min_bits};
    micro.qos[static_cast<size_t>(serve::AccuracyClass::Fast)] = {
        core::EngineMode::Progressive, 2.0, std::max<size_t>(64, len / 8)};
    serve::RequestOptions balanced;
    balanced.accuracy = serve::AccuracyClass::Balanced;
    balanced.deadline = std::chrono::microseconds(
        static_cast<long>(fused_ms * 6000.0)); // ~6 service times

    const double offered = 1.5 * capacity_ips;
    const double light = 0.6 * capacity_ips;

    std::printf("open loop (Poisson arrivals, %zu images):\n", n);
    std::vector<ScenarioResult> open;
    open.push_back(runOpenLoop(sc, "per_request@1.5x", per_request,
                               high, n, offered));
    printScenario(open.back());
    open.push_back(
        runOpenLoop(sc, "microbatch@1.5x", micro, balanced, n, offered));
    printScenario(open.back());
    open.push_back(runOpenLoop(sc, "per_request@0.6x", per_request,
                               high, n, light));
    printScenario(open.back());
    open.push_back(
        runOpenLoop(sc, "microbatch@0.6x", micro, balanced, n, light));
    printScenario(open.back());

    std::printf("\nclosed loop (%zu clients, %zu images):\n", clients,
                n);
    std::vector<ScenarioResult> closed;
    closed.push_back(runClosedLoop(sc, "per_request", per_request, high,
                                   n, clients));
    printScenario(closed.back());
    closed.push_back(
        runClosedLoop(sc, "microbatch", micro, balanced, n, clients));
    printScenario(closed.back());

    // Overload hardening: the same micro-batching server with the
    // full robustness config — bounded per-class admission, doomed-
    // request shedding, and deadline-armed cancellation — measured at
    // nominal load and at 2.5x capacity. The headline is goodput
    // (answers that met their deadline per second): admission control
    // and shedding spend the scarce compute on requests that can
    // still make it, so goodput should hold up under overload instead
    // of collapsing with the queue.
    serve::ServerConfig hardened = micro;
    hardened.limits.shed_doomed = true;
    hardened.limits.max_queue_per_class = 2 * max_batch;
    hardened.cancel_on_deadline = true;
    serve::RequestOptions deadlined = balanced;
    deadlined.deadline = std::chrono::microseconds(
        static_cast<long>(fused_ms * 8000.0)); // ~8 service times
    const double overload_deadline_ms = fused_ms * 8.0;

    std::printf("\noverload (hardened: admission cap %zu/class, "
                "shedding + deadline cancellation on):\n",
                hardened.limits.max_queue_per_class);
    std::vector<ScenarioResult> over;
    over.push_back(runOverload(sc, "overload@1.0x", hardened, deadlined,
                               n, 1.0 * capacity_ips, /*burst=*/0));
    printScenario(over.back());
    over.push_back(runOverload(sc, "overload@2.5x", hardened, deadlined,
                               n, 2.5 * capacity_ips,
                               /*burst=*/6 * hardened.limits
                                                 .max_queue_per_class));
    printScenario(over.back());
    const double goodput_1x = over[0].goodput_ips;
    const double goodput_over = over[1].goodput_ips;
    std::printf("  goodput at 2.5x offered load: %.1f ips (%.0f%% of "
                "the 1.0x goodput)\n",
                goodput_over, 100.0 * goodput_over / goodput_1x);

    const double gate_per_request = open[0].achieved_ips;
    const double gate_micro = open[1].achieved_ips;
    std::printf("\nsame offered load (%.1f ips): per-request %.1f ips "
                "-> micro-batching %.1f ips (%.2fx)\n",
                offered, gate_per_request, gate_micro,
                gate_micro / gate_per_request);

    const char *json_env = std::getenv("SCDCNN_SERVE_JSON");
    const std::string json_path =
        json_env != nullptr && *json_env != '\0' ? json_env
                                                 : "BENCH_serving.json";
    std::FILE *f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"serving\",\n");
    std::fprintf(f, "  \"network\": \"lenet5-decisive\",\n");
    std::fprintf(f, "  \"bitstream_len\": %zu,\n", len);
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"compiler\": \"%s\",\n", __VERSION__);
    std::fprintf(f, "  \"calib_fused_ms\": %.3f,\n", fused_ms);
    std::fprintf(f, "  \"open_loop\": [\n");
    for (size_t i = 0; i < open.size(); ++i)
        writeScenarioJson(f, open[i], i + 1 == open.size());
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"closed_loop\": [\n");
    for (size_t i = 0; i < closed.size(); ++i)
        writeScenarioJson(f, closed[i], i + 1 == closed.size());
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"overload\": [\n");
    for (size_t i = 0; i < over.size(); ++i)
        writeScenarioJson(f, over[i], i + 1 == over.size());
    std::fprintf(f, "  ],\n");
    const auto &om = over[1].metrics;
    std::fprintf(f, "  \"overload_gate\": {\n");
    std::fprintf(f, "    \"deadline_ms\": %.2f,\n", overload_deadline_ms);
    std::fprintf(f, "    \"queue_cap_per_class\": %zu,\n",
                 hardened.limits.max_queue_per_class);
    std::fprintf(f, "    \"goodput_1x_ips\": %.2f,\n", goodput_1x);
    std::fprintf(f, "    \"goodput_2p5x_ips\": %.2f,\n", goodput_over);
    std::fprintf(f, "    \"goodput_ratio\": %.3f,\n",
                 goodput_1x > 0 ? goodput_over / goodput_1x : 0.0);
    std::fprintf(f, "    \"rejected\": %llu,\n",
                 static_cast<unsigned long long>(om.rejected));
    std::fprintf(f, "    \"shed\": %llu,\n",
                 static_cast<unsigned long long>(om.shed));
    std::fprintf(f, "    \"cancelled\": %llu,\n",
                 static_cast<unsigned long long>(om.cancelled));
    std::fprintf(f, "    \"expedited\": %llu,\n",
                 static_cast<unsigned long long>(
                     om.close_reasons[static_cast<size_t>(
                            serve::CloseReason::Expedited)]));
    std::fprintf(f, "    \"max_queue_depth\": %llu,\n",
                 static_cast<unsigned long long>(om.max_queue_depth));
    std::fprintf(f, "    \"overload_p99_ms\": %.2f\n",
                 om.total_latency.p99_ms);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"gate\": {\n");
    std::fprintf(f, "    \"offered_ips\": %.2f,\n", offered);
    std::fprintf(f, "    \"per_request_ips\": %.2f,\n",
                 gate_per_request);
    std::fprintf(f, "    \"microbatch_ips\": %.2f,\n", gate_micro);
    std::fprintf(f, "    \"microbatch_p99_ms\": %.2f\n",
                 open[1].metrics.total_latency.p99_ms);
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
    return 0;
}
