/**
 * @file
 * Serving-layer load benchmark: open-loop (Poisson arrivals) and
 * closed-loop load against the InferenceServer, comparing per-request
 * serving (max_batch=1, full-precision High class, no deadlines — the
 * baseline a caller-assembled forwardBatch world gives you) with the
 * dynamic micro-batching scheduler plus deadline-aware progressive
 * precision. Both sides see the same offered load; throughput,
 * p50/p95/p99 latency, batch-size distribution, early-exit rate and
 * effective bits go to BENCH_serving.json (override with
 * SCDCNN_SERVE_JSON) for tools/bench_check.py to gate.
 *
 * A third section measures overload robustness: the hardened config
 * (bounded per-class admission, doomed-request shedding, deadline-
 * armed cancellation) at 1.0x and 2.5x the calibrated per-request
 * capacity. Goodput — answers that met their deadline per second —
 * plus the rejected/shed/expedited counters land in an
 * "overload_gate" block that bench_check.py enforces.
 *
 * The network is the decisive-logit LeNet-5 variant (output layer
 * programmed to +1/-1/0 rows — the confident regime a trained network
 * produces) so Progressive early exit behaves as it does on trained
 * weights; see bench_throughput.cc for the rationale.
 *
 * A fourth section measures model-fleet isolation: three models
 * (lenet5, lenet-l, mlp) behind one ModelRegistry sharing the global
 * compute pool, each first measured solo, then all three under mixed
 * load while the lenet5 model is poisoned mid-run with injected
 * execution faults. Its circuit breaker must quarantine it (fast
 * rejects, no compute) and later recover it through half-open probes,
 * while the healthy models hold their solo goodput — the "fleet_gate"
 * block records the healthy-goodput ratio, the poisoned model's
 * quarantine/recovery trajectory and a bit-exactness sentinel that
 * bench_check.py --fleet enforces.
 *
 * Knobs: SCDCNN_SERVE_LEN (bit-stream length, default 256),
 * SCDCNN_SERVE_IMAGES (requests per scenario, default 48),
 * SCDCNN_SERVE_MAX_BATCH (default 8),
 * SCDCNN_SERVE_CLIENTS (closed-loop clients, default 4),
 * SCDCNN_SERVE_FLEET_IMAGES (fleet requests per model, default
 * max(8, images/4)).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "core/sc_network.h"
#include "nn/dataset.h"
#include "nn/network.h"
#include "nn/topology.h"
#include "obs/chrome_trace.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "serve/artifact.h"
#include "serve/fault_injection.h"
#include "serve/model_registry.h"
#include "serve/server.h"

using namespace scdcnn;
using SteadyClock = std::chrono::steady_clock;

namespace {

/** Scenario walls are measured with obs::ScopedSpan (which reads its
 *  clock whether or not tracing is armed), so when a traced run is
 *  requested the same interval that produces the printed numbers
 *  appears as a "scenario" span in the exported trace. */
double
spanWallMs(obs::ScopedSpan &span)
{
    return static_cast<double>(span.finish()) * 1e-6;
}

/** LeNet-5 with the output layer programmed to decisive +1/-1/0
 *  weight rows (see file comment). */
nn::Network
decisiveLenet5()
{
    nn::Network net = nn::buildLeNet5(nn::PoolingMode::Max, 1);
    nn::programDecisiveLogits(net);
    return net;
}

/**
 * Every scenario's server config and request options, derived from one
 * measured fused-predict latency so "1.5x capacity" and "a deadline of
 * six service times" mean the same thing on every box. Shared by the
 * open/closed-loop sections, the overload section and the fleet
 * registry (which uses @p hardened as its per-model server template).
 */
struct ServingSetup
{
    serve::ServerConfig per_request; //!< max_batch=1, full precision
    serve::ServerConfig micro;       //!< dynamic batching + QoS derive
    serve::ServerConfig hardened;    //!< micro + admission/shed/cancel
    serve::RequestOptions high;      //!< High class, no deadline
    serve::RequestOptions balanced;  //!< Balanced, generous deadline
    serve::RequestOptions deadlined; //!< Balanced, binding deadline
    double overload_deadline_ms = 0;
};

ServingSetup
buildServingSetup(double fused_ms, size_t len, size_t max_batch)
{
    ServingSetup s;

    // Per-request baseline: every request its own batch, full
    // precision, no deadline — serving without the subsystem's
    // policies.
    s.per_request.limits.max_batch = 1;
    s.per_request.limits.max_queue_delay =
        std::chrono::microseconds(100);
    // The legacy throughput scenarios keep every admitted request:
    // shedding is benchmarked separately, and turning it off here
    // keeps these series comparable with earlier runs.
    s.per_request.limits.shed_doomed = false;
    s.high.accuracy = serve::AccuracyClass::High;

    // Micro-batching + QoS: dynamic batches under (max_batch,
    // max_queue_delay), Balanced progressive precision, a deadline
    // generous at light load but binding under overload — queue
    // pressure degrades precision instead of blowing up latency.
    s.micro.limits.max_batch = max_batch;
    s.micro.limits.max_queue_delay =
        std::chrono::microseconds(static_cast<long>(fused_ms * 250.0));
    s.micro.limits.shed_doomed = false; // see per_request comment
    const size_t min_bits = std::max<size_t>(64, len / 4);
    s.micro.qos[static_cast<size_t>(serve::AccuracyClass::Balanced)] = {
        core::EngineMode::Progressive, 4.0, min_bits};
    s.micro.qos[static_cast<size_t>(serve::AccuracyClass::Fast)] = {
        core::EngineMode::Progressive, 2.0,
        std::max<size_t>(64, len / 8)};
    s.balanced.accuracy = serve::AccuracyClass::Balanced;
    s.balanced.deadline = std::chrono::microseconds(
        static_cast<long>(fused_ms * 6000.0)); // ~6 service times

    // Overload hardening on top of micro: bounded per-class
    // admission, doomed-request shedding, deadline-armed cancellation.
    s.hardened = s.micro;
    s.hardened.limits.shed_doomed = true;
    s.hardened.limits.max_queue_per_class = 2 * max_batch;
    s.hardened.cancel_on_deadline = true;
    s.deadlined = s.balanced;
    s.deadlined.deadline = std::chrono::microseconds(
        static_cast<long>(fused_ms * 8000.0)); // ~8 service times
    s.overload_deadline_ms = fused_ms * 8.0;
    return s;
}

struct ScenarioResult
{
    std::string name;
    size_t max_batch = 1;
    size_t n_images = 0;
    double offered_ips = 0;  //!< 0 for closed-loop
    double achieved_ips = 0;
    double goodput_ips = 0;  //!< completed-within-deadline per second
    double wall_ms = 0;
    uint64_t client_ok = 0;     //!< futures that held a result
    uint64_t client_failed = 0; //!< futures that held a ServeError
    serve::MetricsSnapshot metrics;
};

/** Resolve a batch of futures, counting results, deadline-met
 *  results, and typed failures (rejected/shed/cancelled). */
void
settle(std::vector<std::future<serve::InferenceResult>> &futs,
       uint64_t &ok, uint64_t &ok_met, uint64_t &failed)
{
    for (auto &f : futs) {
        try {
            const serve::InferenceResult r = f.get();
            ++ok;
            if (r.deadline_met)
                ++ok_met;
        } catch (const serve::ServeError &) {
            ++failed;
        }
    }
    futs.clear();
}

/** Poisson-arrival open-loop run: submit n images at @p offered_ips,
 *  then wait for every answer. */
ScenarioResult
runOpenLoop(const core::ScNetwork &net, const char *name,
            serve::ServerConfig scfg, serve::RequestOptions ropts,
            size_t n, double offered_ips)
{
    serve::InferenceServer server(net, scfg);
    std::mt19937_64 rng(0xA221'7E57);
    std::exponential_distribution<double> gap(offered_ips);

    std::vector<std::future<serve::InferenceResult>> futs;
    futs.reserve(n);
    obs::ScopedSpan wall_span(obs::SpanName::Scenario, 0, 0, n);
    const SteadyClock::time_point t0 = SteadyClock::now();
    double arrival_s = 0.0;
    for (size_t i = 0; i < n; ++i) {
        arrival_s += gap(rng);
        std::this_thread::sleep_until(
            t0 + std::chrono::duration_cast<SteadyClock::duration>(
                     std::chrono::duration<double>(arrival_s)));
        futs.push_back(
            server.submit(nn::DigitDataset::render(i % 10, 100 + i),
                          ropts));
    }
    uint64_t ok = 0, ok_met = 0, failed = 0;
    settle(futs, ok, ok_met, failed);
    const double wall = spanWallMs(wall_span);
    server.drain();

    ScenarioResult r;
    r.name = name;
    r.max_batch = scfg.limits.max_batch;
    r.n_images = n;
    r.offered_ips = offered_ips;
    r.achieved_ips = static_cast<double>(n) / (wall / 1000.0);
    r.goodput_ips = static_cast<double>(ok_met) / (wall / 1000.0);
    r.wall_ms = wall;
    r.client_ok = ok;
    r.client_failed = failed;
    r.metrics = server.metricsSnapshot();
    return r;
}

/**
 * Overload scenario on one overload-hardened server, three phases:
 *
 *   expedite — a few requests whose deadline equals max_queue_delay
 *              are urgent on arrival, forcing Expedited closes on a
 *              cold estimate (exercises the close path every time);
 *   poisson  — open loop at @p offered_ips; goodput (results that
 *              met their deadline per second of this phase's wall) is
 *              the scenario's headline number;
 *   burst    — @p burst back-to-back tight-deadline submits with no
 *              pacing: the class queue cap rejects the overflow
 *              deterministically and the admitted remainder becomes
 *              doomed behind the backlog and is shed (or cancelled
 *              in flight once its armed deadline trips).
 *
 * The returned metrics snapshot covers all phases; goodput covers
 * the poisson phase only.
 */
ScenarioResult
runOverload(const core::ScNetwork &net, const char *name,
            serve::ServerConfig scfg, serve::RequestOptions ropts,
            size_t n, double offered_ips, size_t burst)
{
    serve::InferenceServer server(net, scfg);
    uint64_t ok = 0, ok_met = 0, failed = 0;
    std::vector<std::future<serve::InferenceResult>> futs;

    // Phase 1: expedited warm-up (see function comment).
    serve::RequestOptions urgent = ropts;
    urgent.deadline = scfg.limits.max_queue_delay;
    for (size_t i = 0; i < 3; ++i)
        futs.push_back(
            server.submit(nn::DigitDataset::render(i, 40 + i), urgent));
    settle(futs, ok, ok_met, failed);

    // Phase 2: Poisson arrivals at the offered rate. Every 8th
    // request keeps the High class: mixed QoS is the normal serving
    // regime, and the full-precision sliver walks every stream
    // segment — so traced runs show the engine's per-segment phase
    // spans at every depth, not only the first Progressive
    // checkpoint.
    std::mt19937_64 rng(0xA221'7E57);
    std::exponential_distribution<double> gap(offered_ips);
    obs::ScopedSpan wall_span(obs::SpanName::Scenario, 0, 0, n);
    const SteadyClock::time_point t0 = SteadyClock::now();
    double arrival_s = 0.0;
    for (size_t i = 0; i < n; ++i) {
        arrival_s += gap(rng);
        std::this_thread::sleep_until(
            t0 + std::chrono::duration_cast<SteadyClock::duration>(
                     std::chrono::duration<double>(arrival_s)));
        serve::RequestOptions opts = ropts;
        if (i % 8 == 0)
            opts.accuracy = serve::AccuracyClass::High;
        futs.push_back(
            server.submit(nn::DigitDataset::render(i % 10, 100 + i),
                          opts));
    }
    uint64_t p_ok = 0, p_ok_met = 0, p_failed = 0;
    settle(futs, p_ok, p_ok_met, p_failed);
    const double wall = spanWallMs(wall_span);

    // Phase 3: queue-full burst.
    serve::RequestOptions tight = ropts;
    tight.deadline = std::chrono::milliseconds(2);
    for (size_t i = 0; i < burst; ++i)
        futs.push_back(
            server.submit(nn::DigitDataset::render(i % 10, 200 + i),
                          tight));
    settle(futs, ok, ok_met, failed);
    server.drain();

    ScenarioResult r;
    r.name = name;
    r.max_batch = scfg.limits.max_batch;
    r.n_images = n;
    r.offered_ips = offered_ips;
    r.achieved_ips = static_cast<double>(p_ok) / (wall / 1000.0);
    r.goodput_ips = static_cast<double>(p_ok_met) / (wall / 1000.0);
    r.wall_ms = wall;
    r.client_ok = ok + p_ok;
    r.client_failed = failed + p_failed;
    r.metrics = server.metricsSnapshot();
    return r;
}

/** Closed-loop run: @p clients submit-wait-repeat until n answers. */
ScenarioResult
runClosedLoop(const core::ScNetwork &net, const char *name,
              serve::ServerConfig scfg, serve::RequestOptions ropts,
              size_t n, size_t clients)
{
    serve::InferenceServer server(net, scfg);
    std::atomic<size_t> next{0};
    obs::ScopedSpan wall_span(obs::SpanName::Scenario, 0, 0, n);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&] {
            for (;;) {
                const size_t i = next.fetch_add(1);
                if (i >= n)
                    return;
                server
                    .submit(nn::DigitDataset::render(i % 10, 100 + i),
                            ropts)
                    .get();
            }
        });
    }
    for (auto &t : threads)
        t.join();
    const double wall = spanWallMs(wall_span);

    ScenarioResult r;
    r.name = name;
    r.max_batch = scfg.limits.max_batch;
    r.n_images = n;
    r.achieved_ips = static_cast<double>(n) / (wall / 1000.0);
    r.wall_ms = wall;
    r.metrics = server.metricsSnapshot();
    return r;
}

// --------------------------------------------------------- model fleet

/** One model of the serving fleet: its spec, a directly-built
 *  reference engine (calibration + bit-exactness sentinel), the
 *  per-model offered load, and the measured results. */
struct FleetModel
{
    std::string id;
    nn::TopologySpec spec;
    nn::Network net;
    std::unique_ptr<core::ScNetwork> ref;
    double fused_ms = 0;
    double offered_ips = 0;
    serve::RequestOptions opts;

    size_t n_events = 0;      //!< requests per phase (rate * horizon)
    double solo_goodput = 0;  //!< goodput ips, model alone
    double mixed_goodput = 0; //!< goodput ips, all models + poisoning
    uint64_t mixed_ok = 0;
    uint64_t mixed_failed = 0;
    serve::ModelSnapshot snap; //!< registry state after the run
};

/** A pending fleet request together with its scheduled arrival
 *  offset, so the phase wall can be reconstructed per model. */
struct TimedFuture
{
    std::future<serve::InferenceResult> fut;
    double at_ms; //!< scheduled arrival, relative to the phase start
};

/**
 * Resolve a batch of timed futures. Returns the model's effective
 * wall: the latest completion instant (arrival offset + measured
 * total latency) across its answered requests. Measuring the wall
 * from the requests themselves keeps solo and mixed phases
 * comparable — in the mixed phase, wall-clock "after the merged loop"
 * would charge every model for the longest co-tenant schedule.
 */
double
settleTimed(std::vector<TimedFuture> &futs, uint64_t &ok,
            uint64_t &ok_met, uint64_t &failed)
{
    double wall_ms = 0.0;
    for (TimedFuture &tf : futs) {
        try {
            const serve::InferenceResult r = tf.fut.get();
            ++ok;
            if (r.deadline_met)
                ++ok_met;
            wall_ms = std::max(wall_ms, tf.at_ms + r.total_ms);
        } catch (const serve::ServeError &) {
            ++failed;
        }
    }
    futs.clear();
    return wall_ms;
}

struct FleetOutcome
{
    std::vector<FleetModel> models; //!< [0] is the poisoned model
    size_t n_per_model = 0;
    double offered_frac = 0;
    double mixed_wall_ms = 0;
    double healthy_ratio = 0; //!< min mixed/solo goodput, healthy only
    bool poisoned_quarantined = false;
    bool poisoned_recovered = false;
    size_t sentinel_checked = 0;
    size_t sentinel_mismatches = 0;
    size_t flight_dumps = 0; //!< postmortem dumps written by the run
};

/**
 * Fleet isolation scenario: three models behind one ModelRegistry
 * (per-model servers built from the hardened template, one shared
 * compute pool). Each model is measured solo at @p offered_frac of its
 * own calibrated per-request capacity, then all three run together at
 * the same per-model rates while the middle half of the lenet5 traffic
 * is poisoned with injected execution faults. The breaker must
 * quarantine lenet5 (fast rejects, no compute stolen from the healthy
 * models) and recover it through half-open probes once the faults
 * stop; every 4th mlp request doubles as a bit-exactness sentinel
 * checked against the directly-built reference engine.
 */
FleetOutcome
runFleet(const ServingSetup &setup, size_t len, size_t n_fleet)
{
    FleetOutcome out;
    out.n_per_model = n_fleet;
    // Per-model offered load as a fraction of its own calibrated
    // capacity. Three tenants share one pool, so the aggregate is 3x
    // this; 0.15 keeps the fleet at ~45% utilization, where multi-
    // tenant queueing costs the healthy models well under the 20%
    // goodput margin the fleet gate allows.
    out.offered_frac = 0.15;

    core::ScNetworkConfig cfg;
    cfg.bitstream_len = len;
    cfg.stream_segment_words = 1; // see main(): progressive checkpoints

    const auto addModel = [&](const char *id,
                              const nn::TopologySpec &spec) {
        FleetModel m;
        m.id = id;
        m.spec = spec;
        m.net = nn::buildTopology(spec, nn::PoolingMode::Max);
        nn::programDecisiveLogits(m.net);
        m.ref = std::make_unique<core::ScNetwork>(m.net, cfg);
        out.models.push_back(std::move(m));
    };
    nn::TopologySpec lenet5;
    lenet5.convs = {{20, 5}, {50, 5}};
    lenet5.fc_hidden = {500};
    addModel("lenet5", lenet5);
    nn::TopologySpec lenetl;
    lenetl.convs = {{20, 5}, {50, 5}, {64, 3}};
    lenetl.fc_hidden = {128};
    addModel("lenet-l", lenetl);
    nn::TopologySpec mlp;
    mlp.fc_hidden = {500};
    addModel("mlp", mlp);
    const size_t kPoisoned = 0; // lenet5
    const size_t kSentinel = 2; // mlp: cheapest reference predict

    serve::FaultInjector faults;
    // Postmortem hook: the breaker trips the poison window forces
    // must each leave a flight-recorder dump next to the bench JSONs
    // (fleet_gate carries the count for bench_check.py).
    obs::FlightRecorder flight;
    serve::RegistryConfig rc;
    rc.server_template = setup.hardened;
    // Shorter batches than the single-model overload scenario: with
    // one shared pool, a closed batch of the slowest model is the
    // head-of-line block every other model's requests wait behind.
    rc.server_template.limits.max_batch = std::min<size_t>(
        4, setup.hardened.limits.max_batch);
    rc.faults = &faults;
    // A small breaker so the poison window (n_fleet/2 failures) trips
    // it and the recovery tail fits in the bench: three consecutive
    // failures reach EWMA 0.936 >= 0.5, probes resume after 60 ms.
    rc.breaker.alpha = 0.6;
    rc.breaker.min_events = 3;
    rc.breaker.trip_threshold = 0.5;
    rc.breaker.backoff = std::chrono::microseconds(60000);
    rc.breaker.probe_quota = 2;
    rc.flight_recorder = &flight;
    serve::ModelRegistry reg(rc);

    const nn::Tensor calib_img = nn::DigitDataset::render(3, 7);
    for (FleetModel &m : out.models) {
        const serve::InstallResult r = reg.install(
            m.id, serve::makeArtifact(m.id, 1, m.spec,
                                      nn::PoolingMode::Max, cfg, m.net));
        if (!r.ok) {
            std::fprintf(stderr, "fleet install %s failed: %s\n",
                         m.id.c_str(), r.diagnostic.c_str());
            continue;
        }
        // Calibrate this model's own per-request capacity and set its
        // deadline in its own service times.
        m.ref->predict(calib_img, 1); // warm-up
        obs::ScopedSpan calib(obs::SpanName::Scenario);
        for (int i = 0; i < 2; ++i)
            m.ref->predict(calib_img, 2 + i);
        m.fused_ms = spanWallMs(calib) / 2.0;
        m.offered_ips = out.offered_frac * 1000.0 / m.fused_ms;
        m.opts = setup.deadlined;
    }
    // Per-model deadline: ten of its own service times plus a head-of-
    // line allowance for the largest co-tenant — with one shared
    // compute pool, a fast model's request can sit behind a whole
    // batch of the slowest model, and that wait is fleet policy, not
    // this model's failure.
    double max_fused_ms = 0.0;
    for (const FleetModel &m : out.models)
        max_fused_ms = std::max(max_fused_ms, m.fused_ms);
    for (FleetModel &m : out.models)
        m.opts.deadline = std::chrono::microseconds(static_cast<long>(
            (m.fused_ms * 10.0 + max_fused_ms * 6.0) * 1000.0));

    // Every phase spans the same horizon: long enough for the slowest
    // model to see n_fleet arrivals at its own rate, with each model's
    // event count scaled to its rate. Solo and mixed goodput are then
    // measured over comparable walls, so their ratio isolates the
    // interference instead of the schedule-length mismatch a shared
    // per-model count would create.
    double horizon_s = 0.0;
    for (const FleetModel &m : out.models)
        horizon_s = std::max(
            horizon_s, static_cast<double>(n_fleet) / m.offered_ips);
    for (FleetModel &m : out.models)
        m.n_events = std::max<size_t>(
            4, static_cast<size_t>(m.offered_ips * horizon_s + 0.5));

    // Solo phases: each model alone at its offered rate.
    for (FleetModel &m : out.models) {
        std::mt19937_64 rng(0xF1EE7);
        std::exponential_distribution<double> gap(m.offered_ips);
        std::vector<TimedFuture> futs;
        futs.reserve(m.n_events);
        const SteadyClock::time_point t0 = SteadyClock::now();
        double arrival_s = 0.0;
        for (size_t i = 0; i < m.n_events; ++i) {
            arrival_s += gap(rng);
            std::this_thread::sleep_until(
                t0 +
                std::chrono::duration_cast<SteadyClock::duration>(
                    std::chrono::duration<double>(arrival_s)));
            futs.push_back(
                {reg.submit(m.id,
                            nn::DigitDataset::render(i % 10, 300 + i),
                            m.opts),
                 arrival_s * 1000.0});
        }
        uint64_t ok = 0, ok_met = 0, failed = 0;
        const double wall = settleTimed(futs, ok, ok_met, failed);
        m.solo_goodput = wall > 0 ? static_cast<double>(ok_met) /
                                        (wall / 1000.0)
                                  : 0.0;
        reg.drain();
    }

    // Mixed phase: one merged Poisson schedule across all models.
    struct Event
    {
        double at_s;
        size_t model;
        size_t idx;
    };
    std::vector<Event> events;
    std::mt19937_64 rng(0xF1EE7D);
    for (size_t mi = 0; mi < out.models.size(); ++mi) {
        std::exponential_distribution<double> gap(
            out.models[mi].offered_ips);
        double at = 0.0;
        for (size_t i = 0; i < out.models[mi].n_events; ++i) {
            at += gap(rng);
            events.push_back({at, mi, i});
        }
    }
    std::sort(events.begin(), events.end(),
              [](const Event &a, const Event &b) {
                  return a.at_s < b.at_s;
              });

    struct Sentinel
    {
        TimedFuture tf;
        uint64_t seed;
        size_t digit;
        size_t render_seed;
    };
    std::vector<std::vector<TimedFuture>> futs(out.models.size());
    std::vector<Sentinel> sentinels;
    size_t poisoned_seen = 0;
    obs::ScopedSpan mixed_span(obs::SpanName::Scenario);
    const SteadyClock::time_point t0 = SteadyClock::now();
    for (const Event &e : events) {
        std::this_thread::sleep_until(
            t0 + std::chrono::duration_cast<SteadyClock::duration>(
                     std::chrono::duration<double>(e.at_s)));
        const size_t digit = e.idx % 10;
        serve::RequestOptions opts = out.models[e.model].opts;
        const bool is_sentinel =
            e.model == kSentinel && e.idx % 4 == 0;
        if (is_sentinel) {
            // Full-precision with a pinned seed: the answer must be
            // bit-exact with the reference engine regardless of the
            // chaos on the poisoned model.
            opts.accuracy = serve::AccuracyClass::High;
            opts.seed = 7000 + e.idx;
        }
        // Poison the middle half of the lenet5 traffic: one armed
        // ModelExecute shot consumed synchronously by this submit.
        // The disarm afterwards clears the shot the submit did NOT
        // consume when the breaker fast-rejected it, so a stale shot
        // can never leak onto a healthy model's next request.
        const size_t n_poisoned = out.models[kPoisoned].n_events;
        const bool poison = e.model == kPoisoned &&
                            poisoned_seen >= n_poisoned / 4 &&
                            poisoned_seen < 3 * n_poisoned / 4;
        if (e.model == kPoisoned)
            ++poisoned_seen;
        if (poison)
            faults.arm(serve::FaultPoint::ModelExecute, 1);
        std::future<serve::InferenceResult> fut = reg.submit(
            out.models[e.model].id,
            nn::DigitDataset::render(digit, 300 + e.idx), opts);
        if (poison) {
            faults.disarm(serve::FaultPoint::ModelExecute);
            if (reg.state(out.models[kPoisoned].id) ==
                serve::ModelState::Quarantined)
                out.poisoned_quarantined = true;
        }
        if (is_sentinel)
            sentinels.push_back({{std::move(fut), e.at_s * 1000.0},
                                 7000 + e.idx,
                                 digit,
                                 300 + e.idx});
        else
            futs[e.model].push_back(
                {std::move(fut), e.at_s * 1000.0});
    }

    // Per-model settle with per-model walls (see settleTimed).
    std::vector<uint64_t> ok(out.models.size()),
        ok_met(out.models.size()), failed(out.models.size());
    std::vector<double> wall(out.models.size());
    for (size_t mi = 0; mi < out.models.size(); ++mi)
        wall[mi] = settleTimed(futs[mi], ok[mi], ok_met[mi],
                               failed[mi]);
    std::vector<serve::InferenceResult> sentinel_results;
    std::vector<size_t> sentinel_idx;
    for (size_t si = 0; si < sentinels.size(); ++si) {
        try {
            serve::InferenceResult r = sentinels[si].tf.fut.get();
            ++ok[kSentinel];
            if (r.deadline_met)
                ++ok_met[kSentinel];
            wall[kSentinel] =
                std::max(wall[kSentinel],
                         sentinels[si].tf.at_ms + r.total_ms);
            sentinel_results.push_back(std::move(r));
            sentinel_idx.push_back(si);
        } catch (const serve::ServeError &) {
            ++failed[kSentinel];
        }
    }
    out.mixed_wall_ms = spanWallMs(mixed_span);

    // Bit-exactness check against the reference engine, off the clock.
    const core::PredictOptions sentinel_popts =
        serve::QosPolicy{core::EngineMode::Fused, 0.0, 0}
            .predictOptions();
    for (size_t k = 0; k < sentinel_results.size(); ++k) {
        const Sentinel &s = sentinels[sentinel_idx[k]];
        ++out.sentinel_checked;
        core::ForwardInfo info;
        const size_t pred = out.models[kSentinel].ref->predictWith(
            nn::DigitDataset::render(s.digit, s.render_seed), s.seed,
            sentinel_popts, nullptr, &info);
        if (sentinel_results[k].predicted != pred ||
            sentinel_results[k].scores != info.scores)
            ++out.sentinel_mismatches;
    }

    // Recovery tail: the faults are gone, so once the breaker backoff
    // elapses its half-open probes succeed and close it again.
    for (int i = 0;
         i < 60 && reg.breakerState(out.models[kPoisoned].id) !=
                       serve::BreakerState::Closed;
         ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        try {
            reg.submit(out.models[kPoisoned].id,
                       nn::DigitDataset::render(i % 10, 900 + i),
                       out.models[kPoisoned].opts)
                .get();
        } catch (const serve::ServeError &) {
            // Rejected while still open/probing: keep trying.
        }
    }
    reg.drain();

    for (size_t mi = 0; mi < out.models.size(); ++mi) {
        FleetModel &m = out.models[mi];
        m.mixed_ok = ok[mi];
        m.mixed_failed = failed[mi];
        m.mixed_goodput =
            wall[mi] > 0 ? static_cast<double>(ok_met[mi]) /
                               (wall[mi] / 1000.0)
                         : 0.0;
        m.snap = reg.modelSnapshot(m.id);
    }
    const FleetModel &poisoned = out.models[kPoisoned];
    out.poisoned_quarantined =
        out.poisoned_quarantined || poisoned.snap.trips >= 1;
    out.poisoned_recovered =
        reg.state(poisoned.id) == serve::ModelState::Serving &&
        poisoned.snap.recoveries >= 1;
    out.healthy_ratio = -1.0;
    for (size_t mi = 0; mi < out.models.size(); ++mi) {
        if (mi == kPoisoned)
            continue;
        const FleetModel &m = out.models[mi];
        const double ratio =
            m.solo_goodput > 0 ? m.mixed_goodput / m.solo_goodput : 0;
        if (out.healthy_ratio < 0 || ratio < out.healthy_ratio)
            out.healthy_ratio = ratio;
    }
    out.flight_dumps = flight.dumpCount();
    return out;
}

void
printFleet(const FleetOutcome &fleet)
{
    for (const FleetModel &m : fleet.models) {
        std::printf("  %-8s solo %6.1f -> mixed %6.1f goodput ips  "
                    "state %-11s trips %llu recov %llu rejected %llu "
                    "faulted %llu\n",
                    m.id.c_str(), m.solo_goodput, m.mixed_goodput,
                    serve::modelStateName(m.snap.state),
                    static_cast<unsigned long long>(m.snap.trips),
                    static_cast<unsigned long long>(m.snap.recoveries),
                    static_cast<unsigned long long>(
                        m.snap.unavailable_rejected),
                    static_cast<unsigned long long>(m.snap.faulted));
    }
    std::printf("  healthy goodput ratio %.2f  poisoned quarantined "
                "%s, recovered %s  sentinel %zu/%zu bit-exact  "
                "flight dumps %zu\n",
                fleet.healthy_ratio,
                fleet.poisoned_quarantined ? "yes" : "NO",
                fleet.poisoned_recovered ? "yes" : "NO",
                fleet.sentinel_checked - fleet.sentinel_mismatches,
                fleet.sentinel_checked, fleet.flight_dumps);
}

void
writeFleetJson(std::FILE *f, const FleetOutcome &fleet)
{
    std::fprintf(f, "  \"fleet\": [\n");
    for (size_t i = 0; i < fleet.models.size(); ++i) {
        const FleetModel &m = fleet.models[i];
        std::fprintf(f, "    {\n");
        std::fprintf(f, "      \"id\": \"%s\",\n", m.id.c_str());
        std::fprintf(f, "      \"fused_ms\": %.3f,\n", m.fused_ms);
        std::fprintf(f, "      \"offered_ips\": %.2f,\n",
                     m.offered_ips);
        std::fprintf(f, "      \"events\": %zu,\n", m.n_events);
        std::fprintf(f, "      \"solo_goodput_ips\": %.2f,\n",
                     m.solo_goodput);
        std::fprintf(f, "      \"mixed_goodput_ips\": %.2f,\n",
                     m.mixed_goodput);
        std::fprintf(f, "      \"mixed_ok\": %llu,\n",
                     static_cast<unsigned long long>(m.mixed_ok));
        std::fprintf(f, "      \"mixed_failed\": %llu,\n",
                     static_cast<unsigned long long>(m.mixed_failed));
        std::fprintf(f, "      \"registry\": %s\n",
                     m.snap.toJson().c_str());
        std::fprintf(f, "    }%s\n",
                     i + 1 == fleet.models.size() ? "" : ",");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"fleet_gate\": {\n");
    std::fprintf(f, "    \"n_per_model\": %zu,\n", fleet.n_per_model);
    std::fprintf(f, "    \"offered_frac\": %.2f,\n",
                 fleet.offered_frac);
    std::fprintf(f, "    \"mixed_wall_ms\": %.1f,\n",
                 fleet.mixed_wall_ms);
    std::fprintf(f, "    \"healthy_goodput_ratio\": %.3f,\n",
                 fleet.healthy_ratio);
    std::fprintf(f, "    \"poisoned_id\": \"%s\",\n",
                 fleet.models[0].id.c_str());
    std::fprintf(f, "    \"poisoned_trips\": %llu,\n",
                 static_cast<unsigned long long>(
                     fleet.models[0].snap.trips));
    std::fprintf(f, "    \"poisoned_quarantined\": %d,\n",
                 fleet.poisoned_quarantined ? 1 : 0);
    std::fprintf(f, "    \"poisoned_recovered\": %d,\n",
                 fleet.poisoned_recovered ? 1 : 0);
    std::fprintf(f, "    \"poisoned_final_state\": \"%s\",\n",
                 serve::modelStateName(fleet.models[0].snap.state));
    std::fprintf(f, "    \"sentinel_checked\": %zu,\n",
                 fleet.sentinel_checked);
    std::fprintf(f, "    \"sentinel_mismatches\": %zu,\n",
                 fleet.sentinel_mismatches);
    std::fprintf(f, "    \"flight_dumps\": %zu\n", fleet.flight_dumps);
    std::fprintf(f, "  },\n");
}

void
printScenario(const ScenarioResult &r)
{
    const auto &m = r.metrics;
    std::printf("  %-22s %7.1f ips", r.name.c_str(), r.achieved_ips);
    if (r.offered_ips > 0)
        std::printf(" (offered %6.1f)", r.offered_ips);
    else
        std::printf("                 ");
    std::printf("  p50 %7.1f  p95 %7.1f  p99 %7.1f ms",
                m.total_latency.p50_ms, m.total_latency.p95_ms,
                m.total_latency.p99_ms);
    std::printf("  batch %4.1f  bits %6.1f  exits %4.0f%%\n",
                m.avg_batch_size, m.avg_effective_bits,
                100.0 * m.early_exit_rate);
    if (r.goodput_ips > 0 || r.client_failed > 0)
        std::printf("  %-22s %7.1f goodput ips  rejected %llu  shed "
                    "%llu  cancelled %llu  expedited %llu  depth %llu\n",
                    "", r.goodput_ips,
                    static_cast<unsigned long long>(m.rejected),
                    static_cast<unsigned long long>(m.shed),
                    static_cast<unsigned long long>(m.cancelled),
                    static_cast<unsigned long long>(
                        m.close_reasons[static_cast<size_t>(
                            serve::CloseReason::Expedited)]),
                    static_cast<unsigned long long>(m.max_queue_depth));
}

void
writeScenarioJson(std::FILE *f, const ScenarioResult &r, bool last)
{
    const auto &m = r.metrics;
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", r.name.c_str());
    std::fprintf(f, "      \"max_batch\": %zu,\n", r.max_batch);
    std::fprintf(f, "      \"images\": %zu,\n", r.n_images);
    if (r.offered_ips > 0)
        std::fprintf(f, "      \"offered_ips\": %.2f,\n", r.offered_ips);
    std::fprintf(f, "      \"achieved_ips\": %.2f,\n", r.achieved_ips);
    if (r.goodput_ips > 0 || r.client_failed > 0) {
        std::fprintf(f, "      \"goodput_ips\": %.2f,\n", r.goodput_ips);
        std::fprintf(f, "      \"client_ok\": %llu,\n",
                     static_cast<unsigned long long>(r.client_ok));
        std::fprintf(f, "      \"client_failed\": %llu,\n",
                     static_cast<unsigned long long>(r.client_failed));
    }
    std::fprintf(f, "      \"wall_ms\": %.1f,\n", r.wall_ms);
    std::fprintf(f, "      \"p50_ms\": %.2f,\n", m.total_latency.p50_ms);
    std::fprintf(f, "      \"p95_ms\": %.2f,\n", m.total_latency.p95_ms);
    std::fprintf(f, "      \"p99_ms\": %.2f,\n", m.total_latency.p99_ms);
    std::fprintf(f, "      \"metrics\": %s\n", m.toJson().c_str());
    std::fprintf(f, "    }%s\n", last ? "" : ",");
}

} // namespace

int
main()
{
    bench::banner("serving",
                  "Async inference serving: dynamic micro-batching + "
                  "deadline-aware progressive precision vs per-request "
                  "serving");

    const size_t len = bench::envSize("SCDCNN_SERVE_LEN", 256);
    const size_t n = std::max<size_t>(
        4, bench::envSize("SCDCNN_SERVE_IMAGES", 48));
    const size_t max_batch =
        std::max<size_t>(2, bench::envSize("SCDCNN_SERVE_MAX_BATCH", 8));
    const size_t clients =
        std::max<size_t>(1, bench::envSize("SCDCNN_SERVE_CLIENTS", 4));

    nn::Network net = decisiveLenet5();
    core::ScNetworkConfig cfg;
    cfg.bitstream_len = len;
    // One-word segments give Progressive a checkpoint every 64
    // cycles; at short serving lengths the default 4-word granularity
    // would cover the whole stream and never early-exit.
    cfg.stream_segment_words = 1;
    core::ScNetwork sc(net, cfg);
    const nn::Tensor calib_img = nn::DigitDataset::render(3, 7);

    // Calibrate: full-precision single-image latency sets the offered
    // loads, so "1.5x the per-request capacity" means the same thing
    // on every box.
    sc.predict(calib_img, 1); // warm-up
    obs::ScopedSpan calib_span(obs::SpanName::Scenario);
    for (int r = 0; r < 3; ++r)
        sc.predict(calib_img, 2 + r);
    const double fused_ms = spanWallMs(calib_span) / 3.0;
    const double capacity_ips = 1000.0 / fused_ms;
    std::printf("calibration: fused predict %.1f ms  (~%.1f ips "
                "per-request capacity)\n\n",
                fused_ms, capacity_ips);

    // One derived config set feeds every section (see ServingSetup).
    const ServingSetup setup = buildServingSetup(fused_ms, len, max_batch);
    const serve::ServerConfig &per_request = setup.per_request;
    const serve::ServerConfig &micro = setup.micro;
    const serve::RequestOptions &high = setup.high;
    const serve::RequestOptions &balanced = setup.balanced;

    const double offered = 1.5 * capacity_ips;
    const double light = 0.6 * capacity_ips;

    std::printf("open loop (Poisson arrivals, %zu images):\n", n);
    std::vector<ScenarioResult> open;
    open.push_back(runOpenLoop(sc, "per_request@1.5x", per_request,
                               high, n, offered));
    printScenario(open.back());
    open.push_back(
        runOpenLoop(sc, "microbatch@1.5x", micro, balanced, n, offered));
    printScenario(open.back());
    open.push_back(runOpenLoop(sc, "per_request@0.6x", per_request,
                               high, n, light));
    printScenario(open.back());
    open.push_back(
        runOpenLoop(sc, "microbatch@0.6x", micro, balanced, n, light));
    printScenario(open.back());

    std::printf("\nclosed loop (%zu clients, %zu images):\n", clients,
                n);
    std::vector<ScenarioResult> closed;
    closed.push_back(runClosedLoop(sc, "per_request", per_request, high,
                                   n, clients));
    printScenario(closed.back());
    closed.push_back(
        runClosedLoop(sc, "microbatch", micro, balanced, n, clients));
    printScenario(closed.back());

    // Overload hardening: the same micro-batching server with the
    // full robustness config — bounded per-class admission, doomed-
    // request shedding, and deadline-armed cancellation — measured at
    // nominal load and at 2.5x capacity. The headline is goodput
    // (answers that met their deadline per second): admission control
    // and shedding spend the scarce compute on requests that can
    // still make it, so goodput should hold up under overload instead
    // of collapsing with the queue.
    const serve::ServerConfig &hardened = setup.hardened;
    const serve::RequestOptions &deadlined = setup.deadlined;
    const double overload_deadline_ms = setup.overload_deadline_ms;

    std::printf("\noverload (hardened: admission cap %zu/class, "
                "shedding + deadline cancellation on):\n",
                hardened.limits.max_queue_per_class);
    std::vector<ScenarioResult> over;
    over.push_back(runOverload(sc, "overload@1.0x", hardened, deadlined,
                               n, 1.0 * capacity_ips, /*burst=*/0));
    printScenario(over.back());
    // SCDCNN_SERVE_TRACE=<path>: run the 2.5x overload scenario with
    // tracing armed and export everything it recorded as a Chrome
    // trace — the CI traced-burst step validates the file with
    // tools/trace_check.py.
    const char *trace_env = std::getenv("SCDCNN_SERVE_TRACE");
    const bool tracing = trace_env != nullptr && *trace_env != '\0';
    obs::TraceRecorder &rec = obs::TraceRecorder::instance();
    if (tracing) {
        rec.clear(); // no writers yet: the previous server is gone
        rec.arm();
    }
    over.push_back(runOverload(sc, "overload@2.5x", hardened, deadlined,
                               n, 2.5 * capacity_ips,
                               /*burst=*/6 * hardened.limits
                                                 .max_queue_per_class));
    if (tracing) {
        rec.disarm();
        if (obs::writeChromeTrace(trace_env))
            std::printf("  wrote Chrome trace %s\n", trace_env);
        else
            std::fprintf(stderr, "cannot write trace %s\n", trace_env);
    }
    printScenario(over.back());
    const double goodput_1x = over[0].goodput_ips;
    const double goodput_over = over[1].goodput_ips;
    std::printf("  goodput at 2.5x offered load: %.1f ips (%.0f%% of "
                "the 1.0x goodput)\n",
                goodput_over, 100.0 * goodput_over / goodput_1x);

    // Model-fleet isolation: three registered models, one poisoned
    // mid-run; the healthy models must hold their solo goodput.
    const size_t n_fleet = std::max<size_t>(
        8, bench::envSize("SCDCNN_SERVE_FLEET_IMAGES", n / 4));
    std::printf("\nmodel fleet (3 models @ 0.25x own capacity each, "
                "%zu images/model, lenet5 poisoned mid-run):\n",
                n_fleet);
    const FleetOutcome fleet = runFleet(setup, len, n_fleet);
    printFleet(fleet);

    const double gate_per_request = open[0].achieved_ips;
    const double gate_micro = open[1].achieved_ips;
    std::printf("\nsame offered load (%.1f ips): per-request %.1f ips "
                "-> micro-batching %.1f ips (%.2fx)\n",
                offered, gate_per_request, gate_micro,
                gate_micro / gate_per_request);

    const char *json_env = std::getenv("SCDCNN_SERVE_JSON");
    const std::string json_path =
        json_env != nullptr && *json_env != '\0' ? json_env
                                                 : "BENCH_serving.json";
    std::FILE *f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"serving\",\n");
    std::fprintf(f, "  \"network\": \"lenet5-decisive\",\n");
    std::fprintf(f, "  \"bitstream_len\": %zu,\n", len);
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"compiler\": \"%s\",\n", __VERSION__);
    std::fprintf(f, "  \"calib_fused_ms\": %.3f,\n", fused_ms);
    std::fprintf(f, "  \"open_loop\": [\n");
    for (size_t i = 0; i < open.size(); ++i)
        writeScenarioJson(f, open[i], i + 1 == open.size());
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"closed_loop\": [\n");
    for (size_t i = 0; i < closed.size(); ++i)
        writeScenarioJson(f, closed[i], i + 1 == closed.size());
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"overload\": [\n");
    for (size_t i = 0; i < over.size(); ++i)
        writeScenarioJson(f, over[i], i + 1 == over.size());
    std::fprintf(f, "  ],\n");
    const auto &om = over[1].metrics;
    std::fprintf(f, "  \"overload_gate\": {\n");
    std::fprintf(f, "    \"deadline_ms\": %.2f,\n", overload_deadline_ms);
    std::fprintf(f, "    \"queue_cap_per_class\": %zu,\n",
                 hardened.limits.max_queue_per_class);
    std::fprintf(f, "    \"goodput_1x_ips\": %.2f,\n", goodput_1x);
    std::fprintf(f, "    \"goodput_2p5x_ips\": %.2f,\n", goodput_over);
    std::fprintf(f, "    \"goodput_ratio\": %.3f,\n",
                 goodput_1x > 0 ? goodput_over / goodput_1x : 0.0);
    std::fprintf(f, "    \"rejected\": %llu,\n",
                 static_cast<unsigned long long>(om.rejected));
    std::fprintf(f, "    \"shed\": %llu,\n",
                 static_cast<unsigned long long>(om.shed));
    std::fprintf(f, "    \"cancelled\": %llu,\n",
                 static_cast<unsigned long long>(om.cancelled));
    std::fprintf(f, "    \"expedited\": %llu,\n",
                 static_cast<unsigned long long>(
                     om.close_reasons[static_cast<size_t>(
                            serve::CloseReason::Expedited)]));
    std::fprintf(f, "    \"max_queue_depth\": %llu,\n",
                 static_cast<unsigned long long>(om.max_queue_depth));
    std::fprintf(f, "    \"overload_p99_ms\": %.2f\n",
                 om.total_latency.p99_ms);
    std::fprintf(f, "  },\n");
    writeFleetJson(f, fleet);
    std::fprintf(f, "  \"gate\": {\n");
    std::fprintf(f, "    \"offered_ips\": %.2f,\n", offered);
    std::fprintf(f, "    \"per_request_ips\": %.2f,\n",
                 gate_per_request);
    std::fprintf(f, "    \"microbatch_ips\": %.2f,\n", gate_micro);
    std::fprintf(f, "    \"microbatch_p99_ms\": %.2f\n",
                 open[1].metrics.total_latency.p99_ms);
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
    return 0;
}
