/**
 * @file
 * Throughput benchmark of the SC inference engine: single-image
 * latency of the fused word-parallel engine vs the bit-serial
 * reference oracle, and batched throughput (forwardBatch) across
 * thread counts. Results are printed as a table and written as
 * machine-readable JSON (default BENCH_throughput.json, override with
 * SCDCNN_BENCH_JSON) so the perf trajectory can be tracked PR over PR.
 *
 * Knobs: SCDCNN_BENCH_LEN (bit-stream length, default 1024),
 * SCDCNN_BENCH_REPS (fused single-image reps, default 3),
 * SCDCNN_BENCH_REF_REPS (reference single-image reps, default 1),
 * SCDCNN_BENCH_IMAGES (batch size, default 16),
 * SCDCNN_BENCH_MAX_THREADS (largest pool size, default 4).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "core/sc_network.h"
#include "nn/dataset.h"
#include "nn/network.h"

using namespace scdcnn;

namespace {

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Feature extraction block instances in one LeNet5 forward pass:
 *  conv1 6x12x12, conv2 16x4x4, fc1 500 (the binary output layer is
 *  not an FEB). */
constexpr double kFebsPerForward = 6 * 12 * 12 + 16 * 4 * 4 + 500;

struct ThreadPoint
{
    size_t threads;
    double ms_total;
    double images_per_sec;
};

} // namespace

int
main()
{
    bench::banner("throughput",
                  "Word-parallel fused engine vs bit-serial reference; "
                  "batched forward pass scaling");

    const size_t len = bench::envSize("SCDCNN_BENCH_LEN", 1024);
    // A zero rep count would make the timings (and the JSON) nonsense:
    // at least one timed pass each.
    const size_t fused_reps =
        std::max<size_t>(1, bench::envSize("SCDCNN_BENCH_REPS", 3));
    const size_t ref_reps =
        std::max<size_t>(1, bench::envSize("SCDCNN_BENCH_REF_REPS", 1));
    const size_t batch_images = bench::envSize("SCDCNN_BENCH_IMAGES", 16);
    const size_t max_threads =
        bench::envSize("SCDCNN_BENCH_MAX_THREADS", 4);

    // Untrained weights time identically to trained ones; what matters
    // is the paper's exact LeNet5 topology.
    nn::Network net = nn::buildLeNet5(nn::PoolingMode::Max, 1);
    core::ScNetworkConfig cfg; // APC-APC-APC, the paper's No.6 family
    cfg.pooling = nn::PoolingMode::Max;
    cfg.bitstream_len = len;
    core::ScNetwork sc_net(net, cfg);
    nn::Tensor img = nn::DigitDataset::render(3, 7);

    // --- single-image latency, both engine modes -------------------
    sc_net.setEngineMode(core::EngineMode::Fused);
    sc_net.predict(img, 1); // warm-up
    auto t0 = std::chrono::steady_clock::now();
    for (size_t r = 0; r < fused_reps; ++r)
        sc_net.predict(img, 2 + r);
    const double fused_ms = msSince(t0) / static_cast<double>(fused_reps);

    sc_net.setEngineMode(core::EngineMode::Reference);
    t0 = std::chrono::steady_clock::now();
    for (size_t r = 0; r < ref_reps; ++r)
        sc_net.predict(img, 2 + r);
    const double ref_ms = msSince(t0) / static_cast<double>(ref_reps);
    sc_net.setEngineMode(core::EngineMode::Fused);

    const double speedup = ref_ms / fused_ms;
    const double ns_per_feb = fused_ms * 1e6 / kFebsPerForward;

    std::printf("single image (%s):\n", cfg.describe().c_str());
    std::printf("  %-28s %10.1f ms\n", "bit-serial reference", ref_ms);
    std::printf("  %-28s %10.1f ms\n", "fused word-parallel", fused_ms);
    std::printf("  %-28s %10.1fx\n", "speedup", speedup);
    std::printf("  %-28s %10.0f ns\n\n", "fused ns per FEB", ns_per_feb);

    // --- batched throughput across thread counts -------------------
    std::vector<nn::Tensor> images;
    images.reserve(batch_images);
    for (size_t i = 0; i < batch_images; ++i)
        images.push_back(nn::DigitDataset::render(i % 10, 100 + i));

    std::vector<size_t> thread_counts;
    for (size_t t = 1; t <= max_threads; t *= 2)
        thread_counts.push_back(t);

    std::printf("forwardBatch of %zu images:\n", batch_images);
    std::vector<ThreadPoint> points;
    std::vector<size_t> baseline_preds;
    for (size_t t : thread_counts) {
        ThreadPool pool(t);
        t0 = std::chrono::steady_clock::now();
        const auto preds = sc_net.forwardBatch(images, 42, &pool);
        const double ms = msSince(t0);
        if (baseline_preds.empty())
            baseline_preds = preds;
        else if (preds != baseline_preds)
            std::printf("  WARNING: thread count %zu changed "
                        "predictions (determinism bug)\n",
                        t);
        const double ips =
            static_cast<double>(batch_images) / (ms / 1000.0);
        points.push_back({t, ms, ips});
        std::printf("  %2zu thread%s %10.1f ms %10.2f images/sec\n", t,
                    t == 1 ? " " : "s", ms, ips);
    }

    // --- machine-readable trajectory -------------------------------
    const char *json_env = std::getenv("SCDCNN_BENCH_JSON");
    const std::string json_path =
        json_env != nullptr && *json_env != '\0' ? json_env
                                                 : "BENCH_throughput.json";
    std::FILE *f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"throughput\",\n");
    std::fprintf(f, "  \"network\": \"lenet5\",\n");
    std::fprintf(f, "  \"config\": \"%s\",\n", cfg.describe().c_str());
    std::fprintf(f, "  \"bitstream_len\": %zu,\n", len);
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"single_image\": {\n");
    std::fprintf(f, "    \"reference_ms\": %.3f,\n", ref_ms);
    std::fprintf(f, "    \"fused_ms\": %.3f,\n", fused_ms);
    std::fprintf(f, "    \"speedup\": %.2f,\n", speedup);
    std::fprintf(f, "    \"fused_ns_per_feb\": %.1f\n", ns_per_feb);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"batch\": {\n");
    std::fprintf(f, "    \"images\": %zu,\n", batch_images);
    std::fprintf(f, "    \"runs\": [\n");
    for (size_t i = 0; i < points.size(); ++i) {
        const ThreadPoint &p = points[i];
        std::fprintf(f,
                     "      {\"threads\": %zu, \"ms_total\": %.3f, "
                     "\"images_per_sec\": %.2f}%s\n",
                     p.threads, p.ms_total, p.images_per_sec,
                     i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n");
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
    return 0;
}
