/**
 * @file
 * Throughput benchmark of the SC inference engine: single-image
 * latency of the fused word-parallel engine vs the bit-serial
 * reference oracle (with a per-phase breakdown of the fused pass),
 * and batched throughput (forwardBatch) across thread counts. Results
 * are printed as a table and written as machine-readable JSON (default
 * BENCH_throughput.json, override with SCDCNN_BENCH_JSON) so the perf
 * trajectory can be tracked PR over PR; when a prior JSON exists at
 * the output path, a fused-vs-previous-run comparison is printed.
 *
 * Knobs: SCDCNN_BENCH_LEN (bit-stream length, default 1024),
 * SCDCNN_BENCH_REPS (fused single-image reps, default 3),
 * SCDCNN_BENCH_REF_REPS (reference single-image reps, default 1),
 * SCDCNN_BENCH_IMAGES (batch size, default 16),
 * SCDCNN_BENCH_MAX_THREADS (largest pool size, default 4).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "core/sc_network.h"
#include "nn/dataset.h"
#include "nn/network.h"
#include "nn/topology.h"
#include "nn/trainer.h"
#include "obs/trace.h"
#include "sc/simd.h"

using namespace scdcnn;

namespace {

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Feature extraction block instances in one buildLeNet5() forward
 *  pass (the Caffe LeNet shape: conv1 20x12x12, conv2 50x4x4, fc1 500;
 *  the binary output layer is not an FEB). */
constexpr double kFebsPerForward = 20 * 12 * 12 + 50 * 4 * 4 + 500;

struct ThreadPoint
{
    size_t threads;
    double ms_total;
    double images_per_sec;
};

/** Per-phase milliseconds, averaged over the profiled reps. */
struct PhaseMs
{
    double encode = 0;
    double inner_product = 0;
    double pooling = 0;
    double activation = 0;
    double output = 0;
};

/** Read the per-phase totals out of the tracing aggregate the
 *  engine's phase spans feed while armed — the same numbers an
 *  exported Chrome trace of the run would show, so the table, the
 *  JSON and the trace all come from one timing source
 *  (tests/test_trace.cc pins this aggregate to the engine's own
 *  PhaseBreakdown counters). */
PhaseMs
phaseMs(const obs::TraceRecorder &rec, size_t reps)
{
    const double scale = 1e-6 / static_cast<double>(reps);
    PhaseMs ms;
    ms.encode = static_cast<double>(
                    rec.profileTotalNs(obs::SpanName::Encode)) *
                scale;
    ms.inner_product =
        static_cast<double>(
            rec.profileTotalNs(obs::SpanName::InnerProduct)) *
        scale;
    ms.pooling = static_cast<double>(
                     rec.profileTotalNs(obs::SpanName::Pooling)) *
                 scale;
    ms.activation =
        static_cast<double>(
            rec.profileTotalNs(obs::SpanName::Activation)) *
        scale;
    ms.output = static_cast<double>(
                    rec.profileTotalNs(obs::SpanName::Output)) *
                scale;
    return ms;
}

/** Read a whole file, empty string when absent. */
std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return {};
    std::string content;
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
        content.append(buf, got);
    std::fclose(f);
    return content;
}

/** Pull "<key>": <number> out of a JSON blob; NaN-free: returns false
 *  when the key is missing. Good enough for our own flat output. */
bool
extractNumber(const std::string &json, const std::string &key,
              double *value)
{
    const std::string needle = "\"" + key + "\":";
    const size_t pos = json.find(needle);
    if (pos == std::string::npos)
        return false;
    return std::sscanf(json.c_str() + pos + needle.size(), " %lf",
                       value) == 1;
}

} // namespace

int
main()
{
    bench::banner("throughput",
                  "Word-parallel fused engine vs bit-serial reference; "
                  "batched forward pass scaling");

    const size_t len = bench::envSize("SCDCNN_BENCH_LEN", 1024);
    // A zero rep count would make the timings (and the JSON) nonsense:
    // at least one timed pass each.
    const size_t fused_reps =
        std::max<size_t>(1, bench::envSize("SCDCNN_BENCH_REPS", 3));
    const size_t ref_reps =
        std::max<size_t>(1, bench::envSize("SCDCNN_BENCH_REF_REPS", 1));
    const size_t batch_images = bench::envSize("SCDCNN_BENCH_IMAGES", 16);
    const size_t max_threads =
        bench::envSize("SCDCNN_BENCH_MAX_THREADS", 4);

    // Untrained weights time identically to trained ones; what matters
    // is the paper's exact LeNet5 topology.
    nn::Network net = nn::buildLeNet5(nn::PoolingMode::Max, 1);
    core::ScNetworkConfig cfg; // APC-APC-APC, the paper's No.6 family
    cfg.pooling = nn::PoolingMode::Max;
    cfg.bitstream_len = len;
    core::ScNetwork sc_net(net, cfg);
    nn::Tensor img = nn::DigitDataset::render(3, 7);

    // --- single-image latency, both engine modes -------------------
    // The per-phase breakdown comes from the tracing aggregate (armed
    // around the timed reps) rather than a private PhaseBreakdown;
    // cost-wise this is the same as the old profiled run — the phase
    // clocks were already on — plus one ring write per phase span.
    obs::TraceRecorder &rec = obs::TraceRecorder::instance();
    sc_net.setEngineMode(core::EngineMode::Fused);
    sc_net.predict(img, 1); // warm-up
    rec.resetProfile();
    rec.arm();
    auto t0 = std::chrono::steady_clock::now();
    for (size_t r = 0; r < fused_reps; ++r)
        sc_net.predict(img, 2 + r);
    const double fused_ms = msSince(t0) / static_cast<double>(fused_reps);
    rec.disarm();
    const PhaseMs fused_phases = phaseMs(rec, fused_reps);

    sc_net.setEngineMode(core::EngineMode::Reference);
    t0 = std::chrono::steady_clock::now();
    for (size_t r = 0; r < ref_reps; ++r)
        sc_net.predict(img, 2 + r);
    const double ref_ms = msSince(t0) / static_cast<double>(ref_reps);

    // Progressive precision at the configured margin. Untrained random
    // logits are near-tied, so a sound margin test (rightly) never
    // fires on them; the early-exit point is therefore measured on a
    // decisive-logit variant of the same network — the output layer
    // programmed to +1 / -1 / 0 weight rows, the confident-image
    // regime a trained network produces (the accuracy side of the
    // trade-off is regression-tested on trained networks in
    // tests/test_segment_stream.cc and shown by lenet5_inference).
    nn::Network decisive = net;
    nn::programDecisiveLogits(decisive);
    core::ScNetwork prog_net(decisive, cfg);
    prog_net.setEngineMode(core::EngineMode::Progressive);
    prog_net.predict(img, 1); // warm-up
    core::ForwardInfo prog_info;
    uint64_t prog_bits = 0;
    size_t prog_exits = 0;
    t0 = std::chrono::steady_clock::now();
    for (size_t r = 0; r < fused_reps; ++r) {
        prog_net.predict(img, 2 + r, nullptr, &prog_info);
        prog_bits += prog_info.effective_bits;
        prog_exits += prog_info.early_exit ? 1 : 0;
    }
    const double prog_ms = msSince(t0) / static_cast<double>(fused_reps);
    const double prog_avg_bits =
        static_cast<double>(prog_bits) / static_cast<double>(fused_reps);
    sc_net.setEngineMode(core::EngineMode::Fused);

    // Binary XNOR-popcount sibling backend: one deterministic pass at
    // stream length 1, no sampling — far cheaper per image than any
    // SC mode, so it needs many more reps for a stable clock.
    core::PredictOptions binary_opts;
    binary_opts.mode = core::EngineMode::Binary;
    const size_t binary_reps = fused_reps * 100;
    sc_net.predictWith(img, 1, binary_opts, nullptr, nullptr); // warm-up
    t0 = std::chrono::steady_clock::now();
    for (size_t r = 0; r < binary_reps; ++r)
        sc_net.predictWith(img, 2 + r, binary_opts, nullptr, nullptr);
    const double binary_ms =
        msSince(t0) / static_cast<double>(binary_reps);
    const double binary_speedup = fused_ms / binary_ms;

    // SC-vs-BNN accuracy on a trained mini-LeNet: the binary backend
    // collapses every weight and activation to its sign, so the
    // interesting number is how much held-out accuracy that costs
    // relative to the fused SC engine on the same trained weights —
    // keep the delta on record so the trade stays visible in the
    // trajectory. (The untrained bench networks score chance under
    // every engine and would hide the gap.)
    constexpr size_t kAccImages = 100;
    size_t sc_correct = 0, bnn_correct = 0;
    {
        nn::Dataset acc_train = nn::DigitDataset::generate(1500, 5);
        nn::Network acc_net =
            nn::buildMiniLeNet(nn::PoolingMode::Max, 1);
        nn::TrainConfig tc;
        tc.epochs = 3;
        nn::Trainer(acc_net, tc).train(acc_train);
        nn::Dataset acc_test = nn::DigitDataset::generate(kAccImages, 6);

        core::ScNetworkConfig acc_cfg;
        acc_cfg.pooling = nn::PoolingMode::Max;
        acc_cfg.bitstream_len = len;
        core::ScNetwork acc_sc(acc_net, acc_cfg);
        core::PredictOptions acc_fused; // EngineMode::Fused default
        for (size_t i = 0; i < kAccImages; ++i) {
            const nn::Tensor &di = acc_test.samples[i].image;
            const size_t label = acc_test.samples[i].label;
            sc_correct +=
                acc_sc.predictWith(di, 777 + i * 7919, acc_fused,
                                   nullptr, nullptr) == label;
            bnn_correct += acc_sc.predictWith(di, 0, binary_opts,
                                              nullptr, nullptr) == label;
        }
    }
    const double sc_acc = static_cast<double>(sc_correct) / kAccImages;
    const double bnn_acc = static_cast<double>(bnn_correct) / kAccImages;

    const double speedup = ref_ms / fused_ms;
    const double ns_per_feb = fused_ms * 1e6 / kFebsPerForward;

    std::printf("single image (%s):\n", cfg.describe().c_str());
    std::printf("  %-28s %10.1f ms\n", "bit-serial reference", ref_ms);
    std::printf("  %-28s %10.1f ms\n", "fused word-parallel", fused_ms);
    std::printf("  %-28s %10.1fx\n", "speedup", speedup);
    std::printf("  %-28s %10.0f ns\n", "fused ns per FEB", ns_per_feb);
    std::printf("  fused per-phase breakdown (ms, summed over "
                "threads):\n");
    std::printf("    %-26s %10.1f\n", "encode", fused_phases.encode);
    std::printf("    %-26s %10.1f\n", "inner product",
                fused_phases.inner_product);
    std::printf("    %-26s %10.1f\n", "pooling", fused_phases.pooling);
    std::printf("    %-26s %10.1f\n", "activation",
                fused_phases.activation);
    std::printf("    %-26s %10.1f\n\n", "output layer",
                fused_phases.output);
    std::printf("  progressive (margin %.2f, min %zu bits):\n",
                cfg.progressive_margin, cfg.progressive_min_bits);
    std::printf("    %-26s %10.1f ms (%.2fx vs fused)\n", "latency",
                prog_ms, fused_ms / prog_ms);
    std::printf("    %-26s %10.0f of %zu\n", "avg effective bits",
                prog_avg_bits, len);
    std::printf("    %-26s %9zu/%zu\n\n", "early exits", prog_exits,
                fused_reps);
    std::printf("  binary backend (XNOR-popcount, L = 1):\n");
    std::printf("    %-26s %10.3f ms (%.1fx vs fused)\n", "latency",
                binary_ms, binary_speedup);
    std::printf("    %-26s %9.0f%% SC vs %.0f%% BNN "
                "(trained mini-LeNet, %zu held-out images)\n\n",
                "accuracy", 100.0 * sc_acc, 100.0 * bnn_acc, kAccImages);

    // --- tracing overhead ------------------------------------------
    // Alternate disarmed and armed fused predicts in adjacent pairs
    // and take the *minimum per-pair ratio*: a real regression in the
    // armed path (a lock, an allocation, a syscall in an emitter)
    // taxes every armed rep, so it survives the min, while one-sided
    // scheduler/frequency noise — which would make a best-of-each-side
    // comparison flap around the gate — does not. Pairing keeps the
    // two sides of each ratio adjacent in time so drift cancels.
    // bench_check.py gates the ratio (<= 3% by default) so the armed
    // tracer can never quietly become a tax on the serving path.
    const size_t ov_reps =
        std::max<size_t>(3, bench::envSize("SCDCNN_BENCH_TRACE_REPS", 5));
    double disarmed_best = 0.0, armed_best = 0.0;
    double pair_ratio_min = 0.0;
    for (size_t r = 0; r < ov_reps; ++r) {
        t0 = std::chrono::steady_clock::now();
        sc_net.predict(img, 500 + 2 * r);
        const double off_ms = msSince(t0);
        rec.arm();
        t0 = std::chrono::steady_clock::now();
        sc_net.predict(img, 501 + 2 * r);
        const double on_ms = msSince(t0);
        rec.disarm();
        if (r == 0 || off_ms < disarmed_best)
            disarmed_best = off_ms;
        if (r == 0 || on_ms < armed_best)
            armed_best = on_ms;
        const double ratio = off_ms > 0 ? on_ms / off_ms : 1.0;
        if (r == 0 || ratio < pair_ratio_min)
            pair_ratio_min = ratio;
    }
    const double trace_overhead = pair_ratio_min - 1.0;
    std::printf("  tracing overhead (armed vs disarmed fused predict, "
                "min pair ratio of %zu):\n",
                ov_reps);
    std::printf("    %-26s %10.1f ms\n", "disarmed (best)", disarmed_best);
    std::printf("    %-26s %10.1f ms\n", "armed (best)", armed_best);
    std::printf("    %-26s %+9.2f%%\n\n", "overhead",
                100.0 * trace_overhead);

    // --- batched throughput across thread counts -------------------
    std::vector<nn::Tensor> images;
    images.reserve(batch_images);
    for (size_t i = 0; i < batch_images; ++i)
        images.push_back(nn::DigitDataset::render(i % 10, 100 + i));

    // On a single-hardware-thread box the multi-thread points are the
    // same run three times (the pool degenerates to inline execution);
    // skip the repeats and keep the one honest measurement.
    std::vector<size_t> thread_counts;
    const size_t hw = std::thread::hardware_concurrency();
    for (size_t t = 1; t <= (hw <= 1 ? size_t{1} : max_threads); t *= 2)
        thread_counts.push_back(t);

    std::printf("forwardBatch of %zu images:\n", batch_images);
    std::vector<ThreadPoint> points;
    std::vector<size_t> baseline_preds;
    for (size_t t : thread_counts) {
        ThreadPool pool(t);
        t0 = std::chrono::steady_clock::now();
        const auto preds = sc_net.forwardBatch(images, 42, &pool);
        const double ms = msSince(t0);
        if (baseline_preds.empty())
            baseline_preds = preds;
        else if (preds != baseline_preds)
            std::printf("  WARNING: thread count %zu changed "
                        "predictions (determinism bug)\n",
                        t);
        const double ips =
            static_cast<double>(batch_images) / (ms / 1000.0);
        points.push_back({t, ms, ips});
        std::printf("  %2zu thread%s %10.1f ms %10.2f images/sec\n", t,
                    t == 1 ? " " : "s", ms, ips);
    }

    // Batch-vs-single throughput ratio of the weight-stationary batch
    // path (both sides on one thread, so the ratio isolates the
    // kernel-level win — weight words streamed once per micro-batch —
    // from thread scaling). The reuse factor is the number of images
    // each weight-block load serves: the whole batch under the
    // whole-stream default, vs 1 on the per-image loop.
    const double single_ips = 1000.0 / fused_ms;
    const double batch_ratio =
        points.empty() ? 0.0 : points[0].images_per_sec / single_ips;
    std::printf("  %-28s %10.2fx (batch ips / single ips, 1 thread)\n",
                "batch speedup", batch_ratio);
    std::printf("  %-28s %10zu images per weight-block load\n",
                "weight-block reuse", batch_images);

    // --- scenario topologies ---------------------------------------
    // The engine is topology-general; keep a per-topology datapoint
    // for the two standing scenario networks so their trajectory is
    // tracked alongside LeNet5 (bench_check tolerates entries with no
    // committed history yet).
    struct TopoPoint
    {
        const char *name;
        double fused_ms;
        double batch_ms;
        double batch_ips;
        double batch_ratio; //!< batch ips / single-image ips, 1 thread
        double binary_ms;
        double binary_ratio; //!< binary ips / fused single-image ips
    };
    std::vector<TopoPoint> topo_points;
    {
        struct Scenario
        {
            const char *name;
            nn::Network net;
        };
        Scenario scenarios[] = {
            {"lenet-l", nn::buildLeNetL(nn::PoolingMode::Max, 1)},
            {"mlp", nn::buildMlp(1)},
        };
        std::printf("\nscenario topologies (fused single image + "
                    "%zu-image batch, 1 thread):\n",
                    batch_images);
        ThreadPool pool1(1);
        for (Scenario &s : scenarios) {
            core::ScNetwork topo_net(s.net, cfg);
            topo_net.predict(img, 1); // warm-up
            t0 = std::chrono::steady_clock::now();
            for (size_t r = 0; r < fused_reps; ++r)
                topo_net.predict(img, 2 + r);
            const double ms =
                msSince(t0) / static_cast<double>(fused_reps);
            t0 = std::chrono::steady_clock::now();
            topo_net.forwardBatch(images, 42, &pool1);
            const double bms = msSince(t0);
            const double bips =
                static_cast<double>(batch_images) / (bms / 1000.0);
            const double ratio = bips / (1000.0 / ms);
            topo_net.predictWith(img, 1, binary_opts, nullptr,
                                 nullptr); // warm-up
            t0 = std::chrono::steady_clock::now();
            for (size_t r = 0; r < binary_reps; ++r)
                topo_net.predictWith(img, 2 + r, binary_opts, nullptr,
                                     nullptr);
            const double bin_ms =
                msSince(t0) / static_cast<double>(binary_reps);
            const double bin_ratio = ms / bin_ms;
            topo_points.push_back(
                {s.name, ms, bms, bips, ratio, bin_ms, bin_ratio});
            std::printf("  %-10s %10.1f ms single, %10.1f ms batch "
                        "(%6.2f images/sec, %4.2fx), %8.3f ms binary "
                        "(%5.1fx)\n",
                        s.name, ms, bms, bips, ratio, bin_ms, bin_ratio);
        }
    }

    // --- machine-readable trajectory -------------------------------
    const char *json_env = std::getenv("SCDCNN_BENCH_JSON");
    const std::string json_path =
        json_env != nullptr && *json_env != '\0' ? json_env
                                                 : "BENCH_throughput.json";

    // Compare against the previous run at the same path before
    // overwriting it, so regressions are visible run over run.
    const std::string previous = readFile(json_path);
    double prev_fused = 0, prev_ref = 0;
    if (extractNumber(previous, "fused_ms", &prev_fused) &&
        prev_fused > 0) {
        std::printf("\nvs previous %s:\n", json_path.c_str());
        std::printf("  %-28s %10.1f -> %8.1f ms (%.2fx)\n", "fused",
                    prev_fused, fused_ms, prev_fused / fused_ms);
        if (extractNumber(previous, "reference_ms", &prev_ref) &&
            prev_ref > 0)
            std::printf("  %-28s %10.1f -> %8.1f ms (%.2fx)\n",
                        "reference", prev_ref, ref_ms,
                        prev_ref / ref_ms);
    }

    std::FILE *f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"throughput\",\n");
    std::fprintf(f, "  \"network\": \"lenet5\",\n");
    std::fprintf(f, "  \"config\": \"%s\",\n", cfg.describe().c_str());
    std::fprintf(f, "  \"bitstream_len\": %zu,\n", len);
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"compiler\": \"%s\",\n", __VERSION__);
    std::fprintf(f, "  \"simd\": \"%s\",\n",
                 sc::simd::enabled() ? "avx2" : "scalar");
    std::fprintf(f, "  \"filter_block\": %zu,\n", sc::kFilterLanes);
    std::fprintf(f, "  \"segment_words\": %zu,\n",
                 cfg.stream_segment_words);
    std::fprintf(f, "  \"single_image\": {\n");
    std::fprintf(f, "    \"reference_ms\": %.3f,\n", ref_ms);
    std::fprintf(f, "    \"fused_ms\": %.3f,\n", fused_ms);
    std::fprintf(f, "    \"speedup\": %.2f,\n", speedup);
    std::fprintf(f, "    \"fused_ns_per_feb\": %.1f,\n", ns_per_feb);
    std::fprintf(f, "    \"phases_ms\": {\n");
    std::fprintf(f, "      \"encode\": %.3f,\n", fused_phases.encode);
    std::fprintf(f, "      \"inner_product\": %.3f,\n",
                 fused_phases.inner_product);
    std::fprintf(f, "      \"pooling\": %.3f,\n", fused_phases.pooling);
    std::fprintf(f, "      \"activation\": %.3f,\n",
                 fused_phases.activation);
    std::fprintf(f, "      \"output\": %.3f\n", fused_phases.output);
    std::fprintf(f, "    },\n");
    std::fprintf(f, "    \"progressive\": {\n");
    std::fprintf(f, "      \"margin\": %.3f,\n", cfg.progressive_margin);
    std::fprintf(f, "      \"min_bits\": %zu,\n",
                 cfg.progressive_min_bits);
    std::fprintf(f, "      \"ms\": %.3f,\n", prog_ms);
    std::fprintf(f, "      \"speedup_vs_fused\": %.2f,\n",
                 fused_ms / prog_ms);
    std::fprintf(f, "      \"effective_bits\": %.1f,\n", prog_avg_bits);
    std::fprintf(f, "      \"early_exits\": %zu,\n", prog_exits);
    std::fprintf(f, "      \"reps\": %zu\n", fused_reps);
    std::fprintf(f, "    },\n");
    std::fprintf(f, "    \"binary\": {\n");
    std::fprintf(f, "      \"ms\": %.4f,\n", binary_ms);
    std::fprintf(f, "      \"images_per_sec\": %.2f,\n",
                 1000.0 / binary_ms);
    std::fprintf(f, "      \"speedup_vs_fused\": %.2f,\n",
                 binary_speedup);
    std::fprintf(f, "      \"reps\": %zu\n", binary_reps);
    std::fprintf(f, "    },\n");
    std::fprintf(f, "    \"accuracy_trained\": {\n");
    std::fprintf(f, "      \"images\": %zu,\n", kAccImages);
    std::fprintf(f, "      \"sc\": %.3f,\n", sc_acc);
    std::fprintf(f, "      \"binary\": %.3f,\n", bnn_acc);
    std::fprintf(f, "      \"sc_minus_binary\": %.3f\n",
                 sc_acc - bnn_acc);
    std::fprintf(f, "    }\n");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"trace_overhead\": {\n");
    std::fprintf(f, "    \"reps\": %zu,\n", ov_reps);
    std::fprintf(f, "    \"disarmed_ms\": %.3f,\n", disarmed_best);
    std::fprintf(f, "    \"armed_ms\": %.3f,\n", armed_best);
    std::fprintf(f, "    \"overhead_frac\": %.4f\n", trace_overhead);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"batch\": {\n");
    std::fprintf(f, "    \"images\": %zu,\n", batch_images);
    std::fprintf(f, "    \"weight_block_reuse\": %zu,\n", batch_images);
    std::fprintf(f, "    \"batch_ips_per_single_ips\": %.3f,\n",
                 batch_ratio);
    std::fprintf(f, "    \"runs\": [\n");
    for (size_t i = 0; i < points.size(); ++i) {
        const ThreadPoint &p = points[i];
        std::fprintf(f,
                     "      {\"threads\": %zu, \"ms_total\": %.3f, "
                     "\"images_per_sec\": %.2f}%s\n",
                     p.threads, p.ms_total, p.images_per_sec,
                     i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"topologies\": {\n");
    for (size_t i = 0; i < topo_points.size(); ++i) {
        const TopoPoint &p = topo_points[i];
        std::fprintf(f,
                     "    \"%s\": {\"fused_ms\": %.3f, "
                     "\"images_per_sec\": %.2f, "
                     "\"batch_ms_total\": %.3f, "
                     "\"batch_images_per_sec\": %.2f, "
                     "\"batch_ips_per_single_ips\": %.3f, "
                     "\"binary_ms\": %.4f, "
                     "\"binary_images_per_sec\": %.2f, "
                     "\"binary_ips_per_fused_ips\": %.2f}%s\n",
                     p.name, p.fused_ms, 1000.0 / p.fused_ms, p.batch_ms,
                     p.batch_ips, p.batch_ratio, p.binary_ms,
                     1000.0 / p.binary_ms, p.binary_ratio,
                     i + 1 < topo_points.size() ? "," : "");
    }
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
    return 0;
}
