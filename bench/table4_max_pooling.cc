/**
 * @file
 * Table 4: relative result deviation of the hardware-oriented max
 * pooling block vs software max pooling (segment length c = 16).
 */

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "blocks/pooling.h"
#include "common/table.h"
#include "sc/rng.h"
#include "sc/sng.h"

using namespace scdcnn;

namespace {

double
meanDeviation(size_t n_inputs, size_t len, int trials)
{
    double dev = 0;
    int used = 0;
    for (int t = 0; t < trials; ++t) {
        sc::SplitMix64 vals(3100 + t * 17 + n_inputs + len);
        sc::SngBank bank(900 + t);
        std::vector<sc::Bitstream> ins;
        for (size_t i = 0; i < n_inputs; ++i)
            ins.push_back(
                bank.bipolar(vals.nextInRange(-1.0, 1.0), len));
        double got =
            blocks::HardwareMaxPooling::compute(ins, 16).bipolar();
        double best = -1.0;
        for (const auto &s : ins)
            best = std::max(best, s.bipolar());
        // Relative deviation vs the true (stream-level) maximum.
        if (std::abs(best) < 0.05)
            continue; // avoid blowing up the relative metric near 0
        dev += std::abs(got - best) / std::abs(best);
        ++used;
    }
    return used > 0 ? dev / used : 0.0;
}

} // namespace

int
main()
{
    bench::banner("Table 4",
                  "Relative deviation of the hardware-oriented max "
                  "pooling block vs software max (c = 16).");
    const int trials = static_cast<int>(bench::envSize(
        "SCDCNN_TABLE4_TRIALS", 40));
    const size_t sizes[] = {4, 9, 16};
    const size_t lengths[] = {128, 256, 384, 512};
    const double paper[3][4] = {{0.127, 0.081, 0.066, 0.059},
                                {0.147, 0.099, 0.086, 0.074},
                                {0.166, 0.108, 0.097, 0.086}};

    TextTable t("Relative deviation of HW max pooling "
                "(paper values in parentheses)");
    t.header({"Input size", "L=128", "L=256", "L=384", "L=512"});
    for (int i = 0; i < 3; ++i) {
        std::vector<std::string> row = {
            TextTable::num(static_cast<long long>(sizes[i]))};
        for (int j = 0; j < 4; ++j) {
            row.push_back(
                TextTable::num(
                    meanDeviation(sizes[i], lengths[j], trials), 3) +
                " (" + TextTable::num(paper[i][j], 3) + ")");
        }
        t.row(row);
    }
    t.print(std::cout);

    std::printf("\nShape check: deviation shrinks with longer streams "
                "and grows mildly with more candidates, as in the "
                "paper.\n");
    return 0;
}
