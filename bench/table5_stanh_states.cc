/**
 * @file
 * Table 5: state count K vs relative inaccuracy of Stanh against
 * tanh(Kx/2) with inputs spanning [-1, 1] (L = 8192).
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "sc/rng.h"
#include "sc/sng.h"
#include "sc/stanh.h"

using namespace scdcnn;

namespace {

double
relativeInaccuracy(unsigned k, size_t len, int trials)
{
    double num = 0;
    double den = 0;
    for (int t = 0; t < trials; ++t) {
        sc::SplitMix64 vals(4400 + t * 19 + k);
        const double x = vals.nextInRange(-1.0, 1.0);
        sc::Xoshiro256ss rng(1200 + t);
        sc::Bitstream in = sc::sngBipolar(x, len, rng);
        sc::Stanh fsm(k);
        const double got = fsm.transform(in).bipolar();
        const double want = sc::Stanh::reference(k, x);
        num += std::abs(got - want);
        den += std::abs(want);
    }
    return den > 0 ? num / den : 0.0;
}

} // namespace

int
main()
{
    bench::banner("Table 5",
                  "State number vs relative inaccuracy of Stanh "
                  "(inputs uniform over [-1,1], L = 8192).");
    const int trials = static_cast<int>(bench::envSize(
        "SCDCNN_TABLE5_TRIALS", 120));
    const unsigned states[] = {8, 10, 12, 14, 16, 18, 20};
    const double paper[] = {10.06, 8.27, 7.43, 7.36, 7.51, 8.07, 8.55};

    TextTable t("Stanh relative inaccuracy % (paper in parentheses)");
    std::vector<std::string> hdr = {"State number"};
    std::vector<std::string> row = {"Relative inaccuracy (%)"};
    for (int i = 0; i < 7; ++i) {
        hdr.push_back(TextTable::num(static_cast<long long>(states[i])));
        row.push_back(
            TextTable::num(
                100.0 * relativeInaccuracy(states[i], 8192, trials)) +
            " (" + TextTable::num(paper[i]) + ")");
    }
    t.header(hdr);
    t.row(row);
    t.print(std::cout);

    std::printf("\nShape check: inaccuracy is a few to ~10%% across "
                "K = 8..20 and is not suppressed by raising K, the "
                "paper's motivation for joint (K, L, N) sizing.\n");
    return 0;
}
