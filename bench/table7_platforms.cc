/**
 * @file
 * Table 7: platform comparison — the SC-DCNN configurations No.6 and
 * No.11 from our models next to the literature platforms.
 */

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "core/metrics.h"
#include "core/sc_network.h"
#include "nn/trainer.h"

using namespace scdcnn;

namespace {

std::string
orNa(double v, int digits = 1)
{
    return v > 0 ? TextTable::num(v, digits) : "N/A";
}

} // namespace

int
main()
{
    bench::banner("Table 7",
                  "Existing hardware platforms vs SC-DCNN (No.6 most "
                  "accurate max-pooling config, No.11 most "
                  "energy-efficient average-pooling config).");
    const std::string dir = bench::dataDir();
    const size_t n_eval = bench::evalImages();

    TextTable t("Table 7 (SC-DCNN rows from our models; reference "
                "rows from the literature)");
    t.header({"Platform", "Dataset", "Net", "Year", "Type",
              "Area (mm2)", "Power (W)", "Accuracy (%)",
              "Throughput (img/s)", "Area eff (img/s/mm2)",
              "Energy eff (img/J)"});

    // Our two rows.
    for (int number : {6, 11}) {
        const auto entries = core::table6Entries();
        const core::Table6Entry &e = entries[number - 1];
        nn::Network net = nn::trainedLeNet5(e.config.pooling, dir, dir);
        nn::Dataset train, test;
        nn::loadDigits(dir, 1, n_eval, train, test);
        core::ScNetwork sc_net(net, e.config);
        const double acc =
            100.0 * (1.0 - sc_net.errorRate(test, n_eval));
        core::PlatformRow row = core::scdcnnPlatformRow(
            "SC-DCNN (No." + TextTable::num(
                static_cast<long long>(number)) + ")",
            e.config, acc);
        t.row({row.platform, row.dataset, row.network_type,
               TextTable::num(static_cast<long long>(row.year)),
               row.platform_type, TextTable::num(row.area_mm2, 1),
               TextTable::num(row.power_w, 2),
               TextTable::num(row.accuracy_pct, 2),
               TextTable::num(row.throughput, 0),
               TextTable::num(row.area_eff, 0),
               TextTable::num(row.energy_eff, 0)});
    }
    t.separator();
    for (const core::PlatformRow &row : core::table7ReferenceRows()) {
        t.row({row.platform, row.dataset, row.network_type,
               TextTable::num(static_cast<long long>(row.year)),
               row.platform_type, orNa(row.area_mm2),
               orNa(row.power_w, 2), orNa(row.accuracy_pct, 2),
               TextTable::num(row.throughput, 0), orNa(row.area_eff, 0),
               TextTable::num(row.energy_eff, 0)});
    }
    t.print(std::cout);

    std::printf(
        "\nShape checks (paper Table 7): SC-DCNN throughput is 781250 "
        "images/s at L=256 (1/1280 ns); its area and energy efficiency "
        "dominate the CPU/GPU rows by orders of magnitude and every "
        "listed accelerator on at least one efficiency axis.\n");
    return 0;
}
