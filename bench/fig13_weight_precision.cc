/**
 * @file
 * Figure 13: network error rate vs stored weight precision w, with the
 * reduction applied at a single layer group or at all layers.
 */

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "nn/quantize.h"
#include "nn/trainer.h"

using namespace scdcnn;

int
main()
{
    bench::banner("Figure 13",
                  "Impact of weight precision at different layers on "
                  "the overall network error rate.");
    const std::string dir = bench::dataDir();
    nn::Network net = nn::trainedLeNet5(nn::PoolingMode::Max, dir, dir);

    nn::Dataset train, test;
    nn::loadDigits(dir, 1,
                   bench::envSize("SCDCNN_FIG13_IMAGES", 400), train,
                   test);
    const double base_err = nn::Trainer::errorRate(net, test);
    std::printf("software baseline error (float weights): %.2f%%\n\n",
                base_err * 100.0);

    TextTable t("Error rate %% vs weight precision w");
    t.header({"w (bits)", "Layer0 only", "Layer1 only", "Layer2 only",
              "All layers"});
    for (unsigned w = 2; w <= 10; ++w) {
        std::vector<std::string> row = {
            TextTable::num(static_cast<long long>(w))};
        for (size_t group = 0; group < 3; ++group) {
            nn::Network q = net;
            nn::quantizeNetworkGroup(q, group, w);
            row.push_back(TextTable::num(
                100.0 * nn::Trainer::errorRate(q, test), 2));
        }
        nn::Network q = net;
        nn::quantizeNetwork(q, {w, w, w});
        row.push_back(TextTable::num(
            100.0 * nn::Trainer::errorRate(q, test), 2));
        t.row(row);
    }
    t.print(std::cout);

    // Section 5.3's layer-wise 7-7-6 point.
    nn::Network q776 = net;
    nn::quantizeNetwork(q776, {7, 7, 6});
    std::printf("\nLayer-wise 7-7-6 storage: error %.2f%% "
                "(baseline %.2f%%); the paper reports 1.65%% vs 1.53%% "
                "with ~12x SRAM savings (see the sram cost model).\n",
                100.0 * nn::Trainer::errorRate(q776, test),
                base_err * 100.0);
    std::printf("Shape check: error is flat for w >= 7 and blows up "
                "below ~4 bits, with the fully-connected group (most "
                "weights) the most sensitive.\n");
    return 0;
}
