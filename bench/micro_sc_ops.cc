/**
 * @file
 * Host-side throughput microbenchmarks of the SC simulator primitives
 * (google-benchmark): stream generation, gate ops, counting, FSMs.
 */

#include <benchmark/benchmark.h>

#include "sc/btanh.h"
#include "sc/counter.h"
#include "sc/ops.h"
#include "sc/rng.h"
#include "sc/sng.h"
#include "sc/stanh.h"

using namespace scdcnn::sc;

namespace {

void
BM_SngBipolar(benchmark::State &state)
{
    const size_t len = static_cast<size_t>(state.range(0));
    Xoshiro256ss rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(sngBipolar(0.3, len, rng));
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(len));
}
BENCHMARK(BM_SngBipolar)->Arg(256)->Arg(1024)->Arg(4096);

void
BM_SngBipolarLfsr(benchmark::State &state)
{
    const size_t len = static_cast<size_t>(state.range(0));
    Lfsr lfsr(16, 0xACE1);
    for (auto _ : state)
        benchmark::DoNotOptimize(sngBipolar(0.3, len, lfsr));
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(len));
}
BENCHMARK(BM_SngBipolarLfsr)->Arg(1024);

void
BM_XnorMultiply(benchmark::State &state)
{
    const size_t len = static_cast<size_t>(state.range(0));
    SngBank bank(2);
    Bitstream a = bank.bipolar(0.4, len);
    Bitstream b = bank.bipolar(-0.2, len);
    for (auto _ : state)
        benchmark::DoNotOptimize(xnorMultiply(a, b));
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(len));
}
BENCHMARK(BM_XnorMultiply)->Arg(1024)->Arg(8192);

void
BM_MuxAdd(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    SngBank bank(3);
    std::vector<Bitstream> ins;
    for (size_t i = 0; i < n; ++i)
        ins.push_back(bank.bipolar(0.1, 1024));
    Xoshiro256ss sel(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(muxAdd(ins, sel));
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_MuxAdd)->Arg(16)->Arg(64)->Arg(256);

void
BM_ApcCounts(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    SngBank bank(5);
    std::vector<Bitstream> ins;
    for (size_t i = 0; i < n; ++i)
        ins.push_back(bank.bipolar(0.0, 1024));
    for (auto _ : state)
        benchmark::DoNotOptimize(ApproxParallelCounter::counts(ins));
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(n) * 1024);
}
BENCHMARK(BM_ApcCounts)->Arg(16)->Arg(64)->Arg(256)->Arg(512);

void
BM_Stanh(benchmark::State &state)
{
    SngBank bank(6);
    Bitstream in = bank.bipolar(0.2, 4096);
    for (auto _ : state) {
        Stanh fsm(16);
        benchmark::DoNotOptimize(fsm.transform(in));
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Stanh);

void
BM_Btanh(benchmark::State &state)
{
    SngBank bank(7);
    std::vector<Bitstream> ins;
    for (int i = 0; i < 64; ++i)
        ins.push_back(bank.bipolar(0.0, 1024));
    auto counts = ParallelCounter::counts(ins);
    for (auto _ : state) {
        Btanh unit(128, 64);
        benchmark::DoNotOptimize(unit.transform(counts));
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Btanh);

} // namespace

BENCHMARK_MAIN();
