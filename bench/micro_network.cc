/**
 * @file
 * Host-side microbenchmarks of the network layers and the SC inference
 * engine on the reduced network (google-benchmark).
 */

#include <benchmark/benchmark.h>

#include "core/sc_network.h"
#include "nn/dataset.h"
#include "nn/network.h"

using namespace scdcnn;

namespace {

void
BM_FloatForwardMini(benchmark::State &state)
{
    nn::Network net = nn::buildMiniLeNet(nn::PoolingMode::Max, 1);
    nn::Tensor img = nn::DigitDataset::render(3, 7);
    for (auto _ : state)
        benchmark::DoNotOptimize(net.forward(img));
}
BENCHMARK(BM_FloatForwardMini);

void
BM_FloatForwardLeNet5(benchmark::State &state)
{
    nn::Network net = nn::buildLeNet5(nn::PoolingMode::Max, 1);
    nn::Tensor img = nn::DigitDataset::render(3, 7);
    for (auto _ : state)
        benchmark::DoNotOptimize(net.forward(img));
}
BENCHMARK(BM_FloatForwardLeNet5);

void
BM_ScPredictMini(benchmark::State &state)
{
    const auto adder = static_cast<core::AdderKind>(state.range(0));
    nn::Network net = nn::buildMiniLeNet(nn::PoolingMode::Average, 1);
    core::ScNetworkConfig cfg;
    cfg.pooling = nn::PoolingMode::Average;
    cfg.layer_adders = {adder, core::AdderKind::Apc,
                        core::AdderKind::Apc};
    cfg.bitstream_len = static_cast<size_t>(state.range(1));
    core::ScNetwork sc_net(net, cfg);
    nn::Tensor img = nn::DigitDataset::render(5, 11);
    uint64_t seed = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(sc_net.predict(img, ++seed));
}
BENCHMARK(BM_ScPredictMini)
    ->Args({static_cast<long>(core::AdderKind::Apc), 256})
    ->Args({static_cast<long>(core::AdderKind::Apc), 1024})
    ->Args({static_cast<long>(core::AdderKind::Mux), 1024});

void
BM_DigitRender(benchmark::State &state)
{
    uint64_t seed = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(nn::DigitDataset::render(7, ++seed));
}
BENCHMARK(BM_DigitRender);

} // namespace

BENCHMARK_MAIN();
