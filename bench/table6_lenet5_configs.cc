/**
 * @file
 * Table 6: the twelve LeNet5 SC-DCNN configurations — measured network
 * inaccuracy (bit-level SC inference vs the software baseline) joined
 * with the hardware cost model's area/power/delay/energy.
 *
 * SCDCNN_EVAL_IMAGES bounds the bit-level evaluation cost (default 60;
 * note the error-rate granularity is 1/images).
 */

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "core/metrics.h"
#include "core/sc_network.h"
#include "nn/trainer.h"

using namespace scdcnn;

int
main()
{
    bench::banner("Table 6",
                  "Comparison among the twelve SC-DCNN LeNet5 "
                  "configurations (measured vs paper).");
    const std::string dir = bench::dataDir();
    const size_t n_eval = bench::evalImages();

    nn::Network net_max = nn::trainedLeNet5(nn::PoolingMode::Max, dir,
                                            dir);
    nn::Network net_avg = nn::trainedLeNet5(nn::PoolingMode::Average,
                                            dir, dir);
    nn::Dataset train, test;
    nn::loadDigits(dir, 1, n_eval, train, test);
    const double sw_max = nn::Trainer::errorRate(net_max, test);
    const double sw_avg = nn::Trainer::errorRate(net_avg, test);
    std::printf("software baselines: max-pooling %.2f%%, "
                "average-pooling %.2f%% (paper: 1.53%% / 2.24%% on "
                "MNIST; see DESIGN.md for the dataset substitution)\n",
                sw_max * 100.0, sw_avg * 100.0);
    std::printf("evaluating %zu images per configuration "
                "(SCDCNN_EVAL_IMAGES)\n\n", n_eval);

    TextTable t("Table 6 (measured, paper value in parentheses)");
    t.header({"No.", "Pooling", "Bit stream", "L0", "L1", "L2",
              "Inaccuracy (%)", "Area (mm2)", "Power (W)", "Delay (ns)",
              "Energy (uJ)"});

    for (const core::Table6Entry &e : core::table6Entries()) {
        const bool is_max = e.config.pooling == nn::PoolingMode::Max;
        nn::Network &base = is_max ? net_max : net_avg;
        const double sw = is_max ? sw_max : sw_avg;

        core::ScNetwork sc_net(base, e.config);
        const double err = sc_net.errorRate(test, n_eval);
        const double inacc = err - sw;
        core::Table6Row row =
            core::makeTable6Row(e.number, e.config, inacc);

        t.row({TextTable::num(static_cast<long long>(row.number)),
               row.pooling,
               TextTable::num(
                   static_cast<long long>(row.bitstream_len)),
               row.layer0, row.layer1, row.layer2,
               TextTable::num(row.inaccuracy_pct) + " (" +
                   TextTable::num(e.paper_inaccuracy_pct) + ")",
               TextTable::num(row.area_mm2, 1) + " (" +
                   TextTable::num(e.paper_area_mm2, 1) + ")",
               TextTable::num(row.power_w) + " (" +
                   TextTable::num(e.paper_power_w) + ")",
               TextTable::num(row.delay_ns, 0) + " (" +
                   TextTable::num(e.paper_delay_ns, 0) + ")",
               TextTable::num(row.energy_uj, 1) + " (" +
                   TextTable::num(e.paper_energy_uj, 1) + ")"});
        std::printf("finished No.%d (%s)\n", e.number,
                    e.config.describe().c_str());
    }
    std::printf("\n");
    t.print(std::cout);

    std::printf(
        "\nShape checks (paper Table 6): delay is exactly 5 ns x L; "
        "configurations with more APC layers are larger, hungrier and "
        "more accurate; shorter bit-streams cut energy "
        "proportionally.\nKnown deviation: configurations with MUX at "
        "Layer1 (No.1/3/5) degrade far more here than in the paper — "
        "a flat 500-input MUX drops 499/500 of the products per cycle, "
        "consistent with the paper's own Table 2 error data (see "
        "EXPERIMENTS.md).\n");
    return 0;
}
