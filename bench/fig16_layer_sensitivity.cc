/**
 * @file
 * Figure 16: impact of inaccuracy injected at each layer on the
 * overall network accuracy.
 */

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "core/metrics.h"
#include "nn/trainer.h"

using namespace scdcnn;

int
main()
{
    bench::banner("Figure 16",
                  "Per-layer sensitivity: Gaussian inaccuracy injected "
                  "into one layer group's activations vs network "
                  "error.");
    const std::string dir = bench::dataDir();
    nn::Network net = nn::trainedLeNet5(nn::PoolingMode::Max, dir, dir);
    nn::Dataset train, test;
    nn::loadDigits(dir, 1,
                   bench::envSize("SCDCNN_FIG16_IMAGES", 300), train,
                   test);

    const double base = nn::Trainer::errorRate(net, test);
    std::printf("baseline error (no injected inaccuracy): %.2f%%\n\n",
                base * 100.0);

    TextTable t("Error rate %% vs injected activation noise sigma");
    t.header({"sigma", "Layer0", "Layer1", "Layer2"});
    for (double sigma : {0.05, 0.1, 0.2, 0.3, 0.5}) {
        std::vector<std::string> row = {TextTable::num(sigma, 2)};
        for (size_t group = 0; group < 3; ++group) {
            row.push_back(TextTable::num(
                100.0 * core::errorRateWithLayerNoise(net, test, group,
                                                      sigma, 42),
                2));
        }
        t.row(row);
    }
    t.print(std::cout);

    std::printf("\nShape check (paper Fig. 16): layers differ in error "
                "sensitivity, which justifies the layer-wise feature "
                "extraction block configuration strategy of Section "
                "6.2.\n");
    return 0;
}
