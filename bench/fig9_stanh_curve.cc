/**
 * @file
 * Figure 9: Stanh(K, x) output vs tanh(Kx/2) across the input range,
 * for several state counts.
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "sc/rng.h"
#include "sc/sng.h"
#include "sc/stanh.h"

using namespace scdcnn;

int
main()
{
    bench::banner("Figure 9",
                  "Stanh output vs tanh(Kx/2) over x in [-1,1] "
                  "(L = 8192); one column pair per K.");
    const size_t len = 8192;
    const unsigned ks[] = {4, 8, 16, 20};

    TextTable t("Stanh(K,x) [measured] vs tanh(Kx/2) [reference]");
    std::vector<std::string> hdr = {"x"};
    for (unsigned k : ks) {
        hdr.push_back("K=" + TextTable::num(static_cast<long long>(k)) +
                      " SC");
        hdr.push_back("K=" + TextTable::num(static_cast<long long>(k)) +
                      " ref");
    }
    t.header(hdr);

    for (double x = -1.0; x <= 1.001; x += 0.125) {
        std::vector<std::string> row = {TextTable::num(x, 3)};
        for (unsigned k : ks) {
            sc::Xoshiro256ss rng(
                5000 + k + static_cast<uint64_t>((x + 1) * 1000));
            sc::Bitstream in = sc::sngBipolar(x, len, rng);
            sc::Stanh fsm(k);
            row.push_back(TextTable::num(fsm.transform(in).bipolar(), 3));
            row.push_back(TextTable::num(sc::Stanh::reference(k, x), 3));
        }
        t.row(row);
    }
    t.print(std::cout);

    std::printf("\nShape check: the FSM tracks the scaled tanh closely "
                "in the mid range and deviates near |x| -> 1, as "
                "Figure 9 shows.\n");
    return 0;
}
