/**
 * @file
 * Figure 15: input size vs area, path delay, total power and total
 * energy for the four feature extraction block designs (L = 1024).
 */

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "blocks/feature_block.h"
#include "common/table.h"
#include "hw/cost_model.h"

using namespace scdcnn;

int
main()
{
    bench::banner("Figure 15",
                  "Input size vs (a) area, (b) path delay, (c) total "
                  "power, (d) total energy for the four feature "
                  "extraction blocks (L = 1024).");
    const size_t len = 1024;
    const size_t sizes[] = {16, 32, 64, 128, 256};
    const blocks::FebKind kinds[] = {
        blocks::FebKind::MuxAvgStanh, blocks::FebKind::MuxMaxStanh,
        blocks::FebKind::ApcAvgBtanh, blocks::FebKind::ApcMaxBtanh};

    struct Panel
    {
        const char *title;
        double (*value)(const hw::HwCost &, size_t);
    };
    const Panel panels[] = {
        {"(a) Area (um^2)",
         [](const hw::HwCost &c, size_t) { return c.area_um2; }},
        {"(b) Path delay (ns)",
         [](const hw::HwCost &c, size_t) { return c.delay_ns; }},
        {"(c) Total power (uW)",
         [](const hw::HwCost &c, size_t) {
             return c.totalPowerW() * 1e6;
         }},
        {"(d) Total energy (pJ, whole stream)",
         [](const hw::HwCost &c, size_t l) {
             return c.energyForLength(l) * 1e12;
         }},
    };

    for (const Panel &panel : panels) {
        TextTable t(panel.title);
        t.header({"Input size", "MUX-Avg-Stanh", "MUX-Max-Stanh",
                  "APC-Avg-Btanh", "APC-Max-Btanh"});
        for (size_t n : sizes) {
            std::vector<std::string> row = {
                TextTable::num(static_cast<long long>(n))};
            for (blocks::FebKind kind : kinds) {
                blocks::FebConfig cfg;
                cfg.kind = kind;
                cfg.n_inputs = n;
                cfg.length = len;
                row.push_back(
                    TextTable::num(panel.value(hw::febCost(cfg), len),
                                   1));
            }
            t.row(row);
        }
        t.print(std::cout);
        std::printf("\n");
    }

    std::printf("Shape check (paper Fig. 15): APC blocks cost more "
                "area/energy and have longer paths than MUX blocks at "
                "every size; MUX-Avg-Stanh is the cheapest design; all "
                "costs grow with input size.\n");
    return 0;
}
