/**
 * @file
 * Ablations of the design choices DESIGN.md calls out:
 *  (1) APC truncated-parity LSB vs exact parallel counter;
 *  (2) accumulative vs per-segment-reset max pooling counters;
 *  (3) shared vs independent SNG generators (stream correlation);
 *  (4) signed vs unsigned truncation in binary average pooling.
 */

#include <algorithm>
#include <cmath>
#include <iostream>
#include <numeric>
#include <vector>

#include "bench_util.h"
#include "blocks/pooling.h"
#include "common/table.h"
#include "sc/btanh.h"
#include "sc/counter.h"
#include "sc/ops.h"
#include "sc/rng.h"
#include "sc/sng.h"

using namespace scdcnn;
using namespace scdcnn::sc;

int
main()
{
    bench::banner("Ablations",
                  "Quantifying the design choices documented in "
                  "DESIGN.md.");

    // (1) APC vs exact counter: error and gate model cost.
    {
        TextTable t("(1) APC truncated-parity LSB vs exact counter "
                    "(n=32, L=512, 20 trials)");
        t.header({"Counter", "Mean |count error| per cycle",
                  "Relative sum error %"});
        double abs_err = 0, rel_err = 0;
        const int trials = 20;
        for (int trial = 0; trial < trials; ++trial) {
            SngBank bank(100 + trial);
            SplitMix64 vals(trial);
            std::vector<Bitstream> lines;
            for (int i = 0; i < 32; ++i)
                lines.push_back(bank.unipolar(vals.nextDouble(), 512));
            auto exact = ParallelCounter::counts(lines);
            auto approx = ApproxParallelCounter::counts(lines);
            double sum_e = 0, sum_a = 0, abs_sum = 0;
            for (size_t i = 0; i < exact.size(); ++i) {
                abs_sum += std::abs(static_cast<int>(approx[i]) -
                                    static_cast<int>(exact[i]));
                sum_e += exact[i];
                sum_a += approx[i];
            }
            abs_err += abs_sum / static_cast<double>(exact.size());
            rel_err += std::abs(sum_a - sum_e) / sum_e;
        }
        t.row({"Exact PC", "0.000", "0.00"});
        t.row({"APC", TextTable::num(abs_err / trials, 3),
               TextTable::num(100.0 * rel_err / trials, 2)});
        t.print(std::cout);
        std::printf("APC buys ~40%% of the counter gates for <1%% "
                    "relative error.\n\n");
    }

    // (2) accumulative vs resetting max pooling counters at small
    // stream separations (the trained-network regime).
    {
        TextTable t("(2) Max pooling counter mode, candidates at "
                    "s/N = {0.10, 0.06, 0.02, -0.02}, L=1024, c=16");
        t.header({"Counter mode", "Mean |pooled - true max|"});
        for (bool accumulate : {false, true}) {
            double err = 0;
            const int trials = 40;
            for (int trial = 0; trial < trials; ++trial) {
                SngBank bank(300 + trial);
                std::vector<Bitstream> ins = {
                    bank.bipolar(0.10, 1024), bank.bipolar(0.06, 1024),
                    bank.bipolar(0.02, 1024),
                    bank.bipolar(-0.02, 1024)};
                double got = blocks::HardwareMaxPooling::compute(
                                 ins, 16, 0, accumulate)
                                 .bipolar();
                err += std::abs(got - 0.10);
            }
            t.row({accumulate ? "accumulative" : "reset per segment",
                   TextTable::num(err / trials, 4)});
        }
        t.print(std::cout);
        std::printf("Accumulated counters converge on the true max; "
                    "per-segment counts cannot separate O(1/N) "
                    "candidates.\n\n");
    }

    // (3) SNG sharing: correlated operands break XNOR multiplication.
    {
        TextTable t("(3) SNG generator sharing (x=0.3 squared, "
                    "L=16384)");
        t.header({"Generators", "SCC", "XNOR result (want 0.09)"});
        {
            Lfsr l1(16, 77), l2(16, 77);
            Bitstream a = sngBipolar(0.3, 1 << 14, l1);
            Bitstream b = sngBipolar(0.3, 1 << 14, l2);
            t.row({"shared (same seed)", TextTable::num(scc(a, b), 2),
                   TextTable::num(xnorMultiply(a, b).bipolar(), 3)});
        }
        {
            Lfsr l1(16, 77), l2(16, 12345);
            Bitstream a = sngBipolar(0.3, 1 << 14, l1);
            Bitstream b = sngBipolar(0.3, 1 << 14, l2);
            t.row({"independent seeds", TextTable::num(scc(a, b), 2),
                   TextTable::num(xnorMultiply(a, b).bipolar(), 3)});
        }
        t.print(std::cout);
        std::printf("Shared generators force SCC ~ 1 and destroy the "
                    "product; the cost model charges per-filter "
                    "generator shares accordingly.\n\n");
    }

    // (4) binary average pooling: signed vs unsigned truncation.
    {
        TextTable t("(4) Binary average pooling truncation (n=64, "
                    "L=2048, Btanh K=n/2, inner products ~ 0)");
        t.header({"Divider", "Mean Btanh output bias"});
        const int trials = 30;
        double bias_unsigned = 0, bias_signed = 0;
        for (int trial = 0; trial < trials; ++trial) {
            SngBank bank(500 + trial);
            std::vector<std::vector<uint16_t>> counts;
            std::vector<std::vector<Bitstream>> fields;
            for (int j = 0; j < 4; ++j) {
                std::vector<Bitstream> lines;
                for (int i = 0; i < 64; ++i)
                    lines.push_back(bank.bipolar(0.0, 2048));
                counts.push_back(ParallelCounter::counts(lines));
            }
            Btanh u1(32, 64), u2(32, 64);
            bias_unsigned +=
                u1.transform(blocks::binaryAveragePooling(counts))
                    .bipolar();
            bias_signed +=
                u2.transformSigned(
                       blocks::binaryAveragePoolingSigned(counts, 64))
                    .bipolar();
        }
        t.row({"unsigned floor (count domain)",
               TextTable::num(bias_unsigned / trials, 3)});
        t.row({"signed trunc-toward-zero",
               TextTable::num(bias_signed / trials, 3)});
        t.print(std::cout);
        std::printf("Unsigned flooring injects a constant negative "
                    "drift (~ -(pool-1)/2 per cycle); the signed "
                    "divider keeps the output centred, consistent with "
                    "Figure 14(c)'s reported accuracy.\n");
    }
    return 0;
}
