#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON exported by the tracing subsystem.

Checks two things about a trace written by obs::writeChromeTrace (for
CI, the one the traced overload burst of bench_serving exports):

Well-formedness: the document is a JSON object whose "traceEvents"
array is non-empty, every event carries a name and a known phase
letter ("X" complete span, "b"/"e" async pair, "i" instant, "C"
counter, "M" metadata), and every non-metadata event has a numeric
timestamp.

Coverage: the serving request lifecycle and the engine phase
instrumentation both actually fired —

  - "queue_wait" complete spans (admit -> batch close, per request);
  - "batch_close" instants, each carrying a recognizable close reason
    (full / delay_expired / expedited / drain);
  - "batch_compute" complete spans (the forward pass over a batch);
  - "shed" instants (overload actually shed doomed requests), unless
    --no-shed;
  - "request" async begin/end events with at least one id seen on both
    sides (a request tracked from submit to resolution);
  - engine phase spans (encode / inner_product / activation / output),
    with inner_product observed at >= --min-seg-values distinct
    segment offsets (the per-segment streaming structure is visible,
    not just one aggregate span).

Exit status: 0 when valid, 1 on failed coverage checks, 2 on
malformed input.
"""

import argparse
import json
import sys

KNOWN_PH = {"X", "b", "e", "i", "C", "M"}
CLOSE_REASONS = {"full", "delay_expired", "expedited", "drain"}


def malformed(msg):
    sys.stderr.write(f"trace_check: {msg}\n")
    sys.exit(2)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="Chrome trace JSON to validate")
    ap.add_argument("--min-seg-values", type=int, default=2,
                    help="distinct inner_product segment offsets "
                         "required (default 2)")
    ap.add_argument("--no-shed", action="store_true",
                    help="do not require shed events (for traces of "
                         "non-overloaded runs)")
    args = ap.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        malformed(f"cannot read {args.trace}: {e}")
    except json.JSONDecodeError as e:
        malformed(f"{args.trace} is not valid JSON: {e}")

    if not isinstance(doc, dict):
        malformed("top level is not a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        malformed("no traceEvents array")
    if not events:
        malformed("traceEvents is empty")

    for i, e in enumerate(events):
        if not isinstance(e, dict):
            malformed(f"event {i} is not an object")
        ph = e.get("ph")
        if ph not in KNOWN_PH:
            malformed(f"event {i} has unknown phase {ph!r}")
        if not isinstance(e.get("name"), str) or not e["name"]:
            malformed(f"event {i} has no name")
        if ph != "M" and not isinstance(e.get("ts"), (int, float)):
            malformed(f"event {i} ({e['name']}) has no numeric ts")
        if ph == "X" and not isinstance(e.get("dur"), (int, float)):
            malformed(f"event {i} ({e['name']}) is 'X' without dur")

    def count(name, ph):
        return sum(1 for e in events
                   if e["name"] == name and e["ph"] == ph)

    ok = True

    def require(label, passed, detail):
        nonlocal ok
        print(f"trace_check: {label}: {detail}: "
              f"{'OK' if passed else 'MISSING'}")
        ok = ok and passed

    # --- request lifecycle -------------------------------------------
    n = count("queue_wait", "X")
    require("queue-wait spans", n > 0, f"{n} found")

    closes = [e for e in events
              if e["name"] == "batch_close" and e["ph"] == "i"]
    reasons = {e.get("args", {}).get("reason") for e in closes}
    require("batch-close instants", len(closes) > 0,
            f"{len(closes)} found, reasons {sorted(map(str, reasons))}")
    bad = reasons - CLOSE_REASONS
    require("batch-close reasons recognizable", len(closes) > 0 and
            not bad, f"unknown: {sorted(map(str, bad)) or 'none'}")

    n = count("batch_compute", "X")
    require("batch-compute spans", n > 0, f"{n} found")

    if not args.no_shed:
        n = count("shed", "i")
        require("shed instants", n > 0, f"{n} found")

    begins = {e.get("id") for e in events
              if e["name"] == "request" and e["ph"] == "b"}
    ends = {e.get("id") for e in events
            if e["name"] == "request" and e["ph"] == "e"}
    require("request async begin/end",
            len(begins) > 0 and len(ends) > 0,
            f"{len(begins)} begins, {len(ends)} ends")
    paired = begins & ends - {None}
    require("request ids paired", len(paired) > 0,
            f"{len(paired)} ids seen on both sides")

    # --- engine phases -----------------------------------------------
    for phase in ("encode", "inner_product", "activation", "output"):
        n = count(phase, "X")
        require(f"{phase} spans", n > 0, f"{n} found")

    segs = {e.get("args", {}).get("seg") for e in events
            if e["name"] == "inner_product" and e["ph"] == "X"}
    segs.discard(None)
    require("inner_product segment diversity",
            len(segs) >= args.min_seg_values,
            f"{len(segs)} distinct seg offsets "
            f"(need >= {args.min_seg_values})")

    if not ok:
        sys.exit(1)
    print(f"trace_check: {args.trace}: {len(events)} events, all "
          "checks passed")


if __name__ == "__main__":
    main()
