#!/usr/bin/env python3
"""Guard the benchmark trajectory.

Throughput: compare a freshly generated BENCH_throughput.json against
the committed one and fail on a single-image fused-latency regression
beyond the allowed ratio. The weight-stationary batch path carries an
absolute gate on top of the trend checks: the LeNet-5 micro-batch must
sustain at least --min-batch-ratio x (default 1.5x) the single-image
images/sec on one thread. The binary XNOR-popcount backend carries its
own absolute gate: it must sustain at least --min-binary-ratio x
(default 5x) the fused-SC single-image images/sec, with per-topology
binary/fused ratios trend-checked against committed history; the
SC-vs-BNN trained mini-LeNet accuracy delta is reported informationally.

Serving: check BENCH_serving.json's gate block — the dynamic
micro-batching server must sustain strictly higher images/sec than the
per-request (batch=1) baseline at the same offered load — and compare
throughput/p99 against the committed record. The overload_gate block
carries absolute robustness gates: goodput at 2.5x offered capacity
must hold >= --min-goodput-ratio (default 0.8) of the 1.0x goodput,
the rejected/shed/expedited counters must be non-zero (admission
control, load shedding and deadline expediting all actually engaged),
queue depth must stay within the configured per-class cap, and p99
must stay within 3x the scenario deadline.

Fleet: the fleet_gate block (three registered models, one poisoned
mid-run) carries absolute gates too: the healthy models must hold
>= --min-fleet-goodput (default 0.8) of their solo goodput, the
poisoned model must be quarantined by its circuit breaker and recover
via half-open probes, and every bit-exactness sentinel must match the
reference engine (zero cross-model result corruption). --fleet makes
the block mandatory; without it, old JSONs skip with a note.

The committed JSONs are the perf record of the last merged PR; the
bench box carries roughly +/-10% run-to-run noise, so the default gate
only trips on a >25% slowdown. Machines differ — when the fresh run
comes from different hardware than the committed record (the JSON
carries compiler/SIMD/concurrency fields), the comparison is still a
smoke check: a kernel-level regression shows up on every host.

Usage:
  tools/bench_check.py --fresh build/BENCH_throughput.json \
      [--committed BENCH_throughput.json] \
      [--serving-fresh build/BENCH_serving.json] \
      [--serving-committed BENCH_serving.json] [--max-regress 0.25]

At least one of --fresh / --serving-fresh is required.

Exit status: 0 when within bounds (or no committed baseline exists),
1 on regression, 2 on malformed input.
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def field(doc, path_keys, path):
    node = doc
    try:
        for key in path_keys:
            node = node[key]
        return float(node)
    except (KeyError, TypeError, ValueError):
        dotted = ".".join(path_keys)
        sys.stderr.write(f"bench_check: no {dotted} in {path}\n")
        sys.exit(2)


def check_topologies(fresh_doc, committed_doc, args):
    """Per-topology fused-latency trend: gate entries that have a
    committed history, tolerate (and announce) brand-new topologies so
    a PR can introduce a scenario network without a baseline."""
    fresh_topos = fresh_doc.get("topologies", {})
    committed_topos = committed_doc.get("topologies", {})
    if not isinstance(fresh_topos, dict):
        sys.stderr.write("bench_check: malformed topologies block\n")
        sys.exit(2)

    ok = True
    limit = 1.0 + args.max_regress
    for name in sorted(committed_topos):
        if name not in fresh_topos:
            print(f"bench_check: topology {name} has committed history "
                  "but is missing from the fresh run: REGRESSION")
            ok = False
    for name in sorted(fresh_topos):
        try:
            fresh_ms = float(fresh_topos[name]["fused_ms"])
        except (KeyError, TypeError, ValueError):
            sys.stderr.write(
                f"bench_check: topology {name} has no fused_ms\n")
            sys.exit(2)
        prev = committed_topos.get(name)
        if not isinstance(prev, dict) or "fused_ms" not in prev:
            print(f"bench_check: topology {name}: {fresh_ms:.1f} ms "
                  "(new entry, no committed history — skipping gate)")
            continue
        prev_ms = float(prev["fused_ms"])
        if prev_ms <= 0:
            continue
        ratio = fresh_ms / prev_ms
        entry_ok = ratio <= limit
        print(f"bench_check: topology {name}: {prev_ms:.1f} ms -> "
              f"{fresh_ms:.1f} ms ({ratio:.2f}x, limit {limit:.2f}x): "
              f"{'OK' if entry_ok else 'REGRESSION'}")
        ok = ok and entry_ok
    return ok


def check_batch(fresh_doc, committed_doc, args):
    """Weight-stationary batch-path gate. Absolute: the LeNet-5
    micro-batch must sustain at least --min-batch-ratio x the
    single-image ips on one thread (the kernel-level reuse win, not a
    thread-scaling artifact). Trend: per-topology batch ratios are
    compared against committed history when it exists; entries with no
    history yet (first run after the bench gained the metric) are
    announced and tolerated."""
    batch = fresh_doc.get("batch", {})
    ratio = batch.get("batch_ips_per_single_ips")
    if ratio is None:
        print("bench_check: fresh run carries no batch_ips_per_single_ips "
              "(bench predates the batch kernels); skipping batch gate")
        return True
    ratio = float(ratio)
    ok = ratio >= args.min_batch_ratio
    print(f"bench_check: lenet5 batch path {ratio:.2f}x single-image "
          f"ips (floor {args.min_batch_ratio:.2f}x): "
          f"{'OK' if ok else 'REGRESSION'}")

    fresh_topos = fresh_doc.get("topologies", {})
    committed_topos = committed_doc.get("topologies", {})
    if not isinstance(committed_topos, dict):
        committed_topos = {}
    floor = 1.0 / (1.0 + args.max_regress)
    for name in sorted(fresh_topos):
        entry = fresh_topos[name]
        fresh_r = (entry.get("batch_ips_per_single_ips")
                   if isinstance(entry, dict) else None)
        if fresh_r is None:
            continue
        fresh_r = float(fresh_r)
        prev = committed_topos.get(name)
        prev_r = (prev.get("batch_ips_per_single_ips")
                  if isinstance(prev, dict) else None)
        if prev_r is None:
            print(f"bench_check: topology {name} batch ratio "
                  f"{fresh_r:.2f}x (no committed history — skipping "
                  "gate)")
            continue
        prev_r = float(prev_r)
        if prev_r <= 0:
            continue
        rel = fresh_r / prev_r
        entry_ok = rel >= floor
        print(f"bench_check: topology {name} batch ratio {prev_r:.2f}x "
              f"-> {fresh_r:.2f}x ({rel:.2f}x, floor {floor:.2f}x): "
              f"{'OK' if entry_ok else 'REGRESSION'}")
        ok = ok and entry_ok
    return ok


def check_binary(fresh_doc, committed_doc, args):
    """Binary-backend gate. Absolute: the XNOR-popcount backend must
    sustain at least --min-binary-ratio x (default 5x) the fused-SC
    single-image images/sec — the whole point of the L=1 sibling is a
    large constant-factor win, so a speedup that collapses toward 1x
    means the packed path quietly fell off a cliff. Trend:
    per-topology binary/fused ratios are compared against committed
    history when it exists; committed JSONs that predate the binary
    backend skip with a note, matching the batch-gate idiom."""
    block = fresh_doc.get("single_image", {}).get("binary")
    if not isinstance(block, dict):
        print("bench_check: fresh run carries no single_image.binary "
              "block (bench predates the binary backend); skipping "
              "binary gate")
        return True
    try:
        speedup = float(block["speedup_vs_fused"])
    except (KeyError, TypeError, ValueError):
        sys.stderr.write(
            "bench_check: no single_image.binary.speedup_vs_fused\n")
        sys.exit(2)
    ok = speedup >= args.min_binary_ratio
    print(f"bench_check: lenet5 binary backend {speedup:.1f}x fused-SC "
          f"ips (floor {args.min_binary_ratio:.2f}x): "
          f"{'OK' if ok else 'REGRESSION'}")

    acc = fresh_doc.get("single_image", {}).get("accuracy_trained")
    if isinstance(acc, dict):
        print(f"bench_check: trained mini-LeNet accuracy SC "
              f"{float(acc.get('sc', 0)):.3f} vs binary "
              f"{float(acc.get('binary', 0)):.3f} "
              f"(delta {float(acc.get('sc_minus_binary', 0)):+.3f}, "
              "informational)")

    fresh_topos = fresh_doc.get("topologies", {})
    committed_topos = committed_doc.get("topologies", {})
    if not isinstance(committed_topos, dict):
        committed_topos = {}
    floor = 1.0 / (1.0 + args.max_regress)
    for name in sorted(fresh_topos):
        entry = fresh_topos[name]
        fresh_r = (entry.get("binary_ips_per_fused_ips")
                   if isinstance(entry, dict) else None)
        if fresh_r is None:
            continue
        fresh_r = float(fresh_r)
        prev = committed_topos.get(name)
        prev_r = (prev.get("binary_ips_per_fused_ips")
                  if isinstance(prev, dict) else None)
        if prev_r is None:
            print(f"bench_check: topology {name} binary ratio "
                  f"{fresh_r:.1f}x (no committed history — skipping "
                  "gate)")
            continue
        prev_r = float(prev_r)
        if prev_r <= 0:
            continue
        rel = fresh_r / prev_r
        entry_ok = rel >= floor
        print(f"bench_check: topology {name} binary ratio {prev_r:.1f}x "
              f"-> {fresh_r:.1f}x ({rel:.2f}x, floor {floor:.2f}x): "
              f"{'OK' if entry_ok else 'REGRESSION'}")
        ok = ok and entry_ok
    return ok


def check_trace_overhead(doc, args):
    """Armed-tracing overhead gate, absolute (no committed history
    needed): the bench alternates disarmed and armed fused predicts
    and reports best-of-reps on each side; the armed side must stay
    within --max-trace-overhead (default 3%) of the disarmed one, so
    arming the tracer never quietly becomes a tax on the serving
    path."""
    block = doc.get("trace_overhead")
    if not isinstance(block, dict):
        print("bench_check: fresh run carries no trace_overhead block "
              "(bench predates the tracing subsystem); skipping")
        return True
    try:
        frac = float(block["overhead_frac"])
    except (KeyError, TypeError, ValueError):
        sys.stderr.write(
            "bench_check: no trace_overhead.overhead_frac\n")
        sys.exit(2)
    ok = frac <= args.max_trace_overhead
    print(f"bench_check: armed-tracing overhead {100.0 * frac:+.2f}% "
          f"(limit {100.0 * args.max_trace_overhead:.2f}%): "
          f"{'OK' if ok else 'REGRESSION'}")
    return ok


def check_throughput(args):
    """Fused single-image latency vs the committed record."""
    if not os.path.exists(args.fresh):
        sys.stderr.write(f"bench_check: fresh JSON {args.fresh} missing\n")
        sys.exit(2)
    fresh_doc = load(args.fresh)
    if not os.path.exists(args.committed):
        print(f"bench_check: no committed baseline at {args.committed}; "
              "nothing to compare")
        # The batch/binary/tracing gates are absolute, so they hold
        # even with no history.
        ok = check_batch(fresh_doc, {}, args)
        ok = check_binary(fresh_doc, {}, args) and ok
        return check_trace_overhead(fresh_doc, args) and ok

    committed_doc = load(args.committed)
    fresh = field(fresh_doc, ("single_image", "fused_ms"), args.fresh)
    committed = field(committed_doc, ("single_image", "fused_ms"),
                      args.committed)
    if committed <= 0:
        sys.stderr.write("bench_check: committed fused_ms is not positive\n")
        sys.exit(2)

    ratio = fresh / committed
    limit = 1.0 + args.max_regress
    ok = ratio <= limit
    verdict = "OK" if ok else "REGRESSION"
    print(f"bench_check: fused single-image {committed:.1f} ms -> "
          f"{fresh:.1f} ms ({ratio:.2f}x, limit {limit:.2f}x): {verdict}")
    ok = check_topologies(fresh_doc, committed_doc, args) and ok
    ok = check_batch(fresh_doc, committed_doc, args) and ok
    ok = check_binary(fresh_doc, committed_doc, args) and ok
    return check_trace_overhead(fresh_doc, args) and ok


def check_overload(doc, args):
    """Overload-robustness gate, absolute (no committed history
    needed): at 2.5x offered capacity the hardened server must hold at
    least --min-goodput-ratio of its 1.0x goodput, the overload
    scenario must actually have exercised admission control
    (rejected > 0), load shedding (shed > 0) and deadline expediting
    (expedited > 0), the queue depth must stay bounded by the
    configured per-class cap, and completed-request p99 must stay
    within 3x the scenario deadline."""
    gate = doc.get("overload_gate")
    if not isinstance(gate, dict):
        print("bench_check: fresh run carries no overload_gate block "
              "(bench predates overload hardening); skipping")
        return True

    def g(key):
        try:
            return float(gate[key])
        except (KeyError, TypeError, ValueError):
            sys.stderr.write(f"bench_check: no overload_gate.{key}\n")
            sys.exit(2)

    ratio = g("goodput_ratio")
    ok = ratio >= args.min_goodput_ratio
    print(f"bench_check: overload goodput {g('goodput_1x_ips'):.1f} ips "
          f"@1.0x -> {g('goodput_2p5x_ips'):.1f} ips @2.5x "
          f"({ratio:.2f}x, floor {args.min_goodput_ratio:.2f}x): "
          f"{'OK' if ok else 'REGRESSION'}")

    for counter in ("rejected", "shed", "expedited"):
        n = g(counter)
        c_ok = n > 0
        print(f"bench_check: overload {counter} count {n:.0f} "
              f"(must be >0): {'OK' if c_ok else 'REGRESSION'}")
        ok = ok and c_ok

    cap = g("queue_cap_per_class")
    depth = g("max_queue_depth")
    # Three accuracy classes, each bounded by the per-class cap.
    depth_ok = depth <= 3 * cap
    print(f"bench_check: overload max queue depth {depth:.0f} "
          f"(bound {3 * cap:.0f}): {'OK' if depth_ok else 'REGRESSION'}")
    ok = ok and depth_ok

    deadline = g("deadline_ms")
    p99 = g("overload_p99_ms")
    p99_ok = p99 <= 3.0 * deadline
    print(f"bench_check: overload p99 {p99:.1f} ms (limit "
          f"{3.0 * deadline:.1f} ms = 3x deadline): "
          f"{'OK' if p99_ok else 'REGRESSION'}")
    return ok and p99_ok


def check_fleet(doc, args):
    """Model-fleet isolation gate, absolute (no committed history
    needed): with one of three registered models poisoned mid-run, the
    healthy models must hold at least --min-fleet-goodput of their solo
    goodput, the poisoned model must actually have been quarantined
    (breaker tripped) and must have recovered through half-open probes
    once the fault cleared, and every bit-exactness sentinel answered
    during the chaos must match the reference engine exactly (zero
    cross-model result corruption). Skipped with a note when the JSON
    predates the fleet scenario, unless --fleet demands it."""
    gate = doc.get("fleet_gate")
    if not isinstance(gate, dict):
        if args.fleet:
            print("bench_check: --fleet demanded but the fresh run "
                  "carries no fleet_gate block: REGRESSION")
            return False
        print("bench_check: fresh run carries no fleet_gate block "
              "(bench predates the model fleet); skipping")
        return True

    def g(key):
        try:
            return float(gate[key])
        except (KeyError, TypeError, ValueError):
            sys.stderr.write(f"bench_check: no fleet_gate.{key}\n")
            sys.exit(2)

    ratio = g("healthy_goodput_ratio")
    ok = ratio >= args.min_fleet_goodput
    print(f"bench_check: fleet healthy goodput ratio {ratio:.2f} "
          f"(floor {args.min_fleet_goodput:.2f}, poisoned model "
          f"{gate.get('poisoned_id', '?')}): "
          f"{'OK' if ok else 'REGRESSION'}")

    quarantined = g("poisoned_quarantined") > 0 and g("poisoned_trips") > 0
    print(f"bench_check: fleet poisoned model quarantined "
          f"(trips {g('poisoned_trips'):.0f}): "
          f"{'OK' if quarantined else 'REGRESSION'}")
    ok = ok and quarantined

    recovered = g("poisoned_recovered") > 0
    print(f"bench_check: fleet poisoned model recovered via half-open "
          f"probe (final state {gate.get('poisoned_final_state', '?')}): "
          f"{'OK' if recovered else 'REGRESSION'}")
    ok = ok and recovered

    checked = g("sentinel_checked")
    mismatches = g("sentinel_mismatches")
    exact = checked > 0 and mismatches == 0
    print(f"bench_check: fleet bit-exactness sentinels "
          f"{checked - mismatches:.0f}/{checked:.0f} exact "
          f"(must be all, >0): {'OK' if exact else 'REGRESSION'}")
    ok = ok and exact

    if "flight_dumps" in gate:
        dumps = g("flight_dumps")
        d_ok = dumps > 0
        print(f"bench_check: fleet flight-recorder dumps {dumps:.0f} "
              f"(must be >0 — a breaker trip must leave a postmortem): "
              f"{'OK' if d_ok else 'REGRESSION'}")
        ok = ok and d_ok
    else:
        print("bench_check: fleet_gate carries no flight_dumps count "
              "(bench predates the flight recorder); skipping")
    return ok


def check_serving(args):
    """Micro-batching must beat per-request serving at the same offered
    load, and must not regress against the committed record."""
    if not os.path.exists(args.serving_fresh):
        sys.stderr.write(
            f"bench_check: fresh JSON {args.serving_fresh} missing\n")
        sys.exit(2)
    doc = load(args.serving_fresh)
    per_request = field(doc, ("gate", "per_request_ips"),
                        args.serving_fresh)
    micro = field(doc, ("gate", "microbatch_ips"), args.serving_fresh)
    p99 = field(doc, ("gate", "microbatch_p99_ms"), args.serving_fresh)

    ok = micro > per_request
    verdict = "OK" if ok else "REGRESSION"
    print(f"bench_check: serving at same offered load: per-request "
          f"{per_request:.1f} ips vs micro-batching {micro:.1f} ips "
          f"({micro / per_request if per_request > 0 else 0:.2f}x, "
          f"must be >1): {verdict}")
    ok = check_overload(doc, args) and ok
    ok = check_fleet(doc, args) and ok

    if not os.path.exists(args.serving_committed):
        print(f"bench_check: no committed serving baseline at "
              f"{args.serving_committed}; skipping trend check")
        return ok

    prev = load(args.serving_committed)
    prev_micro = field(prev, ("gate", "microbatch_ips"),
                       args.serving_committed)
    prev_p99 = field(prev, ("gate", "microbatch_p99_ms"),
                     args.serving_committed)

    if prev_micro > 0:
        ratio = micro / prev_micro
        # Multiplicative floor: 1-max_regress would saturate at zero
        # for the generous cross-host bound (--max-regress 1.0) and
        # make the gate vacuous; 1/(1+max_regress) mirrors the latency
        # limit and stays meaningful (0.8x at 0.25, 0.5x at 1.0).
        floor = 1.0 / (1.0 + args.max_regress)
        tp_ok = ratio >= floor
        print(f"bench_check: serving throughput {prev_micro:.1f} -> "
              f"{micro:.1f} ips ({ratio:.2f}x, floor {floor:.2f}x): "
              f"{'OK' if tp_ok else 'REGRESSION'}")
        ok = ok and tp_ok
    if prev_p99 > 0:
        ratio = p99 / prev_p99
        limit = 1.0 + args.max_regress
        p99_ok = ratio <= limit
        print(f"bench_check: serving p99 {prev_p99:.1f} -> {p99:.1f} ms "
              f"({ratio:.2f}x, limit {limit:.2f}x): "
              f"{'OK' if p99_ok else 'REGRESSION'}")
        ok = ok and p99_ok
    return ok


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fresh",
                    help="throughput JSON written by the bench run under "
                         "test")
    ap.add_argument("--committed", default="BENCH_throughput.json",
                    help="throughput baseline committed to the repository")
    ap.add_argument("--serving-fresh",
                    help="serving JSON written by bench_serving")
    ap.add_argument("--serving-committed", default="BENCH_serving.json",
                    help="serving baseline committed to the repository")
    ap.add_argument("--max-regress", type=float,
                    default=float(os.environ.get("SCDCNN_BENCH_CHECK_MAX",
                                                 "0.25")),
                    help="allowed fractional slowdown (default 0.25)")
    ap.add_argument("--min-batch-ratio", type=float,
                    default=float(os.environ.get(
                        "SCDCNN_BENCH_BATCH_MIN", "1.5")),
                    help="required lenet5 batch-vs-single ips ratio "
                         "(default 1.5)")
    ap.add_argument("--min-binary-ratio", type=float,
                    default=float(os.environ.get(
                        "SCDCNN_BENCH_BINARY_MIN", "5.0")),
                    help="required lenet5 binary-vs-fused ips ratio "
                         "(default 5.0)")
    ap.add_argument("--max-trace-overhead", type=float,
                    default=float(os.environ.get(
                        "SCDCNN_BENCH_TRACE_MAX", "0.03")),
                    help="allowed armed-vs-disarmed tracing overhead "
                         "fraction (default 0.03)")
    ap.add_argument("--min-goodput-ratio", type=float,
                    default=float(os.environ.get(
                        "SCDCNN_BENCH_GOODPUT_MIN", "0.8")),
                    help="required 2.5x-vs-1.0x overload goodput ratio "
                         "(default 0.8)")
    ap.add_argument("--fleet", action="store_true",
                    help="require the fleet_gate block to be present "
                         "(default: skip with a note when absent)")
    ap.add_argument("--min-fleet-goodput", type=float,
                    default=float(os.environ.get(
                        "SCDCNN_BENCH_FLEET_GOODPUT_MIN", "0.8")),
                    help="required healthy-model mixed-vs-solo goodput "
                         "ratio in the fleet scenario (default 0.8)")
    args = ap.parse_args()

    if args.fresh is None and args.serving_fresh is None:
        sys.stderr.write(
            "bench_check: need --fresh and/or --serving-fresh\n")
        sys.exit(2)

    ok = True
    if args.fresh is not None:
        ok = check_throughput(args) and ok
    if args.serving_fresh is not None:
        ok = check_serving(args) and ok
    if not ok:
        sys.exit(1)


if __name__ == "__main__":
    main()
