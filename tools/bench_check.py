#!/usr/bin/env python3
"""Guard the benchmark trajectory: compare a freshly generated
BENCH_throughput.json against the committed one and fail on a
single-image fused-latency regression beyond the allowed ratio.

The committed JSON is the perf record of the last merged PR; the bench
box carries roughly +/-10% run-to-run noise, so the default gate only
trips on a >25% slowdown. Machines differ — when the fresh run comes
from different hardware than the committed record (the JSON carries
compiler/SIMD/concurrency fields), the comparison is still a smoke
check: a kernel-level regression shows up on every host.

Usage:
  tools/bench_check.py --fresh build/BENCH_throughput.json \
      [--committed BENCH_throughput.json] [--max-regress 0.25]

Exit status: 0 when within bounds (or no committed baseline exists),
1 on regression, 2 on malformed input.
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def fused_ms(doc, path):
    try:
        return float(doc["single_image"]["fused_ms"])
    except (KeyError, TypeError, ValueError):
        sys.stderr.write(f"bench_check: no single_image.fused_ms in {path}\n")
        sys.exit(2)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fresh", required=True,
                    help="JSON written by the bench run under test")
    ap.add_argument("--committed", default="BENCH_throughput.json",
                    help="baseline JSON committed to the repository")
    ap.add_argument("--max-regress", type=float,
                    default=float(os.environ.get("SCDCNN_BENCH_CHECK_MAX",
                                                 "0.25")),
                    help="allowed fractional slowdown (default 0.25)")
    args = ap.parse_args()

    if not os.path.exists(args.fresh):
        sys.stderr.write(f"bench_check: fresh JSON {args.fresh} missing\n")
        sys.exit(2)
    if not os.path.exists(args.committed):
        print(f"bench_check: no committed baseline at {args.committed}; "
              "nothing to compare")
        return

    fresh = fused_ms(load(args.fresh), args.fresh)
    committed = fused_ms(load(args.committed), args.committed)
    if committed <= 0:
        sys.stderr.write("bench_check: committed fused_ms is not positive\n")
        sys.exit(2)

    ratio = fresh / committed
    limit = 1.0 + args.max_regress
    verdict = "OK" if ratio <= limit else "REGRESSION"
    print(f"bench_check: fused single-image {committed:.1f} ms -> "
          f"{fresh:.1f} ms ({ratio:.2f}x, limit {limit:.2f}x): {verdict}")
    if ratio > limit:
        sys.exit(1)


if __name__ == "__main__":
    main()
