#include "sc/fsm_batch.h"

#include <algorithm>

#include "common/logging.h"
#include "sc/simd.h"

namespace scdcnn {
namespace sc {

StanhBatchTable::StanhBatchTable(unsigned k, int threshold) : k_(k)
{
    if (k_ < 2)
        fatal("StanhBatchTable needs at least 2 states, got %u", k_);
    threshold_ =
        threshold < 0 ? k_ / 2 : static_cast<unsigned>(threshold);
    SCDCNN_ASSERT(threshold_ < k_, "Stanh threshold %u >= K %u",
                  threshold_, k_);
    initial_state_ = k_ / 2;

    // Tabulate 8 scalar Stanh steps per (state, input byte), LSB-first
    // (cycle order within a byte follows the packed-word layout).
    table_.resize(static_cast<size_t>(k_) * 256);
    for (unsigned s = 0; s < k_; ++s) {
        for (unsigned byte = 0; byte < 256; ++byte) {
            unsigned state = s;
            uint8_t out = 0;
            for (int j = 0; j < 8; ++j) {
                if ((byte >> j) & 1) {
                    if (state + 1 < k_)
                        ++state;
                } else if (state > 0) {
                    --state;
                }
                if (state >= threshold_)
                    out |= static_cast<uint8_t>(1u << j);
            }
            table_[(static_cast<size_t>(s) << 8) | byte] = {
                static_cast<uint16_t>(state), out};
        }
    }
}

void
StanhBatchTable::transformWords(const uint64_t *in, size_t length,
                                uint64_t *out) const
{
    uint16_t state = initialState();
    transformWords(in, length, out, &state);
}

void
StanhBatchTable::transformWords(const uint64_t *in, size_t length,
                                uint64_t *out, uint16_t *state_io) const
{
    const size_t n_words = (length + 63) / 64;
    unsigned state = *state_io;
    for (size_t w = 0; w < n_words; ++w) {
        const uint64_t in_w = in[w];
        uint64_t out_w = 0;
        for (int b = 0; b < 8; ++b) {
            const size_t idx = (static_cast<size_t>(state) << 8) |
                               ((in_w >> (8 * b)) & 0xFF);
            const Entry &e = table_[idx];
            out_w |= static_cast<uint64_t>(e.out) << (8 * b);
            state = e.next;
        }
        out[w] = out_w;
    }
    // The pad cycles past length consumed zero input bits (the stream
    // invariant); their output bits are masked away here.
    const size_t tail = length % 64;
    if (tail != 0 && n_words != 0)
        out[n_words - 1] &= (uint64_t{1} << tail) - 1;
    *state_io = static_cast<uint16_t>(state);
}

namespace {

/** Streams interleaved per tile in the batch transforms: big enough to
 *  cover the serial table-walk latency with independent chains, small
 *  enough that the tile's local state and word buffers stay in
 *  registers / L1. */
constexpr size_t kFsmBatchTile = 16;

} // namespace

void
StanhBatchTable::transformWordsBatch(const uint64_t *const *ins,
                                     size_t length, uint64_t *const *outs,
                                     uint16_t *const *states,
                                     size_t n_streams) const
{
    const size_t n_words = (length + 63) / 64;
    const size_t tail = length % 64;
    for (size_t s0 = 0; s0 < n_streams; s0 += kFsmBatchTile) {
        const size_t tile = std::min(kFsmBatchTile, n_streams - s0);
        unsigned st[kFsmBatchTile];
        for (size_t s = 0; s < tile; ++s)
            st[s] = *states[s0 + s];
        for (size_t w = 0; w < n_words; ++w) {
            uint64_t in_w[kFsmBatchTile];
            uint64_t out_w[kFsmBatchTile] = {};
            for (size_t s = 0; s < tile; ++s)
                in_w[s] = ins[s0 + s][w];
            // Byte outer, stream inner: the tile's serial chains are
            // independent, so the table lookups overlap.
            for (int b = 0; b < 8; ++b) {
                for (size_t s = 0; s < tile; ++s) {
                    const size_t idx =
                        (static_cast<size_t>(st[s]) << 8) |
                        ((in_w[s] >> (8 * b)) & 0xFF);
                    const Entry &e = table_[idx];
                    out_w[s] |= static_cast<uint64_t>(e.out) << (8 * b);
                    st[s] = e.next;
                }
            }
            for (size_t s = 0; s < tile; ++s)
                outs[s0 + s][w] = out_w[s];
        }
        if (tail != 0 && n_words != 0) {
            const uint64_t mask = (uint64_t{1} << tail) - 1;
            for (size_t s = 0; s < tile; ++s)
                outs[s0 + s][n_words - 1] &= mask;
        }
        for (size_t s = 0; s < tile; ++s)
            *states[s0 + s] = static_cast<uint16_t>(st[s]);
    }
}

void
StanhBatchTable::transform(BitstreamView in, Bitstream &out) const
{
    out.reset(in.length);
    if (in.length != 0)
        transformWords(in.words, in.length, out.mutableWords().data());
}

BtanhBatchTable::BtanhBatchTable(unsigned k, unsigned n_inputs)
    : k_(k), n_inputs_(n_inputs)
{
    if (k_ < 2)
        fatal("BtanhBatchTable needs at least 2 states, got %u", k_);

    // One saturating step per (state, bucketed delta).
    table_.resize(static_cast<size_t>(k_) * 256);
    for (unsigned s = 0; s < k_; ++s) {
        for (int code = 0; code < 256; ++code) {
            const int delta = code - kDeltaOffset;
            int state = static_cast<int>(s) + delta;
            state = std::clamp(state, 0, static_cast<int>(k_) - 1);
            const bool bit = state >= static_cast<int>(k_ / 2);
            table_[(static_cast<size_t>(s) << 8) |
                   static_cast<size_t>(code)] = {
                static_cast<uint16_t>(state),
                static_cast<uint8_t>(bit ? 1 : 0)};
        }
    }
}

unsigned
BtanhBatchTable::stepState(unsigned state, int delta, bool &out_bit) const
{
    const int code = delta + kDeltaOffset;
    if (code >= 0 && code < 256) {
        const Entry &e =
            table_[(static_cast<size_t>(state) << 8) |
                   static_cast<size_t>(code)];
        out_bit = e.out != 0;
        return e.next;
    }
    // Out-of-table delta: the scalar saturating step.
    int s = static_cast<int>(state) + delta;
    s = std::clamp(s, 0, static_cast<int>(k_) - 1);
    out_bit = s >= static_cast<int>(k_ / 2);
    return static_cast<unsigned>(s);
}

void
BtanhBatchTable::transformWords(const uint16_t *counts, size_t length,
                                uint64_t *out) const
{
    uint16_t state = initialState();
    transformWords(counts, length, out, &state);
}

void
BtanhBatchTable::transformWords(const uint16_t *counts, size_t length,
                                uint64_t *out, uint16_t *state_io) const
{
    const size_t n_words = (length + 63) / 64;
    const int n = static_cast<int>(n_inputs_);
    unsigned state = *state_io;
    for (size_t w = 0; w < n_words; ++w) {
        const size_t base = w * 64;
        const size_t limit = std::min<size_t>(64, length - base);
        uint64_t out_w = 0;
        for (size_t b = 0; b < limit; ++b) {
            const int delta = 2 * static_cast<int>(counts[base + b]) - n;
            bool bit;
            state = stepState(state, delta, bit);
            out_w |= static_cast<uint64_t>(bit) << b;
        }
        out[w] = out_w;
    }
    *state_io = static_cast<uint16_t>(state);
}

void
BtanhBatchTable::transformSignedWords(const int *steps, size_t length,
                                      uint64_t *out) const
{
    uint16_t state = initialState();
    transformSignedWords(steps, length, out, &state);
}

void
BtanhBatchTable::transformSignedWords(const int *steps, size_t length,
                                      uint64_t *out, uint16_t *state_io) const
{
    const size_t n_words = (length + 63) / 64;
    unsigned state = *state_io;
    for (size_t w = 0; w < n_words; ++w) {
        const size_t base = w * 64;
        const size_t limit = std::min<size_t>(64, length - base);
        uint64_t out_w = 0;
        for (size_t b = 0; b < limit; ++b) {
            bool bit;
            state = stepState(state, steps[base + b], bit);
            out_w |= static_cast<uint64_t>(bit) << b;
        }
        out[w] = out_w;
    }
    *state_io = static_cast<uint16_t>(state);
}

void
BtanhBatchTable::transformWordsBatch(const uint16_t *const *counts,
                                     size_t length, uint64_t *const *outs,
                                     uint16_t *const *states,
                                     size_t n_streams) const
{
    const size_t n_words = (length + 63) / 64;
    // Lane-parallel whole words first: the saturating counter is pure
    // add/clamp/compare arithmetic, so all streams step together as
    // int16 lanes. The walk below finishes whatever the vector path
    // left — everything when it is unavailable, else just the partial
    // tail word — from the carried states.
    const size_t w0 = simd::avx2BtanhWordsBatch(counts, length, outs,
                                                states, n_streams, k_,
                                                n_inputs_);
    if (w0 >= n_words)
        return;
    const int n = static_cast<int>(n_inputs_);
    for (size_t s0 = 0; s0 < n_streams; s0 += kFsmBatchTile) {
        const size_t tile = std::min(kFsmBatchTile, n_streams - s0);
        unsigned st[kFsmBatchTile];
        for (size_t s = 0; s < tile; ++s)
            st[s] = *states[s0 + s];
        for (size_t w = w0; w < n_words; ++w) {
            const size_t base = w * 64;
            const size_t limit = std::min<size_t>(64, length - base);
            uint64_t out_w[kFsmBatchTile] = {};
            for (size_t b = 0; b < limit; ++b) {
                for (size_t s = 0; s < tile; ++s) {
                    const int delta =
                        2 * static_cast<int>(counts[s0 + s][base + b]) -
                        n;
                    bool bit;
                    st[s] = stepState(st[s], delta, bit);
                    out_w[s] |= static_cast<uint64_t>(bit) << b;
                }
            }
            for (size_t s = 0; s < tile; ++s)
                outs[s0 + s][w] = out_w[s];
        }
        for (size_t s = 0; s < tile; ++s)
            *states[s0 + s] = static_cast<uint16_t>(st[s]);
    }
}

void
BtanhBatchTable::transformSignedWordsBatch(const int *const *steps,
                                           size_t length,
                                           uint64_t *const *outs,
                                           uint16_t *const *states,
                                           size_t n_streams) const
{
    const size_t n_words = (length + 63) / 64;
    for (size_t s0 = 0; s0 < n_streams; s0 += kFsmBatchTile) {
        const size_t tile = std::min(kFsmBatchTile, n_streams - s0);
        unsigned st[kFsmBatchTile];
        for (size_t s = 0; s < tile; ++s)
            st[s] = *states[s0 + s];
        for (size_t w = 0; w < n_words; ++w) {
            const size_t base = w * 64;
            const size_t limit = std::min<size_t>(64, length - base);
            uint64_t out_w[kFsmBatchTile] = {};
            for (size_t b = 0; b < limit; ++b) {
                for (size_t s = 0; s < tile; ++s) {
                    bool bit;
                    st[s] = stepState(st[s], steps[s0 + s][base + b], bit);
                    out_w[s] |= static_cast<uint64_t>(bit) << b;
                }
            }
            for (size_t s = 0; s < tile; ++s)
                outs[s0 + s][w] = out_w[s];
        }
        for (size_t s = 0; s < tile; ++s)
            *states[s0 + s] = static_cast<uint16_t>(st[s]);
    }
}

void
BtanhBatchTable::transform(const std::vector<uint16_t> &counts,
                           Bitstream &out) const
{
    out.reset(counts.size());
    if (!counts.empty())
        transformWords(counts.data(), counts.size(),
                       out.mutableWords().data());
}

void
BtanhBatchTable::transformSigned(const std::vector<int> &steps,
                                 Bitstream &out) const
{
    out.reset(steps.size());
    if (!steps.empty())
        transformSignedWords(steps.data(), steps.size(),
                             out.mutableWords().data());
}

const StanhBatchTable &
FsmTableCache::stanh(unsigned k, int threshold)
{
    // Normalize the default so (k, -1) and (k, k/2) share one table.
    const int thr =
        threshold < 0 ? static_cast<int>(k / 2) : threshold;
    auto &slot = stanh_[{k, thr}];
    if (slot == nullptr)
        slot = std::make_unique<StanhBatchTable>(k, thr);
    return *slot;
}

const BtanhBatchTable &
FsmTableCache::btanh(unsigned k, unsigned n_inputs)
{
    auto &slot = btanh_[{k, n_inputs}];
    if (slot == nullptr)
        slot = std::make_unique<BtanhBatchTable>(k, n_inputs);
    return *slot;
}

} // namespace sc
} // namespace scdcnn
