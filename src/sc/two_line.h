/**
 * @file
 * Two-line stochastic number representation (Toral et al., Figure 5(d)).
 *
 * A number is carried by a magnitude stream M and a sign stream S (1 =
 * negative). The represented value is
 *
 *     x = (1/L) * sum_i (1 - 2*S_i) * M_i,
 *
 * i.e. each cycle contributes a ternary digit in {-1, 0, +1}. The
 * associated adder is non-scaling: it emits the digit-wise sum with a
 * three-state (-1/0/+1) carry counter. Because a stream cannot encode
 * magnitudes beyond [-1, 1], multi-operand sums overflow the carry and
 * saturate — exactly the limitation Section 4.1 identifies for the
 * two-line inner product block. The adder records how much weight was
 * dropped so experiments can report it.
 */

#ifndef SCDCNN_SC_TWO_LINE_H
#define SCDCNN_SC_TWO_LINE_H

#include <cstdint>
#include <vector>

#include "sc/bitstream.h"
#include "sc/rng.h"

namespace scdcnn {
namespace sc {

/**
 * Sign/magnitude stream pair.
 */
struct TwoLineStream
{
    Bitstream sign; //!< 1 = negative contribution
    Bitstream mag;  //!< 1 = a +/-1 digit this cycle, 0 = zero digit

    /** Ternary digit at cycle i, in {-1, 0, +1}. */
    int digit(size_t i) const;

    /** Represented value, in [-1, 1]. */
    double value() const;

    /** Stream length. */
    size_t length() const { return mag.length(); }
};

/** Encode x in [-1,1] (saturated): magnitude |x| unipolar, constant sign. */
TwoLineStream encodeTwoLine(double x, size_t length, Xoshiro256ss &rng);

/** Bipolar product of two two-line numbers: sign XOR, magnitude AND. */
TwoLineStream twoLineMultiply(const TwoLineStream &a, const TwoLineStream &b);

/**
 * The two-line serial adder.
 *
 * Holds the three-state carry counter; addition is streaming so the
 * carry threads through the whole stream, and saturation (overflow) is
 * accumulated in droppedWeight().
 */
class TwoLineAdder
{
  public:
    TwoLineAdder() = default;

    /** Digit-wise a + b with carry; result is a two-line stream. */
    TwoLineStream add(const TwoLineStream &a, const TwoLineStream &b);

    /** Total absolute weight lost to carry saturation so far. */
    uint64_t droppedWeight() const { return dropped_; }

  private:
    int carry_ = 0;
    uint64_t dropped_ = 0;
};

/**
 * Sum many two-line streams with a balanced tree of two-line adders,
 * as an inner-product block would. Returns the root stream; dropped
 * overflow weight across all adders is reported via @p dropped_out when
 * non-null.
 */
TwoLineStream twoLineAddTree(const std::vector<TwoLineStream> &inputs,
                             uint64_t *dropped_out = nullptr);

} // namespace sc
} // namespace scdcnn

#endif // SCDCNN_SC_TWO_LINE_H
