/**
 * @file
 * Table-driven batched steppers for the activation FSMs.
 *
 * The scalar Stanh/Btanh units walk one cycle at a time through a
 * state-dependent branch — the last bit-serial stage of the post-counter
 * pipeline. Both FSMs are tiny deterministic automata, so their
 * transition functions can be tabulated once and replayed at word
 * speed:
 *
 *  - StanhBatchTable maps (state, input byte) -> (next state, output
 *    byte), consuming 8 input cycles per lookup;
 *  - BtanhBatchTable maps (state, bucketed signed delta) -> (next
 *    state, output bit); deltas outside the bucket range fall back to
 *    the scalar saturating step, so the table stays one cache-friendly
 *    page while arbitrary counts remain exact.
 *
 * The scalar units (sc/stanh.h, sc/btanh.h) are the oracles: both
 * tables are bit-exact with a freshly constructed scalar unit's
 * transform() (randomized equivalence tests in tests/test_fsm_batch.cc).
 * Tables are built once per (K, threshold) / (K, n_inputs) — the
 * network caches them per layer through FsmTableCache so per-pixel
 * construction cost disappears.
 */

#ifndef SCDCNN_SC_FSM_BATCH_H
#define SCDCNN_SC_FSM_BATCH_H

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "sc/bitstream.h"

namespace scdcnn {
namespace sc {

/**
 * Batched K-state FSM tanh: (state, input byte) transition table.
 *
 * transform() starts from the midpoint state, matching a freshly
 * constructed Stanh — the per-pixel usage of the network engine.
 */
class StanhBatchTable
{
  public:
    /** @param k          number of FSM states (>= 2)
     *  @param threshold  first state index that outputs 1; -1 = k/2 */
    explicit StanhBatchTable(unsigned k, int threshold = -1);

    /** State count K. */
    unsigned k() const { return k_; }

    /** Output threshold state. */
    unsigned threshold() const { return threshold_; }

    /** Transform a whole stream (midpoint start), writing into @p out
     *  (reshaped in place). Bit-exact with a fresh Stanh::transform. */
    void transform(BitstreamView in, Bitstream &out) const;

    /** Low-level variant: read wordCount(length) words at @p in, write
     *  the same count at @p out (tail bits of the last word masked).
     *  @p in tail bits past @p length must be zero (the Bitstream /
     *  StreamArena invariant). */
    void transformWords(const uint64_t *in, size_t length,
                        uint64_t *out) const;

    /** Resumable variant for segment streaming: starts from *state and
     *  leaves the post-segment state there, so successive calls over a
     *  word-aligned partition of a stream (only the final segment may
     *  end off a word boundary) are bit-exact with one whole-stream
     *  transform. Initialize *state with initialState(). */
    void transformWords(const uint64_t *in, size_t length, uint64_t *out,
                        uint16_t *state) const;

    /** Interleaved multi-stream variant for the batch engine: advances
     *  @p n_streams independent transforms in lockstep (stream s reads
     *  ins[s], writes outs[s], carries states[s]), tiling streams so
     *  their serial table-walk chains overlap in the pipeline instead
     *  of running back to back. Bit-exact per stream with
     *  transformWords(ins[s], length, outs[s], states[s]). */
    void transformWordsBatch(const uint64_t *const *ins, size_t length,
                             uint64_t *const *outs,
                             uint16_t *const *states,
                             size_t n_streams) const;

    /** The midpoint start state of a fresh transform. */
    uint16_t initialState() const
    {
        return static_cast<uint16_t>(initial_state_);
    }

  private:
    /** Packed transition: next state + the 8 output bits. */
    struct Entry
    {
        uint16_t next;
        uint8_t out;
    };

    unsigned k_;
    unsigned threshold_;
    unsigned initial_state_;
    std::vector<Entry> table_; //!< indexed by (state << 8) | input byte
};

/**
 * Batched saturated up/down counter tanh for binary (APC) inputs:
 * (state, signed delta) transition table over the bucketed delta range
 * [-128, 127]; out-of-table deltas take the scalar saturating step.
 *
 * transform*() start from the midpoint state, matching a freshly
 * constructed Btanh.
 */
class BtanhBatchTable
{
  public:
    /** Bucketed delta range half-width: deltas in [-128, 127] are
     *  table-driven, anything larger falls back to the scalar step. */
    static constexpr int kDeltaOffset = 128;

    /** @param k        number of counter states (even, >= 2)
     *  @param n_inputs the APC input count n (count v steps 2v - n) */
    BtanhBatchTable(unsigned k, unsigned n_inputs);

    /** State count K. */
    unsigned k() const { return k_; }

    /** The APC input count the count->delta mapping uses. */
    unsigned nInputs() const { return n_inputs_; }

    /** Transform a count sequence (midpoint start), writing into
     *  @p out. Bit-exact with a fresh Btanh::transform. */
    void transform(const std::vector<uint16_t> &counts,
                   Bitstream &out) const;

    /** Transform pre-signed steps, cf. Btanh::transformSigned. */
    void transformSigned(const std::vector<int> &steps,
                         Bitstream &out) const;

    /** Low-level variants writing wordCount(length) words at @p out
     *  (tail bits masked). */
    void transformWords(const uint16_t *counts, size_t length,
                        uint64_t *out) const;
    void transformSignedWords(const int *steps, size_t length,
                              uint64_t *out) const;

    /** Resumable variants for segment streaming (see the Stanh
     *  counterpart): *state carries the counter across calls. */
    void transformWords(const uint16_t *counts, size_t length,
                        uint64_t *out, uint16_t *state) const;
    void transformSignedWords(const int *steps, size_t length,
                              uint64_t *out, uint16_t *state) const;

    /** Interleaved multi-stream variants for the batch engine (see the
     *  Stanh counterpart): bit-exact per stream with the single-stream
     *  resumable transforms over (counts[s] / steps[s], outs[s],
     *  states[s]). */
    void transformWordsBatch(const uint16_t *const *counts, size_t length,
                             uint64_t *const *outs,
                             uint16_t *const *states,
                             size_t n_streams) const;
    void transformSignedWordsBatch(const int *const *steps, size_t length,
                                   uint64_t *const *outs,
                                   uint16_t *const *states,
                                   size_t n_streams) const;

    /** The midpoint start state of a fresh transform. */
    uint16_t initialState() const
    {
        return static_cast<uint16_t>(k_ / 2);
    }

  private:
    struct Entry
    {
        uint16_t next;
        uint8_t out;
    };

    /** One table-or-fallback step from @p state on @p delta. */
    unsigned stepState(unsigned state, int delta, bool &out_bit) const;

    unsigned k_;
    unsigned n_inputs_;
    std::vector<Entry> table_; //!< (state << 8) | (delta + kDeltaOffset)
};

/**
 * Owning cache of built FSM tables keyed by their construction
 * parameters, so layers sharing a (K, threshold) / (K, n_inputs) pair
 * share one table. Not thread-safe: populate at network construction,
 * read-only afterwards.
 */
class FsmTableCache
{
  public:
    /** The Stanh table for (k, threshold), building it on first use. */
    const StanhBatchTable &stanh(unsigned k, int threshold = -1);

    /** The Btanh table for (k, n_inputs), building it on first use. */
    const BtanhBatchTable &btanh(unsigned k, unsigned n_inputs);

  private:
    std::map<std::pair<unsigned, int>,
             std::unique_ptr<StanhBatchTable>>
        stanh_;
    std::map<std::pair<unsigned, unsigned>,
             std::unique_ptr<BtanhBatchTable>>
        btanh_;
};

} // namespace sc
} // namespace scdcnn

#endif // SCDCNN_SC_FSM_BATCH_H
