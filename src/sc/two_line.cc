#include "sc/two_line.h"

#include <cmath>
#include <cstdlib>

#include "common/logging.h"
#include "sc/sng.h"

namespace scdcnn {
namespace sc {

int
TwoLineStream::digit(size_t i) const
{
    if (!mag.get(i))
        return 0;
    return sign.get(i) ? -1 : 1;
}

double
TwoLineStream::value() const
{
    SCDCNN_ASSERT(mag.length() == sign.length() && mag.length() > 0,
                  "malformed two-line stream");
    // sum of digits = (+1 digits) - (-1 digits)
    const auto minus = static_cast<int64_t>((mag & sign).countOnes());
    const auto total = static_cast<int64_t>(mag.countOnes());
    const int64_t plus = total - minus;
    return static_cast<double>(plus - minus) /
           static_cast<double>(mag.length());
}

TwoLineStream
encodeTwoLine(double x, size_t length, Xoshiro256ss &rng)
{
    if (x > 1.0)
        x = 1.0;
    if (x < -1.0)
        x = -1.0;
    TwoLineStream out;
    out.mag = sngUnipolar(std::abs(x), length, rng);
    out.sign = constantStream(x < 0.0, length);
    return out;
}

TwoLineStream
twoLineMultiply(const TwoLineStream &a, const TwoLineStream &b)
{
    TwoLineStream out;
    out.mag = a.mag & b.mag;
    out.sign = (a.sign ^ b.sign) & out.mag;
    return out;
}

TwoLineStream
TwoLineAdder::add(const TwoLineStream &a, const TwoLineStream &b)
{
    const size_t len = a.length();
    SCDCNN_ASSERT(b.length() == len, "two-line adder length mismatch");

    TwoLineStream out;
    out.mag = Bitstream(len);
    out.sign = Bitstream(len);
    for (size_t i = 0; i < len; ++i) {
        int total = a.digit(i) + b.digit(i) + carry_;
        int digit = total > 0 ? 1 : (total < 0 ? -1 : 0);
        int residual = total - digit;
        // The hardware carry is a three-state counter; anything beyond
        // +/-1 cannot be stored and is dropped (overflow).
        int carry = residual > 1 ? 1 : (residual < -1 ? -1 : residual);
        dropped_ += static_cast<uint64_t>(std::abs(residual - carry));
        carry_ = carry;
        if (digit != 0) {
            out.mag.set(i, true);
            out.sign.set(i, digit < 0);
        }
    }
    return out;
}

TwoLineStream
twoLineAddTree(const std::vector<TwoLineStream> &inputs,
               uint64_t *dropped_out)
{
    SCDCNN_ASSERT(!inputs.empty(), "two-line add tree with no inputs");
    std::vector<TwoLineStream> level = inputs;
    uint64_t dropped = 0;
    while (level.size() > 1) {
        std::vector<TwoLineStream> next;
        next.reserve((level.size() + 1) / 2);
        for (size_t i = 0; i + 1 < level.size(); i += 2) {
            TwoLineAdder adder;
            next.push_back(adder.add(level[i], level[i + 1]));
            dropped += adder.droppedWeight();
        }
        if (level.size() % 2 == 1)
            next.push_back(level.back());
        level = std::move(next);
    }
    if (dropped_out != nullptr)
        *dropped_out = dropped;
    return level[0];
}

} // namespace sc
} // namespace scdcnn
