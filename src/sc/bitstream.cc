#include "sc/bitstream.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace scdcnn {
namespace sc {

namespace {

size_t
wordsFor(size_t length)
{
    return (length + 63) / 64;
}

} // namespace

Bitstream::Bitstream(size_t length)
    : length_(length), words_(wordsFor(length), 0)
{
}

Bitstream
Bitstream::fromBits(const std::vector<int> &bits)
{
    Bitstream s(bits.size());
    for (size_t i = 0; i < bits.size(); ++i)
        if (bits[i])
            s.set(i, true);
    return s;
}

Bitstream
Bitstream::fromString(const std::string &str)
{
    Bitstream s(str.size());
    for (size_t i = 0; i < str.size(); ++i) {
        if (str[i] == '1')
            s.set(i, true);
        else if (str[i] != '0')
            fatal("Bitstream::fromString: bad character '%c'", str[i]);
    }
    return s;
}

bool
Bitstream::get(size_t i) const
{
    SCDCNN_ASSERT(i < length_, "bit index %zu out of range %zu", i, length_);
    return (words_[i / 64] >> (i % 64)) & 1;
}

void
Bitstream::set(size_t i, bool v)
{
    SCDCNN_ASSERT(i < length_, "bit index %zu out of range %zu", i, length_);
    uint64_t mask = uint64_t{1} << (i % 64);
    if (v)
        words_[i / 64] |= mask;
    else
        words_[i / 64] &= ~mask;
}

size_t
Bitstream::countOnes() const
{
    size_t n = 0;
    for (uint64_t w : words_)
        n += static_cast<size_t>(std::popcount(w));
    return n;
}

size_t
Bitstream::countOnes(size_t begin, size_t end) const
{
    SCDCNN_ASSERT(begin <= end && end <= length_,
                  "bad range [%zu, %zu) for length %zu", begin, end, length_);
    return sc::countOnes(BitstreamView(*this), begin, end);
}

size_t
countOnes(BitstreamView v, size_t begin, size_t end)
{
    SCDCNN_ASSERT(begin <= end && end <= v.length,
                  "bad range [%zu, %zu) for length %zu", begin, end,
                  v.length);
    if (begin == end)
        return 0;

    size_t first_word = begin / 64;
    size_t last_word = (end - 1) / 64;
    size_t n = 0;

    if (first_word == last_word) {
        uint64_t w = v.words[first_word];
        w >>= begin % 64;
        size_t span = end - begin;
        if (span < 64)
            w &= (uint64_t{1} << span) - 1;
        return static_cast<size_t>(std::popcount(w));
    }

    // Head partial word.
    n += static_cast<size_t>(
        std::popcount(v.words[first_word] >> (begin % 64)));
    // Full middle words.
    for (size_t i = first_word + 1; i < last_word; ++i)
        n += static_cast<size_t>(std::popcount(v.words[i]));
    // Tail partial word.
    uint64_t w = v.words[last_word];
    size_t tail_bits = ((end - 1) % 64) + 1;
    if (tail_bits < 64)
        w &= (uint64_t{1} << tail_bits) - 1;
    n += static_cast<size_t>(std::popcount(w));
    return n;
}

double
Bitstream::unipolar() const
{
    SCDCNN_ASSERT(length_ > 0, "unipolar value of empty stream");
    return static_cast<double>(countOnes()) / static_cast<double>(length_);
}

double
Bitstream::bipolar() const
{
    return 2.0 * unipolar() - 1.0;
}

Bitstream
Bitstream::slice(size_t begin, size_t len) const
{
    SCDCNN_ASSERT(begin + len <= length_,
                  "slice [%zu, +%zu) out of range %zu", begin, len, length_);
    Bitstream out(len);
    size_t shift = begin % 64;
    size_t base = begin / 64;
    for (size_t i = 0; i < out.words_.size(); ++i) {
        uint64_t w = words_[base + i] >> shift;
        if (shift != 0 && base + i + 1 < words_.size())
            w |= words_[base + i + 1] << (64 - shift);
        out.words_[i] = w;
    }
    out.maskTail();
    return out;
}

std::string
Bitstream::toString() const
{
    std::string s(length_, '0');
    for (size_t i = 0; i < length_; ++i)
        if (get(i))
            s[i] = '1';
    return s;
}

void
Bitstream::checkSameLength(const Bitstream &o) const
{
    SCDCNN_ASSERT(length_ == o.length_,
                  "stream length mismatch: %zu vs %zu", length_, o.length_);
}

Bitstream
Bitstream::operator&(const Bitstream &o) const
{
    checkSameLength(o);
    Bitstream out(length_);
    for (size_t i = 0; i < words_.size(); ++i)
        out.words_[i] = words_[i] & o.words_[i];
    return out;
}

Bitstream
Bitstream::operator|(const Bitstream &o) const
{
    checkSameLength(o);
    Bitstream out(length_);
    for (size_t i = 0; i < words_.size(); ++i)
        out.words_[i] = words_[i] | o.words_[i];
    return out;
}

Bitstream
Bitstream::operator^(const Bitstream &o) const
{
    checkSameLength(o);
    Bitstream out(length_);
    for (size_t i = 0; i < words_.size(); ++i)
        out.words_[i] = words_[i] ^ o.words_[i];
    return out;
}

Bitstream
Bitstream::xnor(const Bitstream &o) const
{
    checkSameLength(o);
    Bitstream out(length_);
    for (size_t i = 0; i < words_.size(); ++i)
        out.words_[i] = ~(words_[i] ^ o.words_[i]);
    out.maskTail();
    return out;
}

Bitstream
Bitstream::operator~() const
{
    Bitstream out(length_);
    for (size_t i = 0; i < words_.size(); ++i)
        out.words_[i] = ~words_[i];
    out.maskTail();
    return out;
}

bool
Bitstream::operator==(const Bitstream &o) const
{
    return length_ == o.length_ && words_ == o.words_;
}

void
Bitstream::reset(size_t length)
{
    length_ = length;
    words_.assign(wordsFor(length), 0);
}

void
Bitstream::maskTail()
{
    size_t tail = length_ % 64;
    if (tail != 0 && !words_.empty())
        words_.back() &= (uint64_t{1} << tail) - 1;
}

void
StreamArena::reset(size_t count, size_t length)
{
    count_ = count;
    length_ = length;
    stride_ = wordsFor(length);
    words_.assign(count_ * stride_, 0);
}

void
StreamArena::assign(size_t i, const Bitstream &s)
{
    SCDCNN_ASSERT(i < count_, "arena slot %zu out of range %zu", i,
                  count_);
    SCDCNN_ASSERT(s.length() == length_,
                  "arena stream length mismatch: %zu vs %zu", s.length(),
                  length_);
    std::copy(s.words().begin(), s.words().end(), wordsAt(i));
}

void
StreamArena::maskTail(size_t i)
{
    size_t tail = length_ % 64;
    if (tail != 0 && stride_ != 0)
        wordsAt(i)[stride_ - 1] &= (uint64_t{1} << tail) - 1;
}

void
BatchStreamArena::reset(size_t count, size_t images, size_t length)
{
    count_ = count;
    images_ = images;
    length_ = length;
    stride_ = wordsFor(length);
    words_.assign(count_ * images_ * stride_, 0);
}

void
BatchStreamArena::assign(size_t i, size_t b, const Bitstream &s)
{
    SCDCNN_ASSERT(i < count_, "arena site %zu out of range %zu", i,
                  count_);
    SCDCNN_ASSERT(b < images_, "arena image %zu out of range %zu", b,
                  images_);
    SCDCNN_ASSERT(s.length() == length_,
                  "arena stream length mismatch: %zu vs %zu", s.length(),
                  length_);
    std::copy(s.words().begin(), s.words().end(), wordsAt(i, b));
}

void
InterleavedWeightArena::reset(size_t filters, size_t taps, size_t length)
{
    filters_ = filters;
    taps_ = taps;
    length_ = length;
    stream_words_ = wordsFor(length);
    group_words_ = stream_words_ * taps_ * kFilterLanes;
    groups_ = (filters + kFilterLanes - 1) / kFilterLanes;
    words_.assign(groups_ * group_words_, 0);
}

size_t
InterleavedWeightArena::lanesInGroup(size_t g) const
{
    SCDCNN_ASSERT(g < groups_, "filter block %zu out of range %zu", g,
                  groups_);
    return std::min(kFilterLanes, filters_ - g * kFilterLanes);
}

WeightBlockView
InterleavedWeightArena::block(size_t g) const
{
    WeightBlockView v;
    v.words = words_.data() + g * group_words_;
    v.lanes = lanesInGroup(g);
    v.taps = taps_;
    v.length = length_;
    return v;
}

void
InterleavedWeightArena::assign(size_t filter, size_t tap, BitstreamView s)
{
    SCDCNN_ASSERT(filter < filters_, "filter %zu out of range %zu",
                  filter, filters_);
    SCDCNN_ASSERT(tap < taps_, "tap %zu out of range %zu", tap, taps_);
    SCDCNN_ASSERT(s.length == length_,
                  "interleaved stream length mismatch: %zu vs %zu",
                  s.length, length_);
    const size_t g = filter / kFilterLanes;
    const size_t lane = filter % kFilterLanes;
    uint64_t *base = words_.data() + g * group_words_;
    for (size_t w = 0; w < stream_words_; ++w)
        base[(w * taps_ + tap) * kFilterLanes + lane] = s.words[w];
}

} // namespace sc
} // namespace scdcnn
