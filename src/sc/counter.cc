#include "sc/counter.h"

#include "sc/fused.h"

namespace scdcnn {
namespace sc {

std::vector<uint16_t>
ParallelCounter::counts(const std::vector<const Bitstream *> &streams)
{
    std::vector<uint16_t> out;
    fusedLineCounts(streams, /*approximate=*/false, out);
    return out;
}

std::vector<uint16_t>
ParallelCounter::counts(const std::vector<Bitstream> &streams)
{
    return counts(toPointers(streams));
}

uint64_t
ParallelCounter::totalOnes(const std::vector<Bitstream> &streams)
{
    uint64_t total = 0;
    for (const auto &s : streams)
        total += s.countOnes();
    return total;
}

std::vector<uint16_t>
ParallelCounter::productCounts(const std::vector<const Bitstream *> &xs,
                               const std::vector<const Bitstream *> &ws)
{
    std::vector<uint16_t> out;
    fusedProductCounts(xs, ws, /*approximate=*/false, out);
    return out;
}

std::vector<uint16_t>
ApproxParallelCounter::counts(const std::vector<const Bitstream *> &streams)
{
    std::vector<uint16_t> out;
    fusedLineCounts(streams, /*approximate=*/true, out);
    return out;
}

std::vector<uint16_t>
ApproxParallelCounter::counts(const std::vector<Bitstream> &streams)
{
    return counts(toPointers(streams));
}

std::vector<uint16_t>
ApproxParallelCounter::productCounts(
    const std::vector<const Bitstream *> &xs,
    const std::vector<const Bitstream *> &ws)
{
    std::vector<uint16_t> out;
    fusedProductCounts(xs, ws, /*approximate=*/true, out);
    return out;
}

unsigned
ApproxParallelCounter::outputBits(size_t n_inputs)
{
    unsigned bits = 0;
    while ((size_t{1} << bits) < n_inputs + 1)
        ++bits;
    return bits;
}

} // namespace sc
} // namespace scdcnn
