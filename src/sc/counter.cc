#include "sc/counter.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace scdcnn {
namespace sc {

namespace {

/** Max supported log2(inputs): 4096 lines. */
constexpr int kMaxPlanes = 13;

std::vector<const Bitstream *>
toPointers(const std::vector<Bitstream> &streams)
{
    std::vector<const Bitstream *> ptrs;
    ptrs.reserve(streams.size());
    for (const auto &s : streams)
        ptrs.push_back(&s);
    return ptrs;
}

/**
 * Carry-save vertical count: add each line's word into bit planes,
 * then read each bit position's count back out. When @p ws is
 * non-null, the counted lines are the XNOR products xs[i] ^ ~ws[i].
 */
std::vector<uint16_t>
verticalCounts(const std::vector<const Bitstream *> &xs,
               const std::vector<const Bitstream *> *ws)
{
    SCDCNN_ASSERT(!xs.empty(), "counting zero streams");
    const size_t len = xs[0]->length();
    for (const auto *s : xs)
        SCDCNN_ASSERT(s->length() == len, "stream length mismatch");
    if (ws != nullptr) {
        SCDCNN_ASSERT(ws->size() == xs.size(), "operand count mismatch");
        for (const auto *s : *ws)
            SCDCNN_ASSERT(s->length() == len, "weight length mismatch");
    }

    std::vector<uint16_t> out(len, 0);
    const size_t n_words = (len + 63) / 64;
    // Mask for the (possibly partial) last word: XNOR products must not
    // leak ones into the tail bits.
    const size_t tail = len % 64;
    const uint64_t tail_mask =
        tail == 0 ? ~uint64_t{0} : ((uint64_t{1} << tail) - 1);

    for (size_t w = 0; w < n_words; ++w) {
        const uint64_t word_mask =
            (w + 1 == n_words) ? tail_mask : ~uint64_t{0};
        uint64_t planes[kMaxPlanes] = {0};
        int used = 0;
        for (size_t i = 0; i < xs.size(); ++i) {
            uint64_t carry = xs[i]->words()[w];
            if (ws != nullptr)
                carry = ~(carry ^ (*ws)[i]->words()[w]) & word_mask;
            int j = 0;
            while (carry != 0) {
                SCDCNN_ASSERT(j < kMaxPlanes, "too many input streams");
                uint64_t t = planes[j] & carry;
                planes[j] ^= carry;
                carry = t;
                ++j;
            }
            if (j > used)
                used = j;
        }
        const size_t base = w * 64;
        const size_t limit = std::min<size_t>(64, len - base);
        for (size_t b = 0; b < limit; ++b) {
            uint16_t c = 0;
            for (int j = 0; j < used; ++j)
                c |= static_cast<uint16_t>((planes[j] >> b) & 1) << j;
            out[base + b] = c;
        }
    }
    return out;
}

std::vector<uint16_t>
exactCounts(const std::vector<const Bitstream *> &streams)
{
    return verticalCounts(streams, nullptr);
}

} // namespace

std::vector<uint16_t>
ParallelCounter::counts(const std::vector<const Bitstream *> &streams)
{
    return exactCounts(streams);
}

std::vector<uint16_t>
ParallelCounter::counts(const std::vector<Bitstream> &streams)
{
    return exactCounts(toPointers(streams));
}

uint64_t
ParallelCounter::totalOnes(const std::vector<Bitstream> &streams)
{
    uint64_t total = 0;
    for (const auto &s : streams)
        total += s.countOnes();
    return total;
}

std::vector<uint16_t>
ParallelCounter::productCounts(const std::vector<const Bitstream *> &xs,
                               const std::vector<const Bitstream *> &ws)
{
    return verticalCounts(xs, &ws);
}

std::vector<uint16_t>
ApproxParallelCounter::counts(const std::vector<const Bitstream *> &streams)
{
    std::vector<uint16_t> out = exactCounts(streams);
    const size_t len = streams[0]->length();
    const size_t parity_lines = std::min(kLsbParityLines, streams.size());

    Bitstream lsb(len);
    auto &lsb_words = lsb.mutableWords();
    for (size_t s = 0; s < parity_lines; ++s) {
        const auto &words = streams[s]->words();
        for (size_t w = 0; w < words.size(); ++w)
            lsb_words[w] ^= words[w];
    }
    for (size_t i = 0; i < len; ++i)
        out[i] = static_cast<uint16_t>((out[i] & ~uint16_t{1}) |
                                       (lsb.get(i) ? 1 : 0));
    return out;
}

std::vector<uint16_t>
ApproxParallelCounter::counts(const std::vector<Bitstream> &streams)
{
    return counts(toPointers(streams));
}

std::vector<uint16_t>
ApproxParallelCounter::productCounts(
    const std::vector<const Bitstream *> &xs,
    const std::vector<const Bitstream *> &ws)
{
    std::vector<uint16_t> out = verticalCounts(xs, &ws);
    const size_t len = xs[0]->length();
    const size_t parity_lines = std::min(kLsbParityLines, xs.size());

    Bitstream lsb(len);
    auto &lsb_words = lsb.mutableWords();
    for (size_t s = 0; s < parity_lines; ++s) {
        const auto &xw = xs[s]->words();
        const auto &ww = ws[s]->words();
        for (size_t w = 0; w < xw.size(); ++w)
            lsb_words[w] ^= ~(xw[w] ^ ww[w]);
    }
    lsb.maskTail();
    // Odd numbers of XNOR lines invert the parity of the tail-masked
    // word, but maskTail() already cleared bits past the length.
    for (size_t i = 0; i < len; ++i)
        out[i] = static_cast<uint16_t>((out[i] & ~uint16_t{1}) |
                                       (lsb.get(i) ? 1 : 0));
    return out;
}

unsigned
ApproxParallelCounter::outputBits(size_t n_inputs)
{
    unsigned bits = 0;
    while ((size_t{1} << bits) < n_inputs + 1)
        ++bits;
    return bits;
}

} // namespace sc
} // namespace scdcnn
