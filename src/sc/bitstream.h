/**
 * @file
 * Packed stochastic bit-stream.
 *
 * A stochastic number is carried by a stream of L bits; the represented
 * value is a function of the fraction of ones (Section 3.2 of the paper):
 *
 *  - unipolar encoding:  p = ones/L          represents values in [0, 1]
 *  - bipolar encoding:   x = 2*ones/L - 1    represents values in [-1, 1]
 *
 * Streams are packed 64 bits per word so the gate-level operators
 * (AND/XNOR/OR/...) and population counts run at word speed on the host.
 * Bit index 0 is the first clock cycle; within a word, cycle i maps to bit
 * (i % 64) of word (i / 64). Tail bits past the length are kept zero by
 * every mutator so popcounts never need masking.
 */

#ifndef SCDCNN_SC_BITSTREAM_H
#define SCDCNN_SC_BITSTREAM_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace scdcnn {
namespace sc {

/**
 * Fixed-length packed bit-stream.
 */
class Bitstream
{
  public:
    /** Empty stream (length zero). */
    Bitstream() = default;

    /** All-zero stream of @p length bits. */
    explicit Bitstream(size_t length);

    /** Build from explicit bits (each element 0 or 1). */
    static Bitstream fromBits(const std::vector<int> &bits);

    /** Build from a "0101..." string, cycle 0 first. */
    static Bitstream fromString(const std::string &s);

    /** Stream length in bits (clock cycles). */
    size_t length() const { return length_; }

    /** Whether the stream has zero length. */
    bool empty() const { return length_ == 0; }

    /** Read the bit at cycle @p i. */
    bool get(size_t i) const;

    /** Set the bit at cycle @p i. */
    void set(size_t i, bool v);

    /** Number of ones in the whole stream. */
    size_t countOnes() const;

    /** Number of ones in cycles [begin, end). */
    size_t countOnes(size_t begin, size_t end) const;

    /** Fraction of ones, i.e. the unipolar value. */
    double unipolar() const;

    /** Bipolar value 2*ones/L - 1. */
    double bipolar() const;

    /** Extract cycles [begin, begin+len) as a new stream. */
    Bitstream slice(size_t begin, size_t len) const;

    /** Render as a "0101..." string (cycle 0 first). */
    std::string toString() const;

    /** Bitwise AND (unipolar multiplication). Lengths must match. */
    Bitstream operator&(const Bitstream &o) const;

    /** Bitwise OR (OR-gate addition). Lengths must match. */
    Bitstream operator|(const Bitstream &o) const;

    /** Bitwise XOR. Lengths must match. */
    Bitstream operator^(const Bitstream &o) const;

    /** Bitwise XNOR (bipolar multiplication). Lengths must match. */
    Bitstream xnor(const Bitstream &o) const;

    /** Bitwise NOT (bipolar negation). */
    Bitstream operator~() const;

    bool operator==(const Bitstream &o) const;
    bool operator!=(const Bitstream &o) const { return !(*this == o); }

    /** Underlying words (read-only), tail bits guaranteed zero. */
    const std::vector<uint64_t> &words() const { return words_; }

    /** Mutable word access for bulk generators; caller must keep the
     *  invariant that tail bits stay zero (call maskTail() after). */
    std::vector<uint64_t> &mutableWords() { return words_; }

    /** Zero any bits at positions >= length. */
    void maskTail();

    /**
     * Reshape to an all-zero stream of @p length bits in place,
     * reusing the existing word storage when it is large enough (the
     * fused kernels' reusable-output contract).
     */
    void reset(size_t length);

    /** Number of 64-bit words backing the stream. */
    size_t wordCount() const { return words_.size(); }

  private:
    void checkSameLength(const Bitstream &o) const;

    size_t length_ = 0;
    std::vector<uint64_t> words_;
};

/**
 * Non-owning view of a packed stream: word pointer + bit length.
 *
 * The fused kernels take views as their operand type so a layer's
 * streams can live in one contiguous StreamArena and be streamed
 * through without chasing per-Bitstream heap allocations. A view does
 * not extend the lifetime of its storage; the invariants of Bitstream
 * (tail bits zero, cycle i at bit i%64 of word i/64) carry over.
 */
struct BitstreamView
{
    const uint64_t *words = nullptr;
    size_t length = 0;

    BitstreamView() = default;
    BitstreamView(const uint64_t *w, size_t len) : words(w), length(len) {}
    /*implicit*/ BitstreamView(const Bitstream &s)
        : words(s.words().data()), length(s.length())
    {
    }

    /** Number of 64-bit words backing the view. */
    size_t wordCount() const { return (length + 63) / 64; }

    /** Read the bit at cycle @p i (no bounds check beyond debug). */
    bool get(size_t i) const { return (words[i / 64] >> (i % 64)) & 1; }
};

/** Number of ones in cycles [begin, end) of a view (word popcounts
 *  with boundary masks; begin <= end <= length required). */
size_t countOnes(BitstreamView v, size_t begin, size_t end);

/**
 * Contiguous word arena holding @c count equal-length packed streams.
 *
 * Stream i occupies words [i*stride, i*stride + wordCount) with the
 * same layout and tail-zero invariant as a Bitstream, so a view of a
 * slot is a drop-in kernel operand. The engine packs each conv
 * filter's / FC neuron's weight streams and each layer's pixel
 * streams into one arena, which removes per-stream allocations and
 * keeps a window's operands cache-adjacent.
 */
class StreamArena
{
  public:
    StreamArena() = default;

    /** Reshape to @p count all-zero streams of @p length bits each,
     *  reusing the existing storage when large enough. */
    void reset(size_t count, size_t length);

    /** Number of streams held. */
    size_t count() const { return count_; }

    /** Length in bits of every stream. */
    size_t length() const { return length_; }

    /** Words per stream slot. */
    size_t strideWords() const { return stride_; }

    /** Mutable word pointer of slot @p i; the caller must keep the
     *  tail bits past length() zero. */
    uint64_t *wordsAt(size_t i) { return words_.data() + i * stride_; }

    /** Read-only word pointer of slot @p i. */
    const uint64_t *wordsAt(size_t i) const
    {
        return words_.data() + i * stride_;
    }

    /** Kernel operand view of slot @p i. */
    BitstreamView view(size_t i) const
    {
        return BitstreamView(wordsAt(i), length_);
    }

    /** Copy a Bitstream (of matching length) into slot @p i. */
    void assign(size_t i, const Bitstream &s);

    /** Zero any bits of slot @p i at positions >= length(). */
    void maskTail(size_t i);

  private:
    size_t count_ = 0, length_ = 0, stride_ = 0;
    std::vector<uint64_t> words_;
};

/**
 * Batch-major stream arena: @c count sites of @c images equal-length
 * packed streams, laid out site-major / image-minor.
 *
 * Slot (site i, image b) occupies words
 * [(i * images + b) * strideWords(), ...), so for a fixed site the
 * streams of consecutive images are exactly strideWords() words apart.
 * The batch-axis kernels exploit that: they take the image-0 views of
 * an operand window plus one per-tap word stride and reach image b's
 * words by pointer offset — no per-image view gather — while a weight
 * block is loaded once and reused across the whole micro-batch.
 * Per-slot layout and the tail-zero invariant match Bitstream.
 */
class BatchStreamArena
{
  public:
    BatchStreamArena() = default;

    /** Reshape to @p count sites x @p images all-zero streams of
     *  @p length bits each, reusing storage when large enough. */
    void reset(size_t count, size_t images, size_t length);

    /** Number of sites held. */
    size_t count() const { return count_; }

    /** Number of images per site. */
    size_t images() const { return images_; }

    /** Length in bits of every stream. */
    size_t length() const { return length_; }

    /** Words per stream slot — also the word distance between the
     *  same site's streams of images b and b + 1 (the batch kernels'
     *  per-tap image stride). */
    size_t strideWords() const { return stride_; }

    /** Mutable word pointer of (site @p i, image @p b); the caller
     *  must keep the tail bits past length() zero. */
    uint64_t *wordsAt(size_t i, size_t b)
    {
        return words_.data() + (i * images_ + b) * stride_;
    }

    /** Read-only word pointer of (site @p i, image @p b). */
    const uint64_t *wordsAt(size_t i, size_t b) const
    {
        return words_.data() + (i * images_ + b) * stride_;
    }

    /** Kernel operand view of (site @p i, image @p b). */
    BitstreamView view(size_t i, size_t b) const
    {
        return BitstreamView(wordsAt(i, b), length_);
    }

    /** Copy a Bitstream (of matching length) into (site, image). */
    void assign(size_t i, size_t b, const Bitstream &s);

  private:
    size_t count_ = 0, images_ = 0, length_ = 0, stride_ = 0;
    std::vector<uint64_t> words_;
};

/** Filters per interleave block: one 64-bit lane per filter in a
 *  256-bit AVX2 vector, so a filter block's weight words load with one
 *  unaligned vector load. */
constexpr size_t kFilterLanes = 4;

/**
 * View of one filter block of an InterleavedWeightArena.
 *
 * Layout is word-major: the kFilterLanes weight words of (word w,
 * tap t) sit contiguously at words[(w * taps + t) * kFilterLanes],
 * lane f first. The filter-blocked kernels therefore stream linearly
 * through the block while sharing each input word across all lanes —
 * and a word range [w0, w1) of the block is one contiguous region,
 * which is what keeps a segment's weight slice resident in L2.
 *
 * Only the first @c lanes lanes carry real filters; padding lanes (the
 * last block of a layer whose filter count is not a multiple of
 * kFilterLanes) hold zero words and their outputs are discarded.
 */
struct WeightBlockView
{
    const uint64_t *words = nullptr;
    size_t lanes = 0;  //!< real filters in this block (1..kFilterLanes)
    size_t taps = 0;   //!< operand streams per filter (bias included)
    size_t length = 0; //!< stream length in bits

    /** The kFilterLanes weight words of (word @p w, tap @p t). */
    const uint64_t *at(size_t w, size_t t) const
    {
        return words + (w * taps + t) * kFilterLanes;
    }

    /** Bit of lane @p f, tap @p t at cycle @p i (reference twins). */
    bool get(size_t f, size_t t, size_t i) const
    {
        return (at(i / 64, t)[f] >> (i % 64)) & 1;
    }

    /** Number of 64-bit words per stream. */
    size_t wordCount() const { return (length + 63) / 64; }
};

/**
 * Filter-interleaved weight storage for the filter-blocked kernels.
 *
 * Filters are grouped into blocks of kFilterLanes; within a block the
 * words are laid out as WeightBlockView describes. Streams are
 * assigned from their packed (Bitstream / StreamArena) form, so the
 * interleaved copy is bit-identical to the plain layout — the
 * round-trip the layout tests pin down. Tail-zero and cycle-order
 * invariants carry over per lane.
 */
class InterleavedWeightArena
{
  public:
    InterleavedWeightArena() = default;

    /** Reshape to @p filters filters of @p taps streams of @p length
     *  bits, all zero, reusing storage when large enough. */
    void reset(size_t filters, size_t taps, size_t length);

    /** Number of real filters held. */
    size_t filters() const { return filters_; }

    /** Operand streams per filter. */
    size_t taps() const { return taps_; }

    /** Stream length in bits. */
    size_t length() const { return length_; }

    /** Number of filter blocks, ceil(filters / kFilterLanes). */
    size_t groups() const { return groups_; }

    /** Real filters in block @p g (kFilterLanes except maybe last). */
    size_t lanesInGroup(size_t g) const;

    /** Kernel operand view of block @p g. */
    WeightBlockView block(size_t g) const;

    /** Copy packed stream words into (filter, tap)'s lane. */
    void assign(size_t filter, size_t tap, BitstreamView s);

  private:
    size_t filters_ = 0, taps_ = 0, length_ = 0;
    size_t stream_words_ = 0; //!< words per stream
    size_t group_words_ = 0;  //!< words per filter block
    size_t groups_ = 0;
    std::vector<uint64_t> words_;
};

/** Pointer view of owned streams, for the pointer-based kernel APIs. */
inline std::vector<const Bitstream *>
toPointers(const std::vector<Bitstream> &streams)
{
    std::vector<const Bitstream *> ptrs;
    ptrs.reserve(streams.size());
    for (const auto &s : streams)
        ptrs.push_back(&s);
    return ptrs;
}

/** View vector of owned streams. */
inline std::vector<BitstreamView>
toViews(const std::vector<Bitstream> &streams)
{
    std::vector<BitstreamView> views;
    views.reserve(streams.size());
    for (const auto &s : streams)
        views.emplace_back(s);
    return views;
}

/** View vector of pointed-to streams. */
inline std::vector<BitstreamView>
toViews(const std::vector<const Bitstream *> &streams)
{
    std::vector<BitstreamView> views;
    views.reserve(streams.size());
    for (const auto *s : streams)
        views.emplace_back(*s);
    return views;
}

} // namespace sc
} // namespace scdcnn

#endif // SCDCNN_SC_BITSTREAM_H
