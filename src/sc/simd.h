/**
 * @file
 * Runtime-dispatched SIMD kernels for the word-parallel hot paths.
 *
 * The portable scalar implementations in sc/fused.cc and
 * blocks/pooling.cc are the always-built default and the correctness
 * oracle; the AVX2 variants here are selected at runtime when the host
 * CPU supports them and must be bit-exact with the scalar paths (the
 * dispatch rule DESIGN.md documents, enforced by tests/test_simd.cc).
 *
 * Kernels:
 *  - avx2ProductCountBlocks: the carry-save bit-plane loop of
 *    fusedProductCounts over blocks of four words (256 cycles) at a
 *    time, including the vectorized plane-to-count transpose;
 *  - avx2ProductCountTotal: the popcount reductions of
 *    fusedProductCountTotal (nibble-LUT shuffle + psadbw);
 *  - avx2SumU16: the segment accumulation of the masked binary
 *    max-pooling kernel.
 *
 * Dispatch: enabled() is true when the binary carries the AVX2 paths,
 * the CPU reports AVX2, and neither SCDCNN_FORCE_SCALAR nor
 * setEnabled(false) turned them off. Callers branch on enabled() and
 * fall back to the scalar path for tails and small sizes.
 */

#ifndef SCDCNN_SC_SIMD_H
#define SCDCNN_SC_SIMD_H

#include <cstddef>
#include <cstdint>

#include "sc/bitstream.h"

namespace scdcnn {
namespace sc {
namespace simd {

/** Whether AVX2 paths were compiled in and the CPU supports them. */
bool available();

/** Whether the AVX2 paths are currently selected: available(), not
 *  disabled via the SCDCNN_FORCE_SCALAR environment variable, and not
 *  turned off with setEnabled(false). */
bool enabled();

/** Test hook: select (true) or bypass (false) the AVX2 paths at
 *  runtime. Enabling when !available() is a no-op. */
void setEnabled(bool on);

/**
 * Carry-save column counts over full 4-word blocks of the operand
 * views: processes words [0, W) where W is the largest multiple of 4
 * with W * 64 <= length, writing counts for cycles [0, W * 64) into
 * @p out. Lines are xs[i] when ws == nullptr, else the XNOR products
 * xs[i] ^~ ws[i]. The approximate-counter LSB (parity of the first
 * @p parity_lines lines) is fused in when parity_lines > 0.
 *
 * @return the number of words processed (the scalar caller continues
 *         from there); 0 when AVX2 is not enabled.
 */
size_t avx2ProductCountBlocks(const BitstreamView *xs,
                              const BitstreamView *ws, size_t n,
                              size_t length, size_t parity_lines,
                              uint16_t *out);

/**
 * Filter-blocked carry-save column counts: for every full word of
 * [@p begin_word, @p end_word) (a word is full when all 64 of its
 * cycles lie inside block.length), XNOR each input word of @p xs
 * against the kFilterLanes weight words of @p block with the filters
 * in the 64-bit vector lanes, so one carry-save plane set serves the
 * whole filter block and each input word is loaded once per block.
 * Counts for lane f, cycle begin_word * 64 + i land at
 * out[f * out_stride + i]; only block.lanes lanes are written. The
 * approximate-counter LSB is fused in when @p parity_lines > 0.
 *
 * @return the number of words processed from begin_word (the scalar
 *         caller continues from there); 0 when AVX2 is not enabled.
 */
size_t avx2ProductCountsMulti(const BitstreamView *xs,
                              const WeightBlockView &block,
                              size_t parity_lines, size_t begin_word,
                              size_t end_word, uint16_t *out,
                              size_t out_stride);

/**
 * Batch-axis (weight-stationary) variant of avx2ProductCountsMulti:
 * for every full word of [@p begin_word, @p end_word), the block's
 * weight row (taps x kFilterLanes words) is loaded once and folded
 * against the corresponding input-window words of every active image
 * before advancing, so the weight slice stays cache-resident across
 * the micro-batch. Image j's operand for tap i is the image-0 view
 * shifted by whole words: xs0[i].words + images[j] * x_strides[i]
 * (stride 0 shares a line, e.g. the bias stream). Counts for active
 * position j, lane f, range-local cycle i land at
 * out[j * image_stride + f * lane_stride + i].
 *
 * @return the number of words processed from begin_word (the scalar
 *         caller continues from there); 0 when AVX2 is not enabled.
 */
size_t avx2ProductCountsMultiBatch(const BitstreamView *xs0,
                                   const size_t *x_strides,
                                   const uint32_t *images,
                                   size_t n_images,
                                   const WeightBlockView &block,
                                   size_t parity_lines, size_t begin_word,
                                   size_t end_word, uint16_t *out,
                                   size_t lane_stride,
                                   size_t image_stride);

/**
 * Plane-emitting variant of avx2ProductCountsMulti: identical
 * carry-save fold, but the per-word result is stored as the canonical
 * bit-planes of the column counts instead of being transposed into
 * per-cycle uint16 counts. For lane f, range-local word q, the
 * @p plane_cap planes land at out[f * lane_stride + q * (plane_cap+1)
 * + p] (planes above the fold's high plane are zeroed) and the
 * leading-lines parity word at index plane_cap. Skipping the transpose
 * matters when only segment sums of most lanes' counts are consumed
 * (the Figure 8 selector's losing inputs): sums follow from plane
 * popcounts, and per-cycle counts can be recovered exactly for the one
 * selected input via avx2SpreadPlanesWord.
 *
 * @return the number of words processed from begin_word (the scalar
 *         caller continues from there); 0 when AVX2 is not enabled.
 */
size_t avx2ProductPlanesMulti(const BitstreamView *xs,
                              const WeightBlockView &block,
                              size_t parity_lines, size_t begin_word,
                              size_t end_word, size_t plane_cap,
                              uint64_t *out, size_t lane_stride);

/** Batch-axis (weight-stationary) twin of avx2ProductPlanesMulti; see
 *  avx2ProductCountsMultiBatch for the operand/stride contract. Image
 *  j's planes start at out[j * image_stride]. */
size_t avx2ProductPlanesMultiBatch(const BitstreamView *xs0,
                                   const size_t *x_strides,
                                   const uint32_t *images,
                                   size_t n_images,
                                   const WeightBlockView &block,
                                   size_t parity_lines, size_t begin_word,
                                   size_t end_word, size_t plane_cap,
                                   uint64_t *out, size_t lane_stride,
                                   size_t image_stride);

/**
 * Transpose one word's canonical count planes back into 64 per-cycle
 * uint16 counts: pw[0 .. n_planes) are the planes, pw[n_planes] the
 * parity word; when @p parity is true each count's LSB is replaced by
 * the parity bit (the approximate-counter substitution). Bit-exact
 * with the transposes of the counts kernels. Falls back to a scalar
 * loop when AVX2 is not enabled.
 */
void avx2SpreadPlanesWord(const uint64_t *pw, size_t n_planes,
                          bool parity, uint16_t *out);

/** avx2SpreadPlanesWord for one 16-cycle group of the word (cycles
 *  [group * 16, group * 16 + 16), group < 4), writing 16 counts — the
 *  pooling-segment granularity, so the Figure 8 forwarding never
 *  transposes cycles it does not emit. */
void avx2SpreadPlanesGroup(const uint64_t *pw, size_t n_planes,
                           bool parity, size_t group, uint16_t *out);

/**
 * Precomputed byte weights for avx2PlaneWordSums. Quads start at the
 * first live plane (base = 1 under parity, else 0, so no quad is spent
 * on the substituted plane 0): quad q's 32 weight bytes hold the
 * relative digit values 2^i for planes base + 4q + i (zero for slots
 * past the plane count), and shift[q] = base + 4q rescales the quad's
 * partial sums. Built once per pooling call via planeSumWeightsInit.
 */
struct PlaneSumWeights
{
    uint8_t w[3][32];
    unsigned shift[3];
    size_t base;
    size_t quads;
    size_t n_planes;
    bool parity;
};

/** Fill @p wts for @p n_planes count planes (must be <= 12) with the
 *  parity-word LSB substitution applied when @p parity. */
void planeSumWeightsInit(PlaneSumWeights &wts, size_t n_planes,
                         bool parity);

/**
 * Per-16-cycle-group count sums of one word's planes: accumulates into
 * sums[g] (g < 4) the sum of the word's per-cycle counts over cycles
 * [16g, 16g + 16), i.e. popcount-weighted plane digits (with the
 * parity substitution when wts.parity). One byte-popcount + maddubs
 * pass per 4-plane quad — the Figure 8 selector's segment evidence
 * without materializing any per-cycle counts. The quad loads read
 * whole 4-plane groups, so pw must stay readable for wts.quads * 4
 * words (pad the plane buffer's tail by two words). Falls back to a
 * scalar loop when AVX2 is not enabled.
 */
void avx2PlaneWordSums(const uint64_t *pw, const PlaneSumWeights &wts,
                       uint32_t *sums);

/**
 * avx2PlaneWordSums over @p n_words consecutive plane words of
 * @p n_bufs plane buffers (word q of buffer b at bufs[b] + q * pstride,
 * pstride = planes + parity word): writes — does not accumulate — the
 * four group sums of (b, q) to sums[(b * n_words + q) * 4 + g]. One
 * runtime dispatch for a whole pooling call's sum table instead of one
 * per word. The tail-padding requirement of avx2PlaneWordSums applies
 * to every buffer.
 */
void avx2PlaneWordSumsMulti(const uint64_t *const *bufs, size_t n_bufs,
                            size_t pstride, size_t n_words,
                            const PlaneSumWeights &wts, uint32_t *sums);

/** avx2SpreadPlanesGroup for the same 16-cycle group of @p n plane
 *  words (pws[i] points at one word's planes, the group's counts land
 *  at outs[i][0..16)) — one dispatch per pooling chunk across the
 *  micro-batch. */
void avx2SpreadPlanesGroupMulti(const uint64_t *const *pws, size_t n,
                                size_t n_planes, bool parity,
                                size_t group, uint16_t *const *outs);

/**
 * Popcount reduction over full 4-word groups of the word range
 * [@p begin_word, @p end_word): accumulates the total product popcount
 * plus the all-lines and leading-lines parity popcounts for the
 * covered cycles. The range must contain only full words (the caller
 * keeps the stream's partial tail word for the scalar path).
 *
 * @return the number of words processed from begin_word; 0 when AVX2
 *         is not enabled.
 */
size_t avx2ProductCountTotal(const BitstreamView *xs,
                             const BitstreamView *ws, size_t n,
                             size_t begin_word, size_t end_word,
                             size_t parity_lines, uint64_t *total,
                             uint64_t *exact_lsb_ones,
                             uint64_t *approx_lsb_ones);

/**
 * Sum of @p n uint16 values (the masked pooling segment accumulator),
 * exact for the full uint16 range and any length (lane accumulators
 * are flushed to 64 bits before they can overflow). Falls back to a
 * scalar loop when AVX2 is not enabled.
 */
uint64_t avx2SumU16(const uint16_t *values, size_t n);

/**
 * Binary XNOR-popcount accumulation over the full words of a binary
 * weight block (taps == 1, one packed sign stream per lane): for every
 * full word w (all 64 bits inside block.length) and lane f,
 * popcount(~(x_words[w] ^ lane word)) is added into matches[f]. The
 * partial tail word (its pad bits need masking) stays with the scalar
 * caller, as does initializing matches.
 *
 * @return the number of words processed; 0 when AVX2 is not enabled.
 */
size_t avx2XnorPopcountMulti(const uint64_t *x_words,
                             const WeightBlockView &block,
                             uint32_t *matches);

/**
 * Lane-parallel Btanh batch step: the saturating up/down counter of
 * stream s advances as an int16 lane, 16 streams per register, so the
 * whole micro-batch steps per cycle in a handful of vector ops instead
 * of 16 serial table walks. Stream s consumes counts[s] (one uint16
 * per cycle), writes output words to outs[s], and carries its counter
 * in *states[s] — bit-exact with the scalar saturating step
 * clamp(state + 2c - n_inputs, 0, k - 1), output = state >= k/2.
 *
 * Only whole 64-cycle words are processed; the caller finishes the
 * partial tail word (and masks its pad bits) from the carried states.
 *
 * @return the number of whole words processed per stream; 0 when AVX2
 *         is not enabled or (k, n_inputs) would overflow int16 lanes
 *         (the caller then takes its scalar path for everything).
 */
size_t avx2BtanhWordsBatch(const uint16_t *const *counts, size_t length,
                           uint64_t *const *outs,
                           uint16_t *const *states, size_t n_streams,
                           unsigned k, unsigned n_inputs);

} // namespace simd
} // namespace sc
} // namespace scdcnn

#endif // SCDCNN_SC_SIMD_H
