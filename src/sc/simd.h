/**
 * @file
 * Runtime-dispatched SIMD kernels for the word-parallel hot paths.
 *
 * The portable scalar implementations in sc/fused.cc and
 * blocks/pooling.cc are the always-built default and the correctness
 * oracle; the AVX2 variants here are selected at runtime when the host
 * CPU supports them and must be bit-exact with the scalar paths (the
 * dispatch rule DESIGN.md documents, enforced by tests/test_simd.cc).
 *
 * Kernels:
 *  - avx2ProductCountBlocks: the carry-save bit-plane loop of
 *    fusedProductCounts over blocks of four words (256 cycles) at a
 *    time, including the vectorized plane-to-count transpose;
 *  - avx2ProductCountTotal: the popcount reductions of
 *    fusedProductCountTotal (nibble-LUT shuffle + psadbw);
 *  - avx2SumU16: the segment accumulation of the masked binary
 *    max-pooling kernel.
 *
 * Dispatch: enabled() is true when the binary carries the AVX2 paths,
 * the CPU reports AVX2, and neither SCDCNN_FORCE_SCALAR nor
 * setEnabled(false) turned them off. Callers branch on enabled() and
 * fall back to the scalar path for tails and small sizes.
 */

#ifndef SCDCNN_SC_SIMD_H
#define SCDCNN_SC_SIMD_H

#include <cstddef>
#include <cstdint>

#include "sc/bitstream.h"

namespace scdcnn {
namespace sc {
namespace simd {

/** Whether AVX2 paths were compiled in and the CPU supports them. */
bool available();

/** Whether the AVX2 paths are currently selected: available(), not
 *  disabled via the SCDCNN_FORCE_SCALAR environment variable, and not
 *  turned off with setEnabled(false). */
bool enabled();

/** Test hook: select (true) or bypass (false) the AVX2 paths at
 *  runtime. Enabling when !available() is a no-op. */
void setEnabled(bool on);

/**
 * Carry-save column counts over full 4-word blocks of the operand
 * views: processes words [0, W) where W is the largest multiple of 4
 * with W * 64 <= length, writing counts for cycles [0, W * 64) into
 * @p out. Lines are xs[i] when ws == nullptr, else the XNOR products
 * xs[i] ^~ ws[i]. The approximate-counter LSB (parity of the first
 * @p parity_lines lines) is fused in when parity_lines > 0.
 *
 * @return the number of words processed (the scalar caller continues
 *         from there); 0 when AVX2 is not enabled.
 */
size_t avx2ProductCountBlocks(const BitstreamView *xs,
                              const BitstreamView *ws, size_t n,
                              size_t length, size_t parity_lines,
                              uint16_t *out);

/**
 * Filter-blocked carry-save column counts: for every full word of
 * [@p begin_word, @p end_word) (a word is full when all 64 of its
 * cycles lie inside block.length), XNOR each input word of @p xs
 * against the kFilterLanes weight words of @p block with the filters
 * in the 64-bit vector lanes, so one carry-save plane set serves the
 * whole filter block and each input word is loaded once per block.
 * Counts for lane f, cycle begin_word * 64 + i land at
 * out[f * out_stride + i]; only block.lanes lanes are written. The
 * approximate-counter LSB is fused in when @p parity_lines > 0.
 *
 * @return the number of words processed from begin_word (the scalar
 *         caller continues from there); 0 when AVX2 is not enabled.
 */
size_t avx2ProductCountsMulti(const BitstreamView *xs,
                              const WeightBlockView &block,
                              size_t parity_lines, size_t begin_word,
                              size_t end_word, uint16_t *out,
                              size_t out_stride);

/**
 * Popcount reduction over full 4-word groups of the word range
 * [@p begin_word, @p end_word): accumulates the total product popcount
 * plus the all-lines and leading-lines parity popcounts for the
 * covered cycles. The range must contain only full words (the caller
 * keeps the stream's partial tail word for the scalar path).
 *
 * @return the number of words processed from begin_word; 0 when AVX2
 *         is not enabled.
 */
size_t avx2ProductCountTotal(const BitstreamView *xs,
                             const BitstreamView *ws, size_t n,
                             size_t begin_word, size_t end_word,
                             size_t parity_lines, uint64_t *total,
                             uint64_t *exact_lsb_ones,
                             uint64_t *approx_lsb_ones);

/**
 * Sum of @p n uint16 values (the masked pooling segment accumulator),
 * exact for the full uint16 range and any length (lane accumulators
 * are flushed to 64 bits before they can overflow). Falls back to a
 * scalar loop when AVX2 is not enabled.
 */
uint64_t avx2SumU16(const uint16_t *values, size_t n);

} // namespace simd
} // namespace sc
} // namespace scdcnn

#endif // SCDCNN_SC_SIMD_H
