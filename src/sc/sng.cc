#include "sc/sng.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace scdcnn {
namespace sc {

Bitstream
constantStream(bool v, size_t length)
{
    Bitstream s(length);
    if (v) {
        for (auto &w : s.mutableWords())
            w = ~uint64_t{0};
        s.maskTail();
    }
    return s;
}

Bitstream
sngUnipolar(double p, size_t length, Lfsr &lfsr)
{
    p = std::clamp(p, 0.0, 1.0);
    // LFSR states are uniform over [1, period]; emit 1 iff state <= T.
    const uint64_t period = lfsr.period();
    const auto threshold =
        static_cast<uint64_t>(std::llround(p * static_cast<double>(period)));
    Bitstream s(length);
    auto &words = s.mutableWords();
    for (size_t i = 0; i < length; ++i) {
        if (lfsr.next() <= threshold && threshold > 0)
            words[i / 64] |= uint64_t{1} << (i % 64);
    }
    return s;
}

Bitstream
sngBipolar(double x, size_t length, Lfsr &lfsr)
{
    return sngUnipolar((x + 1.0) / 2.0, length, lfsr);
}

Bitstream
sngUnipolar(double p, size_t length, Xoshiro256ss &rng)
{
    p = std::clamp(p, 0.0, 1.0);
    // Compare 16-bit lanes of each 64-bit draw against a 16-bit
    // threshold: 4 stream bits per generator call. The 1/65536 value
    // quantization is far below stochastic noise at practical lengths.
    const auto threshold =
        static_cast<uint32_t>(std::llround(p * 65536.0));
    Bitstream s(length);
    auto &words = s.mutableWords();
    size_t bit = 0;
    while (bit < length) {
        uint64_t draw = rng.next();
        for (int lane = 0; lane < 4 && bit < length; ++lane, ++bit) {
            uint32_t r = static_cast<uint32_t>(draw >> (16 * lane)) & 0xFFFF;
            if (r < threshold)
                words[bit / 64] |= uint64_t{1} << (bit % 64);
        }
    }
    return s;
}

Bitstream
sngBipolar(double x, size_t length, Xoshiro256ss &rng)
{
    return sngUnipolar((x + 1.0) / 2.0, length, rng);
}

SngBank::SngBank(uint64_t master_seed) : seeder_(master_seed) {}

Bitstream
SngBank::bipolar(double x, size_t length)
{
    Xoshiro256ss rng(seeder_.next());
    return sngBipolar(x, length, rng);
}

Bitstream
SngBank::unipolar(double p, size_t length)
{
    Xoshiro256ss rng(seeder_.next());
    return sngUnipolar(p, length, rng);
}

Xoshiro256ss
SngBank::makeRng()
{
    return Xoshiro256ss(seeder_.next());
}

} // namespace sc
} // namespace scdcnn
