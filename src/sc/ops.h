/**
 * @file
 * Gate-level stochastic arithmetic (Section 3.2, Figures 4 and 5).
 *
 * Multiplication:
 *  - unipolar: AND gate, P(A&B) = P(A)P(B) for independent streams;
 *  - bipolar:  XNOR gate, c = a*b.
 *
 * Addition:
 *  - OR gate:  cheapest, lossy ("1 OR 1" yields a single 1);
 *  - MUX:      selects one input per cycle, output = (1/n) * sum;
 *  - (APC and the two-line adder live in counter.h / two_line.h).
 */

#ifndef SCDCNN_SC_OPS_H
#define SCDCNN_SC_OPS_H

#include <vector>

#include "sc/bitstream.h"
#include "sc/rng.h"

namespace scdcnn {
namespace sc {

/** Unipolar multiply: AND gate. */
Bitstream andMultiply(const Bitstream &a, const Bitstream &b);

/** Bipolar multiply: XNOR gate. */
Bitstream xnorMultiply(const Bitstream &a, const Bitstream &b);

/** OR-gate addition over any number of operands. */
Bitstream orAdd(const std::vector<Bitstream> &inputs);

/**
 * MUX-based scaled addition: each cycle one input is selected uniformly
 * at random; the output encodes (1/n) * sum of the operands.
 */
Bitstream muxAdd(const std::vector<Bitstream> &inputs, Xoshiro256ss &rng);

/**
 * MUX addition with precomputed select indices (one per cycle) so a
 * hardware select-line source can be modeled explicitly.
 */
Bitstream muxAddWithSelects(const std::vector<Bitstream> &inputs,
                            const std::vector<uint32_t> &selects);

/**
 * Stochastic cross-correlation (SCC) of two streams, in [-1, 1].
 *
 * 0 means independent-looking, +1 maximally overlapped, -1 maximally
 * anti-overlapped. Used to quantify how RNG sharing degrades accuracy.
 */
double scc(const Bitstream &a, const Bitstream &b);

} // namespace sc
} // namespace scdcnn

#endif // SCDCNN_SC_OPS_H
