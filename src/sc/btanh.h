/**
 * @file
 * Btanh: the binary-input tanh unit for APC-based blocks (Section 4.3).
 *
 * Where Stanh consumes a single stochastic bit per cycle, Btanh consumes
 * the binary column count v in [0, n] produced by an (approximate)
 * parallel counter and converts it back to a stochastic output stream
 * using a saturated up/down counter (Kim et al., DAC'16): each cycle the
 * counter moves by the signed bipolar sum 2v - n and the output is 1
 * while the counter sits in its upper half.
 *
 * State-count selection:
 *  - directly attached to an APC (no pooling, or max pooling which
 *    selects one APC's output): K ~= 2N — the original DAC'16 sizing,
 *    which makes the unit compute tanh(s) for the non-scaled inner
 *    product s (diffusion argument: drift s, variance ~N per cycle);
 *  - behind a 4-way binary average pooling stage the per-cycle variance
 *    drops 4x, giving the paper's re-formulated Eq. (3): K ~= N/2.
 */

#ifndef SCDCNN_SC_BTANH_H
#define SCDCNN_SC_BTANH_H

#include <cstdint>
#include <vector>

#include "sc/bitstream.h"

namespace scdcnn {
namespace sc {

/**
 * Saturated up/down counter tanh for binary (APC) inputs.
 */
class Btanh
{
  public:
    /**
     * @param k        number of counter states (even, >= 2)
     * @param n_inputs the APC input count n, so a column count v maps to
     *                 the signed step 2v - n
     */
    Btanh(unsigned k, unsigned n_inputs);

    /** Consume one binary count, emit one output bit. */
    bool step(int count);

    /** Apply a raw signed counter delta (already 2v - n), emit a bit. */
    bool applyDelta(int delta);

    /** Transform a whole count sequence into an output stream. */
    Bitstream transform(const std::vector<uint16_t> &counts);

    /** Transform counts that were already converted to signed steps. */
    Bitstream transformSigned(const std::vector<int> &steps);

    /** Reset the counter to its midpoint. */
    void reset();

    /** State count K. */
    unsigned k() const { return k_; }

    /** Eq. (3): state count for APC-Avg-Btanh, nearest even of N/2. */
    static unsigned stateCountAvgPool(unsigned n_inputs);

    /** Original DAC'16 sizing for a directly-attached APC: nearest even
     *  of 2N (also used after binary max pooling). */
    static unsigned stateCountDirect(unsigned n_inputs);

  private:
    unsigned k_;
    unsigned n_inputs_;
    int state_;
};

/** Round to the nearest even integer, minimum 2 (used by all the
 *  empirical state-count equations). */
unsigned nearestEvenState(double value);

} // namespace sc
} // namespace scdcnn

#endif // SCDCNN_SC_BTANH_H
