#include "sc/btanh.h"

#include <cmath>

#include "common/logging.h"

namespace scdcnn {
namespace sc {

unsigned
nearestEvenState(double value)
{
    auto k = static_cast<long>(std::llround(value / 2.0)) * 2;
    if (k < 2)
        k = 2;
    return static_cast<unsigned>(k);
}

Btanh::Btanh(unsigned k, unsigned n_inputs) : k_(k), n_inputs_(n_inputs)
{
    if (k_ < 2)
        fatal("Btanh needs at least 2 states, got %u", k_);
    state_ = static_cast<int>(k_ / 2);
}

bool
Btanh::applyDelta(int delta)
{
    state_ += delta;
    if (state_ < 0)
        state_ = 0;
    if (state_ > static_cast<int>(k_) - 1)
        state_ = static_cast<int>(k_) - 1;
    return state_ >= static_cast<int>(k_ / 2);
}

bool
Btanh::step(int count)
{
    return applyDelta(2 * count - static_cast<int>(n_inputs_));
}

Bitstream
Btanh::transform(const std::vector<uint16_t> &counts)
{
    Bitstream out(counts.size());
    auto &words = out.mutableWords();
    for (size_t i = 0; i < counts.size(); ++i) {
        if (step(static_cast<int>(counts[i])))
            words[i / 64] |= uint64_t{1} << (i % 64);
    }
    return out;
}

Bitstream
Btanh::transformSigned(const std::vector<int> &steps)
{
    Bitstream out(steps.size());
    auto &words = out.mutableWords();
    for (size_t i = 0; i < steps.size(); ++i) {
        if (applyDelta(steps[i]))
            words[i / 64] |= uint64_t{1} << (i % 64);
    }
    return out;
}

void
Btanh::reset()
{
    state_ = static_cast<int>(k_ / 2);
}

unsigned
Btanh::stateCountAvgPool(unsigned n_inputs)
{
    return nearestEvenState(static_cast<double>(n_inputs) / 2.0);
}

unsigned
Btanh::stateCountDirect(unsigned n_inputs)
{
    return nearestEvenState(2.0 * static_cast<double>(n_inputs));
}

} // namespace sc
} // namespace scdcnn
