#include "sc/simd.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "common/logging.h"
#include "sc/fused.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define SCDCNN_SIMD_X86 1
#include <immintrin.h>
#else
#define SCDCNN_SIMD_X86 0
#endif

namespace scdcnn {
namespace sc {
namespace simd {

namespace {

/** -1 = not yet decided, 0 = scalar, 1 = AVX2. */
std::atomic<int> g_enabled{-1};

/** SCDCNN_FORCE_SCALAR forces the scalar path when set to anything
 *  but empty or "0" (so FORCE_SCALAR=0 keeps AVX2 selected). */
bool
forcedScalar()
{
    const char *v = std::getenv("SCDCNN_FORCE_SCALAR");
    return v != nullptr && *v != '\0' && !(v[0] == '0' && v[1] == '\0');
}

int
decide()
{
    const int on = available() && !forcedScalar() ? 1 : 0;
    g_enabled.store(on, std::memory_order_relaxed);
    return on;
}

} // namespace

bool
available()
{
#if SCDCNN_SIMD_X86
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

bool
enabled()
{
    int state = g_enabled.load(std::memory_order_relaxed);
    if (state < 0)
        state = decide();
    return state == 1;
}

void
setEnabled(bool on)
{
    g_enabled.store(on && available() ? 1 : 0, std::memory_order_relaxed);
}

#if SCDCNN_SIMD_X86

namespace {

/** Per-byte popcount: nibble lookup via PSHUFB. */
__attribute__((target("avx2"))) inline __m256i
popcountBytes(__m256i v)
{
    const __m256i lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2,
        2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i nibble = _mm256_set1_epi8(0x0F);
    const __m256i lo = _mm256_and_si256(v, nibble);
    const __m256i hi =
        _mm256_and_si256(_mm256_srli_epi16(v, 4), nibble);
    return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                           _mm256_shuffle_epi8(lut, hi));
}

/** Sum of the four 64-bit lanes. */
__attribute__((target("avx2"))) inline uint64_t
horizontalSum64(__m256i v)
{
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), v);
    return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

/** Expand 16 bits into 16 uint16 lanes of 0/1 scaled by @p weight. */
__attribute__((target("avx2"))) inline __m256i
spreadBits16(uint16_t bits, __m256i lane_bit, short weight)
{
    const __m256i v = _mm256_set1_epi16(static_cast<short>(bits));
    const __m256i m =
        _mm256_cmpeq_epi16(_mm256_and_si256(v, lane_bit), lane_bit);
    return _mm256_and_si256(m, _mm256_set1_epi16(weight));
}

// --- branch-free carry-save adder tree --------------------------------
//
// The serial plane insertion of avx2ProductCountBlocks costs one
// carry-propagation walk per line whose vectorized trip count is the
// MAXIMUM trailing-carry length over all 256 bit columns (measured ~6
// data-dependent iterations per line on network streams, each with a
// testz + branch). The filter-blocked kernel instead reduces lines
// through a balanced compressor tree with a fixed operation schedule:
// 16 lines fold into 5 bit-planes in 87 bitwise ops (~5.4 per line),
// and each folded block ripple-adds into the running plane accumulator.
// No data-dependent branches survive in the hot loop.

/** a + b over @p k bit-planes with carry-in 0; planes a[0..k) are
 *  replaced by the sum, the carry out of plane k-1 is returned. */
__attribute__((target("avx2"))) inline __m256i
addPlanesK(__m256i *a, const __m256i *b, int k)
{
    // First full adder has no carry-in: 2 ops instead of 5.
    __m256i carry = _mm256_and_si256(a[0], b[0]);
    a[0] = _mm256_xor_si256(a[0], b[0]);
    for (int j = 1; j < k; ++j) {
        const __m256i t = _mm256_xor_si256(a[j], b[j]);
        const __m256i g = _mm256_and_si256(a[j], b[j]);
        a[j] = _mm256_xor_si256(t, carry);
        carry = _mm256_or_si256(g, _mm256_and_si256(t, carry));
    }
    return carry;
}

/** Fold 16 product lines into the 5 bit-planes of their column sums. */
__attribute__((target("avx2"))) inline void
reduce16(const __m256i p[16], __m256i out[5])
{
    __m256i s[8], c[8];
    for (int i = 0; i < 8; ++i) {
        s[i] = _mm256_xor_si256(p[2 * i], p[2 * i + 1]);
        c[i] = _mm256_and_si256(p[2 * i], p[2 * i + 1]);
    }
    // Two 2-bit sums -> one 3-bit sum, four times (planes s,c -> a0..a2).
    __m256i a0[4], a1[4], a2[4];
    for (int i = 0; i < 4; ++i) {
        const __m256i g0 = _mm256_and_si256(s[2 * i], s[2 * i + 1]);
        a0[i] = _mm256_xor_si256(s[2 * i], s[2 * i + 1]);
        const __m256i t1 = _mm256_xor_si256(c[2 * i], c[2 * i + 1]);
        a1[i] = _mm256_xor_si256(t1, g0);
        a2[i] = _mm256_or_si256(_mm256_and_si256(c[2 * i], c[2 * i + 1]),
                                _mm256_and_si256(t1, g0));
    }
    // Two 3-bit sums -> one 4-bit sum, twice.
    __m256i lo[4], hi[4];
    for (int i = 0; i < 2; ++i) {
        __m256i *dst = i == 0 ? lo : hi;
        dst[0] = a0[2 * i];
        dst[1] = a1[2 * i];
        dst[2] = a2[2 * i];
        const __m256i rhs[3] = {a0[2 * i + 1], a1[2 * i + 1],
                                a2[2 * i + 1]};
        dst[3] = addPlanesK(dst, rhs, 3);
    }
    // The final pair: 4-bit + 4-bit -> 5 planes.
    out[0] = lo[0];
    out[1] = lo[1];
    out[2] = lo[2];
    out[3] = lo[3];
    out[4] = addPlanesK(out, hi, 4);
}

} // namespace

__attribute__((target("avx2"))) size_t
avx2ProductCountBlocks(const BitstreamView *xs, const BitstreamView *ws,
                       size_t n, size_t length, size_t parity_lines,
                       uint16_t *out)
{
    if (!enabled())
        return 0;
    const size_t n_full_words = (length / 256) * 4;
    const __m256i all_ones = _mm256_set1_epi8(-1);
    const __m256i lane_bit = _mm256_setr_epi16(
        1 << 0, 1 << 1, 1 << 2, 1 << 3, 1 << 4, 1 << 5, 1 << 6, 1 << 7,
        1 << 8, 1 << 9, 1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14,
        static_cast<short>(1 << 15));

    for (size_t w = 0; w < n_full_words; w += 4) {
        __m256i planes[kMaxCarrySavePlanes];
        __m256i lsb = _mm256_setzero_si256();
        int used = 0;
        for (size_t i = 0; i < n; ++i) {
            __m256i carry = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(xs[i].words + w));
            if (ws != nullptr) {
                const __m256i wv = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(ws[i].words + w));
                carry = _mm256_xor_si256(_mm256_xor_si256(carry, wv),
                                         all_ones);
            }
            if (i < parity_lines)
                lsb = _mm256_xor_si256(lsb, carry);
            int j = 0;
            while (!_mm256_testz_si256(carry, carry)) {
                SCDCNN_ASSERT(j < kMaxCarrySavePlanes,
                              "too many input streams");
                if (j == used) {
                    planes[used++] = carry;
                    break;
                }
                const __m256i t = _mm256_and_si256(planes[j], carry);
                planes[j] = _mm256_xor_si256(planes[j], carry);
                carry = t;
                ++j;
            }
        }

        alignas(32) uint64_t pw[kMaxCarrySavePlanes][4];
        for (int j = 0; j < used; ++j)
            _mm256_store_si256(reinterpret_cast<__m256i *>(pw[j]),
                               planes[j]);
        alignas(32) uint64_t lw[4];
        _mm256_store_si256(reinterpret_cast<__m256i *>(lw), lsb);

        // Transpose plane bits into per-cycle counts, 16 lanes at a
        // time: lane l of a group holds bit (g*16 + l) of each plane.
        for (int lane = 0; lane < 4; ++lane) {
            for (int g = 0; g < 4; ++g) {
                __m256i acc = _mm256_setzero_si256();
                for (int j = 0; j < used; ++j) {
                    const auto bits = static_cast<uint16_t>(
                        pw[j][lane] >> (g * 16));
                    acc = _mm256_or_si256(
                        acc, spreadBits16(bits, lane_bit,
                                          static_cast<short>(1 << j)));
                }
                if (parity_lines > 0) {
                    const auto bits =
                        static_cast<uint16_t>(lw[lane] >> (g * 16));
                    acc = _mm256_or_si256(
                        _mm256_and_si256(
                            acc, _mm256_set1_epi16(
                                     static_cast<short>(~1))),
                        spreadBits16(bits, lane_bit, 1));
                }
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i *>(
                        out + (w + static_cast<size_t>(lane)) * 64 +
                        static_cast<size_t>(g) * 16),
                    acc);
            }
        }
    }
    return n_full_words;
}

__attribute__((target("avx2"))) size_t
avx2ProductCountsMulti(const BitstreamView *xs, const WeightBlockView &block,
                       size_t parity_lines, size_t begin_word,
                       size_t end_word, uint16_t *out, size_t out_stride)
{
    if (!enabled())
        return 0;
    // Full words only: the stream's partial tail word (if the range
    // reaches it) stays with the scalar path, so no tail masking is
    // needed here.
    const size_t full_end =
        std::min(end_word, block.length / 64);
    if (full_end <= begin_word)
        return 0;
    const size_t n = block.taps;
    const __m256i all_ones = _mm256_set1_epi8(-1);
    const __m256i lane_bit = _mm256_setr_epi16(
        1 << 0, 1 << 1, 1 << 2, 1 << 3, 1 << 4, 1 << 5, 1 << 6, 1 << 7,
        1 << 8, 1 << 9, 1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14,
        static_cast<short>(1 << 15));

    for (size_t w = begin_word; w < full_end; ++w) {
        // One plane set serves the whole filter block: 64-bit lane f of
        // each plane vector holds filter f's carry-save plane for this
        // word. Input words broadcast once; the block's weight words
        // for (w, tap) are one contiguous vector load. Lines fold
        // through the fixed-schedule compressor tree 16 at a time; the
        // leftovers take the serial plane insertion.
        __m256i planes[kMaxCarrySavePlanes];
        __m256i lsb = _mm256_setzero_si256();
        int used = 0;
        const uint64_t *wrow = block.at(w, 0);
        __m256i prod[16];
        size_t i = 0;
        for (; i + 16 <= n; i += 16, wrow += 16 * kFilterLanes) {
            for (int r = 0; r < 16; ++r) {
                const __m256i xv = _mm256_set1_epi64x(
                    static_cast<long long>(xs[i + r].words[w]));
                const __m256i wv = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(
                        wrow + static_cast<size_t>(r) * kFilterLanes));
                prod[r] = _mm256_xor_si256(_mm256_xor_si256(xv, wv),
                                           all_ones);
            }
            for (size_t t = i; t < parity_lines; ++t)
                lsb = _mm256_xor_si256(lsb, prod[t - i]);
            __m256i folded[5];
            reduce16(prod, folded);
            if (used == 0) {
                for (int j = 0; j < 5; ++j)
                    planes[j] = folded[j];
                used = 5;
            } else {
                __m256i carry = addPlanesK(planes, folded, 5);
                int j = 5;
                while (!_mm256_testz_si256(carry, carry)) {
                    SCDCNN_ASSERT(j < kMaxCarrySavePlanes,
                                  "too many input streams");
                    if (j == used) {
                        planes[used++] = carry;
                        break;
                    }
                    const __m256i t = _mm256_and_si256(planes[j], carry);
                    planes[j] = _mm256_xor_si256(planes[j], carry);
                    carry = t;
                    ++j;
                }
            }
        }
        for (; i < n; ++i, wrow += kFilterLanes) {
            const __m256i xv =
                _mm256_set1_epi64x(static_cast<long long>(xs[i].words[w]));
            const __m256i wv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(wrow));
            __m256i carry = _mm256_xor_si256(_mm256_xor_si256(xv, wv),
                                             all_ones);
            if (i < parity_lines)
                lsb = _mm256_xor_si256(lsb, carry);
            int j = 0;
            while (!_mm256_testz_si256(carry, carry)) {
                SCDCNN_ASSERT(j < kMaxCarrySavePlanes,
                              "too many input streams");
                if (j == used) {
                    planes[used++] = carry;
                    break;
                }
                const __m256i t = _mm256_and_si256(planes[j], carry);
                planes[j] = _mm256_xor_si256(planes[j], carry);
                carry = t;
                ++j;
            }
        }

        alignas(32) uint64_t pw[kMaxCarrySavePlanes][4];
        for (int j = 0; j < used; ++j)
            _mm256_store_si256(reinterpret_cast<__m256i *>(pw[j]),
                               planes[j]);
        alignas(32) uint64_t lw[4];
        _mm256_store_si256(reinterpret_cast<__m256i *>(lw), lsb);

        // Per real lane (filter), transpose that lane's plane bits into
        // 64 per-cycle counts, 16 at a time.
        const size_t out_base = (w - begin_word) * 64;
        for (size_t f = 0; f < block.lanes; ++f) {
            for (int g = 0; g < 4; ++g) {
                __m256i acc = _mm256_setzero_si256();
                for (int j = 0; j < used; ++j) {
                    const auto bits =
                        static_cast<uint16_t>(pw[j][f] >> (g * 16));
                    acc = _mm256_or_si256(
                        acc, spreadBits16(bits, lane_bit,
                                          static_cast<short>(1 << j)));
                }
                if (parity_lines > 0) {
                    const auto bits =
                        static_cast<uint16_t>(lw[f] >> (g * 16));
                    acc = _mm256_or_si256(
                        _mm256_and_si256(
                            acc, _mm256_set1_epi16(
                                     static_cast<short>(~1))),
                        spreadBits16(bits, lane_bit, 1));
                }
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i *>(
                        out + f * out_stride + out_base +
                        static_cast<size_t>(g) * 16),
                    acc);
            }
        }
    }
    return full_end - begin_word;
}

__attribute__((target("avx2"))) size_t
avx2ProductCountTotal(const BitstreamView *xs, const BitstreamView *ws,
                      size_t n, size_t begin_word, size_t end_word,
                      size_t parity_lines, uint64_t *total,
                      uint64_t *exact_lsb_ones, uint64_t *approx_lsb_ones)
{
    if (!enabled())
        return 0;
    const size_t n_full_words =
        end_word > begin_word ? ((end_word - begin_word) / 4) * 4 : 0;
    const __m256i all_ones = _mm256_set1_epi8(-1);
    const __m256i zero = _mm256_setzero_si256();

    __m256i total_acc = zero;
    __m256i exact_acc = zero;
    __m256i approx_acc = zero;
    for (size_t w = begin_word; w < begin_word + n_full_words; w += 4) {
        __m256i parity_all = zero;
        __m256i parity_leading = zero;
        for (size_t i = 0; i < n; ++i) {
            const __m256i xv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(xs[i].words + w));
            const __m256i wv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(ws[i].words + w));
            const __m256i product = _mm256_xor_si256(
                _mm256_xor_si256(xv, wv), all_ones);
            total_acc = _mm256_add_epi64(
                total_acc, _mm256_sad_epu8(popcountBytes(product), zero));
            parity_all = _mm256_xor_si256(parity_all, product);
            if (i < parity_lines)
                parity_leading = _mm256_xor_si256(parity_leading, product);
        }
        exact_acc = _mm256_add_epi64(
            exact_acc, _mm256_sad_epu8(popcountBytes(parity_all), zero));
        approx_acc = _mm256_add_epi64(
            approx_acc,
            _mm256_sad_epu8(popcountBytes(parity_leading), zero));
    }
    *total += horizontalSum64(total_acc);
    *exact_lsb_ones += horizontalSum64(exact_acc);
    *approx_lsb_ones += horizontalSum64(approx_acc);
    return n_full_words;
}

__attribute__((target("avx2"))) static uint64_t
avx2SumU16Impl(const uint16_t *values, size_t n)
{
    const __m256i zero = _mm256_setzero_si256();
    uint64_t sum = 0;
    size_t i = 0;
    while (i + 16 <= n) {
        // Zero-extend to 32-bit lanes (full uint16 range) and flush
        // the lane accumulators to 64 bits before they can overflow:
        // each of the 8 lanes gains at most 2 * 65535 per iteration,
        // so 2^14 iterations stay under 2^31.
        __m256i acc = zero;
        const size_t chunk_end =
            std::min(n - (n - i) % 16, i + (size_t{1} << 14) * 16);
        for (; i + 16 <= chunk_end; i += 16) {
            const __m256i v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(values + i));
            acc = _mm256_add_epi32(acc,
                                   _mm256_unpacklo_epi16(v, zero));
            acc = _mm256_add_epi32(acc,
                                   _mm256_unpackhi_epi16(v, zero));
        }
        alignas(32) uint32_t lanes[8];
        _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
        for (uint32_t l : lanes)
            sum += l;
    }
    for (; i < n; ++i)
        sum += values[i];
    return sum;
}

uint64_t
avx2SumU16(const uint16_t *values, size_t n)
{
    if (!enabled() || n < 32) {
        uint64_t sum = 0;
        for (size_t i = 0; i < n; ++i)
            sum += values[i];
        return sum;
    }
    return avx2SumU16Impl(values, n);
}

#else // !SCDCNN_SIMD_X86

size_t
avx2ProductCountBlocks(const BitstreamView *, const BitstreamView *,
                       size_t, size_t, size_t, uint16_t *)
{
    return 0;
}

size_t
avx2ProductCountsMulti(const BitstreamView *, const WeightBlockView &,
                       size_t, size_t, size_t, uint16_t *, size_t)
{
    return 0;
}

size_t
avx2ProductCountTotal(const BitstreamView *, const BitstreamView *, size_t,
                      size_t, size_t, size_t, uint64_t *, uint64_t *,
                      uint64_t *)
{
    return 0;
}

uint64_t
avx2SumU16(const uint16_t *values, size_t n)
{
    uint64_t sum = 0;
    for (size_t i = 0; i < n; ++i)
        sum += values[i];
    return sum;
}

#endif // SCDCNN_SIMD_X86

} // namespace simd
} // namespace sc
} // namespace scdcnn
