#include "sc/simd.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "common/logging.h"
#include "sc/fused.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define SCDCNN_SIMD_X86 1
#include <immintrin.h>
#else
#define SCDCNN_SIMD_X86 0
#endif

namespace scdcnn {
namespace sc {
namespace simd {

namespace {

/** -1 = not yet decided, 0 = scalar, 1 = AVX2. */
std::atomic<int> g_enabled{-1};

/** SCDCNN_FORCE_SCALAR forces the scalar path when set to anything
 *  but empty or "0" (so FORCE_SCALAR=0 keeps AVX2 selected). */
bool
forcedScalar()
{
    const char *v = std::getenv("SCDCNN_FORCE_SCALAR");
    return v != nullptr && *v != '\0' && !(v[0] == '0' && v[1] == '\0');
}

int
decide()
{
    const int on = available() && !forcedScalar() ? 1 : 0;
    g_enabled.store(on, std::memory_order_relaxed);
    return on;
}

} // namespace

bool
available()
{
#if SCDCNN_SIMD_X86
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

bool
enabled()
{
    int state = g_enabled.load(std::memory_order_relaxed);
    if (state < 0)
        state = decide();
    return state == 1;
}

void
setEnabled(bool on)
{
    g_enabled.store(on && available() ? 1 : 0, std::memory_order_relaxed);
}

void
planeSumWeightsInit(PlaneSumWeights &wts, size_t n_planes, bool parity)
{
    SCDCNN_ASSERT(n_planes <= 12, "plane count %zu exceeds the 3-quad "
                                  "weight table",
                  n_planes);
    wts.n_planes = n_planes;
    wts.parity = parity;
    wts.base = parity ? 1 : 0;
    wts.quads =
        n_planes > wts.base ? (n_planes - wts.base + 3) / 4 : 0;
    for (size_t q = 0; q < 3; ++q) {
        wts.shift[q] = static_cast<unsigned>(wts.base + 4 * q);
        for (size_t b = 0; b < 32; ++b)
            wts.w[q][b] = 0;
    }
    for (size_t p = wts.base; p < n_planes; ++p) {
        const size_t i = p - wts.base;
        for (size_t b = 0; b < 8; ++b)
            wts.w[i / 4][(i % 4) * 8 + b] =
                static_cast<uint8_t>(1u << (i % 4));
    }
}

namespace {

/** Scalar twin of the avx2PlaneWordSums reduction. */
void
planeWordSumsScalar(const uint64_t *pw, const PlaneSumWeights &wts,
                    uint32_t *sums)
{
    for (size_t p = wts.parity ? 1 : 0; p < wts.n_planes; ++p) {
        const uint64_t v = pw[p];
        for (size_t g = 0; g < 4; ++g)
            sums[g] += static_cast<uint32_t>(__builtin_popcountll(
                           (v >> (16 * g)) & 0xFFFF))
                       << p;
    }
    if (wts.parity) {
        const uint64_t lsb = pw[wts.n_planes];
        for (size_t g = 0; g < 4; ++g)
            sums[g] += static_cast<uint32_t>(
                __builtin_popcountll((lsb >> (16 * g)) & 0xFFFF));
    }
}

/** Scalar twin of the avx2SpreadPlanesGroup transpose. */
void
spreadPlanesGroupScalar(const uint64_t *pw, size_t n_planes, bool parity,
                        size_t group, uint16_t *out)
{
    for (size_t i = 0; i < 16; ++i) {
        const size_t b = group * 16 + i;
        uint16_t c = 0;
        for (size_t j = 0; j < n_planes; ++j)
            c |= static_cast<uint16_t>((pw[j] >> b) & 1) << j;
        if (parity)
            c = static_cast<uint16_t>(
                (c & ~uint16_t{1}) |
                static_cast<uint16_t>((pw[n_planes] >> b) & 1));
        out[i] = c;
    }
}

} // namespace

#if SCDCNN_SIMD_X86

namespace {

/** Per-byte popcount: nibble lookup via PSHUFB. */
__attribute__((target("avx2"))) inline __m256i
popcountBytes(__m256i v)
{
    const __m256i lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2,
        2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i nibble = _mm256_set1_epi8(0x0F);
    const __m256i lo = _mm256_and_si256(v, nibble);
    const __m256i hi =
        _mm256_and_si256(_mm256_srli_epi16(v, 4), nibble);
    return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                           _mm256_shuffle_epi8(lut, hi));
}

/** Sum of the four 64-bit lanes. */
__attribute__((target("avx2"))) inline uint64_t
horizontalSum64(__m256i v)
{
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), v);
    return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

/** Expand 16 bits into 16 uint16 lanes of 0/1 scaled by @p weight. */
__attribute__((target("avx2"))) inline __m256i
spreadBits16(uint16_t bits, __m256i lane_bit, short weight)
{
    const __m256i v = _mm256_set1_epi16(static_cast<short>(bits));
    const __m256i m =
        _mm256_cmpeq_epi16(_mm256_and_si256(v, lane_bit), lane_bit);
    return _mm256_and_si256(m, _mm256_set1_epi16(weight));
}

// --- branch-free carry-save adder tree --------------------------------
//
// The serial plane insertion of avx2ProductCountBlocks costs one
// carry-propagation walk per line whose vectorized trip count is the
// MAXIMUM trailing-carry length over all 256 bit columns (measured ~6
// data-dependent iterations per line on network streams, each with a
// testz + branch). The filter-blocked kernel instead reduces lines
// through a balanced compressor tree with a fixed operation schedule:
// 16 lines fold into 5 bit-planes in 87 bitwise ops (~5.4 per line),
// and each folded block ripple-adds into the running plane accumulator.
// No data-dependent branches survive in the hot loop.

/** a + b over @p k bit-planes with carry-in 0; planes a[0..k) are
 *  replaced by the sum, the carry out of plane k-1 is returned. */
__attribute__((target("avx2"))) inline __m256i
addPlanesK(__m256i *a, const __m256i *b, int k)
{
    // First full adder has no carry-in: 2 ops instead of 5.
    __m256i carry = _mm256_and_si256(a[0], b[0]);
    a[0] = _mm256_xor_si256(a[0], b[0]);
    for (int j = 1; j < k; ++j) {
        const __m256i t = _mm256_xor_si256(a[j], b[j]);
        const __m256i g = _mm256_and_si256(a[j], b[j]);
        a[j] = _mm256_xor_si256(t, carry);
        carry = _mm256_or_si256(g, _mm256_and_si256(t, carry));
    }
    return carry;
}

/**
 * Layers 2+ of the 16-line fold: eight (sum, carry) pairs — the first
 * half-adder layer over consecutive product-line pairs — reduce into
 * the 5 bit-planes of the 16 lines' column sums. The first layer is
 * split out so the fold loops can compute it as the products are
 * generated: two product lines at a time stay in registers, instead of
 * 16 live ymm values that the compiler must spill around the tree.
 */
__attribute__((target("avx2"))) inline void
reduce16Pairs(const __m256i s[8], const __m256i c[8], __m256i out[5])
{
    // Two 2-bit sums -> one 3-bit sum, four times (planes s,c -> a0..a2).
    __m256i a0[4], a1[4], a2[4];
    for (int i = 0; i < 4; ++i) {
        const __m256i g0 = _mm256_and_si256(s[2 * i], s[2 * i + 1]);
        a0[i] = _mm256_xor_si256(s[2 * i], s[2 * i + 1]);
        const __m256i t1 = _mm256_xor_si256(c[2 * i], c[2 * i + 1]);
        a1[i] = _mm256_xor_si256(t1, g0);
        a2[i] = _mm256_or_si256(_mm256_and_si256(c[2 * i], c[2 * i + 1]),
                                _mm256_and_si256(t1, g0));
    }
    // Two 3-bit sums -> one 4-bit sum, twice.
    __m256i lo[4], hi[4];
    for (int i = 0; i < 2; ++i) {
        __m256i *dst = i == 0 ? lo : hi;
        dst[0] = a0[2 * i];
        dst[1] = a1[2 * i];
        dst[2] = a2[2 * i];
        const __m256i rhs[3] = {a0[2 * i + 1], a1[2 * i + 1],
                                a2[2 * i + 1]};
        dst[3] = addPlanesK(dst, rhs, 3);
    }
    // The final pair: 4-bit + 4-bit -> 5 planes.
    out[0] = lo[0];
    out[1] = lo[1];
    out[2] = lo[2];
    out[3] = lo[3];
    out[4] = addPlanesK(out, hi, 4);
}

} // namespace

__attribute__((target("avx2"))) size_t
avx2ProductCountBlocks(const BitstreamView *xs, const BitstreamView *ws,
                       size_t n, size_t length, size_t parity_lines,
                       uint16_t *out)
{
    if (!enabled())
        return 0;
    const size_t n_full_words = (length / 256) * 4;
    const __m256i all_ones = _mm256_set1_epi8(-1);
    const __m256i lane_bit = _mm256_setr_epi16(
        1 << 0, 1 << 1, 1 << 2, 1 << 3, 1 << 4, 1 << 5, 1 << 6, 1 << 7,
        1 << 8, 1 << 9, 1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14,
        static_cast<short>(1 << 15));

    for (size_t w = 0; w < n_full_words; w += 4) {
        __m256i planes[kMaxCarrySavePlanes];
        __m256i lsb = _mm256_setzero_si256();
        int used = 0;
        for (size_t i = 0; i < n; ++i) {
            __m256i carry = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(xs[i].words + w));
            if (ws != nullptr) {
                const __m256i wv = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(ws[i].words + w));
                carry = _mm256_xor_si256(_mm256_xor_si256(carry, wv),
                                         all_ones);
            }
            if (i < parity_lines)
                lsb = _mm256_xor_si256(lsb, carry);
            int j = 0;
            while (!_mm256_testz_si256(carry, carry)) {
                SCDCNN_ASSERT(j < kMaxCarrySavePlanes,
                              "too many input streams");
                if (j == used) {
                    planes[used++] = carry;
                    break;
                }
                const __m256i t = _mm256_and_si256(planes[j], carry);
                planes[j] = _mm256_xor_si256(planes[j], carry);
                carry = t;
                ++j;
            }
        }

        alignas(32) uint64_t pw[kMaxCarrySavePlanes][4];
        for (int j = 0; j < used; ++j)
            _mm256_store_si256(reinterpret_cast<__m256i *>(pw[j]),
                               planes[j]);
        alignas(32) uint64_t lw[4];
        _mm256_store_si256(reinterpret_cast<__m256i *>(lw), lsb);

        // Transpose plane bits into per-cycle counts, 16 lanes at a
        // time: lane l of a group holds bit (g*16 + l) of each plane.
        for (int lane = 0; lane < 4; ++lane) {
            for (int g = 0; g < 4; ++g) {
                __m256i acc = _mm256_setzero_si256();
                for (int j = 0; j < used; ++j) {
                    const auto bits = static_cast<uint16_t>(
                        pw[j][lane] >> (g * 16));
                    acc = _mm256_or_si256(
                        acc, spreadBits16(bits, lane_bit,
                                          static_cast<short>(1 << j)));
                }
                if (parity_lines > 0) {
                    const auto bits =
                        static_cast<uint16_t>(lw[lane] >> (g * 16));
                    acc = _mm256_or_si256(
                        _mm256_and_si256(
                            acc, _mm256_set1_epi16(
                                     static_cast<short>(~1))),
                        spreadBits16(bits, lane_bit, 1));
                }
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i *>(
                        out + (w + static_cast<size_t>(lane)) * 64 +
                        static_cast<size_t>(g) * 16),
                    acc);
            }
        }
    }
    return n_full_words;
}

__attribute__((target("avx2"))) size_t
avx2ProductCountsMulti(const BitstreamView *xs, const WeightBlockView &block,
                       size_t parity_lines, size_t begin_word,
                       size_t end_word, uint16_t *out, size_t out_stride)
{
    if (!enabled())
        return 0;
    // Full words only: the stream's partial tail word (if the range
    // reaches it) stays with the scalar path, so no tail masking is
    // needed here.
    const size_t full_end =
        std::min(end_word, block.length / 64);
    if (full_end <= begin_word)
        return 0;
    const size_t n = block.taps;
    const __m256i all_ones = _mm256_set1_epi8(-1);
    const __m256i lane_bit = _mm256_setr_epi16(
        1 << 0, 1 << 1, 1 << 2, 1 << 3, 1 << 4, 1 << 5, 1 << 6, 1 << 7,
        1 << 8, 1 << 9, 1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14,
        static_cast<short>(1 << 15));

    for (size_t w = begin_word; w < full_end; ++w) {
        // One plane set serves the whole filter block: 64-bit lane f of
        // each plane vector holds filter f's carry-save plane for this
        // word. Input words broadcast once; the block's weight words
        // for (w, tap) are one contiguous vector load. Lines fold
        // through the fixed-schedule compressor tree 16 at a time; the
        // leftovers take the serial plane insertion.
        __m256i planes[kMaxCarrySavePlanes];
        __m256i lsb = _mm256_setzero_si256();
        int used = 0;
        const uint64_t *wrow = block.at(w, 0);
        __m256i s[8], c[8];
        size_t i = 0;
        for (; i + 16 <= n; i += 16, wrow += 16 * kFilterLanes) {
            // Product pairs feed the tree's first half-adder layer as
            // they are generated; only two lines are live at a time.
            for (int r = 0; r < 8; ++r) {
                const size_t ta = i + 2 * static_cast<size_t>(r);
                const __m256i xa = _mm256_set1_epi64x(
                    static_cast<long long>(xs[ta].words[w]));
                const __m256i wa = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(
                        wrow +
                        2 * static_cast<size_t>(r) * kFilterLanes));
                const __m256i pa = _mm256_xor_si256(
                    _mm256_xor_si256(xa, wa), all_ones);
                const __m256i xb = _mm256_set1_epi64x(
                    static_cast<long long>(xs[ta + 1].words[w]));
                const __m256i wb = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(
                        wrow +
                        (2 * static_cast<size_t>(r) + 1) * kFilterLanes));
                const __m256i pb = _mm256_xor_si256(
                    _mm256_xor_si256(xb, wb), all_ones);
                if (ta < parity_lines)
                    lsb = _mm256_xor_si256(lsb, pa);
                if (ta + 1 < parity_lines)
                    lsb = _mm256_xor_si256(lsb, pb);
                s[r] = _mm256_xor_si256(pa, pb);
                c[r] = _mm256_and_si256(pa, pb);
            }
            __m256i folded[5];
            reduce16Pairs(s, c, folded);
            if (used == 0) {
                for (int j = 0; j < 5; ++j)
                    planes[j] = folded[j];
                used = 5;
            } else {
                __m256i carry = addPlanesK(planes, folded, 5);
                int j = 5;
                while (!_mm256_testz_si256(carry, carry)) {
                    SCDCNN_ASSERT(j < kMaxCarrySavePlanes,
                                  "too many input streams");
                    if (j == used) {
                        planes[used++] = carry;
                        break;
                    }
                    const __m256i t = _mm256_and_si256(planes[j], carry);
                    planes[j] = _mm256_xor_si256(planes[j], carry);
                    carry = t;
                    ++j;
                }
            }
        }
        // Zero-padded final block: once a full block has folded
        // (used >= 5, so the accumulator holds 5+ planes and taps >= 16
        // keeps the plane cap at 5+), a tail of 6 or more lines runs
        // through the same fixed-schedule tree with zero lines in the
        // missing slots. Zero lines add nothing to any column count,
        // so the fold is bit-identical to the serial insertion it
        // replaces — at tree ILP instead of a ripple walk per line.
        if (n >= 16 && n - i >= 6 && parity_lines <= i) {
            for (int r = 0; r < 8; ++r) {
                const size_t ta = i + 2 * static_cast<size_t>(r);
                __m256i pa = _mm256_setzero_si256();
                __m256i pb = _mm256_setzero_si256();
                if (ta < n) {
                    const __m256i xa = _mm256_set1_epi64x(
                        static_cast<long long>(xs[ta].words[w]));
                    const __m256i wa = _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(
                            wrow + (ta - i) * kFilterLanes));
                    pa = _mm256_xor_si256(_mm256_xor_si256(xa, wa),
                                          all_ones);
                }
                if (ta + 1 < n) {
                    const __m256i xb = _mm256_set1_epi64x(
                        static_cast<long long>(xs[ta + 1].words[w]));
                    const __m256i wb = _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(
                            wrow + (ta + 1 - i) * kFilterLanes));
                    pb = _mm256_xor_si256(_mm256_xor_si256(xb, wb),
                                          all_ones);
                }
                s[r] = _mm256_xor_si256(pa, pb);
                c[r] = _mm256_and_si256(pa, pb);
            }
            __m256i folded[5];
            reduce16Pairs(s, c, folded);
            __m256i carry = addPlanesK(planes, folded, 5);
            int j = 5;
            while (!_mm256_testz_si256(carry, carry)) {
                SCDCNN_ASSERT(j < kMaxCarrySavePlanes,
                              "too many input streams");
                if (j == used) {
                    planes[used++] = carry;
                    break;
                }
                const __m256i t = _mm256_and_si256(planes[j], carry);
                planes[j] = _mm256_xor_si256(planes[j], carry);
                carry = t;
                ++j;
            }
            i = n;
        }
        for (; i < n; ++i, wrow += kFilterLanes) {
            const __m256i xv =
                _mm256_set1_epi64x(static_cast<long long>(xs[i].words[w]));
            const __m256i wv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(wrow));
            __m256i carry = _mm256_xor_si256(_mm256_xor_si256(xv, wv),
                                             all_ones);
            if (i < parity_lines)
                lsb = _mm256_xor_si256(lsb, carry);
            int j = 0;
            while (!_mm256_testz_si256(carry, carry)) {
                SCDCNN_ASSERT(j < kMaxCarrySavePlanes,
                              "too many input streams");
                if (j == used) {
                    planes[used++] = carry;
                    break;
                }
                const __m256i t = _mm256_and_si256(planes[j], carry);
                planes[j] = _mm256_xor_si256(planes[j], carry);
                carry = t;
                ++j;
            }
        }

        alignas(32) uint64_t pw[kMaxCarrySavePlanes][4];
        for (int j = 0; j < used; ++j)
            _mm256_store_si256(reinterpret_cast<__m256i *>(pw[j]),
                               planes[j]);
        alignas(32) uint64_t lw[4];
        _mm256_store_si256(reinterpret_cast<__m256i *>(lw), lsb);

        // Per real lane (filter), transpose that lane's plane bits into
        // 64 per-cycle counts, 16 at a time.
        const size_t out_base = (w - begin_word) * 64;
        for (size_t f = 0; f < block.lanes; ++f) {
            for (int g = 0; g < 4; ++g) {
                __m256i acc = _mm256_setzero_si256();
                for (int j = 0; j < used; ++j) {
                    const auto bits =
                        static_cast<uint16_t>(pw[j][f] >> (g * 16));
                    acc = _mm256_or_si256(
                        acc, spreadBits16(bits, lane_bit,
                                          static_cast<short>(1 << j)));
                }
                if (parity_lines > 0) {
                    const auto bits =
                        static_cast<uint16_t>(lw[f] >> (g * 16));
                    acc = _mm256_or_si256(
                        _mm256_and_si256(
                            acc, _mm256_set1_epi16(
                                     static_cast<short>(~1))),
                        spreadBits16(bits, lane_bit, 1));
                }
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i *>(
                        out + f * out_stride + out_base +
                        static_cast<size_t>(g) * 16),
                    acc);
            }
        }
    }
    return full_end - begin_word;
}

__attribute__((target("avx2"))) size_t
avx2ProductCountsMultiBatch(const BitstreamView *xs0,
                            const size_t *x_strides, const uint32_t *images,
                            size_t n_images, const WeightBlockView &block,
                            size_t parity_lines, size_t begin_word,
                            size_t end_word, uint16_t *out,
                            size_t lane_stride, size_t image_stride)
{
    if (!enabled())
        return 0;
    // Full words only, as in avx2ProductCountsMulti: the partial tail
    // word stays with the scalar caller.
    const size_t full_end = std::min(end_word, block.length / 64);
    if (full_end <= begin_word)
        return 0;
    const size_t n = block.taps;
    const __m256i all_ones = _mm256_set1_epi8(-1);
    const __m256i lane_bit = _mm256_setr_epi16(
        1 << 0, 1 << 1, 1 << 2, 1 << 3, 1 << 4, 1 << 5, 1 << 6, 1 << 7,
        1 << 8, 1 << 9, 1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14,
        static_cast<short>(1 << 15));

    // Weight-stationary loop order: word outer, image inner. The
    // weight row for word w (taps x kFilterLanes contiguous words) is
    // streamed once and re-read from cache for every image in the
    // micro-batch instead of re-fetched from memory per image.
    for (size_t w = begin_word; w < full_end; ++w) {
        const uint64_t *wrow0 = block.at(w, 0);
        const size_t out_base = (w - begin_word) * 64;
        for (size_t j = 0; j < n_images; ++j) {
            const size_t img = images[j];
            __m256i planes[kMaxCarrySavePlanes];
            __m256i lsb = _mm256_setzero_si256();
            int used = 0;
            const uint64_t *wrow = wrow0;
            __m256i s[8], c[8];
            size_t i = 0;
            for (; i + 16 <= n; i += 16, wrow += 16 * kFilterLanes) {
                for (int r = 0; r < 8; ++r) {
                    const size_t ta = i + 2 * static_cast<size_t>(r);
                    const __m256i xa =
                        _mm256_set1_epi64x(static_cast<long long>(
                            xs0[ta].words[img * x_strides[ta] + w]));
                    const __m256i wa = _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(
                            wrow +
                            2 * static_cast<size_t>(r) * kFilterLanes));
                    const __m256i pa = _mm256_xor_si256(
                        _mm256_xor_si256(xa, wa), all_ones);
                    const __m256i xb =
                        _mm256_set1_epi64x(static_cast<long long>(
                            xs0[ta + 1]
                                .words[img * x_strides[ta + 1] + w]));
                    const __m256i wb = _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(
                            wrow + (2 * static_cast<size_t>(r) + 1) *
                                       kFilterLanes));
                    const __m256i pb = _mm256_xor_si256(
                        _mm256_xor_si256(xb, wb), all_ones);
                    if (ta < parity_lines)
                        lsb = _mm256_xor_si256(lsb, pa);
                    if (ta + 1 < parity_lines)
                        lsb = _mm256_xor_si256(lsb, pb);
                    s[r] = _mm256_xor_si256(pa, pb);
                    c[r] = _mm256_and_si256(pa, pb);
                }
                __m256i folded[5];
                reduce16Pairs(s, c, folded);
                if (used == 0) {
                    for (int j2 = 0; j2 < 5; ++j2)
                        planes[j2] = folded[j2];
                    used = 5;
                } else {
                    __m256i carry = addPlanesK(planes, folded, 5);
                    int j2 = 5;
                    while (!_mm256_testz_si256(carry, carry)) {
                        SCDCNN_ASSERT(j2 < kMaxCarrySavePlanes,
                                      "too many input streams");
                        if (j2 == used) {
                            planes[used++] = carry;
                            break;
                        }
                        const __m256i t =
                            _mm256_and_si256(planes[j2], carry);
                        planes[j2] = _mm256_xor_si256(planes[j2], carry);
                        carry = t;
                        ++j2;
                    }
                }
            }
            // Zero-padded final block (see avx2ProductCountsMulti).
            if (n >= 16 && n - i >= 6 && parity_lines <= i) {
                for (int r = 0; r < 8; ++r) {
                    const size_t ta = i + 2 * static_cast<size_t>(r);
                    __m256i pa = _mm256_setzero_si256();
                    __m256i pb = _mm256_setzero_si256();
                    if (ta < n) {
                        const __m256i xa =
                            _mm256_set1_epi64x(static_cast<long long>(
                                xs0[ta].words[img * x_strides[ta] + w]));
                        const __m256i wa = _mm256_loadu_si256(
                            reinterpret_cast<const __m256i *>(
                                wrow + (ta - i) * kFilterLanes));
                        pa = _mm256_xor_si256(_mm256_xor_si256(xa, wa),
                                              all_ones);
                    }
                    if (ta + 1 < n) {
                        const __m256i xb =
                            _mm256_set1_epi64x(static_cast<long long>(
                                xs0[ta + 1]
                                    .words[img * x_strides[ta + 1] + w]));
                        const __m256i wb = _mm256_loadu_si256(
                            reinterpret_cast<const __m256i *>(
                                wrow + (ta + 1 - i) * kFilterLanes));
                        pb = _mm256_xor_si256(_mm256_xor_si256(xb, wb),
                                              all_ones);
                    }
                    s[r] = _mm256_xor_si256(pa, pb);
                    c[r] = _mm256_and_si256(pa, pb);
                }
                __m256i folded[5];
                reduce16Pairs(s, c, folded);
                __m256i carry = addPlanesK(planes, folded, 5);
                int j2 = 5;
                while (!_mm256_testz_si256(carry, carry)) {
                    SCDCNN_ASSERT(j2 < kMaxCarrySavePlanes,
                                  "too many input streams");
                    if (j2 == used) {
                        planes[used++] = carry;
                        break;
                    }
                    const __m256i t = _mm256_and_si256(planes[j2], carry);
                    planes[j2] = _mm256_xor_si256(planes[j2], carry);
                    carry = t;
                    ++j2;
                }
                i = n;
            }
            for (; i < n; ++i, wrow += kFilterLanes) {
                const __m256i xv = _mm256_set1_epi64x(
                    static_cast<long long>(
                        xs0[i].words[img * x_strides[i] + w]));
                const __m256i wv = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(wrow));
                __m256i carry = _mm256_xor_si256(
                    _mm256_xor_si256(xv, wv), all_ones);
                if (i < parity_lines)
                    lsb = _mm256_xor_si256(lsb, carry);
                int j2 = 0;
                while (!_mm256_testz_si256(carry, carry)) {
                    SCDCNN_ASSERT(j2 < kMaxCarrySavePlanes,
                                  "too many input streams");
                    if (j2 == used) {
                        planes[used++] = carry;
                        break;
                    }
                    const __m256i t = _mm256_and_si256(planes[j2], carry);
                    planes[j2] = _mm256_xor_si256(planes[j2], carry);
                    carry = t;
                    ++j2;
                }
            }

            alignas(32) uint64_t pw[kMaxCarrySavePlanes][4];
            for (int j2 = 0; j2 < used; ++j2)
                _mm256_store_si256(reinterpret_cast<__m256i *>(pw[j2]),
                                   planes[j2]);
            alignas(32) uint64_t lw[4];
            _mm256_store_si256(reinterpret_cast<__m256i *>(lw), lsb);

            uint16_t *img_out = out + j * image_stride;
            for (size_t f = 0; f < block.lanes; ++f) {
                for (int g = 0; g < 4; ++g) {
                    __m256i acc = _mm256_setzero_si256();
                    for (int j2 = 0; j2 < used; ++j2) {
                        const auto bits = static_cast<uint16_t>(
                            pw[j2][f] >> (g * 16));
                        acc = _mm256_or_si256(
                            acc,
                            spreadBits16(bits, lane_bit,
                                         static_cast<short>(1 << j2)));
                    }
                    if (parity_lines > 0) {
                        const auto bits =
                            static_cast<uint16_t>(lw[f] >> (g * 16));
                        acc = _mm256_or_si256(
                            _mm256_and_si256(
                                acc, _mm256_set1_epi16(
                                         static_cast<short>(~1))),
                            spreadBits16(bits, lane_bit, 1));
                    }
                    _mm256_storeu_si256(
                        reinterpret_cast<__m256i *>(
                            img_out + f * lane_stride + out_base +
                            static_cast<size_t>(g) * 16),
                        acc);
                }
            }
        }
    }
    return full_end - begin_word;
}

__attribute__((target("avx2"))) size_t
avx2ProductPlanesMulti(const BitstreamView *xs, const WeightBlockView &block,
                       size_t parity_lines, size_t begin_word,
                       size_t end_word, size_t plane_cap, uint64_t *out,
                       size_t lane_stride)
{
    if (!enabled())
        return 0;
    const size_t full_end = std::min(end_word, block.length / 64);
    if (full_end <= begin_word)
        return 0;
    const size_t n = block.taps;
    const __m256i all_ones = _mm256_set1_epi8(-1);

    for (size_t w = begin_word; w < full_end; ++w) {
        // The fold of avx2ProductCountsMulti, verbatim; only the tail
        // differs — planes are stored, not transposed.
        __m256i planes[kMaxCarrySavePlanes];
        __m256i lsb = _mm256_setzero_si256();
        int used = 0;
        const uint64_t *wrow = block.at(w, 0);
        __m256i s[8], c[8];
        size_t i = 0;
        for (; i + 16 <= n; i += 16, wrow += 16 * kFilterLanes) {
            for (int r = 0; r < 8; ++r) {
                const size_t ta = i + 2 * static_cast<size_t>(r);
                const __m256i xa = _mm256_set1_epi64x(
                    static_cast<long long>(xs[ta].words[w]));
                const __m256i wa = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(
                        wrow +
                        2 * static_cast<size_t>(r) * kFilterLanes));
                const __m256i pa = _mm256_xor_si256(
                    _mm256_xor_si256(xa, wa), all_ones);
                const __m256i xb = _mm256_set1_epi64x(
                    static_cast<long long>(xs[ta + 1].words[w]));
                const __m256i wb = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(
                        wrow +
                        (2 * static_cast<size_t>(r) + 1) * kFilterLanes));
                const __m256i pb = _mm256_xor_si256(
                    _mm256_xor_si256(xb, wb), all_ones);
                if (ta < parity_lines)
                    lsb = _mm256_xor_si256(lsb, pa);
                if (ta + 1 < parity_lines)
                    lsb = _mm256_xor_si256(lsb, pb);
                s[r] = _mm256_xor_si256(pa, pb);
                c[r] = _mm256_and_si256(pa, pb);
            }
            __m256i folded[5];
            reduce16Pairs(s, c, folded);
            if (used == 0) {
                for (int j = 0; j < 5; ++j)
                    planes[j] = folded[j];
                used = 5;
            } else {
                __m256i carry = addPlanesK(planes, folded, 5);
                int j = 5;
                while (!_mm256_testz_si256(carry, carry)) {
                    SCDCNN_ASSERT(j < kMaxCarrySavePlanes,
                                  "too many input streams");
                    if (j == used) {
                        planes[used++] = carry;
                        break;
                    }
                    const __m256i t = _mm256_and_si256(planes[j], carry);
                    planes[j] = _mm256_xor_si256(planes[j], carry);
                    carry = t;
                    ++j;
                }
            }
        }
        // Zero-padded final block (see avx2ProductCountsMulti).
        if (n >= 16 && n - i >= 6 && parity_lines <= i) {
            for (int r = 0; r < 8; ++r) {
                const size_t ta = i + 2 * static_cast<size_t>(r);
                __m256i pa = _mm256_setzero_si256();
                __m256i pb = _mm256_setzero_si256();
                if (ta < n) {
                    const __m256i xa = _mm256_set1_epi64x(
                        static_cast<long long>(xs[ta].words[w]));
                    const __m256i wa = _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(
                            wrow + (ta - i) * kFilterLanes));
                    pa = _mm256_xor_si256(_mm256_xor_si256(xa, wa),
                                          all_ones);
                }
                if (ta + 1 < n) {
                    const __m256i xb = _mm256_set1_epi64x(
                        static_cast<long long>(xs[ta + 1].words[w]));
                    const __m256i wb = _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(
                            wrow + (ta + 1 - i) * kFilterLanes));
                    pb = _mm256_xor_si256(_mm256_xor_si256(xb, wb),
                                          all_ones);
                }
                s[r] = _mm256_xor_si256(pa, pb);
                c[r] = _mm256_and_si256(pa, pb);
            }
            __m256i folded[5];
            reduce16Pairs(s, c, folded);
            __m256i carry = addPlanesK(planes, folded, 5);
            int j = 5;
            while (!_mm256_testz_si256(carry, carry)) {
                SCDCNN_ASSERT(j < kMaxCarrySavePlanes,
                              "too many input streams");
                if (j == used) {
                    planes[used++] = carry;
                    break;
                }
                const __m256i t = _mm256_and_si256(planes[j], carry);
                planes[j] = _mm256_xor_si256(planes[j], carry);
                carry = t;
                ++j;
            }
            i = n;
        }
        for (; i < n; ++i, wrow += kFilterLanes) {
            const __m256i xv =
                _mm256_set1_epi64x(static_cast<long long>(xs[i].words[w]));
            const __m256i wv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(wrow));
            __m256i carry = _mm256_xor_si256(_mm256_xor_si256(xv, wv),
                                             all_ones);
            if (i < parity_lines)
                lsb = _mm256_xor_si256(lsb, carry);
            int j = 0;
            while (!_mm256_testz_si256(carry, carry)) {
                SCDCNN_ASSERT(j < kMaxCarrySavePlanes,
                              "too many input streams");
                if (j == used) {
                    planes[used++] = carry;
                    break;
                }
                const __m256i t = _mm256_and_si256(planes[j], carry);
                planes[j] = _mm256_xor_si256(planes[j], carry);
                carry = t;
                ++j;
            }
        }
        SCDCNN_ASSERT(static_cast<size_t>(used) <= plane_cap,
                      "fold used %d planes, cap %zu", used, plane_cap);

        alignas(32) uint64_t pw[kMaxCarrySavePlanes][4];
        for (int j = 0; j < used; ++j)
            _mm256_store_si256(reinterpret_cast<__m256i *>(pw[j]),
                               planes[j]);
        alignas(32) uint64_t lw[4];
        _mm256_store_si256(reinterpret_cast<__m256i *>(lw), lsb);

        const size_t word_base = (w - begin_word) * (plane_cap + 1);
        for (size_t f = 0; f < block.lanes; ++f) {
            uint64_t *dst = out + f * lane_stride + word_base;
            size_t p = 0;
            for (; p < static_cast<size_t>(used); ++p)
                dst[p] = pw[p][f];
            for (; p < plane_cap; ++p)
                dst[p] = 0;
            dst[plane_cap] = lw[f];
        }
    }
    return full_end - begin_word;
}

__attribute__((target("avx2"))) size_t
avx2ProductPlanesMultiBatch(const BitstreamView *xs0,
                            const size_t *x_strides, const uint32_t *images,
                            size_t n_images, const WeightBlockView &block,
                            size_t parity_lines, size_t begin_word,
                            size_t end_word, size_t plane_cap,
                            uint64_t *out, size_t lane_stride,
                            size_t image_stride)
{
    if (!enabled())
        return 0;
    const size_t full_end = std::min(end_word, block.length / 64);
    if (full_end <= begin_word)
        return 0;
    const size_t n = block.taps;
    const __m256i all_ones = _mm256_set1_epi8(-1);

    // Weight-stationary order as in avx2ProductCountsMultiBatch; the
    // transpose tail is replaced by plane stores.
    for (size_t w = begin_word; w < full_end; ++w) {
        const uint64_t *wrow0 = block.at(w, 0);
        const size_t word_base = (w - begin_word) * (plane_cap + 1);
        for (size_t j = 0; j < n_images; ++j) {
            const size_t img = images[j];
            __m256i planes[kMaxCarrySavePlanes];
            __m256i lsb = _mm256_setzero_si256();
            int used = 0;
            const uint64_t *wrow = wrow0;
            __m256i s[8], c[8];
            size_t i = 0;
            for (; i + 16 <= n; i += 16, wrow += 16 * kFilterLanes) {
                for (int r = 0; r < 8; ++r) {
                    const size_t ta = i + 2 * static_cast<size_t>(r);
                    const __m256i xa =
                        _mm256_set1_epi64x(static_cast<long long>(
                            xs0[ta].words[img * x_strides[ta] + w]));
                    const __m256i wa = _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(
                            wrow +
                            2 * static_cast<size_t>(r) * kFilterLanes));
                    const __m256i pa = _mm256_xor_si256(
                        _mm256_xor_si256(xa, wa), all_ones);
                    const __m256i xb =
                        _mm256_set1_epi64x(static_cast<long long>(
                            xs0[ta + 1]
                                .words[img * x_strides[ta + 1] + w]));
                    const __m256i wb = _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(
                            wrow + (2 * static_cast<size_t>(r) + 1) *
                                       kFilterLanes));
                    const __m256i pb = _mm256_xor_si256(
                        _mm256_xor_si256(xb, wb), all_ones);
                    if (ta < parity_lines)
                        lsb = _mm256_xor_si256(lsb, pa);
                    if (ta + 1 < parity_lines)
                        lsb = _mm256_xor_si256(lsb, pb);
                    s[r] = _mm256_xor_si256(pa, pb);
                    c[r] = _mm256_and_si256(pa, pb);
                }
                __m256i folded[5];
                reduce16Pairs(s, c, folded);
                if (used == 0) {
                    for (int j2 = 0; j2 < 5; ++j2)
                        planes[j2] = folded[j2];
                    used = 5;
                } else {
                    __m256i carry = addPlanesK(planes, folded, 5);
                    int j2 = 5;
                    while (!_mm256_testz_si256(carry, carry)) {
                        SCDCNN_ASSERT(j2 < kMaxCarrySavePlanes,
                                      "too many input streams");
                        if (j2 == used) {
                            planes[used++] = carry;
                            break;
                        }
                        const __m256i t =
                            _mm256_and_si256(planes[j2], carry);
                        planes[j2] = _mm256_xor_si256(planes[j2], carry);
                        carry = t;
                        ++j2;
                    }
                }
            }
            // Zero-padded final block (see avx2ProductCountsMulti).
            if (n >= 16 && n - i >= 6 && parity_lines <= i) {
                for (int r = 0; r < 8; ++r) {
                    const size_t ta = i + 2 * static_cast<size_t>(r);
                    __m256i pa = _mm256_setzero_si256();
                    __m256i pb = _mm256_setzero_si256();
                    if (ta < n) {
                        const __m256i xa =
                            _mm256_set1_epi64x(static_cast<long long>(
                                xs0[ta].words[img * x_strides[ta] + w]));
                        const __m256i wa = _mm256_loadu_si256(
                            reinterpret_cast<const __m256i *>(
                                wrow + (ta - i) * kFilterLanes));
                        pa = _mm256_xor_si256(_mm256_xor_si256(xa, wa),
                                              all_ones);
                    }
                    if (ta + 1 < n) {
                        const __m256i xb =
                            _mm256_set1_epi64x(static_cast<long long>(
                                xs0[ta + 1]
                                    .words[img * x_strides[ta + 1] + w]));
                        const __m256i wb = _mm256_loadu_si256(
                            reinterpret_cast<const __m256i *>(
                                wrow + (ta + 1 - i) * kFilterLanes));
                        pb = _mm256_xor_si256(_mm256_xor_si256(xb, wb),
                                              all_ones);
                    }
                    s[r] = _mm256_xor_si256(pa, pb);
                    c[r] = _mm256_and_si256(pa, pb);
                }
                __m256i folded[5];
                reduce16Pairs(s, c, folded);
                __m256i carry = addPlanesK(planes, folded, 5);
                int j2 = 5;
                while (!_mm256_testz_si256(carry, carry)) {
                    SCDCNN_ASSERT(j2 < kMaxCarrySavePlanes,
                                  "too many input streams");
                    if (j2 == used) {
                        planes[used++] = carry;
                        break;
                    }
                    const __m256i t = _mm256_and_si256(planes[j2], carry);
                    planes[j2] = _mm256_xor_si256(planes[j2], carry);
                    carry = t;
                    ++j2;
                }
                i = n;
            }
            for (; i < n; ++i, wrow += kFilterLanes) {
                const __m256i xv = _mm256_set1_epi64x(
                    static_cast<long long>(
                        xs0[i].words[img * x_strides[i] + w]));
                const __m256i wv = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(wrow));
                __m256i carry = _mm256_xor_si256(
                    _mm256_xor_si256(xv, wv), all_ones);
                if (i < parity_lines)
                    lsb = _mm256_xor_si256(lsb, carry);
                int j2 = 0;
                while (!_mm256_testz_si256(carry, carry)) {
                    SCDCNN_ASSERT(j2 < kMaxCarrySavePlanes,
                                  "too many input streams");
                    if (j2 == used) {
                        planes[used++] = carry;
                        break;
                    }
                    const __m256i t = _mm256_and_si256(planes[j2], carry);
                    planes[j2] = _mm256_xor_si256(planes[j2], carry);
                    carry = t;
                    ++j2;
                }
            }
            SCDCNN_ASSERT(static_cast<size_t>(used) <= plane_cap,
                          "fold used %d planes, cap %zu", used, plane_cap);

            alignas(32) uint64_t pw[kMaxCarrySavePlanes][4];
            for (int j2 = 0; j2 < used; ++j2)
                _mm256_store_si256(reinterpret_cast<__m256i *>(pw[j2]),
                                   planes[j2]);
            alignas(32) uint64_t lw[4];
            _mm256_store_si256(reinterpret_cast<__m256i *>(lw), lsb);

            uint64_t *img_out = out + j * image_stride;
            for (size_t f = 0; f < block.lanes; ++f) {
                uint64_t *dst = img_out + f * lane_stride + word_base;
                size_t p = 0;
                for (; p < static_cast<size_t>(used); ++p)
                    dst[p] = pw[p][f];
                for (; p < plane_cap; ++p)
                    dst[p] = 0;
                dst[plane_cap] = lw[f];
            }
        }
    }
    return full_end - begin_word;
}

__attribute__((target("avx2"))) static void
avx2SpreadPlanesWordImpl(const uint64_t *pw, size_t n_planes, bool parity,
                         uint16_t *out)
{
    const __m256i lane_bit = _mm256_setr_epi16(
        1 << 0, 1 << 1, 1 << 2, 1 << 3, 1 << 4, 1 << 5, 1 << 6, 1 << 7,
        1 << 8, 1 << 9, 1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14,
        static_cast<short>(1 << 15));
    for (int g = 0; g < 4; ++g) {
        __m256i acc = _mm256_setzero_si256();
        for (size_t j = 0; j < n_planes; ++j) {
            const auto bits = static_cast<uint16_t>(pw[j] >> (g * 16));
            acc = _mm256_or_si256(
                acc, spreadBits16(bits, lane_bit,
                                  static_cast<short>(1 << j)));
        }
        if (parity) {
            const auto bits =
                static_cast<uint16_t>(pw[n_planes] >> (g * 16));
            acc = _mm256_or_si256(
                _mm256_and_si256(
                    acc, _mm256_set1_epi16(static_cast<short>(~1))),
                spreadBits16(bits, lane_bit, 1));
        }
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(out + g * 16), acc);
    }
}

void
avx2SpreadPlanesWord(const uint64_t *pw, size_t n_planes, bool parity,
                     uint16_t *out)
{
    SCDCNN_ASSERT(n_planes < 16, "plane count %zu too large", n_planes);
    if (enabled()) {
        avx2SpreadPlanesWordImpl(pw, n_planes, parity, out);
        return;
    }
    for (size_t b = 0; b < 64; ++b) {
        uint16_t c = 0;
        for (size_t j = 0; j < n_planes; ++j)
            c |= static_cast<uint16_t>((pw[j] >> b) & 1) << j;
        if (parity)
            c = static_cast<uint16_t>(
                (c & ~uint16_t{1}) |
                static_cast<uint16_t>((pw[n_planes] >> b) & 1));
        out[b] = c;
    }
}

__attribute__((target("avx2"))) static void
avx2SpreadPlanesGroupImpl(const uint64_t *pw, size_t n_planes,
                          bool parity, size_t group, uint16_t *out)
{
    const __m256i lane_bit = _mm256_setr_epi16(
        1 << 0, 1 << 1, 1 << 2, 1 << 3, 1 << 4, 1 << 5, 1 << 6, 1 << 7,
        1 << 8, 1 << 9, 1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14,
        static_cast<short>(1 << 15));
    __m256i acc = _mm256_setzero_si256();
    for (size_t j = 0; j < n_planes; ++j) {
        const auto bits = static_cast<uint16_t>(pw[j] >> (group * 16));
        acc = _mm256_or_si256(
            acc,
            spreadBits16(bits, lane_bit, static_cast<short>(1 << j)));
    }
    if (parity) {
        const auto bits =
            static_cast<uint16_t>(pw[n_planes] >> (group * 16));
        acc = _mm256_or_si256(
            _mm256_and_si256(acc,
                             _mm256_set1_epi16(static_cast<short>(~1))),
            spreadBits16(bits, lane_bit, 1));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(out), acc);
}

void
avx2SpreadPlanesGroup(const uint64_t *pw, size_t n_planes, bool parity,
                      size_t group, uint16_t *out)
{
    SCDCNN_ASSERT(n_planes < 16, "plane count %zu too large", n_planes);
    if (enabled()) {
        avx2SpreadPlanesGroupImpl(pw, n_planes, parity, group, out);
        return;
    }
    spreadPlanesGroupScalar(pw, n_planes, parity, group, out);
}

__attribute__((target("avx2"))) static void
avx2PlaneWordSumsImpl(const uint64_t *pw, const PlaneSumWeights &wts,
                      uint32_t *sums)
{
    // One quad = planes [base + 4q, base + 4q + 4) in the four 64-bit
    // ymm lanes. maddubs pairs byte popcounts with the per-byte
    // relative digit weights 2^i: a 16-bit product lane covers bytes
    // 2i, 2i+1 — one 16-cycle group of one plane — so summing the four
    // 64-bit lanes' matching sublanes yields the quad's four group
    // sums (<= 4 planes * 16 * 8 = 512, no maddubs saturation since
    // each pair is <= 128).
    for (size_t q = 0; q < wts.quads; ++q) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(pw + wts.base + q * 4));
        const __m256i w = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(wts.w[q]));
        const __m256i prod = _mm256_maddubs_epi16(popcountBytes(v), w);
        __m128i t = _mm_add_epi16(_mm256_castsi256_si128(prod),
                                  _mm256_extracti128_si256(prod, 1));
        t = _mm_add_epi16(t, _mm_srli_si128(t, 8));
        const auto packed = static_cast<uint64_t>(_mm_cvtsi128_si64(t));
        for (size_t g = 0; g < 4; ++g)
            sums[g] += static_cast<uint32_t>((packed >> (16 * g)) &
                                             0xFFFF)
                       << wts.shift[q];
    }
    if (wts.parity) {
        const uint64_t lsb = pw[wts.n_planes];
        for (size_t g = 0; g < 4; ++g)
            sums[g] += static_cast<uint32_t>(
                __builtin_popcountll((lsb >> (16 * g)) & 0xFFFF));
    }
}

void
avx2PlaneWordSums(const uint64_t *pw, const PlaneSumWeights &wts,
                  uint32_t *sums)
{
    if (enabled()) {
        avx2PlaneWordSumsImpl(pw, wts, sums);
        return;
    }
    planeWordSumsScalar(pw, wts, sums);
}

__attribute__((target("avx2"))) static void
avx2PlaneWordSumsMultiImpl(const uint64_t *const *bufs, size_t n_bufs,
                           size_t pstride, size_t n_words,
                           const PlaneSumWeights &wts, uint32_t *sums)
{
    for (size_t b = 0; b < n_bufs; ++b) {
        const uint64_t *pw = bufs[b];
        uint32_t *dst = sums + b * n_words * 4;
        for (size_t q = 0; q < n_words; ++q, pw += pstride, dst += 4) {
            dst[0] = dst[1] = dst[2] = dst[3] = 0;
            avx2PlaneWordSumsImpl(pw, wts, dst);
        }
    }
}

void
avx2PlaneWordSumsMulti(const uint64_t *const *bufs, size_t n_bufs,
                       size_t pstride, size_t n_words,
                       const PlaneSumWeights &wts, uint32_t *sums)
{
    if (enabled()) {
        avx2PlaneWordSumsMultiImpl(bufs, n_bufs, pstride, n_words, wts,
                                   sums);
        return;
    }
    for (size_t b = 0; b < n_bufs; ++b) {
        const uint64_t *pw = bufs[b];
        uint32_t *dst = sums + b * n_words * 4;
        for (size_t q = 0; q < n_words; ++q, pw += pstride, dst += 4) {
            dst[0] = dst[1] = dst[2] = dst[3] = 0;
            planeWordSumsScalar(pw, wts, dst);
        }
    }
}

__attribute__((target("avx2"))) static void
avx2SpreadPlanesGroupMultiImpl(const uint64_t *const *pws, size_t n,
                               size_t n_planes, bool parity, size_t group,
                               uint16_t *const *outs)
{
    for (size_t i = 0; i < n; ++i)
        avx2SpreadPlanesGroupImpl(pws[i], n_planes, parity, group,
                                  outs[i]);
}

void
avx2SpreadPlanesGroupMulti(const uint64_t *const *pws, size_t n,
                           size_t n_planes, bool parity, size_t group,
                           uint16_t *const *outs)
{
    SCDCNN_ASSERT(n_planes < 16, "plane count %zu too large", n_planes);
    if (enabled()) {
        avx2SpreadPlanesGroupMultiImpl(pws, n, n_planes, parity, group,
                                       outs);
        return;
    }
    for (size_t i = 0; i < n; ++i)
        spreadPlanesGroupScalar(pws[i], n_planes, parity, group, outs[i]);
}

__attribute__((target("avx2"))) size_t
avx2ProductCountTotal(const BitstreamView *xs, const BitstreamView *ws,
                      size_t n, size_t begin_word, size_t end_word,
                      size_t parity_lines, uint64_t *total,
                      uint64_t *exact_lsb_ones, uint64_t *approx_lsb_ones)
{
    if (!enabled())
        return 0;
    const size_t n_full_words =
        end_word > begin_word ? ((end_word - begin_word) / 4) * 4 : 0;
    const __m256i all_ones = _mm256_set1_epi8(-1);
    const __m256i zero = _mm256_setzero_si256();

    __m256i total_acc = zero;
    __m256i exact_acc = zero;
    __m256i approx_acc = zero;
    for (size_t w = begin_word; w < begin_word + n_full_words; w += 4) {
        __m256i parity_all = zero;
        __m256i parity_leading = zero;
        for (size_t i = 0; i < n; ++i) {
            const __m256i xv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(xs[i].words + w));
            const __m256i wv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(ws[i].words + w));
            const __m256i product = _mm256_xor_si256(
                _mm256_xor_si256(xv, wv), all_ones);
            total_acc = _mm256_add_epi64(
                total_acc, _mm256_sad_epu8(popcountBytes(product), zero));
            parity_all = _mm256_xor_si256(parity_all, product);
            if (i < parity_lines)
                parity_leading = _mm256_xor_si256(parity_leading, product);
        }
        exact_acc = _mm256_add_epi64(
            exact_acc, _mm256_sad_epu8(popcountBytes(parity_all), zero));
        approx_acc = _mm256_add_epi64(
            approx_acc,
            _mm256_sad_epu8(popcountBytes(parity_leading), zero));
    }
    *total += horizontalSum64(total_acc);
    *exact_lsb_ones += horizontalSum64(exact_acc);
    *approx_lsb_ones += horizontalSum64(approx_acc);
    return n_full_words;
}

__attribute__((target("avx2"))) static uint64_t
avx2SumU16Impl(const uint16_t *values, size_t n)
{
    const __m256i zero = _mm256_setzero_si256();
    uint64_t sum = 0;
    size_t i = 0;
    while (i + 16 <= n) {
        // Zero-extend to 32-bit lanes (full uint16 range) and flush
        // the lane accumulators to 64 bits before they can overflow:
        // each of the 8 lanes gains at most 2 * 65535 per iteration,
        // so 2^14 iterations stay under 2^31.
        __m256i acc = zero;
        const size_t chunk_end =
            std::min(n - (n - i) % 16, i + (size_t{1} << 14) * 16);
        for (; i + 16 <= chunk_end; i += 16) {
            const __m256i v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(values + i));
            acc = _mm256_add_epi32(acc,
                                   _mm256_unpacklo_epi16(v, zero));
            acc = _mm256_add_epi32(acc,
                                   _mm256_unpackhi_epi16(v, zero));
        }
        alignas(32) uint32_t lanes[8];
        _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
        for (uint32_t l : lanes)
            sum += l;
    }
    for (; i < n; ++i)
        sum += values[i];
    return sum;
}

uint64_t
avx2SumU16(const uint16_t *values, size_t n)
{
    if (!enabled() || n < 32) {
        uint64_t sum = 0;
        for (size_t i = 0; i < n; ++i)
            sum += values[i];
        return sum;
    }
    return avx2SumU16Impl(values, n);
}

/** In-place 16x16 uint16 transpose: m[r] holds row r (16 consecutive
 *  cycles of stream r); afterwards m[c] holds column c (all 16 streams
 *  at cycle c). Three unpack stages + a cross-lane permute. */
__attribute__((target("avx2"))) static void
transpose16x16Epi16(__m256i m[16])
{
    __m256i a[16], b[16];
    for (int i = 0; i < 8; ++i) {
        a[2 * i] = _mm256_unpacklo_epi16(m[2 * i], m[2 * i + 1]);
        a[2 * i + 1] = _mm256_unpackhi_epi16(m[2 * i], m[2 * i + 1]);
    }
    for (int q = 0; q < 4; ++q) {
        b[4 * q + 0] =
            _mm256_unpacklo_epi32(a[4 * q + 0], a[4 * q + 2]);
        b[4 * q + 1] =
            _mm256_unpackhi_epi32(a[4 * q + 0], a[4 * q + 2]);
        b[4 * q + 2] =
            _mm256_unpacklo_epi32(a[4 * q + 1], a[4 * q + 3]);
        b[4 * q + 3] =
            _mm256_unpackhi_epi32(a[4 * q + 1], a[4 * q + 3]);
    }
    // After this stage, a[8h + c] holds streams 8h..8h+7 at cycle c
    // (low lane) and cycle c + 8 (high lane).
    for (int h = 0; h < 2; ++h) {
        for (int j = 0; j < 4; ++j) {
            a[8 * h + 2 * j] =
                _mm256_unpacklo_epi64(b[8 * h + j], b[8 * h + 4 + j]);
            a[8 * h + 2 * j + 1] =
                _mm256_unpackhi_epi64(b[8 * h + j], b[8 * h + 4 + j]);
        }
    }
    for (int c = 0; c < 8; ++c) {
        m[c] = _mm256_permute2x128_si256(a[c], a[8 + c], 0x20);
        m[c + 8] = _mm256_permute2x128_si256(a[c], a[8 + c], 0x31);
    }
}

__attribute__((target("avx2"))) static size_t
avx2BtanhWordsBatchImpl(const uint16_t *const *counts, size_t n_full,
                        uint64_t *const *outs, uint16_t *const *states,
                        size_t n_streams, unsigned k, unsigned n_inputs)
{
    const __m256i zero = _mm256_setzero_si256();
    const __m256i vmax = _mm256_set1_epi16(static_cast<short>(k - 1));
    const __m256i vthr =
        _mm256_set1_epi16(static_cast<short>(k / 2 - 1));
    const __m256i vn = _mm256_set1_epi16(static_cast<short>(n_inputs));
    for (size_t s0 = 0; s0 < n_streams; s0 += 16) {
        const size_t tile = std::min<size_t>(16, n_streams - s0);
        alignas(32) uint16_t st_buf[16] = {};
        for (size_t s = 0; s < tile; ++s)
            st_buf[s] = *states[s0 + s];
        __m256i st = _mm256_load_si256(
            reinterpret_cast<const __m256i *>(st_buf));
        for (size_t w = 0; w < n_full; ++w) {
            // Four 16-cycle tiles per word: transpose the 16x16 count
            // block so one register holds every stream's count for a
            // cycle, then all counters step together — add, clamp with
            // max/min, compare against the upper-half threshold.
            alignas(32) uint16_t a16[4][16];
            for (int q = 0; q < 4; ++q) {
                __m256i m[16];
                for (size_t s = 0; s < tile; ++s)
                    m[s] = _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(
                            counts[s0 + s] + w * 64 +
                            static_cast<size_t>(q) * 16));
                for (size_t s = tile; s < 16; ++s)
                    m[s] = zero;
                transpose16x16Epi16(m);
                __m256i acc = zero;
                for (int cyc = 0; cyc < 16; ++cyc) {
                    const __m256i delta = _mm256_sub_epi16(
                        _mm256_add_epi16(m[cyc], m[cyc]), vn);
                    st = _mm256_add_epi16(st, delta);
                    st = _mm256_max_epi16(st, zero);
                    st = _mm256_min_epi16(st, vmax);
                    acc = _mm256_or_si256(
                        acc,
                        _mm256_and_si256(
                            _mm256_cmpgt_epi16(st, vthr),
                            _mm256_set1_epi16(
                                static_cast<short>(1u << cyc))));
                }
                _mm256_store_si256(
                    reinterpret_cast<__m256i *>(a16[q]), acc);
            }
            for (size_t s = 0; s < tile; ++s)
                outs[s0 + s][w] =
                    static_cast<uint64_t>(a16[0][s]) |
                    (static_cast<uint64_t>(a16[1][s]) << 16) |
                    (static_cast<uint64_t>(a16[2][s]) << 32) |
                    (static_cast<uint64_t>(a16[3][s]) << 48);
        }
        _mm256_store_si256(reinterpret_cast<__m256i *>(st_buf), st);
        for (size_t s = 0; s < tile; ++s)
            *states[s0 + s] = st_buf[s];
    }
    return n_full;
}

size_t
avx2BtanhWordsBatch(const uint16_t *const *counts, size_t length,
                    uint64_t *const *outs, uint16_t *const *states,
                    size_t n_streams, unsigned k, unsigned n_inputs)
{
    if (!enabled())
        return 0;
    // int16 lane bounds: an approximate counter can report up to
    // 2 * n_inputs, so |state + delta| < k + 4 * n_inputs must stay
    // inside the signed-16 range.
    if (k > 8192 || n_inputs > 4096)
        return 0;
    const size_t n_full = length / 64;
    if (n_full == 0 || n_streams == 0)
        return 0;
    return avx2BtanhWordsBatchImpl(counts, n_full, outs, states,
                                   n_streams, k, n_inputs);
}

__attribute__((target("avx2"))) size_t
avx2XnorPopcountMulti(const uint64_t *x_words, const WeightBlockView &block,
                      uint32_t *matches)
{
    if (!enabled())
        return 0;
    const size_t full = block.length / 64;
    const __m256i all_ones = _mm256_set1_epi8(-1);
    const __m256i zero = _mm256_setzero_si256();
    // Lane f of the 64-bit accumulator carries filter f's running
    // match count; psadbw folds each match word's byte popcounts into
    // its lane, so the loop is one broadcast, one vector load and four
    // cheap vector ops per input word for all kFilterLanes filters.
    __m256i acc = zero;
    for (size_t w = 0; w < full; ++w) {
        const __m256i xv =
            _mm256_set1_epi64x(static_cast<long long>(x_words[w]));
        const __m256i wv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(block.at(w, 0)));
        const __m256i match =
            _mm256_xor_si256(_mm256_xor_si256(xv, wv), all_ones);
        acc = _mm256_add_epi64(
            acc, _mm256_sad_epu8(popcountBytes(match), zero));
    }
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
    for (size_t f = 0; f < block.lanes; ++f)
        matches[f] += static_cast<uint32_t>(lanes[f]);
    return full;
}

#else // !SCDCNN_SIMD_X86

size_t
avx2ProductCountBlocks(const BitstreamView *, const BitstreamView *,
                       size_t, size_t, size_t, uint16_t *)
{
    return 0;
}

size_t
avx2ProductCountsMulti(const BitstreamView *, const WeightBlockView &,
                       size_t, size_t, size_t, uint16_t *, size_t)
{
    return 0;
}

size_t
avx2ProductCountsMultiBatch(const BitstreamView *, const size_t *,
                            const uint32_t *, size_t,
                            const WeightBlockView &, size_t, size_t,
                            size_t, uint16_t *, size_t, size_t)
{
    return 0;
}

size_t
avx2ProductPlanesMulti(const BitstreamView *, const WeightBlockView &,
                       size_t, size_t, size_t, size_t, uint64_t *, size_t)
{
    return 0;
}

size_t
avx2ProductPlanesMultiBatch(const BitstreamView *, const size_t *,
                            const uint32_t *, size_t,
                            const WeightBlockView &, size_t, size_t,
                            size_t, size_t, uint64_t *, size_t, size_t)
{
    return 0;
}

void
avx2SpreadPlanesWord(const uint64_t *pw, size_t n_planes, bool parity,
                     uint16_t *out)
{
    for (size_t b = 0; b < 64; ++b) {
        uint16_t c = 0;
        for (size_t j = 0; j < n_planes; ++j)
            c |= static_cast<uint16_t>((pw[j] >> b) & 1) << j;
        if (parity)
            c = static_cast<uint16_t>(
                (c & ~uint16_t{1}) |
                static_cast<uint16_t>((pw[n_planes] >> b) & 1));
        out[b] = c;
    }
}

void
avx2SpreadPlanesGroup(const uint64_t *pw, size_t n_planes, bool parity,
                      size_t group, uint16_t *out)
{
    spreadPlanesGroupScalar(pw, n_planes, parity, group, out);
}

void
avx2PlaneWordSums(const uint64_t *pw, const PlaneSumWeights &wts,
                  uint32_t *sums)
{
    planeWordSumsScalar(pw, wts, sums);
}

void
avx2PlaneWordSumsMulti(const uint64_t *const *bufs, size_t n_bufs,
                       size_t pstride, size_t n_words,
                       const PlaneSumWeights &wts, uint32_t *sums)
{
    for (size_t b = 0; b < n_bufs; ++b) {
        const uint64_t *pw = bufs[b];
        uint32_t *dst = sums + b * n_words * 4;
        for (size_t q = 0; q < n_words; ++q, pw += pstride, dst += 4) {
            dst[0] = dst[1] = dst[2] = dst[3] = 0;
            planeWordSumsScalar(pw, wts, dst);
        }
    }
}

void
avx2SpreadPlanesGroupMulti(const uint64_t *const *pws, size_t n,
                           size_t n_planes, bool parity, size_t group,
                           uint16_t *const *outs)
{
    for (size_t i = 0; i < n; ++i)
        spreadPlanesGroupScalar(pws[i], n_planes, parity, group, outs[i]);
}

size_t
avx2ProductCountTotal(const BitstreamView *, const BitstreamView *, size_t,
                      size_t, size_t, size_t, uint64_t *, uint64_t *,
                      uint64_t *)
{
    return 0;
}

uint64_t
avx2SumU16(const uint16_t *values, size_t n)
{
    uint64_t sum = 0;
    for (size_t i = 0; i < n; ++i)
        sum += values[i];
    return sum;
}

size_t
avx2BtanhWordsBatch(const uint16_t *const *, size_t, uint64_t *const *,
                    uint16_t *const *, size_t, unsigned, unsigned)
{
    return 0;
}

size_t
avx2XnorPopcountMulti(const uint64_t *, const WeightBlockView &,
                      uint32_t *)
{
    return 0;
}

#endif // SCDCNN_SIMD_X86

} // namespace simd
} // namespace sc
} // namespace scdcnn
