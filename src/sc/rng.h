/**
 * @file
 * Random number generators for stochastic number generation.
 *
 * Hardware SNGs are driven by linear-feedback shift registers (the paper
 * adopts the energy-efficient RNG design of Kim et al., ASP-DAC'16); the
 * Lfsr class models a Fibonacci LFSR with maximal-length taps for widths
 * 4..32. For Monte-Carlo harnesses (which are host-side experiments, not
 * hardware) SplitMix64/Xoshiro256** provide fast high-quality streams.
 * Everything is deterministic and seedable so experiments reproduce.
 */

#ifndef SCDCNN_SC_RNG_H
#define SCDCNN_SC_RNG_H

#include <cstdint>

namespace scdcnn {
namespace sc {

/**
 * Maximal-length Fibonacci LFSR.
 *
 * The register cycles through all 2^width - 1 non-zero states. next()
 * returns the current state and advances by one shift.
 */
class Lfsr
{
  public:
    /** @param width register width in bits (4..32)
     *  @param seed  initial state; 0 is remapped to 1 (all-zero locks up) */
    explicit Lfsr(unsigned width = 16, uint32_t seed = 1);

    /** Current state, then advance one step. */
    uint32_t next();

    /** One pseudo-random bit (the LFSR output bit), then advance. */
    bool nextBit();

    /** Register width in bits. */
    unsigned width() const { return width_; }

    /** Number of distinct states, 2^width - 1. */
    uint64_t period() const { return (uint64_t{1} << width_) - 1; }

    /** Current state without advancing. */
    uint32_t state() const { return state_; }

  private:
    unsigned width_;
    uint32_t state_;
    uint32_t tap_mask_;
};

/**
 * SplitMix64 — tiny, fast, good-quality 64-bit generator. Used to seed
 * other generators and for cheap host-side randomness.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed) : state_(seed) {}

    /** Next 64 random bits. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform double in [lo, hi). */
    double nextInRange(double lo, double hi);

  private:
    uint64_t state_;
};

/**
 * Xoshiro256** — the workhorse generator for Monte-Carlo sweeps.
 */
class Xoshiro256ss
{
  public:
    explicit Xoshiro256ss(uint64_t seed);

    /** Next 64 random bits. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform double in [lo, hi). */
    double nextInRange(double lo, double hi);

    /** Standard normal via Box-Muller. */
    double nextGaussian();

  private:
    uint64_t s_[4];
    bool have_gauss_ = false;
    double gauss_ = 0.0;
};

} // namespace sc
} // namespace scdcnn

#endif // SCDCNN_SC_RNG_H
