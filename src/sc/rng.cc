#include "sc/rng.h"

#include <bit>
#include <cmath>

#include "common/logging.h"

namespace scdcnn {
namespace sc {

namespace {

/**
 * Feedback masks for maximal-length Fibonacci LFSRs, indexed by width.
 *
 * Taken from the standard maximal polynomial tables (Xilinx XAPP052): a
 * tap at exponent t contributes bit (t-1) to the mask. The register
 * shifts left one place per step with the XOR of the tapped bits fed
 * into bit 0, which traverses all 2^width - 1 non-zero states.
 * Maximality for widths 4..20 is verified exhaustively in the unit tests.
 */
const uint32_t kTapMasks[33] = {
    0, 0, 0, 0,
    0xC,         // 4:  x^4 + x^3 + 1
    0x14,        // 5:  x^5 + x^3 + 1
    0x30,        // 6:  x^6 + x^5 + 1
    0x60,        // 7:  x^7 + x^6 + 1
    0xB8,        // 8:  x^8 + x^6 + x^5 + x^4 + 1
    0x110,       // 9:  x^9 + x^5 + 1
    0x240,       // 10: x^10 + x^7 + 1
    0x500,       // 11: x^11 + x^9 + 1
    0x829,       // 12: x^12 + x^6 + x^4 + x^1 + 1
    0x100D,      // 13: x^13 + x^4 + x^3 + x^1 + 1
    0x2015,      // 14: x^14 + x^5 + x^3 + x^1 + 1
    0x6000,      // 15: x^15 + x^14 + 1
    0xD008,      // 16: x^16 + x^15 + x^13 + x^4 + 1
    0x12000,     // 17: x^17 + x^14 + 1
    0x20400,     // 18: x^18 + x^11 + 1
    0x40023,     // 19: x^19 + x^6 + x^2 + x^1 + 1
    0x90000,     // 20: x^20 + x^17 + 1
    0x140000,    // 21: x^21 + x^19 + 1
    0x300000,    // 22: x^22 + x^21 + 1
    0x420000,    // 23: x^23 + x^18 + 1
    0xE10000,    // 24: x^24 + x^23 + x^22 + x^17 + 1
    0x1200000,   // 25: x^25 + x^22 + 1
    0x2000023,   // 26: x^26 + x^6 + x^2 + x^1 + 1
    0x4000013,   // 27: x^27 + x^5 + x^2 + x^1 + 1
    0x9000000,   // 28: x^28 + x^25 + 1
    0x14000000,  // 29: x^29 + x^27 + 1
    0x20000029,  // 30: x^30 + x^6 + x^4 + x^1 + 1
    0x48000000,  // 31: x^31 + x^28 + 1
    0x80400003u, // 32: x^32 + x^22 + x^2 + x^1 + 1
};

} // namespace

Lfsr::Lfsr(unsigned width, uint32_t seed) : width_(width)
{
    if (width_ < 4 || width_ > 32)
        fatal("Lfsr width %u unsupported (need 4..32)", width_);
    tap_mask_ = kTapMasks[width_];
    uint32_t mask =
        width_ == 32 ? 0xFFFFFFFFu : ((uint32_t{1} << width_) - 1);
    state_ = seed & mask;
    if (state_ == 0)
        state_ = 1;
}

uint32_t
Lfsr::next()
{
    uint32_t out = state_;
    uint32_t fb =
        static_cast<uint32_t>(std::popcount(state_ & tap_mask_)) & 1u;
    uint32_t mask =
        width_ == 32 ? 0xFFFFFFFFu : ((uint32_t{1} << width_) - 1);
    state_ = ((state_ << 1) | fb) & mask;
    return out;
}

bool
Lfsr::nextBit()
{
    // The serial output is the bit shifted out of the top of the register.
    return (next() >> (width_ - 1)) & 1;
}

uint64_t
SplitMix64::next()
{
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

double
SplitMix64::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

uint64_t
SplitMix64::nextBelow(uint64_t bound)
{
    SCDCNN_ASSERT(bound != 0, "nextBelow(0)");
    return next() % bound;
}

double
SplitMix64::nextInRange(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

Xoshiro256ss::Xoshiro256ss(uint64_t seed)
{
    SplitMix64 sm(seed);
    for (auto &s : s_)
        s = sm.next();
}

uint64_t
Xoshiro256ss::next()
{
    auto rotl = [](uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    };
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Xoshiro256ss::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

uint64_t
Xoshiro256ss::nextBelow(uint64_t bound)
{
    SCDCNN_ASSERT(bound != 0, "nextBelow(0)");
    return next() % bound;
}

double
Xoshiro256ss::nextInRange(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

double
Xoshiro256ss::nextGaussian()
{
    if (have_gauss_) {
        have_gauss_ = false;
        return gauss_;
    }
    double u1 = nextDouble();
    double u2 = nextDouble();
    if (u1 < 1e-300)
        u1 = 1e-300;
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    gauss_ = r * std::sin(theta);
    have_gauss_ = true;
    return r * std::cos(theta);
}

} // namespace sc
} // namespace scdcnn
