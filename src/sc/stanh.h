/**
 * @file
 * Stanh: the K-state FSM hyperbolic tangent (Brown & Card; Figure 6).
 *
 * The FSM walks up on input 1 and down on input 0, saturating at the
 * ends; the output is 1 while the state sits in the upper part of the
 * chain. For a bipolar input stream carrying x,
 *
 *     Stanh(K, x) ~= tanh(K/2 * x).
 *
 * Two output thresholds are supported:
 *  - K/2 (the classic design, Figure 6);
 *  - K/5 (the re-designed FSM of Figure 11 used by MUX-Max-Stanh, which
 *    compensates the systematic under-counting of the hardware-oriented
 *    max pooling block).
 */

#ifndef SCDCNN_SC_STANH_H
#define SCDCNN_SC_STANH_H

#include <cstddef>

#include "sc/bitstream.h"

namespace scdcnn {
namespace sc {

/**
 * Streaming K-state FSM tanh unit.
 */
class Stanh
{
  public:
    /**
     * @param k          number of FSM states (>= 2, even per the paper)
     * @param threshold  first state index that outputs 1; defaults to k/2
     */
    explicit Stanh(unsigned k, int threshold = -1);

    /** Consume one input bit, produce one output bit. */
    bool step(bool bit);

    /** Transform a whole stream (state threads across cycles). */
    Bitstream transform(const Bitstream &in);

    /** Reset the FSM to the midpoint state. */
    void reset();

    /** State count K. */
    unsigned k() const { return k_; }

    /** Output threshold state. */
    unsigned threshold() const { return threshold_; }

    /** The function the FSM approximates: tanh(K/2 * x). */
    static double reference(unsigned k, double x);

  private:
    unsigned k_;
    unsigned threshold_;
    unsigned state_;
};

} // namespace sc
} // namespace scdcnn

#endif // SCDCNN_SC_STANH_H
