/**
 * @file
 * Parallel counters: the binary-domain adders of Section 4.1.
 *
 * A parallel counter consumes n parallel stochastic bit lines and emits,
 * every cycle, the binary count of ones among them. The conventional
 * accumulative parallel counter (Parhami & Yeh) is exact; the approximate
 * parallel counter (APC) of Kim et al. (ISOCC'15, Figure 7 in the paper)
 * trades the least-significant bit for ~40% fewer gates: the paper notes
 * its output LSB carries weight 2^1, i.e. the exact parity chain is cut.
 * We model the cut as a truncated parity: the LSB is estimated from the
 * XOR of the first four input lines only (one full-adder column worth of
 * XORs) instead of all n. Each per-cycle count therefore deviates by at
 * most 1 with near-zero bias — the behaviour Table 3 quantifies.
 *
 * Counting is implemented with carry-save "vertical counters" (bit-plane
 * addition across the packed words), so cost is O(n log n / 64) word ops
 * per cycle batch rather than O(n) per bit.
 */

#ifndef SCDCNN_SC_COUNTER_H
#define SCDCNN_SC_COUNTER_H

#include <cstdint>
#include <vector>

#include "sc/bitstream.h"

namespace scdcnn {
namespace sc {

/**
 * Exact parallel counter (conventional accumulative parallel counter).
 */
class ParallelCounter
{
  public:
    /** Per-cycle exact column counts over the input streams. */
    static std::vector<uint16_t>
    counts(const std::vector<const Bitstream *> &streams);

    /** Convenience overload for owned streams. */
    static std::vector<uint16_t>
    counts(const std::vector<Bitstream> &streams);

    /** Total ones across all streams (sum of all per-cycle counts). */
    static uint64_t totalOnes(const std::vector<Bitstream> &streams);

    /**
     * Fused XNOR-multiply + count: per-cycle counts of the bipolar
     * products xs[i] XNOR ws[i], without materializing the product
     * streams (the network-scale fast path).
     */
    static std::vector<uint16_t>
    productCounts(const std::vector<const Bitstream *> &xs,
                  const std::vector<const Bitstream *> &ws);
};

/**
 * Approximate parallel counter (APC).
 */
class ApproxParallelCounter
{
  public:
    /**
     * Per-cycle approximate counts: the exact count with its LSB
     * replaced by the truncated parity of the first four lines.
     */
    static std::vector<uint16_t>
    counts(const std::vector<const Bitstream *> &streams);

    /** Fused XNOR-multiply + approximate count (cf. ParallelCounter). */
    static std::vector<uint16_t>
    productCounts(const std::vector<const Bitstream *> &xs,
                  const std::vector<const Bitstream *> &ws);

    /** Number of leading lines whose parity forms the approximate LSB. */
    static constexpr size_t kLsbParityLines = 4;

    /** Convenience overload for owned streams. */
    static std::vector<uint16_t>
    counts(const std::vector<Bitstream> &streams);

    /** Binary output width for n input lines: ceil(log2(n+1)) - 1 lines
     *  of weight >= 2 plus the pass-through LSB. */
    static unsigned outputBits(size_t n_inputs);
};

} // namespace sc
} // namespace scdcnn

#endif // SCDCNN_SC_COUNTER_H
