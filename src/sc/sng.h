/**
 * @file
 * Stochastic number generators (SNGs).
 *
 * An SNG is a comparator between a random number source and a threshold
 * register: cycle i emits 1 iff rng_i < T. With T proportional to the
 * encoded probability the stream's expected fraction of ones equals that
 * probability. Two source flavours are provided:
 *
 *  - Lfsr-driven: models the hardware SNG (Kim et al., ASP-DAC'16 RNG);
 *  - Xoshiro-driven: fast host-side source for Monte-Carlo experiments.
 *
 * Values outside the encodable range are saturated, mirroring the
 * pre-scaling requirement discussed in Section 3.2 of the paper.
 */

#ifndef SCDCNN_SC_SNG_H
#define SCDCNN_SC_SNG_H

#include <cstdint>

#include "sc/bitstream.h"
#include "sc/rng.h"

namespace scdcnn {
namespace sc {

/** Stream of @p length copies of bit @p v (bipolar +1 / -1). */
Bitstream constantStream(bool v, size_t length);

/** Unipolar stream for p in [0,1] (saturated) from an LFSR SNG. */
Bitstream sngUnipolar(double p, size_t length, Lfsr &lfsr);

/** Bipolar stream for x in [-1,1] (saturated) from an LFSR SNG. */
Bitstream sngBipolar(double x, size_t length, Lfsr &lfsr);

/** Unipolar stream from a Xoshiro-driven SNG (Monte-Carlo harnesses). */
Bitstream sngUnipolar(double p, size_t length, Xoshiro256ss &rng);

/** Bipolar stream from a Xoshiro-driven SNG (Monte-Carlo harnesses). */
Bitstream sngBipolar(double x, size_t length, Xoshiro256ss &rng);

/**
 * A bank of independent SNGs.
 *
 * Hardware shares physical RNGs between SNGs via phase shifting; for
 * simulation purposes what matters is that distinct operands receive
 * streams that are statistically independent of each other. The bank
 * derives one fresh generator per request from a master seed, so a given
 * bank instance reproduces the same stream sequence run after run.
 */
class SngBank
{
  public:
    explicit SngBank(uint64_t master_seed);

    /** Next independent bipolar stream for x in [-1,1]. */
    Bitstream bipolar(double x, size_t length);

    /** Next independent unipolar stream for p in [0,1]. */
    Bitstream unipolar(double p, size_t length);

    /** A fresh independent generator (for MUX select lines etc.). */
    Xoshiro256ss makeRng();

  private:
    SplitMix64 seeder_;
};

} // namespace sc
} // namespace scdcnn

#endif // SCDCNN_SC_SNG_H
