#include "sc/fused.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"
#include "sc/counter.h"
#include "sc/simd.h"

namespace scdcnn {
namespace sc {

namespace {

size_t
checkOperands(const std::vector<BitstreamView> &xs,
              const std::vector<BitstreamView> *ws)
{
    SCDCNN_ASSERT(!xs.empty(), "fused kernel called with zero streams");
    const size_t len = xs[0].length;
    for (const auto &s : xs)
        SCDCNN_ASSERT(s.length == len, "stream length mismatch");
    if (ws != nullptr) {
        SCDCNN_ASSERT(ws->size() == xs.size(), "operand count mismatch");
        for (const auto &s : *ws)
            SCDCNN_ASSERT(s.length == len, "weight length mismatch");
    }
    return len;
}

/**
 * Carry-save vertical count over packed words. Lines are either the
 * raw streams (ws == nullptr) or the XNOR products xs[i] ^ ~ws[i],
 * formed word-by-word without materializing product streams. The
 * approximate-counter LSB (truncated parity of the leading lines) is
 * fused into the same word pass. Full 4-word blocks go through the
 * AVX2 plane loop when available; the scalar loop handles the rest
 * (and everything, when SIMD is off).
 */
void
countsImpl(const std::vector<BitstreamView> &xs,
           const std::vector<BitstreamView> *ws, bool approximate,
           std::vector<uint16_t> &out)
{
    const size_t len = checkOperands(xs, ws);
    out.resize(len);

    const size_t n = xs.size();
    const size_t n_words = (len + 63) / 64;
    const size_t tail = len % 64;
    const uint64_t tail_mask =
        tail == 0 ? ~uint64_t{0} : ((uint64_t{1} << tail) - 1);
    const size_t parity_lines =
        approximate
            ? std::min(ApproxParallelCounter::kLsbParityLines, n)
            : 0;

    size_t w_begin = 0;
    if (simd::enabled() && n >= 2)
        w_begin = simd::avx2ProductCountBlocks(
            xs.data(), ws != nullptr ? ws->data() : nullptr, n, len,
            parity_lines, out.data());

    for (size_t w = w_begin; w < n_words; ++w) {
        const uint64_t word_mask =
            (w + 1 == n_words) ? tail_mask : ~uint64_t{0};
        uint64_t planes[kMaxCarrySavePlanes] = {0};
        uint64_t lsb = 0;
        int used = 0;
        for (size_t i = 0; i < n; ++i) {
            uint64_t carry = xs[i].words[w];
            if (ws != nullptr)
                carry = ~(carry ^ (*ws)[i].words[w]) & word_mask;
            if (i < parity_lines)
                lsb ^= carry;
            int j = 0;
            while (carry != 0) {
                SCDCNN_ASSERT(j < kMaxCarrySavePlanes,
                              "too many input streams");
                uint64_t t = planes[j] & carry;
                planes[j] ^= carry;
                carry = t;
                ++j;
            }
            if (j > used)
                used = j;
        }
        const size_t base = w * 64;
        const size_t limit = std::min<size_t>(64, len - base);
        for (size_t b = 0; b < limit; ++b) {
            uint16_t c = 0;
            for (int j = 0; j < used; ++j)
                c |= static_cast<uint16_t>((planes[j] >> b) & 1) << j;
            if (approximate)
                c = static_cast<uint16_t>(
                    (c & ~uint16_t{1}) |
                    static_cast<uint16_t>((lsb >> b) & 1));
            out[base + b] = c;
        }
    }
}

/** Shared operand checks of the filter-blocked ranged kernels;
 *  returns the cycle count covered by [begin_word, end_word). */
size_t
checkMultiOperands(const std::vector<BitstreamView> &xs,
                   const WeightBlockView &block, size_t begin_word,
                   size_t end_word)
{
    SCDCNN_ASSERT(block.lanes >= 1 && block.lanes <= kFilterLanes,
                  "bad filter block lane count %zu", block.lanes);
    SCDCNN_ASSERT(xs.size() == block.taps,
                  "operand count %zu != block taps %zu", xs.size(),
                  block.taps);
    SCDCNN_ASSERT(!xs.empty(), "fused kernel called with zero streams");
    for (const auto &s : xs)
        SCDCNN_ASSERT(s.length == block.length, "stream length mismatch");
    const size_t n_words = block.wordCount();
    SCDCNN_ASSERT(begin_word <= end_word && end_word <= n_words,
                  "bad word range [%zu, %zu) for %zu words", begin_word,
                  end_word, n_words);
    // Clamp both ends: an empty range starting at the ragged tail word
    // (begin == end == wordCount, length % 64 != 0) must yield 0, not
    // underflow.
    return std::min(end_word * 64, block.length) -
           std::min(begin_word * 64, block.length);
}

} // namespace

void
fusedProductCountsMulti(const std::vector<BitstreamView> &xs,
                        const WeightBlockView &block, bool approximate,
                        size_t begin_word, size_t end_word, uint16_t *out,
                        size_t out_stride)
{
    checkMultiOperands(xs, block, begin_word, end_word);
    const size_t len = block.length;
    const size_t n = xs.size();
    const size_t n_words = block.wordCount();
    const size_t tail = len % 64;
    const uint64_t tail_mask =
        tail == 0 ? ~uint64_t{0} : ((uint64_t{1} << tail) - 1);
    const size_t parity_lines =
        approximate
            ? std::min(ApproxParallelCounter::kLsbParityLines, n)
            : 0;

    size_t w = begin_word;
    if (simd::enabled() && n >= 2)
        w += simd::avx2ProductCountsMulti(xs.data(), block, parity_lines,
                                          begin_word, end_word, out,
                                          out_stride);

    for (; w < end_word; ++w) {
        const uint64_t word_mask =
            (w + 1 == n_words) ? tail_mask : ~uint64_t{0};
        uint64_t planes[kFilterLanes][kMaxCarrySavePlanes] = {};
        uint64_t lsbs[kFilterLanes] = {};
        int used[kFilterLanes] = {};
        const uint64_t *wrow = block.at(w, 0);
        for (size_t i = 0; i < n; ++i, wrow += kFilterLanes) {
            const uint64_t xw = xs[i].words[w];
            for (size_t f = 0; f < block.lanes; ++f) {
                uint64_t carry = ~(xw ^ wrow[f]) & word_mask;
                if (i < parity_lines)
                    lsbs[f] ^= carry;
                int j = 0;
                while (carry != 0) {
                    SCDCNN_ASSERT(j < kMaxCarrySavePlanes,
                                  "too many input streams");
                    uint64_t t = planes[f][j] & carry;
                    planes[f][j] ^= carry;
                    carry = t;
                    ++j;
                }
                if (j > used[f])
                    used[f] = j;
            }
        }
        const size_t base = (w - begin_word) * 64;
        const size_t limit = std::min<size_t>(64, len - w * 64);
        for (size_t f = 0; f < block.lanes; ++f) {
            uint16_t *dst = out + f * out_stride + base;
            for (size_t b = 0; b < limit; ++b) {
                uint16_t c = 0;
                for (int j = 0; j < used[f]; ++j)
                    c |= static_cast<uint16_t>((planes[f][j] >> b) & 1)
                         << j;
                if (approximate)
                    c = static_cast<uint16_t>(
                        (c & ~uint16_t{1}) |
                        static_cast<uint16_t>((lsbs[f] >> b) & 1));
                dst[b] = c;
            }
        }
    }
}

void
fusedMuxProductMulti(const std::vector<BitstreamView> &xs,
                     const WeightBlockView &block,
                     const std::vector<uint16_t> &selects,
                     size_t begin_word, size_t end_word, uint64_t *out,
                     size_t out_word_stride)
{
    const size_t n_cycles =
        checkMultiOperands(xs, block, begin_word, end_word);
    SCDCNN_ASSERT(selects.size() == n_cycles,
                  "select count %zu != ranged cycle count %zu",
                  selects.size(), n_cycles);
    const size_t len = block.length;
    for (size_t w = begin_word; w < end_word; ++w) {
        const size_t base = (w - begin_word) * 64;
        const size_t limit = std::min<size_t>(64, len - w * 64);
        uint64_t acc[kFilterLanes] = {};
        for (size_t b = 0; b < limit; ++b) {
            const uint16_t k = selects[base + b];
            SCDCNN_ASSERT(k < xs.size(), "select %u out of range",
                          unsigned{k});
            const uint64_t xb = (xs[k].words[w] >> b) & 1;
            const uint64_t *wrow = block.at(w, k);
            for (size_t f = 0; f < block.lanes; ++f)
                acc[f] |= (~(xb ^ (wrow[f] >> b)) & uint64_t{1}) << b;
        }
        for (size_t f = 0; f < block.lanes; ++f)
            out[f * out_word_stride + (w - begin_word)] = acc[f];
    }
}

void
fusedProductCountTotalRange(const std::vector<BitstreamView> &xs,
                            const std::vector<BitstreamView> &ws,
                            size_t begin_word, size_t end_word,
                            ProductCountAccum &acc)
{
    const size_t len = checkOperands(xs, &ws);
    const size_t n = xs.size();
    const size_t n_words = (len + 63) / 64;
    SCDCNN_ASSERT(begin_word <= end_word && end_word <= n_words,
                  "bad word range [%zu, %zu) for %zu words", begin_word,
                  end_word, n_words);
    const size_t tail = len % 64;
    const uint64_t tail_mask =
        tail == 0 ? ~uint64_t{0} : ((uint64_t{1} << tail) - 1);
    const size_t parity_lines =
        std::min(ApproxParallelCounter::kLsbParityLines, n);

    uint64_t total = 0;
    uint64_t exact_lsb_ones = 0;
    uint64_t approx_lsb_ones = 0;
    size_t w = begin_word;
    // The AVX2 reduction covers full words only; the stream's partial
    // tail word (when the range reaches it) stays scalar.
    const size_t full_end = std::min(end_word, len / 64);
    if (simd::enabled() && full_end > w)
        w += simd::avx2ProductCountTotal(xs.data(), ws.data(), n, w,
                                         full_end, parity_lines, &total,
                                         &exact_lsb_ones,
                                         &approx_lsb_ones);
    for (; w < end_word; ++w) {
        const uint64_t word_mask =
            (w + 1 == n_words) ? tail_mask : ~uint64_t{0};
        uint64_t parity_all = 0;
        uint64_t parity_leading = 0;
        for (size_t i = 0; i < n; ++i) {
            const uint64_t product =
                ~(xs[i].words[w] ^ ws[i].words[w]) & word_mask;
            total += static_cast<uint64_t>(std::popcount(product));
            parity_all ^= product;
            if (i < parity_lines)
                parity_leading ^= product;
        }
        exact_lsb_ones +=
            static_cast<uint64_t>(std::popcount(parity_all));
        approx_lsb_ones +=
            static_cast<uint64_t>(std::popcount(parity_leading));
    }
    acc.total += total;
    acc.exact_lsb_ones += exact_lsb_ones;
    acc.approx_lsb_ones += approx_lsb_ones;
}

void
fusedProductCountsMultiBatch(const std::vector<BitstreamView> &xs0,
                             const std::vector<size_t> &x_strides,
                             const uint32_t *images, size_t n_images,
                             const WeightBlockView &block, bool approximate,
                             size_t begin_word, size_t end_word,
                             uint16_t *out, size_t lane_stride,
                             size_t image_stride)
{
    checkMultiOperands(xs0, block, begin_word, end_word);
    SCDCNN_ASSERT(x_strides.size() == xs0.size(),
                  "stride count %zu != operand count %zu",
                  x_strides.size(), xs0.size());

    // Loop-order choice by weight working set. When the block's weight
    // slice fits in L1, "stationary" is a cache property, not a loop
    // order: iterating images in the outer loop keeps the slice
    // resident across the whole micro-batch anyway, and each image's
    // input-window words stay L1-hot through its word loop (the
    // word-outer order instead touches every image's window per word —
    // taps * images words of footprint, which thrashes L1 for small
    // conv blocks). Large slices (FC arenas, wide conv blocks) stream
    // from memory, so there the word-outer order below is what turns
    // one weight read into n_images uses. Both orders produce
    // bit-identical counts.
    const size_t slice_bytes = block.taps * kFilterLanes *
                               (end_word - begin_word) * sizeof(uint64_t);
    if (slice_bytes <= kImageOuterSliceBytes) {
        std::vector<BitstreamView> xs_img(xs0.size());
        for (size_t j = 0; j < n_images; ++j) {
            shiftViewsForImage(xs0, x_strides, images[j], xs_img);
            fusedProductCountsMulti(xs_img, block, approximate,
                                    begin_word, end_word,
                                    out + j * image_stride, lane_stride);
        }
        return;
    }

    const size_t len = block.length;
    const size_t n = xs0.size();
    const size_t n_words = block.wordCount();
    const size_t tail = len % 64;
    const uint64_t tail_mask =
        tail == 0 ? ~uint64_t{0} : ((uint64_t{1} << tail) - 1);
    const size_t parity_lines =
        approximate
            ? std::min(ApproxParallelCounter::kLsbParityLines, n)
            : 0;

    size_t w = begin_word;
    if (simd::enabled() && n >= 2)
        w += simd::avx2ProductCountsMultiBatch(
            xs0.data(), x_strides.data(), images, n_images, block,
            parity_lines, begin_word, end_word, out, lane_stride,
            image_stride);

    // Weight-stationary loop order: word outer, image inner, taps
    // innermost — the (word, tap) weight row is re-read from L1 for
    // every image instead of re-streamed from memory per image.
    for (; w < end_word; ++w) {
        const uint64_t word_mask =
            (w + 1 == n_words) ? tail_mask : ~uint64_t{0};
        const uint64_t *wrow0 = block.at(w, 0);
        const size_t base = (w - begin_word) * 64;
        const size_t limit = std::min<size_t>(64, len - w * 64);
        for (size_t j = 0; j < n_images; ++j) {
            const size_t img = images[j];
            uint64_t planes[kFilterLanes][kMaxCarrySavePlanes] = {};
            uint64_t lsbs[kFilterLanes] = {};
            int used[kFilterLanes] = {};
            const uint64_t *wrow = wrow0;
            for (size_t i = 0; i < n; ++i, wrow += kFilterLanes) {
                const uint64_t xw =
                    xs0[i].words[img * x_strides[i] + w];
                for (size_t f = 0; f < block.lanes; ++f) {
                    uint64_t carry = ~(xw ^ wrow[f]) & word_mask;
                    if (i < parity_lines)
                        lsbs[f] ^= carry;
                    int p = 0;
                    while (carry != 0) {
                        SCDCNN_ASSERT(p < kMaxCarrySavePlanes,
                                      "too many input streams");
                        uint64_t t = planes[f][p] & carry;
                        planes[f][p] ^= carry;
                        carry = t;
                        ++p;
                    }
                    if (p > used[f])
                        used[f] = p;
                }
            }
            for (size_t f = 0; f < block.lanes; ++f) {
                uint16_t *dst =
                    out + j * image_stride + f * lane_stride + base;
                for (size_t b = 0; b < limit; ++b) {
                    uint16_t c = 0;
                    for (int p = 0; p < used[f]; ++p)
                        c |= static_cast<uint16_t>(
                                 (planes[f][p] >> b) & 1)
                             << p;
                    if (approximate)
                        c = static_cast<uint16_t>(
                            (c & ~uint16_t{1}) |
                            static_cast<uint16_t>((lsbs[f] >> b) & 1));
                    dst[b] = c;
                }
            }
        }
    }
}

size_t
planeCapForTaps(size_t taps)
{
    return static_cast<size_t>(std::bit_width(taps));
}

void
fusedProductPlanesMulti(const std::vector<BitstreamView> &xs,
                        const WeightBlockView &block, bool approximate,
                        size_t begin_word, size_t end_word, uint64_t *out,
                        size_t plane_cap, size_t lane_stride)
{
    checkMultiOperands(xs, block, begin_word, end_word);
    SCDCNN_ASSERT(plane_cap >= planeCapForTaps(block.taps),
                  "plane cap %zu below width %zu for %zu taps", plane_cap,
                  planeCapForTaps(block.taps), block.taps);
    const size_t len = block.length;
    const size_t n = xs.size();
    const size_t n_words = block.wordCount();
    const size_t tail = len % 64;
    const uint64_t tail_mask =
        tail == 0 ? ~uint64_t{0} : ((uint64_t{1} << tail) - 1);
    const size_t parity_lines =
        approximate
            ? std::min(ApproxParallelCounter::kLsbParityLines, n)
            : 0;

    size_t w = begin_word;
    if (simd::enabled() && n >= 2)
        w += simd::avx2ProductPlanesMulti(xs.data(), block, parity_lines,
                                          begin_word, end_word, plane_cap,
                                          out, lane_stride);

    for (; w < end_word; ++w) {
        const uint64_t word_mask =
            (w + 1 == n_words) ? tail_mask : ~uint64_t{0};
        uint64_t planes[kFilterLanes][kMaxCarrySavePlanes] = {};
        uint64_t lsbs[kFilterLanes] = {};
        int used[kFilterLanes] = {};
        const uint64_t *wrow = block.at(w, 0);
        for (size_t i = 0; i < n; ++i, wrow += kFilterLanes) {
            const uint64_t xw = xs[i].words[w];
            for (size_t f = 0; f < block.lanes; ++f) {
                uint64_t carry = ~(xw ^ wrow[f]) & word_mask;
                if (i < parity_lines)
                    lsbs[f] ^= carry;
                int j = 0;
                while (carry != 0) {
                    SCDCNN_ASSERT(j < kMaxCarrySavePlanes,
                                  "too many input streams");
                    uint64_t t = planes[f][j] & carry;
                    planes[f][j] ^= carry;
                    carry = t;
                    ++j;
                }
                if (j > used[f])
                    used[f] = j;
            }
        }
        // The ripple insertion leaves fully propagated (canonical)
        // digit planes, so used never exceeds the cap.
        const size_t word_base = (w - begin_word) * (plane_cap + 1);
        for (size_t f = 0; f < block.lanes; ++f) {
            SCDCNN_ASSERT(static_cast<size_t>(used[f]) <= plane_cap,
                          "fold used %d planes, cap %zu", used[f],
                          plane_cap);
            uint64_t *dst = out + f * lane_stride + word_base;
            size_t p = 0;
            for (; p < static_cast<size_t>(used[f]); ++p)
                dst[p] = planes[f][p];
            for (; p < plane_cap; ++p)
                dst[p] = 0;
            dst[plane_cap] = lsbs[f];
        }
    }
}

void
fusedProductPlanesMultiBatch(const std::vector<BitstreamView> &xs0,
                             const std::vector<size_t> &x_strides,
                             const uint32_t *images, size_t n_images,
                             const WeightBlockView &block, bool approximate,
                             size_t begin_word, size_t end_word,
                             uint64_t *out, size_t plane_cap,
                             size_t lane_stride, size_t image_stride)
{
    checkMultiOperands(xs0, block, begin_word, end_word);
    SCDCNN_ASSERT(x_strides.size() == xs0.size(),
                  "stride count %zu != operand count %zu",
                  x_strides.size(), xs0.size());
    SCDCNN_ASSERT(plane_cap >= planeCapForTaps(block.taps),
                  "plane cap %zu below width %zu for %zu taps", plane_cap,
                  planeCapForTaps(block.taps), block.taps);

    // Same loop-order rule as fusedProductCountsMultiBatch.
    const size_t slice_bytes = block.taps * kFilterLanes *
                               (end_word - begin_word) * sizeof(uint64_t);
    if (slice_bytes <= kImageOuterSliceBytes) {
        std::vector<BitstreamView> xs_img(xs0.size());
        for (size_t j = 0; j < n_images; ++j) {
            shiftViewsForImage(xs0, x_strides, images[j], xs_img);
            fusedProductPlanesMulti(xs_img, block, approximate,
                                    begin_word, end_word,
                                    out + j * image_stride, plane_cap,
                                    lane_stride);
        }
        return;
    }

    const size_t len = block.length;
    const size_t n = xs0.size();
    const size_t n_words = block.wordCount();
    const size_t tail = len % 64;
    const uint64_t tail_mask =
        tail == 0 ? ~uint64_t{0} : ((uint64_t{1} << tail) - 1);
    const size_t parity_lines =
        approximate
            ? std::min(ApproxParallelCounter::kLsbParityLines, n)
            : 0;

    size_t w = begin_word;
    if (simd::enabled() && n >= 2)
        w += simd::avx2ProductPlanesMultiBatch(
            xs0.data(), x_strides.data(), images, n_images, block,
            parity_lines, begin_word, end_word, plane_cap, out,
            lane_stride, image_stride);

    for (; w < end_word; ++w) {
        const uint64_t word_mask =
            (w + 1 == n_words) ? tail_mask : ~uint64_t{0};
        const uint64_t *wrow0 = block.at(w, 0);
        const size_t word_base = (w - begin_word) * (plane_cap + 1);
        for (size_t j = 0; j < n_images; ++j) {
            const size_t img = images[j];
            uint64_t planes[kFilterLanes][kMaxCarrySavePlanes] = {};
            uint64_t lsbs[kFilterLanes] = {};
            int used[kFilterLanes] = {};
            const uint64_t *wrow = wrow0;
            for (size_t i = 0; i < n; ++i, wrow += kFilterLanes) {
                const uint64_t xw =
                    xs0[i].words[img * x_strides[i] + w];
                for (size_t f = 0; f < block.lanes; ++f) {
                    uint64_t carry = ~(xw ^ wrow[f]) & word_mask;
                    if (i < parity_lines)
                        lsbs[f] ^= carry;
                    int p = 0;
                    while (carry != 0) {
                        SCDCNN_ASSERT(p < kMaxCarrySavePlanes,
                                      "too many input streams");
                        uint64_t t = planes[f][p] & carry;
                        planes[f][p] ^= carry;
                        carry = t;
                        ++p;
                    }
                    if (p > used[f])
                        used[f] = p;
                }
            }
            for (size_t f = 0; f < block.lanes; ++f) {
                SCDCNN_ASSERT(static_cast<size_t>(used[f]) <= plane_cap,
                              "fold used %d planes, cap %zu", used[f],
                              plane_cap);
                uint64_t *dst =
                    out + j * image_stride + f * lane_stride + word_base;
                size_t p = 0;
                for (; p < static_cast<size_t>(used[f]); ++p)
                    dst[p] = planes[f][p];
                for (; p < plane_cap; ++p)
                    dst[p] = 0;
                dst[plane_cap] = lsbs[f];
            }
        }
    }
}

void
referenceProductCountsMultiBatch(const std::vector<BitstreamView> &xs0,
                                 const std::vector<size_t> &x_strides,
                                 const uint32_t *images, size_t n_images,
                                 const WeightBlockView &block,
                                 bool approximate, size_t begin_word,
                                 size_t end_word, uint16_t *out,
                                 size_t lane_stride, size_t image_stride)
{
    SCDCNN_ASSERT(x_strides.size() == xs0.size(),
                  "stride count %zu != operand count %zu",
                  x_strides.size(), xs0.size());
    std::vector<BitstreamView> xs_img(xs0.size());
    for (size_t j = 0; j < n_images; ++j) {
        shiftViewsForImage(xs0, x_strides, images[j], xs_img);
        referenceProductCountsMulti(xs_img, block, approximate,
                                    begin_word, end_word,
                                    out + j * image_stride, lane_stride);
    }
}

void
shiftViewsForImage(const std::vector<BitstreamView> &xs0,
                   const std::vector<size_t> &x_strides, size_t image,
                   std::vector<BitstreamView> &out)
{
    SCDCNN_ASSERT(x_strides.size() == xs0.size(),
                  "stride count %zu != operand count %zu",
                  x_strides.size(), xs0.size());
    out.resize(xs0.size());
    for (size_t i = 0; i < xs0.size(); ++i)
        out[i] = BitstreamView(xs0[i].words + image * x_strides[i],
                               xs0[i].length);
}

void
referenceProductCountsMulti(const std::vector<BitstreamView> &xs,
                            const WeightBlockView &block, bool approximate,
                            size_t begin_word, size_t end_word,
                            uint16_t *out, size_t out_stride)
{
    const size_t n_cycles =
        checkMultiOperands(xs, block, begin_word, end_word);
    const size_t n = xs.size();
    const size_t parity_lines =
        std::min(ApproxParallelCounter::kLsbParityLines, n);
    const size_t c0 = begin_word * 64;
    for (size_t f = 0; f < block.lanes; ++f) {
        for (size_t i = 0; i < n_cycles; ++i) {
            const size_t cycle = c0 + i;
            uint16_t c = 0;
            uint16_t lsb = 0;
            for (size_t t = 0; t < n; ++t) {
                const uint16_t bit =
                    xs[t].get(cycle) == block.get(f, t, cycle) ? 1 : 0;
                c = static_cast<uint16_t>(c + bit);
                if (t < parity_lines)
                    lsb ^= bit;
            }
            if (approximate)
                c = static_cast<uint16_t>((c & ~uint16_t{1}) | lsb);
            out[f * out_stride + i] = c;
        }
    }
}

void
referenceMuxProductMulti(const std::vector<BitstreamView> &xs,
                         const WeightBlockView &block,
                         const std::vector<uint16_t> &selects,
                         size_t begin_word, size_t end_word, uint64_t *out,
                         size_t out_word_stride)
{
    const size_t n_cycles =
        checkMultiOperands(xs, block, begin_word, end_word);
    SCDCNN_ASSERT(selects.size() == n_cycles,
                  "select count %zu != ranged cycle count %zu",
                  selects.size(), n_cycles);
    const size_t n_seg_words = end_word - begin_word;
    for (size_t f = 0; f < block.lanes; ++f)
        std::fill(out + f * out_word_stride,
                  out + f * out_word_stride + n_seg_words, uint64_t{0});
    const size_t c0 = begin_word * 64;
    for (size_t i = 0; i < n_cycles; ++i) {
        const uint16_t k = selects[i];
        SCDCNN_ASSERT(k < xs.size(), "select %u out of range",
                      unsigned{k});
        const bool xb = xs[k].get(c0 + i);
        for (size_t f = 0; f < block.lanes; ++f)
            if (xb == block.get(f, k, c0 + i))
                out[f * out_word_stride + i / 64] |= uint64_t{1}
                                                    << (i % 64);
    }
}

void
referenceProductCountTotalRange(const std::vector<BitstreamView> &xs,
                                const std::vector<BitstreamView> &ws,
                                size_t begin_word, size_t end_word,
                                ProductCountAccum &acc)
{
    const size_t len = checkOperands(xs, &ws);
    const size_t n = xs.size();
    const size_t n_words = (len + 63) / 64;
    SCDCNN_ASSERT(begin_word <= end_word && end_word <= n_words,
                  "bad word range [%zu, %zu) for %zu words", begin_word,
                  end_word, n_words);
    const size_t parity_lines =
        std::min(ApproxParallelCounter::kLsbParityLines, n);
    const size_t c0 = begin_word * 64;
    const size_t c1 = std::min(end_word * 64, len);
    for (size_t i = c0; i < c1; ++i) {
        uint64_t c = 0;
        uint64_t parity_all = 0;
        uint64_t parity_leading = 0;
        for (size_t t = 0; t < n; ++t) {
            const uint64_t bit = xs[t].get(i) == ws[t].get(i) ? 1 : 0;
            c += bit;
            parity_all ^= bit;
            if (t < parity_lines)
                parity_leading ^= bit;
        }
        acc.total += c;
        acc.exact_lsb_ones += parity_all;
        acc.approx_lsb_ones += parity_leading;
    }
}

void
fillMuxSelects(size_t n_inputs, size_t length, Xoshiro256ss &rng,
               std::vector<uint16_t> &selects)
{
    SCDCNN_ASSERT(n_inputs > 0, "MUX needs at least one input");
    SCDCNN_ASSERT(n_inputs <= 65536,
                  "MUX fan-in %zu exceeds the uint16_t select range",
                  n_inputs);
    selects.resize(length);
    for (size_t i = 0; i < length; ++i)
        selects[i] = static_cast<uint16_t>(rng.nextBelow(n_inputs));
}

void
fusedMuxProduct(const std::vector<BitstreamView> &xs,
                const std::vector<BitstreamView> &ws,
                const std::vector<uint16_t> &selects, Bitstream &out)
{
    const size_t len = checkOperands(xs, &ws);
    SCDCNN_ASSERT(selects.size() == len,
                  "select count %zu != stream length %zu", selects.size(),
                  len);
    out.reset(len);
    auto &words = out.mutableWords();
    const size_t n_words = words.size();
    for (size_t w = 0; w < n_words; ++w) {
        const size_t base = w * 64;
        const size_t limit = std::min<size_t>(64, len - base);
        uint64_t acc = 0;
        for (size_t b = 0; b < limit; ++b) {
            const uint16_t k = selects[base + b];
            SCDCNN_ASSERT(k < xs.size(), "select %u out of range",
                          unsigned{k});
            const uint64_t product = ~(xs[k].words[w] ^ ws[k].words[w]);
            acc |= ((product >> b) & uint64_t{1}) << b;
        }
        words[w] = acc;
    }
}

void
fusedProductCounts(const std::vector<BitstreamView> &xs,
                   const std::vector<BitstreamView> &ws, bool approximate,
                   std::vector<uint16_t> &out)
{
    countsImpl(xs, &ws, approximate, out);
}

void
fusedLineCounts(const std::vector<BitstreamView> &streams,
                bool approximate, std::vector<uint16_t> &out)
{
    countsImpl(streams, nullptr, approximate, out);
}

uint64_t
fusedProductCountTotal(const std::vector<BitstreamView> &xs,
                       const std::vector<BitstreamView> &ws,
                       bool approximate)
{
    const size_t len = checkOperands(xs, &ws);
    ProductCountAccum acc;
    fusedProductCountTotalRange(xs, ws, 0, (len + 63) / 64, acc);
    // Replacing each count's LSB changes the sum by (parity_4 - parity_n)
    // per cycle; both corrections reduce to whole-stream popcounts.
    return acc.value(approximate);
}

Bitstream
referenceMuxProduct(const std::vector<BitstreamView> &xs,
                    const std::vector<BitstreamView> &ws,
                    const std::vector<uint16_t> &selects)
{
    const size_t len = checkOperands(xs, &ws);
    SCDCNN_ASSERT(selects.size() == len,
                  "select count %zu != stream length %zu", selects.size(),
                  len);
    Bitstream out(len);
    for (size_t i = 0; i < len; ++i) {
        const uint16_t k = selects[i];
        SCDCNN_ASSERT(k < xs.size(), "select %u out of range",
                      unsigned{k});
        if (xs[k].get(i) == ws[k].get(i))
            out.set(i, true);
    }
    return out;
}

std::vector<uint16_t>
referenceProductCounts(const std::vector<BitstreamView> &xs,
                       const std::vector<BitstreamView> &ws,
                       bool approximate)
{
    const size_t len = checkOperands(xs, &ws);
    const size_t n = xs.size();
    const size_t parity_lines =
        std::min(ApproxParallelCounter::kLsbParityLines, n);
    std::vector<uint16_t> out(len);
    for (size_t i = 0; i < len; ++i) {
        uint16_t c = 0;
        uint16_t lsb = 0;
        for (size_t k = 0; k < n; ++k) {
            const uint16_t bit = xs[k].get(i) == ws[k].get(i) ? 1 : 0;
            c = static_cast<uint16_t>(c + bit);
            if (k < parity_lines)
                lsb ^= bit;
        }
        if (approximate)
            c = static_cast<uint16_t>((c & ~uint16_t{1}) | lsb);
        out[i] = c;
    }
    return out;
}

uint64_t
referenceProductCountTotal(const std::vector<BitstreamView> &xs,
                           const std::vector<BitstreamView> &ws,
                           bool approximate)
{
    uint64_t total = 0;
    for (uint16_t c : referenceProductCounts(xs, ws, approximate))
        total += c;
    return total;
}

// ------- Binary (L = 1) XNOR-popcount kernels ---------------------

void
fusedXnorPopcountMulti(const BitstreamView &x, const WeightBlockView &block,
                       uint32_t *matches)
{
    SCDCNN_ASSERT(block.taps == 1,
                  "binary weight block has %zu taps, expected 1",
                  block.taps);
    SCDCNN_ASSERT(x.length == block.length,
                  "operand length %zu != block length %zu", x.length,
                  block.length);
    for (size_t f = 0; f < block.lanes; ++f)
        matches[f] = 0;
    const size_t n_words = block.wordCount();
    size_t w = simd::avx2XnorPopcountMulti(x.words, block, matches);
    for (; w < n_words; ++w) {
        const size_t hi = std::min<size_t>(64, block.length - w * 64);
        const uint64_t mask =
            hi == 64 ? ~uint64_t{0} : (uint64_t{1} << hi) - 1;
        const uint64_t xw = x.words[w];
        const uint64_t *wrow = block.at(w, 0);
        for (size_t f = 0; f < block.lanes; ++f)
            matches[f] += static_cast<uint32_t>(
                std::popcount(~(xw ^ wrow[f]) & mask));
    }
}

void
referenceXnorPopcountMulti(const BitstreamView &x,
                           const WeightBlockView &block, uint32_t *matches)
{
    SCDCNN_ASSERT(block.taps == 1,
                  "binary weight block has %zu taps, expected 1",
                  block.taps);
    SCDCNN_ASSERT(x.length == block.length,
                  "operand length %zu != block length %zu", x.length,
                  block.length);
    for (size_t f = 0; f < block.lanes; ++f) {
        uint32_t m = 0;
        for (size_t i = 0; i < block.length; ++i)
            if (x.get(i) == block.get(f, 0, i))
                ++m;
        matches[f] = m;
    }
}

void
fusedSignPack(const int32_t *s, size_t n, uint64_t *out)
{
    const size_t n_words = (n + 63) / 64;
    for (size_t w = 0; w < n_words; ++w) {
        const size_t hi = std::min<size_t>(64, n - w * 64);
        uint64_t word = 0;
        for (size_t b = 0; b < hi; ++b)
            word |= static_cast<uint64_t>(s[w * 64 + b] >= 0) << b;
        out[w] = word;
    }
}

void
referenceSignPack(const int32_t *s, size_t n, uint64_t *out)
{
    const size_t n_words = (n + 63) / 64;
    for (size_t w = 0; w < n_words; ++w)
        out[w] = 0;
    for (size_t i = 0; i < n; ++i)
        if (s[i] >= 0)
            out[i / 64] |= uint64_t{1} << (i % 64);
}

void
fusedBinaryPool4(const int32_t *windows, size_t n_pixels, bool max_pool,
                 int32_t *out)
{
    if (max_pool) {
        for (size_t p = 0; p < n_pixels; ++p) {
            const int32_t *w = windows + 4 * p;
            out[p] = std::max(std::max(w[0], w[1]),
                              std::max(w[2], w[3]));
        }
    } else {
        for (size_t p = 0; p < n_pixels; ++p) {
            const int32_t *w = windows + 4 * p;
            out[p] = w[0] + w[1] + w[2] + w[3];
        }
    }
}

void
referenceBinaryPool4(const int32_t *windows, size_t n_pixels,
                     bool max_pool, int32_t *out)
{
    for (size_t p = 0; p < n_pixels; ++p) {
        int32_t acc = windows[4 * p];
        for (size_t w = 1; w < 4; ++w)
            acc = max_pool ? std::max(acc, windows[4 * p + w])
                           : acc + windows[4 * p + w];
        out[p] = acc;
    }
}

} // namespace sc
} // namespace scdcnn
