/**
 * @file
 * Fused word-parallel network kernels (and their bit-serial oracles).
 *
 * The inference hot path evaluates millions of XNOR-multiply + adder
 * operations per image. Materializing one intermediate Bitstream per
 * product (as the block-level API of blocks/inner_product.h does) costs
 * an allocation and a full stream traversal per operand pair; walking
 * streams one cycle at a time through Bitstream::get() costs a bounds
 * check and a word extraction per bit. The kernels here avoid both:
 *
 *  - fusedProductCounts: XNOR-product + (approximate) parallel-counter
 *    column counts computed directly on the packed uint64_t words with
 *    carry-save bit-plane addition — no product streams are ever built;
 *  - fusedMuxProduct: the MUX-based inner product driven by precomputed
 *    per-cycle select indices, gathering one product bit per cycle with
 *    direct word access;
 *  - fusedProductCountTotal: the binary output layer's accumulated
 *    count, reduced to word popcounts without per-cycle count vectors.
 *
 * Operands are BitstreamViews (pointer + length), so a layer's streams
 * can be packed into one contiguous StreamArena and streamed through;
 * convenience overloads accept Bitstream pointer vectors. The
 * carry-save plane loop and the popcount reductions dispatch to the
 * AVX2 kernels of sc/simd.h at runtime, with the portable scalar path
 * kept as the always-built default.
 *
 * Every fused kernel has a bit-serial reference twin (reference*) that
 * computes the same result one cycle at a time through the per-bit
 * view API. The twins are the correctness oracle: randomized
 * equivalence tests assert bit-exact agreement, and bench_throughput
 * measures the speedup of an engine built on one against the other.
 * See DESIGN.md for the packed-word layout and the kernel contract.
 */

#ifndef SCDCNN_SC_FUSED_H
#define SCDCNN_SC_FUSED_H

#include <cstdint>
#include <vector>

#include "sc/bitstream.h"
#include "sc/rng.h"

namespace scdcnn {
namespace sc {

/** Max supported log2(inputs) of the carry-save counters: 4096 lines
 *  (shared by the scalar and AVX2 plane loops). */
constexpr int kMaxCarrySavePlanes = 13;

/**
 * Reusable per-thread scratch space for the fused kernels.
 *
 * The network engine keeps one workspace per worker chunk so the inner
 * loops run allocation-free after warm-up: buffers are resized on first
 * use and reused for every subsequent pixel/neuron.
 */
struct FusedWorkspace
{
    std::vector<BitstreamView> xs;     //!< gathered input operands
    std::vector<BitstreamView> ws;     //!< gathered weight operands
    std::vector<uint16_t> selects;     //!< per-cycle MUX select indices
    std::vector<std::vector<uint16_t>> counts; //!< per-window APC counts
    std::vector<uint16_t> pooled;      //!< max-pooled count sequence
    std::vector<int> steps;            //!< signed pooled counter steps
    std::vector<Bitstream> streams;    //!< reusable product streams
};

/**
 * Draw one uniform select index per cycle into @p selects, resized to
 * @p length. Consumes exactly @p length nextBelow(n_inputs) draws — the
 * same sequence muxAdd() would consume — so a MUX built from these
 * selects is bit-exact with the rng-driven one. Fan-in is limited to
 * 65536 (select indices are stored as uint16_t to halve the per-pixel
 * select-buffer traffic).
 */
void fillMuxSelects(size_t n_inputs, size_t length, Xoshiro256ss &rng,
                    std::vector<uint16_t> &selects);

/**
 * Word-parallel MUX inner product: bit i of @p out is the XNOR product
 * of operand pair selects[i] at cycle i. @p out is reshaped to the
 * operand length in place (reusing its word storage when possible).
 */
void fusedMuxProduct(const std::vector<BitstreamView> &xs,
                     const std::vector<BitstreamView> &ws,
                     const std::vector<uint16_t> &selects, Bitstream &out);

/**
 * Fused XNOR-multiply + parallel-counter column counts into @p out
 * (resized to the stream length). With @p approximate the output LSB is
 * the truncated parity of the first four product lines, matching
 * ApproxParallelCounter; otherwise counts are exact.
 */
void fusedProductCounts(const std::vector<BitstreamView> &xs,
                        const std::vector<BitstreamView> &ws,
                        bool approximate, std::vector<uint16_t> &out);

/**
 * Column counts of raw lines (no multiply), exact or approximate —
 * the word-parallel core behind ParallelCounter/ApproxParallelCounter.
 */
void fusedLineCounts(const std::vector<BitstreamView> &streams,
                     bool approximate, std::vector<uint16_t> &out);

/**
 * Sum of the per-cycle product counts over the whole stream, i.e. the
 * accumulated binary-domain inner product of the output layer. Equal to
 * the sum over fusedProductCounts but computed with word popcounts
 * only: for approximate counts the identity
 *
 *   sum_t c'_t = sum_t c_t - ones(parity_all) + ones(parity_4)
 *
 * (c' = approximate count, c = exact count) reduces the whole reduction
 * to three popcount passes over the product words.
 */
uint64_t fusedProductCountTotal(const std::vector<BitstreamView> &xs,
                                const std::vector<BitstreamView> &ws,
                                bool approximate);

// ------- Filter-blocked, segment-ranged kernels -------------------
//
// The *Multi kernels take one shared window of input views plus a
// filter-interleaved weight block (sc/bitstream.h) and produce results
// for every filter lane in a single pass: each input word is loaded
// once and XNOR'd against all lanes while hot. All ranged kernels
// cover the cycles [begin_word * 64, min(end_word * 64, length)) of
// the operand streams and write segment-local outputs (index 0 maps
// to cycle begin_word * 64), which is what the segment-streaming
// engine feeds layer by layer.

/**
 * Filter-blocked XNOR-multiply + parallel-counter column counts over a
 * word range: counts for lane f, cycle begin_word * 64 + i land at
 * out[f * out_stride + i]. Exactly block.lanes lanes are written;
 * out_stride must cover the ranged cycle count. Dispatches to
 * sc/simd.h's filter-lane AVX2 plane loop at runtime.
 */
void fusedProductCountsMulti(const std::vector<BitstreamView> &xs,
                             const WeightBlockView &block,
                             bool approximate, size_t begin_word,
                             size_t end_word, uint16_t *out,
                             size_t out_stride);

/**
 * Filter-blocked MUX inner product over a word range, all lanes driven
 * by one shared per-cycle select sequence (selects[i] belongs to cycle
 * begin_word * 64 + i). Product words for lane f land at
 * out[f * out_word_stride + w - begin_word]; tail bits past the
 * stream length are kept zero.
 */
void fusedMuxProductMulti(const std::vector<BitstreamView> &xs,
                          const WeightBlockView &block,
                          const std::vector<uint16_t> &selects,
                          size_t begin_word, size_t end_word,
                          uint64_t *out, size_t out_word_stride);

/**
 * Running accumulator for a segment-streamed output-layer total: the
 * three popcount partials of fusedProductCountTotal, summed across
 * word ranges. value() applies the approximate-LSB correction.
 */
struct ProductCountAccum
{
    uint64_t total = 0;
    uint64_t exact_lsb_ones = 0;
    uint64_t approx_lsb_ones = 0;

    uint64_t value(bool approximate) const
    {
        return approximate ? total - exact_lsb_ones + approx_lsb_ones
                           : total;
    }
};

/**
 * Word-ranged accumulation of the output-layer product-count total
 * into @p acc; summing the ranges of a partition of [0, wordCount)
 * yields exactly fusedProductCountTotal's partials.
 */
void fusedProductCountTotalRange(const std::vector<BitstreamView> &xs,
                                 const std::vector<BitstreamView> &ws,
                                 size_t begin_word, size_t end_word,
                                 ProductCountAccum &acc);

/** Bit-serial oracle for fusedProductCountsMulti (per-bit view /
 *  block get()). */
void referenceProductCountsMulti(const std::vector<BitstreamView> &xs,
                                 const WeightBlockView &block,
                                 bool approximate, size_t begin_word,
                                 size_t end_word, uint16_t *out,
                                 size_t out_stride);

/** Bit-serial oracle for fusedMuxProductMulti. */
void referenceMuxProductMulti(const std::vector<BitstreamView> &xs,
                              const WeightBlockView &block,
                              const std::vector<uint16_t> &selects,
                              size_t begin_word, size_t end_word,
                              uint64_t *out, size_t out_word_stride);

/** Bit-serial oracle for fusedProductCountTotalRange. */
void referenceProductCountTotalRange(const std::vector<BitstreamView> &xs,
                                     const std::vector<BitstreamView> &ws,
                                     size_t begin_word, size_t end_word,
                                     ProductCountAccum &acc);

/** Bit-serial oracle for fusedMuxProduct (cycle-at-a-time get()). */
Bitstream referenceMuxProduct(const std::vector<BitstreamView> &xs,
                              const std::vector<BitstreamView> &ws,
                              const std::vector<uint16_t> &selects);

/** Bit-serial oracle for fusedProductCounts. */
std::vector<uint16_t>
referenceProductCounts(const std::vector<BitstreamView> &xs,
                       const std::vector<BitstreamView> &ws,
                       bool approximate);

/** Bit-serial oracle for fusedProductCountTotal. */
uint64_t
referenceProductCountTotal(const std::vector<BitstreamView> &xs,
                           const std::vector<BitstreamView> &ws,
                           bool approximate);

// ------- Bitstream-pointer convenience overloads (block APIs, tests)

inline void
fusedMuxProduct(const std::vector<const Bitstream *> &xs,
                const std::vector<const Bitstream *> &ws,
                const std::vector<uint16_t> &selects, Bitstream &out)
{
    fusedMuxProduct(toViews(xs), toViews(ws), selects, out);
}

inline void
fusedProductCounts(const std::vector<const Bitstream *> &xs,
                   const std::vector<const Bitstream *> &ws,
                   bool approximate, std::vector<uint16_t> &out)
{
    fusedProductCounts(toViews(xs), toViews(ws), approximate, out);
}

inline void
fusedLineCounts(const std::vector<const Bitstream *> &streams,
                bool approximate, std::vector<uint16_t> &out)
{
    fusedLineCounts(toViews(streams), approximate, out);
}

inline uint64_t
fusedProductCountTotal(const std::vector<const Bitstream *> &xs,
                       const std::vector<const Bitstream *> &ws,
                       bool approximate)
{
    return fusedProductCountTotal(toViews(xs), toViews(ws), approximate);
}

inline Bitstream
referenceMuxProduct(const std::vector<const Bitstream *> &xs,
                    const std::vector<const Bitstream *> &ws,
                    const std::vector<uint16_t> &selects)
{
    return referenceMuxProduct(toViews(xs), toViews(ws), selects);
}

inline std::vector<uint16_t>
referenceProductCounts(const std::vector<const Bitstream *> &xs,
                       const std::vector<const Bitstream *> &ws,
                       bool approximate)
{
    return referenceProductCounts(toViews(xs), toViews(ws), approximate);
}

inline uint64_t
referenceProductCountTotal(const std::vector<const Bitstream *> &xs,
                           const std::vector<const Bitstream *> &ws,
                           bool approximate)
{
    return referenceProductCountTotal(toViews(xs), toViews(ws),
                                      approximate);
}

} // namespace sc
} // namespace scdcnn

#endif // SCDCNN_SC_FUSED_H
