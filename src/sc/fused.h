/**
 * @file
 * Fused word-parallel network kernels (and their bit-serial oracles).
 *
 * The inference hot path evaluates millions of XNOR-multiply + adder
 * operations per image. Materializing one intermediate Bitstream per
 * product (as the block-level API of blocks/inner_product.h does) costs
 * an allocation and a full stream traversal per operand pair; walking
 * streams one cycle at a time through Bitstream::get() costs a bounds
 * check and a word extraction per bit. The kernels here avoid both:
 *
 *  - fusedProductCounts: XNOR-product + (approximate) parallel-counter
 *    column counts computed directly on the packed uint64_t words with
 *    carry-save bit-plane addition — no product streams are ever built;
 *  - fusedMuxProduct: the MUX-based inner product driven by precomputed
 *    per-cycle select indices, gathering one product bit per cycle with
 *    direct word access;
 *  - fusedProductCountTotal: the binary output layer's accumulated
 *    count, reduced to word popcounts without per-cycle count vectors.
 *
 * Operands are BitstreamViews (pointer + length), so a layer's streams
 * can be packed into one contiguous StreamArena and streamed through;
 * convenience overloads accept Bitstream pointer vectors. The
 * carry-save plane loop and the popcount reductions dispatch to the
 * AVX2 kernels of sc/simd.h at runtime, with the portable scalar path
 * kept as the always-built default.
 *
 * Every fused kernel has a bit-serial reference twin (reference*) that
 * computes the same result one cycle at a time through the per-bit
 * view API. The twins are the correctness oracle: randomized
 * equivalence tests assert bit-exact agreement, and bench_throughput
 * measures the speedup of an engine built on one against the other.
 * See DESIGN.md for the packed-word layout and the kernel contract.
 */

#ifndef SCDCNN_SC_FUSED_H
#define SCDCNN_SC_FUSED_H

#include <cstdint>
#include <vector>

#include "sc/bitstream.h"
#include "sc/rng.h"

namespace scdcnn {
namespace sc {

/** Max supported log2(inputs) of the carry-save counters: 4096 lines
 *  (shared by the scalar and AVX2 plane loops). */
constexpr int kMaxCarrySavePlanes = 13;

/**
 * Reusable per-thread scratch space for the fused kernels.
 *
 * The network engine keeps one workspace per worker chunk so the inner
 * loops run allocation-free after warm-up: buffers are resized on first
 * use and reused for every subsequent pixel/neuron.
 */
struct FusedWorkspace
{
    std::vector<BitstreamView> xs;     //!< gathered input operands
    std::vector<BitstreamView> ws;     //!< gathered weight operands
    std::vector<uint16_t> selects;     //!< per-cycle MUX select indices
    std::vector<std::vector<uint16_t>> counts; //!< per-window APC counts
    std::vector<uint16_t> pooled;      //!< max-pooled count sequence
    std::vector<int> steps;            //!< signed pooled counter steps
    std::vector<Bitstream> streams;    //!< reusable product streams
};

/**
 * Draw one uniform select index per cycle into @p selects, resized to
 * @p length. Consumes exactly @p length nextBelow(n_inputs) draws — the
 * same sequence muxAdd() would consume — so a MUX built from these
 * selects is bit-exact with the rng-driven one. Fan-in is limited to
 * 65536 (select indices are stored as uint16_t to halve the per-pixel
 * select-buffer traffic).
 */
void fillMuxSelects(size_t n_inputs, size_t length, Xoshiro256ss &rng,
                    std::vector<uint16_t> &selects);

/**
 * Word-parallel MUX inner product: bit i of @p out is the XNOR product
 * of operand pair selects[i] at cycle i. @p out is reshaped to the
 * operand length in place (reusing its word storage when possible).
 */
void fusedMuxProduct(const std::vector<BitstreamView> &xs,
                     const std::vector<BitstreamView> &ws,
                     const std::vector<uint16_t> &selects, Bitstream &out);

/**
 * Fused XNOR-multiply + parallel-counter column counts into @p out
 * (resized to the stream length). With @p approximate the output LSB is
 * the truncated parity of the first four product lines, matching
 * ApproxParallelCounter; otherwise counts are exact.
 */
void fusedProductCounts(const std::vector<BitstreamView> &xs,
                        const std::vector<BitstreamView> &ws,
                        bool approximate, std::vector<uint16_t> &out);

/**
 * Column counts of raw lines (no multiply), exact or approximate —
 * the word-parallel core behind ParallelCounter/ApproxParallelCounter.
 */
void fusedLineCounts(const std::vector<BitstreamView> &streams,
                     bool approximate, std::vector<uint16_t> &out);

/**
 * Sum of the per-cycle product counts over the whole stream, i.e. the
 * accumulated binary-domain inner product of the output layer. Equal to
 * the sum over fusedProductCounts but computed with word popcounts
 * only: for approximate counts the identity
 *
 *   sum_t c'_t = sum_t c_t - ones(parity_all) + ones(parity_4)
 *
 * (c' = approximate count, c = exact count) reduces the whole reduction
 * to three popcount passes over the product words.
 */
uint64_t fusedProductCountTotal(const std::vector<BitstreamView> &xs,
                                const std::vector<BitstreamView> &ws,
                                bool approximate);

// ------- Filter-blocked, segment-ranged kernels -------------------
//
// The *Multi kernels take one shared window of input views plus a
// filter-interleaved weight block (sc/bitstream.h) and produce results
// for every filter lane in a single pass: each input word is loaded
// once and XNOR'd against all lanes while hot. All ranged kernels
// cover the cycles [begin_word * 64, min(end_word * 64, length)) of
// the operand streams and write segment-local outputs (index 0 maps
// to cycle begin_word * 64), which is what the segment-streaming
// engine feeds layer by layer.

/**
 * Filter-blocked XNOR-multiply + parallel-counter column counts over a
 * word range: counts for lane f, cycle begin_word * 64 + i land at
 * out[f * out_stride + i]. Exactly block.lanes lanes are written;
 * out_stride must cover the ranged cycle count. Dispatches to
 * sc/simd.h's filter-lane AVX2 plane loop at runtime.
 */
void fusedProductCountsMulti(const std::vector<BitstreamView> &xs,
                             const WeightBlockView &block,
                             bool approximate, size_t begin_word,
                             size_t end_word, uint16_t *out,
                             size_t out_stride);

/**
 * Filter-blocked MUX inner product over a word range, all lanes driven
 * by one shared per-cycle select sequence (selects[i] belongs to cycle
 * begin_word * 64 + i). Product words for lane f land at
 * out[f * out_word_stride + w - begin_word]; tail bits past the
 * stream length are kept zero.
 */
void fusedMuxProductMulti(const std::vector<BitstreamView> &xs,
                          const WeightBlockView &block,
                          const std::vector<uint16_t> &selects,
                          size_t begin_word, size_t end_word,
                          uint64_t *out, size_t out_word_stride);

/**
 * Running accumulator for a segment-streamed output-layer total: the
 * three popcount partials of fusedProductCountTotal, summed across
 * word ranges. value() applies the approximate-LSB correction.
 */
struct ProductCountAccum
{
    uint64_t total = 0;
    uint64_t exact_lsb_ones = 0;
    uint64_t approx_lsb_ones = 0;

    uint64_t value(bool approximate) const
    {
        return approximate ? total - exact_lsb_ones + approx_lsb_ones
                           : total;
    }
};

/**
 * Word-ranged accumulation of the output-layer product-count total
 * into @p acc; summing the ranges of a partition of [0, wordCount)
 * yields exactly fusedProductCountTotal's partials.
 */
void fusedProductCountTotalRange(const std::vector<BitstreamView> &xs,
                                 const std::vector<BitstreamView> &ws,
                                 size_t begin_word, size_t end_word,
                                 ProductCountAccum &acc);

/** Bit-serial oracle for fusedProductCountsMulti (per-bit view /
 *  block get()). */
void referenceProductCountsMulti(const std::vector<BitstreamView> &xs,
                                 const WeightBlockView &block,
                                 bool approximate, size_t begin_word,
                                 size_t end_word, uint16_t *out,
                                 size_t out_stride);

/** Bit-serial oracle for fusedMuxProductMulti. */
void referenceMuxProductMulti(const std::vector<BitstreamView> &xs,
                              const WeightBlockView &block,
                              const std::vector<uint16_t> &selects,
                              size_t begin_word, size_t end_word,
                              uint64_t *out, size_t out_word_stride);

/** Bit-serial oracle for fusedProductCountTotalRange. */
void referenceProductCountTotalRange(const std::vector<BitstreamView> &xs,
                                     const std::vector<BitstreamView> &ws,
                                     size_t begin_word, size_t end_word,
                                     ProductCountAccum &acc);

// ------- Binary (L = 1) XNOR-popcount kernels ---------------------
//
// The binary backend (core/binary_net.h) is the SC machinery collapsed
// to one-bit streams: a sign activation or weight is a single packed
// bit, an n-tap inner product is the XNOR match count m, and the
// pre-activation integer is s = 2m - n. The kernels below are that
// backend's hot paths and follow the same discipline as the SC kernels
// above: a word-parallel fused implementation (dispatching to the AVX2
// path of sc/simd.h) with a bit-serial reference twin asserted
// bit-exact by the tests.

/**
 * Filter-blocked XNOR-popcount inner product: matches[f] accumulates
 * the number of positions in [0, block.length) where @p x and lane f's
 * packed sign-weight vector carry the same bit. x.length must equal
 * block.length and block.taps must be 1 (the binary weight arena packs
 * a filter's whole fan-in as one stream). Exactly block.lanes entries
 * of @p matches are written (overwritten, not accumulated).
 */
void fusedXnorPopcountMulti(const BitstreamView &x,
                            const WeightBlockView &block,
                            uint32_t *matches);

/** Bit-serial oracle for fusedXnorPopcountMulti (per-bit get()). */
void referenceXnorPopcountMulti(const BitstreamView &x,
                                const WeightBlockView &block,
                                uint32_t *matches);

/**
 * Popcount-sign activation: bit i of @p out is 1 when s[i] >= 0 (ties
 * activate to +1, the nn::signQuantizeBit convention). Packs @p n bits
 * into ceil(n / 64) words; tail bits of the last word are zeroed.
 */
void fusedSignPack(const int32_t *s, size_t n, uint64_t *out);

/** Bit-serial oracle for fusedSignPack (one set() per cycle). */
void referenceSignPack(const int32_t *s, size_t n, uint64_t *out);

/**
 * Binary-domain pooling over the four window pre-activations of one
 * pixel row: out[p] = max (max pooling) or sum (average pooling — the
 * sum carries the sign of the mean, which is all the popcount-sign
 * activation consumes) of windows[4p .. 4p + 4).
 */
void fusedBinaryPool4(const int32_t *windows, size_t n_pixels,
                      bool max_pool, int32_t *out);

/** Naive per-window oracle for fusedBinaryPool4. */
void referenceBinaryPool4(const int32_t *windows, size_t n_pixels,
                          bool max_pool, int32_t *out);

// ------- Batch-axis (weight-stationary) kernel variants -----------
//
// The *MultiBatch kernels run one filter block against a whole
// micro-batch of images in a single pass: each weight word is loaded
// once and XNOR'd against the corresponding input word of every image
// before the kernel advances to the next word, so the block's weight
// slice stays in registers/L1 while the activations stream. Operands
// are addressed batch-major: the caller passes the image-0 views of
// the input window plus one per-tap word stride (0 for shared streams
// like the bias line), and image b's tap t words sit at
// xs0[t].words + b * x_strides[t] — the BatchStreamArena layout.
// @p images lists the (still-active) image indices to evaluate, which
// is how Progressive early exit removes an image mid-stream without
// disturbing the others.

/** Weight-slice size (bytes) below which the batch kernel runs images
 *  in the outer loop instead of words: a slice this small stays L1-
 *  resident across the whole micro-batch regardless of loop order, and
 *  image-outer keeps each image's input window L1-hot too (word-outer
 *  touches taps * images input words per word, which thrashes L1 for
 *  small conv blocks). Larger slices stream word-outer so each weight
 *  read is amortized over every image. */
constexpr size_t kImageOuterSliceBytes = 32 * 1024;

/**
 * Batch-axis fusedProductCountsMulti: for every active position j
 * (image index images[j]), bit-exact with fusedProductCountsMulti over
 * the operand views {xs0[t].words + images[j] * x_strides[t],
 * block.length}. Counts for lane f, active position j, segment-local
 * cycle i land at out[j * image_stride + f * lane_stride + i].
 * Dispatches to sc/simd.h's batch plane loop at runtime; weight slices
 * under kImageOuterSliceBytes take the image-outer order (bit-identical
 * counts either way).
 */
void fusedProductCountsMultiBatch(const std::vector<BitstreamView> &xs0,
                                  const std::vector<size_t> &x_strides,
                                  const uint32_t *images, size_t n_images,
                                  const WeightBlockView &block,
                                  bool approximate, size_t begin_word,
                                  size_t end_word, uint16_t *out,
                                  size_t lane_stride, size_t image_stride);

/** Planes needed to hold a column count over @p taps product lines:
 *  the canonical binary width of the maximum count. */
size_t planeCapForTaps(size_t taps);

/**
 * Plane-emitting fusedProductCountsMulti: the same carry-save fold,
 * but each word's column counts are stored as their @p plane_cap
 * canonical bit-planes plus the leading-lines parity word instead of
 * being transposed into per-cycle uint16 counts. Lane f, range-local
 * word q's planes land at out[f * lane_stride + q * (plane_cap + 1)];
 * the parity word at offset plane_cap within the group. plane_cap must
 * be >= planeCapForTaps(block.taps). The max-pool batch path consumes
 * this form: segment sums come from plane popcounts and only the
 * selected input is ever transposed (see
 * blocks::binaryMaxPoolPlanesBatch).
 */
void fusedProductPlanesMulti(const std::vector<BitstreamView> &xs,
                             const WeightBlockView &block,
                             bool approximate, size_t begin_word,
                             size_t end_word, uint64_t *out,
                             size_t plane_cap, size_t lane_stride);

/** Batch-axis fusedProductPlanesMulti; operand addressing as in
 *  fusedProductCountsMultiBatch, image j's planes at
 *  out[j * image_stride]. Takes the same adaptive loop order. */
void fusedProductPlanesMultiBatch(const std::vector<BitstreamView> &xs0,
                                  const std::vector<size_t> &x_strides,
                                  const uint32_t *images, size_t n_images,
                                  const WeightBlockView &block,
                                  bool approximate, size_t begin_word,
                                  size_t end_word, uint64_t *out,
                                  size_t plane_cap, size_t lane_stride,
                                  size_t image_stride);

/** Bit-serial oracle for fusedProductCountsMultiBatch (per-image
 *  referenceProductCountsMulti over the shifted views). */
void referenceProductCountsMultiBatch(
    const std::vector<BitstreamView> &xs0,
    const std::vector<size_t> &x_strides, const uint32_t *images,
    size_t n_images, const WeightBlockView &block, bool approximate,
    size_t begin_word, size_t end_word, uint16_t *out, size_t lane_stride,
    size_t image_stride);

/**
 * Shift an image-0 operand window to image @p image: view t of @p out
 * is {xs0[t].words + image * x_strides[t], xs0[t].length}. The MUX and
 * output-layer batch paths use this to drive the per-image kernels
 * from one gathered window.
 */
void shiftViewsForImage(const std::vector<BitstreamView> &xs0,
                        const std::vector<size_t> &x_strides, size_t image,
                        std::vector<BitstreamView> &out);

/**
 * Reusable per-thread scratch for the batch-axis engine path: one
 * instance per worker chunk holds the shared image-0 operand window,
 * the per-tap strides, the batch-major count/product blocks
 * ([window][image][lane][cycle]), per-image pooling buffers, and the
 * pointer tables the interleaved FSM transforms consume.
 */
struct BatchFusedWorkspace
{
    std::vector<BitstreamView> xs0;    //!< image-0 operand views
    std::vector<size_t> x_strides;     //!< per-tap image word strides
    std::vector<BitstreamView> xs_img; //!< shifted views (MUX/output)
    std::vector<uint16_t> selects;     //!< one image's MUX selects
    std::vector<uint16_t> counts;      //!< [window][image][lane][cycle]
    std::vector<uint64_t> products;    //!< [window][image][lane][word]
    std::vector<uint16_t> pooled;      //!< [image][cycle] pooled counts
    std::vector<int> steps;            //!< [image][cycle] signed steps
    std::vector<uint64_t> pooled_words; //!< [image][word] pooled streams
    std::vector<const uint16_t *> count_ptrs; //!< FSM batch inputs
    std::vector<const uint64_t *> word_ptrs;  //!< FSM batch inputs
    std::vector<const int *> step_ptrs;       //!< FSM batch inputs
    std::vector<uint64_t *> out_ptrs;         //!< FSM batch outputs
    std::vector<uint16_t *> state_ptrs;       //!< FSM batch states
};

/** Bit-serial oracle for fusedMuxProduct (cycle-at-a-time get()). */
Bitstream referenceMuxProduct(const std::vector<BitstreamView> &xs,
                              const std::vector<BitstreamView> &ws,
                              const std::vector<uint16_t> &selects);

/** Bit-serial oracle for fusedProductCounts. */
std::vector<uint16_t>
referenceProductCounts(const std::vector<BitstreamView> &xs,
                       const std::vector<BitstreamView> &ws,
                       bool approximate);

/** Bit-serial oracle for fusedProductCountTotal. */
uint64_t
referenceProductCountTotal(const std::vector<BitstreamView> &xs,
                           const std::vector<BitstreamView> &ws,
                           bool approximate);

// ------- Bitstream-pointer convenience overloads (block APIs, tests)

inline void
fusedMuxProduct(const std::vector<const Bitstream *> &xs,
                const std::vector<const Bitstream *> &ws,
                const std::vector<uint16_t> &selects, Bitstream &out)
{
    fusedMuxProduct(toViews(xs), toViews(ws), selects, out);
}

inline void
fusedProductCounts(const std::vector<const Bitstream *> &xs,
                   const std::vector<const Bitstream *> &ws,
                   bool approximate, std::vector<uint16_t> &out)
{
    fusedProductCounts(toViews(xs), toViews(ws), approximate, out);
}

inline void
fusedLineCounts(const std::vector<const Bitstream *> &streams,
                bool approximate, std::vector<uint16_t> &out)
{
    fusedLineCounts(toViews(streams), approximate, out);
}

inline uint64_t
fusedProductCountTotal(const std::vector<const Bitstream *> &xs,
                       const std::vector<const Bitstream *> &ws,
                       bool approximate)
{
    return fusedProductCountTotal(toViews(xs), toViews(ws), approximate);
}

inline Bitstream
referenceMuxProduct(const std::vector<const Bitstream *> &xs,
                    const std::vector<const Bitstream *> &ws,
                    const std::vector<uint16_t> &selects)
{
    return referenceMuxProduct(toViews(xs), toViews(ws), selects);
}

inline std::vector<uint16_t>
referenceProductCounts(const std::vector<const Bitstream *> &xs,
                       const std::vector<const Bitstream *> &ws,
                       bool approximate)
{
    return referenceProductCounts(toViews(xs), toViews(ws), approximate);
}

inline uint64_t
referenceProductCountTotal(const std::vector<const Bitstream *> &xs,
                           const std::vector<const Bitstream *> &ws,
                           bool approximate)
{
    return referenceProductCountTotal(toViews(xs), toViews(ws),
                                      approximate);
}

} // namespace sc
} // namespace scdcnn

#endif // SCDCNN_SC_FUSED_H
