#include "sc/ops.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace scdcnn {
namespace sc {

Bitstream
andMultiply(const Bitstream &a, const Bitstream &b)
{
    return a & b;
}

Bitstream
xnorMultiply(const Bitstream &a, const Bitstream &b)
{
    return a.xnor(b);
}

Bitstream
orAdd(const std::vector<Bitstream> &inputs)
{
    SCDCNN_ASSERT(!inputs.empty(), "orAdd with no inputs");
    Bitstream out = inputs[0];
    for (size_t i = 1; i < inputs.size(); ++i)
        out = out | inputs[i];
    return out;
}

Bitstream
muxAdd(const std::vector<Bitstream> &inputs, Xoshiro256ss &rng)
{
    SCDCNN_ASSERT(!inputs.empty(), "muxAdd with no inputs");
    const size_t n = inputs.size();
    const size_t len = inputs[0].length();
    Bitstream out(len);
    auto &words = out.mutableWords();
    for (size_t i = 0; i < len; ++i) {
        size_t sel = static_cast<size_t>(rng.nextBelow(n));
        if (inputs[sel].get(i))
            words[i / 64] |= uint64_t{1} << (i % 64);
    }
    return out;
}

Bitstream
muxAddWithSelects(const std::vector<Bitstream> &inputs,
                  const std::vector<uint32_t> &selects)
{
    SCDCNN_ASSERT(!inputs.empty(), "muxAddWithSelects with no inputs");
    const size_t len = inputs[0].length();
    SCDCNN_ASSERT(selects.size() == len,
                  "select count %zu != stream length %zu",
                  selects.size(), len);
    Bitstream out(len);
    auto &words = out.mutableWords();
    for (size_t i = 0; i < len; ++i) {
        uint32_t sel = selects[i];
        SCDCNN_ASSERT(sel < inputs.size(), "select %u out of range", sel);
        if (inputs[sel].get(i))
            words[i / 64] |= uint64_t{1} << (i % 64);
    }
    return out;
}

double
scc(const Bitstream &a, const Bitstream &b)
{
    SCDCNN_ASSERT(a.length() == b.length() && a.length() > 0,
                  "scc needs equal nonzero lengths");
    const double len = static_cast<double>(a.length());
    const double p1 = a.unipolar();
    const double p2 = b.unipolar();
    const double p11 = static_cast<double>((a & b).countOnes()) / len;
    const double delta = p11 - p1 * p2;

    if (std::abs(delta) < 1e-12)
        return 0.0;
    if (delta > 0) {
        double denom = std::min(p1, p2) - p1 * p2;
        return denom <= 0 ? 0.0 : delta / denom;
    }
    double denom = p1 * p2 - std::max(p1 + p2 - 1.0, 0.0);
    return denom <= 0 ? 0.0 : delta / denom;
}

} // namespace sc
} // namespace scdcnn
