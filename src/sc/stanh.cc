#include "sc/stanh.h"

#include <cmath>

#include "common/logging.h"

namespace scdcnn {
namespace sc {

Stanh::Stanh(unsigned k, int threshold) : k_(k)
{
    if (k_ < 2)
        fatal("Stanh needs at least 2 states, got %u", k_);
    threshold_ = threshold < 0 ? k_ / 2 : static_cast<unsigned>(threshold);
    SCDCNN_ASSERT(threshold_ < k_, "Stanh threshold %u >= K %u",
                  threshold_, k_);
    state_ = k_ / 2;
    if (state_ == k_)
        state_ = k_ - 1;
}

bool
Stanh::step(bool bit)
{
    if (bit) {
        if (state_ + 1 < k_)
            ++state_;
    } else {
        if (state_ > 0)
            --state_;
    }
    return state_ >= threshold_;
}

Bitstream
Stanh::transform(const Bitstream &in)
{
    Bitstream out(in.length());
    auto &words = out.mutableWords();
    for (size_t i = 0; i < in.length(); ++i) {
        if (step(in.get(i)))
            words[i / 64] |= uint64_t{1} << (i % 64);
    }
    return out;
}

void
Stanh::reset()
{
    state_ = k_ / 2;
    if (state_ == k_)
        state_ = k_ - 1;
}

double
Stanh::reference(unsigned k, double x)
{
    return std::tanh(static_cast<double>(k) / 2.0 * x);
}

} // namespace sc
} // namespace scdcnn
