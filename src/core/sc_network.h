/**
 * @file
 * The bit-level SC-DCNN inference engine.
 *
 * Runs any sequential conv/pool/fc network (the paper's LeNet5
 * included) entirely in the stochastic-computing domain: pixels and
 * (quantized) trained weights enter through SNGs as bipolar
 * bit-streams; every layer is evaluated by feature extraction blocks
 * (XNOR multipliers + MUX/APC adders + pooling + Stanh/Btanh) exactly
 * as the configured hardware would; the final fc layer runs in the
 * binary domain (APC counts accumulated per class, argmax). The
 * feature-extraction-block structure is derived from the layer list
 * by nn/topology.h's plan derivation, not pattern-matched against a
 * fixed shape.
 *
 * Weight streams are generated once per network instance and shared by
 * all feature extraction blocks of a filter, mirroring the
 * filter-aware SRAM sharing scheme of Section 5.1. Each filter's /
 * neuron's weight streams — and each layer's pixel streams — are
 * packed into one contiguous StreamArena, so the fused kernels stream
 * through memory via BitstreamViews instead of chasing per-Bitstream
 * heap allocations.
 */

#ifndef SCDCNN_CORE_SC_NETWORK_H
#define SCDCNN_CORE_SC_NETWORK_H

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "blocks/pooling.h"
#include "core/binary_net.h"
#include "core/sc_config.h"
#include "nn/dataset.h"
#include "nn/network.h"
#include "nn/topology.h"
#include "sc/bitstream.h"
#include "sc/fsm_batch.h"
#include "sc/fused.h"
#include "sc/rng.h"

namespace scdcnn {

class ThreadPool;

namespace core {

/**
 * Which kernel implementation the engine runs on.
 *
 * Fused is the production path: filter-blocked word-parallel kernels
 * over the packed uint64_t words (SIMD-dispatched where available),
 * table-driven activation FSMs, reusable per-thread workspaces,
 * layers fanned out across the thread pool, the whole network
 * advanced in stream segments (ScNetworkConfig::stream_segment_words)
 * with FSM/pooling/select state carried across segments. Reference
 * drives the same network structure through the bit-serial oracle
 * kernels (one bit per cycle, whole streams) and the scalar
 * Stanh/Btanh steppers — the ground truth the fused path is tested
 * against and the baseline bench_throughput measures speedup over.
 * Progressive is Fused plus stochastic computing's progressive
 * precision: after each segment the output layer's class-score gap is
 * tested and the remaining segments are skipped once the argmax
 * margin exceeds ScNetworkConfig::progressive_margin — a
 * latency/accuracy trade, so it is opt-in and never the default.
 * Fused and Reference consume identical RNG sequences, so their
 * predictions are bit-exact across modes, segment sizes, and thread
 * counts.
 * Binary is the XNOR-popcount sibling backend (core/binary_net.h):
 * the same derived plan executed at stream length 1 with
 * sign-quantized weights, popcount-sign activations, and no stream
 * sampling at all — fully deterministic (seeds are ignored), roughly
 * an order of magnitude faster than Fused, and differentially tested
 * for exact equality against a float sign-network oracle.
 */
enum class EngineMode
{
    Fused,
    Reference,
    Progressive,
    Binary,
};

/**
 * Which execution strategy forwardBatch uses for a micro-batch.
 *
 * Batched is the weight-stationary batch-axis path: each filter
 * block's weight words are loaded once per segment and XNORed against
 * the corresponding input-window words of every image in the batch
 * before advancing, so weights stay cache-resident while activations
 * stream. Loop is the original per-image predictWith fan-out — the
 * differential oracle the batched path is tested against. Both paths
 * consume identical per-image RNG sequences and are bit-exact with
 * each other and with per-image predict() calls at the same seeds.
 */
enum class BatchPath
{
    Batched,
    Loop,
};

/**
 * Cooperative cancellation signal checked at stream-segment
 * boundaries. Implementations must be thread-safe and cheap: the
 * engine queries it between segments (never inside a kernel), so a
 * cancelled forward pass stops burning stream cycles at the next
 * checkpoint instead of running to completion for a caller that no
 * longer wants the answer. The partial result up to the boundary is
 * still well-formed (scores over the consumed prefix, reported via
 * ForwardInfo with `cancelled` set); cancellation of one image in a
 * batch never perturbs its batch-mates — the image is removed from
 * the active set exactly like a Progressive early exit.
 */
class CancelSignal
{
  public:
    virtual ~CancelSignal() = default;
    virtual bool cancelled() const = 0;
};

/**
 * Per-forward-pass outcome details (scores and, in Progressive mode,
 * the effective stream length actually consumed).
 */
struct ForwardInfo
{
    std::vector<double> scores; //!< output-layer bipolar-sum scores
    size_t effective_bits = 0;  //!< stream cycles consumed
    bool early_exit = false;    //!< Progressive margin test fired
    bool cancelled = false;     //!< stopped by a CancelSignal
};

/**
 * Per-call engine selection: predictWith() evaluates with these
 * instead of the instance-wide engineMode()/config knobs, so callers
 * that share one ScNetwork across threads (the serving layer) can mix
 * precision policies per request without mutating shared state —
 * setEngineMode() is not thread-safe against concurrent predict()
 * calls, PredictOptions is.
 */
struct PredictOptions
{
    EngineMode mode = EngineMode::Fused;
    /** Progressive early-exit margin (ignored unless mode is
     *  Progressive); see ScNetworkConfig::progressive_margin. */
    double progressive_margin = kDefaultProgressiveMargin;
    /** Progressive floor on consumed stream cycles. */
    size_t progressive_min_bits = kDefaultProgressiveMinBits;
    /** forwardBatch execution strategy; ignored by predict(). */
    BatchPath batch_path = BatchPath::Batched;
    /**
     * Cooperative cancellation for predict()/predictWith(): polled at
     * segment boundaries (no effect when the stream runs as one
     * segment, e.g. Reference mode). Batch calls take a per-image
     * signal array instead — see forwardBatch. Must outlive the call.
     */
    const CancelSignal *cancel = nullptr;
};

/**
 * Wall-clock nanoseconds spent in each phase of a forward pass,
 * accumulated across all worker threads (so with more than one thread
 * the phases sum to CPU time, not wall time; on one thread they are
 * the same). bench_throughput divides these into the per-phase
 * breakdown written to BENCH_throughput.json.
 */
struct PhaseBreakdown
{
    std::atomic<uint64_t> encode_ns{0};        //!< SNG image encoding
    std::atomic<uint64_t> inner_product_ns{0}; //!< XNOR + MUX/APC adders
    std::atomic<uint64_t> pooling_ns{0};       //!< avg / max pooling
    std::atomic<uint64_t> activation_ns{0};    //!< Stanh / Btanh
    std::atomic<uint64_t> output_ns{0};        //!< binary output layer
};

/**
 * SC-domain network built from a trained float network.
 *
 * Accepts any sequential conv/pool/fc topology the plan grammar of
 * nn/topology.h supports (buildLeNet5() is one instance): the
 * feature-extraction-block structure — geometry, fan-ins, FSM gains,
 * arena sizes, paper-group knobs — is derived from the layer list at
 * construction, with per-layer diagnostics for unsupported shapes.
 */
class ScNetwork
{
  public:
    /**
     * @param trained     a trained sequential conv/pool/fc network
     *                    (validated against cfg.input_c/h/w geometry)
     * @param cfg         per-group FEB configuration + input geometry
     * @param weight_seed seed for the weight-stream SNGs
     */
    ScNetwork(const nn::Network &trained, ScNetworkConfig cfg,
              uint64_t weight_seed = 0xC0FFEE);

    /**
     * SC-domain forward pass + argmax for one image. When @p profile
     * is non-null, per-phase wall time is accumulated into it; when
     * @p info is non-null, the class scores and the effective stream
     * length (== bitstream_len except under Progressive early exit)
     * are reported there.
     */
    size_t predict(const nn::Tensor &image, uint64_t seed,
                   PhaseBreakdown *profile = nullptr,
                   ForwardInfo *info = nullptr) const;

    /**
     * predict() with per-call engine/precision selection. Reads no
     * instance-wide mode state, so concurrent callers may use
     * different options against one shared network.
     */
    size_t predictWith(const nn::Tensor &image, uint64_t seed,
                       const PredictOptions &opts,
                       PhaseBreakdown *profile = nullptr,
                       ForwardInfo *info = nullptr) const;

    /**
     * Batched forward pass: predictions for every image, fanned out
     * across @p pool (the process-global pool when null). Image i runs
     * at seed + i * 7919; every per-site generator is derived from
     * position, not evaluation order, so the result is identical for
     * any thread count — including 1 — and matches per-image predict()
     * calls at the same seeds.
     */
    std::vector<size_t> forwardBatch(const std::vector<nn::Tensor> &images,
                                     uint64_t seed,
                                     ThreadPool *pool = nullptr) const;

    /**
     * forwardBatch with per-image outcome details: when @p infos is
     * non-null it is resized to images.size() and entry i receives the
     * scores / effective_bits / early_exit of image i — what batch
     * callers (the serving layer) need beyond the bare class index.
     * The seed schedule and predictions are identical to the overload
     * above; @p opts selects the engine per the predictWith() rules.
     */
    std::vector<size_t> forwardBatch(const std::vector<nn::Tensor> &images,
                                     uint64_t seed,
                                     const PredictOptions &opts,
                                     ThreadPool *pool,
                                     std::vector<ForwardInfo> *infos) const;

    /**
     * forwardBatch with an explicit per-image seed (seeds.size() must
     * equal images.size()) instead of the seed + i * 7919 schedule —
     * the serving layer's micro-batches carry caller-chosen seeds, so
     * they cannot be expressed as a base-seed schedule. Image i is
     * bit-exact with predictWith(images[i], seeds[i], opts) on every
     * path.
     *
     * @p cancels, when non-null, carries one CancelSignal per image
     * (null entries = not cancellable): image i's signal is polled at
     * segment boundaries, and a cancelled image freezes in place and
     * leaves the active set exactly like a Progressive early exit —
     * its batch-mates' streams and results are untouched. Overrides
     * opts.cancel on the per-image fallback path.
     */
    std::vector<size_t>
    forwardBatch(const std::vector<nn::Tensor> &images,
                 const std::vector<uint64_t> &seeds,
                 const PredictOptions &opts, ThreadPool *pool,
                 std::vector<ForwardInfo> *infos,
                 const std::vector<const CancelSignal *> *cancels =
                     nullptr) const;

    /**
     * Whether forwardBatch would take the weight-stationary batch
     * kernels for a micro-batch of @p n_images under @p opts: more
     * than one image, opts.batch_path == BatchPath::Batched, and a
     * non-Reference, non-Binary mode (the bit-serial oracle always
     * runs the per-image loop; the binary backend is deterministic
     * per image, so the parallel per-image loop already is its batch
     * path). What the serving layer records per batch.
     */
    static bool batchKernelEligible(const PredictOptions &opts,
                                    size_t n_images)
    {
        return n_images > 1 && opts.batch_path == BatchPath::Batched &&
               opts.mode != EngineMode::Reference &&
               opts.mode != EngineMode::Binary;
    }

    /**
     * Classification error rate over (up to @p max_images of) the
     * dataset. Routed through forwardBatch — the one place the
     * per-image seed schedule and the parallel loop live — so results
     * are reproducible from the batch predictions; @p pool as in
     * forwardBatch.
     */
    double errorRate(const nn::Dataset &ds, size_t max_images,
                     uint64_t seed = 777, ThreadPool *pool = nullptr) const;

    /** Select the fused fast path (default) or the bit-serial
     *  reference oracle. Predictions are bit-exact across modes. */
    void setEngineMode(EngineMode mode) { engine_ = mode; }

    /** The kernel implementation currently selected. */
    EngineMode engineMode() const { return engine_; }

    /** The configuration this instance implements. */
    const ScNetworkConfig &config() const { return cfg_; }

    /**
     * Output attenuation of hidden stage @p layer relative to the
     * float network's activation: the ratio g_sc / g_float between
     * the gain the SC activation unit realizes and the gain the float
     * baseline was trained with. 1.0 when the unit could match the
     * trained gain; below 1.0 when the FSM mixing-time clamp forced a
     * smaller state count. The next layer's weight streams are
     * programmed at w / layerGain (saturating in the SNG — the
     * paper's pre-scaling) to compensate.
     */
    double layerGain(size_t layer) const { return layer_gain_.at(layer); }

    /** The activation state count hidden stage @p layer operates with. */
    unsigned layerStateCount(size_t layer) const
    {
        return layer_k_.at(layer);
    }

    /** Hidden feature-extraction stages (3 for LeNet5). */
    size_t stageCount() const { return plan_.stages.size(); }

    /** The derived construction plan this instance was built from. */
    const nn::NetworkPlan &plan() const { return plan_; }

    /** The XNOR-popcount sibling backend EngineMode::Binary runs —
     *  built from the same trained net and plan at construction. */
    const BinaryNetwork &binaryNet() const { return binary_; }

  private:
    /** The per-call options the instance-wide knobs (engineMode(),
     *  config()) translate to — what predict()/legacy forwardBatch
     *  pass to predictWith. */
    PredictOptions defaultOptions() const
    {
        PredictOptions opts;
        opts.mode = engine_;
        opts.progressive_margin = cfg_.progressive_margin;
        opts.progressive_min_bits = cfg_.progressive_min_bits;
        return opts;
    }

    /** A (c, h, w) grid of bit-streams packed into one arena. */
    struct StreamGrid
    {
        size_t c = 0, h = 0, w = 0;
        sc::StreamArena arena;

        sc::BitstreamView at(size_t ci, size_t y, size_t x) const
        {
            return arena.view((ci * h + y) * w + x);
        }
    };

    /** Conv layer weight streams, one arena slot per (filter, tap):
     *  filter f's streams are slots [f*n, (f+1)*n), n = c_in*k*k + 1
     *  (bias last). The Reference path reads the plain arena; the
     *  fused path reads the filter-interleaved copy (same words, the
     *  layout the filter-blocked kernels stream through). */
    struct ConvWeightStreams
    {
        size_t c_in = 0, c_out = 0, k = 0;
        size_t n_per_filter = 0;
        sc::StreamArena arena;
        sc::InterleavedWeightArena blocked;

        sc::BitstreamView at(size_t filter, size_t i) const
        {
            return arena.view(filter * n_per_filter + i);
        }
    };

    /** FC layer weight streams, neuron o's streams at slots
     *  [o*(n_in+1), ...] (bias last); interleaved copy as above. */
    struct FcWeightStreams
    {
        size_t n_in = 0, n_out = 0;
        sc::StreamArena arena;
        sc::InterleavedWeightArena blocked;

        sc::BitstreamView at(size_t neuron, size_t i) const
        {
            return arena.view(neuron * (n_in + 1) + i);
        }
    };

    /** One segment of the stream axis: words [w0, w1) covering cycles
     *  [c0, c0 + n_cycles). */
    struct SegRange
    {
        size_t w0 = 0, w1 = 0;
        size_t c0 = 0, n_cycles = 0;
    };

    /** Per-forward carried state of a conv layer: the output grid plus
     *  per-pixel activation-FSM states, pooling-selector carry, and
     *  (MUX layers) the per-site generators, all indexed positionally
     *  so any thread partition reproduces the same streams. */
    struct ConvRun
    {
        StreamGrid out;
        std::vector<uint16_t> fsm;
        std::vector<blocks::MaxPoolCarryState> pool;
        std::vector<sc::Xoshiro256ss> sel_rng;  //!< per (group, position, window)
        std::vector<sc::Xoshiro256ss> pool_rng; //!< per pixel (MUX avg)
    };

    /** Per-forward carried state of an FC layer. */
    struct FcRun
    {
        sc::StreamArena out;
        std::vector<uint16_t> fsm;
        std::vector<sc::Xoshiro256ss> sel_rng; //!< per neuron group
    };

    /** Per-forward carried state of the binary output layer. */
    struct OutputRun
    {
        std::vector<sc::ProductCountAccum> acc; //!< per class
        size_t consumed = 0;                    //!< cycles accumulated
    };

    /** Batch-axis counterpart of StreamGrid: one (c, h, w) grid of
     *  streams per image, packed site-major / image-minor so the batch
     *  kernels address image b of a site as the image-0 view plus
     *  b * strideWords() words. */
    struct BatchStreamGrid
    {
        size_t c = 0, h = 0, w = 0;
        sc::BatchStreamArena arena;

        sc::BitstreamView at(size_t ci, size_t y, size_t x,
                             size_t b) const
        {
            return arena.view((ci * h + y) * w + x, b);
        }
    };

    /** Per-forward carried state of a conv layer on the batch path:
     *  every per-site quantity of ConvRun replicated per image,
     *  indexed site * B + image so an image's state freezes in place
     *  when Progressive removes it from the active set. */
    struct ConvBatchRun
    {
        BatchStreamGrid out;
        std::vector<uint16_t> fsm;                   //!< [pixel][image]
        std::vector<blocks::MaxPoolCarryState> pool; //!< [pixel][image]
        std::vector<sc::Xoshiro256ss> sel_rng;       //!< [site][image]
        std::vector<sc::Xoshiro256ss> pool_rng;      //!< [pixel][image]
    };

    /** Per-forward carried state of an FC layer on the batch path. */
    struct FcBatchRun
    {
        sc::BatchStreamArena out;
        std::vector<uint16_t> fsm;             //!< [neuron][image]
        std::vector<sc::Xoshiro256ss> sel_rng; //!< [group][image]
    };

    /** Per-forward carried state of the output layer on the batch
     *  path: accumulators per (class, image) plus per-image consumed
     *  cycles (frozen at exit time under Progressive). */
    struct OutputBatchRun
    {
        std::vector<sc::ProductCountAccum> acc; //!< [class][image]
        std::vector<size_t> consumed;           //!< [image]
    };

    StreamGrid encodeImage(const nn::Tensor &image, uint64_t seed,
                           PhaseBreakdown *profile) const;

    BatchStreamGrid encodeImagesBatch(const std::vector<nn::Tensor> &images,
                                      const std::vector<uint64_t> &seeds,
                                      ThreadPool *pool) const;

    void initConvBatchRun(ConvBatchRun &run, const BatchStreamGrid &in,
                          const ConvWeightStreams &weights,
                          size_t layer_idx,
                          const std::vector<uint64_t> &seeds) const;

    void initFcBatchRun(FcBatchRun &run, const FcWeightStreams &weights,
                        size_t layer_idx,
                        const std::vector<uint64_t> &seeds) const;

    void runConvLayerSegmentBatch(const BatchStreamGrid &in,
                                  const ConvWeightStreams &weights,
                                  size_t layer_idx, const SegRange &seg,
                                  const std::vector<uint32_t> &active,
                                  ConvBatchRun &run,
                                  ThreadPool *pool) const;

    void runFcLayerSegmentBatch(const std::vector<sc::BitstreamView> &in0,
                                const std::vector<size_t> &in_strides,
                                const FcWeightStreams &weights,
                                size_t layer_idx, const SegRange &seg,
                                const std::vector<uint32_t> &active,
                                FcBatchRun &run, ThreadPool *pool) const;

    void runOutputSegmentBatch(const std::vector<sc::BitstreamView> &in0,
                               const std::vector<size_t> &in_strides,
                               const FcWeightStreams &weights,
                               const SegRange &seg,
                               const std::vector<uint32_t> &active,
                               OutputBatchRun &run) const;

    /** The weight-stationary batch driver behind forwardBatch: one
     *  shared segment loop advancing every active image through every
     *  layer, with per-image Progressive early exit compacting the
     *  active set mid-stream. Bit-exact with per-image predictWith at
     *  seeds[i]. */
    std::vector<size_t>
    forwardBatchFused(const std::vector<nn::Tensor> &images,
                      const std::vector<uint64_t> &seeds,
                      const PredictOptions &opts, ThreadPool *pool,
                      std::vector<ForwardInfo> *infos,
                      const std::vector<const CancelSignal *> *cancels)
        const;

    void initConvRun(ConvRun &run, const StreamGrid &in,
                     const ConvWeightStreams &weights, size_t layer_idx,
                     uint64_t seed) const;

    void initFcRun(FcRun &run, const FcWeightStreams &weights,
                   size_t layer_idx, uint64_t seed) const;

    void runConvLayerSegment(const StreamGrid &in,
                             const ConvWeightStreams &weights,
                             size_t layer_idx, const SegRange &seg,
                             ConvRun &run, EngineMode mode,
                             PhaseBreakdown *profile) const;

    void runFcLayerSegment(const std::vector<sc::BitstreamView> &in,
                           const FcWeightStreams &weights,
                           size_t layer_idx, const SegRange &seg,
                           FcRun &run, EngineMode mode,
                           PhaseBreakdown *profile) const;

    void runOutputSegment(const std::vector<sc::BitstreamView> &in,
                          const FcWeightStreams &weights,
                          const SegRange &seg, OutputRun &run,
                          EngineMode mode,
                          PhaseBreakdown *profile) const;

    /** The FEB kind hidden stage @p layer runs with (derived from its
     *  paper group and whether the stage pools). */
    blocks::FebKind stageFebKind(size_t layer) const
    {
        const nn::PlanStage &st = plan_.stages[layer];
        return cfg_.febKindFor(st.paper_group, st.pooled);
    }

    ScNetworkConfig cfg_;
    nn::NetworkPlan plan_;
    EngineMode engine_ = EngineMode::Fused;
    sc::Bitstream bias_line_; //!< the constant +1 stream

    /** Weight streams of the hidden stages, in plan order: conv
     *  stages first (convs_[l] is stage l), then the hidden fc stages
     *  (fcs_[l - convs_.size()]), then the binary output layer. */
    std::vector<ConvWeightStreams> convs_;
    std::vector<FcWeightStreams> fcs_;
    FcWeightStreams out_;

    std::vector<double> layer_gain_;
    std::vector<unsigned> layer_k_;

    /** Batched activation tables, built once at construction and
     *  shared by all pixels of a layer (null where the layer's FEB
     *  kind uses the other activation family). */
    sc::FsmTableCache fsm_tables_;
    std::vector<const sc::StanhBatchTable *> stanh_tables_;
    std::vector<const sc::BtanhBatchTable *> btanh_tables_;

    /** The EngineMode::Binary backend (declared after plan_: it is
     *  built from the trained net and the already-derived plan). */
    BinaryNetwork binary_;
};

} // namespace core
} // namespace scdcnn

#endif // SCDCNN_CORE_SC_NETWORK_H
