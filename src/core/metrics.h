/**
 * @file
 * Result assembly: joins measured SC accuracy with the hardware cost
 * model into Table 6 rows, the Table 7 platform comparison, and the
 * Figure 16 noise-injection harness.
 */

#ifndef SCDCNN_CORE_METRICS_H
#define SCDCNN_CORE_METRICS_H

#include <string>
#include <vector>

#include "core/sc_config.h"
#include "nn/dataset.h"
#include "nn/network.h"

namespace scdcnn {
namespace core {

/** One reproduced Table 6 row. */
struct Table6Row
{
    int number;
    std::string pooling;     //!< "Max" / "Average"
    size_t bitstream_len;
    std::string layer0, layer1, layer2;
    double inaccuracy_pct;   //!< measured: SC error - software error
    double area_mm2;
    double power_w;
    double delay_ns;
    double energy_uj;
};

/** Assemble a row from a config and its measured inaccuracy. */
Table6Row makeTable6Row(int number, const ScNetworkConfig &cfg,
                        double inaccuracy_fraction);

/** One Table 7 platform entry. */
struct PlatformRow
{
    std::string platform;
    std::string dataset;
    std::string network_type;
    int year;
    std::string platform_type;
    double area_mm2;      //!< <= 0 means N/A
    double power_w;       //!< <= 0 means N/A
    double accuracy_pct;  //!< <= 0 means N/A
    double throughput;    //!< images/s
    double area_eff;      //!< images/s/mm^2, <= 0 means N/A
    double energy_eff;    //!< images/J
};

/** The reference platforms of Table 7 (literature constants). */
std::vector<PlatformRow> table7ReferenceRows();

/** Build the SC-DCNN row for a configuration from our models. */
PlatformRow scdcnnPlatformRow(const std::string &name,
                              const ScNetworkConfig &cfg,
                              double accuracy_pct);

/**
 * Figure 16 harness: classification error of the float network with
 * zero-mean Gaussian noise of the given standard deviation injected
 * into the output of one paper layer group (0 = conv1 block,
 * 1 = conv2 block, 2 = fc1).
 */
double errorRateWithLayerNoise(const nn::Network &net,
                               const nn::Dataset &ds, size_t layer_group,
                               double sigma, uint64_t seed);

} // namespace core
} // namespace scdcnn

#endif // SCDCNN_CORE_METRICS_H
