#include "core/sc_network.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "blocks/activation.h"
#include "blocks/feature_block.h"
#include "blocks/pooling.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "nn/quantize.h"
#include "sc/btanh.h"
#include "sc/fused.h"
#include "sc/sng.h"
#include "sc/stanh.h"

namespace scdcnn {
namespace core {

namespace {

using Clock = std::chrono::steady_clock;

/**
 * Per-chunk phase stopwatch: laps accumulate locally (no atomics in
 * the pixel loop) and the chunk flushes once into the shared
 * PhaseBreakdown. All no-ops when profiling is off.
 */
struct PhaseTimer
{
    explicit PhaseTimer(bool enabled) : on(enabled) {}

    void start()
    {
        if (on)
            last = Clock::now();
    }

    void lap(uint64_t &bucket)
    {
        if (!on)
            return;
        const Clock::time_point now = Clock::now();
        bucket += static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(now -
                                                                 last)
                .count());
        last = now;
    }

    bool on;
    Clock::time_point last;
    uint64_t inner_product = 0;
    uint64_t pooling = 0;
    uint64_t activation = 0;
};

void
flushPhases(PhaseBreakdown *profile, const PhaseTimer &t)
{
    if (profile == nullptr)
        return;
    profile->inner_product_ns += t.inner_product;
    profile->pooling_ns += t.pooling;
    profile->activation_ns += t.activation;
}

/**
 * Stateless per-site generator seed: mixes (base seed, layer, site)
 * through SplitMix64 so every pixel/neuron derives its randomness from
 * its position rather than from evaluation order. Any partition of a
 * layer across threads therefore produces bit-identical streams.
 */
uint64_t
siteSeed(uint64_t seed, uint64_t layer_idx, uint64_t site)
{
    sc::SplitMix64 mix(seed ^
                       0x9E3779B97F4A7C15ULL * (layer_idx + 1) ^
                       0xBF58476D1CE4E5B9ULL * (site + 1));
    return mix.next();
}

/**
 * One MUX-based inner product in the selected engine mode. Both modes
 * consume exactly @p length select draws from @p sel, so the generator
 * state after the call — and the produced stream — are bit-identical.
 */
void
muxInnerProduct(EngineMode mode,
                const std::vector<sc::BitstreamView> &xs,
                const std::vector<sc::BitstreamView> &ws,
                sc::Xoshiro256ss &sel, sc::FusedWorkspace &wsp,
                sc::Bitstream &out)
{
    sc::fillMuxSelects(xs.size(), xs[0].length, sel, wsp.selects);
    if (mode == EngineMode::Fused)
        sc::fusedMuxProduct(xs, ws, wsp.selects, out);
    else
        out = sc::referenceMuxProduct(xs, ws, wsp.selects);
}

/** One APC inner product (approximate counter) in the selected mode. */
void
apcInnerProduct(EngineMode mode,
                const std::vector<sc::BitstreamView> &xs,
                const std::vector<sc::BitstreamView> &ws,
                std::vector<uint16_t> &out)
{
    if (mode == EngineMode::Fused)
        sc::fusedProductCounts(xs, ws, /*approximate=*/true, out);
    else
        out = sc::referenceProductCounts(xs, ws, /*approximate=*/true);
}

} // namespace

namespace {

/** Activation-unit sizing for one network layer. */
struct ActSizing
{
    unsigned k;   //!< FSM/counter state count
    double gain;  //!< realized activation gain g_sc: out ~ tanh(g_sc*s)
};

/**
 * Gain-matched activation sizing (see DESIGN.md, reconstruction note):
 * the state count is chosen so the unit realizes the activation gain
 * the float network was trained with, subject to a mixing-time clamp —
 * a saturating counter with step deviation sigma relaxes in ~(K/sigma)^2
 * cycles, which must fit several times into the bit-stream or the
 * output is transient-dominated. Residual gain mismatch is compensated
 * at the next layer's SNG programming (weight pre-scaling).
 *
 * The empirical equations (1)-(3) of Section 4.4 target the isolated
 * feature-extraction-block regime of Figure 14 (operands uniform over
 * [-1,1]); they are exercised there by the fig14 bench.
 */
ActSizing
gainMatchedSizing(blocks::FebKind kind, size_t n_inputs,
                  size_t pool_size, size_t length, double g_float)
{
    const double n = static_cast<double>(n_inputs);
    const double len = static_cast<double>(length);
    double sigma;     // per-cycle step standard deviation
    double gain_per_k; // realized gain per counter state
    if (!blocks::febUsesApc(kind)) {
        sigma = 1.0; // Stanh walks +/-1
        gain_per_k = 1.0 / (2.0 * n);
    } else if (kind == blocks::FebKind::ApcAvgBtanh && pool_size > 1) {
        sigma = std::sqrt(n) / 2.0; // 4-way averaged binary steps
        gain_per_k = 2.0 / n;
    } else {
        sigma = std::sqrt(n); // direct / max-pooled binary steps
        gain_per_k = 1.0 / (2.0 * n);
    }

    const double k_target = g_float / gain_per_k;
    const double k_max = sigma * std::sqrt(len / 8.0);
    ActSizing s;
    s.k = sc::nearestEvenState(std::min(k_target, k_max));
    s.gain = std::min(1.0, static_cast<double>(s.k) * gain_per_k);
    return s;
}

/** The float network's activation gain after each paper layer group. */
double
floatActivationScale(const nn::Network &net, size_t tanh_layer_index)
{
    const auto *t = dynamic_cast<const nn::TanhLayer *>(
        &net.layer(tanh_layer_index));
    SCDCNN_ASSERT(t != nullptr, "expected a tanh layer at index %zu",
                  tanh_layer_index);
    return t->scale();
}

} // namespace

ScNetwork::ScNetwork(const nn::Network &trained, ScNetworkConfig cfg,
                     uint64_t weight_seed)
    : cfg_(cfg)
{
    SCDCNN_ASSERT(trained.layerCount() == 9,
                  "ScNetwork expects a buildLeNet5() network");
    // Store the weights the way the hardware would: quantized per the
    // Section 5.2/5.3 storage scheme.
    nn::Network net = trained;
    nn::quantizeLeNet5(net, cfg_.weight_bits);

    const size_t len = cfg_.bitstream_len;
    bias_line_ = sc::constantStream(true, len);
    sc::SngBank bank(weight_seed);

    const auto &c1 = dynamic_cast<const nn::ConvLayer &>(net.layer(0));
    const auto &c2 = dynamic_cast<const nn::ConvLayer &>(net.layer(3));
    const auto &f1 =
        dynamic_cast<const nn::FullyConnected &>(net.layer(6));
    const auto &f2 =
        dynamic_cast<const nn::FullyConnected &>(net.layer(8));

    // Size each layer's activation unit to the gain the float network
    // was trained with; any shortfall (mixing-time clamp) becomes a
    // weight pre-scaling at the next layer.
    const size_t tanh_idx[3] = {2, 5, 7};
    const size_t n_per_layer[3] = {
        c1.cIn() * c1.kernel() * c1.kernel() + 1,
        c2.cIn() * c2.kernel() * c2.kernel() + 1, f1.nIn() + 1};
    const size_t pool_per_layer[3] = {4, 4, 1};
    for (size_t l = 0; l < 3; ++l) {
        const double g_float = floatActivationScale(net, tanh_idx[l]);
        ActSizing sizing =
            gainMatchedSizing(cfg_.febKind(l), n_per_layer[l],
                              pool_per_layer[l], len, g_float);
        layer_k_[l] = sizing.k;
        layer_gain_[l] = std::min(1.0, sizing.gain / g_float);
    }

    // Build the batched activation tables once; layers sharing
    // (K, threshold) / (K, n_inputs) share one table through the cache.
    for (size_t l = 0; l < 3; ++l) {
        if (blocks::febUsesApc(cfg_.febKind(l)))
            btanh_tables_[l] = &fsm_tables_.btanh(
                layer_k_[l], static_cast<unsigned>(n_per_layer[l]));
        else
            stanh_tables_[l] = &fsm_tables_.stanh(layer_k_[l]);
    }

    // MUX-based layers attenuate their features by layer_gain_; the
    // consuming layer's weight streams are programmed at w/gain
    // (saturating in the SNG — the pre-scaling of Section 3.2), so the
    // drift seen by its adder matches the float network again. Biases
    // are not attenuated and stay unscaled.
    auto encode_conv = [&](const nn::ConvLayer &conv, double in_gain,
                           ConvWeightStreams &out) {
        out.c_in = conv.cIn();
        out.c_out = conv.cOut();
        out.k = conv.kernel();
        out.n_per_filter = out.c_in * out.k * out.k + 1;
        out.arena.reset(out.c_out * out.n_per_filter, len);
        size_t slot = 0;
        for (size_t co = 0; co < out.c_out; ++co) {
            for (size_t ci = 0; ci < out.c_in; ++ci)
                for (size_t ky = 0; ky < out.k; ++ky)
                    for (size_t kx = 0; kx < out.k; ++kx)
                        out.arena.assign(
                            slot++,
                            bank.bipolar(
                                conv.weightAt(co, ci, ky, kx) / in_gain,
                                len));
            out.arena.assign(slot++, bank.bipolar(conv.biasAt(co), len));
        }
    };
    auto encode_fc = [&](const nn::FullyConnected &fc, double in_gain,
                         FcWeightStreams &out) {
        out.n_in = fc.nIn();
        out.n_out = fc.nOut();
        out.arena.reset(out.n_out * (out.n_in + 1), len);
        size_t slot = 0;
        for (size_t o = 0; o < out.n_out; ++o) {
            for (size_t i = 0; i < out.n_in; ++i)
                out.arena.assign(
                    slot++, bank.bipolar(fc.weightAt(o, i) / in_gain,
                                         len));
            out.arena.assign(slot++, bank.bipolar(fc.biasAt(o), len));
        }
    };

    encode_conv(c1, 1.0, conv1_);
    encode_conv(c2, layer_gain_[0], conv2_);
    encode_fc(f1, layer_gain_[1], fc1_);
    encode_fc(f2, layer_gain_[2], fc2_);
}

ScNetwork::StreamGrid
ScNetwork::encodeImage(const nn::Tensor &image, uint64_t seed,
                       PhaseBreakdown *profile) const
{
    SCDCNN_ASSERT(image.channels() == 1 && image.height() == 28 &&
                      image.width() == 28,
                  "expected a 1x28x28 image");
    const Clock::time_point t0 = Clock::now();
    StreamGrid grid;
    grid.c = 1;
    grid.h = 28;
    grid.w = 28;
    grid.arena.reset(784, cfg_.bitstream_len);
    sc::SngBank bank(seed);
    for (size_t i = 0; i < image.size(); ++i) {
        // Pixel values in [0,1] already lie inside the bipolar range;
        // they are encoded at face value so the SC network computes
        // the same function the float network was trained on.
        grid.arena.assign(i, bank.bipolar(image[i], cfg_.bitstream_len));
    }
    if (profile != nullptr)
        profile->encode_ns += static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - t0)
                .count());
    return grid;
}

ScNetwork::StreamGrid
ScNetwork::runConvLayer(const StreamGrid &in,
                        const ConvWeightStreams &weights,
                        size_t layer_idx, uint64_t seed,
                        PhaseBreakdown *profile) const
{
    const size_t k = weights.k;
    const size_t conv_h = in.h - k + 1;
    const size_t conv_w = in.w - k + 1;
    SCDCNN_ASSERT(conv_h % 2 == 0 && conv_w % 2 == 0,
                  "conv output not poolable");
    const size_t out_h = conv_h / 2;
    const size_t out_w = conv_w / 2;
    const size_t n_inputs = weights.c_in * k * k + 1;
    const size_t len = cfg_.bitstream_len;

    const blocks::FebKind kind = cfg_.febKind(layer_idx);
    const unsigned state_count = layer_k_[layer_idx];
    const bool use_apc = blocks::febUsesApc(kind);
    const bool use_max = blocks::febUsesMaxPool(kind);
    const bool fused = engine_ == EngineMode::Fused;

    StreamGrid out;
    out.c = weights.c_out;
    out.h = out_h;
    out.w = out_w;
    out.arena.reset(out.c * out.h * out.w, len);

    // One output pixel per work item; contiguous chunks go to the pool
    // workers, each with its own reusable workspace so the sweep runs
    // allocation-free after the first pixel. Every pixel's generator is
    // derived from its position (siteSeed), so the partition — and the
    // thread count — never changes the produced streams.
    const size_t pixels_per_channel = out_h * out_w;
    const size_t n_pixels = out.c * pixels_per_channel;
    parallelForChunks(0, n_pixels, [&](size_t lo, size_t hi) {
        sc::FusedWorkspace wsp;
        wsp.xs.resize(n_inputs);
        wsp.ws.resize(n_inputs);
        wsp.counts.resize(4);
        wsp.streams.resize(4);
        sc::Bitstream pooled_stream;
        std::vector<sc::BitstreamView> pool_views(wsp.streams.size());
        PhaseTimer timer(profile != nullptr);
        for (size_t p = lo; p < hi; ++p) {
            const size_t co = p / pixels_per_channel;
            const size_t rem = p % pixels_per_channel;
            const size_t oy = rem / out_w;
            const size_t ox = rem % out_w;
            sc::Xoshiro256ss feb_rng(siteSeed(seed, layer_idx, p));

            // The four pooling-window inner products of this pixel.
            timer.start();
            for (size_t dy = 0; dy < 2; ++dy) {
                for (size_t dx = 0; dx < 2; ++dx) {
                    const size_t cy = 2 * oy + dy;
                    const size_t cx = 2 * ox + dx;
                    size_t idx = 0;
                    for (size_t ci = 0; ci < weights.c_in; ++ci) {
                        for (size_t ky = 0; ky < k; ++ky) {
                            for (size_t kx = 0; kx < k; ++kx) {
                                wsp.xs[idx] = in.at(ci, cy + ky,
                                                    cx + kx);
                                wsp.ws[idx] = weights.at(co, idx);
                                ++idx;
                            }
                        }
                    }
                    wsp.xs[idx] = bias_line_;
                    wsp.ws[idx] = weights.at(co, idx);

                    const size_t window = dy * 2 + dx;
                    if (use_apc)
                        apcInnerProduct(engine_, wsp.xs, wsp.ws,
                                        wsp.counts[window]);
                    else
                        muxInnerProduct(engine_, wsp.xs, wsp.ws,
                                        feb_rng, wsp,
                                        wsp.streams[window]);
                }
            }
            timer.lap(timer.inner_product);

            uint64_t *result = out.arena.wordsAt(p);
            // Max pooling uses the accumulative (non-resetting)
            // reading of the Figure 8 counters: inside a trained
            // network the candidate inner products are separated by
            // O(1/N) in stream value, so per-segment counts cannot
            // distinguish them, but the accumulated counts converge
            // on the true maximum within a few hundred cycles (see
            // DESIGN.md reconstruction notes).
            if (use_apc) {
                if (use_max) {
                    if (fused)
                        blocks::binaryMaxPoolFused(
                            wsp.counts, cfg_.segment_len, 0,
                            /*accumulate=*/true, wsp.pooled);
                    else
                        wsp.pooled = blocks::binaryMaxPoolReference(
                            wsp.counts, cfg_.segment_len, 0,
                            /*accumulate=*/true);
                    timer.lap(timer.pooling);
                    if (fused) {
                        btanh_tables_[layer_idx]->transformWords(
                            wsp.pooled.data(), len, result);
                    } else {
                        sc::Btanh unit(state_count,
                                       static_cast<unsigned>(n_inputs));
                        out.arena.assign(p, unit.transform(wsp.pooled));
                    }
                } else {
                    blocks::binaryAveragePoolingSigned(
                        wsp.counts, n_inputs, wsp.steps);
                    timer.lap(timer.pooling);
                    if (fused) {
                        btanh_tables_[layer_idx]->transformSignedWords(
                            wsp.steps.data(), len, result);
                    } else {
                        sc::Btanh unit(state_count,
                                       static_cast<unsigned>(n_inputs));
                        out.arena.assign(p,
                                         unit.transformSigned(wsp.steps));
                    }
                }
            } else if (use_max) {
                // Refresh the hoisted views in place (stream storage
                // can move between pixels) — no per-pixel allocation.
                for (size_t i = 0; i < wsp.streams.size(); ++i)
                    pool_views[i] = wsp.streams[i];
                if (fused)
                    blocks::maxPoolStreamsFused(
                        pool_views, cfg_.segment_len, 0,
                        /*accumulate=*/true, pooled_stream);
                else
                    pooled_stream = blocks::maxPoolStreamsReference(
                        pool_views, cfg_.segment_len, 0,
                        /*accumulate=*/true);
                timer.lap(timer.pooling);
                if (fused) {
                    stanh_tables_[layer_idx]->transformWords(
                        pooled_stream.words().data(), len, result);
                } else {
                    sc::Stanh fsm(state_count);
                    out.arena.assign(p, fsm.transform(pooled_stream));
                }
            } else {
                // Unlike the isolated Figure 14(b) study (operands
                // uniform over [-1,1]), trained-network streams sit
                // near p=0.5 where the Figure 11 K/5 threshold
                // would swamp the signal with a constant positive
                // bias; the classic midpoint threshold is used for
                // network inference.
                pooled_stream =
                    blocks::averagePooling(wsp.streams, feb_rng);
                timer.lap(timer.pooling);
                if (fused) {
                    stanh_tables_[layer_idx]->transformWords(
                        pooled_stream.words().data(), len, result);
                } else {
                    sc::Stanh fsm(state_count);
                    out.arena.assign(p, fsm.transform(pooled_stream));
                }
            }
            timer.lap(timer.activation);
        }
        flushPhases(profile, timer);
    });
    return out;
}

sc::StreamArena
ScNetwork::runFcLayer(const std::vector<sc::BitstreamView> &in,
                      const FcWeightStreams &weights, size_t layer_idx,
                      uint64_t seed, PhaseBreakdown *profile) const
{
    SCDCNN_ASSERT(in.size() == weights.n_in,
                  "fc layer expects %zu inputs, got %zu", weights.n_in,
                  in.size());
    const size_t n_inputs = weights.n_in + 1;
    const size_t len = cfg_.bitstream_len;
    const blocks::FebKind kind = cfg_.febKind(layer_idx);
    const unsigned state_count = layer_k_[layer_idx];
    const bool use_apc = blocks::febUsesApc(kind);
    const bool fused = engine_ == EngineMode::Fused;

    // One neuron per work item, chunked across the pool with per-chunk
    // workspaces; neuron generators are position-derived like the conv
    // pixels'.
    sc::StreamArena out;
    out.reset(weights.n_out, len);
    parallelForChunks(0, weights.n_out, [&](size_t lo, size_t hi) {
        sc::FusedWorkspace wsp;
        wsp.xs.resize(n_inputs);
        wsp.ws.resize(n_inputs);
        wsp.counts.resize(1);
        wsp.streams.resize(1);
        for (size_t i = 0; i < weights.n_in; ++i)
            wsp.xs[i] = in[i];
        wsp.xs[weights.n_in] = bias_line_;
        PhaseTimer timer(profile != nullptr);
        for (size_t o = lo; o < hi; ++o) {
            for (size_t i = 0; i < n_inputs; ++i)
                wsp.ws[i] = weights.at(o, i);
            timer.start();
            if (use_apc) {
                apcInnerProduct(engine_, wsp.xs, wsp.ws, wsp.counts[0]);
                timer.lap(timer.inner_product);
                if (fused) {
                    btanh_tables_[layer_idx]->transformWords(
                        wsp.counts[0].data(), len, out.wordsAt(o));
                } else {
                    sc::Btanh unit(state_count,
                                   static_cast<unsigned>(n_inputs));
                    out.assign(o, unit.transform(wsp.counts[0]));
                }
            } else {
                sc::Xoshiro256ss rng(siteSeed(seed, layer_idx, o));
                muxInnerProduct(engine_, wsp.xs, wsp.ws, rng, wsp,
                                wsp.streams[0]);
                timer.lap(timer.inner_product);
                if (fused) {
                    stanh_tables_[layer_idx]->transformWords(
                        wsp.streams[0].words().data(), len,
                        out.wordsAt(o));
                } else {
                    sc::Stanh fsm(state_count);
                    out.assign(o, fsm.transform(wsp.streams[0]));
                }
            }
            timer.lap(timer.activation);
        }
        flushPhases(profile, timer);
    });
    return out;
}

std::vector<double>
ScNetwork::runBinaryOutputLayer(const std::vector<sc::BitstreamView> &in,
                                const FcWeightStreams &weights,
                                PhaseBreakdown *profile) const
{
    const Clock::time_point t0 = Clock::now();
    const size_t n_inputs = weights.n_in + 1;
    std::vector<sc::BitstreamView> xs(n_inputs);
    std::vector<sc::BitstreamView> ws(n_inputs);
    for (size_t i = 0; i < weights.n_in; ++i)
        xs[i] = in[i];
    xs[weights.n_in] = bias_line_;

    std::vector<double> scores(weights.n_out);
    const double len = static_cast<double>(cfg_.bitstream_len);
    for (size_t o = 0; o < weights.n_out; ++o) {
        for (size_t i = 0; i < n_inputs; ++i)
            ws[i] = weights.at(o, i);
        // The accumulator de-randomizes: score = sum of bipolar sums.
        // The fused path never materializes the per-cycle counts — the
        // accumulated total reduces to word popcounts.
        const uint64_t total =
            engine_ == EngineMode::Fused
                ? sc::fusedProductCountTotal(xs, ws, /*approximate=*/true)
                : sc::referenceProductCountTotal(xs, ws,
                                                /*approximate=*/true);
        scores[o] = (2.0 * static_cast<double>(total) -
                     static_cast<double>(n_inputs) * len) / len;
    }
    if (profile != nullptr)
        profile->output_ns += static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - t0)
                .count());
    return scores;
}

size_t
ScNetwork::predict(const nn::Tensor &image, uint64_t seed,
                   PhaseBreakdown *profile) const
{
    StreamGrid x = encodeImage(image, seed, profile);
    StreamGrid c1 = runConvLayer(x, conv1_, 0, seed ^ 0x1111, profile);
    StreamGrid c2 = runConvLayer(c1, conv2_, 1, seed ^ 0x2222, profile);

    std::vector<sc::BitstreamView> flat;
    flat.reserve(c2.arena.count());
    for (size_t i = 0; i < c2.arena.count(); ++i)
        flat.push_back(c2.arena.view(i));

    sc::StreamArena f1 =
        runFcLayer(flat, fc1_, 2, seed ^ 0x3333, profile);
    std::vector<sc::BitstreamView> f1_views;
    f1_views.reserve(f1.count());
    for (size_t i = 0; i < f1.count(); ++i)
        f1_views.push_back(f1.view(i));

    std::vector<double> scores =
        runBinaryOutputLayer(f1_views, fc2_, profile);
    return static_cast<size_t>(
        std::max_element(scores.begin(), scores.end()) -
        scores.begin());
}

std::vector<size_t>
ScNetwork::forwardBatch(const std::vector<nn::Tensor> &images,
                        uint64_t seed, ThreadPool *pool) const
{
    std::vector<size_t> preds(images.size());
    const auto body = [&](size_t i) {
        preds[i] = predict(images[i], seed + i * 7919);
    };
    if (pool != nullptr)
        parallelFor(*pool, 0, images.size(), body);
    else
        parallelFor(0, images.size(), body);
    return preds;
}

double
ScNetwork::errorRate(const nn::Dataset &ds, size_t max_images,
                     uint64_t seed, ThreadPool *pool) const
{
    const size_t n = std::min(ds.size(), max_images);
    SCDCNN_ASSERT(n > 0, "empty SC evaluation set");
    // One seed schedule and one parallel loop for all batched
    // prediction: forwardBatch's. An error rate is therefore
    // reproducible from the batch predictions at the same seed.
    std::vector<nn::Tensor> images;
    images.reserve(n);
    for (size_t i = 0; i < n; ++i)
        images.push_back(ds.samples[i].image);
    const std::vector<size_t> preds = forwardBatch(images, seed, pool);
    size_t wrong = 0;
    for (size_t i = 0; i < n; ++i)
        if (preds[i] != ds.samples[i].label)
            ++wrong;
    return static_cast<double>(wrong) / static_cast<double>(n);
}

} // namespace core
} // namespace scdcnn
