#include "core/sc_network.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "blocks/activation.h"
#include "blocks/feature_block.h"
#include "blocks/pooling.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "nn/quantize.h"
#include "obs/trace.h"
#include "sc/btanh.h"
#include "sc/fused.h"
#include "sc/sng.h"
#include "sc/stanh.h"

namespace scdcnn {
namespace core {

namespace {

using Clock = std::chrono::steady_clock;

/**
 * Per-chunk phase stopwatch: laps accumulate locally (no atomics in
 * the pixel loop) and the chunk flushes once into the shared
 * PhaseBreakdown. All no-ops when profiling is off.
 */
struct PhaseTimer
{
    explicit PhaseTimer(bool enabled) : on(enabled) {}

    void start()
    {
        if (on)
            last = Clock::now();
    }

    void lap(uint64_t &bucket)
    {
        if (!on)
            return;
        const Clock::time_point now = Clock::now();
        bucket += static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(now -
                                                                 last)
                .count());
        last = now;
    }

    bool on;
    Clock::time_point last;
    uint64_t inner_product = 0;
    uint64_t pooling = 0;
    uint64_t activation = 0;
};

/**
 * Chunk flush: the same accumulated lap durations feed both the
 * caller's PhaseBreakdown and (when tracing is armed) per-segment
 * engine phase spans — one measurement, two consumers, so
 * bench_throughput's phase table and the trace profile agree by
 * construction. Spans are end-anchored at the recorder's clock with
 * the segment's first word as the "seg" argument.
 */
void
flushPhases(PhaseBreakdown *profile, const PhaseTimer &t,
            size_t seg_w0)
{
    if (profile != nullptr) {
        profile->inner_product_ns += t.inner_product;
        profile->pooling_ns += t.pooling;
        profile->activation_ns += t.activation;
    }
    if (obs::armed()) {
        obs::TraceRecorder &rec = obs::TraceRecorder::instance();
        const uint64_t end = rec.nowNs();
        const auto span = [&](obs::SpanName name, uint64_t dur) {
            if (dur > 0)
                rec.spanComplete(name, end - dur, dur, 0, 0, seg_w0);
        };
        span(obs::SpanName::InnerProduct, t.inner_product);
        span(obs::SpanName::Pooling, t.pooling);
        span(obs::SpanName::Activation, t.activation);
    }
}

/**
 * Stateless per-site generator seed: mixes (base seed, layer, site)
 * through SplitMix64 so every pixel/neuron derives its randomness from
 * its position rather than from evaluation order. Any partition of a
 * layer across threads therefore produces bit-identical streams.
 */
uint64_t
siteSeed(uint64_t seed, uint64_t layer_idx, uint64_t site)
{
    sc::SplitMix64 mix(seed ^
                       0x9E3779B97F4A7C15ULL * (layer_idx + 1) ^
                       0xBF58476D1CE4E5B9ULL * (site + 1));
    return mix.next();
}

/** Salt separating the MUX-select generator family from other
 *  randomized sites of the same (seed, layer). */
constexpr uint64_t kSelectSalt = 0x5E1EC7A5C0DEBEEFULL;

/** Salt for the MUX average-pooling generators. */
constexpr uint64_t kPoolSalt = 0xAB00057EDB00157EULL;

/** Segment granularity Progressive mode falls back to when the config
 *  asks for whole-stream execution (which would leave it no mid-stream
 *  checkpoint to exit at). */
constexpr size_t kProgressiveFallbackSegmentWords = 4;

} // namespace

namespace {

/** Activation-unit sizing for one network layer. */
struct ActSizing
{
    unsigned k;   //!< FSM/counter state count
    double gain;  //!< realized activation gain g_sc: out ~ tanh(g_sc*s)
};

/**
 * Gain-matched activation sizing (see DESIGN.md, reconstruction note):
 * the state count is chosen so the unit realizes the activation gain
 * the float network was trained with, subject to a mixing-time clamp —
 * a saturating counter with step deviation sigma relaxes in ~(K/sigma)^2
 * cycles, which must fit several times into the bit-stream or the
 * output is transient-dominated. Residual gain mismatch is compensated
 * at the next layer's SNG programming (weight pre-scaling).
 *
 * The empirical equations (1)-(3) of Section 4.4 target the isolated
 * feature-extraction-block regime of Figure 14 (operands uniform over
 * [-1,1]); they are exercised there by the fig14 bench.
 */
ActSizing
gainMatchedSizing(blocks::FebKind kind, size_t n_inputs,
                  size_t pool_size, size_t length, double g_float)
{
    const double n = static_cast<double>(n_inputs);
    const double len = static_cast<double>(length);
    double sigma;     // per-cycle step standard deviation
    double gain_per_k; // realized gain per counter state
    if (!blocks::febUsesApc(kind)) {
        sigma = 1.0; // Stanh walks +/-1
        gain_per_k = 1.0 / (2.0 * n);
    } else if (kind == blocks::FebKind::ApcAvgBtanh && pool_size > 1) {
        sigma = std::sqrt(n) / 2.0; // 4-way averaged binary steps
        gain_per_k = 2.0 / n;
    } else {
        sigma = std::sqrt(n); // direct / max-pooled binary steps
        gain_per_k = 1.0 / (2.0 * n);
    }

    const double k_target = g_float / gain_per_k;
    const double k_max = sigma * std::sqrt(len / 8.0);
    ActSizing s;
    s.k = sc::nearestEvenState(std::min(k_target, k_max));
    s.gain = std::min(1.0, static_cast<double>(s.k) * gain_per_k);
    return s;
}

} // namespace

ScNetwork::ScNetwork(const nn::Network &trained, ScNetworkConfig cfg,
                     uint64_t weight_seed)
    : cfg_(cfg),
      plan_(nn::deriveNetworkPlan(trained, cfg.input_c, cfg.input_h,
                                  cfg.input_w)),
      // The binary sibling backend reads the *unquantized* trained
      // weights: sign(w) of the SC-quantized copy below can differ
      // from sign(w) of the raw weight.
      binary_(trained, plan_)
{
    // Store the weights the way the hardware would: quantized per the
    // Section 5.2/5.3 storage scheme (grouping derived from the plan).
    nn::Network net = trained;
    nn::quantizeNetwork(net, cfg_.weight_bits);

    const size_t len = cfg_.bitstream_len;
    bias_line_ = sc::constantStream(true, len);
    sc::SngBank bank(weight_seed);

    // Size each hidden stage's activation unit to the gain the float
    // network was trained with; any shortfall (mixing-time clamp)
    // becomes a weight pre-scaling at the next layer. Layers sharing
    // (K, threshold) / (K, n_inputs) share one batched table through
    // the cache.
    const size_t n_stages = plan_.stages.size();
    layer_gain_.assign(n_stages, 1.0);
    layer_k_.assign(n_stages, 2);
    stanh_tables_.assign(n_stages, nullptr);
    btanh_tables_.assign(n_stages, nullptr);
    for (size_t l = 0; l < n_stages; ++l) {
        const nn::PlanStage &st = plan_.stages[l];
        const size_t n_inputs = st.fan_in + 1;
        ActSizing sizing =
            gainMatchedSizing(stageFebKind(l), n_inputs,
                              st.pooled ? 4 : 1, len, st.g_float);
        layer_k_[l] = sizing.k;
        layer_gain_[l] = std::min(1.0, sizing.gain / st.g_float);
        if (blocks::febUsesApc(stageFebKind(l)))
            btanh_tables_[l] = &fsm_tables_.btanh(
                layer_k_[l], static_cast<unsigned>(n_inputs));
        else
            stanh_tables_[l] = &fsm_tables_.stanh(layer_k_[l]);
    }

    // MUX-based layers attenuate their features by layer_gain_; the
    // consuming layer's weight streams are programmed at w/gain
    // (saturating in the SNG — the pre-scaling of Section 3.2), so the
    // drift seen by its adder matches the float network again. Biases
    // are not attenuated and stay unscaled.
    auto encode_conv = [&](const nn::ConvLayer &conv, double in_gain,
                           ConvWeightStreams &out) {
        out.c_in = conv.cIn();
        out.c_out = conv.cOut();
        out.k = conv.kernel();
        out.n_per_filter = out.c_in * out.k * out.k + 1;
        out.arena.reset(out.c_out * out.n_per_filter, len);
        size_t slot = 0;
        for (size_t co = 0; co < out.c_out; ++co) {
            for (size_t ci = 0; ci < out.c_in; ++ci)
                for (size_t ky = 0; ky < out.k; ++ky)
                    for (size_t kx = 0; kx < out.k; ++kx)
                        out.arena.assign(
                            slot++,
                            bank.bipolar(
                                conv.weightAt(co, ci, ky, kx) / in_gain,
                                len));
            out.arena.assign(slot++, bank.bipolar(conv.biasAt(co), len));
        }
        // Filter-interleaved copy of the same words for the blocked
        // kernels; the plain arena stays the Reference path's (and the
        // round-trip tests') layout of record.
        out.blocked.reset(out.c_out, out.n_per_filter, len);
        for (size_t co = 0; co < out.c_out; ++co)
            for (size_t i = 0; i < out.n_per_filter; ++i)
                out.blocked.assign(co, i, out.at(co, i));
    };
    auto encode_fc = [&](const nn::FullyConnected &fc, double in_gain,
                         FcWeightStreams &out) {
        out.n_in = fc.nIn();
        out.n_out = fc.nOut();
        out.arena.reset(out.n_out * (out.n_in + 1), len);
        size_t slot = 0;
        for (size_t o = 0; o < out.n_out; ++o) {
            for (size_t i = 0; i < out.n_in; ++i)
                out.arena.assign(
                    slot++, bank.bipolar(fc.weightAt(o, i) / in_gain,
                                         len));
            out.arena.assign(slot++, bank.bipolar(fc.biasAt(o), len));
        }
        out.blocked.reset(out.n_out, out.n_in + 1, len);
        for (size_t o = 0; o < out.n_out; ++o)
            for (size_t i = 0; i < out.n_in + 1; ++i)
                out.blocked.assign(o, i, out.at(o, i));
    };

    // Encode the hidden stages in plan order (convs precede fcs by
    // the grammar), each consuming the previous stage's realized
    // gain, then the binary output layer.
    double in_gain = 1.0;
    for (size_t l = 0; l < n_stages; ++l) {
        const nn::PlanStage &st = plan_.stages[l];
        if (st.kind == nn::StageOutline::Kind::Conv) {
            convs_.emplace_back();
            encode_conv(dynamic_cast<const nn::ConvLayer &>(
                            net.layer(st.layer_index)),
                        in_gain, convs_.back());
        } else {
            fcs_.emplace_back();
            encode_fc(dynamic_cast<const nn::FullyConnected &>(
                          net.layer(st.layer_index)),
                      in_gain, fcs_.back());
        }
        in_gain = layer_gain_[l];
    }
    encode_fc(dynamic_cast<const nn::FullyConnected &>(
                  net.layer(plan_.output.layer_index)),
              in_gain, out_);
}

ScNetwork::StreamGrid
ScNetwork::encodeImage(const nn::Tensor &image, uint64_t seed,
                       PhaseBreakdown *profile) const
{
    SCDCNN_ASSERT(image.channels() == plan_.in_c &&
                      image.height() == plan_.in_h &&
                      image.width() == plan_.in_w,
                  "expected a %zux%zux%zu image, got %zux%zux%zu",
                  plan_.in_c, plan_.in_h, plan_.in_w, image.channels(),
                  image.height(), image.width());
    const Clock::time_point t0 = Clock::now();
    StreamGrid grid;
    grid.c = plan_.in_c;
    grid.h = plan_.in_h;
    grid.w = plan_.in_w;
    grid.arena.reset(image.size(), cfg_.bitstream_len);
    sc::SngBank bank(seed);
    for (size_t i = 0; i < image.size(); ++i) {
        // Pixel values in [0,1] already lie inside the bipolar range;
        // they are encoded at face value so the SC network computes
        // the same function the float network was trained on.
        grid.arena.assign(i, bank.bipolar(image[i], cfg_.bitstream_len));
    }
    // One measured duration feeds both the profile and the trace.
    const auto encode_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - t0)
            .count());
    if (profile != nullptr)
        profile->encode_ns += encode_ns;
    if (obs::armed()) {
        obs::TraceRecorder &rec = obs::TraceRecorder::instance();
        const uint64_t end = rec.nowNs();
        rec.spanComplete(obs::SpanName::Encode, end - encode_ns,
                         encode_ns);
    }
    return grid;
}

void
ScNetwork::initConvRun(ConvRun &run, const StreamGrid &in,
                       const ConvWeightStreams &weights, size_t layer_idx,
                       uint64_t seed) const
{
    const size_t k = weights.k;
    const size_t conv_h = in.h - k + 1;
    const size_t conv_w = in.w - k + 1;
    SCDCNN_ASSERT(conv_h % 2 == 0 && conv_w % 2 == 0,
                  "conv output not poolable");
    run.out.c = weights.c_out;
    run.out.h = conv_h / 2;
    run.out.w = conv_w / 2;
    run.out.arena.reset(run.out.c * run.out.h * run.out.w,
                        cfg_.bitstream_len);

    const blocks::FebKind kind = stageFebKind(layer_idx);
    const bool use_apc = blocks::febUsesApc(kind);
    const bool use_max = blocks::febUsesMaxPool(kind);
    const size_t n_pixels = run.out.c * run.out.h * run.out.w;

    run.fsm.assign(n_pixels,
                   use_apc ? btanh_tables_[layer_idx]->initialState()
                           : stanh_tables_[layer_idx]->initialState());
    run.pool.clear();
    if (use_max) {
        run.pool.resize(n_pixels);
        for (auto &st : run.pool)
            st.reset(4, 0);
    }
    // Every generator is derived from its position: MUX selects per
    // (filter block, position, window) — shared by the block's lanes,
    // the way the blocked MUX kernel samples — and the average-pooling
    // MUX per pixel. Any thread partition reproduces the same streams.
    run.sel_rng.clear();
    run.pool_rng.clear();
    if (!use_apc) {
        const size_t positions = run.out.h * run.out.w;
        const size_t n_sites = weights.blocked.groups() * positions * 4;
        run.sel_rng.reserve(n_sites);
        for (size_t s = 0; s < n_sites; ++s)
            run.sel_rng.emplace_back(
                siteSeed(seed ^ kSelectSalt, layer_idx, s));
        if (!use_max) {
            run.pool_rng.reserve(n_pixels);
            for (size_t p = 0; p < n_pixels; ++p)
                run.pool_rng.emplace_back(
                    siteSeed(seed ^ kPoolSalt, layer_idx, p));
        }
    }
}

void
ScNetwork::runConvLayerSegment(const StreamGrid &in,
                               const ConvWeightStreams &weights,
                               size_t layer_idx, const SegRange &seg,
                               ConvRun &run, EngineMode mode,
                               PhaseBreakdown *profile) const
{
    const size_t k = weights.k;
    const size_t out_w = run.out.w;
    const size_t n_inputs = weights.n_per_filter;
    const size_t len = cfg_.bitstream_len;

    const blocks::FebKind kind = stageFebKind(layer_idx);
    const unsigned state_count = layer_k_[layer_idx];
    const bool use_apc = blocks::febUsesApc(kind);
    const bool use_max = blocks::febUsesMaxPool(kind);
    const bool fused = mode != EngineMode::Reference;

    const size_t positions = run.out.h * run.out.w;
    const size_t n_groups = weights.blocked.groups();
    const size_t seg_words = seg.w1 - seg.w0;
    const size_t seg_stride = seg_words * 64;

    // One (filter block, output position) pair per work item: the four
    // pooling-window inner products of a position are computed once
    // per block with every input word shared across the block's
    // filter lanes, then each lane's pixel is pooled and activated.
    // Contiguous chunks go to the pool workers, each with its own
    // reusable workspace; everything randomized is position-derived,
    // so the partition never changes the produced streams.
    parallelForChunks(0, n_groups * positions, [&](size_t lo, size_t hi) {
        sc::FusedWorkspace wsp;
        wsp.xs.resize(n_inputs);
        wsp.counts.resize(4);
        wsp.streams.resize(4);
        wsp.pooled.resize(seg_stride);
        wsp.steps.resize(seg_stride);
        std::vector<uint16_t> counts_block(4 * sc::kFilterLanes *
                                           seg_stride);
        std::vector<uint64_t> product_block;
        std::vector<uint64_t> seg_stream;
        if (!use_apc) {
            product_block.resize(4 * sc::kFilterLanes * seg_words);
            seg_stream.resize(seg_words);
        }
        sc::Bitstream pooled_stream;
        PhaseTimer timer(profile != nullptr || obs::armed());
        for (size_t item = lo; item < hi; ++item) {
            const size_t g = item / positions;
            const size_t q = item % positions;
            const size_t oy = q / out_w;
            const size_t ox = q % out_w;
            const sc::WeightBlockView block = weights.blocked.block(g);

            // The four pooling-window inner products of this filter
            // block, every lane in one pass.
            timer.start();
            for (size_t dy = 0; dy < 2; ++dy) {
                for (size_t dx = 0; dx < 2; ++dx) {
                    const size_t cy = 2 * oy + dy;
                    const size_t cx = 2 * ox + dx;
                    size_t idx = 0;
                    for (size_t ci = 0; ci < weights.c_in; ++ci)
                        for (size_t ky = 0; ky < k; ++ky)
                            for (size_t kx = 0; kx < k; ++kx)
                                wsp.xs[idx++] =
                                    in.at(ci, cy + ky, cx + kx);
                    wsp.xs[idx] = bias_line_;

                    const size_t window = dy * 2 + dx;
                    if (use_apc) {
                        uint16_t *dst = counts_block.data() +
                                        window * sc::kFilterLanes *
                                            seg_stride;
                        if (fused)
                            sc::fusedProductCountsMulti(
                                wsp.xs, block, /*approximate=*/true,
                                seg.w0, seg.w1, dst, seg_stride);
                        else
                            sc::referenceProductCountsMulti(
                                wsp.xs, block, /*approximate=*/true,
                                seg.w0, seg.w1, dst, seg_stride);
                    } else {
                        sc::Xoshiro256ss &sel =
                            run.sel_rng[item * 4 + window];
                        sc::fillMuxSelects(n_inputs, seg.n_cycles, sel,
                                           wsp.selects);
                        uint64_t *dst = product_block.data() +
                                        window * sc::kFilterLanes *
                                            seg_words;
                        if (fused)
                            sc::fusedMuxProductMulti(
                                wsp.xs, block, wsp.selects, seg.w0,
                                seg.w1, dst, seg_words);
                        else
                            sc::referenceMuxProductMulti(
                                wsp.xs, block, wsp.selects, seg.w0,
                                seg.w1, dst, seg_words);
                    }
                }
            }
            timer.lap(timer.inner_product);

            // Pool + activate each lane's pixel, carrying the selector
            // counters and the FSM state across segments. Max pooling
            // uses the accumulative (non-resetting) reading of the
            // Figure 8 counters: inside a trained network the
            // candidate inner products are separated by O(1/N) in
            // stream value, so per-segment counts cannot distinguish
            // them, but the accumulated counts converge on the true
            // maximum within a few hundred cycles (see DESIGN.md
            // reconstruction notes).
            for (size_t f = 0; f < block.lanes; ++f) {
                const size_t p =
                    (g * sc::kFilterLanes + f) * positions + q;
                uint64_t *result = run.out.arena.wordsAt(p) + seg.w0;
                if (use_apc) {
                    const uint16_t *cnt[4];
                    for (size_t w = 0; w < 4; ++w)
                        cnt[w] = counts_block.data() +
                                 (w * sc::kFilterLanes + f) * seg_stride;
                    if (use_max) {
                        if (fused) {
                            blocks::binaryMaxPoolRange(
                                cnt, 4, seg.c0, seg.n_cycles,
                                cfg_.segment_len, /*accumulate=*/true,
                                run.pool[p], wsp.pooled.data());
                            timer.lap(timer.pooling);
                            btanh_tables_[layer_idx]->transformWords(
                                wsp.pooled.data(), seg.n_cycles, result,
                                &run.fsm[p]);
                        } else {
                            for (size_t w = 0; w < 4; ++w)
                                wsp.counts[w].assign(cnt[w],
                                                     cnt[w] + len);
                            wsp.pooled = blocks::binaryMaxPoolReference(
                                wsp.counts, cfg_.segment_len, 0,
                                /*accumulate=*/true);
                            timer.lap(timer.pooling);
                            sc::Btanh unit(
                                state_count,
                                static_cast<unsigned>(n_inputs));
                            run.out.arena.assign(
                                p, unit.transform(wsp.pooled));
                        }
                    } else {
                        if (fused) {
                            blocks::binaryAveragePoolingSignedRange(
                                cnt, 4, n_inputs, seg.n_cycles,
                                wsp.steps.data());
                            timer.lap(timer.pooling);
                            btanh_tables_[layer_idx]
                                ->transformSignedWords(
                                    wsp.steps.data(), seg.n_cycles,
                                    result, &run.fsm[p]);
                        } else {
                            for (size_t w = 0; w < 4; ++w)
                                wsp.counts[w].assign(cnt[w],
                                                     cnt[w] + len);
                            blocks::binaryAveragePoolingSigned(
                                wsp.counts, n_inputs, wsp.steps);
                            timer.lap(timer.pooling);
                            sc::Btanh unit(
                                state_count,
                                static_cast<unsigned>(n_inputs));
                            run.out.arena.assign(
                                p, unit.transformSigned(wsp.steps));
                        }
                    }
                } else {
                    const uint64_t *prod[4];
                    for (size_t w = 0; w < 4; ++w)
                        prod[w] = product_block.data() +
                                  (w * sc::kFilterLanes + f) * seg_words;
                    if (use_max) {
                        if (fused) {
                            blocks::maxPoolStreamsRange(
                                prod, 4, seg.c0, seg.n_cycles,
                                cfg_.segment_len, /*accumulate=*/true,
                                run.pool[p], seg_stream.data());
                            timer.lap(timer.pooling);
                            stanh_tables_[layer_idx]->transformWords(
                                seg_stream.data(), seg.n_cycles, result,
                                &run.fsm[p]);
                        } else {
                            std::vector<sc::BitstreamView> pv;
                            for (size_t w = 0; w < 4; ++w)
                                pv.emplace_back(prod[w], len);
                            pooled_stream = blocks::maxPoolStreamsReference(
                                pv, cfg_.segment_len, 0,
                                /*accumulate=*/true);
                            timer.lap(timer.pooling);
                            sc::Stanh fsm(state_count);
                            run.out.arena.assign(
                                p, fsm.transform(pooled_stream));
                        }
                    } else {
                        // Unlike the isolated Figure 14(b) study
                        // (operands uniform over [-1,1]),
                        // trained-network streams sit near p=0.5 where
                        // the Figure 11 K/5 threshold would swamp the
                        // signal with a constant positive bias; the
                        // classic midpoint threshold is used for
                        // network inference.
                        if (fused) {
                            blocks::averagePoolingRange(
                                prod, 4, seg.n_cycles, run.pool_rng[p],
                                seg_stream.data());
                            timer.lap(timer.pooling);
                            stanh_tables_[layer_idx]->transformWords(
                                seg_stream.data(), seg.n_cycles, result,
                                &run.fsm[p]);
                        } else {
                            for (size_t w = 0; w < 4; ++w) {
                                wsp.streams[w].reset(len);
                                std::copy(prod[w],
                                          prod[w] + seg_words,
                                          wsp.streams[w]
                                              .mutableWords()
                                              .begin());
                            }
                            pooled_stream = blocks::averagePooling(
                                wsp.streams, run.pool_rng[p]);
                            timer.lap(timer.pooling);
                            sc::Stanh fsm(state_count);
                            run.out.arena.assign(
                                p, fsm.transform(pooled_stream));
                        }
                    }
                }
                timer.lap(timer.activation);
            }
        }
        flushPhases(profile, timer, seg.w0);
    });
}

void
ScNetwork::initFcRun(FcRun &run, const FcWeightStreams &weights,
                     size_t layer_idx, uint64_t seed) const
{
    run.out.reset(weights.n_out, cfg_.bitstream_len);
    const bool use_apc = blocks::febUsesApc(stageFebKind(layer_idx));
    run.fsm.assign(weights.n_out,
                   use_apc ? btanh_tables_[layer_idx]->initialState()
                           : stanh_tables_[layer_idx]->initialState());
    run.sel_rng.clear();
    if (!use_apc) {
        // One select generator per neuron block, shared by its lanes
        // (cf. the conv layers' per-(block, position, window) scheme).
        const size_t n_groups = weights.blocked.groups();
        run.sel_rng.reserve(n_groups);
        for (size_t g = 0; g < n_groups; ++g)
            run.sel_rng.emplace_back(
                siteSeed(seed ^ kSelectSalt, layer_idx, g));
    }
}

void
ScNetwork::runFcLayerSegment(const std::vector<sc::BitstreamView> &in,
                             const FcWeightStreams &weights,
                             size_t layer_idx, const SegRange &seg,
                             FcRun &run, EngineMode mode,
                             PhaseBreakdown *profile) const
{
    SCDCNN_ASSERT(in.size() == weights.n_in,
                  "fc layer expects %zu inputs, got %zu", weights.n_in,
                  in.size());
    const size_t n_inputs = weights.n_in + 1;
    const size_t len = cfg_.bitstream_len;
    const blocks::FebKind kind = stageFebKind(layer_idx);
    const unsigned state_count = layer_k_[layer_idx];
    const bool use_apc = blocks::febUsesApc(kind);
    const bool fused = mode != EngineMode::Reference;

    const size_t n_groups = weights.blocked.groups();
    const size_t seg_words = seg.w1 - seg.w0;
    const size_t seg_stride = seg_words * 64;

    // One neuron block per work item, chunked across the pool with
    // per-chunk workspaces; the shared input views are gathered once
    // per chunk and every block's weight slice streams contiguously.
    parallelForChunks(0, n_groups, [&](size_t lo, size_t hi) {
        sc::FusedWorkspace wsp;
        wsp.xs.resize(n_inputs);
        wsp.counts.resize(1);
        for (size_t i = 0; i < weights.n_in; ++i)
            wsp.xs[i] = in[i];
        wsp.xs[weights.n_in] = bias_line_;
        std::vector<uint16_t> counts_block(sc::kFilterLanes * seg_stride);
        std::vector<uint64_t> product_block;
        if (!use_apc)
            product_block.resize(sc::kFilterLanes * seg_words);
        PhaseTimer timer(profile != nullptr || obs::armed());
        for (size_t g = lo; g < hi; ++g) {
            const sc::WeightBlockView block = weights.blocked.block(g);
            timer.start();
            if (use_apc) {
                if (fused)
                    sc::fusedProductCountsMulti(
                        wsp.xs, block, /*approximate=*/true, seg.w0,
                        seg.w1, counts_block.data(), seg_stride);
                else
                    sc::referenceProductCountsMulti(
                        wsp.xs, block, /*approximate=*/true, seg.w0,
                        seg.w1, counts_block.data(), seg_stride);
            } else {
                sc::Xoshiro256ss &sel = run.sel_rng[g];
                sc::fillMuxSelects(n_inputs, seg.n_cycles, sel,
                                   wsp.selects);
                if (fused)
                    sc::fusedMuxProductMulti(wsp.xs, block, wsp.selects,
                                             seg.w0, seg.w1,
                                             product_block.data(),
                                             seg_words);
                else
                    sc::referenceMuxProductMulti(wsp.xs, block,
                                                 wsp.selects, seg.w0,
                                                 seg.w1,
                                                 product_block.data(),
                                                 seg_words);
            }
            timer.lap(timer.inner_product);

            for (size_t f = 0; f < block.lanes; ++f) {
                const size_t o = g * sc::kFilterLanes + f;
                uint64_t *result = run.out.wordsAt(o) + seg.w0;
                if (use_apc) {
                    const uint16_t *cnt =
                        counts_block.data() + f * seg_stride;
                    if (fused) {
                        btanh_tables_[layer_idx]->transformWords(
                            cnt, seg.n_cycles, result, &run.fsm[o]);
                    } else {
                        wsp.counts[0].assign(cnt, cnt + len);
                        sc::Btanh unit(state_count,
                                       static_cast<unsigned>(n_inputs));
                        run.out.assign(o, unit.transform(wsp.counts[0]));
                    }
                } else {
                    const uint64_t *prod =
                        product_block.data() + f * seg_words;
                    if (fused) {
                        stanh_tables_[layer_idx]->transformWords(
                            prod, seg.n_cycles, result, &run.fsm[o]);
                    } else {
                        sc::Stanh fsm(state_count);
                        sc::Bitstream stream(len);
                        std::copy(prod, prod + seg_words,
                                  stream.mutableWords().begin());
                        run.out.assign(o, fsm.transform(stream));
                    }
                }
                timer.lap(timer.activation);
            }
        }
        flushPhases(profile, timer, seg.w0);
    });
}

void
ScNetwork::runOutputSegment(const std::vector<sc::BitstreamView> &in,
                            const FcWeightStreams &weights,
                            const SegRange &seg, OutputRun &run,
                            EngineMode mode,
                            PhaseBreakdown *profile) const
{
    const Clock::time_point t0 = Clock::now();
    const size_t n_inputs = weights.n_in + 1;
    std::vector<sc::BitstreamView> xs(n_inputs);
    std::vector<sc::BitstreamView> ws(n_inputs);
    for (size_t i = 0; i < weights.n_in; ++i)
        xs[i] = in[i];
    xs[weights.n_in] = bias_line_;

    // The accumulator de-randomizes: score = sum of bipolar sums. The
    // fused path never materializes the per-cycle counts — each
    // segment's contribution reduces to word popcounts, summed into
    // the per-class running accumulators.
    for (size_t o = 0; o < weights.n_out; ++o) {
        for (size_t i = 0; i < n_inputs; ++i)
            ws[i] = weights.at(o, i);
        if (mode != EngineMode::Reference)
            sc::fusedProductCountTotalRange(xs, ws, seg.w0, seg.w1,
                                            run.acc[o]);
        else
            sc::referenceProductCountTotalRange(xs, ws, seg.w0, seg.w1,
                                                run.acc[o]);
    }
    run.consumed += seg.n_cycles;
    const auto output_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - t0)
            .count());
    if (profile != nullptr)
        profile->output_ns += output_ns;
    if (obs::armed()) {
        obs::TraceRecorder &rec = obs::TraceRecorder::instance();
        const uint64_t end = rec.nowNs();
        rec.spanComplete(obs::SpanName::Output, end - output_ns,
                         output_ns, 0, 0, seg.w0);
    }
}

ScNetwork::BatchStreamGrid
ScNetwork::encodeImagesBatch(const std::vector<nn::Tensor> &images,
                             const std::vector<uint64_t> &seeds,
                             ThreadPool *pool) const
{
    BatchStreamGrid grid;
    grid.c = plan_.in_c;
    grid.h = plan_.in_h;
    grid.w = plan_.in_w;
    grid.arena.reset(grid.c * grid.h * grid.w, images.size(),
                     cfg_.bitstream_len);
    const auto body = [&](size_t b) {
        const nn::Tensor &image = images[b];
        SCDCNN_ASSERT(image.channels() == plan_.in_c &&
                          image.height() == plan_.in_h &&
                          image.width() == plan_.in_w,
                      "expected a %zux%zux%zu image, got %zux%zux%zu",
                      plan_.in_c, plan_.in_h, plan_.in_w,
                      image.channels(), image.height(), image.width());
        sc::SngBank bank(seeds[b]);
        for (size_t i = 0; i < image.size(); ++i)
            grid.arena.assign(i, b,
                              bank.bipolar(image[i], cfg_.bitstream_len));
    };
    if (pool != nullptr)
        parallelFor(*pool, 0, images.size(), body);
    else
        parallelFor(0, images.size(), body);
    return grid;
}

void
ScNetwork::initConvBatchRun(ConvBatchRun &run, const BatchStreamGrid &in,
                            const ConvWeightStreams &weights,
                            size_t layer_idx,
                            const std::vector<uint64_t> &seeds) const
{
    const size_t B = seeds.size();
    const size_t k = weights.k;
    const size_t conv_h = in.h - k + 1;
    const size_t conv_w = in.w - k + 1;
    SCDCNN_ASSERT(conv_h % 2 == 0 && conv_w % 2 == 0,
                  "conv output not poolable");
    run.out.c = weights.c_out;
    run.out.h = conv_h / 2;
    run.out.w = conv_w / 2;
    run.out.arena.reset(run.out.c * run.out.h * run.out.w, B,
                        cfg_.bitstream_len);

    const blocks::FebKind kind = stageFebKind(layer_idx);
    const bool use_apc = blocks::febUsesApc(kind);
    const bool use_max = blocks::febUsesMaxPool(kind);
    const size_t n_pixels = run.out.c * run.out.h * run.out.w;

    // Every per-site quantity of the per-image run, replicated per
    // image at index site * B + b, seeded exactly as image b's own
    // initConvRun would seed it — the source of the batched/per-image
    // bit-exactness.
    run.fsm.assign(n_pixels * B,
                   use_apc ? btanh_tables_[layer_idx]->initialState()
                           : stanh_tables_[layer_idx]->initialState());
    run.pool.clear();
    if (use_max) {
        run.pool.resize(n_pixels * B);
        for (auto &st : run.pool)
            st.reset(4, 0);
    }
    run.sel_rng.clear();
    run.pool_rng.clear();
    if (!use_apc) {
        const size_t positions = run.out.h * run.out.w;
        const size_t n_sites = weights.blocked.groups() * positions * 4;
        run.sel_rng.reserve(n_sites * B);
        for (size_t s = 0; s < n_sites; ++s)
            for (size_t b = 0; b < B; ++b)
                run.sel_rng.emplace_back(
                    siteSeed(seeds[b] ^ kSelectSalt, layer_idx, s));
        if (!use_max) {
            run.pool_rng.reserve(n_pixels * B);
            for (size_t p = 0; p < n_pixels; ++p)
                for (size_t b = 0; b < B; ++b)
                    run.pool_rng.emplace_back(
                        siteSeed(seeds[b] ^ kPoolSalt, layer_idx, p));
        }
    }
}

void
ScNetwork::initFcBatchRun(FcBatchRun &run, const FcWeightStreams &weights,
                          size_t layer_idx,
                          const std::vector<uint64_t> &seeds) const
{
    const size_t B = seeds.size();
    run.out.reset(weights.n_out, B, cfg_.bitstream_len);
    const bool use_apc = blocks::febUsesApc(stageFebKind(layer_idx));
    run.fsm.assign(weights.n_out * B,
                   use_apc ? btanh_tables_[layer_idx]->initialState()
                           : stanh_tables_[layer_idx]->initialState());
    run.sel_rng.clear();
    if (!use_apc) {
        const size_t n_groups = weights.blocked.groups();
        run.sel_rng.reserve(n_groups * B);
        for (size_t g = 0; g < n_groups; ++g)
            for (size_t b = 0; b < B; ++b)
                run.sel_rng.emplace_back(
                    siteSeed(seeds[b] ^ kSelectSalt, layer_idx, g));
    }
}

void
ScNetwork::runConvLayerSegmentBatch(const BatchStreamGrid &in,
                                    const ConvWeightStreams &weights,
                                    size_t layer_idx, const SegRange &seg,
                                    const std::vector<uint32_t> &active,
                                    ConvBatchRun &run,
                                    ThreadPool *pool) const
{
    const size_t k = weights.k;
    const size_t out_w = run.out.w;
    const size_t n_inputs = weights.n_per_filter;
    const size_t B = run.out.arena.images();
    const size_t n_active = active.size();

    const blocks::FebKind kind = stageFebKind(layer_idx);
    const bool use_apc = blocks::febUsesApc(kind);
    const bool use_max = blocks::febUsesMaxPool(kind);
    const size_t positions = run.out.h * run.out.w;
    const size_t n_groups = weights.blocked.groups();
    const size_t seg_words = seg.w1 - seg.w0;
    const size_t seg_stride = seg_words * 64;
    const size_t in_stride = in.arena.strideWords();

    // Work items as in the per-image runner — one (filter block,
    // output position) pair — but each item now covers the whole
    // active micro-batch: the block's weight words are loaded once per
    // segment word and folded against every active image's input
    // window before advancing (the weight-stationary inversion).
    // Max-pooled APC layers carry the inner products as count planes:
    // the Figure 8 selector needs per-cycle counts only for the input
    // it forwards, so the kernel skips the plane-to-count transpose
    // for the losing windows (binaryMaxPoolPlanesBatch recovers the
    // winner's counts on demand).
    const size_t plane_cap = sc::planeCapForTaps(n_inputs);
    const size_t plane_lane_stride = seg_words * (plane_cap + 1);
    const size_t plane_image_stride = sc::kFilterLanes * plane_lane_stride;

    const auto body = [&](size_t lo, size_t hi) {
        sc::BatchFusedWorkspace wsp;
        wsp.xs0.resize(n_inputs);
        wsp.x_strides.assign(n_inputs, in_stride);
        wsp.x_strides[n_inputs - 1] = 0; // shared bias line
        std::vector<uint64_t> planes_buf;
        std::vector<const uint64_t *> plane_ptrs;
        if (use_apc && use_max) {
            // +4 tail words: the pooling quad loads read whole 4-plane
            // groups past the last word's parity slot.
            planes_buf.resize(4 * n_active * plane_image_stride + 4);
            plane_ptrs.resize(4 * n_active);
        } else if (use_apc)
            wsp.counts.resize(4 * n_active * sc::kFilterLanes *
                              seg_stride);
        else
            wsp.products.resize(4 * n_active * sc::kFilterLanes *
                                seg_words);
        if (use_apc && use_max)
            wsp.pooled.resize(n_active * seg_stride);
        if (use_apc && !use_max)
            wsp.steps.resize(n_active * seg_stride);
        if (!use_apc)
            wsp.pooled_words.resize(n_active * seg_words);
        wsp.count_ptrs.resize(n_active);
        wsp.word_ptrs.resize(n_active);
        wsp.step_ptrs.resize(n_active);
        wsp.out_ptrs.resize(n_active);
        wsp.state_ptrs.resize(n_active);
        std::vector<blocks::MaxPoolCarryState *> pool_state_ptrs;
        std::vector<uint16_t *> pool_out_ptrs;
        if (use_apc && use_max) {
            pool_state_ptrs.resize(n_active);
            pool_out_ptrs.resize(n_active);
        }
        for (size_t item = lo; item < hi; ++item) {
            const size_t g = item / positions;
            const size_t q = item % positions;
            const size_t oy = q / out_w;
            const size_t ox = q % out_w;
            const sc::WeightBlockView block = weights.blocked.block(g);

            for (size_t dy = 0; dy < 2; ++dy) {
                for (size_t dx = 0; dx < 2; ++dx) {
                    const size_t cy = 2 * oy + dy;
                    const size_t cx = 2 * ox + dx;
                    size_t idx = 0;
                    for (size_t ci = 0; ci < weights.c_in; ++ci)
                        for (size_t ky = 0; ky < k; ++ky)
                            for (size_t kx = 0; kx < k; ++kx)
                                wsp.xs0[idx++] =
                                    in.at(ci, cy + ky, cx + kx, 0);
                    wsp.xs0[idx] = bias_line_;

                    const size_t window = dy * 2 + dx;
                    if (use_apc) {
                        if (use_max) {
                            uint64_t *dst =
                                planes_buf.data() +
                                window * n_active * plane_image_stride;
                            sc::fusedProductPlanesMultiBatch(
                                wsp.xs0, wsp.x_strides, active.data(),
                                n_active, block, /*approximate=*/true,
                                seg.w0, seg.w1, dst, plane_cap,
                                plane_lane_stride, plane_image_stride);
                        } else {
                            uint16_t *dst =
                                wsp.counts.data() +
                                window * n_active * sc::kFilterLanes *
                                    seg_stride;
                            sc::fusedProductCountsMultiBatch(
                                wsp.xs0, wsp.x_strides, active.data(),
                                n_active, block, /*approximate=*/true,
                                seg.w0, seg.w1, dst, seg_stride,
                                sc::kFilterLanes * seg_stride);
                        }
                    } else {
                        // MUX layers keep the per-image kernel (the
                        // selects are per-image RNG sequences anyway);
                        // the image loop still re-reads the block's
                        // weight slice from cache.
                        for (size_t j = 0; j < n_active; ++j) {
                            const size_t img = active[j];
                            sc::Xoshiro256ss &sel =
                                run.sel_rng[(item * 4 + window) * B +
                                            img];
                            sc::fillMuxSelects(n_inputs, seg.n_cycles,
                                               sel, wsp.selects);
                            sc::shiftViewsForImage(wsp.xs0,
                                                   wsp.x_strides, img,
                                                   wsp.xs_img);
                            uint64_t *dst =
                                wsp.products.data() +
                                (window * n_active + j) *
                                    sc::kFilterLanes * seg_words;
                            sc::fusedMuxProductMulti(
                                wsp.xs_img, block, wsp.selects, seg.w0,
                                seg.w1, dst, seg_words);
                        }
                    }
                }
            }

            // Pool each lane's pixel per image, then activate all
            // active images of the lane in one interleaved FSM pass
            // (independent serial chains overlap in the pipeline).
            for (size_t f = 0; f < block.lanes; ++f) {
                const size_t p =
                    (g * sc::kFilterLanes + f) * positions + q;
                for (size_t j = 0; j < n_active; ++j) {
                    const size_t img = active[j];
                    wsp.out_ptrs[j] =
                        run.out.arena.wordsAt(p, img) + seg.w0;
                    wsp.state_ptrs[j] = &run.fsm[p * B + img];
                }
                if (use_apc) {
                    if (use_max) {
                        // One batched pool call per lane: the chunk
                        // walk of the Figure 8 selector depends only
                        // on the segment range, so it is shared across
                        // the micro-batch, and the plane form means
                        // only each image's selected window is ever
                        // transposed back to per-cycle counts.
                        for (size_t j = 0; j < n_active; ++j) {
                            const size_t img = active[j];
                            for (size_t w = 0; w < 4; ++w)
                                plane_ptrs[j * 4 + w] =
                                    planes_buf.data() +
                                    (w * n_active + j) *
                                        plane_image_stride +
                                    f * plane_lane_stride;
                            pool_state_ptrs[j] =
                                &run.pool[p * B + img];
                            pool_out_ptrs[j] =
                                wsp.pooled.data() + j * seg_stride;
                            wsp.count_ptrs[j] = pool_out_ptrs[j];
                        }
                        blocks::binaryMaxPoolPlanesBatch(
                            plane_ptrs.data(), n_active, 4, plane_cap,
                            /*parity=*/true, seg.c0, seg.n_cycles,
                            cfg_.segment_len, /*accumulate=*/true,
                            pool_state_ptrs.data(),
                            pool_out_ptrs.data());
                    } else {
                        for (size_t j = 0; j < n_active; ++j) {
                            const uint16_t *cnt[4];
                            for (size_t w = 0; w < 4; ++w)
                                cnt[w] = wsp.counts.data() +
                                         ((w * n_active + j) *
                                              sc::kFilterLanes +
                                          f) *
                                             seg_stride;
                            blocks::binaryAveragePoolingSignedRange(
                                cnt, 4, n_inputs, seg.n_cycles,
                                wsp.steps.data() + j * seg_stride);
                            wsp.step_ptrs[j] =
                                wsp.steps.data() + j * seg_stride;
                        }
                    }
                    if (use_max)
                        btanh_tables_[layer_idx]->transformWordsBatch(
                            wsp.count_ptrs.data(), seg.n_cycles,
                            wsp.out_ptrs.data(), wsp.state_ptrs.data(),
                            n_active);
                    else
                        btanh_tables_[layer_idx]
                            ->transformSignedWordsBatch(
                                wsp.step_ptrs.data(), seg.n_cycles,
                                wsp.out_ptrs.data(),
                                wsp.state_ptrs.data(), n_active);
                } else {
                    for (size_t j = 0; j < n_active; ++j) {
                        const size_t img = active[j];
                        const uint64_t *prod[4];
                        for (size_t w = 0; w < 4; ++w)
                            prod[w] = wsp.products.data() +
                                      ((w * n_active + j) *
                                           sc::kFilterLanes +
                                       f) *
                                          seg_words;
                        if (use_max)
                            blocks::maxPoolStreamsRange(
                                prod, 4, seg.c0, seg.n_cycles,
                                cfg_.segment_len, /*accumulate=*/true,
                                run.pool[p * B + img],
                                wsp.pooled_words.data() +
                                    j * seg_words);
                        else
                            blocks::averagePoolingRange(
                                prod, 4, seg.n_cycles,
                                run.pool_rng[p * B + img],
                                wsp.pooled_words.data() +
                                    j * seg_words);
                        wsp.word_ptrs[j] =
                            wsp.pooled_words.data() + j * seg_words;
                    }
                    stanh_tables_[layer_idx]->transformWordsBatch(
                        wsp.word_ptrs.data(), seg.n_cycles,
                        wsp.out_ptrs.data(), wsp.state_ptrs.data(),
                        n_active);
                }
            }
        }
    };
    if (pool != nullptr)
        parallelForChunks(*pool, 0, n_groups * positions, body);
    else
        parallelForChunks(0, n_groups * positions, body);
}

void
ScNetwork::runFcLayerSegmentBatch(const std::vector<sc::BitstreamView> &in0,
                                  const std::vector<size_t> &in_strides,
                                  const FcWeightStreams &weights,
                                  size_t layer_idx, const SegRange &seg,
                                  const std::vector<uint32_t> &active,
                                  FcBatchRun &run, ThreadPool *pool) const
{
    SCDCNN_ASSERT(in0.size() == weights.n_in,
                  "fc layer expects %zu inputs, got %zu", weights.n_in,
                  in0.size());
    const size_t n_inputs = weights.n_in + 1;
    const size_t B = run.out.images();
    const size_t n_active = active.size();
    const bool use_apc = blocks::febUsesApc(stageFebKind(layer_idx));

    const size_t n_groups = weights.blocked.groups();
    const size_t seg_words = seg.w1 - seg.w0;
    const size_t seg_stride = seg_words * 64;

    const auto body = [&](size_t lo, size_t hi) {
        sc::BatchFusedWorkspace wsp;
        wsp.xs0.resize(n_inputs);
        wsp.x_strides.resize(n_inputs);
        for (size_t i = 0; i < weights.n_in; ++i) {
            wsp.xs0[i] = in0[i];
            wsp.x_strides[i] = in_strides[i];
        }
        wsp.xs0[weights.n_in] = bias_line_;
        wsp.x_strides[weights.n_in] = 0;
        if (use_apc)
            wsp.counts.resize(n_active * sc::kFilterLanes * seg_stride);
        else
            wsp.products.resize(n_active * sc::kFilterLanes * seg_words);
        wsp.count_ptrs.resize(n_active);
        wsp.word_ptrs.resize(n_active);
        wsp.out_ptrs.resize(n_active);
        wsp.state_ptrs.resize(n_active);
        for (size_t g = lo; g < hi; ++g) {
            const sc::WeightBlockView block = weights.blocked.block(g);
            if (use_apc) {
                sc::fusedProductCountsMultiBatch(
                    wsp.xs0, wsp.x_strides, active.data(), n_active,
                    block, /*approximate=*/true, seg.w0, seg.w1,
                    wsp.counts.data(), seg_stride,
                    sc::kFilterLanes * seg_stride);
            } else {
                for (size_t j = 0; j < n_active; ++j) {
                    const size_t img = active[j];
                    sc::Xoshiro256ss &sel = run.sel_rng[g * B + img];
                    sc::fillMuxSelects(n_inputs, seg.n_cycles, sel,
                                       wsp.selects);
                    sc::shiftViewsForImage(wsp.xs0, wsp.x_strides, img,
                                           wsp.xs_img);
                    sc::fusedMuxProductMulti(
                        wsp.xs_img, block, wsp.selects, seg.w0, seg.w1,
                        wsp.products.data() +
                            j * sc::kFilterLanes * seg_words,
                        seg_words);
                }
            }

            for (size_t f = 0; f < block.lanes; ++f) {
                const size_t o = g * sc::kFilterLanes + f;
                for (size_t j = 0; j < n_active; ++j) {
                    const size_t img = active[j];
                    wsp.out_ptrs[j] = run.out.wordsAt(o, img) + seg.w0;
                    wsp.state_ptrs[j] = &run.fsm[o * B + img];
                }
                if (use_apc) {
                    for (size_t j = 0; j < n_active; ++j)
                        wsp.count_ptrs[j] =
                            wsp.counts.data() +
                            (j * sc::kFilterLanes + f) * seg_stride;
                    btanh_tables_[layer_idx]->transformWordsBatch(
                        wsp.count_ptrs.data(), seg.n_cycles,
                        wsp.out_ptrs.data(), wsp.state_ptrs.data(),
                        n_active);
                } else {
                    for (size_t j = 0; j < n_active; ++j)
                        wsp.word_ptrs[j] =
                            wsp.products.data() +
                            (j * sc::kFilterLanes + f) * seg_words;
                    stanh_tables_[layer_idx]->transformWordsBatch(
                        wsp.word_ptrs.data(), seg.n_cycles,
                        wsp.out_ptrs.data(), wsp.state_ptrs.data(),
                        n_active);
                }
            }
        }
    };
    if (pool != nullptr)
        parallelForChunks(*pool, 0, n_groups, body);
    else
        parallelForChunks(0, n_groups, body);
}

void
ScNetwork::runOutputSegmentBatch(const std::vector<sc::BitstreamView> &in0,
                                 const std::vector<size_t> &in_strides,
                                 const FcWeightStreams &weights,
                                 const SegRange &seg,
                                 const std::vector<uint32_t> &active,
                                 OutputBatchRun &run) const
{
    const size_t n_inputs = weights.n_in + 1;
    const size_t B = run.consumed.size();
    std::vector<sc::BitstreamView> xs0(n_inputs);
    std::vector<size_t> strides(n_inputs);
    std::vector<sc::BitstreamView> xs_img;
    std::vector<sc::BitstreamView> ws(n_inputs);
    for (size_t i = 0; i < weights.n_in; ++i) {
        xs0[i] = in0[i];
        strides[i] = in_strides[i];
    }
    xs0[weights.n_in] = bias_line_;
    strides[weights.n_in] = 0;

    // Class o's weight streams are gathered once and re-read from
    // cache across the image loop (the layer is binary and tiny, so no
    // batch kernel is needed for it).
    for (size_t o = 0; o < weights.n_out; ++o) {
        for (size_t i = 0; i < n_inputs; ++i)
            ws[i] = weights.at(o, i);
        for (const uint32_t img : active) {
            sc::shiftViewsForImage(xs0, strides, img, xs_img);
            sc::fusedProductCountTotalRange(xs_img, ws, seg.w0, seg.w1,
                                            run.acc[o * B + img]);
        }
    }
    for (const uint32_t img : active)
        run.consumed[img] += seg.n_cycles;
}

std::vector<size_t>
ScNetwork::forwardBatchFused(const std::vector<nn::Tensor> &images,
                             const std::vector<uint64_t> &seeds,
                             const PredictOptions &opts, ThreadPool *pool,
                             std::vector<ForwardInfo> *infos,
                             const std::vector<const CancelSignal *>
                                 *cancels) const
{
    const EngineMode mode = opts.mode;
    const size_t B = images.size();
    const size_t len = cfg_.bitstream_len;
    const size_t n_words = (len + 63) / 64;
    // Segment-size resolution: Progressive batches follow the
    // per-image checkpoint grid (mid-stream exits and compaction live
    // on segment boundaries); full-precision batches use the batch
    // knob, whole-stream by default so each weight block streams once
    // per micro-batch. (The Reference oracle never reaches this path.)
    size_t seg_words;
    if (mode == EngineMode::Progressive) {
        seg_words = cfg_.stream_segment_words;
        if (seg_words == 0)
            seg_words = kProgressiveFallbackSegmentWords;
    } else {
        seg_words = cfg_.batch_stream_segment_words;
        if (seg_words == 0)
            seg_words = n_words;
    }
    seg_words = std::min(seg_words, n_words);

    const size_t n_convs = convs_.size();
    const size_t n_fcs = fcs_.size();
    BatchStreamGrid x = encodeImagesBatch(images, seeds, pool);
    std::vector<ConvBatchRun> cruns(n_convs);
    std::vector<FcBatchRun> fruns(n_fcs);
    OutputBatchRun out;
    std::vector<uint64_t> stage_seeds(B);
    for (size_t l = 0; l < n_convs; ++l) {
        for (size_t b = 0; b < B; ++b)
            stage_seeds[b] = seeds[b] ^ (0x1111ULL * (l + 1));
        initConvBatchRun(cruns[l], l == 0 ? x : cruns[l - 1].out,
                         convs_[l], l, stage_seeds);
    }
    for (size_t j = 0; j < n_fcs; ++j) {
        for (size_t b = 0; b < B; ++b)
            stage_seeds[b] = seeds[b] ^ (0x1111ULL * (n_convs + j + 1));
        initFcBatchRun(fruns[j], fcs_[j], n_convs + j, stage_seeds);
    }
    out.acc.assign(out_.n_out * B, {});
    out.consumed.assign(B, 0);

    // FC / output inputs: image-0 views plus the per-site image word
    // stride of the producing arena (the batch-kernel operand form).
    const auto batch_grid_views = [](const BatchStreamGrid &g) {
        std::vector<sc::BitstreamView> v;
        v.reserve(g.arena.count());
        for (size_t i = 0; i < g.arena.count(); ++i)
            v.push_back(g.arena.view(i, 0));
        return v;
    };
    const auto batch_arena_views = [](const sc::BatchStreamArena &a) {
        std::vector<sc::BitstreamView> v;
        v.reserve(a.count());
        for (size_t i = 0; i < a.count(); ++i)
            v.push_back(a.view(i, 0));
        return v;
    };
    std::vector<std::vector<sc::BitstreamView>> fc_in(n_fcs);
    std::vector<std::vector<size_t>> fc_strides(n_fcs);
    for (size_t j = 0; j < n_fcs; ++j) {
        const sc::BatchStreamArena &src =
            j == 0 ? (n_convs > 0 ? cruns.back().out.arena : x.arena)
                   : fruns[j - 1].out;
        fc_in[j] = j == 0 && n_convs > 0
                       ? batch_grid_views(cruns.back().out)
                       : batch_arena_views(src);
        fc_strides[j].assign(fc_in[j].size(), src.strideWords());
    }
    const sc::BatchStreamArena &out_src =
        n_fcs > 0 ? fruns.back().out
                  : (n_convs > 0 ? cruns.back().out.arena : x.arena);
    const std::vector<sc::BitstreamView> out_in =
        batch_arena_views(out_src);
    const std::vector<size_t> out_strides(out_in.size(),
                                          out_src.strideWords());

    std::vector<uint32_t> active(B);
    for (size_t b = 0; b < B; ++b)
        active[b] = static_cast<uint32_t>(b);
    std::vector<uint8_t> exited(B, 0);
    std::vector<uint8_t> cancelled(B, 0);
    const bool poll_cancel =
        cancels != nullptr && !cancels->empty();

    for (size_t w0 = 0; w0 < n_words && !active.empty();
         w0 += seg_words) {
        SegRange seg;
        seg.w0 = w0;
        seg.w1 = std::min(w0 + seg_words, n_words);
        seg.c0 = w0 * 64;
        seg.n_cycles = std::min(seg.w1 * 64, len) - seg.c0;

        for (size_t l = 0; l < n_convs; ++l)
            runConvLayerSegmentBatch(l == 0 ? x : cruns[l - 1].out,
                                     convs_[l], l, seg, active,
                                     cruns[l], pool);
        for (size_t j = 0; j < n_fcs; ++j)
            runFcLayerSegmentBatch(fc_in[j], fc_strides[j], fcs_[j],
                                   n_convs + j, seg, active, fruns[j],
                                   pool);
        runOutputSegmentBatch(out_in, out_strides, out_, seg, active,
                              out);

        // Per-image Progressive early exit: an image whose class
        // decision is stable by the margin is removed from the active
        // set mid-stream (its carried state freezes in place, the
        // remaining images are undisturbed) — the batch-compaction
        // rule. Same conditions and margin formula as predictWith.
        // Cooperative cancellation rides the same compaction: a
        // cancelled image leaves the active set at the boundary with
        // its partial result frozen, so its batch-mates' streams are
        // bit-identical to a run without the cancellation.
        if (seg.w1 < n_words &&
            (mode == EngineMode::Progressive || poll_cancel)) {
            const size_t before = active.size();
            size_t kept = 0;
            for (size_t j = 0; j < active.size(); ++j) {
                const uint32_t img = active[j];
                if (poll_cancel && (*cancels)[img] != nullptr &&
                    (*cancels)[img]->cancelled()) {
                    cancelled[img] = 1;
                    continue;
                }
                bool exit_now = false;
                if (mode == EngineMode::Progressive &&
                    out.consumed[img] >= opts.progressive_min_bits) {
                    uint64_t best = 0, second = 0;
                    for (size_t o = 0; o < out_.n_out; ++o) {
                        const uint64_t v =
                            out.acc[o * B + img].value(
                                /*approximate=*/true);
                        if (v > best) {
                            second = best;
                            best = v;
                        } else if (v > second) {
                            second = v;
                        }
                    }
                    const double margin =
                        2.0 *
                        (static_cast<double>(best) -
                         static_cast<double>(second)) /
                        static_cast<double>(out.consumed[img]);
                    exit_now = margin >= opts.progressive_margin;
                }
                if (exit_now) {
                    exited[img] = 1;
                    if (obs::armed())
                        obs::TraceRecorder::instance().instant(
                            obs::SpanName::EarlyExit, 0, 0,
                            out.consumed[img], seg.w1);
                } else {
                    active[kept++] = img;
                }
            }
            active.resize(kept);
            if (kept < before && obs::armed())
                obs::TraceRecorder::instance().instant(
                    obs::SpanName::BatchCompact, 0, 0, kept, before);
        }
    }

    std::vector<size_t> preds(B);
    const auto fan_in = static_cast<double>(out_.n_in + 1);
    for (size_t b = 0; b < B; ++b) {
        const auto consumed = static_cast<double>(out.consumed[b]);
        std::vector<double> scores(out_.n_out);
        for (size_t o = 0; o < out_.n_out; ++o)
            scores[o] = (2.0 * static_cast<double>(out.acc[o * B + b]
                                                       .value(
                                                           /*approximate=*/
                                                           true)) -
                         fan_in * consumed) /
                        consumed;
        preds[b] = static_cast<size_t>(
            std::max_element(scores.begin(), scores.end()) -
            scores.begin());
        if (infos != nullptr) {
            (*infos)[b].scores = std::move(scores);
            (*infos)[b].effective_bits = out.consumed[b];
            (*infos)[b].early_exit = exited[b] != 0;
            (*infos)[b].cancelled = cancelled[b] != 0;
        }
    }
    return preds;
}

size_t
ScNetwork::predict(const nn::Tensor &image, uint64_t seed,
                   PhaseBreakdown *profile, ForwardInfo *info) const
{
    return predictWith(image, seed, defaultOptions(), profile, info);
}

size_t
ScNetwork::predictWith(const nn::Tensor &image, uint64_t seed,
                       const PredictOptions &opts,
                       PhaseBreakdown *profile, ForwardInfo *info) const
{
    const EngineMode mode = opts.mode;

    // The binary backend is deterministic and single-pass: no streams,
    // no segments, no seeds, nothing to cancel mid-flight. Dispatch
    // before any stream state is built.
    if (mode == EngineMode::Binary) {
        std::vector<double> scores;
        const size_t pred = binary_.predict(image, &scores);
        if (info != nullptr) {
            info->scores = std::move(scores);
            info->effective_bits = 1;
            info->early_exit = false;
            info->cancelled = false;
        }
        return pred;
    }

    const size_t len = cfg_.bitstream_len;
    const size_t n_words = (len + 63) / 64;
    // The Reference oracle always runs whole streams; the fused engine
    // streams the whole network segment by segment (whole-stream when
    // the knob is 0), carrying all FSM/pooling/select state — results
    // are bit-exact for every segment size. Progressive needs mid-
    // stream checkpoints to exist at all, so a whole-stream knob falls
    // back to the default granularity there instead of silently
    // degrading to plain Fused.
    size_t seg_words = cfg_.stream_segment_words;
    if (mode == EngineMode::Reference)
        seg_words = n_words;
    else if (seg_words == 0)
        seg_words = mode == EngineMode::Progressive
                        ? kProgressiveFallbackSegmentWords
                        : n_words;
    seg_words = std::min(seg_words, n_words);

    // Per-stage carried state, seeded positionally per stage index
    // (0x1111, 0x2222, ... — stage l gets seed ^ 0x1111*(l+1)).
    const size_t n_convs = convs_.size();
    const size_t n_fcs = fcs_.size();
    StreamGrid x = encodeImage(image, seed, profile);
    std::vector<ConvRun> cruns(n_convs);
    std::vector<FcRun> fruns(n_fcs);
    OutputRun out;
    for (size_t l = 0; l < n_convs; ++l)
        initConvRun(cruns[l], l == 0 ? x : cruns[l - 1].out, convs_[l],
                    l, seed ^ (0x1111ULL * (l + 1)));
    for (size_t j = 0; j < n_fcs; ++j)
        initFcRun(fruns[j], fcs_[j], n_convs + j,
                  seed ^ (0x1111ULL * (n_convs + j + 1)));
    out.acc.assign(out_.n_out, {});

    // Input views of each fc stage and of the output layer: the
    // flattened last conv grid (or the image itself for conv-free
    // nets) feeds the first fc; each later stage reads its
    // predecessor's output arena.
    const auto grid_views = [](const StreamGrid &g) {
        std::vector<sc::BitstreamView> v;
        v.reserve(g.arena.count());
        for (size_t i = 0; i < g.arena.count(); ++i)
            v.push_back(g.arena.view(i));
        return v;
    };
    const auto arena_views = [](const sc::StreamArena &a) {
        std::vector<sc::BitstreamView> v;
        v.reserve(a.count());
        for (size_t i = 0; i < a.count(); ++i)
            v.push_back(a.view(i));
        return v;
    };
    std::vector<std::vector<sc::BitstreamView>> fc_in(n_fcs);
    for (size_t j = 0; j < n_fcs; ++j)
        fc_in[j] = j == 0 ? grid_views(n_convs > 0 ? cruns.back().out
                                                   : x)
                          : arena_views(fruns[j - 1].out);
    const std::vector<sc::BitstreamView> out_in =
        n_fcs > 0 ? arena_views(fruns.back().out)
                  : grid_views(n_convs > 0 ? cruns.back().out : x);

    bool early_exit = false;
    bool cancelled = false;
    for (size_t w0 = 0; w0 < n_words && !early_exit && !cancelled;
         w0 += seg_words) {
        SegRange seg;
        seg.w0 = w0;
        seg.w1 = std::min(w0 + seg_words, n_words);
        seg.c0 = w0 * 64;
        seg.n_cycles = std::min(seg.w1 * 64, len) - seg.c0;

        for (size_t l = 0; l < n_convs; ++l)
            runConvLayerSegment(l == 0 ? x : cruns[l - 1].out,
                                convs_[l], l, seg, cruns[l], mode,
                                profile);
        for (size_t j = 0; j < n_fcs; ++j)
            runFcLayerSegment(fc_in[j], fcs_[j], n_convs + j, seg,
                              fruns[j], mode, profile);
        runOutputSegment(out_in, out_, seg, out, mode, profile);

        // Cooperative cancellation: polled only at segment
        // boundaries (never mid-kernel), after the segment's work has
        // been accumulated, so the partial result is well-formed over
        // the consumed prefix. No effect when the stream runs as one
        // segment (Reference mode, whole-stream knobs).
        if (opts.cancel != nullptr && seg.w1 < n_words &&
            opts.cancel->cancelled()) {
            cancelled = true;
            continue;
        }

        // Progressive precision: once the class decision is stable by
        // a configurable margin, the remaining segments cannot
        // plausibly flip it — stop and report the bits consumed.
        if (mode == EngineMode::Progressive && seg.w1 < n_words &&
            out.consumed >= opts.progressive_min_bits) {
            uint64_t best = 0, second = 0;
            for (const auto &acc : out.acc) {
                const uint64_t v = acc.value(/*approximate=*/true);
                if (v > best) {
                    second = best;
                    best = v;
                } else if (v > second) {
                    second = v;
                }
            }
            const double margin =
                2.0 *
                (static_cast<double>(best) - static_cast<double>(second)) /
                static_cast<double>(out.consumed);
            early_exit = margin >= opts.progressive_margin;
            if (early_exit && obs::armed())
                obs::TraceRecorder::instance().instant(
                    obs::SpanName::EarlyExit, 0, 0, out.consumed,
                    seg.w1);
        }
    }

    const auto consumed = static_cast<double>(out.consumed);
    const auto fan_in = static_cast<double>(out_.n_in + 1);
    std::vector<double> scores(out_.n_out);
    for (size_t o = 0; o < out_.n_out; ++o)
        scores[o] =
            (2.0 * static_cast<double>(
                       out.acc[o].value(/*approximate=*/true)) -
             fan_in * consumed) /
            consumed;
    const auto pred = static_cast<size_t>(
        std::max_element(scores.begin(), scores.end()) - scores.begin());
    if (info != nullptr) {
        info->scores = std::move(scores);
        info->effective_bits = out.consumed;
        info->early_exit = early_exit;
        info->cancelled = cancelled;
    }
    return pred;
}

std::vector<size_t>
ScNetwork::forwardBatch(const std::vector<nn::Tensor> &images,
                        uint64_t seed, ThreadPool *pool) const
{
    return forwardBatch(images, seed, defaultOptions(), pool, nullptr);
}

std::vector<size_t>
ScNetwork::forwardBatch(const std::vector<nn::Tensor> &images,
                        uint64_t seed, const PredictOptions &opts,
                        ThreadPool *pool,
                        std::vector<ForwardInfo> *infos) const
{
    std::vector<uint64_t> seeds(images.size());
    for (size_t i = 0; i < images.size(); ++i)
        seeds[i] = seed + i * 7919;
    return forwardBatch(images, seeds, opts, pool, infos);
}

std::vector<size_t>
ScNetwork::forwardBatch(const std::vector<nn::Tensor> &images,
                        const std::vector<uint64_t> &seeds,
                        const PredictOptions &opts, ThreadPool *pool,
                        std::vector<ForwardInfo> *infos,
                        const std::vector<const CancelSignal *> *cancels)
    const
{
    SCDCNN_ASSERT(seeds.size() == images.size(),
                  "forwardBatch: one seed per image");
    SCDCNN_ASSERT(cancels == nullptr ||
                      cancels->size() == images.size(),
                  "forwardBatch: one cancel signal per image");
    std::vector<size_t> preds(images.size());
    if (infos != nullptr)
        infos->assign(images.size(), ForwardInfo{});
    if (images.empty())
        return preds;
    if (batchKernelEligible(opts, images.size()))
        return forwardBatchFused(images, seeds, opts, pool, infos,
                                 cancels);
    const auto body = [&](size_t i) {
        PredictOptions o = opts;
        if (cancels != nullptr && (*cancels)[i] != nullptr)
            o.cancel = (*cancels)[i];
        preds[i] = predictWith(images[i], seeds[i], o, nullptr,
                               infos != nullptr ? &(*infos)[i] : nullptr);
    };
    if (pool != nullptr)
        parallelFor(*pool, 0, images.size(), body);
    else
        parallelFor(0, images.size(), body);
    return preds;
}

double
ScNetwork::errorRate(const nn::Dataset &ds, size_t max_images,
                     uint64_t seed, ThreadPool *pool) const
{
    const size_t n = std::min(ds.size(), max_images);
    SCDCNN_ASSERT(n > 0, "empty SC evaluation set");
    // One seed schedule and one parallel loop for all batched
    // prediction: forwardBatch's. An error rate is therefore
    // reproducible from the batch predictions at the same seed.
    std::vector<nn::Tensor> images;
    images.reserve(n);
    for (size_t i = 0; i < n; ++i)
        images.push_back(ds.samples[i].image);
    const std::vector<size_t> preds = forwardBatch(images, seed, pool);
    size_t wrong = 0;
    for (size_t i = 0; i < n; ++i)
        if (preds[i] != ds.samples[i].label)
            ++wrong;
    return static_cast<double>(wrong) / static_cast<double>(n);
}

} // namespace core
} // namespace scdcnn
