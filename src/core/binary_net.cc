#include "core/binary_net.h"

#include <algorithm>

#include "common/logging.h"
#include "nn/layers.h"
#include "nn/quantize.h"
#include "sc/fused.h"

namespace scdcnn {
namespace core {

namespace {

/** Incremental bit packer: appends chunks of up to 64 bits LSB-first
 *  into a word buffer (the operand/flatten gather of the binary
 *  forward pass). Tail bits of the last word stay zero. */
struct BitPacker
{
    uint64_t *out;
    uint64_t acc = 0;
    size_t fill = 0;   //!< bits buffered in acc
    size_t word_i = 0; //!< words already flushed

    explicit BitPacker(uint64_t *dst) : out(dst) {}

    void push(uint64_t bits, size_t nb)
    {
        acc |= bits << fill;
        if (fill + nb >= 64) {
            out[word_i++] = acc;
            const size_t used = 64 - fill;
            acc = used < nb ? bits >> used : 0;
            fill = fill + nb - 64;
        } else {
            fill += nb;
        }
    }

    void pushBit(bool b) { push(b ? 1 : 0, 1); }

    void finish()
    {
        if (fill > 0) {
            out[word_i++] = acc;
            acc = 0;
            fill = 0;
        }
    }
};

size_t
argmaxFirst(const std::vector<double> &scores)
{
    size_t best = 0;
    for (size_t i = 1; i < scores.size(); ++i)
        if (scores[i] > scores[best])
            best = i;
    return best;
}

} // namespace

BinaryNetwork::BinaryNetwork(const nn::Network &trained,
                             const nn::NetworkPlan &plan, Options opts)
    : plan_(plan), opts_(opts)
{
    SCDCNN_ASSERT(plan_.in_w <= 64,
                  "binary row packing needs width <= 64, got %zu",
                  plan_.in_w);
    // The plan carries geometry but not the pooling flavour; recover
    // it from the trained net's pool layers so the binary pass matches
    // the float oracle exactly.
    const std::vector<nn::StageOutline> outline =
        nn::outlineNetworkStages(trained);
    stages_.resize(plan_.stages.size());
    for (size_t l = 0; l < plan_.stages.size(); ++l) {
        SCDCNN_ASSERT(plan_.stages[l].out_w <= 64,
                      "binary row packing needs width <= 64, got %zu",
                      plan_.stages[l].out_w);
        packStage(trained, plan_.stages[l],
                  opts_.full_precision_edges && l == 0, stages_[l]);
        if (plan_.stages[l].kind == nn::StageOutline::Kind::Conv) {
            const auto &pool = dynamic_cast<const nn::PoolLayer &>(
                trained.layer(outline[l].pool_index));
            stages_[l].max_pool = pool.mode() == nn::PoolLayer::Mode::Max;
        }
    }
    packStage(trained, plan_.output, opts_.full_precision_edges, out_);
}

void
BinaryNetwork::packStage(const nn::Network &net, const nn::PlanStage &st,
                         bool fp_edge, Stage &out) const
{
    out.st = st;
    out.n = st.fan_in + 1;
    const bool conv = st.kind == nn::StageOutline::Kind::Conv;
    const size_t filters = conv ? st.out_c : st.flatOut();

    if (fp_edge) {
        // Full-precision stage: keep the trained float parameters in
        // the oracle's (ci, ky, kx) tap order; no packed weights.
        out.fw.resize(filters * st.fan_in);
        out.fb.resize(filters);
        if (conv) {
            const auto &layer = dynamic_cast<const nn::ConvLayer &>(
                net.layer(st.layer_index));
            size_t i = 0;
            for (size_t co = 0; co < filters; ++co) {
                for (size_t ci = 0; ci < layer.cIn(); ++ci)
                    for (size_t ky = 0; ky < layer.kernel(); ++ky)
                        for (size_t kx = 0; kx < layer.kernel(); ++kx)
                            out.fw[i++] = layer.weightAt(co, ci, ky, kx);
                out.fb[co] = layer.biasAt(co);
            }
        } else {
            const auto &layer = dynamic_cast<const nn::FullyConnected &>(
                net.layer(st.layer_index));
            size_t i = 0;
            for (size_t o = 0; o < filters; ++o) {
                for (size_t in = 0; in < layer.nIn(); ++in)
                    out.fw[i++] = layer.weightAt(o, in);
                out.fb[o] = layer.biasAt(o);
            }
        }
        return;
    }

    // Sign-quantized stage: one packed stream per filter, fan_in taps
    // in (ci, ky, kx) / input order plus the bias sign as the last
    // tap (its operand bit is the constant +1).
    out.weights.reset(filters, 1, out.n);
    sc::Bitstream bits(out.n);
    if (conv) {
        const auto &layer = dynamic_cast<const nn::ConvLayer &>(
            net.layer(st.layer_index));
        for (size_t co = 0; co < filters; ++co) {
            bits.reset(out.n);
            size_t i = 0;
            for (size_t ci = 0; ci < layer.cIn(); ++ci)
                for (size_t ky = 0; ky < layer.kernel(); ++ky)
                    for (size_t kx = 0; kx < layer.kernel(); ++kx)
                        bits.set(i++, nn::signQuantizeBit(
                                          layer.weightAt(co, ci, ky, kx)));
            bits.set(i, nn::signQuantizeBit(layer.biasAt(co)));
            out.weights.assign(co, 0, sc::BitstreamView(bits));
        }
    } else {
        const auto &layer = dynamic_cast<const nn::FullyConnected &>(
            net.layer(st.layer_index));
        for (size_t o = 0; o < filters; ++o) {
            bits.reset(out.n);
            size_t i = 0;
            for (size_t in = 0; in < layer.nIn(); ++in)
                bits.set(i++,
                         nn::signQuantizeBit(layer.weightAt(o, in)));
            bits.set(i, nn::signQuantizeBit(layer.biasAt(o)));
            out.weights.assign(o, 0, sc::BitstreamView(bits));
        }
    }
}

void
BinaryNetwork::runConvStage(const Stage &stage, const BitGrid &in,
                            Kernel kernel, BitGrid &out) const
{
    const nn::PlanStage &st = stage.st;
    SCDCNN_ASSERT(in.c == st.in_c && in.h == st.in_h && in.w == st.in_w,
                  "conv stage input grid mismatch");
    const size_t k = st.in_h - (st.pooled ? 2 * st.out_h : st.out_h) + 1;
    const size_t n_win = st.pooled ? 4 : 1;
    const uint64_t kmask = (uint64_t{1} << k) - 1;
    const size_t n_words = (stage.n + 63) / 64;

    out.c = st.out_c;
    out.h = st.out_h;
    out.w = st.out_w;
    out.rows.assign(out.c * out.h, 0);

    // Per-window packed operands (gathered once, shared by every
    // filter block), per-channel window sums of one output row, and
    // the row's pooled pre-activations.
    std::vector<uint64_t> xwin(n_win * n_words);
    std::vector<uint32_t> matches(sc::kFilterLanes);
    std::vector<int32_t> win_buf(st.out_c * st.out_w * n_win);
    std::vector<int32_t> row_s(st.out_w);

    for (size_t oy = 0; oy < st.out_h; ++oy) {
        for (size_t ox = 0; ox < st.out_w; ++ox) {
            for (size_t widx = 0; widx < n_win; ++widx) {
                const size_t cy =
                    (st.pooled ? 2 * oy + widx / 2 : oy);
                const size_t cx =
                    (st.pooled ? 2 * ox + widx % 2 : ox);
                BitPacker pk(xwin.data() + widx * n_words);
                for (size_t ci = 0; ci < in.c; ++ci)
                    for (size_t ky = 0; ky < k; ++ky)
                        pk.push((in.rows[ci * in.h + cy + ky] >> cx) &
                                    kmask,
                                k);
                pk.pushBit(true); // bias input
                pk.finish();
            }
            for (size_t g = 0; g < stage.weights.groups(); ++g) {
                const sc::WeightBlockView block = stage.weights.block(g);
                for (size_t widx = 0; widx < n_win; ++widx) {
                    const sc::BitstreamView x(
                        xwin.data() + widx * n_words, stage.n);
                    if (kernel == Kernel::Fused)
                        sc::fusedXnorPopcountMulti(x, block,
                                                   matches.data());
                    else
                        sc::referenceXnorPopcountMulti(x, block,
                                                       matches.data());
                    for (size_t f = 0; f < block.lanes; ++f) {
                        const size_t co = g * sc::kFilterLanes + f;
                        win_buf[(co * st.out_w + ox) * n_win + widx] =
                            2 * static_cast<int32_t>(matches[f]) -
                            static_cast<int32_t>(stage.n);
                    }
                }
            }
        }
        const bool max_pool = stage.max_pool;
        for (size_t co = 0; co < st.out_c; ++co) {
            const int32_t *wins =
                win_buf.data() + co * st.out_w * n_win;
            if (n_win == 4) {
                if (kernel == Kernel::Fused)
                    sc::fusedBinaryPool4(wins, st.out_w, max_pool,
                                         row_s.data());
                else
                    sc::referenceBinaryPool4(wins, st.out_w, max_pool,
                                             row_s.data());
            } else {
                std::copy(wins, wins + st.out_w, row_s.begin());
            }
            uint64_t *row = &out.rows[co * out.h + oy];
            if (kernel == Kernel::Fused)
                sc::fusedSignPack(row_s.data(), st.out_w, row);
            else
                sc::referenceSignPack(row_s.data(), st.out_w, row);
        }
    }
}

void
BinaryNetwork::runConvStageFp(const Stage &stage, const nn::Tensor &image,
                              BitGrid &out) const
{
    const nn::PlanStage &st = stage.st;
    const size_t k = st.in_h - (st.pooled ? 2 * st.out_h : st.out_h) + 1;
    const size_t n_win = st.pooled ? 4 : 1;

    out.c = st.out_c;
    out.h = st.out_h;
    out.w = st.out_w;
    out.rows.assign(out.c * out.h, 0);

    for (size_t co = 0; co < st.out_c; ++co) {
        const double *fw = stage.fw.data() + co * st.fan_in;
        for (size_t oy = 0; oy < st.out_h; ++oy) {
            uint64_t row = 0;
            for (size_t ox = 0; ox < st.out_w; ++ox) {
                double pooled = 0.0;
                for (size_t widx = 0; widx < n_win; ++widx) {
                    const size_t cy =
                        (st.pooled ? 2 * oy + widx / 2 : oy);
                    const size_t cx =
                        (st.pooled ? 2 * ox + widx % 2 : ox);
                    double s = 0.0;
                    size_t i = 0;
                    for (size_t ci = 0; ci < st.in_c; ++ci)
                        for (size_t ky = 0; ky < k; ++ky)
                            for (size_t kx = 0; kx < k; ++kx)
                                s += fw[i++] *
                                     static_cast<double>(image.at(
                                         ci, cy + ky, cx + kx));
                    s += stage.fb[co];
                    if (widx == 0)
                        pooled = s;
                    else if (stage.max_pool)
                        pooled = std::max(pooled, s);
                    else
                        pooled += s;
                }
                if (pooled >= 0.0)
                    row |= uint64_t{1} << ox;
            }
            out.rows[co * out.h + oy] = row;
        }
    }
}

void
BinaryNetwork::runFcStage(const Stage &stage, const std::vector<uint64_t> &x,
                          Kernel kernel, std::vector<int32_t> &s_out) const
{
    const size_t filters = stage.weights.filters();
    s_out.resize(filters);
    const sc::BitstreamView xv(x.data(), stage.n);
    uint32_t matches[sc::kFilterLanes];
    for (size_t g = 0; g < stage.weights.groups(); ++g) {
        const sc::WeightBlockView block = stage.weights.block(g);
        if (kernel == Kernel::Fused)
            sc::fusedXnorPopcountMulti(xv, block, matches);
        else
            sc::referenceXnorPopcountMulti(xv, block, matches);
        for (size_t f = 0; f < block.lanes; ++f)
            s_out[g * sc::kFilterLanes + f] =
                2 * static_cast<int32_t>(matches[f]) -
                static_cast<int32_t>(stage.n);
    }
}

size_t
BinaryNetwork::predict(const nn::Tensor &image, std::vector<double> *scores,
                       Kernel kernel) const
{
    SCDCNN_ASSERT(image.channels() == plan_.in_c &&
                      image.height() == plan_.in_h &&
                      image.width() == plan_.in_w,
                  "image geometry does not match the plan");
    const bool fp = opts_.full_precision_edges;
    const size_t n_conv = plan_.convCount();

    // Conv stages: packed (channel, row) grids.
    BitGrid grid;
    size_t l = 0;
    if (n_conv > 0) {
        if (fp) {
            runConvStageFp(stages_[0], image, grid);
        } else {
            BitGrid in;
            in.c = plan_.in_c;
            in.h = plan_.in_h;
            in.w = plan_.in_w;
            in.rows.assign(in.c * in.h, 0);
            for (size_t ci = 0; ci < in.c; ++ci)
                for (size_t y = 0; y < in.h; ++y) {
                    uint64_t row = 0;
                    for (size_t x = 0; x < in.w; ++x)
                        if (binarizePixel(image.at(ci, y, x)))
                            row |= uint64_t{1} << x;
                    in.rows[ci * in.h + y] = row;
                }
            runConvStage(stages_[0], in, kernel, grid);
        }
        for (l = 1; l < n_conv; ++l) {
            BitGrid next;
            runConvStage(stages_[l], grid, kernel, next);
            grid = std::move(next);
        }
    }

    // Flatten into the packed fc activation vector, (ci, y, x) order.
    std::vector<uint64_t> flat;
    size_t flat_bits = 0;
    std::vector<int32_t> s;
    std::vector<double> fc_fp; // first-fc-stage double sums (fp mode)
    if (n_conv > 0) {
        flat_bits = grid.c * grid.h * grid.w;
        flat.assign((flat_bits + 63) / 64, 0);
        BitPacker pk(flat.data());
        for (size_t ci = 0; ci < grid.c; ++ci)
            for (size_t y = 0; y < grid.h; ++y)
                pk.push(grid.rows[ci * grid.h + y], grid.w);
        pk.finish();
    } else if (!fp) {
        flat_bits = plan_.in_c * plan_.in_h * plan_.in_w;
        flat.assign((flat_bits + 63) / 64, 0);
        BitPacker pk(flat.data());
        for (size_t i = 0; i < image.size(); ++i)
            pk.pushBit(binarizePixel(image[i]));
        pk.finish();
    }

    // Hidden fc stages.
    for (; l < stages_.size(); ++l) {
        const Stage &sg = stages_[l];
        if (fp && l == 0) {
            // First hidden stage is fully-connected: double path over
            // the raw pixels (flat (ci, y, x) == tensor order).
            fc_fp.resize(sg.fw.size() / sg.st.fan_in);
            for (size_t o = 0; o < fc_fp.size(); ++o) {
                const double *fw = sg.fw.data() + o * sg.st.fan_in;
                double acc = 0.0;
                for (size_t i = 0; i < sg.st.fan_in; ++i)
                    acc += fw[i] * static_cast<double>(image[i]);
                fc_fp[o] = acc + sg.fb[o];
            }
            s.resize(fc_fp.size());
            for (size_t o = 0; o < fc_fp.size(); ++o)
                s[o] = fc_fp[o] >= 0.0 ? 1 : -1;
        } else {
            SCDCNN_ASSERT(flat_bits == sg.st.fan_in,
                          "fc fan-in mismatch: %zu != %zu", flat_bits,
                          sg.st.fan_in);
            std::vector<uint64_t> x((sg.n + 63) / 64, 0);
            std::copy(flat.begin(), flat.end(), x.begin());
            x[sg.st.fan_in / 64] |= uint64_t{1} << (sg.st.fan_in % 64);
            runFcStage(sg, x, kernel, s);
        }
        // Popcount-sign activation into the next packed vector.
        flat_bits = s.size();
        flat.assign((flat_bits + 63) / 64, 0);
        if (kernel == Kernel::Fused)
            sc::fusedSignPack(s.data(), flat_bits, flat.data());
        else
            sc::referenceSignPack(s.data(), flat_bits, flat.data());
    }

    // Output layer.
    std::vector<double> out_scores;
    const size_t n_out = plan_.output.flatOut();
    if (fp) {
        out_scores.resize(n_out);
        for (size_t o = 0; o < n_out; ++o) {
            const double *fw = out_.fw.data() + o * out_.st.fan_in;
            double acc = 0.0;
            if (stages_.empty()) {
                // Degenerate single-layer net: the output edge is also
                // the input edge, so it consumes the raw pixels.
                for (size_t i = 0; i < out_.st.fan_in; ++i)
                    acc += fw[i] * static_cast<double>(image[i]);
            } else {
                for (size_t i = 0; i < out_.st.fan_in; ++i) {
                    const bool bit =
                        (flat[i / 64] >> (i % 64)) & 1;
                    acc += bit ? fw[i] : -fw[i];
                }
            }
            out_scores[o] = acc + out_.fb[o];
        }
    } else {
        SCDCNN_ASSERT(flat_bits == out_.st.fan_in,
                      "output fan-in mismatch: %zu != %zu", flat_bits,
                      out_.st.fan_in);
        std::vector<uint64_t> x((out_.n + 63) / 64, 0);
        std::copy(flat.begin(), flat.end(), x.begin());
        x[out_.st.fan_in / 64] |= uint64_t{1} << (out_.st.fan_in % 64);
        runFcStage(out_, x, kernel, s);
        out_scores.assign(s.begin(), s.end());
    }

    const size_t pred = argmaxFirst(out_scores);
    if (scores != nullptr)
        *scores = std::move(out_scores);
    return pred;
}

} // namespace core
} // namespace scdcnn
