/**
 * @file
 * SC-DCNN network configurations: per-layer feature extraction block
 * choices, bit-stream length, weight precision — and the twelve Table 6
 * configurations of the paper.
 */

#ifndef SCDCNN_CORE_SC_CONFIG_H
#define SCDCNN_CORE_SC_CONFIG_H

#include <array>
#include <string>
#include <vector>

#include "blocks/feature_block.h"
#include "hw/network_cost.h"
#include "nn/network.h"

namespace scdcnn {
namespace core {

/** Inner-product flavour chosen per layer in Table 6. */
enum class AdderKind
{
    Mux,
    Apc,
};

/** "MUX" / "APC". */
std::string adderKindName(AdderKind kind);

/** Calibrated Progressive-mode defaults, shared by ScNetworkConfig
 *  and core::PredictOptions so the two cannot drift apart. */
constexpr double kDefaultProgressiveMargin = 4.0;
constexpr size_t kDefaultProgressiveMinBits = 256;

/** Full SC-DCNN configuration. */
struct ScNetworkConfig
{
    nn::PoolingMode pooling = nn::PoolingMode::Max;

    /**
     * Per-paper-group adder kinds, indexed by the derived Layer0/1/2
     * grouping (nn/topology.h): [0] the first conv block, [1] every
     * deeper conv block, [2] all fully-connected layers. For LeNet5
     * this is exactly the Table 6 conv1/conv2/FC split.
     */
    std::array<AdderKind, 3> layer_adders = {AdderKind::Apc,
                                             AdderKind::Apc,
                                             AdderKind::Apc};
    size_t bitstream_len = 1024;

    /** Per-paper-group weight precisions (Section 5.3), grouped like
     *  layer_adders. */
    std::array<unsigned, 3> weight_bits = {7, 7, 6};
    size_t segment_len = 16;
    blocks::KPolicy k_policy = blocks::KPolicy::Paper;

    /** Input image geometry the engine is built for (the plan is
     *  derived and validated against it at construction). */
    size_t input_c = 1, input_h = 28, input_w = 28;

    /**
     * Segment-streaming granularity of the fused engine, in 64-bit
     * words: the whole network (inner product -> pooling -> activation
     * -> output accumulation) advances this many words of the streams
     * at a time, carrying FSM/pooling/select state across segments, so
     * a layer's live slice stays cache-resident. 0 runs whole-stream
     * (except under EngineMode::Progressive, which needs mid-stream
     * checkpoints and falls back to the default granularity). Results
     * are bit-exact for every value (the segment-streaming equivalence
     * tests pin this down).
     */
    size_t stream_segment_words = 4;

    /**
     * Segment granularity of forwardBatch's weight-stationary path, in
     * 64-bit words. 0 (the default) runs full-precision micro-batches
     * whole-stream — each weight block is streamed exactly once per
     * micro-batch, which measures faster than the single-image segment
     * grid because the batch path's cache reuse comes from keeping
     * weights resident across images, not from short stream slices.
     * Progressive micro-batches ignore this knob: mid-stream early
     * exit and active-set compaction need the checkpoint grid of
     * stream_segment_words. Results are bit-exact for every value.
     */
    size_t batch_stream_segment_words = 0;

    /**
     * EngineMode::Progressive early-exit threshold: stop consuming
     * stream segments once the output layer's bipolar-score gap
     * between the best and second-best class exceeds this margin.
     * Progressive precision trades a configurable sliver of accuracy
     * for latency; 0 exits at the first margin check. The default is
     * calibrated on the trained LeNet-5 digit task: margin 4.0 halves
     * the average consumed bits with no measured error-rate change
     * (see DESIGN.md; smaller margins exit earlier but start flipping
     * borderline images).
     */
    double progressive_margin = kDefaultProgressiveMargin;

    /** Progressive mode never exits before this many stream cycles. */
    size_t progressive_min_bits = kDefaultProgressiveMinBits;

    /** The adder kind of a derived paper group (0, 1 or 2). */
    AdderKind adderFor(size_t paper_group) const;

    /**
     * The FEB kind a stage of the given paper group uses: the group's
     * adder combined with the pooling mode — pooled (conv) stages
     * follow the configured pooling, fc stages have no pooling stage
     * and use the Avg variants (whose pooling degenerates to a
     * pass-through).
     */
    blocks::FebKind febKindFor(size_t paper_group, bool pooled) const;

    /** LeNet5 shorthand: febKindFor() with the fixed Table 6 shape
     *  (layers 0/1 pooled conv blocks, layer 2 the FC group). */
    blocks::FebKind febKind(size_t layer) const;

    /** Human-readable summary ("max L=1024 MUX-MUX-APC"). */
    std::string describe() const;

    /** Field-wise equality — artifact round-trip tests assert a
     *  deserialized config is exactly the one that was saved. */
    friend bool operator==(const ScNetworkConfig &a,
                           const ScNetworkConfig &b)
    {
        return a.pooling == b.pooling &&
               a.layer_adders == b.layer_adders &&
               a.bitstream_len == b.bitstream_len &&
               a.weight_bits == b.weight_bits &&
               a.segment_len == b.segment_len &&
               a.k_policy == b.k_policy && a.input_c == b.input_c &&
               a.input_h == b.input_h && a.input_w == b.input_w &&
               a.stream_segment_words == b.stream_segment_words &&
               a.batch_stream_segment_words ==
                   b.batch_stream_segment_words &&
               a.progressive_margin == b.progressive_margin &&
               a.progressive_min_bits == b.progressive_min_bits;
    }
    friend bool operator!=(const ScNetworkConfig &a,
                           const ScNetworkConfig &b)
    {
        return !(a == b);
    }
};

/** One Table 6 row definition. */
struct Table6Entry
{
    int number;            //!< 1..12
    ScNetworkConfig config;
    double paper_inaccuracy_pct; //!< the paper's reported value
    double paper_area_mm2;
    double paper_power_w;
    double paper_delay_ns;
    double paper_energy_uj;
};

/** The twelve configurations of Table 6 with the paper's numbers. */
std::vector<Table6Entry> table6Entries();

/** Map an SC config onto the hardware cost model's knobs. */
hw::Lenet5HwConfig toHwConfig(const ScNetworkConfig &cfg);

} // namespace core
} // namespace scdcnn

#endif // SCDCNN_CORE_SC_CONFIG_H
