#include "core/optimizer.h"

#include "common/logging.h"

namespace scdcnn {
namespace core {

std::vector<OptimizedDesign>
optimizeDesigns(const std::vector<ScNetworkConfig> &candidates,
                const OptimizerSettings &settings,
                const InaccuracyFn &inaccuracy)
{
    SCDCNN_ASSERT(settings.threshold > 0, "non-positive threshold");
    SCDCNN_ASSERT(settings.min_len >= 2 &&
                      settings.start_len >= settings.min_len,
                  "bad length bounds");

    std::vector<OptimizedDesign> survivors;
    for (const ScNetworkConfig &candidate : candidates) {
        OptimizedDesign design;
        design.config = candidate;
        design.config.bitstream_len = settings.start_len;

        double err = inaccuracy(design.config);
        ++design.evaluations;
        if (err > settings.threshold)
            continue; // removed: fails at the starting length

        design.inaccuracy = err;
        // Halve while the accuracy goal holds.
        while (design.config.bitstream_len / 2 >= settings.min_len) {
            ScNetworkConfig shorter = design.config;
            shorter.bitstream_len /= 2;
            double shorter_err = inaccuracy(shorter);
            ++design.evaluations;
            if (shorter_err > settings.threshold)
                break;
            design.config = shorter;
            design.inaccuracy = shorter_err;
        }
        survivors.push_back(design);
    }
    return survivors;
}

} // namespace core
} // namespace scdcnn
