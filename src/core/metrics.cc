#include "core/metrics.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "nn/topology.h"
#include "sc/rng.h"

namespace scdcnn {
namespace core {

Table6Row
makeTable6Row(int number, const ScNetworkConfig &cfg,
              double inaccuracy_fraction)
{
    const auto layers = hw::lenet5Layers(toHwConfig(cfg));
    const auto cost = hw::networkCost(layers, toHwConfig(cfg));

    Table6Row row;
    row.number = number;
    row.pooling =
        cfg.pooling == nn::PoolingMode::Max ? "Max" : "Average";
    row.bitstream_len = cfg.bitstream_len;
    row.layer0 = adderKindName(cfg.layer_adders[0]);
    row.layer1 = adderKindName(cfg.layer_adders[1]);
    row.layer2 = adderKindName(cfg.layer_adders[2]);
    row.inaccuracy_pct = inaccuracy_fraction * 100.0;
    row.area_mm2 = cost.areaMm2();
    row.power_w = cost.powerW();
    row.delay_ns = cost.delayNs();
    row.energy_uj = cost.energyUj();
    return row;
}

std::vector<PlatformRow>
table7ReferenceRows()
{
    // Literature values exactly as printed in Table 7.
    return {
        {"2x Intel Xeon W5580", "MNIST", "CNN", 2009, "CPU", 263, 156,
         98.46, 656, 2.5, 4.2},
        {"Nvidia Tesla C2075", "MNIST", "CNN", 2011, "GPU", 520, 202.5,
         98.46, 2333, 4.5, 3.2},
        {"Minitaur", "MNIST", "ANN", 2014, "FPGA", -1, 1.5, 92.00, 4880,
         -1, 3253},
        {"SpiNNaker", "MNIST", "DBN", 2015, "ARM", -1, 0.3, 95.00, 50,
         -1, 166.7},
        {"TrueNorth", "MNIST", "SNN", 2015, "ASIC", 430, 0.18, 99.42,
         1000, 2.3, 9259},
        {"DaDianNao", "ImageNet", "CNN", 2014, "ASIC", 67.7, 15.97, -1,
         147938, 2185, 9263},
        {"EIE-64PE", "CNN layer", "CNN", 2016, "ASIC", 40.8, 0.59, -1,
         81967, 2009, 138927},
    };
}

PlatformRow
scdcnnPlatformRow(const std::string &name, const ScNetworkConfig &cfg,
                  double accuracy_pct)
{
    const auto hw_cfg = toHwConfig(cfg);
    const auto cost = hw::networkCost(hw::lenet5Layers(hw_cfg), hw_cfg);
    PlatformRow row;
    row.platform = name;
    row.dataset = "MNIST*"; // the stand-in digit task (see DESIGN.md)
    row.network_type = "CNN";
    row.year = 2016;
    row.platform_type = "ASIC";
    row.area_mm2 = cost.areaMm2();
    row.power_w = cost.powerW();
    row.accuracy_pct = accuracy_pct;
    row.throughput = cost.throughputImagesPerSec();
    row.area_eff = cost.areaEfficiency();
    row.energy_eff = cost.energyEfficiency();
    return row;
}

double
errorRateWithLayerNoise(const nn::Network &net, const nn::Dataset &ds,
                        size_t layer_group, double sigma, uint64_t seed)
{
    SCDCNN_ASSERT(layer_group < 3, "layer group %zu out of range",
                  layer_group);
    SCDCNN_ASSERT(ds.size() > 0, "empty dataset");
    // The layer index after which the group's output emerges is
    // derived from the topology walk: the activation closing the last
    // hidden stage of that paper group (for buildLeNet5 this is the
    // tanh at 2 / 5 / 7).
    size_t inject_after = nn::StageOutline::kNone;
    for (const nn::StageOutline &s : nn::outlineNetworkStages(net))
        if (!s.is_output && s.paper_group == layer_group)
            inject_after = s.act_index;
    SCDCNN_ASSERT(inject_after != nn::StageOutline::kNone,
                  "network has no hidden stage in paper layer group %zu",
                  layer_group);

    const size_t n_workers =
        std::max<size_t>(1, ThreadPool::global().size());
    std::vector<nn::Network> workers(n_workers, net);
    std::vector<size_t> wrong(n_workers, 0);
    const size_t chunk = (ds.size() + n_workers - 1) / n_workers;

    parallelFor(0, n_workers, [&](size_t wi) {
        const size_t lo = wi * chunk;
        const size_t hi = std::min(ds.size(), lo + chunk);
        for (size_t s = lo; s < hi; ++s) {
            sc::Xoshiro256ss rng(seed + s * 31 + layer_group);
            nn::Tensor x = ds.samples[s].image;
            for (size_t li = 0; li < workers[wi].layerCount(); ++li) {
                x = workers[wi].layer(li).forward(x);
                if (li == inject_after) {
                    for (auto &v : x.data())
                        v += static_cast<float>(sigma *
                                                rng.nextGaussian());
                }
            }
            size_t best = 0;
            for (size_t i = 1; i < x.size(); ++i)
                if (x[i] > x[best])
                    best = i;
            if (best != ds.samples[s].label)
                ++wrong[wi];
        }
    });
    size_t total = 0;
    for (size_t w : wrong)
        total += w;
    return static_cast<double>(total) / static_cast<double>(ds.size());
}

} // namespace core
} // namespace scdcnn
