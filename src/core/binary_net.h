/**
 * @file
 * Binary (XNOR-popcount) sibling backend of the SC engine.
 *
 * SC networks and binary neural networks are two points on one design
 * space: an SC bitstream of length L = 1 is a single sign bit, the
 * XNOR multiplier is exact, and the APC inner product collapses to a
 * popcount — so the whole SC machinery (the derived network plan, the
 * packed-word layout, the filter-interleaved weight arenas, the
 * blocked XNOR kernels) re-executes as a BNN by fixing L = 1 and
 * replacing the Btanh FSM with a popcount-sign activation. That is
 * what this backend does:
 *
 *  - weights and biases are sign-quantized (nn::signQuantizeBit) and
 *    packed one bit per tap into an InterleavedWeightArena of
 *    single-word-striped streams (taps = 1, length = fan_in + 1 with
 *    the bias as the last tap against a constant +1 input bit);
 *  - input pixels binarize at the unipolar midpoint (x >= 0.5 — the
 *    SC encoder treats pixels as [0, 1] values, so midpoint
 *    thresholding is the sign of the centered pixel);
 *  - an n-tap inner product is the XNOR match count m computed by
 *    sc::fusedXnorPopcountMulti, giving the integer pre-activation
 *    s = 2m - n (the bipolar sum, exactly the SC score formula at
 *    L = 1);
 *  - pooling runs on the four window pre-activations in FEB order
 *    (inner product -> pool -> activation): max pooling keeps the
 *    max, average pooling keeps the sum (same sign as the mean, which
 *    is all the sign activation consumes);
 *  - the activation is sign(s) with ties to +1, packed straight back
 *    into the next layer's operand bits;
 *  - the output layer reports the integer scores s_o per class.
 *
 * The forward pass is fully deterministic (no stream sampling), so
 * the backend is differentially tested for *exact* equality against a
 * float sign-network oracle across the randomized topology corpus,
 * and every kernel has a bit-serial reference twin (Kernel::Reference
 * swaps all of them in at once, the engine-level twin the fuzz tests
 * assert bit-exact).
 *
 * The optional full-precision-edges mode keeps the first hidden stage
 * (float weights on raw pixels) and the output layer (float weights
 * on +-1 activations) in double arithmetic — the standard BNN
 * accuracy recovery — with the fixed (ci, ky, kx)-then-bias
 * accumulation order shared by the oracle.
 */

#ifndef SCDCNN_CORE_BINARY_NET_H
#define SCDCNN_CORE_BINARY_NET_H

#include <cstdint>
#include <vector>

#include "nn/network.h"
#include "nn/tensor.h"
#include "nn/topology.h"
#include "sc/bitstream.h"

namespace scdcnn {
namespace core {

class BinaryNetwork
{
  public:
    /** Which kernel family a forward pass runs: the word-parallel
     *  fused kernels (AVX2-dispatched) or their bit-serial reference
     *  twins. Results are bit-exact across both. */
    enum class Kernel
    {
        Fused,
        Reference,
    };

    struct Options
    {
        /** Keep the first hidden stage and the output layer in double
         *  precision (float weights, raw input pixels, +-1 hidden
         *  activations) instead of sign-quantizing them — the
         *  first/last-layer accuracy option. Hidden activations stay
         *  binary either way. */
        bool full_precision_edges = false;
    };

    /**
     * Build from the trained float network (sign quantization reads
     * the *unquantized* weights) and its derived plan. The plan must
     * have been derived from @p trained; conv rows are packed one
     * 64-bit word per (channel, row), so every grid width along the
     * plan must be <= 64.
     */
    BinaryNetwork(const nn::Network &trained, const nn::NetworkPlan &plan,
                  Options opts);

    /** Default options: sign-quantize every layer. */
    BinaryNetwork(const nn::Network &trained, const nn::NetworkPlan &plan)
        : BinaryNetwork(trained, plan, Options())
    {
    }

    /**
     * Forward pass + argmax (first maximum wins, as the SC engine).
     * When @p scores is non-null it receives the per-class output
     * sums: integers 2m - n as doubles in pure binary mode, double
     * dot products under full-precision edges.
     */
    size_t predict(const nn::Tensor &image,
                   std::vector<double> *scores = nullptr,
                   Kernel kernel = Kernel::Fused) const;

    const nn::NetworkPlan &plan() const { return plan_; }

    bool fullPrecisionEdges() const { return opts_.full_precision_edges; }

    /** The input binarization contract: pixel bit = (x >= 0.5). */
    static bool binarizePixel(float x) { return x >= 0.5f; }

  private:
    /** Packed sign weights of one stage: filter f's fan_in + 1 sign
     *  bits (taps in (ci, ky, kx) order for conv, input order for fc,
     *  bias last) as one single-tap interleaved stream. */
    struct Stage
    {
        nn::PlanStage st;
        size_t n = 0; //!< operand bits, fan_in + 1 (bias included)
        /** Pooling flavour of the trained net's pool layer (conv
         *  stages only): max keeps the max window pre-activation,
         *  average keeps the window sum (sign-equivalent to mean). */
        bool max_pool = false;
        sc::InterleavedWeightArena weights;
        /** Float parameters, kept only for the full-precision-edges
         *  stages (first hidden stage / output layer). */
        std::vector<double> fw; //!< [filter][fan_in], row-major
        std::vector<double> fb; //!< [filter]
    };

    /** Packed activation grid: one 64-bit word per (channel, row),
     *  column x at bit x (tail bits zero). */
    struct BitGrid
    {
        size_t c = 0, h = 0, w = 0;
        std::vector<uint64_t> rows;
    };

    void packStage(const nn::Network &net, const nn::PlanStage &st,
                   bool fp_edge, Stage &out) const;

    void runConvStage(const Stage &stage, const BitGrid &in, Kernel kernel,
                      BitGrid &out) const;

    void runConvStageFp(const Stage &stage, const nn::Tensor &image,
                        BitGrid &out) const;

    /** One fc / output stage over a packed operand (activations +
     *  trailing +1 bit): writes the pre-activation integers s = 2m - n
     *  for every filter into @p s_out. */
    void runFcStage(const Stage &stage, const std::vector<uint64_t> &x,
                    Kernel kernel, std::vector<int32_t> &s_out) const;

    nn::NetworkPlan plan_;
    Options opts_;
    std::vector<Stage> stages_; //!< hidden stages, plan order
    Stage out_;                 //!< output layer
};

} // namespace core
} // namespace scdcnn

#endif // SCDCNN_CORE_BINARY_NET_H
